// Command qlecdata generates or inspects the large-scale dataset of the
// paper's §5.3 experiment.
//
// Usage:
//
//	qlecdata [-n 2896] [-seed 2019] [-out dataset.csv]        # synthesize
//	qlecdata -wri powerplants.csv -country CHN [-out out.csv]  # convert
//
// The synthetic generator reproduces the spatial clumping and
// heavy-tailed energy distribution of the WRI Global Power Plant
// Database's China subset (see DESIGN.md's substitution table); -wri
// converts the genuine database file instead when available.
package main

import (
	"flag"
	"fmt"
	"os"

	"qlec/internal/cli"
	"qlec/internal/dataset"
	"qlec/internal/plot"
	"qlec/internal/rng"
	"qlec/internal/stats"
)

func main() {
	var (
		n       = flag.Int("n", 2896, "node count (synthetic mode)")
		seed    = flag.Uint64("seed", 2019, "generator seed (synthetic mode)")
		out     = flag.String("out", "", "write x,y,z,energy CSV to this path")
		wri     = flag.String("wri", "", "convert a WRI Global Power Plant Database CSV instead of synthesizing")
		country = flag.String("country", "CHN", "country code filter for -wri")
		timeout = flag.Duration("timeout", 0, "abort after this long (0 = no limit)")
	)
	prof := cli.ProfileFlags(flag.CommandLine)
	logCfg := cli.LogFlags(flag.CommandLine)
	flag.Parse()
	logCfg.MustSetup(os.Stderr)
	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer prof.Stop()

	ctx, stop := cli.Context(*timeout)
	defer stop()

	var (
		ds  *dataset.Dataset
		err error
	)
	if *wri != "" {
		fh, ferr := os.Open(*wri)
		if ferr != nil {
			fail(ferr)
		}
		defer fh.Close()
		ds, err = dataset.LoadWRICSV(cli.Reader(ctx, fh), *country, 1000, 100, 5, rng.NewNamed(*seed, "qlecdata/heights"))
	} else {
		cfg := dataset.DefaultSynthConfig()
		cfg.N = *n
		cfg.Seed = *seed
		ds, err = dataset.Synthesize(cfg)
	}
	if err != nil {
		fail(err)
	}

	energies := make([]float64, len(ds.Energies))
	for i, e := range ds.Energies {
		energies[i] = float64(e)
	}
	s := stats.Summarize(energies)
	fmt.Println(plot.Table(
		[]string{"property", "value"},
		[][]string{
			{"nodes", fmt.Sprintf("%d", len(ds.Positions))},
			{"box", fmt.Sprintf("%v – %v", ds.Box.Min, ds.Box.Max)},
			{"BS", ds.BS.String()},
			{"energy mean (J)", fmt.Sprintf("%.4f", s.Mean)},
			{"energy stddev (J)", fmt.Sprintf("%.4f", s.StdDev)},
			{"energy min/max (J)", fmt.Sprintf("%.4f / %.4f", s.Min, s.Max)},
			{"energy median (J)", fmt.Sprintf("%.4f", stats.Median(energies))},
		},
	))

	// Density overview: node-count heatmap over XY.
	ones := make([]float64, len(ds.Positions))
	counts := map[[2]int]float64{}
	const cols, rows = 64, 20
	for _, p := range ds.Positions {
		cx := int(float64(cols) * p.X / ds.Box.Max.X)
		cy := int(float64(rows) * (ds.Box.Max.Y - p.Y) / ds.Box.Max.Y)
		if cx >= cols {
			cx = cols - 1
		}
		if cy >= rows {
			cy = rows - 1
		}
		counts[[2]int{cx, cy}]++
	}
	for i := range ones {
		p := ds.Positions[i]
		cx := int(float64(cols) * p.X / ds.Box.Max.X)
		cy := int(float64(rows) * (ds.Box.Max.Y - p.Y) / ds.Box.Max.Y)
		if cx >= cols {
			cx = cols - 1
		}
		if cy >= rows {
			cy = rows - 1
		}
		ones[i] = counts[[2]int{cx, cy}]
	}
	hm := &plot.Heatmap{
		Title: "node density (XY projection)",
		Box:   ds.Box,
		Cols:  cols, Rows: rows,
		Points: ds.Positions,
		Values: ones,
	}
	if rendered, err := hm.RenderASCII(); err == nil {
		fmt.Println(rendered)
	}

	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := ds.WriteCSV(fh); err != nil {
			fail(err)
		}
		if err := fh.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qlecdata:", err)
	os.Exit(1)
}
