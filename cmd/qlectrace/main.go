// Command qlectrace analyzes a JSONL packet trace produced by
// qlecsim -trace (or any sim.JSONLTracer output): per-kind event counts,
// drop reasons, retry behaviour, access delay, per-head load and
// per-round tallies.
//
// Usage:
//
//	qlecsim -rounds 5 -trace run.jsonl
//	qlectrace run.jsonl            # or: qlectrace - < run.jsonl
//	qlectrace -node 17 run.jsonl   # only events touching node 17
//	qlectrace -round 3 run.jsonl   # only round 3
//
// -node keeps events where the node is the actor or the target (so both
// halves of every send/accept pair survive); -round keeps one round.
// The filters compose, and all tallies are computed over the filtered
// stream — useful for drilling into a single node's traffic that
// qlecaudit flagged.
//
// With -chrome the input is instead a Chrome trace_event JSON document —
// a fleet-merged distributed trace downloaded from qlecd
// (GET /v1/jobs/{id}/trace or /v1/batches/{id}/trace). qlectrace then
// renders one lane per daemon (the trace's process_name metadata) and a
// chronological span listing, so a multi-peer execution reads as one
// timeline without opening a browser:
//
//	curl -s $BASE/v1/jobs/j00000001/trace > trace.json
//	qlectrace -chrome trace.json
//	qlectrace -chrome -limit 20 trace.json
//
// Ctrl-C (or an elapsed -timeout) aborts a stalled read — useful when
// analyzing a pipe that stops producing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"qlec/internal/cli"
	"qlec/internal/network"
	"qlec/internal/plot"
	"qlec/internal/sim"
	"qlec/internal/traceio"
)

func main() {
	timeout := flag.Duration("timeout", 0, "abort reading after this long (0 = no limit)")
	nodeF := flag.Int("node", -1, "only events where this node is the actor or target (-1 = all)")
	roundF := flag.Int("round", -1, "only events from this round (-1 = all)")
	chrome := flag.Bool("chrome", false, "input is Chrome trace_event JSON (a qlecd distributed trace), not a packet JSONL")
	limit := flag.Int("limit", 40, "with -chrome: span listing rows (0 = all)")
	prof := cli.ProfileFlags(flag.CommandLine)
	logCfg := cli.LogFlags(flag.CommandLine)
	flag.Parse()
	logCfg.MustSetup(os.Stderr)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: qlectrace [-timeout 30s] [-node N] [-round R] [-chrome [-limit N]] <trace.jsonl | ->")
		os.Exit(2)
	}
	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer prof.Stop()
	ctx, stop := cli.Context(*timeout)
	defer stop()
	var src io.Reader
	if flag.Arg(0) == "-" {
		src = os.Stdin
	} else {
		fh, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer fh.Close()
		src = fh
	}
	if *chrome {
		if err := analyzeChrome(cli.Reader(ctx, src), *limit); err != nil {
			fail(err)
		}
		return
	}
	events, err := traceio.ParseJSONL(cli.Reader(ctx, src))
	if err != nil {
		fail(err)
	}
	if *nodeF >= 0 || *roundF >= 0 {
		total := len(events)
		events = traceio.Filter(events, *nodeF, *roundF)
		fmt.Fprintf(os.Stderr, "qlectrace: %d of %d events match the filter\n", len(events), total)
	}
	s, err := traceio.Analyze(events)
	if err != nil {
		fail(err)
	}

	fmt.Println(plot.Table(
		[]string{"quantity", "value"},
		[][]string{
			{"events", fmt.Sprintf("%d", s.Events)},
			{"packets generated", fmt.Sprintf("%d", s.Generated)},
			{"packets delivered", fmt.Sprintf("%d", s.Delivered)},
			{"packets dropped", fmt.Sprintf("%d", s.Dropped)},
			{"radio sends", fmt.Sprintf("%d", s.ByKind[sim.TraceSend])},
			{"accepts / rejects", fmt.Sprintf("%d / %d", s.ByKind[sim.TraceAccept], s.ByKind[sim.TraceReject])},
			{"mean attempts per packet", fmt.Sprintf("%.3f", s.AttemptsPerPacket.Mean)},
			{"max attempts per packet", fmt.Sprintf("%.0f", s.AttemptsPerPacket.Max)},
			{"mean access delay (s)", fmt.Sprintf("%.4f", s.AccessDelay.Mean)},
		},
	))

	if len(s.DropReasons) > 0 {
		fmt.Println()
		var rows [][]string
		for _, reason := range []string{"link", "queue", "batch", "dead"} {
			if c, ok := s.DropReasons[reason]; ok {
				rows = append(rows, []string{reason, fmt.Sprintf("%d", c)})
			}
		}
		fmt.Println(plot.Table([]string{"drop reason", "count"}, rows))
	}

	fmt.Println()
	var loadRows [][]string
	for _, kv := range s.TopLoads(10) {
		name := fmt.Sprintf("node %d", kv[0])
		if kv[0] == network.BSID {
			name = "base station"
		}
		loadRows = append(loadRows, []string{name, fmt.Sprintf("%d", kv[1])})
	}
	fmt.Println(plot.Table([]string{"busiest accept targets", "packets"}, loadRows))

	fmt.Println()
	var roundRows [][]string
	for _, rt := range s.Rounds {
		roundRows = append(roundRows, []string{
			fmt.Sprintf("%d", rt.Round),
			fmt.Sprintf("%d", rt.Generated),
			fmt.Sprintf("%d", rt.Delivered),
			fmt.Sprintf("%d", rt.Dropped),
		})
	}
	fmt.Println(plot.Table([]string{"round", "generated", "delivered", "dropped"}, roundRows))
}

// chromeEvent is the subset of the trace_event schema the lane view
// needs; qlecd's merged traces (obs.WriteChromeTrace) emit exactly it.
type chromeEvent struct {
	Name  string          `json:"name"`
	Cat   string          `json:"cat"`
	Phase string          `json:"ph"`
	TS    int64           `json:"ts"`  // µs, rebased to the trace start
	Dur   int64           `json:"dur"` // µs
	PID   int             `json:"pid"`
	Args  json.RawMessage `json:"args,omitempty"`
}

// analyzeChrome renders a fleet-merged Chrome trace as text: the daemon
// lanes (process_name metadata), then the spans in start order. The
// "lanes: N" line is the greppable contract CI uses to assert a trace
// crossed peers.
func analyzeChrome(src io.Reader, limit int) error {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.NewDecoder(src).Decode(&doc); err != nil {
		return fmt.Errorf("parse chrome trace: %w", err)
	}

	lanes := map[int]string{}
	perLane := map[int]int{}
	var spans []chromeEvent
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "M":
			if e.Name == "process_name" {
				var args struct {
					Name string `json:"name"`
				}
				_ = json.Unmarshal(e.Args, &args)
				lanes[e.PID] = args.Name
			}
		case "X", "i", "I":
			perLane[e.PID]++
			spans = append(spans, e)
		}
	}
	for pid := range perLane {
		if _, ok := lanes[pid]; !ok {
			lanes[pid] = fmt.Sprintf("pid %d", pid)
		}
	}

	fmt.Printf("lanes: %d\n", len(lanes))
	pids := make([]int, 0, len(lanes))
	for pid := range lanes {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	var laneRows [][]string
	for _, pid := range pids {
		laneRows = append(laneRows, []string{lanes[pid], fmt.Sprintf("%d", perLane[pid])})
	}
	fmt.Println(plot.Table([]string{"lane (daemon)", "events"}, laneRows))

	sort.SliceStable(spans, func(i, j int) bool { return spans[i].TS < spans[j].TS })
	total := len(spans)
	if limit > 0 && len(spans) > limit {
		spans = spans[:limit]
	}
	var rows [][]string
	for _, e := range spans {
		dur := "-"
		if e.Phase == "X" {
			dur = fmt.Sprintf("%.3f", float64(e.Dur)/1000)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", float64(e.TS)/1000),
			dur,
			lanes[e.PID],
			e.Name,
		})
	}
	fmt.Println()
	fmt.Println(plot.Table([]string{"t (ms)", "dur (ms)", "lane", "span"}, rows))
	if total > len(spans) {
		fmt.Printf("(%d of %d spans shown; raise -limit for more)\n", len(spans), total)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qlectrace:", err)
	os.Exit(1)
}
