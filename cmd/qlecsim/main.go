// Command qlecsim runs a single clustering-protocol simulation under the
// paper's settings and prints a metric summary.
//
// Usage:
//
//	qlecsim [-protocol QLEC] [-list-protocols]
//	        [-lambda 4] [-rounds 20] [-n 100] [-side 200] [-k 5]
//	        [-seed 1] [-lifespan] [-deathline 2.5] [-perround]
//	        [-timeout 30s] [-quiet] [-remote http://host:8080]
//	        [-audit audit.json] [-chrometrace trace.json]
//	        [-log-level info] [-log-format text]
//	qlecsim -tournament [-protocols QLEC,FCM,...] [-lambdas 8,4,2]
//	        [-ns 50,100] [-tournament-json out.json]
//
// -protocol accepts any registered protocol id or alias;
// -list-protocols prints the registry roster (id, aliases, paper
// reference, default parameters) and exits.
//
// With -tournament every selected protocol (default: every registered
// non-ablation protocol) runs a scenario matrix — traffic λ × network
// size N × heterogeneity tiers — and a ranked report (PDR, energy per
// node, first/half-node-death rounds, audited energy budget) prints
// instead of the single-run table.
//
// With -lifespan the run uses the death-line / stop-on-first-death
// methodology of Figure 3(c); otherwise it runs exactly -rounds rounds.
// A live round counter streams to stderr (-quiet disables it). Ctrl-C
// or an elapsed -timeout stops the run at the next round boundary and
// prints the partial results accumulated so far.
//
// With -remote the simulation runs on a qlecd daemon instead of
// in-process: the tool submits the identical configuration as a job,
// streams per-round progress over SSE into the same stderr meter, and
// prints the same result table. Identical submissions are answered from
// the daemon's content-addressed cache without re-simulating.
//
// With -audit the run carries a flight recorder: a per-node energy
// ledger with double-entry conservation checks, per-decision Q-routing
// records, and anomaly detection. The artifact is written as JSON for
// cmd/qlecaudit (report / explain / diff).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"qlec"
	"qlec/internal/audit"
	"qlec/internal/cli"
	"qlec/internal/dataset"
	"qlec/internal/energy"
	"qlec/internal/experiment"
	"qlec/internal/obs"
	"qlec/internal/plot"
	"qlec/internal/service"
	"qlec/internal/service/client"
	"qlec/internal/sim"
)

func main() {
	var (
		protocol   = flag.String("protocol", "QLEC", "protocol id or alias (see -list-protocols)")
		lambda     = flag.Float64("lambda", 4, "mean packet inter-arrival time per node (seconds); smaller = more congested")
		rounds     = flag.Int("rounds", 20, "rounds to simulate (fixed-round mode)")
		n          = flag.Int("n", 100, "node count")
		side       = flag.Float64("side", 200, "cube side length (meters)")
		k          = flag.Int("k", 5, "cluster count per round")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		lifespan   = flag.Bool("lifespan", false, "measure lifespan (stop at first node death)")
		deathline  = flag.Float64("deathline", 2.5, "death line in Joules (lifespan mode)")
		maxRounds  = flag.Int("maxrounds", 3000, "round cap in lifespan mode")
		perRound   = flag.Bool("perround", false, "print per-round statistics")
		csvPath    = flag.String("csv", "", "write the per-round time series as CSV to this path")
		shadow     = flag.Float64("shadow", 0, "per-link log-normal shadowing sigma (0 = off)")
		speed      = flag.Float64("speed", 0, "random-waypoint mobility max speed in m/s (0 = static)")
		topoPath   = flag.String("topology", "", "load node positions/energies from an x,y,z,energy_j CSV instead of a uniform cube")
		contend    = flag.Float64("contention", 0, "interference factor gamma (0 = off)")
		tracePath  = flag.String("trace", "", "write a JSONL packet-event trace to this path")
		auditPath  = flag.String("audit", "", "record a flight-recorder artifact (energy ledger, Q decisions, conservation report) to this path; inspect with qlecaudit")
		chromePath = flag.String("chrometrace", "", "write per-round spans as Chrome trace_event JSON to this path (open in chrome://tracing or Perfetto)")
		timeout    = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit); partial results are printed")
		quiet      = flag.Bool("quiet", false, "suppress the live per-round progress meter on stderr")
		remote     = flag.String("remote", "", "submit the run to a qlecd daemon at this base URL instead of simulating in-process")
		listProtos = flag.Bool("list-protocols", false, "print the protocol registry roster and exit")
		tournament = flag.Bool("tournament", false, "run the protocol tournament (scenario matrix + ranked report) instead of a single simulation")
		tournField = flag.String("protocols", "", "tournament: comma-separated protocol ids/aliases (empty = every registered non-ablation protocol)")
		tournLams  = flag.String("lambdas", "", "tournament: comma-separated traffic λ axis (empty = -lambda)")
		tournNs    = flag.String("ns", "", "tournament: comma-separated network-size axis (empty = -n)")
		tournJSON  = flag.String("tournament-json", "", "tournament: also write the full result as JSON to this path")
	)
	prof := cli.ProfileFlags(flag.CommandLine)
	logCfg := cli.LogFlags(flag.CommandLine)
	flag.Parse()
	logger := logCfg.MustSetup(os.Stderr)
	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer prof.Stop()

	ctx, stop := cli.Context(*timeout)
	defer stop()

	if *listProtos {
		fmt.Print(cli.FormatProtocols())
		return
	}

	s := qlec.DefaultScenario()
	if !*tournament {
		id, err := cli.ResolveProtocol(*protocol)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qlecsim:", err)
			os.Exit(1)
		}
		s.Protocol = experiment.ProtocolID(id)
	}
	s.Lambda = *lambda
	s.Seed = *seed
	s.MeasureLifespan = *lifespan
	s.Config.N = *n
	s.Config.Side = *side
	s.Config.K = *k
	s.Config.Rounds = *rounds
	s.Config.LifespanDeathLine = energy.Joules(*deathline)
	s.Config.LifespanMaxRounds = *maxRounds
	s.Config.Seeds = []uint64{*seed}
	if *topoPath != "" {
		fh, err := os.Open(*topoPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qlecsim:", err)
			os.Exit(1)
		}
		topo, err := dataset.LoadCSV(fh)
		fh.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "qlecsim:", err)
			os.Exit(1)
		}
		s.Config.Topology = topo
	}
	s.Config.Sim.ShadowSigma = *shadow
	s.Config.Sim.ContentionGamma = *contend
	if *speed > 0 {
		s.Config.Sim.MobilitySpeedMin = *speed / 2
		s.Config.Sim.MobilitySpeedMax = *speed
	}

	if *tournament {
		if *remote != "" {
			fmt.Fprintln(os.Stderr, "qlecsim: -tournament runs in-process; drop -remote")
			os.Exit(1)
		}
		if err := runTournament(ctx, s.Config, *tournField, *tournLams, *tournNs, *tournJSON, *lambda, *quiet); err != nil {
			fmt.Fprintln(os.Stderr, "qlecsim:", err)
			os.Exit(1)
		}
		return
	}

	var flushTrace func() error
	if *tracePath != "" {
		if *remote != "" {
			fmt.Fprintln(os.Stderr, "qlecsim: -trace is per-packet and does not cross the wire; drop it or run without -remote")
			os.Exit(1)
		}
		fh, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qlecsim:", err)
			os.Exit(1)
		}
		defer fh.Close()
		tracer, flush := sim.JSONLTracer(fh)
		s.Config.Tracer = tracer
		flushTrace = flush
	}

	var auditRec *audit.Recorder
	if *auditPath != "" {
		if *remote != "" {
			fmt.Fprintln(os.Stderr, "qlecsim: -audit records locally; fetch /v1/jobs/{id}/audit from the daemon instead, or run without -remote")
			os.Exit(1)
		}
		auditRec = audit.New(audit.Options{})
		s.Config.Audit = auditRec
	}

	meter := cli.NewMeter(os.Stderr)
	var res *qlec.Result
	var err error
	if *remote != "" {
		if *chromePath != "" {
			fmt.Fprintln(os.Stderr, "qlecsim: -chrometrace records locally; fetch /v1/jobs/{id}/trace from the daemon instead, or run without -remote")
			os.Exit(1)
		}
		res, err = runRemote(ctx, *remote, s, logger, meter, *quiet)
		meter.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "qlecsim:", err)
			os.Exit(1)
		}
	} else {
		var rec *obs.TraceRecorder
		if *chromePath != "" {
			rec = obs.NewTraceRecorder(0)
		}
		if !*quiet || rec != nil {
			prev := time.Now()
			s.Config.Observer = func(snap sim.RoundSnapshot) {
				if rec != nil {
					now := time.Now()
					rec.Span(fmt.Sprintf("round %d", snap.Round), "sim", prev, now,
						map[string]any{"alive": snap.Alive, "delivered": snap.Stats.Delivered})
					prev = now
				}
				if !*quiet {
					meter.Printf(snap.Done, "round %d  alive %d  energy %.2f J",
						snap.Round+1, snap.Alive, float64(snap.EnergySoFar))
				}
			}
		}
		start := time.Now()
		res, err = qlec.RunContext(ctx, s)
		meter.Close()
		interrupted := err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
		if err != nil && !interrupted {
			fmt.Fprintln(os.Stderr, "qlecsim:", err)
			os.Exit(1)
		}
		if interrupted {
			fmt.Fprintf(os.Stderr, "qlecsim: run stopped early (%v) after %d rounds in %v; partial results follow\n",
				err, res.Rounds, time.Since(start).Round(time.Millisecond))
		}
		if rec != nil {
			fh, err := os.Create(*chromePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "qlecsim:", err)
				os.Exit(1)
			}
			if err := rec.WriteJSON(fh); err == nil {
				err = fh.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "qlecsim:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d events)\n", *chromePath, rec.Len())
		}
	}
	if flushTrace != nil {
		if err := flushTrace(); err != nil {
			fmt.Fprintln(os.Stderr, "qlecsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *tracePath)
	}
	if auditRec != nil {
		if aerr := auditRec.Err(); aerr != nil {
			fmt.Fprintln(os.Stderr, "qlecsim: audit:", aerr)
		}
		fh, err := os.Create(*auditPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qlecsim:", err)
			os.Exit(1)
		}
		art := auditRec.Artifact()
		if err := audit.WriteArtifact(fh, art); err == nil {
			err = fh.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "qlecsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d ledger entries, %d decisions)\n",
			*auditPath, art.Report.Entries, art.Report.Decisions)
	}

	fmt.Println(plot.Table(
		[]string{"metric", "value"},
		[][]string{
			{"protocol", res.Protocol},
			{"rounds executed", fmt.Sprintf("%d", res.Rounds)},
			{"packets generated", fmt.Sprintf("%d", res.Generated)},
			{"packets delivered", fmt.Sprintf("%d", res.Delivered)},
			{"packet delivery rate", fmt.Sprintf("%.4f", res.PDR())},
			{"dropped (link)", fmt.Sprintf("%d", res.Dropped[0])},
			{"dropped (queue)", fmt.Sprintf("%d", res.Dropped[1])},
			{"dropped (batch)", fmt.Sprintf("%d", res.Dropped[2])},
			{"dropped (dead)", fmt.Sprintf("%d", res.Dropped[3])},
			{"total energy (J)", fmt.Sprintf("%.4f", float64(res.TotalEnergy))},
			{"  tx / rx (J)", fmt.Sprintf("%.4f / %.4f", float64(res.Energy.Tx), float64(res.Energy.Rx))},
			{"  fusion / control (J)", fmt.Sprintf("%.4f / %.4f", float64(res.Energy.Fusion), float64(res.Energy.Control))},
			{"mean latency (s)", fmt.Sprintf("%.4f", res.Latency.Mean)},
			{"mean hops", fmt.Sprintf("%.3f", res.Hops.Mean)},
			{"lifespan (rounds)", lifespanString(res.Lifespan)},
			{"first dead node", fmt.Sprintf("%d", res.FirstDead)},
		},
	))

	if *csvPath != "" {
		fh, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qlecsim:", err)
			os.Exit(1)
		}
		if err := res.WriteRoundsCSV(fh); err != nil {
			fmt.Fprintln(os.Stderr, "qlecsim:", err)
			os.Exit(1)
		}
		if err := fh.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "qlecsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}

	if *perRound {
		headers := []string{"round", "heads", "generated", "delivered", "dropped", "energy (J)", "alive", "latency (s)"}
		var rows [][]string
		for _, rs := range res.PerRound {
			rows = append(rows, []string{
				fmt.Sprintf("%d", rs.Round),
				fmt.Sprintf("%d", rs.Heads),
				fmt.Sprintf("%d", rs.Generated),
				fmt.Sprintf("%d", rs.Delivered),
				fmt.Sprintf("%d", rs.DroppedTotal()),
				fmt.Sprintf("%.4f", float64(rs.Energy)),
				fmt.Sprintf("%d", rs.AliveAtEnd),
				fmt.Sprintf("%.4f", rs.MeanLatency),
			})
		}
		fmt.Println()
		fmt.Println(plot.Table(headers, rows))
	}
}

func lifespanString(l int) string {
	if l == 0 {
		return "survived"
	}
	return fmt.Sprintf("%d", l)
}

// runTournament drives experiment.RunTournament from the flag surface:
// the single-run configuration becomes the tournament base, the
// comma-separated axis flags widen the matrix, and the ranked report
// prints where the single-run table would.
func runTournament(ctx context.Context, cfg experiment.Config, field, lams, ns, jsonPath string, lambda float64, quiet bool) error {
	tc := experiment.TournamentConfig{Base: cfg, Lambdas: []float64{lambda}}
	for _, name := range splitList(field) {
		id, err := cli.ResolveProtocol(name)
		if err != nil {
			return err
		}
		tc.Protocols = append(tc.Protocols, experiment.ProtocolID(id))
	}
	if vs := splitList(lams); len(vs) > 0 {
		tc.Lambdas = nil
		for _, s := range vs {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return fmt.Errorf("bad -lambdas entry %q: %v", s, err)
			}
			tc.Lambdas = append(tc.Lambdas, v)
		}
	}
	for _, s := range splitList(ns) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("bad -ns entry %q: %v", s, err)
		}
		tc.Ns = append(tc.Ns, v)
	}
	meter := cli.NewMeter(os.Stderr)
	if !quiet {
		tc.Base.Progress = meter.SweepProgress("tournament cells")
	}
	res, err := experiment.RunTournament(ctx, tc)
	meter.Close()
	if err != nil {
		return err
	}
	fmt.Println(experiment.FormatTournament(res))
	if jsonPath != "" {
		fh, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(fh)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fh.Close()
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	}
	return nil
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runRemote submits the scenario to a qlecd daemon as a KindOne job,
// streams SSE round progress into the meter, and returns the fetched
// result. On Ctrl-C the remote job is cancelled best-effort — the
// daemon discards the partial run, so unlike local runs there is no
// partial table to print.
func runRemote(ctx context.Context, base string, s qlec.Scenario, logger *slog.Logger, meter *cli.Meter, quiet bool) (*qlec.Result, error) {
	req := service.Request{
		Kind:      service.KindOne,
		Config:    s.Config,
		Protocols: []experiment.ProtocolID{s.Protocol},
		Lambda:    s.Lambda,
		Seed:      s.Seed,
		Lifespan:  s.MeasureLifespan,
	}
	cl := client.New(base, client.WithLogger(logger))
	res, job, err := cl.RunOne(ctx, req, func(e service.Event) {
		if quiet || e.Round == nil {
			return
		}
		meter.Printf(e.Round.Done, "round %d  alive %d  energy %.2f J  [remote]",
			e.Round.Round+1, e.Round.Alive, e.Round.EnergyJ)
	})
	if err != nil {
		if ctx.Err() != nil && job != nil && !job.State.Terminal() {
			cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_, _ = cl.Cancel(cctx, job.ID)
			cancel()
			return nil, fmt.Errorf("interrupted; cancelled remote job %s", job.ID)
		}
		return nil, err
	}
	if job.CacheHit {
		fmt.Fprintf(os.Stderr, "qlecsim: served from qlecd result cache (job %s, hash %.12s)\n", job.ID, job.Hash)
	}
	return res, nil
}
