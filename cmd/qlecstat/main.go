// Command qlecstat is a live fleet dashboard over qlecd's federation
// endpoint: it polls GET /metrics/federate on one daemon (which scrapes
// and merges every ready peer) plus the /v1/fleet roster, and renders
// per-peer load — queue depth, busy workers, pending cells, steal
// traffic, queue-wait quantiles — alongside fleet-wide totals and the
// autoscale advisor's current recommendation.
//
// Usage:
//
//	qlecstat -addr http://127.0.0.1:8080              # refresh every 2s
//	qlecstat -addr http://127.0.0.1:8080 -once        # one snapshot
//	qlecstat -addr http://127.0.0.1:8080 -check       # CI: lint the
//	                                                  # federated scrape
//	                                                  # and exit
//
// -check fetches /metrics/federate, runs the exposition linter over it
// and exits non-zero on any failure — the same gate CI applies
// mid-batch in the fleet e2e job.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"qlec/internal/cli"
	"qlec/internal/fleet"
	"qlec/internal/obs"
	"qlec/internal/plot"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of any fleet member")
	interval := flag.Duration("interval", 2*time.Second, "dashboard refresh cadence")
	once := flag.Bool("once", false, "render one snapshot and exit")
	check := flag.Bool("check", false, "fetch /metrics/federate, lint it, report and exit (CI mode)")
	logCfg := cli.LogFlags(flag.CommandLine)
	prof := cli.ProfileFlags(flag.CommandLine)
	flag.Parse()
	logCfg.MustSetup(os.Stderr)
	if err := prof.Start(); err != nil {
		fail(err)
	}
	defer prof.Stop()

	ctx, stop := cli.Context(0)
	defer stop()
	hc := &http.Client{Timeout: 10 * time.Second}
	base := strings.TrimRight(*addr, "/")

	if *check {
		if err := checkFederate(ctx, hc, base); err != nil {
			fail(err)
		}
		return
	}

	for {
		out, err := snapshot(ctx, hc, base)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			fail(err)
		}
		if !*once {
			// Home the cursor and clear so the dashboard repaints in place.
			fmt.Print("\033[H\033[2J")
		}
		fmt.Print(out)
		if *once {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(*interval):
		}
	}
}

// checkFederate is the CI gate: the federated exposition must download
// and pass the same linter qlecd's own tests hold /metrics to.
func checkFederate(ctx context.Context, hc *http.Client, base string) error {
	body, err := get(ctx, hc, base+"/metrics/federate")
	if err != nil {
		return err
	}
	if err := obs.LintExposition(bytes.NewReader(body)); err != nil {
		return fmt.Errorf("federated exposition fails lint: %w", err)
	}
	exp, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		return err
	}
	instances := map[string]bool{}
	if f := exp.Family("qlecd_federate_peer_up"); f != nil {
		for _, s := range f.Samples {
			instances[s.Label(obs.InstanceLabel)] = true
		}
	}
	fmt.Printf("federation ok: %d families, %d instances\n", len(exp.Families), len(instances))
	return nil
}

// snapshot renders one dashboard frame.
func snapshot(ctx context.Context, hc *http.Client, base string) (string, error) {
	var st fleet.Status
	body, err := get(ctx, hc, base+"/v1/fleet")
	if err != nil {
		return "", err
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return "", fmt.Errorf("decode /v1/fleet: %w", err)
	}
	fedBody, err := get(ctx, hc, base+"/metrics/federate")
	if err != nil {
		return "", err
	}
	exp, err := obs.ParseExposition(bytes.NewReader(fedBody))
	if err != nil {
		return "", fmt.Errorf("parse federated metrics: %w", err)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "qlecstat %s — fleet via %s\n\n", time.Now().Format("15:04:05"), base)

	// Per-instance rows: gauges carry the instance label after merging;
	// queue-wait quantiles come from each peer's own /metrics scrape
	// (the federated histogram is summed fleet-wide, so per-peer shape
	// is only visible at the source).
	instances := gaugeByInstance(exp, "qlecd_federate_peer_up")
	names := make([]string, 0, len(instances))
	for name := range instances {
		names = append(names, name)
	}
	sort.Strings(names)

	queue := gaugeByInstance(exp, "qlecd_queue_depth")
	busy := gaugeByInstance(exp, "qlecd_workers_busy")
	pendingCells := gaugeByInstance(exp, "qlecd_fleet_cells_pending")
	scale := gaugeByInstance(exp, "qlecd_fleet_scale_recommendation")
	// Runtime-sampler gauges; absent entirely when a daemon runs with
	// -runtime-sample 0, so missing entries render as "-".
	goroutines := gaugeByInstance(exp, "qlecd_runtime_goroutines")
	heapLive := gaugeByInstance(exp, "qlecd_runtime_heap_live_bytes")
	gcFrac := gaugeByInstance(exp, "qlecd_runtime_gc_cpu_fraction")

	var rows [][]string
	for _, name := range names {
		up := instances[name] > 0
		p50, p95 := "-", "-"
		if up {
			if h := scrapeHistogram(ctx, hc, name, base, st.Self, "qlecd_job_queue_wait_seconds"); h != nil {
				p50 = fmtSeconds(h.quantile(0.50))
				p95 = fmtSeconds(h.quantile(0.95))
			}
		}
		status := "up"
		if !up {
			status = "DOWN"
		}
		goro, heap, gc := "-", "-", "-"
		if v, ok := goroutines[name]; ok {
			goro = fmt.Sprintf("%.0f", v)
		}
		if v, ok := heapLive[name]; ok {
			heap = fmtBytes(v)
		}
		if v, ok := gcFrac[name]; ok {
			gc = fmt.Sprintf("%.2f%%", 100*v)
		}
		rows = append(rows, []string{
			name, status,
			fmt.Sprintf("%.0f", queue[name]),
			fmt.Sprintf("%.0f", busy[name]),
			fmt.Sprintf("%.0f", pendingCells[name]),
			p50, p95,
			goro, heap, gc,
		})
	}
	b.WriteString(plot.Table(
		[]string{"instance", "state", "queue", "busy", "cells", "wait p50", "wait p95", "goro", "heap", "gc cpu"}, rows))
	b.WriteString("\n\n")

	// Fleet-wide rollups: counters in the federated view are already
	// summed across instances.
	completed := counterTotal(exp, "qlecd_fleet_cells_completed_total")
	stolen := counterTotal(exp, "qlecd_fleet_cells_stolen_in_total")
	starved := counterTotal(exp, "qlecd_fleet_steal_starvation_total")
	hits := counterTotal(exp, "qlecd_cache_hits_total")
	misses := counterTotal(exp, "qlecd_cache_misses_total")
	hitRatio := "-"
	if hits+misses > 0 {
		hitRatio = fmt.Sprintf("%.1f%%", 100*hits/(hits+misses))
	}
	stealRate := "-"
	if completed > 0 {
		stealRate = fmt.Sprintf("%.1f%%", 100*stolen/completed)
	}
	b.WriteString(plot.Table(
		[]string{"fleet total", "value"},
		[][]string{
			{"cells completed", fmt.Sprintf("%.0f", completed)},
			{"cells stolen", fmt.Sprintf("%.0f (%s of completions)", stolen, stealRate)},
			{"starved polls", fmt.Sprintf("%.0f", starved)},
			{"cache hit ratio", hitRatio},
			{"cells pending/leased here", fmt.Sprintf("%d/%d", st.CellsPending, st.CellsLeased)},
			{"open batches", fmt.Sprintf("%d", st.OpenBatches)},
		}))
	b.WriteString("\n")

	if st.Advice != nil {
		delta := st.Advice.Delta
		verdict := "steady"
		if delta > 0 {
			verdict = fmt.Sprintf("SCALE UP +%d", delta)
		} else if delta < 0 {
			verdict = fmt.Sprintf("scale down %d", delta)
		}
		fmt.Fprintf(&b, "\nadvisor: %s (burn %.2f/%.2f vs %.3gs SLO)\n  %s\n",
			verdict, st.Advice.FastBurn, st.Advice.SlowBurn, st.Advice.SLOSeconds, st.Advice.Reason)
	} else if v, ok := anyGauge(scale); ok {
		fmt.Fprintf(&b, "\nscale recommendation: %+.0f\n", v)
	}
	return b.String(), nil
}

// gaugeByInstance extracts a merged gauge family keyed by its instance
// label.
func gaugeByInstance(exp *obs.Exposition, name string) map[string]float64 {
	out := map[string]float64{}
	f := exp.Family(name)
	if f == nil {
		return out
	}
	for _, s := range f.Samples {
		out[s.Label(obs.InstanceLabel)] = s.Value
	}
	return out
}

func anyGauge(m map[string]float64) (float64, bool) {
	for _, v := range m {
		return v, true
	}
	return 0, false
}

// counterTotal sums a merged counter family across its series.
func counterTotal(exp *obs.Exposition, name string) float64 {
	f := exp.Family(name)
	if f == nil {
		return 0
	}
	total := 0.0
	for _, s := range f.Samples {
		total += s.Value
	}
	return total
}

// histo is one scraped histogram: cumulative bucket counts by bound.
type histo struct {
	bounds []float64
	counts []float64 // cumulative, +Inf last
}

// scrapeHistogram fetches one peer's own /metrics and extracts the
// named histogram. The instance name is its base URL except for the
// standalone "local" placeholder, which is reachable at the dashboard's
// -addr.
func scrapeHistogram(ctx context.Context, hc *http.Client, instance, base, self, name string) *histo {
	target := instance
	if !strings.HasPrefix(target, "http") {
		target = base
	} else if instance == self {
		target = base // prefer the address the operator gave us
	}
	body, err := get(ctx, hc, strings.TrimRight(target, "/")+"/metrics")
	if err != nil {
		return nil
	}
	exp, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		return nil
	}
	f := exp.Family(name)
	if f == nil || f.Type != "histogram" {
		return nil
	}
	h := &histo{}
	for _, s := range f.Samples {
		if !strings.HasSuffix(s.Name, "_bucket") {
			continue
		}
		le := s.Label("le")
		bound := math.Inf(1)
		if le != "+Inf" {
			fmt.Sscanf(le, "%g", &bound)
		}
		h.bounds = append(h.bounds, bound)
		h.counts = append(h.counts, s.Value)
	}
	if len(h.bounds) == 0 {
		return nil
	}
	return h
}

// quantile estimates a quantile from cumulative buckets with linear
// interpolation inside the landing bucket (Prometheus-style); NaN when
// the histogram is empty.
func (h *histo) quantile(q float64) float64 {
	total := h.counts[len(h.counts)-1]
	if total == 0 {
		return math.NaN()
	}
	rank := q * total
	prevBound, prevCount := 0.0, 0.0
	for i, c := range h.counts {
		if c >= rank {
			bound := h.bounds[i]
			if math.IsInf(bound, 1) {
				return prevBound // open-ended bucket: report its lower edge
			}
			if c == prevCount {
				return bound
			}
			return prevBound + (bound-prevBound)*(rank-prevCount)/(c-prevCount)
		}
		prevBound, prevCount = h.bounds[i], c
	}
	return h.bounds[len(h.bounds)-1]
}

func fmtSeconds(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v < 1:
		return fmt.Sprintf("%.1fms", v*1000)
	default:
		return fmt.Sprintf("%.2fs", v)
	}
}

// fmtBytes renders a byte gauge human-readably (binary units).
func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

func get(ctx context.Context, hc *http.Client, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %d %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qlecstat:", err)
	os.Exit(1)
}
