// Command qlecprof captures, fetches and inspects qlecd profile
// artifacts — one daemon's or the whole fleet's.
//
// Usage:
//
//	qlecprof list    [-addr URL] [-fleet]
//	qlecprof capture [-addr URL] [-kind cpu] [-seconds 2] [-fleet] [-min 0]
//	qlecprof fetch   [-addr URL] [-id latest] [-o FILE]
//	qlecprof top     [-n 10] [-alloc] <profile.txt | ->
//	qlecprof diff    [-n 10] [-alloc] <before.txt> <after.txt>
//
// list shows the artifacts a daemon retains (FIFO-capped by
// -profile-history); -fleet merges every ready peer's listing. capture
// snapshots a profile right now — cpu, heap, goroutine, block or mutex
// — and with -fleet does so on every ready peer too, so one command
// profiles the fleet under load; -min N exits 1 unless at least N
// non-empty captures came back (CI gate). fetch downloads an
// artifact's raw bytes ("latest" = newest); cpu profiles are gzipped
// protobuf for `go tool pprof`, the rest are debug=1 text that top and
// diff read directly. top ranks stacks by value; diff ranks the
// stack-by-stack change between two captures of the same kind —
// the needle for "what grew between these two snapshots".
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"qlec/internal/cli"
	"qlec/internal/plot"
	"qlec/internal/prof"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		cmdList(os.Args[2:])
	case "capture":
		cmdCapture(os.Args[2:])
	case "fetch":
		cmdFetch(os.Args[2:])
	case "top":
		cmdTop(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  qlecprof list    [-addr URL] [-fleet]
  qlecprof capture [-addr URL] [-kind cpu] [-seconds 2] [-fleet] [-min 0]
  qlecprof fetch   [-addr URL] [-id latest] [-o FILE]
  qlecprof top     [-n 10] [-alloc] <profile.txt | ->
  qlecprof diff    [-n 10] [-alloc] <before.txt> <after.txt>`)
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qlecprof:", err)
	os.Exit(1)
}

// client is the daemon-facing HTTP side, shared by list/capture/fetch.
type client struct {
	base string
	hc   *http.Client
	ctx  context.Context
}

func newClient(addr string, timeout time.Duration) *client {
	// Per-request deadlines come from hc.Timeout; ctx only carries
	// process-level cancellation (Ctrl-C) for these one-shot commands.
	ctx, stop := cli.Context(0)
	_ = stop // process exit releases it; commands are one-shot
	return &client{
		base: strings.TrimRight(addr, "/"),
		hc:   &http.Client{Timeout: timeout},
		ctx:  ctx,
	}
}

func (c *client) getJSON(path string, out any) error {
	req, err := http.NewRequestWithContext(c.ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return httpErr(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *client) postJSON(path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(c.ctx, http.MethodPost, c.base+path, strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return httpErr(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func httpErr(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s", resp.Status)
}

func cmdList(args []string) {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "qlecd base URL")
	fleetWide := fs.Bool("fleet", false, "merge every ready peer's listing")
	profFlags := cli.ProfileFlags(fs)
	fs.Parse(args)
	if err := profFlags.Start(); err != nil {
		fail(err)
	}
	defer profFlags.Stop()
	c := newClient(*addr, 15*time.Second)
	path := "/v1/profiles"
	if *fleetWide {
		path += "?fleet=1"
	}
	var arts []prof.Artifact
	if err := c.getJSON(path, &arts); err != nil {
		fail(err)
	}
	if len(arts) == 0 {
		fmt.Println("no profiles captured")
		return
	}
	rows := make([][]string, 0, len(arts))
	for _, a := range arts {
		reason := a.Reason
		if reason == "" {
			reason = "manual"
		}
		rows = append(rows, []string{
			a.ID, a.Instance, a.Kind, a.Format, reason,
			a.CreatedAt.Format(time.RFC3339),
			fmt.Sprintf("%d", a.SizeBytes),
		})
	}
	fmt.Println(plot.Table(
		[]string{"id", "instance", "kind", "format", "reason", "created", "bytes"}, rows))
}

func cmdCapture(args []string) {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "qlecd base URL")
	kind := fs.String("kind", "cpu", "profile kind: cpu, heap, goroutine, block or mutex")
	seconds := fs.Float64("seconds", 2, "cpu sampling window in seconds")
	fleetWide := fs.Bool("fleet", false, "capture on every ready peer too")
	minCaptures := fs.Int("min", 0, "exit 1 unless at least N non-empty captures succeeded (CI gate)")
	profFlags := cli.ProfileFlags(fs)
	fs.Parse(args)
	if err := profFlags.Start(); err != nil {
		fail(err)
	}
	defer profFlags.Stop()
	timeout := time.Duration(*seconds*float64(time.Second)) + 30*time.Second
	c := newClient(*addr, timeout)
	var resp struct {
		Profiles []prof.Artifact   `json:"profiles"`
		Errors   map[string]string `json:"errors"`
	}
	body := map[string]any{"kind": *kind, "seconds": *seconds, "fleet": *fleetWide}
	if err := c.postJSON("/v1/profiles", body, &resp); err != nil {
		fail(err)
	}
	nonEmpty := 0
	for _, a := range resp.Profiles {
		if a.SizeBytes > 0 {
			nonEmpty++
		}
		fmt.Printf("captured %s  %s  %s  %d bytes  on %s\n",
			a.ID, a.Kind, a.Format, a.SizeBytes, a.Instance)
	}
	for peer, msg := range resp.Errors {
		fmt.Fprintf(os.Stderr, "qlecprof: peer %s: %s\n", peer, msg)
	}
	if nonEmpty < *minCaptures {
		fmt.Fprintf(os.Stderr, "qlecprof: %d non-empty captures, need %d\n", nonEmpty, *minCaptures)
		os.Exit(1)
	}
}

func cmdFetch(args []string) {
	fs := flag.NewFlagSet("fetch", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "qlecd base URL")
	id := fs.String("id", "latest", "artifact ID (\"latest\" = newest)")
	out := fs.String("o", "", "write here instead of stdout")
	profFlags := cli.ProfileFlags(fs)
	fs.Parse(args)
	if err := profFlags.Start(); err != nil {
		fail(err)
	}
	defer profFlags.Stop()
	c := newClient(*addr, 30*time.Second)
	req, err := http.NewRequestWithContext(c.ctx, http.MethodGet, c.base+"/v1/profiles/"+*id, nil)
	if err != nil {
		fail(err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		fail(httpErr(resp))
	}
	dst := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		dst = f
	}
	n, err := io.Copy(dst, resp.Body)
	if err != nil {
		fail(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "fetched %s (%s, %s): %d bytes -> %s\n",
			resp.Header.Get("X-Profile-ID"), resp.Header.Get("X-Profile-Kind"),
			resp.Header.Get("X-Profile-Format"), n, *out)
	}
}

// loadText parses one debug=1 text profile from a path or stdin ("-").
func loadText(path string) *prof.TextProfile {
	var src io.Reader
	if path == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		src = f
	}
	p, err := prof.ParseText(src)
	if err != nil {
		fail(fmt.Errorf("%s: %w (cpu profiles are binary; use `go tool pprof`)", path, err))
	}
	return p
}

func cmdTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	n := fs.Int("n", 10, "rows to show (0 = all)")
	alloc := fs.Bool("alloc", false, "rank heap profiles by cumulative allocs instead of in-use")
	profFlags := cli.ProfileFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	if err := profFlags.Start(); err != nil {
		fail(err)
	}
	defer profFlags.Stop()
	p := loadText(fs.Arg(0))
	printRows(p.Kind, p.Top(*n, *alloc))
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	n := fs.Int("n", 10, "rows to show (0 = all)")
	alloc := fs.Bool("alloc", false, "diff heap profiles by cumulative allocs instead of in-use")
	profFlags := cli.ProfileFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	if err := profFlags.Start(); err != nil {
		fail(err)
	}
	defer profFlags.Stop()
	a, b := loadText(fs.Arg(0)), loadText(fs.Arg(1))
	rows, err := prof.Diff(a, b, *n, *alloc)
	if err != nil {
		fail(err)
	}
	if len(rows) == 0 {
		fmt.Println("no change between captures")
		return
	}
	printRows(a.Kind+" diff (after - before)", rows)
}

// printRows renders Top/Diff rows: value, count, share and the stack's
// leaf frame (full stack on the following indented line when deeper).
func printRows(title string, rows []prof.TopRow) {
	fmt.Println(title + ":")
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		leaf := "(unsymbolized)"
		if len(r.Stack) > 0 {
			leaf = r.Stack[0]
		}
		table = append(table, []string{
			fmt.Sprintf("%+d", r.Value),
			fmt.Sprintf("%+d", r.Count),
			fmt.Sprintf("%5.1f%%", r.Frac*100),
			leaf,
		})
	}
	fmt.Println(plot.Table([]string{"value", "count", "share", "stack leaf"}, table))
}
