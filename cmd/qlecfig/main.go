// Command qlecfig regenerates the paper's evaluation figures.
//
// Usage:
//
//	qlecfig -fig 3a|3b|3c|3|4|latency [-out DIR] [-quick]
//	        [-timeout 5m] [-workers 0] [-reps 1]
//
// Each figure is printed as an ASCII chart on stdout and, when -out is
// given, written as CSV (figures 3*) or x,y,z,value CSV (figure 4) for
// external plotting. -quick shrinks seeds/rounds for a fast smoke run.
//
// Sweeps run their cells in parallel (-workers bounds the pool; 0 uses
// every CPU, 1 forces the serial reference schedule — results are
// identical either way) with a live cell counter on stderr. Ctrl-C or
// an elapsed -timeout cancels the sweep promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"qlec"
	"qlec/internal/cli"
	"qlec/internal/dataset"
	"qlec/internal/experiment"
	"qlec/internal/geom"
	"qlec/internal/network"
	"qlec/internal/plot"
	"qlec/internal/rng"
)

// workers is the -workers flag, applied to every sweep configuration.
var workers int

func main() {
	var (
		fig     = flag.String("fig", "3", "figure to regenerate: 1, 3a, 3b, 3c, 3 (all), latency, 4, ablation, ksweep, nsweep")
		out     = flag.String("out", "", "directory for CSV output (optional)")
		quick   = flag.Bool("quick", false, "fast smoke run (fewer seeds/rounds/nodes)")
		kOver   = flag.Int("k", 0, "override the cluster count (0 = paper default)")
		data    = flag.String("data", "", "figure 4 only: run over an x,y,z,energy_j CSV instead of the synthetic dataset")
		timeout = flag.Duration("timeout", 0, "abort after this long (0 = no limit)")
		reps    = flag.Int("reps", 1, "figure 4 only: replicate seeds to run and summarize")
		listP   = flag.Bool("list-protocols", false, "print the protocol registry roster and exit")
	)
	flag.IntVar(&workers, "workers", 0, "parallel sweep workers (0 = all CPUs, 1 = serial)")
	prof := cli.ProfileFlags(flag.CommandLine)
	logCfg := cli.LogFlags(flag.CommandLine)
	flag.Parse()
	logCfg.MustSetup(os.Stderr)
	if err := prof.Start(); err != nil {
		fail(err)
	}
	defer prof.Stop()

	ctx, stop := cli.Context(*timeout)
	defer stop()

	if *listP {
		fmt.Print(cli.FormatProtocols())
		return
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fail(err)
		}
	}
	switch *fig {
	case "1":
		runFig1(*kOver)
	case "3", "3a", "3b", "3c", "latency":
		runFig3(ctx, *fig, *out, *quick, *kOver)
	case "4":
		runFig4(ctx, *out, *quick, *kOver, *data, *reps)
	case "ablation":
		runAblation(ctx, *quick, *kOver)
	case "ksweep":
		runKSweep(ctx, *quick)
	case "nsweep":
		runNSweep(ctx, *quick)
	default:
		fail(fmt.Errorf("unknown figure %q", *fig))
	}
}

// sweepMeter wires a throttled stderr progress meter into cfg and
// returns its cleanup. Call close before printing results.
func sweepMeter(cfg *experiment.Config, label string) func() {
	m := cli.NewMeter(os.Stderr)
	cfg.Workers = workers
	cfg.Progress = m.SweepProgress(label)
	return m.Close
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qlecfig:", err)
	os.Exit(1)
}

func runFig3(ctx context.Context, which, out string, quick bool, kOver int) {
	cfg := experiment.PaperConfig()
	if kOver > 0 {
		cfg.K = kOver
	}
	if quick {
		cfg.Rounds = 5
		cfg.Seeds = []uint64{1, 2}
		cfg.Lambdas = []float64{8, 2}
		cfg.LifespanDeathLine = 4.9
		cfg.LifespanMaxRounds = 200
	}
	fmt.Fprintf(os.Stderr, "running Figure 3 sweep: %d protocols × %d λ × %d seeds (×2 run kinds)...\n",
		len(qlec.Protocols()), len(cfg.Lambdas), len(cfg.Seeds))
	done := sweepMeter(&cfg, "fig3 cells")
	f, err := qlec.ReproduceFigure3Context(ctx, cfg, nil)
	done()
	if err != nil {
		fail(err)
	}
	panels := map[string]*plot.Chart{
		"3a": f.PDR, "3b": f.Energy, "3c": f.Life, "latency": f.Latency,
	}
	order := []string{"3a", "3b", "3c", "latency"}
	for _, name := range order {
		if which != "3" && which != name {
			continue
		}
		ch := panels[name]
		s, err := ch.RenderASCII(72, 18)
		if err != nil {
			fail(err)
		}
		fmt.Println(s)
		if out != "" {
			path := filepath.Join(out, "fig"+name+".csv")
			fh, err := os.Create(path)
			if err != nil {
				fail(err)
			}
			if err := ch.WriteCSV(fh); err != nil {
				fail(err)
			}
			if err := fh.Close(); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	fmt.Println(experiment.Fig3Table(f.Sweep))
}

// runFig1 reproduces the paper's Figure 1: the clustered network
// structure after one round of head selection — members, heads and the
// central base station, XY-projected.
func runFig1(kOver int) {
	cfg := experiment.PaperConfig()
	if kOver > 0 {
		cfg.K = kOver
	}
	w, err := network.Deploy(network.Deployment{
		N: cfg.N, Side: cfg.Side, InitialEnergy: cfg.InitialEnergy,
	}, rng.NewNamed(1, "experiment/deploy"))
	if err != nil {
		fail(err)
	}
	proto, err := cfg.BuildProtocol(experiment.QLEC, w, cfg.Rounds, 0, 1)
	if err != nil {
		fail(err)
	}
	heads := proto.StartRound(0)
	isHead := map[int]bool{}
	for _, h := range heads {
		isHead[h] = true
	}
	var members, headPts []geom.Vec3
	for _, n := range w.Nodes {
		if isHead[n.ID] {
			headPts = append(headPts, n.Pos)
		} else {
			members = append(members, n.Pos)
		}
	}
	sc := &plot.Scatter{
		Title: fmt.Sprintf("Figure 1: network structure after DEEC clustering (N=%d, k=%d)", cfg.N, len(heads)),
		Box:   w.Box,
		Cols:  72, Rows: 24,
		Categories: []plot.ScatterCategory{
			{Name: "member", Marker: '.', Points: members},
			{Name: "cluster head", Marker: 'H', Points: headPts},
			{Name: "base station", Marker: 'B', Points: []geom.Vec3{w.BS}},
		},
	}
	out, err := sc.RenderASCII()
	if err != nil {
		fail(err)
	}
	fmt.Println(out)
	fmt.Printf("(XY projection; the deployment spans %.0f m of height too)\n", sc.ZSpread())
}

// runKSweep prints QLEC's sensitivity to the cluster count around
// Theorem 1's optimum (DESIGN.md §6.2).
func runKSweep(ctx context.Context, quick bool) {
	cfg := experiment.PaperConfig()
	lambda := 2.0
	ks := []int{3, 5, 8, 11, 15, 20}
	if quick {
		cfg.Rounds = 5
		cfg.Seeds = []uint64{1, 2}
		cfg.LifespanDeathLine = 4.9
		cfg.LifespanMaxRounds = 200
		ks = []int{5, 11}
	}
	fmt.Fprintf(os.Stderr, "running k sweep %v at λ=%g, %d seeds (×2 run kinds)...\n", ks, lambda, len(cfg.Seeds))
	done := sweepMeter(&cfg, "k-sweep cells")
	points, err := cfg.RunKSweep(ctx, experiment.QLEC, ks, lambda)
	done()
	if err != nil {
		fail(err)
	}
	ch, err := experiment.KSweepChart(points, experiment.QLEC, lambda)
	if err != nil {
		fail(err)
	}
	rendered, err := ch.RenderASCII(72, 16)
	if err != nil {
		fail(err)
	}
	fmt.Println(rendered)
	fmt.Println(experiment.KSweepTable(points))
}

// runNSweep prints QLEC's constant-density scalability sweep.
func runNSweep(ctx context.Context, quick bool) {
	cfg := experiment.PaperConfig()
	lambda := 4.0
	ns := []int{50, 100, 200, 400, 800}
	if quick {
		cfg.Rounds = 5
		cfg.Seeds = []uint64{1, 2}
		cfg.LifespanDeathLine = 4.9
		cfg.LifespanMaxRounds = 100
		ns = []int{50, 200}
	}
	fmt.Fprintf(os.Stderr, "running N sweep %v at λ=%g, %d seeds (×2 run kinds)...\n", ns, lambda, len(cfg.Seeds))
	done := sweepMeter(&cfg, "n-sweep cells")
	points, err := cfg.RunNSweep(ctx, experiment.QLEC, ns, lambda)
	done()
	if err != nil {
		fail(err)
	}
	fmt.Println(experiment.NSweepTable(points))
}

// runAblation prints the design-choice ladder of DESIGN.md §4 under
// congestion: full QLEC, each §3.1 improvement removed in turn, classic
// DEEC/LEACH, the paper's baselines and the unclustered strawman.
func runAblation(ctx context.Context, quick bool, kOver int) {
	cfg := experiment.PaperConfig()
	cfg.Lambdas = []float64{1.5}
	cfg.K = 8 // rerouting needs alternatives near k_opt; see EXPERIMENTS.md
	if kOver > 0 {
		cfg.K = kOver
	}
	cfg.LifespanDeathLine = 2.5
	if quick {
		cfg.Rounds = 5
		cfg.Seeds = []uint64{1, 2}
		cfg.LifespanDeathLine = 4.9
		cfg.LifespanMaxRounds = 200
	}
	ladder := []experiment.ProtocolID{
		experiment.QLEC, experiment.QLECNoFloor, experiment.QLECNoRR,
		experiment.DEECNearest, experiment.DEECPlain, experiment.LEACH,
		experiment.KMeans, experiment.FCM, experiment.Direct,
	}
	fmt.Fprintf(os.Stderr, "running ablation ladder: %d variants × %d seeds (×2 run kinds)...\n",
		len(ladder), len(cfg.Seeds))
	done := sweepMeter(&cfg, "ablation cells")
	sweep, err := cfg.RunFig3(ctx, ladder)
	done()
	if err != nil {
		fail(err)
	}
	fmt.Println(experiment.Fig3Table(sweep))
}

func runFig4(ctx context.Context, out string, quick bool, kOver int, dataPath string, reps int) {
	cfg := experiment.PaperFig4Config()
	if kOver > 0 {
		cfg.K = kOver
	}
	if quick {
		cfg.Synth.N = 400
		cfg.K = 30
		cfg.Rounds = 3
	}
	if reps > 1 {
		for r := 0; r < reps; r++ {
			cfg.Seeds = append(cfg.Seeds, cfg.Synth.Seed+uint64(r))
		}
	}
	n := cfg.Synth.N
	if dataPath != "" {
		fh, err := os.Open(dataPath)
		if err != nil {
			fail(err)
		}
		ds, err := dataset.LoadCSV(fh)
		fh.Close()
		if err != nil {
			fail(err)
		}
		cfg.Data = ds
		n = len(ds.Positions)
		if kOver == 0 {
			cfg.K = 0 // derive from Theorem 1 for foreign datasets
		}
	}
	fmt.Fprintf(os.Stderr, "running Figure 4: %d nodes, k=%d, %d rounds, %d replicate(s)...\n",
		n, cfg.K, cfg.Rounds, max(reps, 1))
	m := cli.NewMeter(os.Stderr)
	cfg.Workers = workers
	cfg.Progress = m.SweepProgress("fig4 replicates")
	res, err := qlec.ReproduceFigure4Context(ctx, cfg)
	m.Close()
	if err != nil {
		fail(err)
	}
	hm := experiment.Fig4Heatmap(res, 72, 24)
	s, err := hm.RenderASCII()
	if err != nil {
		fail(err)
	}
	fmt.Println(s)
	fmt.Println(experiment.Fig4Summary(res))
	if out != "" {
		path := filepath.Join(out, "fig4.csv")
		fh, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := hm.WriteCSV(fh); err != nil {
			fail(err)
		}
		if err := fh.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
}
