// Command qlecd runs the QLEC simulation service: a long-lived daemon
// that accepts simulation jobs over HTTP/JSON, executes them on a
// bounded worker pool, streams per-round progress over SSE and caches
// results content-addressed on disk — identical submissions never
// simulate twice, across restarts included.
//
// With -self plus -peers or -join, daemons form a cooperating fleet:
// sweep jobs split into content-addressed cells that idle peers steal
// over HTTP (TTL leases re-pool a dead peer's cells), and the result
// cache is shared via a consistent-hash ring, so a config computed
// anywhere is a cache hit everywhere (see README "Running a fleet").
//
// Usage:
//
//	qlecd [-addr :8080] [-data-dir qlecd-data] [-workers 2]
//	      [-sim-workers 0] [-queue 256] [-retries 1]
//	      [-drain-timeout 30s] [-log-level info] [-log-format text]
//	      [-self http://host:8080] [-peers url,url] [-join url]
//	      [-cell-workers 0] [-lease-ttl 15s]
//	      [-trace-history 64] [-audit-history 64] [-profile-history 32]
//	      [-runtime-sample 10s] [-auto-profile 5m]
//	      [-scale-slo 0] [-scale-fast-window 1m] [-scale-slow-window 5m]
//	      [-scale-hysteresis 30s] [-scale-hook CMD]
//	      [-pprof] [-pprof-block] [-pprof-mutex] [-version] [-quiet]
//
// API (see README "Running as a service" for curl examples):
//
//	POST   /v1/jobs             submit a job (experiment config + kind)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job state
//	DELETE /v1/jobs/{id}        cancel (idempotent; next round boundary)
//	GET    /v1/jobs/{id}/events SSE progress stream
//	GET    /v1/jobs/{id}/trace  Chrome trace_event JSON for the job
//	GET    /v1/jobs/{id}/audit  flight-recorder artifact (single runs;
//	                            inspect with cmd/qlecaudit)
//	POST   /v1/batches          submit many configs as one batch
//	GET    /v1/batches          list batches
//	GET    /v1/batches/{id}     batch state (per-config table)
//	GET    /v1/batches/{id}/events aggregate SSE stream for a batch
//	GET    /v1/protocols        registered protocol roster (ids, aliases,
//	                            paper refs, default params)
//	GET    /v1/results/{hash}   content-addressed result download
//	GET    /healthz             liveness (always 200 while the process
//	                            serves; use /readyz for drain state)
//	GET    /readyz              readiness (503 once draining begins)
//	GET    /v1/fleet            peer roster + work-pool counters (+ the
//	                            autoscale advisor's advice with -scale-slo)
//	GET    /v1/batches/{id}/trace fleet-merged Chrome trace of a batch
//	POST   /v1/profiles         capture a profile now (cpu/heap/goroutine/
//	                            block/mutex; fleet=true fans out to peers)
//	GET    /v1/profiles         captured-profile metadata (?fleet=1 merges
//	                            every ready peer's listing)
//	GET    /v1/profiles/{id}    raw profile bytes ("latest" = newest;
//	                            fetch and inspect with cmd/qlecprof)
//	GET    /v1/runtime          continuous runtime-sampler trend (heap,
//	                            GC, scheduler latency)
//	GET    /metrics             Prometheus text exposition
//	GET    /metrics/federate    fleet-merged exposition (all ready peers;
//	                            watch it live with cmd/qlecstat)
//	GET    /metrics.json        legacy JSON counter snapshot
//	GET    /version             build/VCS metadata
//	GET    /debug/pprof/        profiling endpoints (with -pprof)
//
// The fleet-internal endpoints (POST /v1/fleet/join, /v1/fleet/steal,
// /v1/fleet/complete, /v1/fleet/renew, GET/PUT /v1/fleet/cache/{hash})
// are how peers exchange work and results; they are not client API.
//
// The first SIGINT/SIGTERM drains gracefully: submissions get 503,
// in-flight jobs run to completion (bounded by -drain-timeout), queued
// jobs stay queued on disk and resume on the next start. A second
// signal force-quits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"qlec/internal/cli"
	"qlec/internal/fleet"
	"qlec/internal/obs"
	"qlec/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		dataDir      = flag.String("data-dir", "qlecd-data", "job/result store directory (empty = in-memory only)")
		workers      = flag.Int("workers", 2, "concurrent simulation jobs")
		simWorkers   = flag.Int("sim-workers", 0, "per-job sweep parallelism override (0 = as submitted)")
		queueLimit   = flag.Int("queue", 256, "maximum queued jobs before 503")
		retries      = flag.Int("retries", 1, "re-queues per job on transient failure")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
		enablePprof  = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		pprofBlock   = flag.Bool("pprof-block", false, "enable runtime block profiling (rate 1) so block captures have data")
		pprofMutex   = flag.Bool("pprof-mutex", false, "enable runtime mutex profiling (fraction 1) so mutex captures have data")
		version      = flag.Bool("version", false, "print build/VCS metadata and exit")
		quiet        = flag.Bool("quiet", false, "suppress the operational log")

		self        = flag.String("self", "", "this daemon's base URL as peers reach it (enables fleet mode)")
		peersFlag   = flag.String("peers", "", "comma-separated peer base URLs to start the fleet roster with")
		join        = flag.String("join", "", "existing fleet member to join through (adopts its roster)")
		cellWorkers = flag.Int("cell-workers", 0, "fleet cell executors (0 = same as -workers)")
		leaseTTL    = flag.Duration("lease-ttl", 15*time.Second, "fleet work-lease TTL; a dead peer's cells re-pool after this")

		traceHistory   = flag.Int("trace-history", 64, "per-job trace recorders retained (FIFO eviction)")
		auditHistory   = flag.Int("audit-history", 64, "per-job audit artifacts retained (FIFO eviction)")
		profileHistory = flag.Int("profile-history", 32, "captured profile artifacts retained (FIFO eviction)")
		runtimeSample  = flag.Duration("runtime-sample", 10*time.Second, "runtime sampler cadence behind qlecd_runtime_* and /v1/runtime (0 = off)")
		autoProfile    = flag.Duration("auto-profile", 5*time.Minute, "min gap between anomaly-triggered profile captures per reason (negative = off)")

		scaleSLO        = flag.Duration("scale-slo", 0, "queue-wait SLO driving the autoscale advisor (0 = advisor off)")
		scaleFastWindow = flag.Duration("scale-fast-window", time.Minute, "advisor fast burn-rate window")
		scaleSlowWindow = flag.Duration("scale-slow-window", 5*time.Minute, "advisor slow burn-rate window")
		scaleHysteresis = flag.Duration("scale-hysteresis", 30*time.Second, "how long a lower recommendation must hold before publishing")
		scaleHook       = flag.String("scale-hook", "", "shell command run when the recommendation changes to a non-zero delta (QLECD_SCALE_DELTA/QLECD_SCALE_REASON exported)")
	)
	logCfg := cli.LogFlags(flag.CommandLine)
	prof := cli.ProfileFlags(flag.CommandLine)
	flag.Parse()

	if *version {
		fmt.Println(obs.Version())
		return
	}
	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "qlecd:", err)
		os.Exit(1)
	}
	defer prof.Stop()
	if *pprofBlock {
		runtime.SetBlockProfileRate(1)
	}
	if *pprofMutex {
		runtime.SetMutexProfileFraction(1)
	}

	var logDst io.Writer = os.Stderr
	if *quiet {
		logDst = io.Discard
	}
	logger := logCfg.MustSetup(logDst)
	bi := obs.Version()
	logger.Info("qlecd starting",
		"version", bi.Version, "go", bi.GoVersion, "revision", bi.Revision)

	var peers []string
	for _, p := range strings.Split(*peersFlag, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	srv, err := service.New(service.Options{
		DataDir:               *dataDir,
		Workers:               *workers,
		SimWorkers:            *simWorkers,
		QueueLimit:            *queueLimit,
		MaxRetries:            *retries,
		Logger:                logger,
		Pprof:                 *enablePprof,
		TraceHistory:          *traceHistory,
		AuditHistory:          *auditHistory,
		ProfileHistory:        *profileHistory,
		RuntimeSampleInterval: *runtimeSample,
		AutoProfileMinGap:     *autoProfile,
		Fleet: service.FleetOptions{
			Self:        *self,
			Peers:       peers,
			Join:        *join,
			CellWorkers: *cellWorkers,
			LeaseTTL:    *leaseTTL,
			ScaleHook:   *scaleHook,
			Advisor: fleet.AdvisorConfig{
				SLO:        *scaleSLO,
				FastWindow: *scaleFastWindow,
				SlowWindow: *scaleSlowWindow,
				Hysteresis: *scaleHysteresis,
			},
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qlecd:", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	logger.Info("listening",
		"addr", *addr, "dataDir", *dataDir, "workers", *workers, "pprof", *enablePprof)
	if *self != "" {
		logger.Info("fleet mode", "self", *self, "peers", peers, "join", *join)
	}

	// First signal cancels ctx (drain), second force-quits — the same
	// two-stage Ctrl-C contract as every other tool in the repo.
	ctx, stop := cli.Context(0)
	defer stop()

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "qlecd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("draining", "timeout", drainTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Warn("drain incomplete; interrupted jobs will resume on next start", "err", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("http shutdown", "err", err)
	}
	logger.Info("bye")
}
