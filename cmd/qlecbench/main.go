// Command qlecbench converts `go test -bench -benchmem` output into a
// stable JSON document, so benchmark trajectories can be committed and
// diffed across PRs (see `make bench-json`, which emits BENCH_PR2.json).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | qlecbench -out BENCH.json
//	qlecbench -out BENCH.json bench.txt    # or from a saved log
//	qlecbench - < bench.txt                # "-" names stdin explicitly
//
// The optional positional argument names the input: a file path, or "-"
// for stdin (the default, so piping needs no temp file).
//
// Lines that are not benchmark results (package headers, PASS/ok, warm-up
// noise) are ignored. Every metric column is captured — the standard
// ns/op, B/op and allocs/op plus any b.ReportMetric custom units such as
// the pdr/joules/rounds columns the repro benchmarks report.
//
// With -against BASELINE.json the converter doubles as a regression
// gate: after writing the document it compares every benchmark whose
// name matches -match against the committed baseline and exits non-zero
// when ns/op or allocs/op exceed baseline·tolerance. CI runs it as
//
//	make bench-json ... | qlecbench -out BENCH_PR7.json \
//	    -against BENCH_PR2.json -match 'Fig3aPacketDeliveryRate/QLEC'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"

	"qlec/internal/cli"
	"qlec/internal/obs"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// benchDoc is the emitted JSON document.
type benchDoc struct {
	Tool string `json:"tool"`
	// Build stamps the VCS revision (and dirty flag) of the qlecbench
	// binary, so a committed BENCH file records what produced it. The
	// stamp describes this converter, not the benchmarked binary — but
	// `make bench-json` builds both from the same checkout, so for the
	// committed trajectory files they coincide. Fields are empty for
	// non-VCS builds (plain `go run`, test binaries).
	Build      obs.BuildInfo     `json:"build"`
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []benchResult     `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	against := flag.String("against", "", "baseline JSON to compare against; exit non-zero on regression")
	match := flag.String("match", "Fig3aPacketDeliveryRate/QLEC", "regexp selecting which benchmarks the -against gate compares")
	tolerance := flag.Float64("tolerance", 1.0, "fail when current metric exceeds baseline times this factor")
	prof := cli.ProfileFlags(flag.CommandLine)
	flag.Parse()
	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "qlecbench:", err)
		os.Exit(1)
	}
	defer prof.Stop()
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "qlecbench: at most one input (file path or -) expected")
		os.Exit(1)
	}
	input := "-"
	if flag.NArg() == 1 {
		input = flag.Arg(0)
	}
	doc, err := run(input, *out, os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qlecbench:", err)
		os.Exit(1)
	}
	if *against != "" {
		if err := compare(doc, *against, *match, *tolerance, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "qlecbench:", err)
			os.Exit(1)
		}
	}
}

// run converts the named input ("-" = stdin) to JSON on the named
// output ("" = stdout), returning the parsed document so the caller can
// gate on it. Factored out of main so tests can drive the full path
// with plain readers and temp files.
func run(input, out string, stdin io.Reader, stdout io.Writer) (*benchDoc, error) {
	r := stdin
	if input != "-" {
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	doc, err := parse(r)
	if err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines in %s", inputName(input))
	}

	w := stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return doc, enc.Encode(doc)
}

// gatedMetrics are the columns the -against comparison checks: the two
// that capture "did the hot path get slower or chattier".
var gatedMetrics = []string{"ns/op", "allocs/op"}

// compare gates doc against a committed baseline document: every
// benchmark whose name matches the pattern and appears in both files
// must keep ns/op and allocs/op at or below baseline·tolerance.
// Benchmarks present on one side only are reported but do not fail the
// gate (the baseline predates newly added benchmarks).
func compare(doc *benchDoc, baselinePath, match string, tolerance float64, w io.Writer) error {
	re, err := regexp.Compile(match)
	if err != nil {
		return fmt.Errorf("bad -match pattern: %w", err)
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base benchDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	baseline := make(map[string]map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b.Metrics
	}
	compared, regressions := 0, 0
	for _, b := range doc.Benchmarks {
		if !re.MatchString(b.Name) {
			continue
		}
		ref, ok := baseline[b.Name]
		if !ok {
			fmt.Fprintf(w, "qlecbench: %s not in baseline %s, skipping\n", b.Name, baselinePath)
			continue
		}
		compared++
		for _, m := range gatedMetrics {
			cur, haveCur := b.Metrics[m]
			old, haveOld := ref[m]
			if !haveCur || !haveOld {
				continue
			}
			limit := old * tolerance
			if cur > limit {
				regressions++
				fmt.Fprintf(w, "qlecbench: REGRESSION %s %s: %.0f > %.0f (baseline %.0f x tolerance %.2f)\n",
					b.Name, m, cur, limit, old, tolerance)
			} else {
				fmt.Fprintf(w, "qlecbench: ok %s %s: %.0f <= %.0f (baseline %.0f)\n",
					b.Name, m, cur, limit, old)
			}
		}
	}
	if compared == 0 {
		return fmt.Errorf("no benchmark matched %q in both current output and %s", match, baselinePath)
	}
	if regressions > 0 {
		return fmt.Errorf("%d metric(s) regressed against %s", regressions, baselinePath)
	}
	return nil
}

func inputName(input string) string {
	if input == "-" {
		return "stdin"
	}
	return fmt.Sprintf("%q", input)
}

// parse reads go-test benchmark output. Result lines have the shape
//
//	BenchmarkName-8   <N>   <value> <unit>   <value> <unit> ...
//
// goos/goarch/pkg/cpu header lines are folded into the env map (last
// writer wins when piping several packages together — the values are
// identical on one machine anyway).
func parse(r io.Reader) (*benchDoc, error) {
	doc := &benchDoc{Tool: "qlecbench", Build: obs.Version(), Env: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if k, v, ok := strings.Cut(line, ": "); ok {
			switch k {
			case "goos", "goarch", "cpu":
				doc.Env[k] = v
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseLine(line)
		if !ok {
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// parseLine splits one result line into name, iteration count and
// value/unit metric pairs. ok is false for anything malformed — the
// caller skips such lines, since go-test output legitimately contains
// non-result lines starting with "Benchmark" (e.g. a benchmark name
// printed alone when -v interleaves).
func parseLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	// Minimum shape: name, N, value, unit.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	// Strip a trailing -<GOMAXPROCS> so names are stable across machines;
	// only a purely numeric suffix goes (the "-means" of
	// "BenchmarkFig3aPacketDeliveryRate/k-means" must survive).
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res := benchResult{
		Name:       name,
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
