// Command qlecbench converts `go test -bench -benchmem` output into a
// stable JSON document, so benchmark trajectories can be committed and
// diffed across PRs (see `make bench-json`, which emits BENCH_PR2.json).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | qlecbench -out BENCH.json
//	qlecbench -out BENCH.json bench.txt    # or from a saved log
//	qlecbench - < bench.txt                # "-" names stdin explicitly
//
// The optional positional argument names the input: a file path, or "-"
// for stdin (the default, so piping needs no temp file).
//
// Lines that are not benchmark results (package headers, PASS/ok, warm-up
// noise) are ignored. Every metric column is captured — the standard
// ns/op, B/op and allocs/op plus any b.ReportMetric custom units such as
// the pdr/joules/rounds columns the repro benchmarks report.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"qlec/internal/obs"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// benchDoc is the emitted JSON document.
type benchDoc struct {
	Tool string `json:"tool"`
	// Build stamps the VCS revision (and dirty flag) of the qlecbench
	// binary, so a committed BENCH file records what produced it. The
	// stamp describes this converter, not the benchmarked binary — but
	// `make bench-json` builds both from the same checkout, so for the
	// committed trajectory files they coincide. Fields are empty for
	// non-VCS builds (plain `go run`, test binaries).
	Build      obs.BuildInfo     `json:"build"`
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []benchResult     `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	flag.Parse()
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "qlecbench: at most one input (file path or -) expected")
		os.Exit(1)
	}
	input := "-"
	if flag.NArg() == 1 {
		input = flag.Arg(0)
	}
	if err := run(input, *out, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qlecbench:", err)
		os.Exit(1)
	}
}

// run converts the named input ("-" = stdin) to JSON on the named
// output ("" = stdout). Factored out of main so tests can drive the
// full path with plain readers and temp files.
func run(input, out string, stdin io.Reader, stdout io.Writer) error {
	r := stdin
	if input != "-" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	doc, err := parse(r)
	if err != nil {
		return err
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines in %s", inputName(input))
	}

	w := stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func inputName(input string) string {
	if input == "-" {
		return "stdin"
	}
	return fmt.Sprintf("%q", input)
}

// parse reads go-test benchmark output. Result lines have the shape
//
//	BenchmarkName-8   <N>   <value> <unit>   <value> <unit> ...
//
// goos/goarch/pkg/cpu header lines are folded into the env map (last
// writer wins when piping several packages together — the values are
// identical on one machine anyway).
func parse(r io.Reader) (*benchDoc, error) {
	doc := &benchDoc{Tool: "qlecbench", Build: obs.Version(), Env: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if k, v, ok := strings.Cut(line, ": "); ok {
			switch k {
			case "goos", "goarch", "cpu":
				doc.Env[k] = v
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseLine(line)
		if !ok {
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// parseLine splits one result line into name, iteration count and
// value/unit metric pairs. ok is false for anything malformed — the
// caller skips such lines, since go-test output legitimately contains
// non-result lines starting with "Benchmark" (e.g. a benchmark name
// printed alone when -v interleaves).
func parseLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	// Minimum shape: name, N, value, unit.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	// Strip a trailing -<GOMAXPROCS> so names are stable across machines;
	// only a purely numeric suffix goes (the "-means" of
	// "BenchmarkFig3aPacketDeliveryRate/k-means" must survive).
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res := benchResult{
		Name:       name,
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
