package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: qlec
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig3aPacketDeliveryRate/QLEC/lambda=8         	       3	   1939927 ns/op	         0.9992 pdr	  363472 B/op	    2556 allocs/op
BenchmarkFig3aPacketDeliveryRate/k-means/lambda=2      	       3	   3697223 ns/op	         0.9529 pdr	  968576 B/op	    2172 allocs/op
BenchmarkDecide-8 	19073420	        64.29 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	qlec	0.358s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	if doc.Env["goos"] != "linux" || doc.Env["cpu"] == "" {
		t.Fatalf("env not captured: %v", doc.Env)
	}
	// The build stamp is present; a test binary has no VCS metadata, so
	// only the always-available field is asserted.
	if doc.Build.GoVersion == "" {
		t.Fatalf("build stamp not captured: %+v", doc.Build)
	}

	first := doc.Benchmarks[0]
	if first.Name != "BenchmarkFig3aPacketDeliveryRate/QLEC/lambda=8" {
		t.Fatalf("name = %q", first.Name)
	}
	if first.Iterations != 3 {
		t.Fatalf("iterations = %d", first.Iterations)
	}
	for unit, want := range map[string]float64{
		"ns/op": 1939927, "pdr": 0.9992, "B/op": 363472, "allocs/op": 2556,
	} {
		if got := first.Metrics[unit]; got != want {
			t.Fatalf("metric %s = %v, want %v", unit, got, want)
		}
	}

	// The -8 GOMAXPROCS suffix is stripped; "k-means" is not mangled.
	if doc.Benchmarks[2].Name != "BenchmarkDecide" {
		t.Fatalf("suffix not stripped: %q", doc.Benchmarks[2].Name)
	}
	if doc.Benchmarks[1].Name != "BenchmarkFig3aPacketDeliveryRate/k-means/lambda=2" {
		t.Fatalf("k-means name mangled: %q", doc.Benchmarks[1].Name)
	}
}

// TestRunInputs drives the full convert path for both input spellings:
// "-" (stdin, the piped `go test -bench | qlecbench` case) and a file
// path argument. The two must produce identical documents.
func TestRunInputs(t *testing.T) {
	var fromStdin bytes.Buffer
	if _, err := run("-", "", strings.NewReader(sample), &fromStdin); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(t.TempDir(), "bench.json")
	if _, err := run(path, outPath, nil, nil); err != nil {
		t.Fatal(err)
	}
	fromFile, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromStdin.Bytes(), fromFile) {
		t.Fatalf("stdin and file inputs disagree:\n%s\nvs\n%s", fromStdin.Bytes(), fromFile)
	}

	var doc benchDoc
	if err := json.Unmarshal(fromFile, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("round-tripped %d benchmarks, want 3", len(doc.Benchmarks))
	}

	if _, err := run(filepath.Join(t.TempDir(), "missing.txt"), "", nil, nil); err == nil {
		t.Fatal("missing input file accepted")
	}
	if _, err := run("-", "", strings.NewReader("no benchmarks here\n"), &fromStdin); err == nil {
		t.Fatal("benchmark-free input accepted")
	}
}

func TestParseLineRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkLonely",
		"BenchmarkOddFields 3 12 ns/op extra",
		"BenchmarkNotANumber x 12 ns/op",
		"BenchmarkBadValue 3 twelve ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("malformed line accepted: %q", line)
		}
	}
}

// TestCompareGate exercises the -against regression gate: pass at or
// under baseline·tolerance, fail above it, error when nothing matches.
func TestCompareGate(t *testing.T) {
	mk := func(ns, allocs float64) *benchDoc {
		return &benchDoc{Benchmarks: []benchResult{{
			Name:    "BenchmarkFig3aPacketDeliveryRate/QLEC/lambda=8",
			Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs},
		}}}
	}
	base := filepath.Join(t.TempDir(), "base.json")
	raw, err := json.Marshal(mk(1000, 100))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(base, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var log bytes.Buffer
	if err := compare(mk(900, 100), base, "QLEC", 1.0, &log); err != nil {
		t.Fatalf("faster run failed the gate: %v\n%s", err, log.String())
	}
	if err := compare(mk(1100, 100), base, "QLEC", 1.0, &log); err == nil {
		t.Fatal("slower ns/op passed the gate")
	}
	if err := compare(mk(900, 150), base, "QLEC", 1.0, &log); err == nil {
		t.Fatal("alloc regression passed the gate")
	}
	// Tolerance gives headroom: 10% slower passes at 1.10.
	if err := compare(mk(1100, 100), base, "QLEC", 1.10, &log); err != nil {
		t.Fatalf("within-tolerance run failed the gate: %v", err)
	}
	if err := compare(mk(900, 100), base, "NoSuchBenchmark", 1.0, &log); err == nil {
		t.Fatal("empty comparison set passed the gate")
	}
	if err := compare(mk(900, 100), filepath.Join(t.TempDir(), "missing.json"), "QLEC", 1.0, &log); err == nil {
		t.Fatal("missing baseline accepted")
	}
}
