// Command qlecaudit inspects flight-recorder artifacts produced by
// qlecsim -audit or fetched from qlecd's /v1/jobs/{id}/audit endpoint.
//
// Usage:
//
//	qlecaudit report [-top 10] <audit.json | ->
//	qlecaudit explain -node N [-round R] <audit.json | ->
//	qlecaudit diff <a.json> <b.json>
//
// report prints the run's energy accounting (per cause and per node),
// conservation-violation status and anomaly summary. explain replays
// one node's routing decisions — candidate heads, their Q-values, the
// ε roll and the realized reward — optionally restricted to one round.
// diff locates the first point where two artifacts' ledgers or decision
// streams diverge; identically-seeded runs must diff clean, so any
// divergence is a reproducibility bug. diff exits 1 on divergence,
// report exits 1 when the artifact records conservation violations.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"qlec/internal/audit"
	"qlec/internal/cli"
	"qlec/internal/plot"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "report":
		cmdReport(os.Args[2:])
	case "explain":
		cmdExplain(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  qlecaudit report [-top 10] <audit.json | ->
  qlecaudit explain -node N [-round R] <audit.json | ->
  qlecaudit diff <a.json> <b.json>`)
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qlecaudit:", err)
	os.Exit(1)
}

func load(path string) *audit.Artifact {
	var src io.Reader
	if path == "-" {
		src = os.Stdin
	} else {
		fh, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		defer fh.Close()
		src = fh
	}
	a, err := audit.ReadArtifact(src)
	if err != nil {
		fail(err)
	}
	return a
}

func cmdReport(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	prof := cli.ProfileFlags(fs)
	top := fs.Int("top", 10, "show the N highest-consumption nodes (0 = all)")
	fs.Parse(args)
	if err := prof.Start(); err != nil {
		fail(err)
	}
	defer prof.Stop()
	if fs.NArg() != 1 {
		usage()
	}
	a := load(fs.Arg(0))
	rep := a.Report

	if a.Build.Revision != "" {
		dirty := ""
		if a.Build.Modified {
			dirty = " (dirty)"
		}
		fmt.Printf("build %.12s%s\n\n", a.Build.Revision, dirty)
	}
	fmt.Println(plot.Table(
		[]string{"quantity", "value"},
		[][]string{
			{"rounds", fmt.Sprintf("%d", rep.Rounds)},
			{"ledger entries", keptString(rep.Entries, rep.EntriesKept)},
			{"decision records", keptString(rep.Decisions, rep.DecisionsKept)},
			{"total energy (J)", fmt.Sprintf("%.4f", float64(rep.TotalJ))},
			{"  tx / rx (J)", fmt.Sprintf("%.4f / %.4f", float64(rep.TxJ), float64(rep.RxJ))},
			{"  fusion / control (J)", fmt.Sprintf("%.4f / %.4f", float64(rep.FusionJ), float64(rep.ControlJ))},
			{"conservation violations", fmt.Sprintf("%d", rep.ViolationCount)},
			{"anomalies", fmt.Sprintf("%d", anomalyTotal(rep))},
		},
	))

	if len(rep.AnomalyCounts) > 0 {
		fmt.Println()
		var rows [][]string
		for _, kind := range []string{audit.AnomalyRoutingLoop, audit.AnomalyCHStarvation, audit.AnomalyQDivergence, audit.AnomalyDeadNodeTx} {
			if c, ok := rep.AnomalyCounts[kind]; ok {
				rows = append(rows, []string{kind, fmt.Sprintf("%d", c)})
			}
		}
		fmt.Println(plot.Table([]string{"anomaly", "count"}, rows))
		for _, an := range rep.Anomalies {
			fmt.Printf("  round %d  %s: %s\n", an.Round, an.Type, an.Detail)
		}
	}
	for _, v := range rep.Violations {
		fmt.Printf("  VIOLATION %s\n", v.String())
	}

	if len(rep.Nodes) > 0 {
		fmt.Println()
		var rows [][]string
		for _, n := range rep.TopSpenders(*top) {
			rows = append(rows, []string{
				fmt.Sprintf("%d", n.Node),
				fmt.Sprintf("%.4f", float64(n.Total)),
				fmt.Sprintf("%.4f", float64(n.Tx)),
				fmt.Sprintf("%.4f", float64(n.Rx)),
				fmt.Sprintf("%.4f", float64(n.Fusion)),
				fmt.Sprintf("%.4f", float64(n.Control)),
				fmt.Sprintf("%.4f", float64(n.Residual)),
			})
		}
		fmt.Println(plot.Table(
			[]string{"top spenders", "total (J)", "tx", "rx", "fusion", "control", "residual"}, rows))
	}

	if rep.ViolationCount > 0 {
		os.Exit(1)
	}
}

func keptString(total, kept int) string {
	if kept == total {
		return fmt.Sprintf("%d", total)
	}
	return fmt.Sprintf("%d (%d kept)", total, kept)
}

func anomalyTotal(rep audit.Report) uint64 {
	var n uint64
	for _, c := range rep.AnomalyCounts {
		n += c
	}
	return n
}

func cmdExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	prof := cli.ProfileFlags(fs)
	node := fs.Int("node", -1, "node whose decisions to replay (required)")
	round := fs.Int("round", -1, "restrict to one round (-1 = all)")
	fs.Parse(args)
	if err := prof.Start(); err != nil {
		fail(err)
	}
	defer prof.Stop()
	if fs.NArg() != 1 || *node < 0 {
		usage()
	}
	a := load(fs.Arg(0))
	ds := a.ExplainNode(*node, *round)
	if len(ds) == 0 {
		fmt.Printf("no decisions recorded for node %d", *node)
		if *round >= 0 {
			fmt.Printf(" in round %d", *round)
		}
		fmt.Println(" (records age out oldest-first; see decisionsKept in the report)")
		return
	}
	var rows [][]string
	for _, d := range ds {
		rows = append(rows, []string{
			fmt.Sprintf("%d", d.Round),
			candidateString(d.Candidates, d.QValues),
			headName(d.Greedy),
			chosenString(d),
			rollString(d.EpsRoll),
			rewardString(d),
		})
	}
	fmt.Println(plot.Table(
		[]string{"round", "candidates (Q)", "greedy", "chosen", "eps roll", "reward"}, rows))
}

func candidateString(cands []int, qs []float64) string {
	parts := make([]string, 0, len(cands))
	for i, c := range cands {
		q := ""
		if i < len(qs) {
			q = fmt.Sprintf(" %.3f", qs[i])
		}
		parts = append(parts, headName(c)+q)
	}
	return strings.Join(parts, ", ")
}

// headName renders a candidate id; negative ids are the base station.
func headName(id int) string {
	if id < 0 {
		return "BS"
	}
	return fmt.Sprintf("%d", id)
}

func chosenString(d audit.DecisionRecord) string {
	s := headName(d.Chosen)
	if d.Explored {
		s += " (explored)"
	}
	return s
}

func rollString(roll *float64) string {
	if roll == nil {
		return "-"
	}
	return fmt.Sprintf("%.3f", *roll)
}

func rewardString(d audit.DecisionRecord) string {
	if !d.HasReward {
		return "-"
	}
	out := fmt.Sprintf("%.3f", d.Reward)
	if d.Success {
		return out + " (ack)"
	}
	return out + " (drop)"
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	prof := cli.ProfileFlags(fs)
	fs.Parse(args)
	if err := prof.Start(); err != nil {
		fail(err)
	}
	defer prof.Stop()
	if fs.NArg() != 2 {
		usage()
	}
	a, b := load(fs.Arg(0)), load(fs.Arg(1))
	if d := audit.Compare(a, b); d != nil {
		fmt.Printf("DIVERGED: %s\n", d.String())
		os.Exit(1)
	}
	fmt.Printf("audit streams identical: %d ledger entries, %d decisions\n",
		len(a.Ledger), len(a.Decisions))
}
