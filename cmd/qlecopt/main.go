// Command qlecopt evaluates Theorem 1 (optimal cluster count in a 3-D
// network) and cross-checks it against a brute-force sweep of Eq. (6).
//
// Usage:
//
//	qlecopt [-n 100] [-side 200] [-dtobs 0] [-bits 4000] [-sweep]
//	        [-tournament]
//
// With -dtobs 0 the mean node→BS distance is taken for a center-mounted
// base station (the paper's Fig. 1 geometry). -sweep prints E_r(k) around
// the optimum so the argmin is visible.
//
// -tournament cross-checks the theory empirically: every registered
// non-ablation protocol runs the tournament matrix at Theorem 1's
// k_opt, and the ranked report (PDR, J/node, first/half-node-death
// rounds) prints after the closed-form table.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"qlec/internal/cli"
	"qlec/internal/energy"
	"qlec/internal/experiment"
	"qlec/internal/geom"
	"qlec/internal/plot"
)

func main() {
	var (
		n       = flag.Int("n", 100, "node count")
		side    = flag.Float64("side", 200, "cube side length (meters)")
		dtobs   = flag.Float64("dtobs", 0, "mean node→BS distance; 0 = cube-center BS closed form")
		bits    = flag.Int("bits", 4000, "packet size (bits)")
		sweep   = flag.Bool("sweep", false, "print the E_r(k) sweep around k_opt")
		tourn   = flag.Bool("tournament", false, "run the protocol tournament at k_opt and print the ranked report")
		timeout = flag.Duration("timeout", 0, "abort the brute-force cross-check or tournament after this long (0 = no limit)")
	)
	prof := cli.ProfileFlags(flag.CommandLine)
	logCfg := cli.LogFlags(flag.CommandLine)
	flag.Parse()
	logCfg.MustSetup(os.Stderr)
	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer prof.Stop()

	ctx, stop := cli.Context(*timeout)
	defer stop()

	model := energy.DefaultModel()
	d := *dtobs
	if d == 0 {
		d = geom.ExpectedMeanDistCubeToCenter(*side)
	}
	kopt := model.OptimalClusterCount(*n, *side, d)

	fmt.Println(plot.Table(
		[]string{"quantity", "value"},
		[][]string{
			{"N", fmt.Sprintf("%d", *n)},
			{"M (side)", fmt.Sprintf("%g m", *side)},
			{"d_toBS", fmt.Sprintf("%.3f m", d)},
			{"ε_fs", fmt.Sprintf("%g J/bit/m²", float64(model.FreeSpace))},
			{"ε_mp", fmt.Sprintf("%g J/bit/m⁴", float64(model.MultiPath))},
			{"d₀ (crossover)", fmt.Sprintf("%.3f m", model.CrossoverDistance())},
			{"k_opt (Theorem 1)", fmt.Sprintf("%.3f", kopt)},
			{"k_opt rounded", fmt.Sprintf("%d", int(math.Round(kopt)))},
			{"d_c at k_opt (Eq. 5)", fmt.Sprintf("%.3f m", geom.CoverageRadius(*side, maxInt(1, int(math.Round(kopt)))))},
			{"estimated R ([7], 5 J/node)", fmt.Sprintf("%d rounds", model.EstimatedLifespanRounds(
				energy.Joules(5*float64(*n)), *bits, *n, maxInt(1, int(math.Round(kopt))), *side, d))},
		},
	))

	// Cross-check: the discrete argmin of Eq. (6) composed with Lemma 1.
	bestK, bestE := 1, math.Inf(1)
	for k := 1; k <= *n; k++ {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "qlecopt: cross-check interrupted at k=%d (%v)\n", k, ctx.Err())
			break
		}
		e := float64(model.RoundEnergyAtK(*bits, *n, float64(k), *side, d))
		if e < bestE {
			bestK, bestE = k, e
		}
	}
	fmt.Printf("\nbrute-force argmin of Eq. (6): k=%d (E_r=%.6g J)\n", bestK, bestE)
	if math.Abs(float64(bestK)-kopt) > 1.5 {
		fmt.Fprintf(os.Stderr, "warning: closed form %.2f and brute force %d disagree\n", kopt, bestK)
	}

	if *sweep {
		lo := maxInt(1, int(kopt/3))
		hi := int(kopt * 3)
		var rows [][]string
		for k := lo; k <= hi; k++ {
			e := float64(model.RoundEnergyAtK(*bits, *n, float64(k), *side, d))
			marker := ""
			if k == bestK {
				marker = "← argmin"
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", k),
				fmt.Sprintf("%.6g", e),
				marker,
			})
		}
		fmt.Println()
		fmt.Println(plot.Table([]string{"k", "E_r (J/round)", ""}, rows))
	}

	if *tourn {
		cfg := experiment.PaperConfig()
		cfg.N = *n
		cfg.Side = *side
		cfg.K = maxInt(1, int(math.Round(kopt)))
		cfg.Sim.Bits = *bits
		// Keep the empirical cross-check CLI-sized: one seed, short
		// fixed-round leg, bounded endurance leg.
		cfg.Rounds = 10
		cfg.Seeds = []uint64{1}
		cfg.LifespanMaxRounds = 600
		fmt.Fprintf(os.Stderr, "qlecopt: tournament at k=%d (Theorem 1 optimum), N=%d...\n", cfg.K, cfg.N)
		m := cli.NewMeter(os.Stderr)
		cfg.Progress = m.SweepProgress("tournament cells")
		res, err := experiment.RunTournament(ctx, experiment.TournamentConfig{
			Base:    cfg,
			Lambdas: []float64{4},
		})
		m.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "qlecopt:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Println(experiment.FormatTournament(res))
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
