package deec

import (
	"testing"

	"qlec/internal/network"
	"qlec/internal/rng"
)

// BenchmarkSelectPaperScale measures one full round of improved-DEEC
// head selection (Algorithms 2+3: lottery, energy floor, redundancy
// reduction, top-up) at the Table 2 scale, complementing the §5.3-scale
// BenchmarkSelectImproved. Steady-state rounds should allocate only the
// returned sorted copy of the head set.
func BenchmarkSelectPaperScale(b *testing.B) {
	w, err := network.Deploy(network.Deployment{N: 100, Side: 200, InitialEnergy: 5}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSelector(w, ImprovedConfig(5, 20, 0), rng.NewNamed(1, "deec"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Select(i % 20)
	}
}
