package deec_test

import (
	"fmt"
	"log"

	"qlec/internal/deec"
	"qlec/internal/network"
	"qlec/internal/rng"
)

// Example runs three rounds of improved-DEEC head selection over the
// paper's deployment and shows the pinned head count and rotation.
func Example() {
	w, err := network.Deploy(network.Deployment{
		N: 100, Side: 200, InitialEnergy: 5,
	}, rng.New(1))
	if err != nil {
		log.Fatal(err)
	}
	sel, err := deec.NewSelector(w, deec.ImprovedConfig(5, 20, 0), rng.NewNamed(1, "deec"))
	if err != nil {
		log.Fatal(err)
	}
	seen := map[int]bool{}
	for r := 0; r < 3; r++ {
		heads := sel.Select(r)
		fmt.Printf("round %d: %d heads\n", r, len(heads))
		for _, h := range heads {
			if seen[h] {
				fmt.Println("head repeated within the rotating epoch!")
			}
			seen[h] = true
		}
	}
	fmt.Println("distinct heads over 3 rounds:", len(seen))
	// Output:
	// round 0: 5 heads
	// round 1: 5 heads
	// round 2: 5 heads
	// distinct heads over 3 rounds: 15
}
