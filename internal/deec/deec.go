// Package deec implements the improved Distributed Energy-Efficient
// Clustering head-selection protocol of QLEC's Cluster Head Selection
// Phase (§3.1, Algorithms 2 and 3), plus the plain-DEEC and ablation
// variants the benchmarks compare against.
//
// Per round r, for every node b_i:
//
//	p_i    = p_opt · E_i(r) / Ē(r)                          (Eq. 1)
//	Ē(r)   = (1/N) · E_initial · (1 − r/R)                  (Eq. 2)
//	T(b_i) = p_i / (1 − p_i·(r mod ⌊1/p_i⌋))  if b_i ∈ C     (Eq. 3)
//
// where the candidate set C contains nodes that have not served as head
// within their rotating epoch n_i = 1/p_i. The paper's two improvements:
//
//	E_th(r) = (1 − (r/R)²)·E_initial,i                       (Eq. 4)
//
// a minimum-energy floor for head eligibility, and a redundancy-reduction
// broadcast: each fresh head HELLOs its residual energy within the
// cluster coverage radius d_c (Eq. 5) and any head hearing a richer
// neighbour withdraws (Algorithm 3).
package deec

import (
	"fmt"
	"math"
	"slices"

	"qlec/internal/cluster"
	"qlec/internal/energy"
	"qlec/internal/geom"
	"qlec/internal/network"
	"qlec/internal/rng"
)

// Config parameterizes the selector.
type Config struct {
	// K is the target cluster count per round (k_opt of Theorem 1).
	K int
	// TotalRounds is R, the planned lifespan in rounds used by Eq. (2)
	// and Eq. (4).
	TotalRounds int
	// DeathLine excludes depleted nodes from candidacy.
	DeathLine energy.Joules

	// EnergyFloor enables the Eq. (4) minimum-energy restriction
	// (improvement 1). Disabled it degrades toward plain DEEC.
	EnergyFloor bool
	// ReduceRedundancy enables the Algorithm 3 HELLO-withdrawal step
	// (improvement 2).
	ReduceRedundancy bool
	// TopUp fills the head set to exactly K when the threshold lottery
	// plus floor leave a deficit, using the highest-residual eligible
	// nodes ("choose another node up to the demand to replace it",
	// §3.1). Plain DEEC leaves the count random.
	TopUp bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.K <= 0 {
		return fmt.Errorf("deec: K must be positive, got %d", c.K)
	}
	if c.TotalRounds <= 0 {
		return fmt.Errorf("deec: TotalRounds must be positive, got %d", c.TotalRounds)
	}
	if c.DeathLine < 0 {
		return fmt.Errorf("deec: DeathLine must be non-negative, got %v", c.DeathLine)
	}
	return nil
}

// ImprovedConfig returns the paper's full QLEC head-selection setup.
func ImprovedConfig(k, totalRounds int, deathLine energy.Joules) Config {
	return Config{
		K: k, TotalRounds: totalRounds, DeathLine: deathLine,
		EnergyFloor: true, ReduceRedundancy: true, TopUp: true,
	}
}

// PlainConfig returns classic DEEC: lottery only, no floor, no
// redundancy reduction, no top-up (used for ablations).
func PlainConfig(k, totalRounds int, deathLine energy.Joules) Config {
	return Config{K: k, TotalRounds: totalRounds, DeathLine: deathLine}
}

// Selector runs head selection round after round over one network.
type Selector struct {
	cfg Config
	net *network.Network
	rnd *rng.Stream
	dc  float64

	// Per-round scratch, reused across Select calls so steady-state
	// selection performs no allocation. None of this affects results:
	// Select returns a fresh sorted copy of the head set.
	headsBuf []int
	reserve  []candidate
	ptsBuf   []geom.Vec3
	nbrBuf   []int
	grid     *geom.Grid // redundancy-reduction index, rebuilt in place
	inHeads  []bool     // membership scratch for topUp, cleared after use
}

// NewSelector builds a selector. The stream drives the threshold
// lottery; pass a named stream for reproducibility.
func NewSelector(w *network.Network, cfg Config, r *rng.Stream) (*Selector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	side := w.Box.Size().X
	return &Selector{
		cfg: cfg,
		net: w,
		rnd: r,
		dc:  geom.CoverageRadius(side, cfg.K),
	}, nil
}

// CoverageRadius returns d_c (Eq. 5) for the configured K.
func (s *Selector) CoverageRadius() float64 { return s.dc }

// pMin floors p_i so that 1/p_i (the rotating epoch) and Eq. (3) stay
// well-defined for nearly-drained nodes.
const pMin = 1e-4

// probability returns p_i (Eq. 1) for the node at round r, clamped into
// [pMin, 0.999].
func (s *Selector) probability(n *network.Node, round int) float64 {
	mean := float64(s.net.EstimatedMeanEnergy(round, s.cfg.TotalRounds))
	popt := float64(s.cfg.K) / float64(s.net.N())
	return probabilityFrom(n, mean, popt)
}

// probabilityFrom is probability with the node-independent terms — the
// Eq. (2) mean-energy estimate and p_opt — hoisted, so Select computes
// them once per round instead of once per node.
func probabilityFrom(n *network.Node, mean, popt float64) float64 {
	var p float64
	if mean <= 0 {
		// Eq. (2) estimates zero average energy at or past round R; fall
		// back to the optimal probability so late rounds keep rotating.
		p = popt
	} else {
		p = popt * float64(n.Battery.Residual()) / mean
	}
	return clamp(p, pMin, 0.999)
}

// threshold returns T(b_i) (Eq. 3).
func threshold(p float64, round int) float64 {
	epoch := int(math.Floor(1 / p))
	if epoch < 1 {
		epoch = 1
	}
	den := 1 - p*float64(round%epoch)
	if den <= 0 {
		// Degenerate tail of the epoch: the node is overdue; select it
		// with certainty, matching LEACH's intent.
		return 1
	}
	return p / den
}

// energyFloor returns E_th(r) (Eq. 4) for the node.
func (s *Selector) energyFloor(n *network.Node, round int) energy.Joules {
	fr := float64(round) / float64(s.cfg.TotalRounds)
	f := 1 - fr*fr
	if f < 0 {
		f = 0
	}
	return energy.Joules(f) * n.Battery.Initial()
}

// candidate is a node eligible for head duty this round.
type candidate struct {
	id       int
	residual energy.Joules
}

// Select runs one round of head selection (Algorithms 2+3) and returns
// the head ids in ascending order. It updates LastCHRound on the chosen
// nodes.
func (s *Selector) Select(round int) []int {
	heads := s.headsBuf[:0]
	reserve := s.reserve[:0] // eligible-by-epoch nodes for top-up

	mean := float64(s.net.EstimatedMeanEnergy(round, s.cfg.TotalRounds))
	popt := float64(s.cfg.K) / float64(s.net.N())
	for _, n := range s.net.Nodes {
		if !n.Alive(s.cfg.DeathLine) {
			continue
		}
		p := probabilityFrom(n, mean, popt)
		epoch := int(math.Floor(1 / p))
		if epoch < 1 {
			epoch = 1
		}
		// Candidate set C: not a head within the last n_i rounds.
		if n.LastCHRound >= 0 && round-n.LastCHRound < epoch {
			continue
		}
		reserve = append(reserve, candidate{n.ID, n.Battery.Residual()})
		// Improvement 1: Eq. (4) energy floor.
		if s.cfg.EnergyFloor && n.Battery.Residual() <= s.energyFloor(n, round) {
			continue
		}
		if s.rnd.Float64() < threshold(p, round) {
			heads = append(heads, n.ID)
		}
	}

	// Improvement 2: redundancy reduction (Algorithm 3).
	if s.cfg.ReduceRedundancy && len(heads) > 1 {
		heads = s.reduceRedundancy(heads)
	}

	// Keep the count pinned at K: trim richest-first when over, top up
	// from the reserve when under.
	if len(heads) > s.cfg.K {
		// Shuffle first so equal-residual ties are drawn uniformly
		// rather than biased toward low ids.
		s.rnd.Shuffle(len(heads), func(i, j int) { heads[i], heads[j] = heads[j], heads[i] })
		slices.SortStableFunc(heads, func(a, b int) int {
			ra := s.net.Nodes[a].Battery.Residual()
			rb := s.net.Nodes[b].Battery.Residual()
			switch {
			case ra > rb:
				return -1
			case ra < rb:
				return 1
			}
			return 0
		})
		heads = heads[:s.cfg.K]
	}
	if s.cfg.TopUp && len(heads) < s.cfg.K {
		heads = s.topUp(heads, reserve)
	}

	s.headsBuf = heads[:0]
	s.reserve = reserve[:0]
	heads = cluster.SortedCopy(heads)
	for _, h := range heads {
		s.net.Nodes[h].LastCHRound = round
	}
	return heads
}

// reduceRedundancy drops any head that hears a HELLO from a richer head
// within d_c (ties break toward keeping the lower id, so exactly one of
// an equal pair survives).
func (s *Selector) reduceRedundancy(heads []int) []int {
	pts := s.ptsBuf[:0]
	for _, h := range heads {
		pts = append(pts, s.net.Nodes[h].Pos)
	}
	s.ptsBuf = pts
	// The grid is built once with the HELLO radius as its cell edge and
	// re-indexed in place each round; the grid copies pts/ids, so heads
	// can then be filtered in place (the query result is sorted, hence
	// independent of cell size — determinism is unaffected).
	if s.grid == nil {
		s.grid = geom.NewGrid(s.net.Box, pts, heads, s.dc)
	} else {
		s.grid.Reindex(pts, heads)
	}
	kept := heads[:0]
	for _, h := range heads {
		hRes := s.net.Nodes[h].Battery.Residual()
		quit := false
		s.nbrBuf = s.grid.WithinRadiusAppend(s.net.Nodes[h].Pos, s.dc, s.nbrBuf[:0])
		for _, other := range s.nbrBuf {
			if other == h {
				continue
			}
			oRes := s.net.Nodes[other].Battery.Residual()
			if oRes > hRes || (oRes == hRes && other < h) {
				quit = true
				break
			}
		}
		if !quit {
			kept = append(kept, h)
		}
	}
	return kept
}

// topUp fills the head set to K using the highest-residual reserve
// candidates, preferring nodes at least d_c away from every existing
// head so coverage stays spread.
func (s *Selector) topUp(heads []int, reserve []candidate) []int {
	if s.inHeads == nil {
		s.inHeads = make([]bool, s.net.N())
	}
	inHeads := s.inHeads
	for _, h := range heads {
		inHeads[h] = true
	}
	// Every id ever set lands in the final head set, so clearing by the
	// returned slice restores the scratch for the next round.
	defer func() {
		for _, h := range heads {
			inHeads[h] = false
		}
	}()
	// Shuffle before the stable sort so equal-residual candidates are
	// drawn uniformly instead of biasing toward low ids; the stream makes
	// the draw reproducible per seed.
	s.rnd.Shuffle(len(reserve), func(i, j int) { reserve[i], reserve[j] = reserve[j], reserve[i] })
	slices.SortStableFunc(reserve, func(a, b candidate) int {
		switch {
		case a.residual > b.residual:
			return -1
		case a.residual < b.residual:
			return 1
		}
		return 0
	})
	// Pass 1: spread-respecting candidates.
	for _, pass := range []bool{true, false} {
		for _, c := range reserve {
			if len(heads) >= s.cfg.K {
				return heads
			}
			if inHeads[c.id] {
				continue
			}
			if pass && s.tooClose(c.id, heads) {
				continue
			}
			heads = append(heads, c.id)
			inHeads[c.id] = true
		}
	}
	return heads
}

func (s *Selector) tooClose(id int, heads []int) bool {
	p := s.net.Nodes[id].Pos
	for _, h := range heads {
		if p.Dist(s.net.Nodes[h].Pos) < s.dc {
			return true
		}
	}
	return false
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
