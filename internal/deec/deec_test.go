package deec

import (
	"math"
	"testing"
	"testing/quick"

	"qlec/internal/cluster"
	"qlec/internal/network"
	"qlec/internal/rng"
)

func testNet(t *testing.T, n int, seed uint64) *network.Network {
	t.Helper()
	w, err := network.Deploy(network.Deployment{N: n, Side: 200, InitialEnergy: 5}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestConfigValidate(t *testing.T) {
	if err := ImprovedConfig(5, 20, 0).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, c := range []Config{
		{K: 0, TotalRounds: 20},
		{K: 5, TotalRounds: 0},
		{K: 5, TotalRounds: 20, DeathLine: -1},
	} {
		if err := c.Validate(); err == nil {
			t.Fatalf("invalid config %+v accepted", c)
		}
	}
}

func TestNewSelectorRejectsBadConfig(t *testing.T) {
	w := testNet(t, 20, 1)
	if _, err := NewSelector(w, Config{}, rng.New(1)); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestSelectImprovedKeepsCountAtK(t *testing.T) {
	w := testNet(t, 100, 2)
	s, err := NewSelector(w, ImprovedConfig(5, 20, 0), rng.NewNamed(2, "deec"))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 20; r++ {
		heads := s.Select(r)
		if len(heads) != 5 {
			t.Fatalf("round %d: %d heads, want exactly 5 (TopUp on)", r, len(heads))
		}
		if err := cluster.ValidateHeads(w, heads, 0); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		// Ascending order for determinism.
		for i := 1; i < len(heads); i++ {
			if heads[i] <= heads[i-1] {
				t.Fatalf("round %d: heads not sorted: %v", r, heads)
			}
		}
	}
}

func TestSelectDeterministic(t *testing.T) {
	w1 := testNet(t, 100, 3)
	w2 := testNet(t, 100, 3)
	s1, _ := NewSelector(w1, ImprovedConfig(5, 20, 0), rng.NewNamed(9, "deec"))
	s2, _ := NewSelector(w2, ImprovedConfig(5, 20, 0), rng.NewNamed(9, "deec"))
	for r := 0; r < 10; r++ {
		h1 := s1.Select(r)
		h2 := s2.Select(r)
		if len(h1) != len(h2) {
			t.Fatalf("round %d: counts differ", r)
		}
		for i := range h1 {
			if h1[i] != h2[i] {
				t.Fatalf("round %d: heads differ: %v vs %v", r, h1, h2)
			}
		}
	}
}

func TestRotatingEpochPreventsImmediateReselection(t *testing.T) {
	// With p_i ≈ k/N = 0.05, the rotating epoch is ~20 rounds: a node
	// serving as head at round r must not serve again at r+1.
	w := testNet(t, 100, 4)
	s, _ := NewSelector(w, ImprovedConfig(5, 40, 0), rng.NewNamed(4, "deec"))
	prev := map[int]bool{}
	for r := 0; r < 15; r++ {
		heads := s.Select(r)
		for _, h := range heads {
			if prev[h] {
				t.Fatalf("round %d: head %d served in the previous round", r, h)
			}
		}
		prev = map[int]bool{}
		for _, h := range heads {
			prev[h] = true
		}
	}
}

func TestHeadDutyRotatesAcrossNodes(t *testing.T) {
	// Head duty costs energy (as in a real run); the energy-weighted
	// lottery must then spread duty widely instead of hammering a few
	// nodes.
	w := testNet(t, 100, 5)
	s, _ := NewSelector(w, ImprovedConfig(5, 100, 0), rng.NewNamed(5, "deec"))
	served := map[int]int{}
	for r := 0; r < 100; r++ {
		for _, h := range s.Select(r) {
			served[h]++
			w.Nodes[h].Battery.Draw(0.04) // per-round head-duty cost
		}
	}
	// 500 head-slots over 100 nodes: rotation should reach most nodes.
	if len(served) < 60 {
		t.Fatalf("only %d distinct nodes ever served as head", len(served))
	}
	for id, c := range served {
		if c > 15 {
			t.Fatalf("node %d served %d times; rotation failing", id, c)
		}
	}
}

func TestEnergyWeightingFavorsRicherNodes(t *testing.T) {
	// Drain half the nodes heavily; the richer half should dominate head
	// duty (Eq. 1 and the Eq. 4 floor both push this way).
	w := testNet(t, 100, 6)
	for i := 0; i < 50; i++ {
		w.Nodes[i].Battery.Draw(4) // 1 J left vs 5 J
	}
	s, _ := NewSelector(w, ImprovedConfig(5, 50, 0), rng.NewNamed(6, "deec"))
	rich, poor := 0, 0
	for r := 0; r < 50; r++ {
		for _, h := range s.Select(r) {
			if h < 50 {
				poor++
			} else {
				rich++
			}
		}
	}
	if rich <= 2*poor {
		t.Fatalf("rich nodes served %d, poor %d; energy weighting too weak", rich, poor)
	}
}

func TestRedundancyReductionSpreadsHeads(t *testing.T) {
	// With redundancy reduction, no two heads should sit within d_c of
	// each other *when both were lottery winners*; after top-up the
	// spread preference still applies, so measure the improved selector
	// against plain DEEC.
	meanPairDist := func(seed uint64, cfg Config) float64 {
		w := testNet(t, 200, seed)
		s, _ := NewSelector(w, cfg, rng.NewNamed(seed, "deec"))
		total, pairs := 0.0, 0
		for r := 0; r < 30; r++ {
			heads := s.Select(r)
			for i := 0; i < len(heads); i++ {
				for j := i + 1; j < len(heads); j++ {
					total += w.Nodes[heads[i]].Pos.Dist(w.Nodes[heads[j]].Pos)
					pairs++
				}
			}
		}
		if pairs == 0 {
			return 0
		}
		return total / float64(pairs)
	}
	improved := meanPairDist(7, ImprovedConfig(5, 30, 0))
	plain := meanPairDist(7, PlainConfig(5, 30, 0))
	if improved <= plain {
		t.Fatalf("redundancy reduction did not spread heads: improved %v vs plain %v", improved, plain)
	}
}

func TestPlainDEECCountVaries(t *testing.T) {
	w := testNet(t, 100, 8)
	s, _ := NewSelector(w, PlainConfig(5, 20, 0), rng.NewNamed(8, "deec"))
	counts := map[int]bool{}
	for r := 0; r < 20; r++ {
		counts[len(s.Select(r))] = true
	}
	if len(counts) < 2 {
		t.Fatalf("plain DEEC produced a constant head count %v; lottery suspicious", counts)
	}
}

func TestDeadNodesNeverSelected(t *testing.T) {
	w := testNet(t, 50, 9)
	for i := 0; i < 25; i++ {
		w.Nodes[i].Battery.Draw(5)
	}
	s, _ := NewSelector(w, ImprovedConfig(5, 20, 0), rng.NewNamed(9, "deec"))
	for r := 0; r < 20; r++ {
		for _, h := range s.Select(r) {
			if h < 25 {
				t.Fatalf("round %d selected dead node %d", r, h)
			}
		}
	}
}

func TestSelectWithFewAliveNodes(t *testing.T) {
	// Fewer alive nodes than K: selector returns what it can, never
	// panics, never returns dead nodes.
	w := testNet(t, 10, 10)
	for i := 0; i < 8; i++ {
		w.Nodes[i].Battery.Draw(5)
	}
	s, _ := NewSelector(w, ImprovedConfig(5, 20, 0), rng.NewNamed(10, "deec"))
	heads := s.Select(0)
	if len(heads) > 2 {
		t.Fatalf("selected %d heads with 2 alive nodes", len(heads))
	}
	for _, h := range heads {
		if h < 8 {
			t.Fatalf("dead node %d selected", h)
		}
	}
}

func TestSelectPastPlannedLifespan(t *testing.T) {
	// Rounds beyond R: Eq. (2) estimates zero mean energy; selection
	// must keep functioning via the p_opt fallback.
	w := testNet(t, 100, 11)
	s, _ := NewSelector(w, ImprovedConfig(5, 10, 0), rng.NewNamed(11, "deec"))
	for r := 0; r < 30; r++ {
		heads := s.Select(r)
		if r >= 10 && len(heads) == 0 {
			t.Fatalf("round %d (past R=10): no heads selected", r)
		}
	}
}

func TestThresholdFormula(t *testing.T) {
	// Eq. (3) at r mod epoch == 0 reduces to p.
	if got := threshold(0.1, 0); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("T at epoch start = %v, want p", got)
	}
	// Later in the epoch the threshold grows.
	if threshold(0.1, 5) <= threshold(0.1, 1) {
		t.Fatal("threshold not increasing within epoch")
	}
	// Last epoch slot: T = p/(1-p·(epoch-1)); for p=0.1, epoch=10,
	// T = 0.1/0.1 = 1.
	if got := threshold(0.1, 9); math.Abs(got-1) > 1e-9 {
		t.Fatalf("T at epoch end = %v, want 1", got)
	}
}

// Eq. (1) pinned directly: p_i = p_opt · E_i(r) / Ē(r) with Ē(r) from
// Eq. (2), clamped into [pMin, 0.999].
func TestProbabilityEq1(t *testing.T) {
	w := testNet(t, 100, 20)
	s, _ := NewSelector(w, ImprovedConfig(5, 20, 0), rng.New(20))
	// Round 4 of 20: Ē = 5 · (1 − 4/20) = 4 J. Drain node 0 to 2 J:
	// p_0 = 0.05 · 2/4 = 0.025.
	w.Nodes[0].Battery.Draw(3)
	if got := s.probability(w.Nodes[0], 4); math.Abs(got-0.025) > 1e-12 {
		t.Fatalf("p_i = %v, want 0.025", got)
	}
	// An untouched node at round 4: p = 0.05 · 5/4 = 0.0625.
	if got := s.probability(w.Nodes[1], 4); math.Abs(got-0.0625) > 1e-12 {
		t.Fatalf("p_i = %v, want 0.0625", got)
	}
	// Clamping: a node with huge relative energy near round R.
	if got := s.probability(w.Nodes[1], 19); got > 0.999 {
		t.Fatalf("p_i = %v exceeds clamp", got)
	}
	// Past R, Ē estimates 0 → fallback to p_opt.
	if got := s.probability(w.Nodes[1], 25); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("p_i past R = %v, want p_opt", got)
	}
}

// Eq. (4) pinned directly: E_th(r) = (1 − (r/R)²) · E_initial.
func TestEnergyFloorEq4(t *testing.T) {
	w := testNet(t, 10, 21)
	s, _ := NewSelector(w, ImprovedConfig(2, 20, 0), rng.New(21))
	n := w.Nodes[0]
	if got := s.energyFloor(n, 0); math.Abs(float64(got)-5) > 1e-12 {
		t.Fatalf("E_th(0) = %v, want E_initial", got)
	}
	if got := s.energyFloor(n, 10); math.Abs(float64(got)-5*0.75) > 1e-12 {
		t.Fatalf("E_th(R/2) = %v, want 3.75", got)
	}
	if got := s.energyFloor(n, 20); math.Abs(float64(got)) > 1e-12 {
		t.Fatalf("E_th(R) = %v, want 0", got)
	}
	// Past R the floor clamps at zero rather than going negative.
	if got := s.energyFloor(n, 30); got != 0 {
		t.Fatalf("E_th(1.5R) = %v, want 0", got)
	}
}

// Property: Eq. (3)'s threshold stays a probability — T ∈ (0, 1] — and
// is non-decreasing within an epoch, for any valid p.
func TestThresholdPropertiesQuick(t *testing.T) {
	f := func(pRaw uint16, round uint8) bool {
		p := 0.001 + 0.997*float64(pRaw)/65535
		t1 := threshold(p, int(round))
		if !(t1 > 0 && t1 <= 1+1e-9) {
			return false
		}
		epoch := int(1 / p)
		if epoch < 1 {
			epoch = 1
		}
		slot := int(round) % epoch
		if slot+1 < epoch {
			// Next slot in the same epoch must not lower the threshold.
			base := int(round) - slot
			if threshold(p, base+slot+1)+1e-12 < threshold(p, base+slot) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverageRadiusExposed(t *testing.T) {
	w := testNet(t, 100, 12)
	s, _ := NewSelector(w, ImprovedConfig(5, 20, 0), rng.New(12))
	if s.CoverageRadius() <= 0 {
		t.Fatal("non-positive coverage radius")
	}
}

func BenchmarkSelectImproved(b *testing.B) {
	w, _ := network.Deploy(network.Deployment{N: 2896, Side: 1000, InitialEnergy: 5}, rng.New(1))
	s, _ := NewSelector(w, ImprovedConfig(272, 1000, 0), rng.New(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Select(i % 1000)
	}
}
