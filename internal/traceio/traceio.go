// Package traceio parses and aggregates the simulator's JSONL packet
// traces (sim.JSONLTracer) into operational statistics: per-packet
// lifecycles, retry distributions, per-head load, per-round tallies.
// cmd/qlectrace is the command-line front end.
package traceio

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"qlec/internal/packet"
	"qlec/internal/sim"
	"qlec/internal/stats"
)

// ParseJSONL reads one trace event per line. Blank lines are skipped;
// malformed lines are errors (a trace is machine-written).
func ParseJSONL(r io.Reader) ([]sim.TraceEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []sim.TraceEvent
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev sim.TraceEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("traceio: line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traceio: reading: %w", err)
	}
	return out, nil
}

// RoundTally is one round's packet accounting.
type RoundTally struct {
	Round     int
	Generated int
	Delivered int
	Dropped   int
}

// Stats aggregates a trace.
type Stats struct {
	Events int
	ByKind map[sim.TraceKind]int

	Generated int
	Delivered int
	Dropped   int
	// DropReasons tallies drop events by reason string.
	DropReasons map[string]int

	// AttemptsPerPacket summarizes radio sends per generated packet
	// (retries inflate it).
	AttemptsPerPacket stats.Summary
	// AccessDelay summarizes generate→first-accept latency in seconds.
	AccessDelay stats.Summary
	// HeadLoad counts accepted packets per target node (the base
	// station appears as network.BSID = −1).
	HeadLoad map[int]int
	// Rounds tallies per-round packet accounting, ascending by round.
	Rounds []RoundTally
}

// Analyze aggregates events into Stats. Events may arrive in any order;
// per-packet lifecycles are reconstructed by packet id.
func Analyze(events []sim.TraceEvent) (*Stats, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("traceio: empty trace")
	}
	s := &Stats{
		ByKind:      map[sim.TraceKind]int{},
		DropReasons: map[string]int{},
		HeadLoad:    map[int]int{},
	}
	type life struct {
		bornAt      float64
		born        bool
		sends       int
		firstAccept float64
		accepted    bool
	}
	lives := map[packet.ID]*life{}
	rounds := map[int]*RoundTally{}
	tally := func(round int) *RoundTally {
		rt, ok := rounds[round]
		if !ok {
			rt = &RoundTally{Round: round}
			rounds[round] = rt
		}
		return rt
	}
	get := func(id packet.ID) *life {
		l, ok := lives[id]
		if !ok {
			l = &life{}
			lives[id] = l
		}
		return l
	}
	for _, ev := range events {
		s.Events++
		s.ByKind[ev.Kind]++
		switch ev.Kind {
		case sim.TraceGenerate:
			s.Generated++
			tally(ev.Round).Generated++
			l := get(ev.Packet)
			l.bornAt = ev.Time
			l.born = true
		case sim.TraceSend:
			get(ev.Packet).sends++
		case sim.TraceAccept:
			l := get(ev.Packet)
			if !l.accepted {
				l.accepted = true
				l.firstAccept = ev.Time
			}
			s.HeadLoad[ev.Target]++
		case sim.TraceDeliver:
			s.Delivered++
			tally(ev.Round).Delivered++
		case sim.TraceDrop:
			s.Dropped++
			tally(ev.Round).Dropped++
			s.DropReasons[ev.Reason]++
		}
	}
	var attempts, delays stats.Accumulator
	for _, l := range lives {
		if !l.born {
			continue // relayed fragments observed mid-flight
		}
		attempts.Observe(float64(l.sends))
		if l.accepted {
			delays.Observe(l.firstAccept - l.bornAt)
		}
	}
	s.AttemptsPerPacket = attempts.Summary()
	s.AccessDelay = delays.Summary()
	for _, rt := range rounds {
		s.Rounds = append(s.Rounds, *rt)
	}
	sort.Slice(s.Rounds, func(i, j int) bool { return s.Rounds[i].Round < s.Rounds[j].Round })
	return s, nil
}

// TopLoads returns the n busiest accept targets as (node, count) pairs,
// descending by count with ascending node tie-break.
func (s *Stats) TopLoads(n int) [][2]int {
	type kv struct{ node, count int }
	var all []kv
	for node, count := range s.HeadLoad {
		all = append(all, kv{node, count})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].node < all[j].node
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([][2]int, n)
	for i := 0; i < n; i++ {
		out[i] = [2]int{all[i].node, all[i].count}
	}
	return out
}

// Filter returns the events matching a node and/or round restriction.
// node ≥ 0 keeps events where that node is the actor or the target (so
// both halves of a send/accept pair survive); round ≥ 0 keeps one
// round. Negative values disable the corresponding restriction.
func Filter(events []sim.TraceEvent, node, round int) []sim.TraceEvent {
	if node < 0 && round < 0 {
		return events
	}
	var out []sim.TraceEvent
	for _, ev := range events {
		if node >= 0 && ev.Node != node && ev.Target != node {
			continue
		}
		if round >= 0 && ev.Round != round {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// WriteLedgerJSONL writes audit energy-ledger entries one JSON object
// per line — the same stream format audit.Options.Spill receives, so a
// spill file and a written ledger are interchangeable inputs to
// ParseLedgerJSONL.
func WriteLedgerJSONL(w io.Writer, entries []sim.EnergyEntry) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, e := range entries {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("traceio: ledger entry %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("traceio: flushing ledger: %w", err)
	}
	return nil
}

// ParseLedgerJSONL reads one energy-ledger entry per line (the format
// of WriteLedgerJSONL and of audit spill files). Blank lines are
// skipped; malformed lines are errors with their line number — the
// stream is machine-written, so corruption means truncation or a mixed
// stream, not user input. Unknown fields are rejected so a packet-trace
// line interleaved into a ledger stream fails loudly instead of parsing
// as a zero-valued entry.
func ParseLedgerJSONL(r io.Reader) ([]sim.EnergyEntry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []sim.EnergyEntry
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e sim.EnergyEntry
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("traceio: ledger line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traceio: reading ledger: %w", err)
	}
	return out, nil
}
