package traceio

import (
	"context"
	"strings"
	"testing"

	"qlec/internal/experiment"
	"qlec/internal/sim"
)

// traceOf runs a small QLEC simulation with the JSONL tracer and returns
// the raw trace plus the run's metrics for cross-checking.
func traceOf(t *testing.T) (string, int, int, int) {
	t.Helper()
	cfg := experiment.PaperConfig()
	cfg.Rounds = 3
	cfg.Seeds = []uint64{1}
	var sb strings.Builder
	tracer, flush := sim.JSONLTracer(&sb)
	cfg.Tracer = tracer
	res, err := cfg.RunOne(context.Background(), experiment.QLEC, 3, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := flush(); err != nil {
		t.Fatal(err)
	}
	return sb.String(), res.Generated, res.Delivered, res.DroppedTotal()
}

func TestParseAndAnalyzeConsistentWithMetrics(t *testing.T) {
	raw, gen, del, drop := traceOf(t)
	events, err := ParseJSONL(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	if s.Generated != gen || s.Delivered != del || s.Dropped != drop {
		t.Fatalf("trace (%d,%d,%d) != metrics (%d,%d,%d)",
			s.Generated, s.Delivered, s.Dropped, gen, del, drop)
	}
	if s.Events != len(events) {
		t.Fatal("event count mismatch")
	}
	// Sends = accepts + rejects.
	if s.ByKind[sim.TraceSend] != s.ByKind[sim.TraceAccept]+s.ByKind[sim.TraceReject] {
		t.Fatal("send/accept/reject accounting broken")
	}
	// Three rounds tallied, ascending.
	if len(s.Rounds) != 3 {
		t.Fatalf("%d round tallies", len(s.Rounds))
	}
	sumGen := 0
	for i, rt := range s.Rounds {
		if rt.Round != i {
			t.Fatalf("round order: %+v", s.Rounds)
		}
		sumGen += rt.Generated
	}
	if sumGen != gen {
		t.Fatalf("per-round generated sums to %d, want %d", sumGen, gen)
	}
	// Attempts ≥ 1 per packet; access delay positive.
	if s.AttemptsPerPacket.Mean < 1 {
		t.Fatalf("mean attempts %v < 1", s.AttemptsPerPacket.Mean)
	}
	if s.AccessDelay.Mean <= 0 {
		t.Fatalf("access delay %v", s.AccessDelay.Mean)
	}
	if len(s.HeadLoad) == 0 {
		t.Fatal("no head load recorded")
	}
}

func TestTopLoads(t *testing.T) {
	s := &Stats{HeadLoad: map[int]int{3: 10, 7: 30, 2: 30, 9: 5}}
	top := s.TopLoads(3)
	want := [][2]int{{2, 30}, {7, 30}, {3, 10}}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopLoads = %v, want %v", top, want)
		}
	}
	if got := s.TopLoads(100); len(got) != 4 {
		t.Fatalf("TopLoads over-capped: %d", len(got))
	}
}

func TestParseJSONLErrors(t *testing.T) {
	if _, err := ParseJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	events, err := ParseJSONL(strings.NewReader("\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatal("blank lines produced events")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestAnalyzeDropReasons(t *testing.T) {
	// Force queue drops and verify the reason tally.
	cfg := experiment.PaperConfig()
	cfg.Rounds = 2
	cfg.Seeds = []uint64{1}
	cfg.Sim.QueueCapacity = 2
	cfg.Sim.ServiceTime = 1
	var sb strings.Builder
	tracer, flush := sim.JSONLTracer(&sb)
	cfg.Tracer = tracer
	if _, err := cfg.RunOne(context.Background(), experiment.KMeans, 1, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := flush(); err != nil {
		t.Fatal(err)
	}
	events, err := ParseJSONL(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	if s.DropReasons["queue"] == 0 {
		t.Fatalf("no queue drops recorded: %v", s.DropReasons)
	}
}
