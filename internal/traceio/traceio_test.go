package traceio

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"qlec/internal/experiment"
	"qlec/internal/sim"
)

// traceOf runs a small QLEC simulation with the JSONL tracer and returns
// the raw trace plus the run's metrics for cross-checking.
func traceOf(t *testing.T) (string, int, int, int) {
	t.Helper()
	cfg := experiment.PaperConfig()
	cfg.Rounds = 3
	cfg.Seeds = []uint64{1}
	var sb strings.Builder
	tracer, flush := sim.JSONLTracer(&sb)
	cfg.Tracer = tracer
	res, err := cfg.RunOne(context.Background(), experiment.QLEC, 3, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := flush(); err != nil {
		t.Fatal(err)
	}
	return sb.String(), res.Generated, res.Delivered, res.DroppedTotal()
}

func TestParseAndAnalyzeConsistentWithMetrics(t *testing.T) {
	raw, gen, del, drop := traceOf(t)
	events, err := ParseJSONL(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	if s.Generated != gen || s.Delivered != del || s.Dropped != drop {
		t.Fatalf("trace (%d,%d,%d) != metrics (%d,%d,%d)",
			s.Generated, s.Delivered, s.Dropped, gen, del, drop)
	}
	if s.Events != len(events) {
		t.Fatal("event count mismatch")
	}
	// Sends = accepts + rejects.
	if s.ByKind[sim.TraceSend] != s.ByKind[sim.TraceAccept]+s.ByKind[sim.TraceReject] {
		t.Fatal("send/accept/reject accounting broken")
	}
	// Three rounds tallied, ascending.
	if len(s.Rounds) != 3 {
		t.Fatalf("%d round tallies", len(s.Rounds))
	}
	sumGen := 0
	for i, rt := range s.Rounds {
		if rt.Round != i {
			t.Fatalf("round order: %+v", s.Rounds)
		}
		sumGen += rt.Generated
	}
	if sumGen != gen {
		t.Fatalf("per-round generated sums to %d, want %d", sumGen, gen)
	}
	// Attempts ≥ 1 per packet; access delay positive.
	if s.AttemptsPerPacket.Mean < 1 {
		t.Fatalf("mean attempts %v < 1", s.AttemptsPerPacket.Mean)
	}
	if s.AccessDelay.Mean <= 0 {
		t.Fatalf("access delay %v", s.AccessDelay.Mean)
	}
	if len(s.HeadLoad) == 0 {
		t.Fatal("no head load recorded")
	}
}

func TestTopLoads(t *testing.T) {
	s := &Stats{HeadLoad: map[int]int{3: 10, 7: 30, 2: 30, 9: 5}}
	top := s.TopLoads(3)
	want := [][2]int{{2, 30}, {7, 30}, {3, 10}}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopLoads = %v, want %v", top, want)
		}
	}
	if got := s.TopLoads(100); len(got) != 4 {
		t.Fatalf("TopLoads over-capped: %d", len(got))
	}
}

func TestParseJSONLErrors(t *testing.T) {
	if _, err := ParseJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	events, err := ParseJSONL(strings.NewReader("\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatal("blank lines produced events")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestAnalyzeDropReasons(t *testing.T) {
	// Force queue drops and verify the reason tally.
	cfg := experiment.PaperConfig()
	cfg.Rounds = 2
	cfg.Seeds = []uint64{1}
	cfg.Sim.QueueCapacity = 2
	cfg.Sim.ServiceTime = 1
	var sb strings.Builder
	tracer, flush := sim.JSONLTracer(&sb)
	cfg.Tracer = tracer
	if _, err := cfg.RunOne(context.Background(), experiment.KMeans, 1, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := flush(); err != nil {
		t.Fatal(err)
	}
	events, err := ParseJSONL(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	if s.DropReasons["queue"] == 0 {
		t.Fatalf("no queue drops recorded: %v", s.DropReasons)
	}
}

// ledgerFixture is a small hand-built ledger covering every cause, the
// packet/no-packet split and the BS target convention.
func ledgerFixture() []sim.EnergyEntry {
	return []sim.EnergyEntry{
		{Time: 0.1, Round: 0, Node: 3, Cause: sim.CauseControl, Joules: 5e-5},
		{Time: 0.2, Round: 0, Node: 3, Cause: sim.CauseTx, Joules: 1.2e-4, Packet: 7, HasPacket: true},
		{Time: 0.3, Round: 0, Node: 9, Cause: sim.CauseRx, Joules: 8e-5, Packet: 7, HasPacket: true},
		{Time: 1.1, Round: 1, Node: 9, Cause: sim.CauseFusion, Joules: 2e-5},
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	entries := ledgerFixture()
	var buf strings.Builder
	if err := WriteLedgerJSONL(&buf, entries); err != nil {
		t.Fatal(err)
	}
	// The cause serializes as its name, not a bare integer — ledger files
	// must stay self-describing.
	for _, name := range []string{`"tx"`, `"rx"`, `"fusion"`, `"control"`} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("ledger stream missing cause name %s:\n%s", name, buf.String())
		}
	}
	got, err := ParseLedgerJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, entries) {
		t.Fatalf("round-trip mismatch:\ngot  %+v\nwant %+v", got, entries)
	}
}

func TestParseLedgerJSONLSkipsBlankLines(t *testing.T) {
	var buf strings.Builder
	if err := WriteLedgerJSONL(&buf, ledgerFixture()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	padded := "\n" + strings.Join(lines, "\n\n") + "\n\n"
	got, err := ParseLedgerJSONL(strings.NewReader(padded))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(lines) {
		t.Fatalf("parsed %d entries from padded stream, want %d", len(got), len(lines))
	}
}

func TestParseLedgerJSONLErrors(t *testing.T) {
	var buf strings.Builder
	if err := WriteLedgerJSONL(&buf, ledgerFixture()); err != nil {
		t.Fatal(err)
	}
	clean := buf.String()
	lines := strings.SplitAfter(clean, "\n")

	// A corrupt interior line is reported with its line number.
	corrupt := lines[0] + "{not json}\n" + strings.Join(lines[1:], "")
	if _, err := ParseLedgerJSONL(strings.NewReader(corrupt)); err == nil {
		t.Fatal("corrupt line accepted")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("corrupt-line error %q does not name line 2", err)
	}

	// A truncated final line (partial JSON object, e.g. a crash mid-write
	// of a spill file) is an error, not a silent short read.
	truncated := clean[:len(clean)-10]
	if _, err := ParseLedgerJSONL(strings.NewReader(truncated)); err == nil {
		t.Fatal("truncated stream accepted")
	}

	// A packet-trace event interleaved into the ledger stream fails
	// loudly: its fields ("kind", …) are unknown to EnergyEntry, and a
	// silent zero-valued parse would corrupt conservation sums.
	mixed := lines[0] + `{"kind":"send","t":0.2,"round":0,"node":3,"pkt":7,"target":9}` + "\n" + strings.Join(lines[1:], "")
	if _, err := ParseLedgerJSONL(strings.NewReader(mixed)); err == nil {
		t.Fatal("mixed trace/ledger stream accepted")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("mixed-stream error %q does not name line 2", err)
	}

	// An unknown cause name is rejected by the EnergyCause decoder.
	badCause := strings.Replace(clean, `"control"`, `"sleep"`, 1)
	if _, err := ParseLedgerJSONL(strings.NewReader(badCause)); err == nil {
		t.Fatal("unknown cause name accepted")
	}
}

// TestLedgerAlongsidePacketTrace is the integration shape the flight
// recorder produces: a run emits BOTH a packet trace and an energy
// ledger. Each stream must parse with its own parser and reject the
// other's lines when the files are mixed up.
func TestLedgerAlongsidePacketTrace(t *testing.T) {
	raw, _, _, _ := traceOf(t)
	events, err := ParseJSONL(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty packet trace")
	}
	var ledger strings.Builder
	if err := WriteLedgerJSONL(&ledger, ledgerFixture()); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseLedgerJSONL(strings.NewReader(ledger.String())); err != nil {
		t.Fatal(err)
	}
	// Handing the packet trace to the ledger parser fails on line 1.
	if _, err := ParseLedgerJSONL(strings.NewReader(raw)); err == nil {
		t.Fatal("ledger parser accepted a packet trace")
	} else if !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("wrong-stream error %q does not name line 1", err)
	}
}

func TestFilter(t *testing.T) {
	events := []sim.TraceEvent{
		{Kind: sim.TraceGenerate, Round: 0, Node: 1},
		{Kind: sim.TraceSend, Round: 0, Node: 1, Target: 2},
		{Kind: sim.TraceAccept, Round: 0, Node: 2, Target: 2},
		{Kind: sim.TraceSend, Round: 1, Node: 3, Target: 2},
		{Kind: sim.TraceGenerate, Round: 1, Node: 4},
	}

	// Both restrictions disabled: the identical slice comes back.
	if got := Filter(events, -1, -1); len(got) != len(events) {
		t.Fatalf("unfiltered length %d, want %d", len(got), len(events))
	}

	// Node filter keeps actor AND target matches, so both halves of a
	// send/accept exchange survive.
	if got := Filter(events, 2, -1); len(got) != 3 {
		t.Fatalf("node filter kept %d events, want 3: %+v", len(got), got)
	}

	// Round filter alone.
	if got := Filter(events, -1, 1); len(got) != 2 {
		t.Fatalf("round filter kept %d events, want 2: %+v", len(got), got)
	}

	// Conjunction: node 2 in round 1 is only the relayed send.
	got := Filter(events, 2, 1)
	if len(got) != 1 || got[0].Node != 3 || got[0].Target != 2 {
		t.Fatalf("conjunction kept %+v", got)
	}

	// No matches yields an empty (nil) slice, not an error.
	if got := Filter(events, 99, -1); len(got) != 0 {
		t.Fatalf("impossible filter kept %+v", got)
	}
}
