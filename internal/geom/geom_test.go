package geom

import (
	"math"
	"testing"
	"testing/quick"

	"qlec/internal/rng"
)

func TestVec3Arithmetic(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, -5, 6}
	if got := a.Add(b); got != (Vec3{5, -3, 9}) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{-3, 7, -3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestNormAndDist(t *testing.T) {
	v := Vec3{3, 4, 12}
	if got := v.Norm(); got != 13 {
		t.Fatalf("Norm = %v, want 13", got)
	}
	if got := v.NormSq(); got != 169 {
		t.Fatalf("NormSq = %v, want 169", got)
	}
	a := Vec3{1, 1, 1}
	b := Vec3{1, 1, 4}
	if got := a.Dist(b); got != 3 {
		t.Fatalf("Dist = %v, want 3", got)
	}
	if got := a.DistSq(b); got != 9 {
		t.Fatalf("DistSq = %v, want 9", got)
	}
}

func TestLerp(t *testing.T) {
	a := Vec3{0, 0, 0}
	b := Vec3{2, 4, 6}
	if got := a.Lerp(b, 0.5); got != (Vec3{1, 2, 3}) {
		t.Fatalf("Lerp(0.5) = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Fatalf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Fatalf("Lerp(1) = %v", got)
	}
}

func TestCentroid(t *testing.T) {
	pts := []Vec3{{0, 0, 0}, {2, 0, 0}, {0, 2, 0}, {0, 0, 2}}
	want := Vec3{0.5, 0.5, 0.5}
	if got := Centroid(pts); got.Dist(want) > 1e-12 {
		t.Fatalf("Centroid = %v, want %v", got, want)
	}
	if got := Centroid(nil); got != (Vec3{}) {
		t.Fatalf("Centroid(nil) = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !(Vec3{1, 2, 3}).IsFinite() {
		t.Fatal("finite vector reported non-finite")
	}
	if (Vec3{math.NaN(), 0, 0}).IsFinite() {
		t.Fatal("NaN vector reported finite")
	}
	if (Vec3{0, math.Inf(1), 0}).IsFinite() {
		t.Fatal("Inf vector reported finite")
	}
}

func TestCubeProperties(t *testing.T) {
	c := Cube(200)
	if got := c.Center(); got != (Vec3{100, 100, 100}) {
		t.Fatalf("Center = %v", got)
	}
	if got := c.Volume(); got != 200*200*200 {
		t.Fatalf("Volume = %v", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBoxValidateRejectsDegenerate(t *testing.T) {
	bad := AABB{Min: Vec3{0, 0, 0}, Max: Vec3{1, 0, 1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("degenerate box validated")
	}
	nan := AABB{Min: Vec3{math.NaN(), 0, 0}, Max: Vec3{1, 1, 1}}
	if err := nan.Validate(); err == nil {
		t.Fatal("NaN box validated")
	}
}

func TestContainsAndClamp(t *testing.T) {
	b := Cube(10)
	if !b.Contains(Vec3{5, 5, 5}) {
		t.Fatal("center not contained")
	}
	if b.Contains(Vec3{10, 5, 5}) {
		t.Fatal("max face should be exclusive")
	}
	p := b.Clamp(Vec3{-3, 20, 5})
	if !b.Contains(p) {
		t.Fatalf("clamped point %v not contained", p)
	}
}

func TestSampleUniformInside(t *testing.T) {
	r := rng.New(1)
	b := Cube(200)
	for _, p := range b.SampleUniformN(r, 5000) {
		if !b.Contains(p) {
			t.Fatalf("sample %v escaped the cube", p)
		}
	}
}

func TestSampleUniformMean(t *testing.T) {
	r := rng.New(2)
	b := Cube(200)
	c := Centroid(b.SampleUniformN(r, 100000))
	want := b.Center()
	if c.Dist(want) > 1.5 {
		t.Fatalf("sample centroid %v too far from %v", c, want)
	}
}

func TestSampleBallInsideAndLemma1Moment(t *testing.T) {
	// Lemma 1 underpinnings: for a uniform ball of radius R,
	// E[d²] = 3R²/5 (= ρ∫r⁴ sinφ dr dφ dθ evaluated).
	r := rng.New(3)
	center := Vec3{50, 60, 70}
	const radius = 30.0
	const n = 200000
	sum2 := 0.0
	for i := 0; i < n; i++ {
		p := SampleBall(r, center, radius)
		d2 := p.DistSq(center)
		if d2 > radius*radius*(1+1e-12) {
			t.Fatalf("ball sample escaped radius: d=%v", math.Sqrt(d2))
		}
		sum2 += d2
	}
	got := sum2 / n
	want := 3 * radius * radius / 5
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("E[d²] = %v, want %v (Lemma 1 moment)", got, want)
	}
}

func TestCoverageRadiusEq5(t *testing.T) {
	// Eq. (5): d_c = (3/(4πk))^(1/3) M. k balls of radius d_c must have
	// total volume equal to the cube volume.
	const M = 200.0
	for _, k := range []int{1, 2, 5, 17, 272} {
		dc := CoverageRadius(M, k)
		total := float64(k) * BallVolume(dc)
		if math.Abs(total-M*M*M)/(M*M*M) > 1e-12 {
			t.Fatalf("k=%d: total ball volume %v != cube volume %v", k, total, M*M*M)
		}
	}
}

func TestCoverageRadiusPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CoverageRadius(·, 0) did not panic")
		}
	}()
	CoverageRadius(100, 0)
}

func TestMeanDistToPoint(t *testing.T) {
	pts := []Vec3{{0, 0, 0}, {2, 0, 0}}
	q := Vec3{1, 0, 0}
	if got := MeanDistToPoint(pts, q); got != 1 {
		t.Fatalf("MeanDistToPoint = %v", got)
	}
	if got := MeanDistToPoint(nil, q); got != 0 {
		t.Fatalf("MeanDistToPoint(nil) = %v", got)
	}
}

func TestExpectedMeanDistCubeToCenter(t *testing.T) {
	// The constant for a unit cube to its center is ≈ 0.4802959782...
	// (half-cube Robbins-style integral). Cross-check quadrature against
	// Monte Carlo.
	want := ExpectedMeanDistCubeToCenter(1)
	if math.Abs(want-0.4802959782) > 1e-6 {
		t.Fatalf("quadrature constant = %.10f, want ~0.4802959782", want)
	}
	r := rng.New(4)
	b := Cube(200)
	mc := MeanDistToPoint(b.SampleUniformN(r, 200000), b.Center())
	if math.Abs(mc-ExpectedMeanDistCubeToCenter(200))/mc > 0.01 {
		t.Fatalf("Monte Carlo %v vs quadrature %v", mc, ExpectedMeanDistCubeToCenter(200))
	}
}

func TestGridWithinRadiusMatchesBruteForce(t *testing.T) {
	r := rng.New(5)
	b := Cube(100)
	pts := b.SampleUniformN(r, 500)
	g := NewGrid(b, pts, nil, 0)
	for trial := 0; trial < 50; trial++ {
		q := b.SampleUniform(r)
		d := r.Range(1, 40)
		got := g.WithinRadius(q, d)
		var want []int
		for i, p := range pts {
			if p.Dist(q) <= d {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("WithinRadius count = %d, brute force %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("WithinRadius ids diverge at %d: %v vs %v", i, got, want)
			}
		}
	}
}

func TestGridNearestMatchesBruteForce(t *testing.T) {
	r := rng.New(6)
	b := Cube(100)
	pts := b.SampleUniformN(r, 300)
	g := NewGrid(b, pts, nil, 0)
	for trial := 0; trial < 200; trial++ {
		q := b.SampleUniform(r)
		id, dist, ok := g.Nearest(q)
		if !ok {
			t.Fatal("Nearest reported empty grid")
		}
		bestID, best := -1, math.Inf(1)
		for i, p := range pts {
			if d := p.Dist(q); d < best {
				best = d
				bestID = i
			}
		}
		if id != bestID || math.Abs(dist-best) > 1e-12 {
			t.Fatalf("Nearest = (%d, %v), brute force (%d, %v)", id, dist, bestID, best)
		}
	}
}

func TestGridCustomIDs(t *testing.T) {
	b := Cube(10)
	pts := []Vec3{{1, 1, 1}, {9, 9, 9}}
	g := NewGrid(b, pts, []int{100, 200}, 0)
	got := g.WithinRadius(Vec3{1, 1, 1}, 2)
	if len(got) != 1 || got[0] != 100 {
		t.Fatalf("WithinRadius with custom ids = %v", got)
	}
	id, _, ok := g.Nearest(Vec3{8, 8, 8})
	if !ok || id != 200 {
		t.Fatalf("Nearest with custom ids = %d, %v", id, ok)
	}
}

func TestGridEmpty(t *testing.T) {
	g := NewGrid(Cube(10), nil, nil, 0)
	if _, _, ok := g.Nearest(Vec3{1, 1, 1}); ok {
		t.Fatal("Nearest on empty grid returned ok")
	}
	if got := g.WithinRadius(Vec3{1, 1, 1}, 5); len(got) != 0 {
		t.Fatalf("WithinRadius on empty grid = %v", got)
	}
}

func TestGridPointOutsideBounds(t *testing.T) {
	// Points and queries outside the nominal bounds must not panic;
	// they are clamped into the boundary cells.
	b := Cube(10)
	pts := []Vec3{{-5, 3, 3}, {15, 3, 3}, {5, 5, 5}}
	g := NewGrid(b, pts, nil, 0)
	id, _, ok := g.Nearest(Vec3{-100, 3, 3})
	if !ok || id != 0 {
		t.Fatalf("Nearest outside bounds = %d, %v", id, ok)
	}
	in := g.WithinRadius(Vec3{-5, 3, 3}, 1)
	if len(in) != 1 || in[0] != 0 {
		t.Fatalf("WithinRadius outside bounds = %v", in)
	}
}

func TestGridNegativeRadius(t *testing.T) {
	b := Cube(10)
	g := NewGrid(b, []Vec3{{5, 5, 5}}, nil, 0)
	if got := g.WithinRadius(Vec3{5, 5, 5}, -1); got != nil {
		t.Fatalf("negative radius returned %v", got)
	}
}

// Property: distance is symmetric and satisfies the triangle inequality.
func TestDistanceMetricQuick(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz int8) bool {
		a := Vec3{float64(ax), float64(ay), float64(az)}
		b := Vec3{float64(bx), float64(by), float64(bz)}
		c := Vec3{float64(cx), float64(cy), float64(cz)}
		if math.Abs(a.Dist(b)-b.Dist(a)) > 1e-9 {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Eq. (5) radius shrinks monotonically in k.
func TestCoverageRadiusMonotoneQuick(t *testing.T) {
	f := func(k uint8) bool {
		kk := int(k)%100 + 1
		return CoverageRadius(200, kk+1) < CoverageRadius(200, kk)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGridWithinRadius(b *testing.B) {
	r := rng.New(7)
	box := Cube(200)
	pts := box.SampleUniformN(r, 2896)
	g := NewGrid(box, pts, nil, 0)
	q := box.Center()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.WithinRadius(q, 25)
	}
}

func BenchmarkGridNearest(b *testing.B) {
	r := rng.New(8)
	box := Cube(200)
	pts := box.SampleUniformN(r, 2896)
	g := NewGrid(box, pts, nil, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = g.Nearest(box.SampleUniform(r))
	}
}
