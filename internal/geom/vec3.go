// Package geom provides the 3-dimensional geometry substrate for the QLEC
// simulator: vectors, axis-aligned boxes, uniform spatial sampling, and a
// uniform-grid spatial index used for cluster-coverage-radius broadcasts
// and nearest-cluster-head queries.
//
// The paper (§3.1) places N sensor nodes uniformly in an M×M×M cube with
// the base station at the cube center; Lemma 1 reasons about uniform balls
// around cluster heads. Both samplers live here so their statistical
// properties can be property-tested directly against the paper's
// closed-form moments.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a point or displacement in 3-D space. Coordinates use the
// paper's abstract distance units (the radio model constants are expressed
// per meter, so units are meters throughout this codebase).
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// NormSq returns the squared Euclidean length of v.
func (v Vec3) NormSq() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// DistSq returns the squared Euclidean distance between v and w.
func (v Vec3) DistSq(w Vec3) float64 { return v.Sub(w).NormSq() }

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.3g, %.3g, %.3g)", v.X, v.Y, v.Z)
}

// IsFinite reports whether all coordinates are finite numbers.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// Lerp returns the linear interpolation between v and w at parameter t.
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		v.X + (w.X-v.X)*t,
		v.Y + (w.Y-v.Y)*t,
		v.Z + (w.Z-v.Z)*t,
	}
}

// Centroid returns the arithmetic mean of the given points. It returns the
// zero vector for an empty slice.
func Centroid(pts []Vec3) Vec3 {
	if len(pts) == 0 {
		return Vec3{}
	}
	var c Vec3
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}
