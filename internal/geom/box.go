package geom

import (
	"fmt"
	"math"

	"qlec/internal/rng"
)

// AABB is an axis-aligned bounding box with inclusive Min and exclusive
// Max corner semantics for sampling (a sampled point p satisfies
// Min.X <= p.X < Max.X on each axis).
type AABB struct {
	Min, Max Vec3
}

// Cube returns the M×M×M deployment cube used throughout the paper, with
// its minimum corner at the origin.
func Cube(side float64) AABB {
	return AABB{Min: Vec3{}, Max: Vec3{side, side, side}}
}

// Center returns the geometric center of the box. The paper places the
// base station ("the green node in the center", Fig. 1) here.
func (b AABB) Center() Vec3 {
	return b.Min.Lerp(b.Max, 0.5)
}

// Size returns the per-axis extents of the box.
func (b AABB) Size() Vec3 { return b.Max.Sub(b.Min) }

// Volume returns the volume of the box.
func (b AABB) Volume() float64 {
	s := b.Size()
	return s.X * s.Y * s.Z
}

// Contains reports whether p lies inside the box (half-open on each axis).
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X < b.Max.X &&
		p.Y >= b.Min.Y && p.Y < b.Max.Y &&
		p.Z >= b.Min.Z && p.Z < b.Max.Z
}

// Clamp returns p clamped into the box.
func (b AABB) Clamp(p Vec3) Vec3 {
	return Vec3{
		X: math.Min(math.Max(p.X, b.Min.X), math.Nextafter(b.Max.X, b.Min.X)),
		Y: math.Min(math.Max(p.Y, b.Min.Y), math.Nextafter(b.Max.Y, b.Min.Y)),
		Z: math.Min(math.Max(p.Z, b.Min.Z), math.Nextafter(b.Max.Z, b.Min.Z)),
	}
}

// Validate returns an error if the box is degenerate or inverted.
func (b AABB) Validate() error {
	if !(b.Min.IsFinite() && b.Max.IsFinite()) {
		return fmt.Errorf("geom: box corners not finite: %v %v", b.Min, b.Max)
	}
	if b.Max.X <= b.Min.X || b.Max.Y <= b.Min.Y || b.Max.Z <= b.Min.Z {
		return fmt.Errorf("geom: box has non-positive extent: %v %v", b.Min, b.Max)
	}
	return nil
}

// SampleUniform draws a point uniformly inside the box.
func (b AABB) SampleUniform(r *rng.Stream) Vec3 {
	return Vec3{
		X: r.Range(b.Min.X, b.Max.X),
		Y: r.Range(b.Min.Y, b.Max.Y),
		Z: r.Range(b.Min.Z, b.Max.Z),
	}
}

// SampleUniformN draws n points uniformly inside the box.
func (b AABB) SampleUniformN(r *rng.Stream, n int) []Vec3 {
	pts := make([]Vec3, n)
	for i := range pts {
		pts[i] = b.SampleUniform(r)
	}
	return pts
}

// SampleBall draws a point uniformly inside the ball of the given radius
// centered at c, by radial inversion: r = R * u^(1/3) with a uniform
// direction. This is the distribution assumed by Lemma 1 ("cluster nodes
// are uniformly distributed in the area of a ball centered on the cluster
// head").
func SampleBall(r *rng.Stream, c Vec3, radius float64) Vec3 {
	dir := sampleUnitDir(r)
	rad := radius * math.Cbrt(r.Float64())
	return c.Add(dir.Scale(rad))
}

// sampleUnitDir draws a uniform direction on the unit sphere using the
// Marsaglia (1972) rejection method.
func sampleUnitDir(r *rng.Stream) Vec3 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := 2 * math.Sqrt(1-s)
		return Vec3{X: u * f, Y: v * f, Z: 1 - 2*s}
	}
}

// BallVolume returns the volume of a ball with the given radius.
func BallVolume(radius float64) float64 {
	return 4.0 / 3.0 * math.Pi * radius * radius * radius
}

// CoverageRadius returns the paper's Eq. (5) cluster coverage radius
//
//	d_c = (3 / (4πk))^(1/3) · M,
//
// i.e. the radius at which k balls jointly match the cube's volume. It
// panics if k <= 0 because a cluster count is structurally positive.
func CoverageRadius(side float64, k int) float64 {
	if k <= 0 {
		panic("geom: CoverageRadius requires k > 0")
	}
	return math.Cbrt(3.0/(4.0*math.Pi*float64(k))) * side
}

// MeanDistToPoint estimates, by direct summation, the mean distance from
// the given points to a fixed point. Used to compute the paper's d_toBS
// ("approximated by the average distance between the nodes and BS", §3.2).
func MeanDistToPoint(pts []Vec3, q Vec3) float64 {
	if len(pts) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range pts {
		sum += p.Dist(q)
	}
	return sum / float64(len(pts))
}

// ExpectedMeanDistCubeToCenter returns the closed-form constant for the
// expected distance from a uniform point in an M-cube to the cube center:
// E[d] = M * c where c ≈ 0.480296 (the Robbins constant scaled to the
// half-cube). It is evaluated by deterministic Gauss–Legendre quadrature
// once at startup cost rather than hard-coding an opaque literal.
func ExpectedMeanDistCubeToCenter(side float64) float64 {
	// Integrate sqrt(x²+y²+z²) over [-1/2,1/2]³ with fixed quadrature.
	nodes, weights := gaussLegendre32()
	sum := 0.0
	for i, xi := range nodes {
		x := xi / 2
		wx := weights[i]
		for j, yj := range nodes {
			y := yj / 2
			wy := weights[j]
			for k, zk := range nodes {
				z := zk / 2
				sum += wx * wy * weights[k] * math.Sqrt(x*x+y*y+z*z)
			}
		}
	}
	// The affine map [-1,1]→[-1/2,1/2] contributes (1/2)³ Jacobian.
	return side * sum / 8
}

// gaussLegendre32 returns 32-point Gauss–Legendre nodes and weights on
// [-1, 1], computed by Newton iteration on Legendre polynomials.
func gaussLegendre32() (nodes, weights []float64) {
	const n = 32
	nodes = make([]float64, n)
	weights = make([]float64, n)
	for i := 0; i < (n+1)/2; i++ {
		// Initial guess (Abramowitz & Stegun 25.4.30).
		x := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for iter := 0; iter < 100; iter++ {
			p0, p1 := 1.0, 0.0
			for j := 0; j < n; j++ {
				p2 := p1
				p1 = p0
				p0 = ((2*float64(j)+1)*x*p1 - float64(j)*p2) / float64(j+1)
			}
			pp = float64(n) * (x*p0 - p1) / (x*x - 1)
			dx := p0 / pp
			x -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		nodes[i] = -x
		nodes[n-1-i] = x
		w := 2 / ((1 - x*x) * pp * pp)
		weights[i] = w
		weights[n-1-i] = w
	}
	return nodes, weights
}
