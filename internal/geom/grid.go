package geom

import (
	"math"
	"sort"
)

// Grid is a uniform-cell spatial index over points in an AABB. It supports
// the two queries the simulator needs on its hot path:
//
//   - WithinRadius: all points within d of a query point (the HELLO
//     broadcast of Algorithm 2 reaches every node within the cluster
//     coverage radius d_c), and
//   - Nearest: the closest indexed point to a query (nearest-cluster-head
//     assignment used by the DEEC and k-means baselines).
//
// Cells are cubic with edge ~ the expected query radius; queries visit
// only the O(1) neighbouring cells rather than all N points, keeping the
// per-round cost of Algorithm 2 at the O(N) the paper claims (Lemma 2)
// instead of O(N²) for naive broadcasts.
type Grid struct {
	bounds   AABB
	cell     float64
	nx, ny   int
	nz       int
	points   []Vec3
	ids      []int   // ids[i] is the caller's identifier for points[i]
	cells    [][]int // cells[c] lists indices into points
	cellOfPt []int
}

// NewGrid builds an index over the given points. ids[i] is returned from
// queries to identify points[i]; if ids is nil the point's slice index is
// used. cellSize <= 0 picks a heuristic cell edge targeting ~2 points per
// cell.
func NewGrid(bounds AABB, points []Vec3, ids []int, cellSize float64) *Grid {
	if err := bounds.Validate(); err != nil {
		panic(err)
	}
	if ids != nil && len(ids) != len(points) {
		panic("geom: NewGrid ids length mismatch")
	}
	if ids == nil {
		ids = make([]int, len(points))
		for i := range ids {
			ids[i] = i
		}
	}
	size := bounds.Size()
	if cellSize <= 0 {
		n := len(points)
		if n < 1 {
			n = 1
		}
		// Edge so that each cell holds ~2 points on average.
		cellSize = math.Cbrt(2 * bounds.Volume() / float64(n))
	}
	g := &Grid{bounds: bounds, cell: cellSize}
	g.nx = maxInt(1, int(math.Ceil(size.X/cellSize)))
	g.ny = maxInt(1, int(math.Ceil(size.Y/cellSize)))
	g.nz = maxInt(1, int(math.Ceil(size.Z/cellSize)))
	g.points = append([]Vec3(nil), points...)
	g.ids = append([]int(nil), ids...)
	g.cells = make([][]int, g.nx*g.ny*g.nz)
	g.cellOfPt = make([]int, len(points))
	for i, p := range points {
		c := g.cellIndex(p)
		g.cells[c] = append(g.cells[c], i)
		g.cellOfPt[i] = c
	}
	return g
}

// Reindex rebuilds the index in place over a new point set, reusing the
// existing cell structure and buffers — for callers that re-query a
// fresh set of points every round over the same bounds (the per-round
// head set of Algorithm 3). The grid keeps its bounds and cell size, so
// build it with an explicit cellSize (e.g. the query radius) rather
// than the point-count heuristic.
func (g *Grid) Reindex(points []Vec3, ids []int) {
	if ids != nil && len(ids) != len(points) {
		panic("geom: Reindex ids length mismatch")
	}
	for _, c := range g.cellOfPt {
		g.cells[c] = g.cells[c][:0]
	}
	g.points = append(g.points[:0], points...)
	if ids == nil {
		g.ids = g.ids[:0]
		for i := range points {
			g.ids = append(g.ids, i)
		}
	} else {
		g.ids = append(g.ids[:0], ids...)
	}
	if cap(g.cellOfPt) < len(points) {
		g.cellOfPt = make([]int, len(points))
	}
	g.cellOfPt = g.cellOfPt[:len(points)]
	for i, p := range points {
		c := g.cellIndex(p)
		g.cells[c] = append(g.cells[c], i)
		g.cellOfPt[i] = c
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (g *Grid) cellCoords(p Vec3) (cx, cy, cz int) {
	rel := p.Sub(g.bounds.Min)
	cx = clampInt(int(rel.X/g.cell), 0, g.nx-1)
	cy = clampInt(int(rel.Y/g.cell), 0, g.ny-1)
	cz = clampInt(int(rel.Z/g.cell), 0, g.nz-1)
	return
}

func (g *Grid) cellIndex(p Vec3) int {
	cx, cy, cz := g.cellCoords(p)
	return (cz*g.ny+cy)*g.nx + cx
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.points) }

// WithinRadius returns the ids of all indexed points p with
// dist(p, q) <= d, in ascending id order (deterministic iteration matters
// for reproducible simulations). The query point itself is included if it
// is indexed and within range.
func (g *Grid) WithinRadius(q Vec3, d float64) []int {
	return g.WithinRadiusAppend(q, d, nil)
}

// WithinRadiusAppend is WithinRadius appending into buf (which may be
// nil or a reused buf[:0]), avoiding a per-query allocation on hot
// paths. The returned slice holds the ids in ascending order.
func (g *Grid) WithinRadiusAppend(q Vec3, d float64, buf []int) []int {
	if d < 0 {
		return buf
	}
	out := buf
	d2 := d * d
	cx, cy, cz := g.cellCoords(q)
	span := int(math.Ceil(d/g.cell)) + 1
	for dz := -span; dz <= span; dz++ {
		z := cz + dz
		if z < 0 || z >= g.nz {
			continue
		}
		for dy := -span; dy <= span; dy++ {
			y := cy + dy
			if y < 0 || y >= g.ny {
				continue
			}
			for dx := -span; dx <= span; dx++ {
				x := cx + dx
				if x < 0 || x >= g.nx {
					continue
				}
				for _, i := range g.cells[(z*g.ny+y)*g.nx+x] {
					if g.points[i].DistSq(q) <= d2 {
						out = append(out, g.ids[i])
					}
				}
			}
		}
	}
	sort.Ints(out)
	return out
}

// Nearest returns the id of the indexed point closest to q and the
// distance to it. ok is false when the grid is empty. Ties break toward
// the smaller id so results are deterministic.
func (g *Grid) Nearest(q Vec3) (id int, dist float64, ok bool) {
	if len(g.points) == 0 {
		return 0, 0, false
	}
	bestID := -1
	best := math.Inf(1)
	cx, cy, cz := g.cellCoords(q)
	maxSpan := maxInt(g.nx, maxInt(g.ny, g.nz))
	for span := 0; span <= maxSpan; span++ {
		found := false
		for dz := -span; dz <= span; dz++ {
			z := cz + dz
			if z < 0 || z >= g.nz {
				continue
			}
			for dy := -span; dy <= span; dy++ {
				y := cy + dy
				if y < 0 || y >= g.ny {
					continue
				}
				for dx := -span; dx <= span; dx++ {
					// Only the shell of the current span; inner cells
					// were visited at smaller spans.
					if absInt(dx) != span && absInt(dy) != span && absInt(dz) != span {
						continue
					}
					x := cx + dx
					if x < 0 || x >= g.nx {
						continue
					}
					for _, i := range g.cells[(z*g.ny+y)*g.nx+x] {
						found = true
						d := g.points[i].Dist(q)
						if d < best || (d == best && g.ids[i] < bestID) {
							best = d
							bestID = g.ids[i]
						}
					}
				}
			}
		}
		// Once a candidate exists, one extra shell guarantees correctness:
		// any closer point must lie within best distance, which spans at
		// most ceil(best/cell) cells.
		if found && float64(span)*g.cell > best {
			break
		}
	}
	if bestID < 0 {
		return 0, 0, false
	}
	return bestID, best, true
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
