package qleach

import (
	"reflect"
	"testing"

	"qlec/internal/cluster"
	"qlec/internal/network"
	"qlec/internal/rng"
)

func uniformNet(t *testing.T, n int, seed uint64) *network.Network {
	t.Helper()
	w, err := network.Deploy(network.Deployment{
		N: n, Side: 200, InitialEnergy: 5,
	}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// The sectored election's defining property: every sector fields exactly
// its quota of heads while it has enough alive nodes, so heads can never
// clump into one corner of the field.
func TestPerSectorHeadCountBounds(t *testing.T) {
	w := uniformNet(t, 80, 21)
	const k = 8
	p, err := New(w, Config{K: k, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if p.Sectors() != DefaultSectors {
		t.Fatalf("Sectors() = %d, want %d", p.Sectors(), DefaultSectors)
	}
	for round := 0; round < 60; round++ {
		heads := p.StartRound(round)
		if len(heads) != k {
			t.Fatalf("round %d: %d heads, want %d", round, len(heads), k)
		}
		perSector := make([]int, p.Sectors())
		for _, h := range heads {
			perSector[p.Sector(h)]++
		}
		for s, got := range perSector {
			if want := p.Quota(s); got != want {
				t.Fatalf("round %d: sector %d fielded %d heads, want %d (all %v)",
					round, s, got, want, perSector)
			}
		}
		p.EndRound(round)
	}
}

// Uneven quota split: K not divisible by S gives the first K mod S
// sectors one extra head, totals still K.
func TestQuotaSplit(t *testing.T) {
	w := uniformNet(t, 80, 22)
	p, err := New(w, Config{K: 7, Sectors: 4, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 2, 2, 1}
	var got []int
	for s := 0; s < p.Sectors(); s++ {
		got = append(got, p.Quota(s))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("quotas = %v, want %v", got, want)
	}
}

// Fewer heads than sectors: the sector count collapses to K so no
// sector is permanently headless.
func TestSectorsClampedToK(t *testing.T) {
	w := uniformNet(t, 40, 23)
	p, err := New(w, Config{K: 2, Sectors: 4, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if p.Sectors() != 2 {
		t.Fatalf("Sectors() = %d, want 2", p.Sectors())
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	run := func() [][]int {
		w := uniformNet(t, 60, 24)
		p, err := New(w, Config{K: 6, Seed: 24})
		if err != nil {
			t.Fatal(err)
		}
		var rounds [][]int
		for r := 0; r < 20; r++ {
			rounds = append(rounds, append([]int(nil), p.StartRound(r)...))
			p.EndRound(r)
		}
		return rounds
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different head sequences")
	}
}

func TestConformance(t *testing.T) {
	w := uniformNet(t, 60, 25)
	for i := 0; i < 20; i++ {
		w.Nodes[i].Battery.Draw(5)
	}
	p, err := New(w, Config{K: 6, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	report := cluster.CheckConformance(w, p, 40, 0)
	if !report.Ok() {
		for _, v := range report.Violations {
			t.Error(v)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	w := uniformNet(t, 20, 26)
	bad := []Config{
		{K: 0},
		{K: 5, Sectors: -1},
		{K: 5, DeathLine: -1},
		{K: 21},
	}
	for i, cfg := range bad {
		if _, err := New(w, cfg); err == nil {
			t.Errorf("case %d: New accepted %+v", i, cfg)
		}
	}
}

// StaticHops must agree with NextHop for every node, every round: it is
// the frozen map the simulator's parallel cluster lanes route by.
func TestStaticHopsMatchesNextHop(t *testing.T) {
	w := uniformNet(t, 80, 33)
	p, err := New(w, Config{K: 8, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	var _ cluster.StaticRouter = p
	for round := 0; round < 5; round++ {
		p.StartRound(round)
		hops := p.StaticHops()
		if len(hops) != w.N() {
			t.Fatalf("round %d: StaticHops len %d, want %d", round, len(hops), w.N())
		}
		for id := range hops {
			if hops[id] != p.NextHop(id) {
				t.Fatalf("round %d node %d: StaticHops %d != NextHop %d",
					round, id, hops[id], p.NextHop(id))
			}
		}
		p.EndRound(round)
	}
}
