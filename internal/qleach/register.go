package qleach

import (
	"qlec/internal/cluster"
	"qlec/internal/protocol"
)

func init() {
	protocol.Register(protocol.Descriptor{
		ID:      "Q-LEACH",
		Aliases: []string{"qleach", "sectored-leach"},
		Paper:   "Manzoor et al. — arXiv 1303.5240",
		Summary: "sectored LEACH: per-sector rotation lotteries guarantee spread-out heads",
		Order:   110,
		DefaultParams: map[string]float64{
			"sectors": DefaultSectors,
		},
		Factory: func(b protocol.BuildContext) (cluster.Protocol, error) {
			return New(b.Net, Config{
				K:         b.K,
				Sectors:   int(b.Param("sectors", DefaultSectors)),
				DeathLine: b.DeathLine,
				Seed:      b.Seed,
			})
		},
	})
}
