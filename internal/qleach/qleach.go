// Package qleach implements a Q-LEACH-style sectored head selection
// (Manzoor et al., "Q-LEACH: A New Routing Protocol for WSNs", arXiv
// 1303.5240): the field is partitioned into equal angular sectors
// around its center, and each sector elects its own share of the k
// cluster heads with a LEACH rotation lottery. Quartering the network
// bounds intra-cluster distances and guarantees the head set is spread
// across the field instead of clumping — the head-distribution weakness
// of classic LEACH that DEEC/QLEC also attack, fixed geometrically.
//
// Per round, sector s with quota k_s and n_s alive nodes runs the
// lottery at p_s = k_s/n_s; the sector's head count is then pinned to
// k_s exactly (trim richest-first, top up richest-first), so every
// sector fields min(k_s, n_s) heads.
package qleach

import (
	"fmt"
	"math"
	"slices"

	"qlec/internal/cluster"
	"qlec/internal/energy"
	"qlec/internal/network"
	"qlec/internal/rng"
)

// DefaultSectors is the paper's quartering.
const DefaultSectors = 4

// Config parameterizes a Q-LEACH instance.
type Config struct {
	// K is the total head count per round, split across sectors.
	K int
	// Sectors is the number of equal angular sectors; 0 means
	// DefaultSectors.
	Sectors int
	// DeathLine excludes depleted nodes.
	DeathLine energy.Joules
	// Seed drives the per-sector lotteries.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.K <= 0 {
		return fmt.Errorf("qleach: K must be positive, got %d", c.K)
	}
	if c.Sectors < 0 {
		return fmt.Errorf("qleach: Sectors must be non-negative, got %d", c.Sectors)
	}
	if c.DeathLine < 0 {
		return fmt.Errorf("qleach: DeathLine must be non-negative, got %v", c.DeathLine)
	}
	return nil
}

// Protocol is sectored LEACH bound to one network.
type Protocol struct {
	cfg Config
	net *network.Network
	rnd *rng.Stream
	// sector[i] is node i's fixed angular sector (positions are static).
	sector []int
	// quota[s] is sector s's head allotment: ⌊K/S⌋ plus one for the
	// first K mod S sectors.
	quota []int

	isHead  []bool
	nearest cluster.Assignment
	// hop is the frozen member→target map for the round (StaticRouter).
	hop []int
	// lastCH[i] is the last round node i served as a sector head; the
	// lottery's epoch eligibility reads it. Kept protocol-local (unlike
	// LEACH/DEEC's shared network stamp) so the sectored epochs are
	// self-contained.
	lastCH []int
}

// New builds a Q-LEACH protocol over the network.
func New(w *network.Network, cfg Config) (*Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Sectors == 0 {
		cfg.Sectors = DefaultSectors
	}
	if cfg.K > w.N() {
		return nil, fmt.Errorf("qleach: K=%d exceeds N=%d", cfg.K, w.N())
	}
	if cfg.Sectors > cfg.K {
		// More sectors than heads would leave permanently headless
		// sectors; collapse to one head per sector at most.
		cfg.Sectors = cfg.K
	}
	center := w.Box.Center()
	sector := make([]int, w.N())
	for i, n := range w.Nodes {
		// Angular sector in the XY plane around the field center; the
		// paper partitions its square field into quadrants, which this
		// generalizes to S slices.
		theta := math.Atan2(n.Pos.Y-center.Y, n.Pos.X-center.X) // [-π, π]
		frac := (theta + math.Pi) / (2 * math.Pi)               // [0, 1]
		s := int(frac * float64(cfg.Sectors))
		if s >= cfg.Sectors {
			s = cfg.Sectors - 1
		}
		sector[i] = s
	}
	quota := make([]int, cfg.Sectors)
	for s := range quota {
		quota[s] = cfg.K / cfg.Sectors
		if s < cfg.K%cfg.Sectors {
			quota[s]++
		}
	}
	lastCH := make([]int, w.N())
	for i := range lastCH {
		lastCH[i] = -1
	}
	return &Protocol{
		cfg:    cfg,
		net:    w,
		rnd:    rng.NewNamed(cfg.Seed, "qleach/select"),
		sector: sector,
		quota:  quota,
		isHead: make([]bool, w.N()),
		lastCH: lastCH,
	}, nil
}

// Sector returns node id's fixed sector index (tests and telemetry).
func (p *Protocol) Sector(id int) int { return p.sector[id] }

// Sectors returns the configured sector count after clamping.
func (p *Protocol) Sectors() int { return p.cfg.Sectors }

// Quota returns sector s's head allotment.
func (p *Protocol) Quota(s int) int { return p.quota[s] }

// Name implements cluster.Protocol.
func (p *Protocol) Name() string { return "Q-LEACH" }

// StartRound implements cluster.Protocol: per-sector rotation lotteries.
func (p *Protocol) StartRound(round int) []int {
	// Alive nodes per sector, in ascending id order (Nodes is id-sorted).
	bySector := make([][]int, p.cfg.Sectors)
	for _, n := range p.net.Nodes {
		if !n.Alive(p.cfg.DeathLine) {
			continue
		}
		s := p.sector[n.ID]
		bySector[s] = append(bySector[s], n.ID)
	}
	var heads []int
	for s, members := range bySector {
		heads = append(heads, p.electSector(round, members, p.quota[s])...)
	}
	heads = cluster.SortedCopy(heads)
	for i := range p.isHead {
		p.isHead[i] = false
	}
	for _, h := range heads {
		p.isHead[h] = true
		p.lastCH[h] = round
	}
	p.nearest = cluster.AssignNearest(p.net, heads)
	if p.hop == nil {
		p.hop = make([]int, p.net.N())
	}
	for id := range p.hop {
		if p.isHead[id] {
			p.hop[id] = network.BSID
		} else {
			p.hop[id] = p.nearest.Head[id]
		}
	}
	return heads
}

// StaticHops implements cluster.StaticRouter: the routing is frozen at
// StartRound (heads to the BS, members to their nearest head), so the
// simulator may run clusters on parallel lanes.
func (p *Protocol) StaticHops() []int { return p.hop }

// electSector runs one sector's lottery and pins the count to quota.
func (p *Protocol) electSector(round int, members []int, quota int) []int {
	if quota <= 0 || len(members) == 0 {
		return nil
	}
	if quota > len(members) {
		quota = len(members)
	}
	ps := float64(quota) / float64(len(members))
	if ps >= 1 {
		return append([]int(nil), members...)
	}
	epoch := int(math.Floor(1 / ps))
	if epoch < 1 {
		epoch = 1
	}
	slot := round % epoch
	den := 1 - ps*float64(slot)
	t := 1.0
	if den > 0 {
		t = ps / den
	}
	var heads []int
	for _, id := range members {
		// G: not a head so far in the current epoch block.
		if p.lastCH[id] >= round-slot {
			continue
		}
		if p.rnd.Float64() < t {
			heads = append(heads, id)
		}
	}
	residual := func(id int) energy.Joules { return p.net.Nodes[id].Battery.Residual() }
	byResidualDesc := func(a, b int) int {
		ra, rb := residual(a), residual(b)
		switch {
		case ra > rb:
			return -1
		case ra < rb:
			return 1
		}
		return 0
	}
	if len(heads) > quota {
		p.rnd.Shuffle(len(heads), func(i, j int) { heads[i], heads[j] = heads[j], heads[i] })
		slices.SortStableFunc(heads, byResidualDesc)
		heads = heads[:quota]
	}
	if len(heads) < quota {
		inHeads := make(map[int]bool, len(heads))
		for _, h := range heads {
			inHeads[h] = true
		}
		pool := make([]int, 0, len(members))
		for _, id := range members {
			if !inHeads[id] {
				pool = append(pool, id)
			}
		}
		p.rnd.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		slices.SortStableFunc(pool, byResidualDesc)
		heads = append(heads, pool[:quota-len(heads)]...)
	}
	return heads
}

// NextHop implements cluster.Protocol: heads burst to the BS, members
// join the nearest head.
func (p *Protocol) NextHop(node int) int {
	if p.isHead[node] {
		return network.BSID
	}
	return p.nearest.Head[node]
}

// OnOutcome implements cluster.Protocol: Q-LEACH does not learn.
func (p *Protocol) OnOutcome(node, target int, success bool) {}

// EndRound implements cluster.Protocol.
func (p *Protocol) EndRound(round int) {}

// RelayMode implements cluster.Protocol.
func (p *Protocol) RelayMode() cluster.RelayMode { return cluster.HoldAndBurst }
