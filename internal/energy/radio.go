// Package energy implements the first-order radio energy model of
// Heinzelman et al. (TWC 2002) that the QLEC paper builds on (§3.2 Eq. 6
// and §4.2 Eq. 18), plus battery accounting with the paper's "energy death
// line" network-liveness criterion (§5.1).
//
// Model summary, for a packet of L bits over distance d:
//
//	E_tx(L, d) = L·E_elec + L·ε_fs·d²   if d <  d₀   (free space)
//	E_tx(L, d) = L·E_elec + L·ε_mp·d⁴   if d >= d₀   (multi-path)
//	E_rx(L)    = L·E_elec
//	E_da(L)    = L·E_DA                 (aggregation at cluster heads)
//
// with the crossover distance d₀ = sqrt(ε_fs / ε_mp).
package energy

import (
	"fmt"
	"math"
)

// Joules is an amount of energy. A distinct type keeps Joule quantities
// from being confused with distances or probabilities in the simulator's
// bookkeeping.
type Joules float64

// Model holds the radio constants. The zero value is invalid; use
// DefaultModel or fill every field.
type Model struct {
	// Elec is the electronics energy per bit to run the transmitter or
	// receiver circuitry (E_elec). Typical: 50 nJ/bit.
	Elec Joules
	// FreeSpace is ε_fs, the free-space amplifier constant in J/bit/m².
	// The paper sets 10 pJ/bit/m² (Table 2).
	FreeSpace Joules
	// MultiPath is ε_mp, the multi-path amplifier constant in J/bit/m⁴.
	// The paper sets 0.0013 pJ/bit/m⁴ (Table 2).
	MultiPath Joules
	// Aggregation is E_DA, the per-bit data-aggregation cost at cluster
	// heads. Typical: 5 nJ/bit.
	Aggregation Joules
}

// DefaultModel returns the constants from the paper's Table 2 plus the
// standard Heinzelman values for the two constants the paper leaves at
// their customary defaults (E_elec, E_DA).
func DefaultModel() Model {
	return Model{
		Elec:        50e-9,   // 50 nJ/bit
		FreeSpace:   10e-12,  // 10 pJ/bit/m²
		MultiPath:   1.3e-15, // 0.0013 pJ/bit/m⁴
		Aggregation: 5e-9,    // 5 nJ/bit
	}
}

// Validate reports whether all constants are positive and finite.
func (m Model) Validate() error {
	check := func(name string, v Joules) error {
		f := float64(v)
		if !(f > 0) || math.IsInf(f, 0) {
			return fmt.Errorf("energy: %s must be positive and finite, got %v", name, f)
		}
		return nil
	}
	if err := check("Elec", m.Elec); err != nil {
		return err
	}
	if err := check("FreeSpace", m.FreeSpace); err != nil {
		return err
	}
	if err := check("MultiPath", m.MultiPath); err != nil {
		return err
	}
	return check("Aggregation", m.Aggregation)
}

// CrossoverDistance returns d₀ = sqrt(ε_fs/ε_mp), the distance at which
// the free-space and multi-path amplifier terms are equal (Eq. 18).
func (m Model) CrossoverDistance() float64 {
	return math.Sqrt(float64(m.FreeSpace) / float64(m.MultiPath))
}

// Tx returns the energy to transmit bits over distance d (Eq. 18 plus the
// electronics term).
func (m Model) Tx(bits int, d float64) Joules {
	return m.TxAmplifier(bits, d) + Joules(float64(bits))*m.Elec
}

// TxAmplifier returns only the amplifier portion of the transmit cost —
// the y(b_i, h_j) of Eq. (18), which the Q-learning reward uses directly.
func (m Model) TxAmplifier(bits int, d float64) Joules {
	l := float64(bits)
	if d < m.CrossoverDistance() {
		return Joules(l * float64(m.FreeSpace) * d * d)
	}
	d2 := d * d
	return Joules(l * float64(m.MultiPath) * d2 * d2)
}

// Rx returns the energy to receive bits.
func (m Model) Rx(bits int) Joules {
	return Joules(float64(bits)) * m.Elec
}

// Calc is a Model with the crossover distance precomputed. Tx and
// TxAmplifier are evaluated once per radio event on the simulator's hot
// path, and the sqrt inside CrossoverDistance showed up in profiles;
// Calc hoists it while keeping the per-call arithmetic — and therefore
// every result bit — identical to Model's.
type Calc struct {
	m  Model
	d0 float64
}

// Calc precomputes the crossover distance for hot-path cost evaluation.
func (m Model) Calc() Calc {
	return Calc{m: m, d0: m.CrossoverDistance()}
}

// Tx returns the energy to transmit bits over distance d (Eq. 18 plus
// the electronics term); identical to Model.Tx.
func (c Calc) Tx(bits int, d float64) Joules {
	return c.TxAmplifier(bits, d) + Joules(float64(bits))*c.m.Elec
}

// TxAmplifier returns the amplifier portion of the transmit cost;
// identical to Model.TxAmplifier.
func (c Calc) TxAmplifier(bits int, d float64) Joules {
	l := float64(bits)
	if d < c.d0 {
		return Joules(l * float64(c.m.FreeSpace) * d * d)
	}
	d2 := d * d
	return Joules(l * float64(c.m.MultiPath) * d2 * d2)
}

// Rx returns the energy to receive bits; identical to Model.Rx.
func (c Calc) Rx(bits int) Joules {
	return Joules(float64(bits)) * c.m.Elec
}

// Aggregate returns the per-bit aggregation cost; identical to
// Model.Aggregate.
func (c Calc) Aggregate(bits int) Joules {
	return Joules(float64(bits)) * c.m.Aggregation
}

// Aggregate returns the energy to aggregate bits at a cluster head.
func (m Model) Aggregate(bits int) Joules {
	return Joules(float64(bits)) * m.Aggregation
}

// RoundEnergy evaluates the paper's Eq. (6): the total energy dissipated
// in one round with N nodes, k clusters, L bits per node, mean CH→BS
// distance dToBS and mean member→CH distance dToCH:
//
//	E_r = L(2N·E_elec + N·E_DA + k·ε_mp·d_toBS⁴ + N·ε_fs·d_toCH²)
func (m Model) RoundEnergy(bits, n, k int, dToBS, dToCH float64) Joules {
	l := float64(bits)
	return Joules(l * (2*float64(n)*float64(m.Elec) +
		float64(n)*float64(m.Aggregation) +
		float64(k)*float64(m.MultiPath)*math.Pow(dToBS, 4) +
		float64(n)*float64(m.FreeSpace)*dToCH*dToCH))
}

// ExpectedSqDistToCH evaluates Lemma 1's closed form for the expected
// squared member→CH distance with k clusters in an M-cube:
//
//	E[d²_toCH] = (4π/5)·(3/(4π))^(5/3) · M² / k^(2/3)
func ExpectedSqDistToCH(side float64, k int) float64 {
	if k <= 0 {
		panic("energy: ExpectedSqDistToCH requires k > 0")
	}
	return 4 * math.Pi / 5 * math.Pow(3/(4*math.Pi), 5.0/3.0) * side * side / math.Pow(float64(k), 2.0/3.0)
}

// OptimalClusterCount evaluates Theorem 1's closed form:
//
//	k_opt = 3/(4π) · (8πNε_fs / (15ε_mp))^(3/5) · M^(6/5) / d_toBS^(12/5)
//
// It returns the real-valued optimum; callers round to an integer count.
func (m Model) OptimalClusterCount(n int, side, dToBS float64) float64 {
	if n <= 0 || side <= 0 || dToBS <= 0 {
		panic("energy: OptimalClusterCount requires positive arguments")
	}
	ratio := 8 * math.Pi * float64(n) * float64(m.FreeSpace) / (15 * float64(m.MultiPath))
	return 3 / (4 * math.Pi) * math.Pow(ratio, 3.0/5.0) *
		math.Pow(side, 6.0/5.0) / math.Pow(dToBS, 12.0/5.0)
}

// EstimatedLifespanRounds estimates R — the total rounds of network
// lifetime that Eq. (2)'s average-energy schedule needs — from the
// energy model, as the paper's reference [7] (Javaid et al. 2015)
// prescribes: the network's total energy divided by the expected
// per-round dissipation of Eq. (6) composed with Lemma 1.
func (m Model) EstimatedLifespanRounds(totalEnergy Joules, bits, n, k int, side, dToBS float64) int {
	if totalEnergy <= 0 || k <= 0 {
		panic("energy: EstimatedLifespanRounds requires positive energy and k")
	}
	perRound := m.RoundEnergyAtK(bits, n, float64(k), side, dToBS)
	if perRound <= 0 {
		return 1
	}
	r := int(float64(totalEnergy) / float64(perRound))
	if r < 1 {
		r = 1
	}
	return r
}

// RoundEnergyAtK is a convenience composing Eq. (6) with Lemma 1: the
// expected per-round network energy as a function of the cluster count.
// Theorem 1's k_opt is the argmin of this function over real k > 0.
func (m Model) RoundEnergyAtK(bits, n int, k float64, side, dToBS float64) Joules {
	if k <= 0 {
		panic("energy: RoundEnergyAtK requires k > 0")
	}
	dToCH2 := 4 * math.Pi / 5 * math.Pow(3/(4*math.Pi), 5.0/3.0) * side * side / math.Pow(k, 2.0/3.0)
	l := float64(bits)
	return Joules(l * (2*float64(n)*float64(m.Elec) +
		float64(n)*float64(m.Aggregation) +
		k*float64(m.MultiPath)*math.Pow(dToBS, 4) +
		float64(n)*float64(m.FreeSpace)*dToCH2))
}
