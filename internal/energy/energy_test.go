package energy

import (
	"math"
	"testing"
	"testing/quick"

	"qlec/internal/geom"
	"qlec/internal/rng"
)

func TestDefaultModelValidates(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConstants(t *testing.T) {
	m := DefaultModel()
	m.Elec = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero Elec validated")
	}
	m = DefaultModel()
	m.MultiPath = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative MultiPath validated")
	}
	m = DefaultModel()
	m.FreeSpace = Joules(math.Inf(1))
	if err := m.Validate(); err == nil {
		t.Fatal("infinite FreeSpace validated")
	}
}

func TestCrossoverDistance(t *testing.T) {
	m := DefaultModel()
	// d0 = sqrt(10e-12 / 1.3e-15) ≈ 87.7 m, the standard LEACH value.
	d0 := m.CrossoverDistance()
	if math.Abs(d0-87.7058) > 0.01 {
		t.Fatalf("d0 = %v, want ~87.7058", d0)
	}
	// At exactly d0, both amplifier laws agree.
	fs := float64(m.FreeSpace) * d0 * d0
	mp := float64(m.MultiPath) * math.Pow(d0, 4)
	if math.Abs(fs-mp)/fs > 1e-9 {
		t.Fatalf("amplifier laws disagree at d0: %v vs %v", fs, mp)
	}
}

func TestTxPiecewise(t *testing.T) {
	m := DefaultModel()
	const bits = 4000
	d0 := m.CrossoverDistance()

	short := m.Tx(bits, d0/2)
	wantShort := Joules(4000*50e-9) + Joules(4000*10e-12*(d0/2)*(d0/2))
	if math.Abs(float64(short-wantShort))/float64(wantShort) > 1e-12 {
		t.Fatalf("Tx short = %v, want %v", short, wantShort)
	}

	long := m.Tx(bits, 2*d0)
	wantLong := Joules(4000*50e-9) + Joules(4000*1.3e-15*math.Pow(2*d0, 4))
	if math.Abs(float64(long-wantLong))/float64(wantLong) > 1e-12 {
		t.Fatalf("Tx long = %v, want %v", long, wantLong)
	}
}

func TestTxContinuousAtCrossover(t *testing.T) {
	m := DefaultModel()
	d0 := m.CrossoverDistance()
	below := m.Tx(2000, math.Nextafter(d0, 0))
	at := m.Tx(2000, d0)
	if math.Abs(float64(below-at))/float64(at) > 1e-9 {
		t.Fatalf("Tx discontinuous at d0: %v vs %v", below, at)
	}
}

func TestRxAndAggregate(t *testing.T) {
	m := DefaultModel()
	if got := m.Rx(1000); math.Abs(float64(got)-1000*50e-9) > 1e-18 {
		t.Fatalf("Rx = %v", got)
	}
	if got := m.Aggregate(1000); math.Abs(float64(got)-1000*5e-9) > 1e-18 {
		t.Fatalf("Aggregate = %v", got)
	}
}

func TestTxZeroBits(t *testing.T) {
	m := DefaultModel()
	if got := m.Tx(0, 100); got != 0 {
		t.Fatalf("Tx(0 bits) = %v", got)
	}
}

// Lemma 1 cross-check: the closed form for E[d²_toCH] must match Monte
// Carlo sampling of uniform balls of radius d_c.
func TestExpectedSqDistToCHMatchesMonteCarlo(t *testing.T) {
	const side = 200.0
	r := rng.New(11)
	for _, k := range []int{1, 5, 20} {
		dc := geom.CoverageRadius(side, k)
		const n = 100000
		sum := 0.0
		center := geom.Vec3{X: 100, Y: 100, Z: 100}
		for i := 0; i < n; i++ {
			p := geom.SampleBall(r, center, dc)
			sum += p.DistSq(center)
		}
		mc := sum / n
		closed := ExpectedSqDistToCH(side, k)
		if math.Abs(mc-closed)/closed > 0.02 {
			t.Fatalf("k=%d: Monte Carlo E[d²]=%v, Lemma 1 closed form %v", k, mc, closed)
		}
	}
}

// Theorem 1 cross-check: k_opt must be the argmin of Eq. (6) composed with
// Lemma 1 over real k.
func TestOptimalClusterCountIsArgmin(t *testing.T) {
	m := DefaultModel()
	const (
		n     = 100
		side  = 200.0
		bits  = 4000
		dToBS = 96.06 // ≈ 0.48·M·... mean distance to center for M=200
	)
	kopt := m.OptimalClusterCount(n, side, dToBS)
	eAt := func(k float64) float64 {
		return float64(m.RoundEnergyAtK(bits, n, k, side, dToBS))
	}
	base := eAt(kopt)
	for _, factor := range []float64{0.5, 0.8, 0.95, 1.05, 1.25, 2} {
		if eAt(kopt*factor) < base {
			t.Fatalf("E_r(k_opt·%v) = %v < E_r(k_opt) = %v; k_opt=%v is not the argmin",
				factor, eAt(kopt*factor), base, kopt)
		}
	}
}

// The paper's §5.1 claims k_opt ≈ 5 for N=100, M=200 and Table 2
// constants. With the BS at the cube center (Fig. 1) the mean node→BS
// distance is ≈ 0.4803·M and the Theorem 1 formula yields ≈ 11.1, so the
// paper's "approximately 5" is only consistent with a larger d_toBS
// (≈ 134 m, i.e. a BS at the middle of a cube face). Both facts are
// pinned here; DESIGN.md §6 records the discrepancy, and the experiment
// config follows the paper's reported k=5.
func TestPaperKoptDiscrepancyPinned(t *testing.T) {
	m := DefaultModel()
	centerD := geom.ExpectedMeanDistCubeToCenter(200)
	koptCenter := m.OptimalClusterCount(100, 200, centerD)
	if koptCenter < 10.5 || koptCenter > 11.8 {
		t.Fatalf("k_opt(BS at center) = %v, want ~11.1", koptCenter)
	}
	koptFace := m.OptimalClusterCount(100, 200, 134)
	if math.Round(koptFace) != 5 {
		t.Fatalf("k_opt(d_toBS=134) = %v, want to round to the paper's 5", koptFace)
	}
}

func TestRoundEnergyEq6Manual(t *testing.T) {
	m := DefaultModel()
	// Hand-evaluate Eq. (6) for simple arguments.
	got := float64(m.RoundEnergy(1000, 10, 2, 100, 20))
	want := 1000 * (2*10*50e-9 + 10*5e-9 + 2*1.3e-15*1e8 + 10*10e-12*400)
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("RoundEnergy = %v, want %v", got, want)
	}
}

func TestRoundEnergyAtKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RoundEnergyAtK(k=0) did not panic")
		}
	}()
	DefaultModel().RoundEnergyAtK(1000, 10, 0, 200, 100)
}

func TestOptimalClusterCountPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OptimalClusterCount with non-positive args did not panic")
		}
	}()
	DefaultModel().OptimalClusterCount(0, 200, 100)
}

func TestBatteryLifecycle(t *testing.T) {
	b := NewBattery(5)
	if b.Initial() != 5 || b.Residual() != 5 || b.Consumed() != 0 {
		t.Fatal("fresh battery state wrong")
	}
	if got := b.Draw(2); got != 2 {
		t.Fatalf("Draw(2) = %v", got)
	}
	if b.Residual() != 3 || b.Consumed() != 2 {
		t.Fatalf("after draw: residual %v consumed %v", b.Residual(), b.Consumed())
	}
	if rate := b.ConsumptionRate(); math.Abs(rate-0.4) > 1e-12 {
		t.Fatalf("ConsumptionRate = %v, want 0.4", rate)
	}
}

func TestBatteryClampsAtEmpty(t *testing.T) {
	b := NewBattery(1)
	if got := b.Draw(5); got != 1 {
		t.Fatalf("overdraw returned %v, want 1", got)
	}
	if b.Residual() != 0 {
		t.Fatalf("residual after overdraw = %v", b.Residual())
	}
	if got := b.Draw(1); got != 0 {
		t.Fatalf("draw from empty returned %v", got)
	}
}

func TestBatteryNegativeDrawIsNoop(t *testing.T) {
	b := NewBattery(2)
	if got := b.Draw(-1); got != 0 {
		t.Fatalf("negative draw returned %v", got)
	}
	if b.Residual() != 2 {
		t.Fatal("negative draw changed residual")
	}
}

func TestBatteryDeathLine(t *testing.T) {
	b := NewBattery(5)
	if b.Depleted(1) {
		t.Fatal("full battery reported depleted")
	}
	b.Draw(4.5)
	if !b.Depleted(1) {
		t.Fatal("battery below death line not reported depleted")
	}
	if b.Depleted(0.1) {
		t.Fatal("battery above lower death line reported depleted")
	}
}

func TestNewBatteryPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBattery(0) did not panic")
		}
	}()
	NewBattery(0)
}

// Property: Tx is monotone non-decreasing in distance.
func TestTxMonotoneQuick(t *testing.T) {
	m := DefaultModel()
	f := func(a, b uint16) bool {
		d1, d2 := float64(a%500), float64(b%500)
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return m.Tx(2000, d1) <= m.Tx(2000, d2)+1e-18
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: battery invariant residual + consumed == initial under any
// sequence of draws.
func TestBatteryConservationQuick(t *testing.T) {
	f := func(draws []uint8) bool {
		b := NewBattery(10)
		for _, d := range draws {
			b.Draw(Joules(float64(d) / 16))
		}
		return math.Abs(float64(b.Residual()+b.Consumed()-10)) < 1e-9 &&
			b.Residual() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTx(b *testing.B) {
	m := DefaultModel()
	var sink Joules
	for i := 0; i < b.N; i++ {
		sink += m.Tx(4000, float64(i%300))
	}
	_ = sink
}
