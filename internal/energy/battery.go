package energy

import "fmt"

// Battery tracks the residual energy of one node. Draws below the
// remaining charge clamp to zero (the radio browns out mid-transmission);
// the consumer is responsible for treating a node at or below the death
// line as dead.
type Battery struct {
	initial  Joules
	residual Joules
	consumed Joules
}

// NewBattery returns a battery holding the given initial charge.
// It panics on a non-positive charge: a sensor with no battery is a
// configuration error, not a runtime condition.
func NewBattery(initial Joules) *Battery {
	if initial <= 0 {
		panic(fmt.Sprintf("energy: initial battery charge must be positive, got %v", initial))
	}
	return &Battery{initial: initial, residual: initial}
}

// Initial returns the charge the battery started with.
func (b *Battery) Initial() Joules { return b.initial }

// Residual returns the remaining charge.
func (b *Battery) Residual() Joules { return b.residual }

// Consumed returns the total energy drawn so far.
func (b *Battery) Consumed() Joules { return b.consumed }

// ConsumptionRate returns consumed/initial in [0, 1] — the quantity
// plotted for every node in the paper's Figure 4.
func (b *Battery) ConsumptionRate() float64 {
	return float64(b.consumed) / float64(b.initial)
}

// Draw removes amount from the battery, clamping at empty. It returns the
// energy actually drawn. Draw of a non-positive amount is a no-op
// returning zero, so callers may pass computed costs without guarding.
func (b *Battery) Draw(amount Joules) Joules {
	if amount <= 0 {
		return 0
	}
	if amount > b.residual {
		amount = b.residual
	}
	b.residual -= amount
	b.consumed += amount
	return amount
}

// Depleted reports whether the battery is at or below the given death
// line (§5.1: "the network dies when there exists one sensor possessing
// less energy than a given energy death line").
func (b *Battery) Depleted(deathLine Joules) bool {
	return b.residual <= deathLine
}

// ApproxEqual reports whether two energy quantities agree to within
// floating-point accumulation error: |a−b| ≤ 1e-9·max(|a|,|b|) + 1e-12.
// Summing the same draws in a different association order (battery
// residual vs. an external ledger) legitimately differs by a few ULPs;
// this is the shared tolerance for conservation checks, the same form
// metrics.Result.Validate uses for per-round energy sums.
func ApproxEqual(a, b Joules) bool {
	diff := float64(a - b)
	if diff < 0 {
		diff = -diff
	}
	scale := float64(a)
	if scale < 0 {
		scale = -scale
	}
	if s := float64(b); s > scale {
		scale = s
	} else if -s > scale {
		scale = -s
	}
	return diff <= 1e-9*scale+1e-12
}
