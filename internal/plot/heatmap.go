package plot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"qlec/internal/geom"
)

// Heatmap renders a scalar field sampled at 3-D points as a 2-D grid by
// projecting onto the XY plane and averaging over Z — the view used for
// Figure 4's energy-consumption-rate map.
type Heatmap struct {
	Title string
	// Box bounds the projection. Points outside are clamped to edge cells.
	Box geom.AABB
	// Cols and Rows set the raster resolution.
	Cols, Rows int

	Points []geom.Vec3
	Values []float64
}

// shades orders cells from cold to hot.
const shades = " .:-=+*#%@"

// Validate checks structural consistency.
func (h *Heatmap) Validate() error {
	if h.Cols < 1 || h.Rows < 1 {
		return fmt.Errorf("plot: heatmap raster %dx%d invalid", h.Cols, h.Rows)
	}
	if len(h.Points) == 0 {
		return fmt.Errorf("plot: heatmap has no points")
	}
	if len(h.Points) != len(h.Values) {
		return fmt.Errorf("plot: heatmap has %d points but %d values", len(h.Points), len(h.Values))
	}
	if err := h.Box.Validate(); err != nil {
		return err
	}
	for i, v := range h.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("plot: heatmap value %d not finite: %v", i, v)
		}
	}
	return nil
}

// cellMeans rasterizes values into the grid, returning per-cell means and
// a presence mask.
func (h *Heatmap) cellMeans() (means []float64, filled []bool) {
	sums := make([]float64, h.Cols*h.Rows)
	counts := make([]int, h.Cols*h.Rows)
	size := h.Box.Size()
	for i, p := range h.Points {
		cx := clampIdx(int(float64(h.Cols)*(p.X-h.Box.Min.X)/size.X), h.Cols)
		// Rows render top-down; row 0 is max Y.
		cy := clampIdx(int(float64(h.Rows)*(h.Box.Max.Y-p.Y)/size.Y), h.Rows)
		c := cy*h.Cols + cx
		sums[c] += h.Values[i]
		counts[c]++
	}
	means = make([]float64, len(sums))
	filled = make([]bool, len(sums))
	for c := range sums {
		if counts[c] > 0 {
			means[c] = sums[c] / float64(counts[c])
			filled[c] = true
		}
	}
	return means, filled
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// RenderASCII draws the projected field with intensity shading normalized
// to the observed value range.
func (h *Heatmap) RenderASCII() (string, error) {
	if err := h.Validate(); err != nil {
		return "", err
	}
	means, filled := h.cellMeans()
	lo, hi := math.Inf(1), math.Inf(-1)
	for c, ok := range filled {
		if ok {
			lo = math.Min(lo, means[c])
			hi = math.Max(hi, means[c])
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s\n", h.Title)
	}
	fmt.Fprintf(&b, "value range [%.4g, %.4g], shading %q cold→hot, XY projection\n", lo, hi, shades)
	for r := 0; r < h.Rows; r++ {
		b.WriteByte('|')
		for c := 0; c < h.Cols; c++ {
			cell := r*h.Cols + c
			if !filled[cell] {
				b.WriteByte(' ')
				continue
			}
			idx := int(float64(len(shades)-1) * (means[cell] - lo) / (hi - lo))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteByte(shades[idx])
		}
		b.WriteString("|\n")
	}
	return b.String(), nil
}

// WriteCSV emits one row per sample: x,y,z,value. Downstream tools can
// re-plot the genuine 3-D scatter the paper shows.
func (h *Heatmap) WriteCSV(w io.Writer) error {
	if err := h.Validate(); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("x,y,z,value\n")
	for i, p := range h.Points {
		fmt.Fprintf(&b, "%s,%s,%s,%s\n",
			formatFloat(p.X), formatFloat(p.Y), formatFloat(p.Z), formatFloat(h.Values[i]))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Table renders rows of labeled values as an aligned text table — used by
// the benchmark harness to print paper-style result tables.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, hdr := range headers {
		widths[i] = len(hdr)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(widths)-1 {
				// No padding on the last column: keep lines free of
				// trailing whitespace.
				b.WriteString(cell)
			} else {
				fmt.Fprintf(&b, "%-*s", w, cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
