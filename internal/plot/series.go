// Package plot renders the reproduction's figures without any external
// plotting stack: multi-series line charts and heatmaps as terminal
// (ASCII) graphics, and machine-readable CSV for downstream tools.
//
// The calibration notes for this paper single out "weak numeric/plotting
// tooling" as the reproduction risk in Go, so figure output is a
// first-class substrate here rather than an afterthought: every figure in
// EXPERIMENTS.md is regenerated through this package.
package plot

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Series is one named line on a chart: y-values sampled at shared
// x-positions.
type Series struct {
	Name string
	Y    []float64
}

// Chart is a multi-series figure over a common x-axis.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// Validate checks that every series matches the x-axis length.
func (c *Chart) Validate() error {
	if len(c.X) == 0 {
		return fmt.Errorf("plot: chart %q has no x points", c.Title)
	}
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	for _, s := range c.Series {
		if len(s.Y) != len(c.X) {
			return fmt.Errorf("plot: series %q has %d points, x-axis has %d",
				s.Name, len(s.Y), len(c.X))
		}
		for i, v := range s.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("plot: series %q point %d is not finite: %v", s.Name, i, v)
			}
		}
	}
	return nil
}

// WriteCSV emits the chart as CSV with an x column followed by one column
// per series. Values use full float precision so figures can be
// re-plotted losslessly.
func (c *Chart) WriteCSV(w io.Writer) error {
	if err := c.Validate(); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString(csvEscape(orDefault(c.XLabel, "x")))
	for _, s := range c.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	for i, x := range c.X {
		b.WriteString(formatFloat(x))
		for _, s := range c.Series {
			b.WriteByte(',')
			b.WriteString(formatFloat(s.Y[i]))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// csvEscape quotes a field when it contains CSV metacharacters.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// markers cycles per series on ASCII charts.
var markers = []byte{'o', '+', 'x', '*', '#', '@', '%'}

// RenderASCII draws the chart as a width×height character plot with a
// y-axis scale, x tick labels and a legend. It is intentionally simple:
// the goal is to eyeball the *shape* of a figure (who wins, where lines
// cross) in a terminal or test log.
func (c *Chart) RenderASCII(width, height int) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	if width < 16 || height < 4 {
		return "", fmt.Errorf("plot: canvas %dx%d too small", width, height)
	}
	xMin, xMax := minMax(c.X)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		lo, hi := minMax(s.Y)
		yMin = math.Min(yMin, lo)
		yMax = math.Max(yMax, hi)
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	if xMax == xMin {
		xMax = xMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		mark := markers[si%len(markers)]
		for i, y := range s.Y {
			col := int(math.Round(float64(width-1) * (c.X[i] - xMin) / (xMax - xMin)))
			row := int(math.Round(float64(height-1) * (yMax - y) / (yMax - yMin)))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = mark
			}
			// Connect to the previous point with a light trace.
			if i > 0 {
				pCol := int(math.Round(float64(width-1) * (c.X[i-1] - xMin) / (xMax - xMin)))
				pRow := int(math.Round(float64(height-1) * (yMax - s.Y[i-1]) / (yMax - yMin)))
				drawLine(grid, pCol, pRow, col, row, '.')
			}
		}
	}
	// Re-stamp markers over traces so data points stay visible.
	for si, s := range c.Series {
		mark := markers[si%len(markers)]
		for i, y := range s.Y {
			col := int(math.Round(float64(width-1) * (c.X[i] - xMin) / (xMax - xMin)))
			row := int(math.Round(float64(height-1) * (yMax - y) / (yMax - yMin)))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", c.YLabel)
	}
	for r, rowBytes := range grid {
		yVal := yMax - (yMax-yMin)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%10.4g |%s\n", yVal, string(rowBytes))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g\n", "", width/2, xMin, width-width/2, xMax)
	if c.XLabel != "" {
		fmt.Fprintf(&b, "%10s  %s\n", "", c.XLabel)
	}
	b.WriteString("   legend:")
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c=%s", markers[si%len(markers)], s.Name)
	}
	b.WriteByte('\n')
	return b.String(), nil
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return
}

// drawLine traces a Bresenham line, writing ch only over blank cells so
// markers are not overwritten.
func drawLine(grid [][]byte, x0, y0, x1, y1 int, ch byte) {
	dx := absI(x1 - x0)
	dy := -absI(y1 - y0)
	sx := 1
	if x0 > x1 {
		sx = -1
	}
	sy := 1
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		if y0 >= 0 && y0 < len(grid) && x0 >= 0 && x0 < len(grid[y0]) && grid[y0][x0] == ' ' {
			grid[y0][x0] = ch
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func absI(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
