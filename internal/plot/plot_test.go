package plot

import (
	"math"
	"strings"
	"testing"

	"qlec/internal/geom"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "Packet Delivery Rate",
		XLabel: "lambda",
		YLabel: "PDR",
		X:      []float64{1, 2, 4, 8},
		Series: []Series{
			{Name: "QLEC", Y: []float64{0.92, 0.97, 1.0, 1.0}},
			{Name: "k-means", Y: []float64{0.75, 0.85, 0.9, 0.93}},
		},
	}
}

func TestChartValidate(t *testing.T) {
	if err := sampleChart().Validate(); err != nil {
		t.Fatal(err)
	}
	c := sampleChart()
	c.Series[0].Y = c.Series[0].Y[:2]
	if err := c.Validate(); err == nil {
		t.Fatal("length mismatch validated")
	}
	c = sampleChart()
	c.X = nil
	if err := c.Validate(); err == nil {
		t.Fatal("empty x validated")
	}
	c = sampleChart()
	c.Series = nil
	if err := c.Validate(); err == nil {
		t.Fatal("no series validated")
	}
	c = sampleChart()
	c.Series[1].Y[0] = math.NaN()
	if err := c.Validate(); err == nil {
		t.Fatal("NaN point validated")
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := sampleChart().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 5 {
		t.Fatalf("csv has %d lines: %q", len(lines), got)
	}
	if lines[0] != "lambda,QLEC,k-means" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,0.92,0.75" {
		t.Fatalf("row 1 = %q", lines[1])
	}
}

func TestCSVEscaping(t *testing.T) {
	c := sampleChart()
	c.Series[0].Name = `QLEC, "ours"`
	var sb strings.Builder
	if err := c.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"QLEC, ""ours"""`) {
		t.Fatalf("name not escaped: %q", strings.SplitN(sb.String(), "\n", 2)[0])
	}
}

func TestCSVDefaultXLabel(t *testing.T) {
	c := sampleChart()
	c.XLabel = ""
	var sb strings.Builder
	if err := c.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "x,") {
		t.Fatalf("default x header missing: %q", strings.SplitN(sb.String(), "\n", 2)[0])
	}
}

func TestRenderASCII(t *testing.T) {
	out, err := sampleChart().RenderASCII(60, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Packet Delivery Rate", "PDR", "lambda", "o=QLEC", "+=k-means"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Highest series value (1.0) must appear on the top data row, lowest
	// (0.75) near the bottom: check axis labels are ordered.
	if !strings.Contains(strings.SplitN(out, "\n", 4)[2], "1") {
		t.Fatalf("top axis label unexpected:\n%s", out)
	}
}

func TestRenderASCIITooSmall(t *testing.T) {
	if _, err := sampleChart().RenderASCII(5, 2); err == nil {
		t.Fatal("tiny canvas accepted")
	}
}

func TestRenderASCIIConstantSeries(t *testing.T) {
	c := &Chart{
		X:      []float64{1, 2, 3},
		Series: []Series{{Name: "flat", Y: []float64{2, 2, 2}}},
	}
	if _, err := c.RenderASCII(30, 6); err != nil {
		t.Fatalf("constant series failed: %v", err)
	}
	c.X = []float64{5, 5, 5}
	if _, err := c.RenderASCII(30, 6); err != nil {
		t.Fatalf("constant x failed: %v", err)
	}
}

func sampleHeatmap() *Heatmap {
	return &Heatmap{
		Title: "consumption",
		Box:   geom.Cube(100),
		Cols:  20, Rows: 10,
		Points: []geom.Vec3{{X: 10, Y: 10, Z: 50}, {X: 90, Y: 90, Z: 50}, {X: 50, Y: 50, Z: 10}},
		Values: []float64{0.1, 0.9, 0.5},
	}
}

func TestHeatmapValidate(t *testing.T) {
	if err := sampleHeatmap().Validate(); err != nil {
		t.Fatal(err)
	}
	h := sampleHeatmap()
	h.Values = h.Values[:1]
	if err := h.Validate(); err == nil {
		t.Fatal("mismatch validated")
	}
	h = sampleHeatmap()
	h.Cols = 0
	if err := h.Validate(); err == nil {
		t.Fatal("zero cols validated")
	}
	h = sampleHeatmap()
	h.Points = nil
	h.Values = nil
	if err := h.Validate(); err == nil {
		t.Fatal("empty heatmap validated")
	}
	h = sampleHeatmap()
	h.Values[0] = math.Inf(1)
	if err := h.Validate(); err == nil {
		t.Fatal("infinite value validated")
	}
}

func TestHeatmapRender(t *testing.T) {
	out, err := sampleHeatmap().RenderASCII()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + scale line + 10 rows.
	if len(lines) != 12 {
		t.Fatalf("render has %d lines:\n%s", len(lines), out)
	}
	// The hot point (0.9 at y=90) projects near the top (rows render
	// top-down); the cold point (0.1 at y=10) near the bottom.
	hotLine := -1
	for i, l := range lines[2:] {
		if strings.ContainsRune(l, '@') {
			hotLine = i
		}
	}
	if hotLine < 0 || hotLine >= 5 {
		t.Fatalf("hottest shade at row %d, want top half:\n%s", hotLine, out)
	}
}

func TestHeatmapConstantField(t *testing.T) {
	h := sampleHeatmap()
	h.Values = []float64{0.5, 0.5, 0.5}
	if _, err := h.RenderASCII(); err != nil {
		t.Fatalf("constant field failed: %v", err)
	}
}

func TestHeatmapCSV(t *testing.T) {
	var sb strings.Builder
	if err := sampleHeatmap().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "x,y,z,value" || len(lines) != 4 {
		t.Fatalf("csv = %q", sb.String())
	}
	if lines[1] != "10,10,50,0.1" {
		t.Fatalf("row = %q", lines[1])
	}
}

func sampleScatter() *Scatter {
	return &Scatter{
		Title: "network",
		Box:   geom.Cube(100),
		Cols:  30, Rows: 12,
		Categories: []ScatterCategory{
			{Name: "members", Marker: '.', Points: []geom.Vec3{{X: 10, Y: 10}, {X: 20, Y: 80}}},
			{Name: "heads", Marker: 'H', Points: []geom.Vec3{{X: 50, Y: 50, Z: 40}}},
			{Name: "BS", Marker: 'B', Points: []geom.Vec3{{X: 50, Y: 50, Z: 90}}},
		},
	}
}

func TestScatterRender(t *testing.T) {
	out, err := sampleScatter().RenderASCII()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"network", "B=BS(1)", "H=heads(1)", ".=members(2)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// BS drawn last wins the shared cell with the head.
	if !strings.ContainsRune(out, 'B') {
		t.Fatal("BS marker missing")
	}
	if strings.Count(out, "H") != 1 { // only the legend's "H=heads"; the grid cell is overwritten by the BS
		t.Fatalf("head marker overwrite wrong:\n%s", out)
	}
}

func TestScatterValidate(t *testing.T) {
	s := sampleScatter()
	s.Cols = 0
	if err := s.Validate(); err == nil {
		t.Fatal("zero cols accepted")
	}
	s = sampleScatter()
	s.Categories = nil
	if err := s.Validate(); err == nil {
		t.Fatal("no categories accepted")
	}
	s = sampleScatter()
	s.Categories[0].Marker = ' '
	if err := s.Validate(); err == nil {
		t.Fatal("blank marker accepted")
	}
	s = sampleScatter()
	s.Categories[0].Points = nil
	s.Categories[1].Points = nil
	s.Categories[2].Points = nil
	if err := s.Validate(); err == nil {
		t.Fatal("empty scatter accepted")
	}
	s = sampleScatter()
	s.Categories[0].Points[0].X = math.NaN()
	if err := s.Validate(); err == nil {
		t.Fatal("NaN point accepted")
	}
}

func TestScatterZSpread(t *testing.T) {
	s := sampleScatter()
	if got := s.ZSpread(); got != 90 {
		t.Fatalf("ZSpread = %v, want 90", got)
	}
}

func TestTable(t *testing.T) {
	out := Table(
		[]string{"protocol", "PDR"},
		[][]string{{"QLEC", "1.00"}, {"k-means", "0.85"}},
	)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "protocol") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[3], "k-means") || !strings.Contains(lines[3], "0.85") {
		t.Fatalf("row = %q", lines[3])
	}
	// Columns align: "PDR" starts at the same offset in every line.
	off := strings.Index(lines[0], "PDR")
	if strings.Index(lines[2], "1.00") != off {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	out := Table([]string{"a", "b"}, [][]string{{"only"}})
	if !strings.Contains(out, "only") {
		t.Fatalf("ragged row lost: %s", out)
	}
}
