package plot

import (
	"fmt"
	"math"
	"strings"

	"qlec/internal/geom"
)

// Scatter renders categories of 3-D points as an XY-projected character
// map — the renderer behind the paper's Figure 1 (network structure:
// members, cluster heads, base station).
type Scatter struct {
	Title string
	// Box bounds the projection.
	Box geom.AABB
	// Cols and Rows set the raster size.
	Cols, Rows int
	// Categories are drawn in order, later ones overwriting earlier
	// ones, so put the most important (heads, BS) last.
	Categories []ScatterCategory
}

// ScatterCategory is one point class.
type ScatterCategory struct {
	Name   string
	Marker byte
	Points []geom.Vec3
}

// Validate checks structural consistency.
func (s *Scatter) Validate() error {
	if s.Cols < 1 || s.Rows < 1 {
		return fmt.Errorf("plot: scatter raster %dx%d invalid", s.Cols, s.Rows)
	}
	if err := s.Box.Validate(); err != nil {
		return err
	}
	if len(s.Categories) == 0 {
		return fmt.Errorf("plot: scatter has no categories")
	}
	total := 0
	for _, c := range s.Categories {
		if c.Marker == 0 || c.Marker == ' ' {
			return fmt.Errorf("plot: category %q has no marker", c.Name)
		}
		for _, p := range c.Points {
			if !p.IsFinite() {
				return fmt.Errorf("plot: category %q contains a non-finite point", c.Name)
			}
		}
		total += len(c.Points)
	}
	if total == 0 {
		return fmt.Errorf("plot: scatter has no points")
	}
	return nil
}

// RenderASCII draws the projection with a legend.
func (s *Scatter) RenderASCII() (string, error) {
	if err := s.Validate(); err != nil {
		return "", err
	}
	grid := make([][]byte, s.Rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", s.Cols))
	}
	size := s.Box.Size()
	place := func(p geom.Vec3, marker byte) {
		cx := int(float64(s.Cols) * (p.X - s.Box.Min.X) / size.X)
		cy := int(float64(s.Rows) * (s.Box.Max.Y - p.Y) / size.Y)
		cx = clampIdx(cx, s.Cols)
		cy = clampIdx(cy, s.Rows)
		grid[cy][cx] = marker
	}
	for _, c := range s.Categories {
		for _, p := range c.Points {
			place(p, c.Marker)
		}
	}
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s\n", s.Title)
	}
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteString("|\n")
	}
	b.WriteString("legend:")
	for _, c := range s.Categories {
		fmt.Fprintf(&b, "  %c=%s(%d)", c.Marker, c.Name, len(c.Points))
	}
	b.WriteByte('\n')
	return b.String(), nil
}

// zSuppressed reports how much vertical spread the projection hides —
// printed alongside Figure 1 renders so readers remember the network is
// 3-D.
func (s *Scatter) ZSpread() float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range s.Categories {
		for _, p := range c.Points {
			lo = math.Min(lo, p.Z)
			hi = math.Max(hi, p.Z)
		}
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}
