package plot_test

import (
	"fmt"
	"log"
	"strings"

	"qlec/internal/plot"
)

// ExampleChart_WriteCSV shows the figure interchange format.
func ExampleChart_WriteCSV() {
	c := &plot.Chart{
		Title:  "PDR vs load",
		XLabel: "lambda",
		X:      []float64{8, 4},
		Series: []plot.Series{
			{Name: "QLEC", Y: []float64{1.0, 0.99}},
			{Name: "k-means", Y: []float64{1.0, 0.95}},
		},
	}
	var sb strings.Builder
	if err := c.WriteCSV(&sb); err != nil {
		log.Fatal(err)
	}
	fmt.Print(sb.String())
	// Output:
	// lambda,QLEC,k-means
	// 8,1,1
	// 4,0.99,0.95
}

// ExampleTable shows paper-style result tables.
func ExampleTable() {
	fmt.Print(plot.Table(
		[]string{"protocol", "PDR"},
		[][]string{{"QLEC", "1.000"}, {"FCM", "0.747"}},
	))
	// Output:
	// protocol  PDR
	// --------  -----
	// QLEC      1.000
	// FCM       0.747
}
