package experiment

import (
	"encoding/json"
	"strings"
	"testing"

	"qlec/internal/dataset"
	"qlec/internal/sim"
)

// paperConfigGoldenHash pins the byte-level canonical form of
// PaperConfig(). If this test fails you changed the serialization
// contract — field order, float formatting, or field set — which
// invalidates every content-addressed cache entry ever written by the
// job service. Do that only deliberately, and say so in the PR.
const paperConfigGoldenHash = "6ec39de88709f3df75218fc71889130f357381c932f15e5671058f97a5bb8813"

func TestHashGolden(t *testing.T) {
	got := PaperConfig().Hash()
	if got != paperConfigGoldenHash {
		b, _ := PaperConfig().CanonicalJSON()
		t.Fatalf("PaperConfig hash drifted:\n got  %s\n want %s\ncanonical JSON: %s",
			got, paperConfigGoldenHash, b)
	}
}

func TestHashDeterministic(t *testing.T) {
	a, b := PaperConfig(), PaperConfig()
	if a.Hash() != b.Hash() {
		t.Fatal("identical configs hash differently")
	}
	// Repeated hashing of the same value is stable.
	if a.Hash() != a.Hash() {
		t.Fatal("hash not idempotent")
	}
}

// TestHashIgnoresExecutionKnobs: hooks and scheduling knobs must not
// change the identity — results are independent of them by the
// determinism contract, so a cache hit across them is correct.
func TestHashIgnoresExecutionKnobs(t *testing.T) {
	base := PaperConfig()
	h := base.Hash()

	mod := base
	mod.Workers = 7
	mod.Progress = func(done, total int) {}
	mod.Observer = func(sim.RoundSnapshot) {}
	mod.Tracer = func(sim.TraceEvent) {}
	if mod.Hash() != h {
		t.Fatal("execution knobs leaked into the hash")
	}
}

// TestHashSensitivity: every result-determining field must perturb the
// hash.
func TestHashSensitivity(t *testing.T) {
	base := PaperConfig()
	h := base.Hash()
	mutations := map[string]func(*Config){
		"N":                 func(c *Config) { c.N++ },
		"Side":              func(c *Config) { c.Side += 1 },
		"InitialEnergy":     func(c *Config) { c.InitialEnergy += 1 },
		"Rounds":            func(c *Config) { c.Rounds++ },
		"K":                 func(c *Config) { c.K++ },
		"Lambdas":           func(c *Config) { c.Lambdas = []float64{8, 4, 2, 1, 0.5} },
		"LambdaOrder":       func(c *Config) { c.Lambdas = []float64{1, 2, 4, 8} },
		"Seeds":             func(c *Config) { c.Seeds = []uint64{1, 2, 3, 4, 5, 6} },
		"LifespanDeathLine": func(c *Config) { c.LifespanDeathLine += 0.5 },
		"LifespanMaxRounds": func(c *Config) { c.LifespanMaxRounds++ },
		"Sim.Seed":          func(c *Config) { c.Sim.Seed++ },
		"Sim.Compression":   func(c *Config) { c.Sim.Compression = 0.25 },
		"Model.Elec":        func(c *Config) { c.Model.Elec *= 2 },
		"FCMLevels":         func(c *Config) { c.FCMLevels++ },
		"AdvancedFraction":  func(c *Config) { c.AdvancedFraction = 0.1 },
		"AdvancedFactor":    func(c *Config) { c.AdvancedFactor = 1 },
		"Topology": func(c *Config) {
			c.Topology = &dataset.Dataset{}
		},
	}
	seen := map[string]string{"": h}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		got := cfg.Hash()
		for prev, ph := range seen {
			if got == ph {
				t.Errorf("mutating %s collides with %q", name, prev)
			}
		}
		seen[name] = got
	}
}

// TestHashFloatFormatting: float values that are numerically distinct
// but print identically under naive %v-style truncation must stay
// distinct, and values that are numerically equal must agree however
// they were computed.
func TestHashFloatFormatting(t *testing.T) {
	a := PaperConfig()
	b := PaperConfig()
	tenth, fifth := 0.1, 0.2 // runtime values, so the sum rounds twice
	a.Side = tenth + fifth   // 0.30000000000000004
	b.Side = 0.3
	if a.Hash() == b.Hash() {
		t.Fatal("0.1+0.2 and 0.3 should hash differently (shortest round-trip formatting)")
	}
	c := PaperConfig()
	c.Side = 0.15 * 2 // exactly 0.3
	if c.Hash() != b.Hash() {
		t.Fatal("numerically equal floats hash differently")
	}
	// Integral floats format without a decimal point, consistently.
	d := PaperConfig()
	d.Side = 200.0
	if d.Hash() != PaperConfig().Hash() {
		t.Fatal("200.0 vs 200 formatting unstable")
	}
}

// TestHashFieldOrderStability: the canonical form's key order is the
// mirror struct's declaration order, not anything runtime-dependent.
func TestHashFieldOrderStability(t *testing.T) {
	b, err := PaperConfig().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{`"n":`, `"side":`, `"initialEnergy":`, `"rounds":`, `"k":`,
		`"lambdas":`, `"seeds":`, `"lifespanDeathLine":`, `"lifespanMaxRounds":`,
		`"sim":`, `"model":`, `"fcmLevels":`, `"topology":`,
		`"advancedFraction":`, `"advancedFactor":`}
	s := string(b)
	last := -1
	for _, k := range keys {
		i := strings.Index(s, k)
		if i < 0 {
			t.Fatalf("canonical JSON missing key %s: %s", k, s)
		}
		if i < last {
			t.Fatalf("canonical JSON key %s out of order: %s", k, s)
		}
		last = i
	}
}

// TestConfigJSONRoundTrip: Config must survive encoding/json untouched
// in every result-determining field — the service's submission path is
// JSON all the way down, and a lossy round-trip would make the daemon
// simulate a different experiment than the client described.
func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := PaperConfig()
	cfg.Sim.ShadowSigma = 0.4
	cfg.AdvancedFraction = 0.1
	cfg.AdvancedFactor = 1.5
	cfg.Workers = 3
	// Hooks are json:"-": they must neither break marshaling nor
	// reappear after a round trip.
	cfg.Observer = func(sim.RoundSnapshot) {}
	cfg.Progress = func(done, total int) {}
	cfg.Tracer = func(sim.TraceEvent) {}

	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Config
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Observer != nil || back.Progress != nil || back.Tracer != nil {
		t.Fatal("hooks survived the round trip")
	}
	if back.Hash() != cfg.Hash() {
		t.Fatalf("round trip changed the hash:\n before %s\n after  %s", cfg.Hash(), back.Hash())
	}
	if back.Workers != 3 {
		t.Fatalf("Workers lost in round trip: %d", back.Workers)
	}
}
