package experiment

// The protocol tournament: every registered protocol, one shared
// engine, a scenario matrix (traffic λ × network size N × heterogeneity
// tiers), and a ranked report. This is what the plugin registry buys —
// a new Register call is automatically a tournament entrant, so
// ROADMAP item 4's "RL controller tournament" is a registration away.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"qlec/internal/audit"
	"qlec/internal/runner"
	"qlec/internal/sim"
	"qlec/internal/stats"
)

// TierScenario is one heterogeneity setting of the tournament matrix.
type TierScenario struct {
	// Name labels the scenario in reports ("homogeneous", "3-tier").
	Name string
	// Advanced/Super tier provisioning; see network.Deployment.
	AdvancedFraction float64
	AdvancedFactor   float64
	SuperFraction    float64
	SuperFactor      float64
}

// DefaultTiers returns the tournament's standard heterogeneity axis:
// the paper's homogeneous §5.1 deployment plus a three-tier T-DEEC
// setting (20% advanced at 2·E0, 10% super at 3·E0).
func DefaultTiers() []TierScenario {
	return []TierScenario{
		{Name: "homogeneous"},
		{Name: "3-tier", AdvancedFraction: 0.2, AdvancedFactor: 1, SuperFraction: 0.1, SuperFactor: 2},
	}
}

// TournamentConfig parameterizes RunTournament. Zero-valued axes fall
// back to defaults derived from Base and the registry.
type TournamentConfig struct {
	// Base supplies the deployment, engine and replication settings.
	Base Config
	// Protocols is the field; empty means every registered non-ablation
	// protocol (CompetitorProtocols). Aliases are canonicalized.
	Protocols []ProtocolID
	// Lambdas is the traffic axis; empty means Base.Lambdas.
	Lambdas []float64
	// Ns is the network-size axis; empty means {Base.N}. Sizes scale
	// the cube side at constant density and k proportionally, like
	// RunNSweep.
	Ns []int
	// Tiers is the heterogeneity axis; empty means DefaultTiers.
	Tiers []TierScenario
	// SkipEnergyBudget drops the audited per-protocol energy-budget leg
	// (one extra instrumented run per protocol).
	SkipEnergyBudget bool
}

// TournamentCell is one (protocol, tier, N, λ, seed) measurement.
type TournamentCell struct {
	Protocol       ProtocolID `json:"protocol"`
	Tier           string     `json:"tier"`
	N              int        `json:"n"`
	Lambda         float64    `json:"lambda"`
	Seed           uint64     `json:"seed"`
	PDR            float64    `json:"pdr"`
	EnergyPerNodeJ float64    `json:"energyPerNodeJ"`
	// FND/HND are the first-node-death and half-nodes-death rounds from
	// the endurance run, censored at its round cap.
	FND float64 `json:"fnd"`
	HND float64 `json:"hnd"`
}

// Standing is one protocol's aggregate over the whole matrix.
type Standing struct {
	Rank     int        `json:"rank"`
	Protocol ProtocolID `json:"protocol"`
	// Score is the mean of the protocol's per-measure ranks (PDR, energy
	// per node, FND, HND) — lower is better.
	Score          float64       `json:"score"`
	PDR            stats.Summary `json:"pdr"`
	EnergyPerNodeJ stats.Summary `json:"energyPerNodeJ"`
	FND            stats.Summary `json:"fnd"`
	HND            stats.Summary `json:"hnd"`
	// Budget is the audited energy breakdown from the flight-recorder
	// leg (nil with SkipEnergyBudget).
	Budget *audit.Report `json:"budget,omitempty"`
}

// TournamentResult is the full tournament output.
type TournamentResult struct {
	// Standings is ranked best-first.
	Standings []Standing       `json:"standings"`
	Cells     []TournamentCell `json:"cells"`
	Lambdas   []float64        `json:"lambdas"`
	Ns        []int            `json:"ns"`
	Tiers     []TierScenario   `json:"tiers"`
	Seeds     []uint64         `json:"seeds"`
}

// RunTournament runs the scenario matrix for every listed protocol and
// ranks the field. Each cell runs one fixed-round leg (PDR, energy) and
// one endurance leg (death line active, no stop-on-death, cancelled
// early once half the nodes die) for FND/HND. Cells fan out through
// runner.Map under Base.Workers/Progress; cancelling ctx aborts.
func RunTournament(ctx context.Context, tc TournamentConfig) (*TournamentResult, error) {
	protocols := tc.Protocols
	if len(protocols) == 0 {
		protocols = CompetitorProtocols()
	}
	canon := make([]ProtocolID, len(protocols))
	for i, id := range protocols {
		if !KnownProtocol(id) {
			return nil, fmt.Errorf("experiment: tournament: unknown protocol %q", id)
		}
		canon[i] = CanonicalProtocol(id)
	}
	protocols = canon
	lambdas := tc.Lambdas
	if len(lambdas) == 0 {
		lambdas = tc.Base.Lambdas
	}
	ns := tc.Ns
	if len(ns) == 0 {
		ns = []int{tc.Base.N}
	}
	tiers := tc.Tiers
	if len(tiers) == 0 {
		tiers = DefaultTiers()
	}
	base := tc.Base
	base.Lambdas = lambdas
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if base.Topology != nil {
		return nil, fmt.Errorf("experiment: tournament: custom topologies not supported (the tier axis owns the deployment)")
	}

	// Derive one validated config per (tier, N) scenario up front.
	type scenario struct {
		tier string
		cfg  Config
	}
	scenarios := make([]scenario, 0, len(tiers)*len(ns))
	for _, tier := range tiers {
		for _, n := range ns {
			cfg, err := base.scaledTo(n)
			if err != nil {
				return nil, fmt.Errorf("experiment: tournament: %w", err)
			}
			cfg.AdvancedFraction = tier.AdvancedFraction
			cfg.AdvancedFactor = tier.AdvancedFactor
			cfg.SuperFraction = tier.SuperFraction
			cfg.SuperFactor = tier.SuperFactor
			if err := cfg.Validate(); err != nil {
				return nil, fmt.Errorf("experiment: tournament tier %q N=%d: %w", tier.Name, n, err)
			}
			scenarios = append(scenarios, scenario{tier.Name, cfg})
		}
	}

	opts := runner.Options{Workers: tc.Base.Workers, Progress: tc.Base.Progress}
	type job struct {
		proto ProtocolID
		scen  int
		lam   float64
		seed  uint64
	}
	var jobs []job
	for _, id := range protocols {
		for si := range scenarios {
			for _, lam := range lambdas {
				for _, seed := range base.Seeds {
					jobs = append(jobs, job{id, si, lam, seed})
				}
			}
		}
	}
	cells, err := runner.Map(ctx, len(jobs), opts,
		func(ctx context.Context, i int) (TournamentCell, error) {
			j := jobs[i]
			sc := scenarios[j.scen]
			cell, err := sc.cfg.runTournamentCell(ctx, j.proto, j.lam, j.seed)
			if err != nil {
				return TournamentCell{}, fmt.Errorf("%s tier=%s N=%d λ=%v seed=%d: %w",
					j.proto, sc.tier, sc.cfg.N, j.lam, j.seed, err)
			}
			cell.Tier = sc.tier
			return cell, nil
		})
	if err != nil {
		return nil, err
	}

	res := &TournamentResult{
		Cells:   cells,
		Lambdas: lambdas,
		Ns:      ns,
		Seeds:   base.Seeds,
		Tiers:   tiers,
	}
	res.Standings = rankStandings(protocols, cells)

	if !tc.SkipEnergyBudget {
		// Flight-recorder leg: one audited fixed-round run per protocol
		// on the primary scenario, for the energy-budget columns.
		for i := range res.Standings {
			rec := audit.New(audit.Options{})
			acfg := scenarios[0].cfg
			acfg.Audit = rec
			if _, err := acfg.runOneValidated(ctx, res.Standings[i].Protocol, lambdas[0], base.Seeds[0], false); err != nil {
				return nil, fmt.Errorf("experiment: tournament audit leg %s: %w", res.Standings[i].Protocol, err)
			}
			rep := rec.Report()
			// The ranked table needs totals, not the per-node ledger.
			rep.Nodes = nil
			rep.Violations = nil
			rep.Anomalies = nil
			res.Standings[i].Budget = &rep
		}
	}
	return res, nil
}

// scaledTo derives the constant-density scaling of the configuration to
// n nodes (side grows with ∛, k keeps the nodes-per-cluster ratio),
// mirroring RunNSweep's axis.
func (c Config) scaledTo(n int) (Config, error) {
	if n <= 0 {
		return Config{}, fmt.Errorf("N=%d not positive", n)
	}
	out := c
	if n == c.N {
		return out, nil
	}
	out.N = n
	out.Side = c.Side * math.Cbrt(float64(n)/float64(c.N))
	k := int(math.Round(float64(c.K) * float64(n) / float64(c.N)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	out.K = k
	return out, nil
}

// runTournamentCell executes one cell's two legs.
func (c Config) runTournamentCell(ctx context.Context, id ProtocolID, lambda float64, seed uint64) (TournamentCell, error) {
	// Hooks are single-run, single-owner; cells run concurrently.
	c.Tracer = nil
	c.Observer = nil
	c.Audit = nil
	c.Progress = nil

	cell := TournamentCell{Protocol: id, N: c.N, Lambda: lambda, Seed: seed}
	res, err := c.runOneValidated(ctx, id, lambda, seed, false)
	if err != nil {
		return TournamentCell{}, err
	}
	cell.PDR = res.PDR()
	cell.EnergyPerNodeJ = float64(res.TotalEnergy) / float64(c.N)

	// Endurance leg: death line active but no stop-on-death, so the
	// alive trajectory continues past first death; an observer cancels
	// once half the field is gone (everything after that is decided).
	ec := c
	ec.enduranceNoStop = true
	ectx, cancel := context.WithCancel(ctx)
	defer cancel()
	half := c.N / 2
	ec.Observer = func(snap sim.RoundSnapshot) {
		if snap.Alive <= half {
			cancel()
		}
	}
	eres, err := ec.runOneValidated(ectx, id, lambda, seed, true)
	if err != nil && !(errors.Is(err, context.Canceled) && ctx.Err() == nil) {
		return TournamentCell{}, err
	}
	if ctx.Err() != nil {
		return TournamentCell{}, ctx.Err()
	}
	if eres == nil {
		return TournamentCell{}, fmt.Errorf("endurance run returned no result")
	}
	cell.FND = float64(eres.Lifespan)
	if eres.Lifespan == 0 { // survived the cap
		cell.FND = float64(eres.Rounds)
	}
	cell.HND = float64(eres.Rounds) // censored default
	for i, rs := range eres.PerRound {
		if rs.AliveAtEnd <= half {
			cell.HND = float64(i + 1)
			break
		}
	}
	return cell, nil
}

// rankStandings aggregates cells per protocol and ranks the field by
// mean per-measure rank. Deterministic: ties share the better rank, and
// the final sort tie-breaks on the input protocol order.
func rankStandings(protocols []ProtocolID, cells []TournamentCell) []Standing {
	byProto := make(map[ProtocolID]*struct {
		pdr, energy, fnd, hnd []float64
	}, len(protocols))
	for _, id := range protocols {
		byProto[id] = &struct{ pdr, energy, fnd, hnd []float64 }{}
	}
	for _, cell := range cells {
		agg := byProto[cell.Protocol]
		agg.pdr = append(agg.pdr, cell.PDR)
		agg.energy = append(agg.energy, cell.EnergyPerNodeJ)
		agg.fnd = append(agg.fnd, cell.FND)
		agg.hnd = append(agg.hnd, cell.HND)
	}
	standings := make([]Standing, len(protocols))
	for i, id := range protocols {
		agg := byProto[id]
		standings[i] = Standing{
			Protocol:       id,
			PDR:            stats.Summarize(agg.pdr),
			EnergyPerNodeJ: stats.Summarize(agg.energy),
			FND:            stats.Summarize(agg.fnd),
			HND:            stats.Summarize(agg.hnd),
		}
	}
	// Per-measure ranks: 1 = best; equal means share the better rank.
	rank := func(value func(Standing) float64, higherBetter bool) []float64 {
		ranks := make([]float64, len(standings))
		for i := range standings {
			r := 1
			for j := range standings {
				vi, vj := value(standings[i]), value(standings[j])
				if (higherBetter && vj > vi) || (!higherBetter && vj < vi) {
					r++
				}
			}
			ranks[i] = float64(r)
		}
		return ranks
	}
	pdrR := rank(func(s Standing) float64 { return s.PDR.Mean }, true)
	engR := rank(func(s Standing) float64 { return s.EnergyPerNodeJ.Mean }, false)
	fndR := rank(func(s Standing) float64 { return s.FND.Mean }, true)
	hndR := rank(func(s Standing) float64 { return s.HND.Mean }, true)
	for i := range standings {
		standings[i].Score = (pdrR[i] + engR[i] + fndR[i] + hndR[i]) / 4
	}
	order := make([]int, len(standings))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return standings[order[a]].Score < standings[order[b]].Score
	})
	out := make([]Standing, len(standings))
	for pos, idx := range order {
		out[pos] = standings[idx]
		out[pos].Rank = pos + 1
	}
	return out
}

// FormatTournament renders the ranked report as a fixed-width table.
func FormatTournament(res *TournamentResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "tournament: %d protocols × %d λ × %d sizes × %d tiers × %d seeds = %d cells\n",
		len(res.Standings), len(res.Lambdas), len(res.Ns), len(res.Tiers), len(res.Seeds), len(res.Cells))
	var tierNames []string
	for _, t := range res.Tiers {
		tierNames = append(tierNames, t.Name)
	}
	fmt.Fprintf(&b, "axes: λ=%v N=%v tiers=%v seeds=%v\n\n", res.Lambdas, res.Ns, tierNames, res.Seeds)
	hasBudget := false
	for _, s := range res.Standings {
		if s.Budget != nil {
			hasBudget = true
			break
		}
	}
	header := fmt.Sprintf("%-4s %-14s %7s %8s %10s %8s %8s", "rank", "protocol", "score", "PDR", "J/node", "FND", "HND")
	if hasBudget {
		header += fmt.Sprintf(" %10s %8s %6s", "auditJ", "txJ", "viol")
	}
	b.WriteString(header + "\n")
	b.WriteString(strings.Repeat("-", len(header)) + "\n")
	for _, s := range res.Standings {
		row := fmt.Sprintf("%-4d %-14s %7.2f %8.3f %10.3f %8.1f %8.1f",
			s.Rank, s.Protocol, s.Score, s.PDR.Mean, s.EnergyPerNodeJ.Mean, s.FND.Mean, s.HND.Mean)
		if hasBudget && s.Budget != nil {
			row += fmt.Sprintf(" %10.3f %8.3f %6d",
				float64(s.Budget.TotalJ), float64(s.Budget.TxJ), s.Budget.ViolationCount)
		}
		b.WriteString(row + "\n")
	}
	return b.String()
}
