package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"qlec/internal/dataset"
	"qlec/internal/sim"
)

// This file defines the canonical serialization contract behind
// Config.Hash — the content-addressed cache key of the job service
// (internal/service). Two Config values that describe the same
// simulation must produce byte-identical canonical JSON, and any change
// that can alter simulation output must change it.
//
// The contract is frozen by the explicit mirror structs below, NOT by
// Config's own field order: reordering Config's fields, or adding
// fields to Config without updating the mirrors, cannot silently change
// existing hashes (canonical_test.go pins a golden hash for
// PaperConfig). Floats serialize through encoding/json's shortest
// round-trip formatting (strconv 'g'), which is deterministic across
// platforms.
//
// Deliberately excluded: Tracer, Observer, Progress (observation hooks;
// no effect on results) and Workers (scheduling knob; results are
// schedule-independent by runner.Map's determinism contract).

// canonicalSim mirrors sim.Config field-for-field in frozen order.
type canonicalSim struct {
	Bits                  int     `json:"bits"`
	HelloBits             int     `json:"helloBits"`
	MeanInterArrival      float64 `json:"meanInterArrival"`
	RoundDuration         float64 `json:"roundDuration"`
	QueueCapacity         int     `json:"queueCapacity"`
	ServiceTime           float64 `json:"serviceTime"`
	BSQueueCapacity       int     `json:"bsQueueCapacity"`
	BSServiceTime         float64 `json:"bsServiceTime"`
	MaxRetries            int     `json:"maxRetries"`
	BatchRetries          int     `json:"batchRetries"`
	Compression           float64 `json:"compression"`
	DeathLine             float64 `json:"deathLine"`
	StopOnDeath           bool    `json:"stopOnDeath"`
	BitRate               float64 `json:"bitRate"`
	LinkPMax              float64 `json:"linkPMax"`
	LinkRef               float64 `json:"linkRef"`
	MobilitySpeedMin      float64 `json:"mobilitySpeedMin"`
	MobilitySpeedMax      float64 `json:"mobilitySpeedMax"`
	MobilityPause         float64 `json:"mobilityPause"`
	ContentionGamma       float64 `json:"contentionGamma"`
	ShadowSigma           float64 `json:"shadowSigma"`
	RetryBackoff          float64 `json:"retryBackoff"`
	DisableControlTraffic bool    `json:"disableControlTraffic"`
	Seed                  uint64  `json:"seed"`
}

func canonicalizeSim(c sim.Config) canonicalSim {
	return canonicalSim{
		Bits:                  c.Bits,
		HelloBits:             c.HelloBits,
		MeanInterArrival:      c.MeanInterArrival,
		RoundDuration:         c.RoundDuration,
		QueueCapacity:         c.QueueCapacity,
		ServiceTime:           c.ServiceTime,
		BSQueueCapacity:       c.BSQueueCapacity,
		BSServiceTime:         c.BSServiceTime,
		MaxRetries:            c.MaxRetries,
		BatchRetries:          c.BatchRetries,
		Compression:           c.Compression,
		DeathLine:             float64(c.DeathLine),
		StopOnDeath:           c.StopOnDeath,
		BitRate:               c.BitRate,
		LinkPMax:              c.LinkPMax,
		LinkRef:               c.LinkRef,
		MobilitySpeedMin:      c.MobilitySpeedMin,
		MobilitySpeedMax:      c.MobilitySpeedMax,
		MobilityPause:         c.MobilityPause,
		ContentionGamma:       c.ContentionGamma,
		ShadowSigma:           c.ShadowSigma,
		RetryBackoff:          c.RetryBackoff,
		DisableControlTraffic: c.DisableControlTraffic,
		Seed:                  c.Seed,
	}
}

// canonicalModel mirrors energy.Model.
type canonicalModel struct {
	Elec        float64 `json:"elec"`
	FreeSpace   float64 `json:"freeSpace"`
	MultiPath   float64 `json:"multiPath"`
	Aggregation float64 `json:"aggregation"`
}

// canonicalTopology mirrors dataset.Dataset with positions flattened to
// coordinate triples.
type canonicalTopology struct {
	Positions [][3]float64 `json:"positions"`
	Energies  []float64    `json:"energies"`
	BoxMin    [3]float64   `json:"boxMin"`
	BoxMax    [3]float64   `json:"boxMax"`
	BS        [3]float64   `json:"bs"`
}

func canonicalizeTopology(d *dataset.Dataset) *canonicalTopology {
	if d == nil {
		return nil
	}
	t := &canonicalTopology{
		Positions: make([][3]float64, len(d.Positions)),
		Energies:  make([]float64, len(d.Energies)),
		BoxMin:    [3]float64{d.Box.Min.X, d.Box.Min.Y, d.Box.Min.Z},
		BoxMax:    [3]float64{d.Box.Max.X, d.Box.Max.Y, d.Box.Max.Z},
		BS:        [3]float64{d.BS.X, d.BS.Y, d.BS.Z},
	}
	for i, p := range d.Positions {
		t.Positions[i] = [3]float64{p.X, p.Y, p.Z}
	}
	for i, e := range d.Energies {
		t.Energies[i] = float64(e)
	}
	return t
}

// canonicalConfig mirrors the result-determining fields of Config.
type canonicalConfig struct {
	N                 int                `json:"n"`
	Side              float64            `json:"side"`
	InitialEnergy     float64            `json:"initialEnergy"`
	Rounds            int                `json:"rounds"`
	K                 int                `json:"k"`
	Lambdas           []float64          `json:"lambdas"`
	Seeds             []uint64           `json:"seeds"`
	LifespanDeathLine float64            `json:"lifespanDeathLine"`
	LifespanMaxRounds int                `json:"lifespanMaxRounds"`
	Sim               canonicalSim       `json:"sim"`
	Model             canonicalModel     `json:"model"`
	FCMLevels         int                `json:"fcmLevels"`
	Topology          *canonicalTopology `json:"topology"`
	AdvancedFraction  float64            `json:"advancedFraction"`
	AdvancedFactor    float64            `json:"advancedFactor"`
	// Appended with omitempty so configurations predating the three-tier
	// deployment and protocol tunables keep their existing hashes (the
	// golden-hash test pins PaperConfig's digest). encoding/json emits
	// map keys sorted, so ProtocolParams serializes deterministically.
	SuperFraction  float64            `json:"superFraction,omitempty"`
	SuperFactor    float64            `json:"superFactor,omitempty"`
	ProtocolParams map[string]float64 `json:"protocolParams,omitempty"`
}

// CanonicalJSON serializes the result-determining fields of the
// configuration in a frozen field order with deterministic float
// formatting. It fails only on non-finite floats (NaN/±Inf), which no
// valid configuration contains.
func (c Config) CanonicalJSON() ([]byte, error) {
	cc := canonicalConfig{
		N:                 c.N,
		Side:              c.Side,
		InitialEnergy:     float64(c.InitialEnergy),
		Rounds:            c.Rounds,
		K:                 c.K,
		Lambdas:           c.Lambdas,
		Seeds:             c.Seeds,
		LifespanDeathLine: float64(c.LifespanDeathLine),
		LifespanMaxRounds: c.LifespanMaxRounds,
		Sim:               canonicalizeSim(c.Sim),
		Model: canonicalModel{
			Elec:        float64(c.Model.Elec),
			FreeSpace:   float64(c.Model.FreeSpace),
			MultiPath:   float64(c.Model.MultiPath),
			Aggregation: float64(c.Model.Aggregation),
		},
		FCMLevels:        c.FCMLevels,
		Topology:         canonicalizeTopology(c.Topology),
		AdvancedFraction: c.AdvancedFraction,
		AdvancedFactor:   c.AdvancedFactor,
		SuperFraction:    c.SuperFraction,
		SuperFactor:      c.SuperFactor,
		ProtocolParams:   c.ProtocolParams,
	}
	if len(cc.ProtocolParams) == 0 {
		// Treat an allocated-but-empty map like nil so both spell the
		// same configuration.
		cc.ProtocolParams = nil
	}
	if cc.Lambdas == nil {
		cc.Lambdas = []float64{}
	}
	if cc.Seeds == nil {
		cc.Seeds = []uint64{}
	}
	b, err := json.Marshal(cc)
	if err != nil {
		return nil, fmt.Errorf("experiment: canonicalize config: %w", err)
	}
	return b, nil
}

// Hash returns the SHA-256 hex digest of CanonicalJSON — the stable
// identity of the configuration, used as the content-addressed cache
// key by the job service. It panics on a configuration containing a
// non-finite float (NaN/±Inf), which no meaningful configuration does.
func (c Config) Hash() string {
	b, err := c.CanonicalJSON()
	if err != nil {
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
