package experiment

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// tinyTournament keeps the matrix small enough for unit-test budgets.
func tinyTournament() TournamentConfig {
	c := PaperConfig()
	c.N = 30
	c.K = 3
	c.Rounds = 3
	c.Seeds = []uint64{1}
	c.LifespanMaxRounds = 120
	return TournamentConfig{
		Base:      c,
		Protocols: []ProtocolID{QLEC, KMeans, TDEEC},
		Lambdas:   []float64{4},
		Ns:        []int{30},
		Tiers:     []TierScenario{{Name: "homogeneous"}},
	}
}

func TestTournamentRanksEveryProtocol(t *testing.T) {
	res, err := RunTournament(context.Background(), tinyTournament())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Standings) != 3 {
		t.Fatalf("standings has %d rows, want 3", len(res.Standings))
	}
	seen := map[ProtocolID]bool{}
	for i, s := range res.Standings {
		if s.Rank != i+1 {
			t.Errorf("standing %d has rank %d", i, s.Rank)
		}
		if s.Score <= 0 {
			t.Errorf("%s score %v not positive", s.Protocol, s.Score)
		}
		if s.PDR.Mean < 0 || s.PDR.Mean > 1 {
			t.Errorf("%s PDR mean %v outside [0,1]", s.Protocol, s.PDR.Mean)
		}
		if s.FND.Mean <= 0 || s.HND.Mean <= 0 {
			t.Errorf("%s FND/HND %v/%v not positive", s.Protocol, s.FND.Mean, s.HND.Mean)
		}
		if s.HND.Mean < s.FND.Mean {
			t.Errorf("%s HND %v before FND %v", s.Protocol, s.HND.Mean, s.FND.Mean)
		}
		if s.Budget == nil {
			t.Errorf("%s has no energy budget", s.Protocol)
		} else if s.Budget.TotalJ <= 0 {
			t.Errorf("%s audited energy %v not positive", s.Protocol, s.Budget.TotalJ)
		}
		seen[s.Protocol] = true
	}
	if len(seen) != 3 {
		t.Fatalf("standings missing protocols: %v", seen)
	}
	if len(res.Cells) != 3 { // 3 protocols × 1 λ × 1 N × 1 tier × 1 seed
		t.Fatalf("cells has %d rows, want 3", len(res.Cells))
	}
}

func TestTournamentDeterministic(t *testing.T) {
	tc := tinyTournament()
	tc.SkipEnergyBudget = true
	a, err := RunTournament(context.Background(), tc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTournament(context.Background(), tc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical tournaments produced different results")
	}
	// And identical under the serial reference schedule.
	tc.Base.Workers = 1
	c, err := RunTournament(context.Background(), tc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatal("parallel tournament differs from serial reference")
	}
}

func TestTournamentDefaultsToCompetitorField(t *testing.T) {
	tc := tinyTournament()
	tc.Protocols = nil
	tc.SkipEnergyBudget = true
	tc.Base.LifespanMaxRounds = 40
	res, err := RunTournament(context.Background(), tc)
	if err != nil {
		t.Fatal(err)
	}
	want := CompetitorProtocols()
	if len(res.Standings) != len(want) {
		t.Fatalf("standings has %d rows, want %d", len(res.Standings), len(want))
	}
	for _, s := range res.Standings {
		for _, ab := range []ProtocolID{DEECNearest, QLECNoFloor, QLECNoRR} {
			if s.Protocol == ab {
				t.Errorf("ablation %s in default field", ab)
			}
		}
	}
}

func TestTournamentUnknownProtocol(t *testing.T) {
	tc := tinyTournament()
	tc.Protocols = []ProtocolID{"nope"}
	if _, err := RunTournament(context.Background(), tc); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestTournamentCanonicalizesAliases(t *testing.T) {
	tc := tinyTournament()
	tc.Protocols = []ProtocolID{"kmeans"}
	tc.SkipEnergyBudget = true
	res, err := RunTournament(context.Background(), tc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Standings[0].Protocol != KMeans {
		t.Fatalf("alias not canonicalized: %q", res.Standings[0].Protocol)
	}
}

func TestFormatTournament(t *testing.T) {
	res, err := RunTournament(context.Background(), tinyTournament())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTournament(res)
	for _, want := range []string{"rank", "protocol", "J/node", "FND", "HND", "auditJ"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	for _, s := range res.Standings {
		if !strings.Contains(out, string(s.Protocol)) {
			t.Errorf("report missing row for %s", s.Protocol)
		}
	}
}
