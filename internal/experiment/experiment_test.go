package experiment

import (
	"context"
	"strings"
	"testing"

	"qlec/internal/dataset"
	"qlec/internal/metrics"
	"qlec/internal/sim"
)

// quickConfig shrinks the paper config for fast tests.
func quickConfig() Config {
	c := PaperConfig()
	c.Rounds = 4
	c.Lambdas = []float64{6, 2}
	c.Seeds = []uint64{1, 2}
	c.LifespanDeathLine = 4.96
	c.LifespanMaxRounds = 60
	return c
}

func TestPaperConfigValid(t *testing.T) {
	if err := PaperConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	// Table 2 pins.
	c := PaperConfig()
	if c.N != 100 || c.Side != 200 || c.InitialEnergy != 5 || c.Rounds != 20 || c.K != 5 {
		t.Fatalf("paper config drifted: %+v", c)
	}
	if c.Sim.Compression != 0.5 {
		t.Fatalf("compression %v, Table 2 says 50%%", c.Sim.Compression)
	}
	if len(c.Lambdas) != 4 {
		t.Fatalf("lambda sweep has %d points, paper uses four conditions", len(c.Lambdas))
	}
}

func TestConfigValidation(t *testing.T) {
	for _, mut := range []func(*Config){
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.Rounds = 0 },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.K = c.N + 1 },
		func(c *Config) { c.Lambdas = nil },
		func(c *Config) { c.Lambdas = []float64{0} },
		func(c *Config) { c.Seeds = nil },
		func(c *Config) { c.LifespanMaxRounds = 0 },
		func(c *Config) { c.FCMLevels = 0 },
		func(c *Config) { c.Sim = sim.Config{} },
	} {
		c := PaperConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("invalid config accepted: %+v", c)
		}
	}
}

func TestRunOneEveryProtocol(t *testing.T) {
	c := quickConfig()
	for _, id := range []ProtocolID{QLEC, FCM, KMeans, LEACH, DEECNearest, QLECNoFloor, QLECNoRR} {
		res, err := c.RunOne(context.Background(), id, 4, 1, false)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.Generated == 0 {
			t.Fatalf("%s: no traffic", id)
		}
	}
}

func TestRunOneUnknownProtocol(t *testing.T) {
	c := quickConfig()
	if _, err := c.RunOne(context.Background(), "nope", 4, 1, false); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunOneDeterministic(t *testing.T) {
	c := quickConfig()
	a, err := c.RunOne(context.Background(), QLEC, 4, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.RunOne(context.Background(), QLEC, 4, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.PDR() != b.PDR() || a.TotalEnergy != b.TotalEnergy || a.Generated != b.Generated {
		t.Fatal("identical RunOne calls differ")
	}
}

func TestRunOneLifespanStops(t *testing.T) {
	c := quickConfig()
	res, err := c.RunOne(context.Background(), KMeans, 4, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lifespan == 0 {
		t.Fatalf("k-means survived %d rounds at death line %v; expected early death",
			res.Rounds, c.LifespanDeathLine)
	}
	if res.Rounds != res.Lifespan {
		t.Fatal("lifespan run did not stop at death")
	}
}

func TestRunFig3ShapeAndCharts(t *testing.T) {
	c := quickConfig()
	results, err := c.RunFig3(context.Background(), []ProtocolID{QLEC, KMeans})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	for _, sr := range results {
		if len(sr.Points) != len(c.Lambdas) {
			t.Fatalf("%s: %d points", sr.Protocol, len(sr.Points))
		}
		for _, p := range sr.Points {
			if p.PDR.N != len(c.Seeds) {
				t.Fatalf("%s λ=%v: %d replicates", sr.Protocol, p.Lambda, p.PDR.N)
			}
			if p.PDR.Mean < 0 || p.PDR.Mean > 1 {
				t.Fatalf("PDR mean %v out of range", p.PDR.Mean)
			}
			if p.EnergyJ.Mean <= 0 {
				t.Fatalf("energy mean %v", p.EnergyJ.Mean)
			}
			if p.Lifespan.Mean <= 0 {
				t.Fatalf("lifespan mean %v", p.Lifespan.Mean)
			}
		}
	}
	a, err := Fig3aChart(results)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig3bChart(results)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := Fig3cChart(results)
	if err != nil {
		t.Fatal(err)
	}
	l, err := LatencyChart(results)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range []interface{ Validate() error }{a, b, cc, l} {
		if err := ch.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// X axis must be ascending offered load.
	for i := 1; i < len(a.X); i++ {
		if a.X[i] <= a.X[i-1] {
			t.Fatalf("chart x not ascending: %v", a.X)
		}
	}
	table := Fig3Table(results)
	for _, want := range []string{"QLEC", "k-means", "PDR", "lifespan"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

// DEEC's home turf: on a two-tier heterogeneous network, QLEC's
// energy-weighted head selection must outlive energy-blind LEACH.
func TestHeterogeneousQLECOutlivesLEACH(t *testing.T) {
	c := quickConfig()
	c.AdvancedFraction = 0.2
	c.AdvancedFactor = 3
	c.LifespanDeathLine = 4.5
	c.LifespanMaxRounds = 400
	life := func(id ProtocolID) float64 {
		total := 0.0
		for _, seed := range []uint64{1, 2, 3} {
			res, err := c.RunOne(context.Background(), id, 4, seed, true)
			if err != nil {
				t.Fatal(err)
			}
			ls := res.Lifespan
			if ls == 0 {
				ls = res.Rounds
			}
			total += float64(ls)
		}
		return total / 3
	}
	qlec := life(QLEC)
	leach := life(LEACH)
	if qlec <= leach {
		t.Fatalf("heterogeneous lifespan: QLEC %v not above LEACH %v", qlec, leach)
	}
}

// EXPERIMENTS.md's Fig. 3(b) analysis, pinned mechanically: QLEC's
// energy premium over k-means is *transmit* energy (energy-selected,
// position-blind heads mean longer member hops), while the fusion and
// control categories stay comparable.
func TestEnergyGapOverKMeansIsTransmit(t *testing.T) {
	c := quickConfig()
	c.Rounds = 8
	run := func(id ProtocolID) *metrics.Result {
		res, err := c.RunOne(context.Background(), id, 4, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	qlec := run(QLEC)
	km := run(KMeans)
	if qlec.Energy.Tx <= km.Energy.Tx {
		t.Fatalf("QLEC tx %v not above k-means tx %v", qlec.Energy.Tx, km.Energy.Tx)
	}
	// Fusion tracks delivered traffic; within 2x of each other.
	ratio := float64(qlec.Energy.Fusion) / float64(km.Energy.Fusion)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("fusion energies diverge unexpectedly: ratio %v", ratio)
	}
}

// The parallel sweep must return exactly what serial per-cell runs
// return — scheduling cannot leak into results.
func TestRunFig3ParallelMatchesSerial(t *testing.T) {
	c := quickConfig()
	sweep, err := c.RunFig3(context.Background(), []ProtocolID{QLEC, KMeans})
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range sweep {
		for pi, p := range sr.Points {
			// Recompute one cell serially and compare.
			res, err := c.RunOne(context.Background(), sr.Protocol, p.Lambda, c.Seeds[0], false)
			if err != nil {
				t.Fatal(err)
			}
			_ = pi
			found := false
			// The per-seed values are summarized; check the serial value
			// lies within [Min, Max] of the summary (it must be one of
			// the replicates).
			if res.PDR() >= p.PDR.Min-1e-12 && res.PDR() <= p.PDR.Max+1e-12 {
				found = true
			}
			if !found {
				t.Fatalf("%s λ=%v: serial PDR %v outside parallel summary [%v, %v]",
					sr.Protocol, p.Lambda, res.PDR(), p.PDR.Min, p.PDR.Max)
			}
		}
	}
	// Full determinism: two parallel sweeps agree exactly.
	again, err := c.RunFig3(context.Background(), []ProtocolID{QLEC, KMeans})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sweep {
		for j := range sweep[i].Points {
			if sweep[i].Points[j].PDR != again[i].Points[j].PDR ||
				sweep[i].Points[j].EnergyJ != again[i].Points[j].EnergyJ ||
				sweep[i].Points[j].Lifespan != again[i].Points[j].Lifespan {
				t.Fatalf("parallel sweep not deterministic at [%d][%d]", i, j)
			}
		}
	}
}

func TestRunKSweep(t *testing.T) {
	c := quickConfig()
	points, err := c.RunKSweep(context.Background(), QLEC, []int{3, 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].K != 3 || points[1].K != 8 {
		t.Fatalf("points = %+v", points)
	}
	for _, p := range points {
		if p.PDR.N != len(c.Seeds) || p.Lifespan.Mean <= 0 {
			t.Fatalf("bad point %+v", p)
		}
	}
	ch, err := KSweepChart(points, QLEC, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Validate(); err != nil {
		t.Fatal(err)
	}
	table := KSweepTable(points)
	if !strings.Contains(table, "lifespan") {
		t.Fatalf("table missing lifespan:\n%s", table)
	}
}

func TestRunNSweep(t *testing.T) {
	c := quickConfig()
	points, err := c.RunNSweep(context.Background(), QLEC, []int{50, 200}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points", len(points))
	}
	if points[0].N != 50 || points[1].N != 200 {
		t.Fatalf("N order: %+v", points)
	}
	// k scales with N at the base ratio (5 per 100 nodes).
	if points[0].K != 3 || points[1].K != 10 {
		t.Fatalf("k scaling: %d, %d", points[0].K, points[1].K)
	}
	for _, p := range points {
		if p.PDR.N != len(c.Seeds) || p.EnergyPerNode.Mean <= 0 {
			t.Fatalf("bad point %+v", p)
		}
	}
	table := NSweepTable(points)
	if !strings.Contains(table, "J/node") {
		t.Fatalf("table:\n%s", table)
	}
}

func TestRunNSweepErrors(t *testing.T) {
	c := quickConfig()
	if _, err := c.RunNSweep(context.Background(), QLEC, nil, 4); err == nil {
		t.Fatal("empty ns accepted")
	}
	if _, err := c.RunNSweep(context.Background(), QLEC, []int{0}, 4); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestRunKSweepErrors(t *testing.T) {
	c := quickConfig()
	if _, err := c.RunKSweep(context.Background(), QLEC, nil, 3); err == nil {
		t.Fatal("empty ks accepted")
	}
	if _, err := c.RunKSweep(context.Background(), QLEC, []int{0}, 3); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KSweepChart(nil, QLEC, 3); err == nil {
		t.Fatal("empty chart accepted")
	}
}

func TestRunFig4Small(t *testing.T) {
	cfg := PaperFig4Config()
	cfg.Synth.N = 300
	cfg.K = 20
	cfg.Rounds = 3
	res, err := RunFig4(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Run.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.K != 20 {
		t.Fatalf("K = %d", res.K)
	}
	if len(res.Field.Points) != 300 {
		t.Fatalf("field has %d points", len(res.Field.Points))
	}
	if res.BinnedCV < 0 || res.Gini < 0 || res.Gini > 1 {
		t.Fatalf("stats out of range: CV=%v Gini=%v", res.BinnedCV, res.Gini)
	}
	summary := Fig4Summary(res)
	if !strings.Contains(summary, "Moran") {
		t.Fatalf("summary missing Moran:\n%s", summary)
	}
	hm := Fig4Heatmap(res, 40, 16)
	if _, err := hm.RenderASCII(); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig4ExternalDataset(t *testing.T) {
	ds, err := dataset.Synthesize(dataset.SynthConfig{
		N: 150, Side: 500, MaxHeight: 60, MeanEnergy: 5, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := PaperFig4Config()
	cfg.Data = ds
	cfg.K = 12
	cfg.Rounds = 2
	res, err := RunFig4(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Field.Points) != 150 {
		t.Fatalf("external dataset run has %d points", len(res.Field.Points))
	}
	// Invalid external data must be rejected.
	bad := &dataset.Dataset{}
	cfg.Data = bad
	if _, err := RunFig4(context.Background(), cfg); err == nil {
		t.Fatal("invalid external dataset accepted")
	}
}

func TestRunFig4AutoK(t *testing.T) {
	cfg := PaperFig4Config()
	cfg.Synth.N = 200
	cfg.K = 0 // derive from Theorem 1
	cfg.Rounds = 2
	res, err := RunFig4(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 1 || res.K > 200 {
		t.Fatalf("auto K = %d", res.K)
	}
}
