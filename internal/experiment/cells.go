package experiment

import (
	"context"
	"fmt"
	"math"

	"qlec/internal/stats"
)

// CellSpec names one independently executable cell of a sweep: a fully
// derived configuration (per-k, per-N scaling already applied, hooks
// stripped) plus the (protocol, λ, seed) coordinates. A sweep is a flat
// ordered list of cells plus a deterministic assembly step — RunFig3,
// RunKSweep and RunNSweep are exactly "build specs → run each →
// assemble", so any executor that runs the same specs and feeds the
// outcomes to the same Assemble* function reproduces the sweep result
// byte-for-byte, regardless of where or in what order the cells ran.
// This is the contract the qlecd fleet path relies on (DESIGN.md §14).
type CellSpec struct {
	Protocol ProtocolID
	Lambda   float64
	Seed     uint64
	Config   Config
}

// Run executes the cell's replication pair. The embedded configuration
// was validated when the spec was built; re-validate defensively when
// the spec crossed a process boundary (the service layer does).
func (s CellSpec) Run(ctx context.Context) (CellOutcome, error) {
	return s.Config.runCell(ctx, s.Protocol, s.Lambda, s.Seed)
}

// stripHooks clears the single-run hooks exactly like sweepOptions does
// for the in-process sweep path: concurrent cells must not interleave
// tracer/observer callbacks, and hooks never serialize.
func (c Config) stripHooks() Config {
	c.Tracer = nil
	c.Observer = nil
	c.Audit = nil
	c.Progress = nil
	return c
}

// Fig3Cells derives the ordered cell list of RunFig3: protocol-major,
// then λ, then seed — the index order AssembleFig3 consumes.
func (c Config) Fig3Cells(ids []ProtocolID) ([]CellSpec, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	base := c.stripHooks()
	specs := make([]CellSpec, 0, len(ids)*len(c.Lambdas)*len(c.Seeds))
	for _, id := range ids {
		for _, lambda := range c.Lambdas {
			for _, seed := range c.Seeds {
				specs = append(specs, CellSpec{Protocol: id, Lambda: lambda, Seed: seed, Config: base})
			}
		}
	}
	return specs, nil
}

// AssembleFig3 folds cell outcomes (in Fig3Cells order) into the
// per-protocol λ series of RunFig3. The aggregation order is fixed, so
// identical outcomes produce bit-identical summaries.
func AssembleFig3(ids []ProtocolID, lambdas []float64, seeds []uint64, cells []CellOutcome) ([]SweepResult, error) {
	if want := len(ids) * len(lambdas) * len(seeds); len(cells) != want {
		return nil, fmt.Errorf("experiment: fig3 assembly wants %d cells, got %d", want, len(cells))
	}
	var out []SweepResult
	for pi, id := range ids {
		sr := SweepResult{Protocol: id}
		for li, lambda := range lambdas {
			var pdrs, energies, lifespans, latencies, accesses []float64
			for si := range seeds {
				cell := cells[(pi*len(lambdas)+li)*len(seeds)+si]
				pdrs = append(pdrs, cell.PDR)
				energies = append(energies, cell.EnergyJ)
				latencies = append(latencies, cell.Latency)
				accesses = append(accesses, cell.Access)
				lifespans = append(lifespans, cell.Lifespan)
			}
			sr.Points = append(sr.Points, SweepPoint{
				Lambda:   lambda,
				PDR:      stats.Summarize(pdrs),
				EnergyJ:  stats.Summarize(energies),
				Lifespan: stats.Summarize(lifespans),
				Latency:  stats.Summarize(latencies),
				Access:   stats.Summarize(accesses),
			})
		}
		out = append(out, sr)
	}
	return out, nil
}

// KSweepCells derives the ordered cell list of RunKSweep: k-major, then
// seed, each cell carrying the per-k configuration (validated once up
// front, so an invalid k is reported immediately).
func (c Config) KSweepCells(id ProtocolID, ks []int, lambda float64) ([]CellSpec, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("experiment: no k values")
	}
	base := c.stripHooks()
	specs := make([]CellSpec, 0, len(ks)*len(c.Seeds))
	for _, k := range ks {
		kcfg := base
		kcfg.K = k
		if err := kcfg.Validate(); err != nil {
			return nil, fmt.Errorf("experiment: k=%d: %w", k, err)
		}
		for _, seed := range c.Seeds {
			specs = append(specs, CellSpec{Protocol: id, Lambda: lambda, Seed: seed, Config: kcfg})
		}
	}
	return specs, nil
}

// AssembleKSweep folds cell outcomes (in KSweepCells order) into
// RunKSweep's per-k points.
func AssembleKSweep(ks []int, seeds []uint64, cells []CellOutcome) ([]KSweepPoint, error) {
	if want := len(ks) * len(seeds); len(cells) != want {
		return nil, fmt.Errorf("experiment: ksweep assembly wants %d cells, got %d", want, len(cells))
	}
	var out []KSweepPoint
	for ki, k := range ks {
		var pdrs, energies, lifespans []float64
		for si := range seeds {
			cell := cells[ki*len(seeds)+si]
			pdrs = append(pdrs, cell.PDR)
			energies = append(energies, cell.EnergyJ)
			lifespans = append(lifespans, cell.Lifespan)
		}
		out = append(out, KSweepPoint{
			K:        k,
			PDR:      stats.Summarize(pdrs),
			EnergyJ:  stats.Summarize(energies),
			Lifespan: stats.Summarize(lifespans),
		})
	}
	return out, nil
}

// NSweepCells derives the ordered cell list of RunNSweep: N-major, then
// seed. Each cell's configuration carries the constant-density scaling
// (Side ∝ ∛N) and the proportionally scaled k.
func (c Config) NSweepCells(id ProtocolID, ns []int, lambda float64) ([]CellSpec, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(ns) == 0 {
		return nil, fmt.Errorf("experiment: no N values")
	}
	base := c.stripHooks()
	baseDensity := float64(c.N)
	baseK := float64(c.K)
	specs := make([]CellSpec, 0, len(ns)*len(c.Seeds))
	for _, n := range ns {
		if n <= 0 {
			return nil, fmt.Errorf("experiment: N=%d not positive", n)
		}
		ncfg := base
		ncfg.N = n
		ncfg.Side = c.Side * math.Cbrt(float64(n)/baseDensity)
		k := int(math.Round(baseK * float64(n) / baseDensity))
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		ncfg.K = k
		if err := ncfg.Validate(); err != nil {
			return nil, fmt.Errorf("experiment: N=%d: %w", n, err)
		}
		for _, seed := range c.Seeds {
			specs = append(specs, CellSpec{Protocol: id, Lambda: lambda, Seed: seed, Config: ncfg})
		}
	}
	return specs, nil
}

// AssembleNSweep folds cell outcomes (in NSweepCells order) into
// RunNSweep's per-N points; specs supplies the derived per-N k values.
func AssembleNSweep(ns []int, seeds []uint64, specs []CellSpec, cells []CellOutcome) ([]NSweepPoint, error) {
	want := len(ns) * len(seeds)
	if len(cells) != want || len(specs) != want {
		return nil, fmt.Errorf("experiment: nsweep assembly wants %d specs+cells, got %d specs, %d cells",
			want, len(specs), len(cells))
	}
	var out []NSweepPoint
	for ni, n := range ns {
		var pdrs, perNode, lifespans []float64
		for si := range seeds {
			cell := cells[ni*len(seeds)+si]
			pdrs = append(pdrs, cell.PDR)
			perNode = append(perNode, cell.EnergyJ/float64(n))
			lifespans = append(lifespans, cell.Lifespan)
		}
		out = append(out, NSweepPoint{
			N: n, K: specs[ni*len(seeds)].Config.K,
			PDR:           stats.Summarize(pdrs),
			EnergyPerNode: stats.Summarize(perNode),
			Lifespan:      stats.Summarize(lifespans),
		})
	}
	return out, nil
}
