package experiment

// Cross-protocol conformance: every protocol the harness can build must
// honour the cluster.Protocol contract over many rounds, on both fresh
// and partially-drained networks.

import (
	"testing"

	"qlec/internal/cluster"
	"qlec/internal/network"
	"qlec/internal/rng"
)

func TestAllProtocolsConform(t *testing.T) {
	all := []ProtocolID{
		QLEC, FCM, KMeans, LEACH, DEECNearest, QLECNoFloor, QLECNoRR, DEECPlain, Direct,
	}
	c := PaperConfig()
	for _, id := range all {
		id := id
		t.Run(string(id), func(t *testing.T) {
			w, err := network.Deploy(network.Deployment{
				N: 60, Side: 200, InitialEnergy: 5,
			}, rng.New(77))
			if err != nil {
				t.Fatal(err)
			}
			// Drain a third of the nodes so aliveness filtering is
			// exercised.
			for i := 0; i < 20; i++ {
				w.Nodes[i].Battery.Draw(5)
			}
			proto, err := c.BuildProtocol(id, w, 30, 0, 77)
			if err != nil {
				t.Fatal(err)
			}
			report := cluster.CheckConformance(w, proto, 30, 0)
			if !report.Ok() {
				for _, v := range report.Violations {
					t.Error(v)
				}
			}
		})
	}
}
