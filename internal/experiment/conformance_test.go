package experiment

// Cross-protocol conformance: every protocol registered in the plugin
// registry must honour the cluster.Protocol contract over many rounds,
// on both fresh and partially-drained networks. The table derives from
// protocol.All(), so a new registration cannot ship without passing the
// engine-contract checks.

import (
	"testing"

	"qlec/internal/cluster"
	"qlec/internal/network"
	"qlec/internal/rng"
)

func TestAllProtocolsConform(t *testing.T) {
	all := AllProtocols()
	if len(all) < 9 {
		t.Fatalf("registry lists only %d protocols: %v", len(all), all)
	}
	c := PaperConfig()
	for _, id := range all {
		id := id
		t.Run(string(id), func(t *testing.T) {
			w, err := network.Deploy(network.Deployment{
				N: 60, Side: 200, InitialEnergy: 5,
			}, rng.New(77))
			if err != nil {
				t.Fatal(err)
			}
			// Drain a third of the nodes so aliveness filtering is
			// exercised.
			for i := 0; i < 20; i++ {
				w.Nodes[i].Battery.Draw(5)
			}
			proto, err := c.BuildProtocol(id, w, 30, 0, 77)
			if err != nil {
				t.Fatal(err)
			}
			report := cluster.CheckConformance(w, proto, 30, 0)
			if !report.Ok() {
				for _, v := range report.Violations {
					t.Error(v)
				}
			}
		})
	}
}

// Heterogeneous conformance: the same contract holds on a three-tier
// deployment (T-DEEC's home turf, but every protocol must survive it).
func TestAllProtocolsConformHeterogeneous(t *testing.T) {
	c := PaperConfig()
	for _, id := range AllProtocols() {
		id := id
		t.Run(string(id), func(t *testing.T) {
			w, err := network.Deploy(network.Deployment{
				N: 60, Side: 200, InitialEnergy: 5,
				AdvancedFraction: 0.2, AdvancedFactor: 1,
				SuperFraction: 0.1, SuperFactor: 2,
			}, rng.New(78))
			if err != nil {
				t.Fatal(err)
			}
			proto, err := c.BuildProtocol(id, w, 30, 0, 78)
			if err != nil {
				t.Fatal(err)
			}
			report := cluster.CheckConformance(w, proto, 30, 0)
			if !report.Ok() {
				for _, v := range report.Violations {
					t.Error(v)
				}
			}
		})
	}
}
