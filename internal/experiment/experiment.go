// Package experiment is the reproduction harness: it wires networks,
// protocols and the simulation engine into the exact measurements the
// paper reports, with multi-seed replication.
//
// Per-experiment index (see DESIGN.md §4):
//
//   - Table 2  — PaperConfig pins every published parameter.
//   - Fig 3(a) — RunFig3 sweeps λ and reports packet delivery rate.
//   - Fig 3(b) — same sweep, cumulative energy over R rounds.
//   - Fig 3(c) — same sweep, rounds until the first node crosses the
//     death line.
//   - Fig 4    — RunFig4 runs QLEC over the 2896-node power-plant
//     dataset and maps per-node energy-consumption rates, plus scalar
//     spatial-evenness statistics (binned CV, Gini, Moran's I).
package experiment

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"qlec/internal/baseline"
	"qlec/internal/cluster"
	"qlec/internal/core"
	"qlec/internal/dataset"
	"qlec/internal/energy"
	"qlec/internal/metrics"
	"qlec/internal/network"
	"qlec/internal/rng"
	"qlec/internal/sim"
	"qlec/internal/stats"
)

// ProtocolID names a protocol the harness can build.
type ProtocolID string

// The comparable protocols. QLEC plus the paper's two baselines are the
// headline set; LEACH and the QLEC ablations support the extra benches.
const (
	QLEC        ProtocolID = "QLEC"
	FCM         ProtocolID = "FCM"
	KMeans      ProtocolID = "k-means"
	LEACH       ProtocolID = "LEACH"
	DEECNearest ProtocolID = "DEEC-nearest" // QLEC minus Q-learning
	QLECNoFloor ProtocolID = "QLEC-nofloor" // QLEC minus Eq. (4)
	QLECNoRR    ProtocolID = "QLEC-norr"    // QLEC minus Algorithm 3
	DEECPlain   ProtocolID = "DEEC-plain"   // classic DEEC (Qing et al. 2006)
	Direct      ProtocolID = "direct-to-BS" // no clustering at all
)

// PaperProtocols returns the three protocols of Figure 3.
func PaperProtocols() []ProtocolID { return []ProtocolID{QLEC, FCM, KMeans} }

// Config assembles one experiment family.
type Config struct {
	// Deployment (§5.1): N nodes, cube side M, per-node initial energy.
	N             int
	Side          float64
	InitialEnergy energy.Joules
	// Rounds is R, the paper's 20 successive rounds.
	Rounds int
	// K is the cluster count (the paper uses k_opt ≈ 5; see DESIGN.md
	// §6.2 on the Theorem 1 discrepancy).
	K int
	// Lambdas is the traffic sweep for Figure 3 ("four network
	// conditions with different λ").
	Lambdas []float64
	// Seeds replicate every measurement; summaries aggregate across
	// them.
	Seeds []uint64
	// LifespanDeathLine is the death line for Fig 3(c) runs (the paper
	// raises/lowers the line depending on the measurement).
	LifespanDeathLine energy.Joules
	// LifespanMaxRounds caps Fig 3(c) runs.
	LifespanMaxRounds int
	// Sim is the base engine configuration; MeanInterArrival and Seed
	// are overridden per sweep point and replication.
	Sim sim.Config
	// Model holds the radio constants (Table 2).
	Model energy.Model
	// FCMLevels is the baseline's hierarchy depth.
	FCMLevels int
	// Topology, when non-nil, replaces the uniform-cube deployment with
	// explicit node positions and per-node energies (underwater columns,
	// terrain-following deployments, real datasets). N, Side and
	// InitialEnergy are ignored in that case.
	Topology *dataset.Dataset
	// AdvancedFraction/AdvancedFactor provision a two-tier heterogeneous
	// network (DEEC's original setting): a fraction of nodes start with
	// (1+factor)·InitialEnergy. Ignored with a custom Topology.
	AdvancedFraction float64
	AdvancedFactor   float64
	// Tracer, when non-nil, observes every packet transition of every
	// run (see sim.Tracer). Mostly useful with single runs.
	Tracer sim.Tracer
}

// PaperConfig returns the paper's §5.1/Table 2 experiment setup.
func PaperConfig() Config {
	return Config{
		N:                 100,
		Side:              200,
		InitialEnergy:     5,
		Rounds:            20,
		K:                 5,
		Lambdas:           []float64{8, 4, 2, 1},
		Seeds:             []uint64{1, 2, 3, 4, 5},
		LifespanDeathLine: 2.5,
		LifespanMaxRounds: 3000,
		Sim:               sim.DefaultConfig(),
		Model:             energy.DefaultModel(),
		FCMLevels:         3,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	n := c.N
	if c.Topology != nil {
		if err := c.Topology.Validate(); err != nil {
			return err
		}
		n = len(c.Topology.Positions)
	} else if c.N <= 0 || c.Side <= 0 || c.InitialEnergy <= 0 {
		return fmt.Errorf("experiment: invalid deployment (N=%d, side=%v, E0=%v)",
			c.N, c.Side, c.InitialEnergy)
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("experiment: Rounds must be positive, got %d", c.Rounds)
	}
	if c.K <= 0 || c.K > n {
		return fmt.Errorf("experiment: K=%d outside [1,%d]", c.K, n)
	}
	if len(c.Lambdas) == 0 {
		return fmt.Errorf("experiment: no lambda sweep points")
	}
	for _, l := range c.Lambdas {
		if !(l > 0) {
			return fmt.Errorf("experiment: lambda %v not positive", l)
		}
	}
	if len(c.Seeds) == 0 {
		return fmt.Errorf("experiment: no seeds")
	}
	if c.LifespanMaxRounds <= 0 {
		return fmt.Errorf("experiment: LifespanMaxRounds must be positive")
	}
	if c.FCMLevels < 1 {
		return fmt.Errorf("experiment: FCMLevels must be >= 1")
	}
	return c.Sim.Validate()
}

// BuildProtocol constructs a protocol instance bound to the network.
// totalRounds is the planned R the protocol should assume (lifespan runs
// pass their round cap).
func (c Config) BuildProtocol(id ProtocolID, w *network.Network, totalRounds int, deathLine energy.Joules, seed uint64) (cluster.Protocol, error) {
	k := c.K
	if k > w.N() {
		k = w.N()
	}
	switch id {
	case QLEC, DEECNearest, QLECNoFloor, QLECNoRR, DEECPlain:
		qc := core.DefaultConfig(totalRounds)
		qc.K = k
		qc.Bits = c.Sim.Bits
		qc.DeathLine = deathLine
		qc.Seed = seed
		qc.DisableQLearning = id == DEECNearest
		qc.DisableEnergyFloor = id == QLECNoFloor
		qc.DisableRedundancyReduction = id == QLECNoRR
		qc.PlainDEEC = id == DEECPlain
		return core.New(w, c.Model, qc)
	case FCM:
		return baseline.NewFCM(w, k, c.FCMLevels, deathLine, seed)
	case KMeans:
		return baseline.NewKMeans(w, k, deathLine, seed)
	case Direct:
		return baseline.NewDirect(), nil
	case LEACH:
		if k >= w.N() {
			k = w.N() - 1
		}
		return baseline.NewLEACH(w, k, deathLine, seed)
	default:
		return nil, fmt.Errorf("experiment: unknown protocol %q", id)
	}
}

// RunOne executes a single simulation: protocol id, traffic λ, seed.
// When lifespan is true the run uses the lifespan death line, stops on
// first death and may run up to LifespanMaxRounds; otherwise it runs
// exactly Rounds rounds with a zero death line (the paper's "lower the
// energy death line" methodology for PDR/energy measurements).
func (c Config) RunOne(id ProtocolID, lambda float64, seed uint64, lifespan bool) (*metrics.Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	var w *network.Network
	var err error
	if c.Topology != nil {
		w, err = network.FromPositions(c.Topology.Positions, c.Topology.Energies,
			c.Topology.Box, c.Topology.BS)
	} else {
		w, err = network.Deploy(network.Deployment{
			N: c.N, Side: c.Side, InitialEnergy: c.InitialEnergy,
			AdvancedFraction: c.AdvancedFraction, AdvancedFactor: c.AdvancedFactor,
		}, rng.NewNamed(seed, "experiment/deploy"))
	}
	if err != nil {
		return nil, err
	}
	rounds := c.Rounds
	var deathLine energy.Joules
	scfg := c.Sim
	scfg.MeanInterArrival = lambda
	scfg.Seed = seed
	if lifespan {
		rounds = c.LifespanMaxRounds
		deathLine = c.LifespanDeathLine
		scfg.DeathLine = deathLine
		scfg.StopOnDeath = true
	}
	proto, err := c.BuildProtocol(id, w, rounds, deathLine, seed)
	if err != nil {
		return nil, err
	}
	engine, err := sim.NewEngine(w, proto, c.Model, scfg)
	if err != nil {
		return nil, err
	}
	if c.Tracer != nil {
		engine.SetTracer(c.Tracer)
	}
	return engine.Run(rounds)
}

// SweepPoint aggregates one (protocol, λ) cell across seeds.
type SweepPoint struct {
	Lambda   float64
	PDR      stats.Summary
	EnergyJ  stats.Summary // total Joules over the R rounds
	Lifespan stats.Summary // rounds to first death (lifespan runs)
	Latency  stats.Summary // mean end-to-end seconds (per-seed means)
	Access   stats.Summary // mean member→head acceptance seconds
}

// SweepResult is one protocol's λ series.
type SweepResult struct {
	Protocol ProtocolID
	Points   []SweepPoint
}

// cellResult holds one (protocol, λ, seed) replication pair.
type cellResult struct {
	pdr, energyJ, latency, access, lifespan float64
}

// RunFig3 produces the data behind all three panels of Figure 3 for the
// given protocols: per λ and protocol, PDR and total energy from
// fixed-R runs and lifespan from death-line runs, each replicated over
// the configured seeds.
//
// Every (protocol, λ, seed) cell is an independent simulation with its
// own deterministic streams, so the sweep fans out across
// runtime.NumCPU()-bounded workers; results are identical to a serial
// run regardless of scheduling (tested).
func (c Config) RunFig3(ids []ProtocolID) ([]SweepResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	// Cells run concurrently; a shared Tracer would interleave unrelated
	// runs (and race), so sweeps drop it. Trace single runs via RunOne.
	c.Tracer = nil
	type cellKey struct {
		proto, lambdaIdx, seedIdx int
	}
	type job struct {
		key    cellKey
		id     ProtocolID
		lambda float64
		seed   uint64
	}
	var jobs []job
	for pi, id := range ids {
		for li, lambda := range c.Lambdas {
			for si, seed := range c.Seeds {
				jobs = append(jobs, job{cellKey{pi, li, si}, id, lambda, seed})
			}
		}
	}

	cells := make(map[cellKey]cellResult, len(jobs))
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	workers := runtime.NumCPU()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	work := make(chan job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range work {
				cell, err := c.runCell(j.id, j.lambda, j.seed)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("%s λ=%v seed=%d: %w", j.id, j.lambda, j.seed, err)
				}
				cells[j.key] = cell
				mu.Unlock()
			}
		}()
	}
	for _, j := range jobs {
		work <- j
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	var out []SweepResult
	for pi, id := range ids {
		sr := SweepResult{Protocol: id}
		for li, lambda := range c.Lambdas {
			var pdrs, energies, lifespans, latencies, accesses []float64
			for si := range c.Seeds {
				cell := cells[cellKey{pi, li, si}]
				pdrs = append(pdrs, cell.pdr)
				energies = append(energies, cell.energyJ)
				latencies = append(latencies, cell.latency)
				accesses = append(accesses, cell.access)
				lifespans = append(lifespans, cell.lifespan)
			}
			sr.Points = append(sr.Points, SweepPoint{
				Lambda:   lambda,
				PDR:      stats.Summarize(pdrs),
				EnergyJ:  stats.Summarize(energies),
				Lifespan: stats.Summarize(lifespans),
				Latency:  stats.Summarize(latencies),
				Access:   stats.Summarize(accesses),
			})
		}
		out = append(out, sr)
	}
	return out, nil
}

// runCell executes one replication pair (fixed-round + lifespan run).
func (c Config) runCell(id ProtocolID, lambda float64, seed uint64) (cellResult, error) {
	res, err := c.RunOne(id, lambda, seed, false)
	if err != nil {
		return cellResult{}, err
	}
	lres, err := c.RunOne(id, lambda, seed, true)
	if err != nil {
		return cellResult{}, err
	}
	ls := lres.Lifespan
	if ls == 0 { // survived the cap
		ls = lres.Rounds
	}
	return cellResult{
		pdr:      res.PDR(),
		energyJ:  float64(res.TotalEnergy),
		latency:  res.Latency.Mean,
		access:   res.Access.Mean,
		lifespan: float64(ls),
	}, nil
}

// KSweepPoint is one cluster-count cell of the k-sensitivity sweep.
type KSweepPoint struct {
	K        int
	PDR      stats.Summary
	EnergyJ  stats.Summary
	Lifespan stats.Summary
}

// RunKSweep measures QLEC's sensitivity to the cluster count k at one
// traffic level — the experiment behind DESIGN.md §6.2's discussion:
// Theorem 1 puts k_opt ≈ 11 for the paper's deployment (not the
// reported 5), and delivery under load indeed peaks near the theorem's
// value because Q-learning rerouting needs alternative heads at
// comparable distance.
func (c Config) RunKSweep(id ProtocolID, ks []int, lambda float64) ([]KSweepPoint, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("experiment: no k values")
	}
	var out []KSweepPoint
	for _, k := range ks {
		if k <= 0 {
			return nil, fmt.Errorf("experiment: k=%d not positive", k)
		}
		kcfg := c
		kcfg.K = k
		var pdrs, energies, lifespans []float64
		for _, seed := range c.Seeds {
			res, err := kcfg.RunOne(id, lambda, seed, false)
			if err != nil {
				return nil, fmt.Errorf("k=%d seed=%d: %w", k, seed, err)
			}
			pdrs = append(pdrs, res.PDR())
			energies = append(energies, float64(res.TotalEnergy))
			lres, err := kcfg.RunOne(id, lambda, seed, true)
			if err != nil {
				return nil, fmt.Errorf("k=%d seed=%d lifespan: %w", k, seed, err)
			}
			ls := lres.Lifespan
			if ls == 0 {
				ls = lres.Rounds
			}
			lifespans = append(lifespans, float64(ls))
		}
		out = append(out, KSweepPoint{
			K:        k,
			PDR:      stats.Summarize(pdrs),
			EnergyJ:  stats.Summarize(energies),
			Lifespan: stats.Summarize(lifespans),
		})
	}
	return out, nil
}

// NSweepPoint is one network-size cell of the scalability sweep.
type NSweepPoint struct {
	N             int
	K             int
	PDR           stats.Summary
	EnergyPerNode stats.Summary // Joules per node over the run
	Lifespan      stats.Summary
}

// RunNSweep measures a protocol's behaviour as the network grows at
// constant node density (the cube side scales with ∛N) with k scaled to
// keep the same nodes-per-cluster ratio — the scalability argument
// behind the paper's "support higher scalability" framing (§1) and the
// §5.3 jump from 100 to 2896 nodes.
func (c Config) RunNSweep(id ProtocolID, ns []int, lambda float64) ([]NSweepPoint, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(ns) == 0 {
		return nil, fmt.Errorf("experiment: no N values")
	}
	baseDensity := float64(c.N)
	baseK := float64(c.K)
	var out []NSweepPoint
	for _, n := range ns {
		if n <= 0 {
			return nil, fmt.Errorf("experiment: N=%d not positive", n)
		}
		ncfg := c
		ncfg.N = n
		ncfg.Side = c.Side * math.Cbrt(float64(n)/baseDensity)
		k := int(math.Round(baseK * float64(n) / baseDensity))
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		ncfg.K = k
		var pdrs, perNode, lifespans []float64
		for _, seed := range c.Seeds {
			res, err := ncfg.RunOne(id, lambda, seed, false)
			if err != nil {
				return nil, fmt.Errorf("N=%d seed=%d: %w", n, seed, err)
			}
			pdrs = append(pdrs, res.PDR())
			perNode = append(perNode, float64(res.TotalEnergy)/float64(n))
			lres, err := ncfg.RunOne(id, lambda, seed, true)
			if err != nil {
				return nil, fmt.Errorf("N=%d seed=%d lifespan: %w", n, seed, err)
			}
			ls := lres.Lifespan
			if ls == 0 {
				ls = lres.Rounds
			}
			lifespans = append(lifespans, float64(ls))
		}
		out = append(out, NSweepPoint{
			N: n, K: k,
			PDR:           stats.Summarize(pdrs),
			EnergyPerNode: stats.Summarize(perNode),
			Lifespan:      stats.Summarize(lifespans),
		})
	}
	return out, nil
}

// Fig4Config parameterizes the large-scale dataset experiment (§5.3).
type Fig4Config struct {
	// Data, when non-nil, is used directly (e.g. the genuine WRI file
	// loaded via dataset.LoadWRICSV, or an x,y,z,energy CSV via
	// dataset.LoadCSV); Synth is ignored then.
	Data *dataset.Dataset
	// Dataset synthesis parameters; see dataset.DefaultSynthConfig.
	Synth dataset.SynthConfig
	// K is the cluster count; the paper derives k_opt = 272 for the
	// 2896-node set. Zero derives it from Theorem 1.
	K int
	// Rounds to simulate.
	Rounds int
	// Sim configuration (λ etc.).
	Sim sim.Config
	// Model holds radio constants.
	Model energy.Model
}

// PaperFig4Config mirrors §5.3.
func PaperFig4Config() Fig4Config {
	return Fig4Config{
		Synth:  dataset.DefaultSynthConfig(),
		K:      272,
		Rounds: 20,
		Sim:    sim.DefaultConfig(),
		Model:  energy.DefaultModel(),
	}
}

// Fig4Result is the large-scale experiment output.
type Fig4Result struct {
	// Field maps node positions to energy-consumption rates — the data
	// behind the paper's scatter map.
	Field stats.SpatialField
	// BinnedCV, Gini and MoranI quantify the paper's "evenly
	// distributed" claim (lower = more even; Moran ≈ 0 = no hot-spot
	// clustering).
	BinnedCV float64
	Gini     float64
	MoranI   float64
	// Run is the underlying simulation result.
	Run *metrics.Result
	// Net is the network after the run (positions, batteries).
	Net *network.Network
	// K actually used.
	K int
}

// RunFig4 synthesizes the dataset, runs QLEC over it and computes the
// spatial statistics.
func RunFig4(cfg Fig4Config) (*Fig4Result, error) {
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("experiment: Fig4 Rounds must be positive")
	}
	ds := cfg.Data
	if ds == nil {
		var err error
		ds, err = dataset.Synthesize(cfg.Synth)
		if err != nil {
			return nil, err
		}
	} else if err := ds.Validate(); err != nil {
		return nil, err
	}
	w, err := network.FromPositions(ds.Positions, ds.Energies, ds.Box, ds.BS)
	if err != nil {
		return nil, err
	}
	k := cfg.K
	if k == 0 {
		k = core.AutoK(w, cfg.Model)
	}
	qc := core.DefaultConfig(cfg.Rounds)
	qc.K = k
	qc.Bits = cfg.Sim.Bits
	qc.Seed = cfg.Synth.Seed
	proto, err := core.New(w, cfg.Model, qc)
	if err != nil {
		return nil, err
	}
	engine, err := sim.NewEngine(w, proto, cfg.Model, cfg.Sim)
	if err != nil {
		return nil, err
	}
	res, err := engine.Run(cfg.Rounds)
	if err != nil {
		return nil, err
	}
	field := stats.SpatialField{Points: w.Positions(), Values: res.ConsumptionRates}
	out := &Fig4Result{Field: field, Run: res, Net: w, K: k}
	if out.BinnedCV, err = field.BinnedCV(w.Box, 6); err != nil {
		return nil, err
	}
	if out.Gini, err = stats.GiniCoefficient(res.ConsumptionRates); err != nil {
		return nil, err
	}
	// Moran's I with a neighbourhood of ~2 coverage radii.
	radius := w.Box.Size().X / 8
	if out.MoranI, err = field.MoranI(radius); err != nil {
		return nil, err
	}
	return out, nil
}
