// Package experiment is the reproduction harness: it wires networks,
// protocols and the simulation engine into the exact measurements the
// paper reports, with multi-seed replication.
//
// Per-experiment index (see DESIGN.md §4):
//
//   - Table 2  — PaperConfig pins every published parameter.
//   - Fig 3(a) — RunFig3 sweeps λ and reports packet delivery rate.
//   - Fig 3(b) — same sweep, cumulative energy over R rounds.
//   - Fig 3(c) — same sweep, rounds until the first node crosses the
//     death line.
//   - Fig 4    — RunFig4 runs QLEC over the 2896-node power-plant
//     dataset and maps per-node energy-consumption rates, plus scalar
//     spatial-evenness statistics (binned CV, Gini, Moran's I).
package experiment

import (
	"context"
	"fmt"

	"qlec/internal/audit"
	"qlec/internal/cluster"
	"qlec/internal/core"
	"qlec/internal/dataset"
	"qlec/internal/energy"
	"qlec/internal/metrics"
	"qlec/internal/network"
	"qlec/internal/protocol"
	"qlec/internal/qlearn"
	"qlec/internal/rng"
	"qlec/internal/runner"
	"qlec/internal/sim"
	"qlec/internal/stats"

	// Link every in-tree protocol into the registry the harness
	// resolves against.
	_ "qlec/internal/protocol/all"
)

// ProtocolID names a protocol the harness can build. The id space is
// owned by the protocol registry (internal/protocol): any registered
// canonical id or alias resolves, and the constants below are
// conveniences for the in-tree protocols, not an exhaustive list.
type ProtocolID string

// The in-tree protocols. QLEC plus the paper's two baselines are the
// headline set; LEACH and the QLEC ablations support the extra benches;
// T-DEEC and Q-LEACH are the related-work competitors (ROADMAP item 4).
const (
	QLEC        ProtocolID = "QLEC"
	FCM         ProtocolID = "FCM"
	KMeans      ProtocolID = "k-means"
	LEACH       ProtocolID = "LEACH"
	DEECNearest ProtocolID = "DEEC-nearest" // QLEC minus Q-learning
	QLECNoFloor ProtocolID = "QLEC-nofloor" // QLEC minus Eq. (4)
	QLECNoRR    ProtocolID = "QLEC-norr"    // QLEC minus Algorithm 3
	DEECPlain   ProtocolID = "DEEC-plain"   // classic DEEC (Qing et al. 2006)
	Direct      ProtocolID = "direct-to-BS" // no clustering at all
	TDEEC       ProtocolID = "T-DEEC"       // heterogeneous-tier DEEC (arXiv 1408.4112)
	QLEACH      ProtocolID = "Q-LEACH"      // sectored LEACH (arXiv 1303.5240)
)

// PaperProtocols returns the protocols of Figure 3, in the paper's
// order, from the registry's Figure3Rank marks.
func PaperProtocols() []ProtocolID {
	return toIDs(protocol.Figure3())
}

// AllProtocols returns every registered protocol id, ablations
// included — the authority the job service validates requests against.
// Ordering is the registry's deterministic (Order, ID) rank.
func AllProtocols() []ProtocolID {
	return toIDs(protocol.All())
}

// CompetitorProtocols returns the registered non-ablation protocols —
// the tournament's default field.
func CompetitorProtocols() []ProtocolID {
	var out []ProtocolID
	for _, d := range protocol.All() {
		if !d.Ablation {
			out = append(out, ProtocolID(d.ID))
		}
	}
	return out
}

func toIDs(ds []protocol.Descriptor) []ProtocolID {
	out := make([]ProtocolID, len(ds))
	for i, d := range ds {
		out[i] = ProtocolID(d.ID)
	}
	return out
}

// KnownProtocol reports whether id resolves to a registered protocol
// (canonical id or alias, case-insensitive). O(1) registry lookup.
func KnownProtocol(id ProtocolID) bool {
	return protocol.Known(string(id))
}

// CanonicalProtocol maps any accepted spelling of a protocol name to
// its canonical registry id; unknown ids pass through unchanged.
func CanonicalProtocol(id ProtocolID) ProtocolID {
	return ProtocolID(protocol.Canonical(string(id)))
}

// Config assembles one experiment family.
type Config struct {
	// Deployment (§5.1): N nodes, cube side M, per-node initial energy.
	N             int
	Side          float64
	InitialEnergy energy.Joules
	// Rounds is R, the paper's 20 successive rounds.
	Rounds int
	// K is the cluster count (the paper uses k_opt ≈ 5; see DESIGN.md
	// §6.2 on the Theorem 1 discrepancy).
	K int
	// Lambdas is the traffic sweep for Figure 3 ("four network
	// conditions with different λ").
	Lambdas []float64
	// Seeds replicate every measurement; summaries aggregate across
	// them.
	Seeds []uint64
	// LifespanDeathLine is the death line for Fig 3(c) runs (the paper
	// raises/lowers the line depending on the measurement).
	LifespanDeathLine energy.Joules
	// LifespanMaxRounds caps Fig 3(c) runs.
	LifespanMaxRounds int
	// Sim is the base engine configuration; MeanInterArrival and Seed
	// are overridden per sweep point and replication.
	Sim sim.Config
	// Model holds the radio constants (Table 2).
	Model energy.Model
	// FCMLevels is the baseline's hierarchy depth.
	FCMLevels int
	// Topology, when non-nil, replaces the uniform-cube deployment with
	// explicit node positions and per-node energies (underwater columns,
	// terrain-following deployments, real datasets). N, Side and
	// InitialEnergy are ignored in that case.
	Topology *dataset.Dataset
	// AdvancedFraction/AdvancedFactor provision a two-tier heterogeneous
	// network (DEEC's original setting): a fraction of nodes start with
	// (1+factor)·InitialEnergy. Ignored with a custom Topology.
	AdvancedFraction float64
	AdvancedFactor   float64
	// SuperFraction/SuperFactor provision a third tier of "super" nodes
	// with (1+SuperFactor)·InitialEnergy — T-DEEC's three-tier setting
	// (arXiv 1408.4112). Ignored with a custom Topology.
	SuperFraction float64
	SuperFactor   float64
	// ProtocolParams overrides registered protocols' tunables by name
	// (e.g. "thresholdFrac" for T-DEEC, "sectors" for Q-LEACH); unset
	// keys fall back to each descriptor's DefaultParams.
	ProtocolParams map[string]float64
	// Tracer, when non-nil, observes every packet transition of every
	// run (see sim.Tracer). Mostly useful with single runs. Excluded
	// from JSON (func fields cannot round-trip).
	Tracer sim.Tracer `json:"-"`
	// Observer, when non-nil, receives one sim.RoundSnapshot per round
	// of single runs (RunOne) — live progress, early-stopping hooks.
	// Like Tracer it is dropped in sweeps, where rounds from unrelated
	// cells would interleave, and excluded from JSON.
	Observer sim.Observer `json:"-"`
	// Audit, when non-nil, is the flight recorder for single runs: the
	// run binds it to the network, installs it on the engine, and — for
	// Q-learning protocols — attaches it to the learner's decision
	// stream. Recorders are single-use, so like Tracer/Observer the
	// hook is dropped in sweeps and excluded from JSON (and from the
	// canonical cache key; see canonical.go).
	Audit *audit.Recorder `json:"-"`
	// Workers bounds sweep parallelism: 0 fans out across the CPUs,
	// 1 forces the serial reference schedule (results are identical
	// either way; see runner.Map).
	Workers int
	// Progress, when non-nil, receives sweep completion updates (cells
	// done out of total). Called from worker goroutines, serialized.
	// Excluded from JSON.
	Progress runner.Progress `json:"-"`

	// enduranceNoStop switches lifespan runs to keep going past the
	// first death (StopOnDeath off) so the full alive-count trajectory
	// is recorded — the tournament's FND/HND methodology. Unexported:
	// only the tournament harness sets it, and being invisible to JSON
	// and the canonical mirrors it cannot perturb cache keys.
	enduranceNoStop bool
}

// PaperConfig returns the paper's §5.1/Table 2 experiment setup.
func PaperConfig() Config {
	return Config{
		N:                 100,
		Side:              200,
		InitialEnergy:     5,
		Rounds:            20,
		K:                 5,
		Lambdas:           []float64{8, 4, 2, 1},
		Seeds:             []uint64{1, 2, 3, 4, 5},
		LifespanDeathLine: 2.5,
		LifespanMaxRounds: 3000,
		Sim:               sim.DefaultConfig(),
		Model:             energy.DefaultModel(),
		FCMLevels:         3,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	n := c.N
	if c.Topology != nil {
		if err := c.Topology.Validate(); err != nil {
			return err
		}
		n = len(c.Topology.Positions)
	} else if c.N <= 0 || c.Side <= 0 || c.InitialEnergy <= 0 {
		return fmt.Errorf("experiment: invalid deployment (N=%d, side=%v, E0=%v)",
			c.N, c.Side, c.InitialEnergy)
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("experiment: Rounds must be positive, got %d", c.Rounds)
	}
	if c.K <= 0 || c.K > n {
		return fmt.Errorf("experiment: K=%d outside [1,%d]", c.K, n)
	}
	if len(c.Lambdas) == 0 {
		return fmt.Errorf("experiment: no lambda sweep points")
	}
	for _, l := range c.Lambdas {
		if !(l > 0) {
			return fmt.Errorf("experiment: lambda %v not positive", l)
		}
	}
	if len(c.Seeds) == 0 {
		return fmt.Errorf("experiment: no seeds")
	}
	if c.LifespanMaxRounds <= 0 {
		return fmt.Errorf("experiment: LifespanMaxRounds must be positive")
	}
	if c.FCMLevels < 1 {
		return fmt.Errorf("experiment: FCMLevels must be >= 1")
	}
	return c.Sim.Validate()
}

// BuildProtocol constructs a protocol instance bound to the network by
// resolving id through the protocol registry. totalRounds is the
// planned R the protocol should assume (lifespan runs pass their round
// cap).
func (c Config) BuildProtocol(id ProtocolID, w *network.Network, totalRounds int, deathLine energy.Joules, seed uint64) (cluster.Protocol, error) {
	d, ok := protocol.Lookup(string(id))
	if !ok {
		return nil, fmt.Errorf("experiment: unknown protocol %q", id)
	}
	k := c.K
	if k > w.N() {
		k = w.N()
	}
	return d.Factory(protocol.BuildContext{
		Net:         w,
		Model:       c.Model,
		K:           k,
		TotalRounds: totalRounds,
		DeathLine:   deathLine,
		Seed:        seed,
		Bits:        c.Sim.Bits,
		FCMLevels:   c.FCMLevels,
		Params:      protocol.MergeParams(d.DefaultParams, c.ProtocolParams),
	})
}

// RunOne executes a single simulation: protocol id, traffic λ, seed.
// When lifespan is true the run uses the lifespan death line, stops on
// first death and may run up to LifespanMaxRounds; otherwise it runs
// exactly Rounds rounds with a zero death line (the paper's "lower the
// energy death line" methodology for PDR/energy measurements).
//
// Cancelling ctx stops the run at the next round boundary; the partial
// result accumulated so far is returned alongside ctx's error.
func (c Config) RunOne(ctx context.Context, id ProtocolID, lambda float64, seed uint64, lifespan bool) (*metrics.Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c.runOneValidated(ctx, id, lambda, seed, lifespan)
}

// runOneValidated is RunOne minus the Validate call — the sweep entry
// points validate their (derived) configurations exactly once up front
// and then run every (protocol, λ, seed) cell through this path, so a
// bad configuration is reported immediately instead of N times from
// inside the worker pool.
func (c Config) runOneValidated(ctx context.Context, id ProtocolID, lambda float64, seed uint64, lifespan bool) (*metrics.Result, error) {
	var w *network.Network
	var err error
	if c.Topology != nil {
		w, err = network.FromPositions(c.Topology.Positions, c.Topology.Energies,
			c.Topology.Box, c.Topology.BS)
	} else {
		w, err = network.Deploy(network.Deployment{
			N: c.N, Side: c.Side, InitialEnergy: c.InitialEnergy,
			AdvancedFraction: c.AdvancedFraction, AdvancedFactor: c.AdvancedFactor,
			SuperFraction: c.SuperFraction, SuperFactor: c.SuperFactor,
		}, rng.NewNamed(seed, "experiment/deploy"))
	}
	if err != nil {
		return nil, err
	}
	rounds := c.Rounds
	var deathLine energy.Joules
	scfg := c.Sim
	scfg.MeanInterArrival = lambda
	scfg.Seed = seed
	if lifespan {
		rounds = c.LifespanMaxRounds
		deathLine = c.LifespanDeathLine
		scfg.DeathLine = deathLine
		scfg.StopOnDeath = !c.enduranceNoStop
	}
	proto, err := c.BuildProtocol(id, w, rounds, deathLine, seed)
	if err != nil {
		return nil, err
	}
	engine, err := sim.NewEngine(w, proto, c.Model, scfg)
	if err != nil {
		return nil, err
	}
	if c.Tracer != nil {
		engine.SetTracer(c.Tracer)
	}
	if c.Observer != nil {
		engine.SetObserver(c.Observer)
	}
	if c.Audit != nil {
		k := c.K
		if k > w.N() {
			k = w.N()
		}
		if err := c.Audit.Bind(w, deathLine, k); err != nil {
			return nil, err
		}
		engine.SetAuditor(c.Audit)
		if ql, ok := proto.(interface{ Learner() *qlearn.Learner }); ok {
			c.Audit.ObserveLearner(ql.Learner())
		}
	}
	return engine.Run(ctx, rounds)
}

// SweepPoint aggregates one (protocol, λ) cell across seeds.
type SweepPoint struct {
	Lambda   float64
	PDR      stats.Summary
	EnergyJ  stats.Summary // total Joules over the R rounds
	Lifespan stats.Summary // rounds to first death (lifespan runs)
	Latency  stats.Summary // mean end-to-end seconds (per-seed means)
	Access   stats.Summary // mean member→head acceptance seconds
}

// SweepResult is one protocol's λ series.
type SweepResult struct {
	Protocol ProtocolID
	Points   []SweepPoint
}

// CellOutcome holds the measurements of one (protocol, λ, seed)
// replication pair — the unit the sweep assembly functions aggregate
// and the payload the qlecd fleet moves between peers, so the fields
// serialize.
type CellOutcome struct {
	PDR      float64 `json:"pdr"`
	EnergyJ  float64 `json:"energyJ"`
	Latency  float64 `json:"latency"`
	Access   float64 `json:"access"`
	Lifespan float64 `json:"lifespan"`
}

// sweepOptions bundles the runner knobs a sweep threads through, and
// strips the single-run hooks (Tracer, Observer) that would interleave
// unrelated concurrent cells. Trace or observe single runs via RunOne.
func (c *Config) sweepOptions() runner.Options {
	c.Tracer = nil
	c.Observer = nil
	c.Audit = nil
	return runner.Options{Workers: c.Workers, Progress: c.Progress}
}

// RunFig3 produces the data behind all three panels of Figure 3 for the
// given protocols: per λ and protocol, PDR and total energy from
// fixed-R runs and lifespan from death-line runs, each replicated over
// the configured seeds.
//
// Every (protocol, λ, seed) cell is an independent simulation with its
// own deterministic streams, so the sweep fans out through runner.Map;
// results are identical to a serial run regardless of scheduling
// (tested centrally in TestSweepsParallelMatchSerial). Cancelling ctx
// stops launching cells and returns ctx's error; every failed cell is
// reported, not just the first.
func (c Config) RunFig3(ctx context.Context, ids []ProtocolID) ([]SweepResult, error) {
	specs, err := c.Fig3Cells(ids)
	if err != nil {
		return nil, err
	}
	cells, err := c.runSpecs(ctx, specs)
	if err != nil {
		return nil, err
	}
	return AssembleFig3(ids, c.Lambdas, c.Seeds, cells)
}

// runSpecs fans a cell list out through the bounded runner; it is the
// in-process counterpart of the fleet's distributed cell execution, and
// both feed the same Assemble* functions.
func (c Config) runSpecs(ctx context.Context, specs []CellSpec) ([]CellOutcome, error) {
	opts := c.sweepOptions()
	return runner.Map(ctx, len(specs), opts,
		func(ctx context.Context, i int) (CellOutcome, error) {
			s := specs[i]
			cell, err := s.Run(ctx)
			if err != nil {
				return CellOutcome{}, fmt.Errorf("%s λ=%v seed=%d: %w", s.Protocol, s.Lambda, s.Seed, err)
			}
			return cell, nil
		})
}

// runCell executes one replication pair (fixed-round + lifespan run).
// The configuration must already be validated (sweeps validate once up
// front; see runOneValidated).
func (c Config) runCell(ctx context.Context, id ProtocolID, lambda float64, seed uint64) (CellOutcome, error) {
	res, err := c.runOneValidated(ctx, id, lambda, seed, false)
	if err != nil {
		return CellOutcome{}, err
	}
	lres, err := c.runOneValidated(ctx, id, lambda, seed, true)
	if err != nil {
		return CellOutcome{}, err
	}
	ls := lres.Lifespan
	if ls == 0 { // survived the cap
		ls = lres.Rounds
	}
	return CellOutcome{
		PDR:      res.PDR(),
		EnergyJ:  float64(res.TotalEnergy),
		Latency:  res.Latency.Mean,
		Access:   res.Access.Mean,
		Lifespan: float64(ls),
	}, nil
}

// KSweepPoint is one cluster-count cell of the k-sensitivity sweep.
type KSweepPoint struct {
	K        int
	PDR      stats.Summary
	EnergyJ  stats.Summary
	Lifespan stats.Summary
}

// RunKSweep measures QLEC's sensitivity to the cluster count k at one
// traffic level — the experiment behind DESIGN.md §6.2's discussion:
// Theorem 1 puts k_opt ≈ 11 for the paper's deployment (not the
// reported 5), and delivery under load indeed peaks near the theorem's
// value because Q-learning rerouting needs alternative heads at
// comparable distance.
// Replications fan out through runner.Map — one job per (k, seed) cell,
// deterministic regardless of scheduling — and cancelling ctx stops the
// sweep with ctx's error.
func (c Config) RunKSweep(ctx context.Context, id ProtocolID, ks []int, lambda float64) ([]KSweepPoint, error) {
	specs, err := c.KSweepCells(id, ks, lambda)
	if err != nil {
		return nil, err
	}
	cells, err := c.runSpecs(ctx, specs)
	if err != nil {
		return nil, err
	}
	return AssembleKSweep(ks, c.Seeds, cells)
}

// NSweepPoint is one network-size cell of the scalability sweep.
type NSweepPoint struct {
	N             int
	K             int
	PDR           stats.Summary
	EnergyPerNode stats.Summary // Joules per node over the run
	Lifespan      stats.Summary
}

// RunNSweep measures a protocol's behaviour as the network grows at
// constant node density (the cube side scales with ∛N) with k scaled to
// keep the same nodes-per-cluster ratio — the scalability argument
// behind the paper's "support higher scalability" framing (§1) and the
// §5.3 jump from 100 to 2896 nodes.
// Replications fan out through runner.Map — one job per (N, seed) cell,
// deterministic regardless of scheduling — and cancelling ctx stops the
// sweep with ctx's error.
func (c Config) RunNSweep(ctx context.Context, id ProtocolID, ns []int, lambda float64) ([]NSweepPoint, error) {
	specs, err := c.NSweepCells(id, ns, lambda)
	if err != nil {
		return nil, err
	}
	cells, err := c.runSpecs(ctx, specs)
	if err != nil {
		return nil, err
	}
	return AssembleNSweep(ns, c.Seeds, specs, cells)
}

// Fig4Config parameterizes the large-scale dataset experiment (§5.3).
type Fig4Config struct {
	// Data, when non-nil, is used directly (e.g. the genuine WRI file
	// loaded via dataset.LoadWRICSV, or an x,y,z,energy CSV via
	// dataset.LoadCSV); Synth is ignored then.
	Data *dataset.Dataset
	// Dataset synthesis parameters; see dataset.DefaultSynthConfig.
	Synth dataset.SynthConfig
	// K is the cluster count; the paper derives k_opt = 272 for the
	// 2896-node set. Zero derives it from Theorem 1.
	K int
	// Rounds to simulate.
	Rounds int
	// Sim configuration (λ etc.).
	Sim sim.Config
	// Model holds radio constants.
	Model energy.Model
	// Seeds, when non-empty, replicates the experiment across these
	// seeds (dataset synthesis and protocol streams both reseed) and
	// summarizes the evenness statistics across replicates; the first
	// seed supplies the primary Field/Run/Net. Empty runs once at
	// Synth.Seed.
	Seeds []uint64
	// Workers bounds replicate parallelism (0 = CPUs, 1 = serial).
	Workers int
	// Progress, when non-nil, receives replicate completion updates.
	Progress runner.Progress
}

// PaperFig4Config mirrors §5.3.
func PaperFig4Config() Fig4Config {
	return Fig4Config{
		Synth:  dataset.DefaultSynthConfig(),
		K:      272,
		Rounds: 20,
		Sim:    sim.DefaultConfig(),
		Model:  energy.DefaultModel(),
	}
}

// Fig4Result is the large-scale experiment output.
type Fig4Result struct {
	// Field maps node positions to energy-consumption rates — the data
	// behind the paper's scatter map.
	Field stats.SpatialField
	// BinnedCV, Gini and MoranI quantify the paper's "evenly
	// distributed" claim (lower = more even; Moran ≈ 0 = no hot-spot
	// clustering).
	BinnedCV float64
	Gini     float64
	MoranI   float64
	// Run is the underlying simulation result.
	Run *metrics.Result
	// Net is the network after the run (positions, batteries).
	Net *network.Network
	// K actually used.
	K int
	// BinnedCVStats, GiniStats and MoranIStats summarize the evenness
	// statistics across the configured replicate seeds (N=1 without
	// Fig4Config.Seeds).
	BinnedCVStats stats.Summary
	GiniStats     stats.Summary
	MoranIStats   stats.Summary
}

// RunFig4 synthesizes the dataset, runs QLEC over it and computes the
// spatial statistics. With Fig4Config.Seeds set, the per-seed
// replicates fan out through runner.Map; the primary (first-seed)
// replicate supplies the Field/Run/Net payload and the *Stats fields
// summarize evenness across all replicates. Cancelling ctx stops the
// experiment at the next round boundary with ctx's error.
func RunFig4(ctx context.Context, cfg Fig4Config) (*Fig4Result, error) {
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("experiment: Fig4 Rounds must be positive")
	}
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{cfg.Synth.Seed}
	}
	reps, err := runner.Map(ctx, len(seeds),
		runner.Options{Workers: cfg.Workers, Progress: cfg.Progress},
		func(ctx context.Context, i int) (*Fig4Result, error) {
			rep, err := runFig4Once(ctx, cfg, seeds[i])
			if err != nil {
				return nil, fmt.Errorf("seed=%d: %w", seeds[i], err)
			}
			return rep, nil
		})
	if err != nil {
		return nil, err
	}
	out := reps[0]
	cvs := make([]float64, len(reps))
	ginis := make([]float64, len(reps))
	morans := make([]float64, len(reps))
	for i, rep := range reps {
		cvs[i], ginis[i], morans[i] = rep.BinnedCV, rep.Gini, rep.MoranI
	}
	out.BinnedCVStats = stats.Summarize(cvs)
	out.GiniStats = stats.Summarize(ginis)
	out.MoranIStats = stats.Summarize(morans)
	return out, nil
}

// runFig4Once executes one replicate of the large-scale experiment at
// the given seed, which drives dataset synthesis (when no explicit Data
// is set) and the protocol streams.
func runFig4Once(ctx context.Context, cfg Fig4Config, seed uint64) (*Fig4Result, error) {
	ds := cfg.Data
	if ds == nil {
		synth := cfg.Synth
		synth.Seed = seed
		var err error
		ds, err = dataset.Synthesize(synth)
		if err != nil {
			return nil, err
		}
	} else if err := ds.Validate(); err != nil {
		return nil, err
	}
	w, err := network.FromPositions(ds.Positions, ds.Energies, ds.Box, ds.BS)
	if err != nil {
		return nil, err
	}
	k := cfg.K
	if k == 0 {
		k = core.AutoK(w, cfg.Model)
	}
	qc := core.DefaultConfig(cfg.Rounds)
	qc.K = k
	qc.Bits = cfg.Sim.Bits
	qc.Seed = seed
	proto, err := core.New(w, cfg.Model, qc)
	if err != nil {
		return nil, err
	}
	engine, err := sim.NewEngine(w, proto, cfg.Model, cfg.Sim)
	if err != nil {
		return nil, err
	}
	res, err := engine.Run(ctx, cfg.Rounds)
	if err != nil {
		return nil, err
	}
	field := stats.SpatialField{Points: w.Positions(), Values: res.ConsumptionRates}
	out := &Fig4Result{Field: field, Run: res, Net: w, K: k}
	if out.BinnedCV, err = field.BinnedCV(w.Box, 6); err != nil {
		return nil, err
	}
	if out.Gini, err = stats.GiniCoefficient(res.ConsumptionRates); err != nil {
		return nil, err
	}
	// Moran's I with a neighbourhood of ~2 coverage radii.
	radius := w.Box.Size().X / 8
	if out.MoranI, err = field.MoranI(radius); err != nil {
		return nil, err
	}
	return out, nil
}
