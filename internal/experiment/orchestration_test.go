package experiment

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// fig4Quick returns a small Figure-4 configuration for orchestration
// tests.
func fig4Quick() Fig4Config {
	cfg := PaperFig4Config()
	cfg.Synth.N = 120
	cfg.K = 8
	cfg.Rounds = 2
	return cfg
}

// TestSweepsParallelMatchSerial is the central determinism check the
// orchestration layer promises: for every sweep, the parallel schedule
// (Workers=0, CPUs) must produce results identical to the serial
// reference schedule (Workers=1) — scheduling must not leak into
// results.
func TestSweepsParallelMatchSerial(t *testing.T) {
	serial := quickConfig()
	serial.Workers = 1
	parallel := quickConfig()
	parallel.Workers = 0
	ctx := context.Background()
	protos := []ProtocolID{QLEC, KMeans}

	t.Run("Fig3", func(t *testing.T) {
		a, err := serial.RunFig3(ctx, protos)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parallel.RunFig3(ctx, protos)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("parallel Fig3 diverged from serial:\n%+v\nvs\n%+v", b, a)
		}
	})
	t.Run("KSweep", func(t *testing.T) {
		a, err := serial.RunKSweep(ctx, QLEC, []int{3, 8}, 3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parallel.RunKSweep(ctx, QLEC, []int{3, 8}, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("parallel k-sweep diverged from serial:\n%+v\nvs\n%+v", b, a)
		}
	})
	t.Run("NSweep", func(t *testing.T) {
		a, err := serial.RunNSweep(ctx, QLEC, []int{50, 120}, 4)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parallel.RunNSweep(ctx, QLEC, []int{50, 120}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("parallel n-sweep diverged from serial:\n%+v\nvs\n%+v", b, a)
		}
	})
	t.Run("Fig4", func(t *testing.T) {
		sc := fig4Quick()
		sc.Seeds = []uint64{1, 2, 3}
		sc.Workers = 1
		pc := sc
		pc.Workers = 0
		a, err := RunFig4(ctx, sc)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunFig4(ctx, pc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatal("parallel Fig4 replicates diverged from serial")
		}
	})
}

// Every sweep must refuse to start under an already-cancelled context.
func TestSweepsCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := quickConfig()
	if _, err := c.RunFig3(ctx, []ProtocolID{QLEC}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Fig3: %v", err)
	}
	if _, err := c.RunKSweep(ctx, QLEC, []int{3}, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("k-sweep: %v", err)
	}
	if _, err := c.RunNSweep(ctx, QLEC, []int{50}, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("n-sweep: %v", err)
	}
	if _, err := RunFig4(ctx, fig4Quick()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Fig4: %v", err)
	}
	if _, err := c.RunOne(ctx, QLEC, 4, 1, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunOne: %v", err)
	}
}

// Cancelling mid-sweep (from the progress callback, after the first
// cell lands) must surface ctx.Err() rather than hanging or reporting
// success.
func TestSweepCancelMidway(t *testing.T) {
	c := quickConfig()
	c.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Progress = func(done, total int) {
		if done == 1 {
			cancel()
		}
	}
	if _, err := c.RunFig3(ctx, []ProtocolID{QLEC, KMeans}); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-sweep cancel returned %v", err)
	}
}

// RunFig3 must report every failed cell, not just the first.
func TestRunFig3ReportsAllFailures(t *testing.T) {
	c := quickConfig()
	c.Workers = 2
	_, err := c.RunFig3(context.Background(), []ProtocolID{"bogus-a", "bogus-b"})
	if err == nil {
		t.Fatal("bogus protocols accepted")
	}
	msg := err.Error()
	for _, want := range []string{"bogus-a", "bogus-b"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error hides failed cell %q:\n%s", want, msg)
		}
	}
	// Every failed cell is reported (2 protocols × 2 λ × 2 seeds).
	cells := 2 * len(c.Lambdas) * len(c.Seeds)
	if n := strings.Count(msg, "seed="); n != cells {
		t.Fatalf("%d cells reported, want %d:\n%s", n, cells, msg)
	}
}

// Fig4 replication: Seeds fans out across replicates, the summaries
// cover every replicate, and the primary payload is the first seed's.
func TestRunFig4Replicates(t *testing.T) {
	cfg := fig4Quick()
	cfg.Seeds = []uint64{1, 2, 3}
	res, err := RunFig4(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]struct{ n int }{
		"BinnedCV": {res.BinnedCVStats.N},
		"Gini":     {res.GiniStats.N},
		"MoranI":   {res.MoranIStats.N},
	} {
		if s.n != 3 {
			t.Fatalf("%s summarized over %d replicates, want 3", name, s.n)
		}
	}
	// Primary payload is the first seed's replicate.
	first := cfg
	first.Seeds = []uint64{1}
	single, err := RunFig4(context.Background(), first)
	if err != nil {
		t.Fatal(err)
	}
	if res.BinnedCV != single.BinnedCV || res.Gini != single.Gini || res.MoranI != single.MoranI {
		t.Fatalf("primary replicate not seed 1: %+v vs %+v",
			res.BinnedCV, single.BinnedCV)
	}
	if single.GiniStats.N != 1 {
		t.Fatalf("single-seed stats N = %d", single.GiniStats.N)
	}
}

// Sweep progress callbacks see every completion and end at total/total.
func TestSweepProgress(t *testing.T) {
	c := quickConfig()
	var mu sync.Mutex
	var last, total int
	calls := 0
	c.Progress = func(d, tot int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		last, total = d, tot
	}
	if _, err := c.RunKSweep(context.Background(), QLEC, []int{3, 8}, 3); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := 2 * len(quickConfig().Seeds)
	if calls != want || last != want || total != want {
		t.Fatalf("progress calls=%d last=%d/%d, want %d", calls, last, total, want)
	}
}
