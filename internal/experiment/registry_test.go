package experiment

import (
	"context"
	"reflect"
	"testing"
)

// The registry is the single source of truth for protocol ids; these
// tests pin the derived views the rest of the repo builds on.

func TestAllProtocolsDeterministicOrder(t *testing.T) {
	// The exact roster in registry (Order, ID) rank: the legacy nine in
	// their historical order, then the two related-work competitors.
	want := []ProtocolID{
		QLEC, FCM, KMeans, LEACH, DEECNearest, QLECNoFloor, QLECNoRR,
		DEECPlain, Direct, TDEEC, QLEACH,
	}
	first := AllProtocols()
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("AllProtocols() = %v, want %v", first, want)
	}
	// Deterministic across calls (ordering feeds report layouts and
	// canonical request hashing).
	for i := 0; i < 10; i++ {
		if got := AllProtocols(); !reflect.DeepEqual(got, first) {
			t.Fatalf("AllProtocols() call %d = %v, differs from first %v", i, got, first)
		}
	}
}

func TestPaperProtocolsDeriveFromFigure3Ranks(t *testing.T) {
	want := []ProtocolID{QLEC, FCM, KMeans}
	if got := PaperProtocols(); !reflect.DeepEqual(got, want) {
		t.Fatalf("PaperProtocols() = %v, want %v", got, want)
	}
}

func TestCompetitorProtocolsExcludeAblations(t *testing.T) {
	got := CompetitorProtocols()
	for _, id := range []ProtocolID{DEECNearest, QLECNoFloor, QLECNoRR} {
		for _, g := range got {
			if g == id {
				t.Errorf("ablation %s listed as competitor", id)
			}
		}
	}
	want := []ProtocolID{QLEC, FCM, KMeans, LEACH, DEECPlain, Direct, TDEEC, QLEACH}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CompetitorProtocols() = %v, want %v", got, want)
	}
}

func TestKnownProtocolResolvesAliases(t *testing.T) {
	cases := map[ProtocolID]bool{
		QLEC:     true,
		"qlec":   true, // case-insensitive
		"kmeans": true, // alias
		"tdeec":  true,
		"nope":   false,
		"":       false,
	}
	for id, want := range cases {
		if got := KnownProtocol(id); got != want {
			t.Errorf("KnownProtocol(%q) = %v, want %v", id, got, want)
		}
	}
	if got := CanonicalProtocol("kmeans"); got != KMeans {
		t.Fatalf("CanonicalProtocol(kmeans) = %q, want %q", got, KMeans)
	}
	if got := CanonicalProtocol("nope"); got != "nope" {
		t.Fatalf("CanonicalProtocol passes unknown through, got %q", got)
	}
}

func TestBuildProtocolUnknownID(t *testing.T) {
	c := PaperConfig()
	if _, err := c.RunOne(context.Background(), "no-such-protocol", 4, 1, false); err == nil {
		t.Fatal("RunOne with unknown protocol succeeded")
	}
}
