package experiment

import (
	"fmt"
	"sort"

	"qlec/internal/plot"
)

// fig3Chart assembles one Figure 3 panel from sweep results using the
// given point accessor. The x-axis is offered load 1/λ (packets per
// second per node), so "more congested" reads left→right as in the
// paper's prose.
func fig3Chart(results []SweepResult, title, ylabel string, value func(SweepPoint) float64) (*plot.Chart, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("experiment: no sweep results")
	}
	// Shared, ascending x-axis of offered load.
	base := results[0].Points
	x := make([]float64, len(base))
	order := make([]int, len(base))
	for i := range base {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return 1/base[order[a]].Lambda < 1/base[order[b]].Lambda
	})
	for i, idx := range order {
		x[i] = 1 / base[idx].Lambda
	}
	chart := &plot.Chart{
		Title:  title,
		XLabel: "offered load 1/λ (pkt/s per node)",
		YLabel: ylabel,
		X:      x,
	}
	for _, sr := range results {
		if len(sr.Points) != len(base) {
			return nil, fmt.Errorf("experiment: protocol %s has %d points, want %d",
				sr.Protocol, len(sr.Points), len(base))
		}
		y := make([]float64, len(order))
		for i, idx := range order {
			y[i] = value(sr.Points[idx])
		}
		chart.Series = append(chart.Series, plot.Series{Name: string(sr.Protocol), Y: y})
	}
	return chart, nil
}

// Fig3aChart builds the packet-delivery-rate panel.
func Fig3aChart(results []SweepResult) (*plot.Chart, error) {
	return fig3Chart(results, "Figure 3(a): Packet Delivery Rate", "PDR",
		func(p SweepPoint) float64 { return p.PDR.Mean })
}

// Fig3bChart builds the total-energy panel.
func Fig3bChart(results []SweepResult) (*plot.Chart, error) {
	return fig3Chart(results, "Figure 3(b): Total Energy Consumption (20 rounds)", "Joules",
		func(p SweepPoint) float64 { return p.EnergyJ.Mean })
}

// Fig3cChart builds the lifespan panel.
func Fig3cChart(results []SweepResult) (*plot.Chart, error) {
	return fig3Chart(results, "Figure 3(c): Network Lifespan", "rounds to first death",
		func(p SweepPoint) float64 { return p.Lifespan.Mean })
}

// LatencyChart builds the transmission-latency series the paper claims
// in §1 but never plots. It uses member→head *access* latency: for
// hold-and-burst protocols end-to-end delay is dominated by the fixed
// round length (fused data leaves at round end per Algorithm 1), so
// access latency is the component the routing algorithm controls and
// the only cross-protocol-comparable one.
func LatencyChart(results []SweepResult) (*plot.Chart, error) {
	return fig3Chart(results, "Supplementary: Mean Transmission (Access) Latency", "seconds",
		func(p SweepPoint) float64 { return p.Access.Mean })
}

// Fig3Table renders the sweep as a paper-style text table with 95 % CI
// half-widths from the seed replication.
func Fig3Table(results []SweepResult) string {
	headers := []string{"protocol", "λ (s)", "PDR", "±", "energy (J)", "±", "lifespan (rounds)", "±", "access lat (s)", "e2e lat (s)"}
	var rows [][]string
	for _, sr := range results {
		for _, p := range sr.Points {
			rows = append(rows, []string{
				string(sr.Protocol),
				fmt.Sprintf("%g", p.Lambda),
				fmt.Sprintf("%.4f", p.PDR.Mean),
				fmt.Sprintf("%.4f", p.PDR.CI95HalfWidth()),
				fmt.Sprintf("%.3f", p.EnergyJ.Mean),
				fmt.Sprintf("%.3f", p.EnergyJ.CI95HalfWidth()),
				fmt.Sprintf("%.1f", p.Lifespan.Mean),
				fmt.Sprintf("%.1f", p.Lifespan.CI95HalfWidth()),
				fmt.Sprintf("%.4f", p.Access.Mean),
				fmt.Sprintf("%.3f", p.Latency.Mean),
			})
		}
	}
	return plot.Table(headers, rows)
}

// KSweepChart builds the k-sensitivity figure (PDR vs cluster count).
func KSweepChart(points []KSweepPoint, protocol ProtocolID, lambda float64) (*plot.Chart, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("experiment: empty k sweep")
	}
	x := make([]float64, len(points))
	pdr := make([]float64, len(points))
	life := make([]float64, len(points))
	for i, p := range points {
		x[i] = float64(p.K)
		pdr[i] = p.PDR.Mean
		life[i] = p.Lifespan.Mean
	}
	// Normalize lifespan into [0,1] so both series share an axis.
	maxLife := 0.0
	for _, l := range life {
		if l > maxLife {
			maxLife = l
		}
	}
	if maxLife > 0 {
		for i := range life {
			life[i] /= maxLife
		}
	}
	return &plot.Chart{
		Title:  fmt.Sprintf("k-sensitivity: %s at λ=%g s (lifespan normalized to max)", protocol, lambda),
		XLabel: "cluster count k",
		YLabel: "PDR / normalized lifespan",
		X:      x,
		Series: []plot.Series{
			{Name: "PDR", Y: pdr},
			{Name: "lifespan (norm.)", Y: life},
		},
	}, nil
}

// KSweepTable renders the sweep as text.
func KSweepTable(points []KSweepPoint) string {
	headers := []string{"k", "PDR", "±", "energy (J)", "±", "lifespan (rounds)", "±"}
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.K),
			fmt.Sprintf("%.4f", p.PDR.Mean),
			fmt.Sprintf("%.4f", p.PDR.CI95HalfWidth()),
			fmt.Sprintf("%.3f", p.EnergyJ.Mean),
			fmt.Sprintf("%.3f", p.EnergyJ.CI95HalfWidth()),
			fmt.Sprintf("%.1f", p.Lifespan.Mean),
			fmt.Sprintf("%.1f", p.Lifespan.CI95HalfWidth()),
		})
	}
	return plot.Table(headers, rows)
}

// NSweepTable renders the scalability sweep as text.
func NSweepTable(points []NSweepPoint) string {
	headers := []string{"N", "k", "PDR", "±", "J/node", "±", "lifespan (rounds)", "±"}
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.N),
			fmt.Sprintf("%d", p.K),
			fmt.Sprintf("%.4f", p.PDR.Mean),
			fmt.Sprintf("%.4f", p.PDR.CI95HalfWidth()),
			fmt.Sprintf("%.4f", p.EnergyPerNode.Mean),
			fmt.Sprintf("%.4f", p.EnergyPerNode.CI95HalfWidth()),
			fmt.Sprintf("%.1f", p.Lifespan.Mean),
			fmt.Sprintf("%.1f", p.Lifespan.CI95HalfWidth()),
		})
	}
	return plot.Table(headers, rows)
}

// Fig4Summary renders the large-scale result's scalar statistics. With
// more than one replicate seed, the evenness rows show mean ± 95% CI
// across replicates instead of the primary run's scalars.
func Fig4Summary(r *Fig4Result) string {
	headers := []string{"metric", "value", "interpretation"}
	cv := fmt.Sprintf("%.4f", r.BinnedCV)
	gini := fmt.Sprintf("%.4f", r.Gini)
	moran := fmt.Sprintf("%.4f", r.MoranI)
	if r.BinnedCVStats.N > 1 {
		cv = fmt.Sprintf("%.4f ±%.4f (n=%d)", r.BinnedCVStats.Mean, r.BinnedCVStats.CI95HalfWidth(), r.BinnedCVStats.N)
		gini = fmt.Sprintf("%.4f ±%.4f (n=%d)", r.GiniStats.Mean, r.GiniStats.CI95HalfWidth(), r.GiniStats.N)
		moran = fmt.Sprintf("%.4f ±%.4f (n=%d)", r.MoranIStats.Mean, r.MoranIStats.CI95HalfWidth(), r.MoranIStats.N)
	}
	rows := [][]string{
		{"nodes", fmt.Sprintf("%d", r.Net.N()), "paper: 2896 (China subset)"},
		{"clusters k", fmt.Sprintf("%d", r.K), "paper: k_opt = 272"},
		{"PDR", fmt.Sprintf("%.4f", r.Run.PDR()), "delivery over the run"},
		{"total energy (J)", fmt.Sprintf("%.2f", float64(r.Run.TotalEnergy)), ""},
		{"consumption CV (binned)", cv, "lower = spatially even"},
		{"consumption Gini", gini, "0 = perfectly even"},
		{"Moran's I", moran, "≈0 = no hot spots"},
	}
	return plot.Table(headers, rows)
}

// Fig4Heatmap builds the consumption-rate map (the paper's Figure 4
// scatter, projected for terminals).
func Fig4Heatmap(r *Fig4Result, cols, rows int) *plot.Heatmap {
	return &plot.Heatmap{
		Title:  "Figure 4: energy consumption rate (consumed/initial) after QLEC clustering",
		Box:    r.Net.Box,
		Cols:   cols,
		Rows:   rows,
		Points: r.Field.Points,
		Values: r.Field.Values,
	}
}
