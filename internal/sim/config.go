// Package sim is the discrete-event wireless-network simulator that all
// protocol comparisons in the reproduction run on.
//
// The paper's round structure (§4, §5.1) is the outer loop: each round a
// protocol selects cluster heads, member nodes generate sensing packets
// with Poisson-process timing ("the packet generation time in the network
// follows the poisson distribution", §5.2) and forward them to heads of
// the protocol's choosing; heads fuse received data (50 % compression,
// Table 2) and deliver it to the base station. Inside a round, packet
// transmission, ACKs, retries, head-queue service and overflow run on an
// event heap so that congestion — the force that bends Figure 3(a) — is
// produced by actual queueing rather than assumed.
//
// Everything protocol-independent (radio energy, link loss, queue
// capacities, timing) is identical across protocols; measured differences
// are attributable to the clustering/routing algorithms alone.
package sim

import (
	"fmt"

	"qlec/internal/energy"
)

// Config holds the protocol-independent simulation parameters.
type Config struct {
	// Bits is the sensing-packet payload size L in bits.
	Bits int
	// HelloBits sizes control messages (head advertisements).
	HelloBits int
	// MeanInterArrival is λ: the mean seconds between packet generations
	// per node. "The smaller λ is, the more congested the network is"
	// (§5.2).
	MeanInterArrival float64
	// RoundDuration is the length of one round in seconds.
	RoundDuration float64
	// QueueCapacity bounds each cluster head's packet cache ("limited
	// storage caches of cluster heads may lead to packet loss", §4.2).
	QueueCapacity int
	// ServiceTime is the per-packet fusion time at a head, in seconds;
	// it sets the service rate that arrivals race against.
	ServiceTime float64
	// BSQueueCapacity bounds the base station's receive buffer for
	// packets sent to it during a round (direct-to-BS traffic and the
	// FCM hierarchy's terminal hops). The BS is mains-powered but its
	// receiver pipeline is finite — the paper's reason for penalizing
	// direct transmission is that it "will aggravate the burden of the
	// base station" (§4.2). End-of-round aggregated bursts (one frame
	// per head) bypass the queue.
	BSQueueCapacity int
	// BSServiceTime is the BS's per-packet processing time in seconds.
	BSServiceTime float64
	// MaxRetries is how many times a member retransmits an unACKed
	// packet (each retry re-asks the protocol for a target, which is
	// where QLEC's rerouting pays off).
	MaxRetries int
	// BatchRetries is how many times a head retries its end-of-round
	// aggregated burst toward the base station.
	BatchRetries int
	// Compression is the data-fusion compression ratio at heads
	// (Table 2: 50 %).
	Compression float64
	// DeathLine is the residual-energy threshold below which a node
	// counts as dead (§5.1).
	DeathLine energy.Joules
	// StopOnDeath ends the run at the end of the round in which the
	// first node dies (lifespan measurements, Fig. 3c).
	StopOnDeath bool
	// BitRate is the radio bit rate in bits/second (transmission delay =
	// Bits/BitRate).
	BitRate float64
	// LinkPMax is the link success probability at zero distance.
	LinkPMax float64
	// LinkRef is the distance scale of link degradation:
	// p(d) = LinkPMax · exp(−(d/LinkRef)²).
	LinkRef float64
	// MobilitySpeedMin/MobilitySpeedMax enable random-waypoint node
	// mobility (m/s): positions advance by RoundDuration between rounds,
	// the paper's §3.1 motivation for re-running head selection every
	// round. Both zero (the default) keeps the network static.
	MobilitySpeedMin float64
	MobilitySpeedMax float64
	// MobilityPause is the dwell time at each waypoint in seconds.
	MobilityPause float64
	// ContentionGamma enables interference-driven link degradation: a
	// transmission resolving while m other transmissions are in flight
	// succeeds with probability scaled by exp(−γ·m) — a coarse CSMA-less
	// collision model. Congestion then hurts twice, through queue
	// overflow and through the channel itself. Zero disables.
	ContentionGamma float64
	// ShadowSigma enables log-normal per-link shadowing: each directed
	// link gets a persistent quality factor exp(σZ − σ²/2) (mean 1,
	// Z ~ N(0,1), drawn deterministically from the seed) multiplying its
	// success probability. This is the "poor communication environment"
	// of §4.2 made persistent: some links are just bad, and a protocol
	// that learns link quality from ACKs (QLEC) can route around them
	// while static assignments (k-means) cannot. Zero disables.
	ShadowSigma float64
	// RetryBackoff is the delay before a retransmission, in seconds.
	RetryBackoff float64
	// DisableControlTraffic turns off the per-round HELLO/advertisement
	// energy overhead (used by ablations isolating data-plane costs).
	DisableControlTraffic bool
	// ClusterWorkers enables the parallel round kernel: values ≥ 2 let
	// the engine simulate independent clusters on that many goroutines
	// between CH-selection barriers, for protocols whose routing is a
	// fixed member→head map for the whole round (cluster.StaticRouter,
	// HoldAndBurst). Results are deterministic for any worker count but
	// not bit-identical to the serial schedule (cross-cluster event
	// interleaving, and therefore link-draw and float-accumulation
	// order, differs — see DESIGN.md §13). 0 or 1 (the default) keeps
	// the byte-exact serial kernel. Rounds with a tracer, an auditor,
	// contention, shadowing, or a learning protocol fall back to serial
	// automatically.
	ClusterWorkers int
	// Seed drives all simulator randomness (traffic timing, link draws).
	Seed uint64
}

// DefaultConfig returns the paper's Table 2 settings plus standard
// 802.15.4-flavoured values for the constants the paper leaves
// unspecified.
func DefaultConfig() Config {
	return Config{
		Bits:             4000,
		HelloBits:        200,
		MeanInterArrival: 4,
		RoundDuration:    20,
		QueueCapacity:    24,
		// 0.1 s per packet = 10 pkt/s per head. With the paper's N=100,
		// k=5, the λ ∈ {8,4,2,1} sweep then offers {2.5,5,10,20} pkt/s
		// per head — idle, half-loaded, saturated, overloaded — which is
		// the congestion range Figure 3 spans.
		ServiceTime:     0.1,
		BSQueueCapacity: 64,
		BSServiceTime:   0.02, // 50 pkt/s: fast, not infinite
		MaxRetries:      3,
		BatchRetries:    5,
		Compression:     0.5,
		DeathLine:       0,
		BitRate:         250e3,
		LinkPMax:        0.99,
		LinkRef:         400,
		RetryBackoff:    0.05,
		Seed:            1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Bits <= 0 {
		return fmt.Errorf("sim: Bits must be positive, got %d", c.Bits)
	}
	if c.HelloBits < 0 {
		return fmt.Errorf("sim: HelloBits must be non-negative, got %d", c.HelloBits)
	}
	if !(c.MeanInterArrival > 0) {
		return fmt.Errorf("sim: MeanInterArrival must be positive, got %v", c.MeanInterArrival)
	}
	if !(c.RoundDuration > 0) {
		return fmt.Errorf("sim: RoundDuration must be positive, got %v", c.RoundDuration)
	}
	if c.QueueCapacity < 1 {
		return fmt.Errorf("sim: QueueCapacity must be at least 1, got %d", c.QueueCapacity)
	}
	if !(c.ServiceTime >= 0) {
		return fmt.Errorf("sim: ServiceTime must be non-negative, got %v", c.ServiceTime)
	}
	if c.BSQueueCapacity < 1 {
		return fmt.Errorf("sim: BSQueueCapacity must be at least 1, got %d", c.BSQueueCapacity)
	}
	if !(c.BSServiceTime >= 0) {
		return fmt.Errorf("sim: BSServiceTime must be non-negative, got %v", c.BSServiceTime)
	}
	if c.MaxRetries < 0 || c.BatchRetries < 0 {
		return fmt.Errorf("sim: retry counts must be non-negative")
	}
	if !(c.Compression > 0 && c.Compression <= 1) {
		return fmt.Errorf("sim: Compression must be in (0,1], got %v", c.Compression)
	}
	if c.DeathLine < 0 {
		return fmt.Errorf("sim: DeathLine must be non-negative, got %v", c.DeathLine)
	}
	if !(c.BitRate > 0) {
		return fmt.Errorf("sim: BitRate must be positive, got %v", c.BitRate)
	}
	if !(c.LinkPMax > 0 && c.LinkPMax <= 1) {
		return fmt.Errorf("sim: LinkPMax must be in (0,1], got %v", c.LinkPMax)
	}
	if !(c.LinkRef > 0) {
		return fmt.Errorf("sim: LinkRef must be positive, got %v", c.LinkRef)
	}
	if c.ContentionGamma < 0 {
		return fmt.Errorf("sim: ContentionGamma must be non-negative, got %v", c.ContentionGamma)
	}
	if c.ShadowSigma < 0 {
		return fmt.Errorf("sim: ShadowSigma must be non-negative, got %v", c.ShadowSigma)
	}
	if c.MobilitySpeedMin < 0 || c.MobilitySpeedMax < c.MobilitySpeedMin {
		return fmt.Errorf("sim: invalid mobility speed range [%v, %v]",
			c.MobilitySpeedMin, c.MobilitySpeedMax)
	}
	if c.MobilityPause < 0 {
		return fmt.Errorf("sim: negative mobility pause %v", c.MobilityPause)
	}
	if c.RetryBackoff < 0 {
		return fmt.Errorf("sim: RetryBackoff must be non-negative, got %v", c.RetryBackoff)
	}
	if c.ClusterWorkers < 0 {
		return fmt.Errorf("sim: ClusterWorkers must be non-negative, got %d", c.ClusterWorkers)
	}
	return nil
}

// TxDelay returns the serialization delay of a payload of the given size.
func (c Config) TxDelay(bits int) float64 {
	return float64(bits) / c.BitRate
}
