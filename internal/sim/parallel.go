package sim

import (
	"sync"
	"sync/atomic"

	"qlec/internal/cluster"
	"qlec/internal/network"
	"qlec/internal/packet"
	"qlec/internal/rng"
)

// parallelEligible reports whether the current round may run on the
// parallel cluster-lane kernel. The partition argument — lanes share no
// mutable state — only holds when:
//
//   - the protocol's routing is a fixed member→target map for the round
//     (cluster.StaticRouter) and heads hold fused data for the
//     end-of-round burst (HoldAndBurst), so no packet ever crosses from
//     one cluster's node set into another's;
//   - no tracer or auditor is installed (both contract a single caller
//     goroutine and a globally ordered event stream);
//   - contention is off (the in-flight count would be global) and
//     shadowing is off (the factor cache fills lazily, a write race).
func (e *Engine) parallelEligible() bool {
	if e.cfg.ClusterWorkers < 2 || e.tracer != nil || e.auditor != nil ||
		e.cfg.ContentionGamma > 0 || e.shadow != nil {
		return false
	}
	if e.proto.RelayMode() != cluster.HoldAndBurst {
		return false
	}
	_, ok := e.proto.(cluster.StaticRouter)
	return ok
}

// runLanesParallel executes the round's event loop on one lane per
// cluster plus a base-station lane, spread over Config.ClusterWorkers
// goroutines. Lane 0 owns the BS queue and every node whose static hop
// is the BS; lane 1+i owns heads[i] and its members. Each lane runs its
// own heap, clock, and metric sinks; the sinks merge into the engine's
// accumulators in lane-index order after the barrier, which is what
// makes the result deterministic for any worker count.
func (e *Engine) runLanesParallel(heads []int, roundStart, roundEnd float64) {
	hops := e.proto.(cluster.StaticRouter).StaticHops()
	n := e.net.N()
	if e.nodeLink == nil {
		// Per-node link sub-streams, drawn instead of the shared serial
		// stream so the sequence each transmitter sees is independent of
		// cross-cluster interleaving. Derived from the seed once and
		// persisted: a node's stream advances identically however the
		// lanes are scheduled.
		e.nodeLink = rng.NewNamed(e.cfg.Seed, "sim/link-node").SplitN(n)
	}
	need := len(heads) + 1
	for len(e.lanes) < need {
		e.lanes = append(e.lanes, &lane{e: e})
	}
	if cap(e.sinks) < need {
		e.sinks = make([]laneSinks, need)
	}
	sinks := e.sinks[:need]
	if cap(e.laneOf) < n {
		e.laneOf = make([]int32, n)
	}
	laneOf := e.laneOf[:n]
	for i := range laneOf {
		laneOf[i] = 0
	}
	for i, h := range heads {
		laneOf[h] = int32(i + 1)
	}
	for i := 0; i < need; i++ {
		l := e.lanes[i]
		// Every lane numbers its packets from the same base: ids are only
		// observable through the tracer and auditor, both of which force
		// the serial kernel, so cross-lane collisions are invisible. The
		// engine's counter advances by the round's total generation count
		// after the merge.
		l.reset(roundStart, hops, e.nextPkt)
		sinks[i] = laneSinks{}
		s := &sinks[i]
		l.round, l.breakdown = &s.round, &s.breakdown
		l.latency, l.access = &s.latency, &s.access
		l.hopsAcc, l.roundLat = &s.hopsAcc, &s.roundLat
	}
	// Partition the alive nodes: a head joins its own cluster's lane, a
	// member its target head's; direct-to-BS traffic lands on lane 0,
	// the only lane allowed to touch the BS queue. Nodes dead at round
	// start join no lane (the serial schedule drew no traffic for them
	// either).
	for id := range e.net.Nodes {
		if !e.alive(id) {
			continue
		}
		li := int32(0)
		if e.isHead[id] {
			li = laneOf[id]
		} else if t := hops[id]; t != network.BSID {
			li = laneOf[t]
		}
		l := e.lanes[li]
		l.nodes = append(l.nodes, int32(id))
	}

	workers := e.cfg.ClusterWorkers
	if workers > need {
		workers = need
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= need {
					return
				}
				l := e.lanes[i]
				l.buildGen(roundStart, roundEnd)
				l.drain(roundEnd)
				if i == 0 {
					l.drainBS()
				} else {
					l.finishHead(heads[i-1])
				}
			}
		}()
	}
	wg.Wait()

	// Merge in lane-index order: float accumulation order is then a
	// function of the head list alone, never of goroutine scheduling.
	generated := 0
	for i := 0; i < need; i++ {
		s := &sinks[i]
		e.round.Generated += s.round.Generated
		e.round.Delivered += s.round.Delivered
		for j, d := range s.round.Dropped {
			e.round.Dropped[j] += d
		}
		e.breakdown.Tx += s.breakdown.Tx
		e.breakdown.Rx += s.breakdown.Rx
		e.breakdown.Fusion += s.breakdown.Fusion
		e.breakdown.Control += s.breakdown.Control
		e.latency.Merge(s.latency)
		e.access.Merge(s.access)
		e.hops.Merge(s.hopsAcc)
		e.roundLat.Merge(s.roundLat)
		generated += s.round.Generated
	}
	e.nextPkt += packet.ID(generated)
}
