package sim

// Failure-injection tests: the engine must stay correct (conservation,
// accounting, termination) under hostile conditions — terrible links,
// self-looping protocols, heads dying mid-round, zero service capacity.

import (
	"context"
	"math"
	"testing"

	"qlec/internal/cluster"
	"qlec/internal/energy"
	"qlec/internal/network"
	"qlec/internal/rng"
)

func TestTerribleLinksLoseMostPacketsButConserveEnergy(t *testing.T) {
	w := paperNet(t, 20)
	proto := &stubProtocol{net: w, heads: []int{10, 30, 50}}
	cfg := DefaultConfig()
	cfg.LinkPMax = 0.05 // 95 % of attempts fail at point blank
	e, _ := NewEngine(w, proto, energy.DefaultModel(), cfg)
	res, err := e.Run(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.PDR() > 0.2 {
		t.Fatalf("PDR %v with 5%% links", res.PDR())
	}
	if res.Dropped[0] == 0 { // DropLink
		t.Fatal("no link drops recorded")
	}
	total := float64(w.TotalResidual() + w.TotalConsumed())
	if math.Abs(total-float64(w.InitialTotalEnergy())) > 1e-9 {
		t.Fatal("energy not conserved under failure storm")
	}
}

// selfLoopProtocol routes everyone to themselves — a worst-case buggy
// protocol. The engine must neither livelock nor deliver anything.
type selfLoopProtocol struct{ n int }

func (p *selfLoopProtocol) Name() string                        { return "self-loop" }
func (p *selfLoopProtocol) StartRound(round int) []int          { return []int{0} }
func (p *selfLoopProtocol) NextHop(node int) int                { return node }
func (p *selfLoopProtocol) OnOutcome(node, target int, ok bool) {}
func (p *selfLoopProtocol) EndRound(round int)                  {}
func (p *selfLoopProtocol) RelayMode() cluster.RelayMode        { return cluster.HoldAndBurst }

func TestSelfLoopProtocolTerminates(t *testing.T) {
	w := paperNet(t, 21)
	cfg := DefaultConfig()
	cfg.MeanInterArrival = 5
	e, _ := NewEngine(w, &selfLoopProtocol{n: w.N()}, energy.DefaultModel(), cfg)
	res, err := e.Run(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	// Node 0 is a head routing to itself at distance zero: its own
	// packets enter its queue; everyone else transmits to themselves
	// (no queue) and drops after retries.
	if res.PDR() > 0.2 {
		t.Fatalf("self-loop protocol delivered PDR %v", res.PDR())
	}
}

// cycleProtocol builds a two-head relay cycle under ForwardPerPacket;
// the engine's hop guard must cut it.
type cycleProtocol struct{ net *network.Network }

func (p *cycleProtocol) Name() string               { return "cycle" }
func (p *cycleProtocol) StartRound(round int) []int { return []int{1, 2} }
func (p *cycleProtocol) NextHop(node int) int {
	switch node {
	case 1:
		return 2
	case 2:
		return 1
	default:
		return 1
	}
}
func (p *cycleProtocol) OnOutcome(node, target int, ok bool) {}
func (p *cycleProtocol) EndRound(round int)                  {}
func (p *cycleProtocol) RelayMode() cluster.RelayMode        { return cluster.ForwardPerPacket }

func TestRelayCycleIsCutByHopGuard(t *testing.T) {
	w := paperNet(t, 22)
	cfg := DefaultConfig()
	cfg.MeanInterArrival = 8
	e, _ := NewEngine(w, &cycleProtocol{net: w}, energy.DefaultModel(), cfg)
	res, err := e.Run(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 {
		t.Fatalf("cyclic relay delivered %d packets", res.Delivered)
	}
}

func TestHeadDyingMidRoundStrandsQueue(t *testing.T) {
	w := paperNet(t, 23)
	// Head 10 has just enough charge to accept a few packets before the
	// death line cuts it off.
	drained := w.Nodes[10].Battery
	drained.Draw(drained.Residual() - 0.002)
	proto := &stubProtocol{net: w, heads: []int{10}}
	proto.hops = map[int]int{}
	for id := 0; id < w.N(); id++ {
		if id != 10 {
			proto.hops[id] = 10
		}
	}
	cfg := DefaultConfig()
	cfg.DeathLine = 0.001
	cfg.MeanInterArrival = 2
	e, _ := NewEngine(w, proto, energy.DefaultModel(), cfg)
	res, err := e.Run(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	// The head dies early; nearly everything is lost, nothing panics,
	// and at least some loss is attributed to the dead head.
	if res.PDR() > 0.5 {
		t.Fatalf("PDR %v through a dying head", res.PDR())
	}
}

func TestZeroServiceTimeIsInstantFusion(t *testing.T) {
	w := paperNet(t, 24)
	proto := &stubProtocol{net: w, heads: []int{10, 30, 50, 70, 90}}
	cfg := DefaultConfig()
	cfg.ServiceTime = 0 // infinitely fast heads: queue never the bottleneck
	cfg.MeanInterArrival = 1
	e, _ := NewEngine(w, proto, energy.DefaultModel(), cfg)
	res, err := e.Run(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped[1] != 0 { // DropQueue
		t.Fatalf("queue drops with zero service time: %d", res.Dropped[1])
	}
	if res.PDR() < 0.95 {
		t.Fatalf("PDR %v with infinite service capacity", res.PDR())
	}
}

func TestAllNodesDeadFromStart(t *testing.T) {
	w := paperNet(t, 25)
	for _, n := range w.Nodes {
		n.Battery.Draw(5)
	}
	proto := &stubProtocol{net: w}
	e, _ := NewEngine(w, proto, energy.DefaultModel(), DefaultConfig())
	res, err := e.Run(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != 0 || res.TotalEnergy != 0 {
		t.Fatalf("dead network generated %d packets, consumed %v",
			res.Generated, res.TotalEnergy)
	}
}

func TestBatchBurstFailureAccountsAllPackets(t *testing.T) {
	w := paperNet(t, 26)
	proto := &stubProtocol{net: w, heads: []int{10}}
	cfg := DefaultConfig()
	cfg.LinkPMax = 1e-9 // in-round hops fail too, but at d=0 self-queue works
	cfg.BatchRetries = 1
	cfg.MeanInterArrival = 4
	e, _ := NewEngine(w, proto, energy.DefaultModel(), cfg)
	res, err := e.Run(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	// The head's own packets reach its queue without radio; the burst
	// then fails, so they must be counted as batch drops, not lost.
	if res.Dropped[2] == 0 { // DropBatch
		t.Fatal("no batch drops under hopeless links")
	}
	if res.Delivered != 0 {
		t.Fatalf("delivered %d with hopeless links", res.Delivered)
	}
}

// Property-flavoured stress: random small configs must always satisfy
// the conservation and accounting invariants.
func TestRandomConfigsKeepInvariants(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 25; trial++ {
		n := 10 + r.Intn(40)
		w, err := network.Deploy(network.Deployment{
			N: n, Side: 50 + float64(r.Intn(300)), InitialEnergy: energy.Joules(0.5 + r.Float64()*5),
		}, rng.New(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		var heads []int
		for h := 0; h < 1+r.Intn(4); h++ {
			heads = append(heads, r.Intn(n))
		}
		heads = dedupe(heads)
		proto := &stubProtocol{net: w, heads: heads}
		cfg := DefaultConfig()
		cfg.MeanInterArrival = 0.5 + r.Float64()*8
		cfg.QueueCapacity = 1 + r.Intn(30)
		cfg.ServiceTime = r.Float64()
		cfg.MaxRetries = r.Intn(4)
		cfg.LinkPMax = 0.2 + 0.79*r.Float64()
		cfg.Seed = uint64(trial * 7)
		e, err := NewEngine(w, proto, energy.DefaultModel(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(context.Background(), 1+r.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		total := float64(w.TotalResidual() + w.TotalConsumed())
		if math.Abs(total-float64(w.InitialTotalEnergy())) > 1e-9 {
			t.Fatalf("trial %d: energy not conserved", trial)
		}
	}
}

func TestShadowingDeterministicAndHeterogeneous(t *testing.T) {
	w := paperNet(t, 40)
	cfg := DefaultConfig()
	cfg.ShadowSigma = 0.8
	e1, _ := NewEngine(w, &stubProtocol{net: w, heads: []int{10}}, energy.DefaultModel(), cfg)
	// Factors are deterministic per (seed, pair) and independent of
	// lookup order.
	f1 := e1.shadowFactor(3, 10)
	f2 := e1.shadowFactor(7, 10)
	e2, _ := NewEngine(w, &stubProtocol{net: w, heads: []int{10}}, energy.DefaultModel(), cfg)
	if e2.shadowFactor(7, 10) != f2 || e2.shadowFactor(3, 10) != f1 {
		t.Fatal("shadow factors depend on lookup order or engine instance")
	}
	// Heterogeneity: with σ=0.8 the factors spread widely.
	lo, hi := math.Inf(1), math.Inf(-1)
	for from := 0; from < 50; from++ {
		f := e1.shadowFactor(from, 10)
		if f <= 0 {
			t.Fatalf("non-positive shadow factor %v", f)
		}
		lo = math.Min(lo, f)
		hi = math.Max(hi, f)
	}
	if hi/lo < 3 {
		t.Fatalf("shadow factors too uniform: [%v, %v]", lo, hi)
	}
}

func TestShadowingDisabledMatchesBaseModel(t *testing.T) {
	w := paperNet(t, 41)
	cfg := DefaultConfig() // ShadowSigma = 0
	e, _ := NewEngine(w, &stubProtocol{net: w, heads: []int{10}}, energy.DefaultModel(), cfg)
	d := e.dist(3, 10)
	want := cfg.LinkPMax * math.Exp(-(d/cfg.LinkRef)*(d/cfg.LinkRef))
	_, pBase := e.main.geom(3, 10)
	if math.Abs(pBase-want) > 1e-12 {
		t.Fatalf("geom base probability = %v, want %v", pBase, want)
	}
	if got := e.main.linkP(3, 10, pBase); math.Abs(got-want) > 1e-12 {
		t.Fatalf("linkP with shadowing off = %v, want %v", got, want)
	}
}

func TestShadowingLowersDelivery(t *testing.T) {
	run := func(sigma float64) float64 {
		w := paperNet(t, 42)
		proto := &stubProtocol{net: w, heads: []int{10, 30, 50, 70, 90}}
		cfg := DefaultConfig()
		cfg.ShadowSigma = sigma
		cfg.MeanInterArrival = 6
		cfg.MaxRetries = 0 // expose raw link quality
		e, _ := NewEngine(w, proto, energy.DefaultModel(), cfg)
		res, err := e.Run(context.Background(), 3)
		if err != nil {
			t.Fatal(err)
		}
		return res.PDR()
	}
	clean := run(0)
	shadowed := run(1.0)
	if shadowed >= clean {
		t.Fatalf("shadowing did not lower delivery: %v vs %v", shadowed, clean)
	}
}

func TestContentionDegradesBusyChannels(t *testing.T) {
	run := func(gamma, lambda float64) float64 {
		w := paperNet(t, 45)
		proto := &stubProtocol{net: w, heads: []int{10, 30, 50, 70, 90}}
		cfg := DefaultConfig()
		cfg.ContentionGamma = gamma
		cfg.MeanInterArrival = lambda
		e, _ := NewEngine(w, proto, energy.DefaultModel(), cfg)
		res, err := e.Run(context.Background(), 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			t.Fatal(err)
		}
		return res.PDR()
	}
	// Heavy traffic: contention must bite.
	busyOff := run(0, 1)
	busyOn := run(0.3, 1)
	if busyOn >= busyOff {
		t.Fatalf("contention did not degrade busy channel: %v vs %v", busyOn, busyOff)
	}
	// Light traffic: nearly no concurrent transmissions, so nearly no
	// effect.
	idleOff := run(0, 20)
	idleOn := run(0.3, 20)
	if idleOff-idleOn > 0.05 {
		t.Fatalf("contention bit an idle channel: %v vs %v", idleOn, idleOff)
	}
}

func TestContentionValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ContentionGamma = -0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative gamma accepted")
	}
}

func TestMobilityMovesNodesBetweenRounds(t *testing.T) {
	w := paperNet(t, 43)
	before := w.Positions()
	proto := &stubProtocol{net: w, heads: []int{10, 30, 50}}
	cfg := DefaultConfig()
	cfg.MobilitySpeedMin = 2
	cfg.MobilitySpeedMax = 5
	e, err := NewEngine(w, proto, energy.DefaultModel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i, p := range w.Positions() {
		if p.Dist(before[i]) > 1 {
			moved++
		}
	}
	if moved < 90 {
		t.Fatalf("only %d/100 nodes moved over 5 rounds of mobility", moved)
	}
	// Everyone stays deployable.
	for i, p := range w.Positions() {
		if !w.Box.Contains(p) && w.Box.Clamp(p).Dist(p) > 1e-9 {
			t.Fatalf("node %d left the box: %v", i, p)
		}
	}
}

func TestStaticConfigKeepsPositions(t *testing.T) {
	w := paperNet(t, 44)
	before := w.Positions()
	proto := &stubProtocol{net: w, heads: []int{10, 30}}
	e, _ := NewEngine(w, proto, energy.DefaultModel(), DefaultConfig())
	if _, err := e.Run(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	for i, p := range w.Positions() {
		if p != before[i] {
			t.Fatalf("node %d moved without mobility configured", i)
		}
	}
}

func TestMobilityConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MobilitySpeedMin = 5
	cfg.MobilitySpeedMax = 2
	if err := cfg.Validate(); err == nil {
		t.Fatal("inverted speed range accepted")
	}
	cfg = DefaultConfig()
	cfg.MobilityPause = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative pause accepted")
	}
	cfg = DefaultConfig()
	cfg.MobilitySpeedMin = -1
	cfg.MobilitySpeedMax = 1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative min speed accepted")
	}
}

func dedupe(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
