package sim

import "qlec/internal/packet"

// eventKind discriminates simulator events.
type eventKind int

const (
	// evGenerate: a node produces a new sensing packet.
	evGenerate eventKind = iota
	// evArrive: a transmission attempt resolves at its target.
	evArrive
	// evRetry: a member retransmits an unACKed packet.
	evRetry
	// evService: a head finishes fusing the packet at its queue's front.
	evService
)

// event is one entry on the simulation clock.
type event struct {
	t    float64
	seq  uint64 // tie-break so equal-time events order deterministically
	kind eventKind

	node    int // generator / retrier / servicing head
	target  int // transmission target (evArrive)
	attempt int // transmission attempt number, 0-based
	pkt     packet.Packet
}

// eventHeap is a binary min-heap on (t, seq). A hand-rolled heap (rather
// than container/heap) keeps the hot path free of interface conversions;
// the simulator pushes and pops millions of events per run.
type eventHeap struct {
	items []event
}

func (h *eventHeap) Len() int { return len(h.items) }

func (h *eventHeap) less(i, j int) bool {
	if h.items[i].t != h.items[j].t {
		return h.items[i].t < h.items[j].t
	}
	return h.items[i].seq < h.items[j].seq
}

// Push inserts an event.
func (h *eventHeap) Push(e event) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

// Pop removes and returns the earliest event. ok is false when empty.
func (h *eventHeap) Pop() (event, bool) {
	if len(h.items) == 0 {
		return event{}, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.items) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top, true
}

// Peek returns the earliest event without removing it.
func (h *eventHeap) Peek() (event, bool) {
	if len(h.items) == 0 {
		return event{}, false
	}
	return h.items[0], true
}

// Reset empties the heap, retaining capacity.
func (h *eventHeap) Reset() { h.items = h.items[:0] }
