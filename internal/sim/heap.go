package sim

import "qlec/internal/packet"

// eventKind discriminates simulator events.
type eventKind int

const (
	// evGenerate: a node produces a new sensing packet.
	evGenerate eventKind = iota
	// evArrive: a transmission attempt resolves at its target.
	evArrive
	// evRetry: a member retransmits an unACKed packet.
	evRetry
	// evService: a head finishes fusing the packet at its queue's front.
	evService
)

// event is one entry on the simulation clock.
type event struct {
	t    float64
	seq  uint64 // tie-break so equal-time events order deterministically
	kind eventKind

	node    int // generator / retrier / servicing head
	target  int // transmission target (evArrive)
	attempt int // transmission attempt number, 0-based
	pkt     packet.Packet
}

// heapEntry is the 24-byte ordering key kept in the heap array proper.
// The full ~90-byte event lives in a side slab and is touched exactly
// twice (once on Push, once on Pop); sift operations move only keys.
// The previous layout sifted whole events, and the resulting struct
// copies (runtime.duffcopy) were the single largest line item in the
// simulator's CPU profile.
type heapEntry struct {
	t   float64
	seq uint64
	idx int32 // slab slot holding the full event
}

// eventHeap is a binary min-heap on (t, seq). A hand-rolled heap (rather
// than container/heap) keeps the hot path free of interface conversions;
// the simulator pushes and pops millions of events per run.
type eventHeap struct {
	entries []heapEntry
	slab    []event
	free    []int32 // recycled slab slots
}

func (h *eventHeap) Len() int { return len(h.entries) }

func (h *eventHeap) less(i, j int) bool {
	if h.entries[i].t != h.entries[j].t {
		return h.entries[i].t < h.entries[j].t
	}
	return h.entries[i].seq < h.entries[j].seq
}

// Push inserts an event.
func (h *eventHeap) Push(e event) {
	var idx int32
	if n := len(h.free); n > 0 {
		idx = h.free[n-1]
		h.free = h.free[:n-1]
		h.slab[idx] = e
	} else {
		h.slab = append(h.slab, e)
		idx = int32(len(h.slab) - 1)
	}
	h.entries = append(h.entries, heapEntry{t: e.t, seq: e.seq, idx: idx})
	i := len(h.entries) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.entries[i], h.entries[parent] = h.entries[parent], h.entries[i]
		i = parent
	}
}

// Pop removes and returns the earliest event. ok is false when empty.
func (h *eventHeap) Pop() (event, bool) {
	var ev event
	ok := h.PopInto(&ev)
	return ev, ok
}

// PopInto removes the earliest event into *ev, reporting whether one
// existed. The drain loop uses it so the ~90-byte event is copied once
// (slab → caller's local) instead of twice through a return value.
func (h *eventHeap) PopInto(ev *event) bool {
	if len(h.entries) == 0 {
		return false
	}
	top := h.entries[0]
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries = h.entries[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.entries) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.entries) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.entries[i], h.entries[smallest] = h.entries[smallest], h.entries[i]
		i = smallest
	}
	*ev = h.slab[top.idx]
	h.free = append(h.free, top.idx)
	return true
}

// Alloc reserves a cleared slab slot for in-place event construction.
// The caller fills the slot's fields and then publishes it with Commit;
// nothing else may touch the heap in between. Building events in the
// slab removes the pass-by-value copies (runtime.duffcopy) that Push
// paid on every scheduled event.
func (h *eventHeap) Alloc() (*event, int32) {
	var idx int32
	if n := len(h.free); n > 0 {
		idx = h.free[n-1]
		h.free = h.free[:n-1]
		h.slab[idx] = event{}
	} else {
		h.slab = append(h.slab, event{})
		idx = int32(len(h.slab) - 1)
	}
	return &h.slab[idx], idx
}

// Commit publishes a slot reserved by Alloc under the (t, seq) ordering
// key. Sift-up moves only 24-byte keys; the slab entry stays put.
func (h *eventHeap) Commit(t float64, seq uint64, idx int32) {
	h.entries = append(h.entries, heapEntry{t: t, seq: seq, idx: idx})
	i := len(h.entries) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.entries[i], h.entries[parent] = h.entries[parent], h.entries[i]
		i = parent
	}
}

// Peek returns the earliest event without removing it.
func (h *eventHeap) Peek() (event, bool) {
	if len(h.entries) == 0 {
		return event{}, false
	}
	return h.slab[h.entries[0].idx], true
}

// PeekT returns the earliest event's time without touching the slab —
// the merge loop against the generation schedule calls this once per
// event.
func (h *eventHeap) PeekT() (float64, bool) {
	if len(h.entries) == 0 {
		return 0, false
	}
	return h.entries[0].t, true
}

// Reset empties the heap, retaining capacity.
func (h *eventHeap) Reset() {
	h.entries = h.entries[:0]
	h.slab = h.slab[:0]
	h.free = h.free[:0]
}

// genPoint is one pre-drawn generation event in the round's flat
// schedule: sorted by (t, node), the same total order the per-node
// cursor heap (and before it, the unbatched engine's seq numbering)
// gave generation traffic. A sorted slice walked by index replaces one
// heap pop+push per generation event with an increment; the sort is a
// single cache-linear pass over 16-byte entries.
type genPoint struct {
	t    float64
	node int32
}

// genLess orders genPoints by (t, node) — the schedule's total order.
func genLess(a, b genPoint) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.node < b.node
}

// sortGen sorts a generation schedule by (t, node). It replaces
// slices.SortFunc in buildGen: the generic sort routes every comparison
// through a closure, and at one sort per lane per round that indirection
// was a measurable slice of the kernel's profile. The algorithm is a
// median-of-three quicksort with an insertion-sort cutoff; any correct
// sort yields the identical schedule (keys repeat only for identical
// (t, node) pairs, which are interchangeable), so this is behavior-
// preserving by construction.
func sortGen(s []genPoint) {
	for len(s) > 16 {
		// Order first/mid/last in place: s[m] becomes the median pivot
		// and the ends become sentinels bounding the inner scans.
		m := (len(s) - 1) / 2
		last := len(s) - 1
		if genLess(s[m], s[0]) {
			s[0], s[m] = s[m], s[0]
		}
		if genLess(s[last], s[0]) {
			s[0], s[last] = s[last], s[0]
		}
		if genLess(s[last], s[m]) {
			s[m], s[last] = s[last], s[m]
		}
		pivot := s[m]
		i, j := -1, len(s)
		for {
			for i++; genLess(s[i], pivot); i++ {
			}
			for j--; genLess(pivot, s[j]); j-- {
			}
			if i >= j {
				break
			}
			s[i], s[j] = s[j], s[i]
		}
		// Recurse into the smaller side, iterate on the larger.
		if j+1 < len(s)-(j+1) {
			sortGen(s[:j+1])
			s = s[j+1:]
		} else {
			sortGen(s[j+1:])
			s = s[:j+1]
		}
	}
	for i := 1; i < len(s); i++ {
		p := s[i]
		j := i - 1
		for j >= 0 && genLess(p, s[j]) {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = p
	}
}
