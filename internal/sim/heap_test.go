package sim

import (
	"slices"
	"testing"

	"qlec/internal/rng"
)

func TestHeapOrdersByTime(t *testing.T) {
	var h eventHeap
	times := []float64{5, 1, 3, 2, 4}
	for _, tm := range times {
		h.Push(event{t: tm, seq: uint64(tm)})
	}
	prev := -1.0
	for {
		ev, ok := h.Pop()
		if !ok {
			break
		}
		if ev.t < prev {
			t.Fatalf("heap out of order: %v after %v", ev.t, prev)
		}
		prev = ev.t
	}
}

func TestHeapTieBreaksBySeq(t *testing.T) {
	var h eventHeap
	for seq := uint64(10); seq > 0; seq-- {
		h.Push(event{t: 7, seq: seq})
	}
	var prev uint64
	for i := 0; i < 10; i++ {
		ev, ok := h.Pop()
		if !ok {
			t.Fatal("heap emptied early")
		}
		if i > 0 && ev.seq <= prev {
			t.Fatalf("seq tie-break wrong: %d after %d", ev.seq, prev)
		}
		prev = ev.seq
	}
}

func TestHeapPopEmpty(t *testing.T) {
	var h eventHeap
	if _, ok := h.Pop(); ok {
		t.Fatal("pop from empty heap succeeded")
	}
	if _, ok := h.Peek(); ok {
		t.Fatal("peek at empty heap succeeded")
	}
}

func TestHeapPeek(t *testing.T) {
	var h eventHeap
	h.Push(event{t: 2})
	h.Push(event{t: 1, seq: 1})
	ev, ok := h.Peek()
	if !ok || ev.t != 1 {
		t.Fatalf("peek = (%v, %v)", ev.t, ok)
	}
	if h.Len() != 2 {
		t.Fatal("peek consumed an event")
	}
}

func TestHeapRandomizedAgainstSort(t *testing.T) {
	r := rng.New(42)
	var h eventHeap
	const n = 2000
	for i := 0; i < n; i++ {
		h.Push(event{t: float64(r.Intn(100)), seq: uint64(i)})
	}
	if h.Len() != n {
		t.Fatalf("len = %d", h.Len())
	}
	prevT, prevSeq := -1.0, uint64(0)
	for i := 0; i < n; i++ {
		ev, ok := h.Pop()
		if !ok {
			t.Fatal("heap emptied early")
		}
		if ev.t < prevT || (ev.t == prevT && ev.seq < prevSeq) {
			t.Fatalf("ordering violated at %d", i)
		}
		prevT, prevSeq = ev.t, ev.seq
	}
}

func TestHeapReset(t *testing.T) {
	var h eventHeap
	h.Push(event{t: 1})
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("reset did not empty heap")
	}
}

// TestSortGenMatchesGenericSort cross-checks the specialized schedule
// sort against slices.SortFunc over adversarial shapes: random draws,
// already-sorted, reversed, heavy time ties (node tie-break), and the
// degenerate all-equal case. The two sorts must agree element for
// element — equal (t, node) keys are interchangeable, so exact slice
// equality is the right oracle.
func TestSortGenMatchesGenericSort(t *testing.T) {
	cmp := func(a, b genPoint) int {
		if a.t != b.t {
			if a.t < b.t {
				return -1
			}
			return 1
		}
		return int(a.node - b.node)
	}
	r := rng.New(99)
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(400)
		pts := make([]genPoint, n)
		for i := range pts {
			tv := r.Float64() * 100
			switch trial % 5 {
			case 1: // sorted
				tv = float64(i)
			case 2: // reversed
				tv = float64(n - i)
			case 3: // heavy ties
				tv = float64(r.Intn(4))
			case 4: // all equal
				tv = 7
			}
			pts[i] = genPoint{t: tv, node: int32(r.Intn(50))}
		}
		want := slices.Clone(pts)
		slices.SortFunc(want, cmp)
		sortGen(pts)
		if !slices.Equal(pts, want) {
			t.Fatalf("trial %d: sortGen diverged from generic sort on %d points", trial, n)
		}
	}
}
