package sim

import (
	"testing"

	"qlec/internal/cluster"
	"qlec/internal/energy"
	"qlec/internal/metrics"
	"qlec/internal/packet"
)

// TestServiceTieDoesNotDoubleSchedule reproduces the exact-tie scheduling
// bug: an arrival landing at precisely the pending service's completion
// time used to pass the old `busyUntil > now` guard (busyUntil == now is
// not strictly greater) while the evService event was still in the heap,
// starting a second concurrent fusion chain for the same head. With fixed
// ServiceTime/TxDelay/RetryBackoff deltas such ties are reachable. The
// pending flag must make the second scheduleService a no-op.
func TestServiceTieDoesNotDoubleSchedule(t *testing.T) {
	w := paperNet(t, 40)
	proto := &stubProtocol{net: w, heads: []int{10}}
	cfg := DefaultConfig()
	e, err := NewEngine(w, proto, energy.DefaultModel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.setupHeads([]int{10})
	e.main.hold = true // runSerial caches the protocol's HoldAndBurst mode per round

	// First packet arrives at t=0 and arms the pipeline.
	e.queues[10].Push(packet.Packet{ID: 1, Bits: cfg.Bits})
	e.main.scheduleService(10)

	// Second packet arrives at exactly the service completion instant,
	// before the pending evService has been popped — the colliding
	// sequence handleArrive would produce.
	e.main.now += cfg.ServiceTime
	e.queues[10].Push(packet.Packet{ID: 2, Bits: cfg.Bits})
	e.main.scheduleService(10)

	services := 0
	for {
		ev, ok := e.main.events.Pop()
		if !ok {
			break
		}
		if ev.kind == evService {
			services++
		}
	}
	if services != 1 {
		t.Fatalf("exact-tie arrival scheduled %d concurrent evService events, want 1", services)
	}

	// The single chain still drains both packets: completing the first
	// service re-arms for the second.
	e.main.handleService(&event{t: e.main.now, kind: evService, node: 10})
	if e.queues[10].Len() != 1 {
		t.Fatalf("first service left %d packets queued, want 1", e.queues[10].Len())
	}
	if !e.servicePending[10] {
		t.Fatal("service chain not re-armed with packets still queued")
	}
	ev, ok := e.main.events.Pop()
	if !ok || ev.kind != evService {
		t.Fatalf("re-armed event missing or wrong kind: %+v ok=%v", ev, ok)
	}
}

// TestForwardChainInstantLoopGuard drives the end-of-round relay chain
// with a protocol that cycles between two heads forever: the 32-hop guard
// must abandon the packet as a link drop instead of spinning.
func TestForwardChainInstantLoopGuard(t *testing.T) {
	w := paperNet(t, 41)
	proto := &stubProtocol{
		net:   w,
		heads: []int{10, 20},
		mode:  cluster.ForwardPerPacket,
		hops:  map[int]int{10: 20, 20: 10}, // cycle, never the BS
	}
	cfg := DefaultConfig()
	cfg.LinkRef = 1e9 // hops essentially always succeed; only the guard stops the chain
	e, err := NewEngine(w, proto, energy.DefaultModel(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	e.main.forwardChainInstant(10, packet.Packet{ID: 7, Bits: cfg.Bits, Hops: 1})

	if got := e.round.Dropped[metrics.DropLink]; got != 1 {
		t.Fatalf("loop guard recorded %d DropLink, want 1 (all drops: %v)", got, e.round.Dropped)
	}
	if e.round.Dropped[metrics.DropDead] != 0 {
		t.Fatalf("cycling chain drained a node to death: %v", e.round.Dropped)
	}
	if e.round.Delivered != 0 {
		t.Fatal("cycling chain delivered a packet")
	}
	// One successful radio hop per iteration before the guard fires.
	if proto.outcomes < 32 {
		t.Fatalf("chain stopped after %d hops, want the full 32-hop guard", proto.outcomes)
	}
}

// TestBurstDeadHeadDropsBatch exercises the mid-retry death break in
// burst: the head is alive for the first attempt, pays the transmit cost,
// dies, and the retry loop must break — every buffered packet becomes a
// DropBatch, never a delivery.
func TestBurstDeadHeadDropsBatch(t *testing.T) {
	w := paperNet(t, 42)
	proto := &stubProtocol{net: w, heads: []int{10}}
	cfg := DefaultConfig()
	cfg.LinkPMax = 0.01 // first attempt essentially always fails
	cfg.LinkRef = 1
	e, err := NewEngine(w, proto, energy.DefaultModel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.setupHeads([]int{10})

	// Leave the head barely alive: the first burst attempt's transmit
	// draw empties the battery.
	b := w.Nodes[10].Battery
	b.Draw(b.Residual() - 1e-9)
	if !e.alive(10) {
		t.Fatal("head should start the burst alive")
	}

	e.fused[10].bits = 3 * cfg.Bits
	e.fused[10].pkts = append(e.fused[10].pkts,
		packet.Packet{ID: 1, Bits: cfg.Bits, Hops: 1},
		packet.Packet{ID: 2, Bits: cfg.Bits, Hops: 1},
		packet.Packet{ID: 3, Bits: cfg.Bits, Hops: 1})
	e.main.burst(10)

	if e.alive(10) {
		t.Fatal("head survived a transmit it could not afford")
	}
	if got := e.round.Dropped[metrics.DropBatch]; got != 3 {
		t.Fatalf("dead-head burst recorded %d DropBatch, want 3 (all drops: %v)", got, e.round.Dropped)
	}
	if e.round.Delivered != 0 {
		t.Fatal("dead head delivered its batch")
	}
	if e.fused[10].bits != 0 || len(e.fused[10].pkts) != 0 {
		t.Fatal("fused buffer not cleared after the failed burst")
	}
	// Only the first attempt was paid: the head had under one transmit's
	// worth of charge, and the break must stop further draws.
	if proto.outcomes != 1 {
		t.Fatalf("OnOutcome called %d times, want exactly 1 before the death break", proto.outcomes)
	}
}
