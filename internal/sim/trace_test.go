package sim

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"qlec/internal/energy"
)

func TestCountingTracerConsistentWithMetrics(t *testing.T) {
	w := paperNet(t, 50)
	proto := &stubProtocol{net: w, heads: []int{10, 30, 50, 70, 90}}
	cfg := DefaultConfig()
	cfg.MeanInterArrival = 2 // some congestion so rejects/drops occur
	cfg.QueueCapacity = 6
	e, _ := NewEngine(w, proto, energy.DefaultModel(), cfg)
	ct := NewCountingTracer()
	e.SetTracer(ct.Trace)
	res, err := e.Run(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Counts[TraceGenerate] != res.Generated {
		t.Fatalf("trace generate %d != metrics %d", ct.Counts[TraceGenerate], res.Generated)
	}
	if ct.Counts[TraceDeliver] != res.Delivered {
		t.Fatalf("trace deliver %d != metrics %d", ct.Counts[TraceDeliver], res.Delivered)
	}
	if ct.Counts[TraceDrop] != res.DroppedTotal() {
		t.Fatalf("trace drop %d != metrics %d", ct.Counts[TraceDrop], res.DroppedTotal())
	}
	// Every radio attempt resolves exactly once.
	if ct.Counts[TraceSend] != ct.Counts[TraceAccept]+ct.Counts[TraceReject] {
		t.Fatalf("sends %d != accepts %d + rejects %d",
			ct.Counts[TraceSend], ct.Counts[TraceAccept], ct.Counts[TraceReject])
	}
	if ct.Counts[TraceService] == 0 {
		t.Fatal("no service events traced")
	}
}

func TestNilTracerIsFree(t *testing.T) {
	w := paperNet(t, 51)
	proto := &stubProtocol{net: w, heads: []int{10}}
	e, _ := NewEngine(w, proto, energy.DefaultModel(), DefaultConfig())
	e.SetTracer(nil)
	if _, err := e.Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestJSONLTracer(t *testing.T) {
	w := paperNet(t, 52)
	proto := &stubProtocol{net: w, heads: []int{10, 30}}
	cfg := DefaultConfig()
	cfg.MeanInterArrival = 8
	e, _ := NewEngine(w, proto, energy.DefaultModel(), cfg)
	var sb strings.Builder
	tracer, flush := JSONLTracer(&sb)
	e.SetTracer(tracer)
	res, err := e.Run(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < res.Generated {
		t.Fatalf("only %d trace lines for %d packets", len(lines), res.Generated)
	}
	// Every line is valid JSON with a known kind, time and round.
	kinds := map[TraceKind]bool{
		TraceGenerate: true, TraceSend: true, TraceAccept: true,
		TraceReject: true, TraceService: true, TraceDeliver: true, TraceDrop: true,
	}
	for i, line := range lines {
		var ev TraceEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if !kinds[ev.Kind] {
			t.Fatalf("line %d has unknown kind %q", i, ev.Kind)
		}
		if ev.Time < 0 || ev.Round != 0 {
			t.Fatalf("line %d has bad time/round: %+v", i, ev)
		}
	}
}

type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > 2 {
		return 0, errWriteFail
	}
	return len(p), nil
}

var errWriteFail = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "disk full" }

func TestJSONLTracerSurfacesWriteErrors(t *testing.T) {
	w := paperNet(t, 53)
	proto := &stubProtocol{net: w, heads: []int{10}}
	e, _ := NewEngine(w, proto, energy.DefaultModel(), DefaultConfig())
	tracer, flush := JSONLTracer(&failingWriter{})
	e.SetTracer(tracer)
	if _, err := e.Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if err := flush(); err == nil {
		t.Fatal("write failure not surfaced")
	}
}
