package sim

import (
	"context"
	"errors"
	"fmt"

	"qlec/internal/energy"
	"qlec/internal/metrics"
)

// ErrRunComplete is returned by Step once the run has finished (round
// cap reached, or first death under Config.StopOnDeath).
var ErrRunComplete = errors.New("sim: run already complete")

// RoundSnapshot is the per-round observation the stepper API exposes:
// what just happened (Stats, Heads) and where the run stands (Alive,
// EnergySoFar, Done). Orchestration layers use it for live progress,
// early stopping and — in the RL framing of PAPERS.md — as the
// per-episode observation of a training loop.
type RoundSnapshot struct {
	// Round is the 0-based index of the round just executed.
	Round int
	// Stats are the round's measurements (traffic, drops, energy,
	// latency).
	Stats metrics.RoundStats
	// Heads lists the cluster-head node ids that served this round.
	// Without an Observer installed the slice aliases a buffer the
	// engine reuses on the next Step — copy it to keep it across rounds.
	// With an Observer installed it is a fresh private copy.
	Heads []int
	// Alive counts nodes above the death line at round end.
	Alive int
	// EnergySoFar is the cumulative network-wide consumption through
	// this round.
	EnergySoFar energy.Joules
	// FirstDead is the id of the first node to cross the death line, or
	// -1 while every node lives.
	FirstDead int
	// Done reports that this was the run's final round.
	Done bool
	// MeanQ and Epsilon summarize the protocol's Q-learning state when
	// HasQ is true. They are filled only while an Observer is installed
	// (computing MeanQ walks the V table) and only for protocols
	// implementing QLearningStats.
	MeanQ   float64
	Epsilon float64
	HasQ    bool
}

// QLearningStats is the optional protocol interface behind
// RoundSnapshot's MeanQ/Epsilon fields. ok reports whether the protocol
// is actually learning (e.g. false in DEEC ablation modes).
type QLearningStats interface {
	QLearningStats() (meanQ, epsilon float64, ok bool)
}

// Observer receives one RoundSnapshot per executed round, after the
// round completes. Unlike Tracer (per-packet, hot path) an Observer is
// per-round and may do real work — progress meters, adaptive stopping,
// metric streaming. With an Observer installed the snapshot's Heads is
// a fresh copy the observer may keep; without one, Step reuses a
// buffer so the unobserved hot loop allocates nothing for it.
type Observer func(RoundSnapshot)

// SetObserver installs a per-round observer. Call before Start/Run;
// passing nil disables observation.
func (e *Engine) SetObserver(o Observer) { e.observer = o }

// Start begins a run of up to rounds rounds. Engines are single-use:
// starting twice is an error (build a new engine per run — they are
// cheap relative to any run).
func (e *Engine) Start(rounds int) error {
	if rounds <= 0 {
		return fmt.Errorf("sim: rounds must be positive, got %d", rounds)
	}
	if e.res != nil {
		return fmt.Errorf("sim: engine already started; engines are single-use")
	}
	e.res = &metrics.Result{Protocol: e.proto.Name(), FirstDead: -1}
	e.targetRounds = rounds
	e.nextRound = 0
	e.finished = false
	return nil
}

// Step advances the simulation one round and reports what happened.
// The context is only checked between rounds (a round is the engine's
// atomic unit of work): a cancelled ctx returns ctx.Err() before any
// state changes, so the accumulated partial result stays consistent.
// After the final round Step returns ErrRunComplete.
func (e *Engine) Step(ctx context.Context) (RoundSnapshot, error) {
	if e.res == nil {
		return RoundSnapshot{}, fmt.Errorf("sim: Step before Start")
	}
	if e.finished {
		return RoundSnapshot{}, ErrRunComplete
	}
	if err := ctx.Err(); err != nil {
		return RoundSnapshot{}, err
	}
	r := e.nextRound
	heads := e.runRound(r)
	e.res.Rounds++
	e.res.PerRound = append(e.res.PerRound, e.round)
	if e.mover != nil {
		e.moveNodes()
	}
	if id, dead := e.net.FirstDead(e.cfg.DeathLine); dead && e.res.Lifespan == 0 {
		e.res.Lifespan = r + 1
		e.res.FirstDead = id
		if e.cfg.StopOnDeath {
			e.finished = true
		}
	}
	e.nextRound++
	if e.nextRound >= e.targetRounds {
		e.finished = true
	}
	snap := RoundSnapshot{
		Round:       r,
		Stats:       e.round,
		Heads:       e.snapshotHeads(heads),
		Alive:       e.round.AliveAtEnd,
		EnergySoFar: e.res.TotalEnergy,
		FirstDead:   e.res.FirstDead,
		Done:        e.finished,
	}
	if e.observer != nil {
		// Q stats are observer-only: walking the V table every round
		// would tax the unobserved benchmark path for data nobody reads.
		if qs, ok := e.proto.(QLearningStats); ok {
			snap.MeanQ, snap.Epsilon, snap.HasQ = qs.QLearningStats()
		}
		e.observer(snap)
	}
	return snap, nil
}

// snapshotHeads prepares the Heads slice for a RoundSnapshot. Observers
// are allowed to retain the slice, so they get a private copy; the
// unobserved stepper path instead reuses one buffer across rounds,
// keeping per-Step allocations flat.
func (e *Engine) snapshotHeads(heads []int) []int {
	if e.observer != nil {
		return append([]int(nil), heads...)
	}
	e.headsBuf = append(e.headsBuf[:0], heads...)
	return e.headsBuf
}

// Result finalizes and returns the measurements accumulated so far.
// It may be called mid-run — after a cancelled Step, or between Steps —
// for a consistent partial result; the summary fields are recomputed on
// every call. Returns nil before Start.
func (e *Engine) Result() *metrics.Result {
	if e.res == nil {
		return nil
	}
	e.res.Energy = e.breakdown
	e.res.Latency = e.latency.Summary()
	e.res.Access = e.access.Summary()
	e.res.Hops = e.hops.Summary()
	e.res.ConsumptionRates = e.net.ConsumptionRates()
	return e.res
}
