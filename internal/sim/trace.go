package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"qlec/internal/packet"
)

// TraceKind classifies trace events.
type TraceKind string

// Trace event kinds, one per observable packet transition.
const (
	// TraceGenerate: a node produced a packet.
	TraceGenerate TraceKind = "generate"
	// TraceSend: a transmission attempt started.
	TraceSend TraceKind = "send"
	// TraceAccept: the target accepted the packet (ACK).
	TraceAccept TraceKind = "accept"
	// TraceReject: the attempt failed (link loss, full queue, dead
	// target).
	TraceReject TraceKind = "reject"
	// TraceService: a head fused the packet.
	TraceService TraceKind = "service"
	// TraceDeliver: the packet reached the base station.
	TraceDeliver TraceKind = "deliver"
	// TraceDrop: the packet was abandoned.
	TraceDrop TraceKind = "drop"
)

// TraceEvent is one observable packet transition. Node/Target use node
// ids with network.BSID (−1) for the base station; Target is meaningful
// for send/accept/reject only. Reason is set on drop events.
type TraceEvent struct {
	Time    float64   `json:"t"`
	Kind    TraceKind `json:"kind"`
	Round   int       `json:"round"`
	Packet  packet.ID `json:"pkt"`
	Node    int       `json:"node"`
	Target  int       `json:"target,omitempty"`
	Attempt int       `json:"attempt,omitempty"`
	Reason  string    `json:"reason,omitempty"`
}

// Tracer receives every trace event. Implementations must be fast; the
// engine calls them on its hot path. A nil tracer (the default) costs
// one branch per event.
type Tracer func(TraceEvent)

// SetTracer installs a tracer. Call before Run; passing nil disables
// tracing.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// trace emits an event if a tracer is installed.
func (e *Engine) trace(ev TraceEvent) {
	if e.tracer != nil {
		ev.Time = e.now
		ev.Round = e.curRound
		e.tracer(ev)
	}
}

// JSONLTracer returns a Tracer writing one JSON object per line to w,
// plus a flush function returning the first write error encountered.
func JSONLTracer(w io.Writer) (Tracer, func() error) {
	var firstErr error
	enc := json.NewEncoder(w)
	tracer := func(ev TraceEvent) {
		if firstErr != nil {
			return
		}
		if err := enc.Encode(ev); err != nil {
			firstErr = fmt.Errorf("sim: trace write: %w", err)
		}
	}
	return tracer, func() error { return firstErr }
}

// CountingTracer tallies events by kind — the cheap tracer used in
// tests and quick diagnostics.
type CountingTracer struct {
	Counts map[TraceKind]int
}

// NewCountingTracer returns an empty tally.
func NewCountingTracer() *CountingTracer {
	return &CountingTracer{Counts: make(map[TraceKind]int)}
}

// Trace implements Tracer (use ct.Trace as the function value).
func (ct *CountingTracer) Trace(ev TraceEvent) { ct.Counts[ev.Kind]++ }
