package sim

import (
	"context"
	"testing"

	"qlec/internal/cluster"
	"qlec/internal/energy"
	"qlec/internal/metrics"
	"qlec/internal/network"
)

// staticStub is a StaticRouter protocol for parallel-kernel tests:
// fixed heads, nearest-head assignment frozen at StartRound.
type staticStub struct {
	net   *network.Network
	heads []int
	hop   []int
}

func (s *staticStub) Name() string { return "static-stub" }

func (s *staticStub) StartRound(round int) []int {
	if s.hop == nil {
		s.hop = make([]int, s.net.N())
	}
	a := cluster.AssignNearest(s.net, s.heads)
	for id := range s.hop {
		s.hop[id] = a.Head[id]
	}
	for _, h := range s.heads {
		s.hop[h] = network.BSID
	}
	return s.heads
}

func (s *staticStub) NextHop(node int) int                   { return s.hop[node] }
func (s *staticStub) StaticHops() []int                      { return s.hop }
func (s *staticStub) OnOutcome(node, target int, success bool) {}
func (s *staticStub) EndRound(round int)                     {}
func (s *staticStub) RelayMode() cluster.RelayMode           { return cluster.HoldAndBurst }

// runStatic executes a small run with the given worker count and
// returns the result.
func runStatic(t *testing.T, seed uint64, workers, rounds int) *metrics.Result {
	t.Helper()
	w := paperNet(t, seed)
	proto := &staticStub{net: w, heads: []int{10, 30, 50, 70, 90}}
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.ClusterWorkers = workers
	e, err := NewEngine(w, proto, energy.DefaultModel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), rounds)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParallelDeterministicAcrossWorkerCounts pins the parallel round
// kernel's core contract: the result is a function of the configuration
// alone, never of the worker count or goroutine scheduling. Per-node
// RNG sub-streams advance identically however lanes are scheduled, and
// lane sinks merge in lane-index order.
func TestParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	const rounds = 6
	ref := runStatic(t, 7, 2, rounds)
	for _, workers := range []int{3, 4, 16} {
		got := runStatic(t, 7, workers, rounds)
		if got.Generated != ref.Generated || got.Delivered != ref.Delivered ||
			got.Dropped != ref.Dropped || got.TotalEnergy != ref.TotalEnergy ||
			got.Energy != ref.Energy || got.Latency != ref.Latency ||
			got.Hops != ref.Hops {
			t.Fatalf("workers=%d diverged from workers=2:\n%+v\nvs\n%+v", workers, got, ref)
		}
		for i := range ref.PerRound {
			if got.PerRound[i] != ref.PerRound[i] {
				t.Fatalf("workers=%d round %d diverged: %+v vs %+v",
					workers, i, got.PerRound[i], ref.PerRound[i])
			}
		}
	}
}

// TestParallelAgreesWithSerialTraffic checks the parallel kernel against
// the serial schedule where they must agree exactly — generation counts
// come from per-node Poisson streams untouched by lane scheduling — and
// loosely where they legitimately differ (link draws come from different
// streams, so delivery counts may drift a little, not collapse).
func TestParallelAgreesWithSerialTraffic(t *testing.T) {
	const rounds = 6
	serial := runStatic(t, 11, 0, rounds)
	par := runStatic(t, 11, 4, rounds)
	if par.Generated != serial.Generated {
		t.Fatalf("generated diverged: parallel %d vs serial %d", par.Generated, serial.Generated)
	}
	if serial.PDR() < 0.9 || par.PDR() < 0.9 {
		t.Fatalf("implausible delivery: serial PDR %.3f, parallel PDR %.3f", serial.PDR(), par.PDR())
	}
	if d := par.PDR() - serial.PDR(); d > 0.05 || d < -0.05 {
		t.Fatalf("parallel PDR %.3f too far from serial %.3f", par.PDR(), serial.PDR())
	}
	// Same physics, different draw sequences: retry counts differ, so
	// energy scatters a few percent either side of serial (measured
	// symmetric over seeds), never systematically.
	ratio := float64(par.TotalEnergy) / float64(serial.TotalEnergy)
	if ratio < 0.90 || ratio > 1.10 {
		t.Fatalf("parallel energy %.4f J vs serial %.4f J (ratio %.4f)",
			float64(par.TotalEnergy), float64(serial.TotalEnergy), ratio)
	}
}

// TestParallelFallsBackToSerial pins the eligibility gate: a protocol
// that is not a StaticRouter (here the learning-capable stub) must run
// the byte-exact serial kernel even with workers configured.
func TestParallelFallsBackToSerial(t *testing.T) {
	run := func(workers int) *metrics.Result {
		w := paperNet(t, 13)
		proto := &stubProtocol{net: w, heads: []int{10, 30, 50}}
		cfg := DefaultConfig()
		cfg.Seed = 13
		cfg.ClusterWorkers = workers
		e, err := NewEngine(w, proto, energy.DefaultModel(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(context.Background(), 4)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, gated := run(0), run(8)
	if serial.Generated != gated.Generated || serial.Delivered != gated.Delivered ||
		serial.TotalEnergy != gated.TotalEnergy || serial.Latency != gated.Latency {
		t.Fatalf("non-static protocol did not fall back to the serial kernel:\n%+v\nvs\n%+v",
			gated, serial)
	}
}

// TestParallelTracerForcesSerial: installing a tracer must force the
// serial kernel (the trace contract is a globally ordered event stream).
func TestParallelTracerForcesSerial(t *testing.T) {
	w := paperNet(t, 17)
	proto := &staticStub{net: w, heads: []int{10, 30, 50}}
	cfg := DefaultConfig()
	cfg.Seed = 17
	cfg.ClusterWorkers = 8
	e, err := NewEngine(w, proto, energy.DefaultModel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	e.SetTracer(func(TraceEvent) { events++ })
	if _, err := e.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("tracer saw no events")
	}

	// And the traced run must match the untraced serial schedule exactly.
	w2 := paperNet(t, 17)
	proto2 := &staticStub{net: w2, heads: []int{10, 30, 50}}
	cfg.ClusterWorkers = 0
	e2, err := NewEngine(w2, proto2, energy.DefaultModel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e2.Run(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	got := e.Result()
	if got.Generated != ref.Generated || got.TotalEnergy != ref.TotalEnergy ||
		got.Latency != ref.Latency {
		t.Fatalf("traced run diverged from serial: %+v vs %+v", got, ref)
	}
}
