package sim

import (
	"math"

	"qlec/internal/energy"
	"qlec/internal/metrics"
	"qlec/internal/network"
	"qlec/internal/packet"
	"qlec/internal/rng"
	"qlec/internal/stats"
)

// lane is one event-processing kernel: the event heap, the generation
// schedule, the virtual clock, and the metric sinks for a set of nodes
// it owns exclusively.
//
// The engine always has one lane — Engine.main — which owns every node
// and writes straight into the engine's accumulators; that path is
// byte-identical to the historical single-heap event loop. When the
// parallel round kernel is eligible (see Engine.parallelPlan), the
// engine instead builds one lane per cluster plus a base-station lane,
// runs them on Config.ClusterWorkers goroutines between the CH-selection
// barriers, and merges their private sinks in lane-index order — which
// is what makes the parallel results deterministic for any worker
// count, though not bit-identical to the serial schedule (event
// interleaving across clusters, and therefore floating-point
// accumulation order, differs; see DESIGN.md §13).
//
// Node state on the engine (batteries, queues, fused buffers,
// servicePending, shadow rows, per-node RNG streams) is partitioned by
// lane: every write a lane performs lands on a node it owns, so lanes
// share no mutable state and need no locks.
type lane struct {
	e   *Engine
	par bool // parallel lane: static hops, per-node link streams, no callbacks

	nodes []int32 // node ids owned by this lane (generation sources)
	hops  []int   // static per-node targets for the round (par only)
	hold  bool    // RelayMode cached for the round

	events   eventHeap
	genSched []genPoint // flat per-round generation schedule, sorted by (t, node)
	genIdx   int        // next unprocessed genSched entry

	seq       uint64
	now       float64
	inFlight  int
	nextPkt   packet.ID
	bsPending bool
	link      *rng.Stream // shared link stream (serial lane only)

	// Metric sinks. The serial lane points these at the engine's own
	// accumulators so observation order — and therefore every Welford
	// intermediate — matches the historical loop exactly; parallel lanes
	// point them at a private laneSinks merged after the barrier.
	round     *metrics.RoundStats
	breakdown *metrics.EnergyBreakdown
	latency   *stats.Accumulator
	access    *stats.Accumulator
	hopsAcc   *stats.Accumulator
	roundLat  *stats.Accumulator
}

// laneSinks is the private per-round metric storage of one parallel
// lane, merged into the engine's accumulators in lane-index order after
// the round barrier.
type laneSinks struct {
	round     metrics.RoundStats
	breakdown metrics.EnergyBreakdown
	latency   stats.Accumulator
	access    stats.Accumulator
	hopsAcc   stats.Accumulator
	roundLat  stats.Accumulator
}

func (l *lane) push(ev event) {
	ev.seq = l.seq
	l.seq++
	l.events.Push(ev)
}

// pushAt schedules a new event in place: the slab slot is built where
// it will live, so scheduling copies only the fields the caller sets
// instead of the whole event twice. Callers fill the returned slot's
// remaining fields immediately; the (t, seq) ordering key is already
// published.
func (l *lane) pushAt(t float64, kind eventKind) *event {
	ev, idx := l.events.Alloc()
	ev.t = t
	ev.seq = l.seq
	ev.kind = kind
	l.seq++
	l.events.Commit(t, ev.seq, idx)
	return ev
}

// trace emits an event if a tracer is installed. Tracing forces the
// serial kernel, so l.now and curRound are the engine's clock.
func (l *lane) trace(ev TraceEvent) {
	if l.e.tracer != nil {
		ev.Time = l.now
		ev.Round = l.e.curRound
		l.e.tracer(ev)
	}
}

// Classified battery draws: every energy expenditure goes through one
// of these so Result.Energy's categories always sum to TotalEnergy and
// the audit ledger sees every joule. The ledger records the amount the
// battery actually drew (clamped at empty), not the amount requested.
// pkt/hasPkt attribute the draw to a packet where one exists; aggregate
// draws (burst transmissions) pass hasPkt=false. Auditing forces the
// serial kernel, so the nil check never races.
func (l *lane) drawTx(id int, amount energy.Joules, pkt packet.ID, hasPkt bool) {
	d := l.e.net.Nodes[id].Battery.Draw(amount)
	l.breakdown.Tx += d
	if l.e.auditor != nil {
		l.e.auditEnergyAt(l.now, CauseTx, id, d, pkt, hasPkt)
	}
}

func (l *lane) drawRx(id int, amount energy.Joules, pkt packet.ID, hasPkt bool) {
	d := l.e.net.Nodes[id].Battery.Draw(amount)
	l.breakdown.Rx += d
	if l.e.auditor != nil {
		l.e.auditEnergyAt(l.now, CauseRx, id, d, pkt, hasPkt)
	}
}

func (l *lane) drawFusion(id int, amount energy.Joules, pkt packet.ID, hasPkt bool) {
	d := l.e.net.Nodes[id].Battery.Draw(amount)
	l.breakdown.Fusion += d
	if l.e.auditor != nil {
		l.e.auditEnergyAt(l.now, CauseFusion, id, d, pkt, hasPkt)
	}
}

// geom returns the hop distance and the base channel probability
// LinkPMax·exp(−(d/LinkRef)²) for a (from, target) link, served from
// the engine's per-round cache when this is the serial lane and the
// target is the BS or one of the round's heads (slot 0 and slots 1+j
// respectively; see Engine.armGeom). Anything else — parallel lanes,
// stub protocols routing to non-heads, tests that skip setupHeads —
// computes directly. Cached and fresh values are bit-identical.
func (l *lane) geom(from, target int) (float64, float64) {
	e := l.e
	if !l.par && e.geomSlot != nil {
		slot := int32(0)
		if target != network.BSID {
			slot = e.geomSlot[target]
		}
		if slot >= 0 {
			cell := from*(len(e.geomHeads)+1) + int(slot)
			if e.geomStamp[cell] != e.geomRound {
				d := e.dist(from, target)
				x := d / e.cfg.LinkRef
				e.geomD[cell] = d
				e.geomP[cell] = e.cfg.LinkPMax * math.Exp(-x*x)
				e.geomStamp[cell] = e.geomRound
			}
			return e.geomD[cell], e.geomP[cell]
		}
	}
	d := e.dist(from, target)
	x := d / e.cfg.LinkRef
	return d, e.cfg.LinkPMax * math.Exp(-x*x)
}

// linkP returns the link success probability from node `from` to
// `target` given the base channel probability pBase (from geom),
// including the persistent per-link shadowing factor when enabled.
// Contention counts only this lane's in-flight transmissions; a
// positive ContentionGamma therefore forces the serial kernel, where
// the lane's count is the global one.
func (l *lane) linkP(from, target int, pBase float64) float64 {
	e := l.e
	p := pBase
	if e.shadow != nil {
		p *= e.shadowFactor(from, target)
		if p > 0.999 {
			p = 0.999
		}
	}
	if e.cfg.ContentionGamma > 0 && l.inFlight > 1 {
		// The resolving transmission itself is one of inFlight; only the
		// others interfere.
		p *= math.Exp(-e.cfg.ContentionGamma * float64(l.inFlight-1))
	}
	return p
}

// linkFloat draws the next link-success uniform. The serial lane uses
// the single shared stream in event order (the historical sequence);
// parallel lanes draw from the transmitter's own sub-stream so the
// sequence each node sees is independent of cross-cluster interleaving.
func (l *lane) linkFloat(from int) float64 {
	if l.par {
		return l.e.nodeLink[from].Float64()
	}
	return l.link.Float64()
}

// target returns where `from` forwards its current packet: the
// protocol's live choice on the serial lane, the round's static hop map
// on parallel lanes.
func (l *lane) target(from int) int {
	if l.par {
		return l.hops[from]
	}
	return l.e.proto.NextHop(from)
}

// outcome reports a transmission result to the protocol. Parallel lanes
// skip it — the StaticRouter contract requires tolerating that.
func (l *lane) outcome(node, target int, success bool) {
	if !l.par {
		l.e.proto.OnOutcome(node, target, success)
	}
}

// buildGen pre-draws every node's Poisson generation chain for the
// round into the flat schedule and sorts it by (t, node). Drawing the
// whole chain at once replaces one heap push+pop per generation event
// with an index increment; each per-node stream sees exactly the draws,
// in exactly the order, that the event-driven schedule performed (the
// old loop drew a node's next gap while processing the previous
// generation, including the final draw that lands past roundEnd, and
// kept drawing for nodes that died mid-round). The (t, node) sort order
// is the same total order the per-node cursor heap produced, so the
// processing sequence is unchanged.
func (l *lane) buildGen(roundStart, roundEnd float64) {
	l.genSched = l.genSched[:0]
	l.genIdx = 0
	mean := l.e.cfg.MeanInterArrival
	gens := l.e.nodeGen
	for _, id := range l.nodes {
		t := roundStart + gens[id].ExpFloat64()*mean
		for t < roundEnd {
			l.genSched = append(l.genSched, genPoint{t: t, node: id})
			t += gens[id].ExpFloat64() * mean
		}
	}
	sortGen(l.genSched)
}

// drain runs the lane's event loop to completion: generation cursors
// and radio/service events merge in time order (generation first on
// exact ties, matching the push order the unbatched engine gave a
// round's pre-scheduled generations), generation stops at roundEnd by
// construction, and in-flight transmissions and queue service run to
// completion (the queues drain in bounded time once generation ceases).
func (l *lane) drain(roundEnd float64) {
	var ev event
	for {
		genOK := l.genIdx < len(l.genSched)
		evT, evOK := l.events.PeekT()
		if genOK {
			g := l.genSched[l.genIdx]
			if !evOK || g.t <= evT {
				l.now = g.t
				l.genIdx++
				l.handleGenerate(int(g.node))
				continue
			}
		} else if !evOK {
			break
		}
		l.events.PopInto(&ev)
		l.now = ev.t
		switch ev.kind {
		case evArrive:
			l.handleArrive(&ev)
		case evRetry:
			l.handleRetry(&ev)
		case evService:
			l.handleService(&ev)
		}
	}
	if l.now < roundEnd {
		l.now = roundEnd
	}
}

// handleGenerate creates a packet at the node and launches it. The
// node's next generation is already on the schedule (buildGen drew the
// whole chain), so a dead node just skips the packet.
func (l *lane) handleGenerate(id int) {
	e := l.e
	if !e.alive(id) {
		return
	}
	pkt := packet.Packet{ID: l.nextPkt, Source: id, Bits: e.cfg.Bits, Born: l.now}
	l.nextPkt++
	l.round.Generated++
	l.trace(TraceEvent{Kind: TraceGenerate, Packet: pkt.ID, Node: id})

	if e.isHead[id] {
		// A head's own sensing data goes straight into its queue —
		// no radio hop.
		if e.queues[id].Push(pkt) {
			l.scheduleService(id)
		} else {
			l.drop(metrics.DropQueue, pkt, id)
		}
		return
	}
	l.transmit(pkt, id, 0)
}

// transmit starts one radio attempt of pkt from node `from` toward the
// chosen target, paying the transmit energy now and resolving the
// outcome after the serialization delay.
func (l *lane) transmit(pkt packet.Packet, from, attempt int) {
	e := l.e
	target := l.target(from)
	d, _ := l.geom(from, target)
	l.drawTx(from, e.calc.Tx(pkt.Bits, d), pkt.ID, true)
	l.inFlight++
	l.trace(TraceEvent{Kind: TraceSend, Packet: pkt.ID, Node: from, Target: target, Attempt: attempt})
	ev := l.pushAt(l.now+e.cfg.TxDelay(pkt.Bits), evArrive)
	ev.node, ev.target, ev.attempt, ev.pkt = from, target, attempt, pkt
}

// handleArrive resolves a transmission attempt at its target.
func (l *lane) handleArrive(ev *event) {
	e := l.e
	from, target := ev.node, ev.target
	_, pBase := l.geom(from, target)
	linkOK := l.linkFloat(from) < l.linkP(from, target, pBase)
	if l.inFlight > 0 {
		l.inFlight--
	}

	success := false
	reason := metrics.DropLink
	if linkOK {
		switch {
		case target == network.BSID:
			// The BS is mains-powered but its receive pipeline is
			// finite: acceptance goes through a bounded queue, and
			// delivery completes at BS service time (the "burden of the
			// base station" the paper's −l penalty exists to limit).
			pkt := ev.pkt
			pkt.Hops++
			if e.bsQueue.Push(pkt) {
				success = true
				l.scheduleBSService()
			} else {
				reason = metrics.DropQueue
			}
		case e.alive(target) && e.queues[target] != nil:
			// Receiving costs energy whether or not the queue has room.
			l.drawRx(target, e.calc.Rx(ev.pkt.Bits), ev.pkt.ID, true)
			pkt := ev.pkt
			pkt.Hops++
			if e.queues[target].Push(pkt) {
				success = true
				l.scheduleService(target)
			} else {
				reason = metrics.DropQueue
			}
		default:
			// Dead target (or a node that is no longer a head): the
			// transmission goes unanswered.
			reason = metrics.DropDead
		}
	}
	l.outcome(from, target, success)
	if success {
		l.trace(TraceEvent{Kind: TraceAccept, Packet: ev.pkt.ID, Node: from, Target: target, Attempt: ev.attempt})
		// First radio hop accepted: record access latency (the routing-
		// controlled part of delay; see metrics.Result.Access).
		if ev.pkt.Hops == 0 {
			l.access.Observe(l.now - ev.pkt.Born)
		}
		return
	}
	l.trace(TraceEvent{Kind: TraceReject, Packet: ev.pkt.ID, Node: from, Target: target, Attempt: ev.attempt, Reason: reason.String()})
	if ev.attempt < e.cfg.MaxRetries && e.alive(from) {
		re := l.pushAt(l.now+e.cfg.RetryBackoff, evRetry)
		re.node, re.attempt, re.pkt = from, ev.attempt+1, ev.pkt
		return
	}
	l.drop(reason, ev.pkt, from)
}

// handleRetry re-launches a failed packet; the protocol may pick a
// different target this time (QLEC's reroute — static-hop lanes resend
// to the same target).
func (l *lane) handleRetry(ev *event) {
	if !l.e.alive(ev.node) {
		l.drop(metrics.DropDead, ev.pkt, ev.node)
		return
	}
	l.transmit(ev.pkt, ev.node, ev.attempt)
}

// scheduleService starts the head's fusion pipeline unless an evService
// event is already pending. The explicit pending flag (not a busy-until
// timestamp) makes an arrival at exactly the pending completion time a
// no-op; a `busyUntil > now` guard passed on that tie and started a
// second concurrent service chain (fixed ServiceTime/TxDelay/
// RetryBackoff deltas make exact ties reachable).
func (l *lane) scheduleService(head int) {
	e := l.e
	if e.servicePending[head] || e.queues[head].Len() == 0 {
		return // chain already running, or nothing to serve
	}
	e.servicePending[head] = true
	l.pushAt(l.now+e.cfg.ServiceTime, evService).node = head
}

// scheduleBSService starts the base station's receive pipeline if idle;
// same pending-flag discipline as scheduleService. Only the lane that
// owns the BS queue (the serial lane, or parallel lane 0) calls it.
func (l *lane) scheduleBSService() {
	if l.bsPending || l.e.bsQueue.Len() == 0 {
		return
	}
	l.bsPending = true
	l.pushAt(l.now+l.e.cfg.BSServiceTime, evService).node = network.BSID
}

// handleService fuses the packet at the head's queue front, or completes
// BS-side processing when node is the base station.
func (l *lane) handleService(ev *event) {
	e := l.e
	if ev.node == network.BSID {
		l.bsPending = false
		if pkt, ok := e.bsQueue.Pop(); ok {
			l.deliver(pkt)
		}
		if e.bsQueue.Len() > 0 {
			l.bsPending = true
			l.pushAt(l.now+e.cfg.BSServiceTime, evService).node = network.BSID
		}
		return
	}
	head := ev.node
	e.servicePending[head] = false
	q := e.queues[head]
	if q == nil {
		return
	}
	pkt, ok := q.Pop()
	if ok {
		if e.alive(head) {
			l.drawFusion(head, e.calc.Aggregate(pkt.Bits), pkt.ID, true)
			l.trace(TraceEvent{Kind: TraceService, Packet: pkt.ID, Node: head})
			l.afterService(head, pkt)
		} else {
			l.drop(metrics.DropDead, pkt, head)
		}
	}
	if q.Len() > 0 {
		e.servicePending[head] = true
		l.pushAt(l.now+e.cfg.ServiceTime, evService).node = head
	}
}

// afterService routes a fused packet according to the protocol's relay
// mode: buffer it for the end-of-round burst, or forward it now through
// the head hierarchy (the FCM baseline).
func (l *lane) afterService(head int, pkt packet.Packet) {
	e := l.e
	if l.hold {
		e.fused[head].bits += pkt.Bits
		e.fused[head].pkts = append(e.fused[head].pkts, pkt)
		return
	}
	// ForwardPerPacket: compress at the first head only, then relay.
	bits := pkt.Bits
	if pkt.Hops <= 1 {
		bits = compressedBits(bits, e.cfg.Compression)
	}
	fwd := pkt
	fwd.Bits = bits
	l.transmit(fwd, head, 0)
}

// drop abandons a packet, recording the reason in metrics and the
// trace.
func (l *lane) drop(reason metrics.DropReason, pkt packet.Packet, node int) {
	l.round.Dropped[reason]++
	l.trace(TraceEvent{Kind: TraceDrop, Packet: pkt.ID, Node: node, Reason: reason.String()})
}

// deliver records a packet's arrival at the base station.
func (l *lane) deliver(pkt packet.Packet) {
	l.trace(TraceEvent{Kind: TraceDeliver, Packet: pkt.ID, Node: pkt.Source})
	l.round.Delivered++
	lat := l.now - pkt.Born
	l.latency.Observe(lat)
	l.roundLat.Observe(lat)
	l.hopsAcc.Observe(float64(pkt.Hops))
}

// endOfRound flushes remaining queue contents and performs the
// HoldAndBurst delivery toward the BS — the serial lane's form, walking
// every head. Parallel lanes call drainBS/finishHead for their own
// slice of this work instead.
func (l *lane) endOfRound(heads []int) {
	l.drainBS()
	for _, h := range heads {
		l.finishHead(h)
	}
}

// drainBS completes processing of packets the BS accepted but had not
// finished when the round ended (they were received; processing spills
// past the boundary).
func (l *lane) drainBS() {
	for {
		pkt, ok := l.e.bsQueue.Pop()
		if !ok {
			return
		}
		l.deliver(pkt)
	}
}

// finishHead drains one head's remaining queue through the final
// data-fusion pass and performs its relay-mode delivery: the
// HoldAndBurst aggregate toward the BS, or the per-packet relay chain.
// A dead head strands its queue.
func (l *lane) finishHead(h int) {
	e := l.e
	q := e.queues[h]
	if q == nil {
		return
	}
	for {
		pkt, ok := q.Pop()
		if !ok {
			break
		}
		if !e.alive(h) {
			l.drop(metrics.DropDead, pkt, h)
			continue
		}
		l.drawFusion(h, e.calc.Aggregate(pkt.Bits), pkt.ID, true)
		if l.hold {
			e.fused[h].bits += pkt.Bits
			e.fused[h].pkts = append(e.fused[h].pkts, pkt)
		} else {
			l.forwardChainInstant(h, pkt)
		}
	}
	if l.hold {
		l.burst(h)
	}
}

// burst sends a head's aggregate to the BS with retries (Algorithm 1
// lines 13-14: "transmit processed data directly to BS").
func (l *lane) burst(head int) {
	e := l.e
	buf := &e.fused[head]
	if len(buf.pkts) == 0 {
		return
	}
	aggBits := compressedBits(buf.bits, e.cfg.Compression)
	d, pBase := l.geom(head, network.BSID)
	delivered := false
	for attempt := 0; attempt <= e.cfg.BatchRetries; attempt++ {
		if !e.alive(head) {
			break
		}
		l.drawTx(head, e.calc.Tx(aggBits, d), 0, false)
		ok := l.linkFloat(head) < l.linkP(head, network.BSID, pBase)
		l.outcome(head, network.BSID, ok)
		if ok {
			delivered = true
			break
		}
	}
	arrival := l.now + e.cfg.TxDelay(aggBits)
	for _, pkt := range buf.pkts {
		if delivered {
			pkt.Hops++
			saved := l.now
			l.now = arrival
			l.deliver(pkt)
			l.now = saved
		} else {
			l.drop(metrics.DropBatch, pkt, head)
		}
	}
	buf.bits = 0
	buf.pkts = buf.pkts[:0]
}

// forwardChainInstant pushes a leftover fused packet through the
// protocol's relay chain at round end, paying per-hop energy and taking
// per-hop loss draws, without queueing (generation has stopped; queues
// are drained). ForwardPerPacket protocols are never parallel-eligible,
// so this only runs on the serial lane.
func (l *lane) forwardChainInstant(head int, pkt packet.Packet) {
	e := l.e
	bits := pkt.Bits
	if pkt.Hops <= 1 {
		bits = compressedBits(bits, e.cfg.Compression)
	}
	holder := head
	for hop := 0; hop < 32; hop++ {
		if !e.alive(holder) {
			l.drop(metrics.DropDead, pkt, holder)
			return
		}
		target := e.proto.NextHop(holder)
		d, pBase := l.geom(holder, target)
		ok := false
		for attempt := 0; attempt <= e.cfg.MaxRetries && !ok; attempt++ {
			l.drawTx(holder, e.calc.Tx(bits, d), pkt.ID, true)
			ok = l.linkFloat(holder) < l.linkP(holder, target, pBase)
			l.outcome(holder, target, ok)
		}
		if !ok {
			l.drop(metrics.DropLink, pkt, holder)
			return
		}
		pkt.Hops++
		if target == network.BSID {
			l.deliver(pkt)
			return
		}
		l.drawRx(target, e.calc.Rx(bits), pkt.ID, true)
		holder = target
	}
	// Routing loop guard: a protocol that cycles loses the packet.
	l.drop(metrics.DropLink, pkt, holder)
}

// reset prepares a parallel lane for a round.
func (l *lane) reset(roundStart float64, hops []int, pktBase packet.ID) {
	l.par = true
	l.hold = true
	l.hops = hops
	l.nodes = l.nodes[:0]
	l.events.Reset()
	l.genSched = l.genSched[:0]
	l.genIdx = 0
	l.seq = 0
	l.now = roundStart
	l.inFlight = 0
	l.nextPkt = pktBase
	l.bsPending = false
}
