package sim

import (
	"fmt"

	"qlec/internal/energy"
	"qlec/internal/packet"
)

// EnergyCause classifies a battery draw by radio activity, mirroring
// the categories of metrics.EnergyBreakdown.
type EnergyCause uint8

// Ledger entry causes, one per classified draw helper in the engine.
const (
	CauseTx EnergyCause = iota
	CauseRx
	CauseFusion
	CauseControl
	// NumEnergyCauses sizes per-cause accumulator arrays.
	NumEnergyCauses
)

var causeNames = [NumEnergyCauses]string{"tx", "rx", "fusion", "control"}

func (c EnergyCause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", int(c))
}

// ParseEnergyCause inverts String; it rejects unknown names.
func ParseEnergyCause(s string) (EnergyCause, error) {
	for i, n := range causeNames {
		if n == s {
			return EnergyCause(i), nil
		}
	}
	return 0, fmt.Errorf("sim: unknown energy cause %q", s)
}

// MarshalJSON writes the cause as its lowercase name so ledger files
// stay self-describing.
func (c EnergyCause) MarshalJSON() ([]byte, error) {
	if int(c) >= len(causeNames) {
		return nil, fmt.Errorf("sim: cannot marshal energy cause %d", int(c))
	}
	return []byte(`"` + causeNames[c] + `"`), nil
}

// UnmarshalJSON accepts the names emitted by MarshalJSON.
func (c *EnergyCause) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("sim: energy cause must be a JSON string, got %s", b)
	}
	parsed, err := ParseEnergyCause(string(b[1 : len(b)-1]))
	if err != nil {
		return err
	}
	*c = parsed
	return nil
}

// EnergyEntry is one line of the double-entry energy ledger: a single
// battery draw, stamped with when and why it happened. Joules is the
// amount actually drawn (after the battery clamps at empty), so a
// node's entries always sum to its consumed energy exactly as the
// battery saw it. HasPacket distinguishes draws attributable to one
// packet (a transmission attempt, a reception, a per-packet fusion)
// from aggregate draws (control broadcasts, end-of-round bursts);
// packet.ID 0 is a valid id, hence the explicit flag.
type EnergyEntry struct {
	Time      float64       `json:"t"`
	Round     int           `json:"round"`
	Node      int           `json:"node"`
	Cause     EnergyCause   `json:"cause"`
	Joules    energy.Joules `json:"j"`
	Packet    packet.ID     `json:"pkt,omitempty"`
	HasPacket bool          `json:"hasPkt,omitempty"`
}

// Auditor receives every classified battery draw plus round
// boundaries. Like Tracer it sits on the engine's hot path: a nil
// auditor (the default) costs one branch per draw, and implementations
// must be fast. Methods are called from the engine's goroutine only.
type Auditor interface {
	// AuditBeginRound fires after head selection, before any of the
	// round's draws. Heads is the engine's own slice; auditors must not
	// retain it past the call.
	AuditBeginRound(round int, heads []int)
	// AuditEnergy records one battery draw.
	AuditEnergy(EnergyEntry)
	// AuditEndRound fires after the round's last draw with the round's
	// consumption and the run's cumulative total as the engine accounts
	// them — the reference values for conservation checks.
	AuditEndRound(round int, roundEnergy, totalEnergy energy.Joules)
}

// SetAuditor installs a flight-recorder auditor. Call before Start/Run;
// passing nil disables auditing.
func (e *Engine) SetAuditor(a Auditor) { e.auditor = a }

// auditEnergy emits a ledger entry stamped with the engine clock (the
// round start — control-plane draws happen at the CH-selection barrier).
func (e *Engine) auditEnergy(cause EnergyCause, id int, drawn energy.Joules, pkt packet.ID, hasPkt bool) {
	e.auditEnergyAt(e.now, cause, id, drawn, pkt, hasPkt)
}

// auditEnergyAt emits a ledger entry at an explicit time — the lane's
// virtual clock for event-loop draws. Auditing forces the serial
// kernel, so the single caller goroutine invariant of Auditor holds.
func (e *Engine) auditEnergyAt(t float64, cause EnergyCause, id int, drawn energy.Joules, pkt packet.ID, hasPkt bool) {
	e.auditor.AuditEnergy(EnergyEntry{
		Time: t, Round: e.curRound, Node: id, Cause: cause,
		Joules: drawn, Packet: pkt, HasPacket: hasPkt,
	})
}
