package sim

import (
	"context"
	"math"
	"testing"

	"qlec/internal/cluster"
	"qlec/internal/energy"
	"qlec/internal/network"
	"qlec/internal/rng"
)

// stubProtocol is a minimal controllable protocol for engine tests:
// fixed heads, nearest assignment, hold-and-burst.
type stubProtocol struct {
	net   *network.Network
	heads []int
	mode  cluster.RelayMode
	// hops overrides NextHop per node when non-nil.
	hops map[int]int

	outcomes int
	endCalls int
}

func (s *stubProtocol) Name() string { return "stub" }

func (s *stubProtocol) StartRound(round int) []int { return s.heads }

func (s *stubProtocol) NextHop(node int) int {
	if t, ok := s.hops[node]; ok {
		return t
	}
	for _, h := range s.heads {
		if h == node {
			return network.BSID
		}
	}
	a := cluster.AssignNearest(s.net, s.heads)
	return a.Head[node]
}

func (s *stubProtocol) OnOutcome(node, target int, success bool) { s.outcomes++ }
func (s *stubProtocol) EndRound(round int)                       { s.endCalls++ }
func (s *stubProtocol) RelayMode() cluster.RelayMode             { return s.mode }

func paperNet(t *testing.T, seed uint64) *network.Network {
	t.Helper()
	w, err := network.Deploy(network.Deployment{N: 100, Side: 200, InitialEnergy: 5}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*Config){
		func(c *Config) { c.Bits = 0 },
		func(c *Config) { c.HelloBits = -1 },
		func(c *Config) { c.MeanInterArrival = 0 },
		func(c *Config) { c.RoundDuration = 0 },
		func(c *Config) { c.QueueCapacity = 0 },
		func(c *Config) { c.ServiceTime = -1 },
		func(c *Config) { c.MaxRetries = -1 },
		func(c *Config) { c.Compression = 0 },
		func(c *Config) { c.Compression = 1.5 },
		func(c *Config) { c.DeathLine = -1 },
		func(c *Config) { c.BitRate = 0 },
		func(c *Config) { c.LinkPMax = 0 },
		func(c *Config) { c.LinkRef = 0 },
		func(c *Config) { c.RetryBackoff = -1 },
	} {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("invalid config %+v accepted", c)
		}
	}
}

func TestNewEngineValidation(t *testing.T) {
	w := paperNet(t, 1)
	if _, err := NewEngine(w, nil, energy.DefaultModel(), DefaultConfig()); err == nil {
		t.Fatal("nil protocol accepted")
	}
	bad := DefaultConfig()
	bad.Bits = 0
	if _, err := NewEngine(w, &stubProtocol{net: w}, energy.DefaultModel(), bad); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := NewEngine(w, &stubProtocol{net: w}, energy.Model{}, DefaultConfig()); err == nil {
		t.Fatal("bad model accepted")
	}
}

func TestRunRejectsZeroRounds(t *testing.T) {
	w := paperNet(t, 2)
	e, _ := NewEngine(w, &stubProtocol{net: w, heads: []int{1, 2}}, energy.DefaultModel(), DefaultConfig())
	if _, err := e.Run(context.Background(), 0); err == nil {
		t.Fatal("Run(0) accepted")
	}
}

func TestIdleNetworkDeliversEverything(t *testing.T) {
	w := paperNet(t, 3)
	proto := &stubProtocol{net: w, heads: []int{10, 30, 50, 70, 90}}
	cfg := DefaultConfig()
	cfg.MeanInterArrival = 10 // very light traffic
	e, err := NewEngine(w, proto, energy.DefaultModel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Generated == 0 {
		t.Fatal("no packets generated")
	}
	if pdr := res.PDR(); pdr < 0.97 {
		t.Fatalf("idle-network PDR = %v (dropped %d of %d), want ≈1",
			pdr, res.DroppedTotal(), res.Generated)
	}
	if proto.endCalls != 5 {
		t.Fatalf("EndRound called %d times", proto.endCalls)
	}
	if proto.outcomes == 0 {
		t.Fatal("OnOutcome never called")
	}
}

func TestEnergyBookkeepingConsistent(t *testing.T) {
	w := paperNet(t, 4)
	proto := &stubProtocol{net: w, heads: []int{5, 25, 45, 65, 85}}
	e, _ := NewEngine(w, proto, energy.DefaultModel(), DefaultConfig())
	res, err := e.Run(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	// The engine's reported energy must equal the network's drawn total.
	if math.Abs(float64(res.TotalEnergy-w.TotalConsumed())) > 1e-9 {
		t.Fatalf("result energy %v != network consumed %v", res.TotalEnergy, w.TotalConsumed())
	}
	if res.TotalEnergy <= 0 {
		t.Fatal("no energy consumed by a 10-round run")
	}
	// Conservation: initial = residual + consumed.
	total := float64(w.TotalResidual() + w.TotalConsumed())
	if math.Abs(total-float64(w.InitialTotalEnergy())) > 1e-9 {
		t.Fatal("network energy not conserved")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() ( /*pdr*/ float64 /*energy*/, float64, int) {
		w := paperNet(t, 5)
		proto := &stubProtocol{net: w, heads: []int{5, 25, 45, 65, 85}}
		e, _ := NewEngine(w, proto, energy.DefaultModel(), DefaultConfig())
		res, err := e.Run(context.Background(), 5)
		if err != nil {
			t.Fatal(err)
		}
		return res.PDR(), float64(res.TotalEnergy), res.Generated
	}
	p1, e1, g1 := run()
	p2, e2, g2 := run()
	if p1 != p2 || e1 != e2 || g1 != g2 {
		t.Fatalf("runs with identical seeds differ: (%v,%v,%d) vs (%v,%v,%d)", p1, e1, g1, p2, e2, g2)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	gen := func(seed uint64) int {
		w := paperNet(t, 6)
		proto := &stubProtocol{net: w, heads: []int{5, 25}}
		cfg := DefaultConfig()
		cfg.Seed = seed
		e, _ := NewEngine(w, proto, energy.DefaultModel(), cfg)
		res, _ := e.Run(context.Background(), 3)
		return res.Generated
	}
	if gen(1) == gen(2) {
		t.Log("generated counts equal across seeds (possible but unlikely); checking energy")
		// Not fatal by itself, but the RNG wiring should usually differ.
	}
}

func TestCongestionCausesQueueDrops(t *testing.T) {
	w := paperNet(t, 7)
	proto := &stubProtocol{net: w, heads: []int{50}} // one head for everyone
	cfg := DefaultConfig()
	cfg.MeanInterArrival = 0.5 // heavy traffic
	cfg.QueueCapacity = 4
	cfg.ServiceTime = 1.0
	e, _ := NewEngine(w, proto, energy.DefaultModel(), cfg)
	res, err := e.Run(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.PDR() > 0.8 {
		t.Fatalf("overloaded single head kept PDR at %v; queueing model suspect", res.PDR())
	}
	if res.DroppedTotal() == 0 {
		t.Fatal("no drops under forced congestion")
	}
}

func TestLatencyGrowsWithCongestion(t *testing.T) {
	latency := func(lambda float64) float64 {
		w := paperNet(t, 8)
		proto := &stubProtocol{net: w, heads: []int{10, 30, 50, 70, 90}}
		cfg := DefaultConfig()
		cfg.MeanInterArrival = lambda
		e, _ := NewEngine(w, proto, energy.DefaultModel(), cfg)
		res, err := e.Run(context.Background(), 5)
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency.Mean
	}
	idle := latency(10)
	busy := latency(1)
	if busy <= idle {
		t.Fatalf("latency under congestion (%v) not above idle (%v)", busy, idle)
	}
}

func TestStopOnDeath(t *testing.T) {
	w := paperNet(t, 9)
	proto := &stubProtocol{net: w, heads: []int{5, 25, 45, 65, 85}}
	cfg := DefaultConfig()
	// A death line just below the initial charge: the first node to pay
	// for anything nontrivial dies quickly.
	cfg.DeathLine = 4.9999
	cfg.StopOnDeath = true
	e, _ := NewEngine(w, proto, energy.DefaultModel(), cfg)
	res, err := e.Run(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lifespan == 0 {
		t.Fatal("no death recorded with an aggressive death line")
	}
	if res.Rounds != res.Lifespan {
		t.Fatalf("run continued past death: rounds %d, lifespan %d", res.Rounds, res.Lifespan)
	}
	if res.FirstDead < 0 {
		t.Fatal("FirstDead not recorded")
	}
}

func TestRunWithoutHeadsGoesDirectToBS(t *testing.T) {
	w := paperNet(t, 10)
	proto := &stubProtocol{net: w} // no heads: NextHop falls to BSID
	cfg := DefaultConfig()
	cfg.MeanInterArrival = 8
	e, _ := NewEngine(w, proto, energy.DefaultModel(), cfg)
	res, err := e.Run(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("direct-to-BS packets never delivered")
	}
	// Direct transmission must be expensive: mean hop count 1.
	if res.Hops.Mean != 1 {
		t.Fatalf("direct-BS mean hops = %v, want 1", res.Hops.Mean)
	}
}

func TestForwardPerPacketMultiHop(t *testing.T) {
	// Chain: members → head 10; head 10 → head 20; head 20 → BS.
	w := paperNet(t, 11)
	proto := &stubProtocol{
		net:   w,
		heads: []int{10, 20},
		mode:  cluster.ForwardPerPacket,
		hops:  map[int]int{10: 20, 20: network.BSID},
	}
	// Route all members to head 10.
	for id := 0; id < w.N(); id++ {
		if id != 10 && id != 20 {
			proto.hops[id] = 10
		}
	}
	cfg := DefaultConfig()
	cfg.MeanInterArrival = 6
	e, _ := NewEngine(w, proto, energy.DefaultModel(), cfg)
	res, err := e.Run(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("multi-hop chain delivered nothing")
	}
	// member→10→20→BS = 3 hops for member packets; heads' own packets
	// take 2 (10's) or 1 (20's).
	if res.Hops.Mean < 2.2 {
		t.Fatalf("mean hops %v too low for a 3-hop chain", res.Hops.Mean)
	}
	if res.Hops.Max != 3 {
		t.Fatalf("max hops %v, want 3", res.Hops.Max)
	}
}

func TestControlTrafficCharged(t *testing.T) {
	consumed := func(disable bool) float64 {
		w := paperNet(t, 12)
		proto := &stubProtocol{net: w, heads: []int{10, 30, 50, 70, 90}}
		cfg := DefaultConfig()
		cfg.MeanInterArrival = 1e9 // no data traffic at all
		cfg.DisableControlTraffic = disable
		e, _ := NewEngine(w, proto, energy.DefaultModel(), cfg)
		if _, err := e.Run(context.Background(), 3); err != nil {
			t.Fatal(err)
		}
		return float64(w.TotalConsumed())
	}
	with := consumed(false)
	without := consumed(true)
	if with <= without {
		t.Fatalf("control traffic not charged: with=%v without=%v", with, without)
	}
	if without != 0 {
		t.Fatalf("energy consumed with no traffic and no control: %v", without)
	}
}

func TestDeadNodesStopParticipating(t *testing.T) {
	w := paperNet(t, 13)
	// Kill half the nodes outright.
	for i := 0; i < 50; i++ {
		w.Nodes[i].Battery.Draw(5)
	}
	proto := &stubProtocol{net: w, heads: []int{60, 70, 80}}
	cfg := DefaultConfig()
	e, _ := NewEngine(w, proto, energy.DefaultModel(), cfg)
	res, err := e.Run(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Dead nodes generate nothing; with λ=4s, 20s rounds, 3 rounds and
	// ~50 alive nodes, expect roughly 50·5·3 = 750 packets, not 1500.
	if res.Generated > 1000 {
		t.Fatalf("generated %d packets; dead nodes apparently transmitting", res.Generated)
	}
	for i := 0; i < 50; i++ {
		if w.Nodes[i].Battery.Consumed() != 5 {
			t.Fatalf("dead node %d consumed more energy after death", i)
		}
	}
}

func TestTransmissionToDeadHeadRetriesAndDrops(t *testing.T) {
	w := paperNet(t, 14)
	w.Nodes[10].Battery.Draw(5) // the only head is dead
	proto := &stubProtocol{net: w, heads: []int{10}}
	// Force all members at the dead head (no BS fallback).
	proto.hops = map[int]int{}
	for id := 1; id < w.N(); id++ {
		proto.hops[id] = 10
	}
	cfg := DefaultConfig()
	cfg.MeanInterArrival = 5
	e, _ := NewEngine(w, proto, energy.DefaultModel(), cfg)
	res, err := e.Run(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 {
		t.Fatalf("delivered %d packets through a dead head", res.Delivered)
	}
	if res.DroppedTotal() != res.Generated {
		t.Fatalf("drops %d != generated %d", res.DroppedTotal(), res.Generated)
	}
}

func TestPerRoundStatsSumToTotals(t *testing.T) {
	w := paperNet(t, 15)
	proto := &stubProtocol{net: w, heads: []int{10, 30, 50}}
	e, _ := NewEngine(w, proto, energy.DefaultModel(), DefaultConfig())
	res, err := e.Run(context.Background(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.PerRound) != 6 {
		t.Fatalf("per-round entries = %d", len(res.PerRound))
	}
	for i, rs := range res.PerRound {
		if rs.Round != i {
			t.Fatalf("round index %d at position %d", rs.Round, i)
		}
		if rs.Heads != 3 {
			t.Fatalf("round %d heads = %d", i, rs.Heads)
		}
	}
}

func TestConsumptionRatesPopulated(t *testing.T) {
	w := paperNet(t, 16)
	proto := &stubProtocol{net: w, heads: []int{10, 30, 50}}
	e, _ := NewEngine(w, proto, energy.DefaultModel(), DefaultConfig())
	res, _ := e.Run(context.Background(), 3)
	if len(res.ConsumptionRates) != 100 {
		t.Fatalf("consumption rates length %d", len(res.ConsumptionRates))
	}
	any := false
	for _, r := range res.ConsumptionRates {
		if r < 0 || r > 1 {
			t.Fatalf("consumption rate %v outside [0,1]", r)
		}
		if r > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("no node consumed anything")
	}
}

func TestBSQueueBoundsDirectTraffic(t *testing.T) {
	// All 100 nodes firing straight at the BS at λ=1 offer ~100 pkt/s
	// against the BS's 50 pkt/s pipeline: about half must be dropped at
	// the BS queue — the "burden of the base station" of §4.2.
	w := paperNet(t, 30)
	proto := &stubProtocol{net: w} // no heads → everyone direct to BS
	cfg := DefaultConfig()
	cfg.MeanInterArrival = 1
	e, _ := NewEngine(w, proto, energy.DefaultModel(), cfg)
	res, err := e.Run(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.PDR() > 0.75 {
		t.Fatalf("direct overload PDR = %v; BS queue not binding", res.PDR())
	}
	if res.Dropped[1] == 0 { // metrics.DropQueue
		t.Fatal("no queue drops at the BS under overload")
	}
	// Under light traffic the BS keeps up and nothing is lost there.
	w2 := paperNet(t, 30)
	cfg.MeanInterArrival = 10
	e2, _ := NewEngine(w2, &stubProtocol{net: w2}, energy.DefaultModel(), cfg)
	res2, err := e2.Run(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res2.PDR() < 0.97 {
		t.Fatalf("light direct traffic PDR = %v", res2.PDR())
	}
}

func TestBSServiceAddsLatency(t *testing.T) {
	// Direct packets now wait in the BS pipeline; latency must reflect
	// service time at minimum.
	w := paperNet(t, 31)
	proto := &stubProtocol{net: w}
	cfg := DefaultConfig()
	cfg.MeanInterArrival = 10
	e, _ := NewEngine(w, proto, energy.DefaultModel(), cfg)
	res, err := e.Run(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Min < cfg.TxDelay(cfg.Bits)+cfg.BSServiceTime-1e-9 {
		t.Fatalf("min latency %v below tx+service floor", res.Latency.Min)
	}
}

func TestEnergyBreakdownSumsToTotal(t *testing.T) {
	w := paperNet(t, 32)
	proto := &stubProtocol{net: w, heads: []int{10, 30, 50, 70, 90}}
	e, _ := NewEngine(w, proto, energy.DefaultModel(), DefaultConfig())
	res, err := e.Run(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	sum := float64(res.Energy.Total())
	if math.Abs(sum-float64(res.TotalEnergy)) > 1e-9 {
		t.Fatalf("breakdown sums to %v, total %v — an unclassified draw site exists",
			sum, float64(res.TotalEnergy))
	}
	for name, v := range map[string]float64{
		"tx":      float64(res.Energy.Tx),
		"rx":      float64(res.Energy.Rx),
		"fusion":  float64(res.Energy.Fusion),
		"control": float64(res.Energy.Control),
	} {
		if v <= 0 {
			t.Fatalf("energy category %s empty under normal traffic", name)
		}
	}
	// Transmit energy dominates in the first-order radio model.
	if res.Energy.Tx < res.Energy.Fusion {
		t.Fatalf("tx %v below fusion %v; classification suspicious",
			res.Energy.Tx, res.Energy.Fusion)
	}
}

func TestTxDelay(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.TxDelay(250e3); math.Abs(got-1) > 1e-12 {
		t.Fatalf("TxDelay = %v, want 1s", got)
	}
}
