package sim

import (
	"context"
	"errors"
	"testing"

	"qlec/internal/energy"
	"qlec/internal/network"
	"qlec/internal/rng"
)

// stepEngine builds a small engine for stepper tests.
func stepEngine(t *testing.T, seed uint64) *Engine {
	t.Helper()
	w, err := network.Deploy(network.Deployment{N: 40, Side: 150, InitialEnergy: 5},
		rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = seed
	e, err := NewEngine(w, &stubProtocol{net: w, heads: []int{3, 17, 29}}, energy.DefaultModel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestStepLoopMatchesRun(t *testing.T) {
	const rounds = 5
	ran, err := stepEngine(t, 9).Run(context.Background(), rounds)
	if err != nil {
		t.Fatal(err)
	}

	e := stepEngine(t, 9)
	if err := e.Start(rounds); err != nil {
		t.Fatal(err)
	}
	var snaps []RoundSnapshot
	for {
		snap, err := e.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snap)
		if snap.Done {
			break
		}
	}
	stepped := e.Result()

	if len(snaps) != rounds {
		t.Fatalf("%d snapshots", len(snaps))
	}
	if ran.Generated != stepped.Generated || ran.Delivered != stepped.Delivered ||
		ran.TotalEnergy != stepped.TotalEnergy || ran.Rounds != stepped.Rounds {
		t.Fatalf("Step loop diverged from Run: %+v vs %+v", stepped, ran)
	}
	for i, snap := range snaps {
		if snap.Round != i {
			t.Fatalf("snapshot %d has Round %d", i, snap.Round)
		}
		if len(snap.Heads) != 3 {
			t.Fatalf("round %d: %d heads", i, len(snap.Heads))
		}
		if snap.Stats != ran.PerRound[i] {
			t.Fatalf("round %d stats diverge: %+v vs %+v", i, snap.Stats, ran.PerRound[i])
		}
		if snap.Alive != snap.Stats.AliveAtEnd {
			t.Fatalf("round %d alive %d vs stats %d", i, snap.Alive, snap.Stats.AliveAtEnd)
		}
	}
	// Energy is cumulative and non-decreasing across snapshots.
	for i := 1; i < len(snaps); i++ {
		if snaps[i].EnergySoFar < snaps[i-1].EnergySoFar {
			t.Fatal("EnergySoFar decreased")
		}
	}
	if got := snaps[rounds-1].EnergySoFar; got != ran.TotalEnergy {
		t.Fatalf("final EnergySoFar %v vs run total %v", got, ran.TotalEnergy)
	}
	if !snaps[rounds-1].Done {
		t.Fatal("last snapshot not Done")
	}

	// Stepping past the end is an explicit error.
	if _, err := e.Step(context.Background()); !errors.Is(err, ErrRunComplete) {
		t.Fatalf("Step after Done: %v", err)
	}
}

func TestStepContextCancellation(t *testing.T) {
	e := stepEngine(t, 4)
	if err := e.Start(10); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := e.Step(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := e.Step(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Step returned %v", err)
	}
	// The partial result stays consistent: exactly one round recorded.
	res := e.Result()
	if res.Rounds != 1 || len(res.PerRound) != 1 {
		t.Fatalf("partial result rounds = %d", res.Rounds)
	}
	// A fresh context can resume the run.
	if _, err := e.Step(context.Background()); err != nil {
		t.Fatalf("resume after cancellation: %v", err)
	}
}

func TestRunReturnsPartialResultOnCancel(t *testing.T) {
	e := stepEngine(t, 11)
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from the observer after the third round completes.
	e.SetObserver(func(snap RoundSnapshot) {
		if snap.Round == 2 {
			cancel()
		}
	})
	res, err := e.Run(ctx, 50)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if res == nil {
		t.Fatal("no partial result")
	}
	if res.Rounds != 3 {
		t.Fatalf("partial result has %d rounds, want 3", res.Rounds)
	}
	if res.Generated == 0 || res.TotalEnergy <= 0 {
		t.Fatalf("partial result empty: %+v", res)
	}
}

func TestObserverSeesEveryRound(t *testing.T) {
	e := stepEngine(t, 2)
	var rounds []int
	var lastDone bool
	e.SetObserver(func(snap RoundSnapshot) {
		rounds = append(rounds, snap.Round)
		lastDone = snap.Done
	})
	if _, err := e.Run(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 4 {
		t.Fatalf("observer saw %d rounds", len(rounds))
	}
	for i, r := range rounds {
		if r != i {
			t.Fatalf("observer order %v", rounds)
		}
	}
	if !lastDone {
		t.Fatal("observer never saw Done")
	}
}

func TestEnginesAreSingleUse(t *testing.T) {
	e := stepEngine(t, 3)
	if _, err := e.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(2); err == nil {
		t.Fatal("second Start accepted")
	}
	if _, err := e.Run(context.Background(), 2); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestStepBeforeStart(t *testing.T) {
	e := stepEngine(t, 5)
	if _, err := e.Step(context.Background()); err == nil {
		t.Fatal("Step before Start accepted")
	}
	if res := e.Result(); res != nil {
		t.Fatal("Result before Start non-nil")
	}
}

func TestStopOnDeathEndsStepper(t *testing.T) {
	w, err := network.Deploy(network.Deployment{N: 30, Side: 150, InitialEnergy: 5},
		rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = 8
	cfg.DeathLine = 4.99
	cfg.StopOnDeath = true
	cfg.MeanInterArrival = 0.5
	e, err := NewEngine(w, &stubProtocol{net: w, heads: []int{1, 2}}, energy.DefaultModel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lifespan == 0 {
		t.Fatal("no death observed")
	}
	if res.Rounds != res.Lifespan {
		t.Fatalf("run did not stop at death: rounds %d lifespan %d", res.Rounds, res.Lifespan)
	}
}
