package sim

import (
	"context"
	"fmt"
	"math"

	"qlec/internal/cluster"
	"qlec/internal/energy"
	"qlec/internal/geom"
	"qlec/internal/metrics"
	"qlec/internal/mobility"
	"qlec/internal/network"
	"qlec/internal/packet"
	"qlec/internal/rng"
	"qlec/internal/stats"
)

// Engine runs one protocol over one network for a number of rounds.
//
// The engine owns the shared, protocol-independent state of a run —
// batteries, head queues, RNG streams, accumulators — while the event
// loop itself lives in the lane kernel (lane.go): one serial lane that
// replays the historical single-heap schedule byte for byte, or, when
// Config.ClusterWorkers enables it and the protocol qualifies, one lane
// per cluster running concurrently between CH-selection barriers
// (parallel.go).
type Engine struct {
	cfg   Config
	net   *network.Network
	proto cluster.Protocol
	model energy.Model
	calc  energy.Calc // model with the crossover distance precomputed

	nodeGen []*rng.Stream // per-node traffic timing streams
	link    *rng.Stream   // link success draws (serial schedule)

	// nodeLink holds per-node link-draw sub-streams, materialized on the
	// first parallel round: cross-cluster event interleaving must not
	// perturb the sequence any one transmitter sees, so each node draws
	// from its own stream there. The serial kernel keeps the single
	// shared stream in event order for byte-compatibility with the
	// historical schedule.
	nodeLink []rng.Stream

	// main is the serial lane: it owns every node and points its metric
	// sinks straight at the engine's accumulators, reproducing the
	// historical event loop exactly.
	main lane

	// lanes and sinks are the parallel round kernel's per-cluster lanes
	// and their private metric sinks, reused across rounds. laneOf is the
	// node→lane partition scratch.
	lanes  []*lane
	sinks  []laneSinks
	laneOf []int32

	// Per-round head state, indexed by node id. servicePending[h]
	// reports that an evService event for head h is sitting in the heap;
	// the fusion pipeline is re-armed only when it is clear, so an
	// arrival landing at exactly the pending completion time cannot
	// start a second concurrent service chain.
	isHead         []bool
	queues         []*packet.Queue
	servicePending []bool
	fused          []fusedBuf

	// queuePool recycles head queues across rounds; without it every
	// round allocates K fresh queues plus their ring storage.
	queuePool []*packet.Queue

	// Base-station receive pipeline for in-round packets (direct-to-BS
	// traffic, FCM terminal hops). Finite, per Config.BSQueueCapacity.
	bsQueue *packet.Queue

	// mover advances node positions between rounds when mobility is
	// configured.
	mover *mobility.RandomWaypoint

	// shadow caches per-link log-normal quality factors in a dense
	// slice indexed from*(N+1)+(to+1) (NaN = not drawn yet; lazily
	// filled so the draw stream is only consumed for links actually
	// used). shadowSeed derives the factors deterministically from the
	// (from, target) pair so runs stay reproducible regardless of
	// lookup order.
	shadow     []float64
	shadowSeed *rng.Stream

	nextPkt packet.ID
	now     float64 // engine clock outside the event loop (round start)

	// tracer, when installed, observes every packet transition;
	// curRound stamps trace events. observer, when installed, receives
	// one RoundSnapshot per completed round (see step.go). auditor,
	// when installed, receives every classified battery draw plus round
	// boundaries (see audit.go).
	tracer   Tracer
	observer Observer
	auditor  Auditor
	curRound int

	// Stepper state (see step.go): the planned round budget, the next
	// round to execute, and whether the run has ended.
	targetRounds int
	nextRound    int
	finished     bool

	// posBuf is the reusable position scratch buffer for moveNodes;
	// headsBuf is the reusable RoundSnapshot.Heads buffer of the
	// unobserved stepper path (see step.go).
	posBuf   []geom.Vec3
	headsBuf []int

	// Per-round link-geometry cache (serial lane only). The hop distance
	// and the base channel probability LinkPMax·exp(−(d/LinkRef)²) are
	// pure functions of positions that are frozen for the round, yet the
	// hot path recomputed the sqrt on every transmit and the exp on
	// every arrival. Rows are indexed from·(K+1)+slot where slot 0 is
	// the BS and slot 1+j is geomHeads[j]; cells fill lazily (stamped
	// with geomRound) so only links actually exercised pay the math.
	// Cached and fresh values are bit-identical — the same expressions
	// on the same inputs — so results are unchanged (DESIGN.md §8).
	// Parallel lanes bypass the cache: the lazy fill would race.
	geomHeads []int
	geomSlot  []int32 // node id → row slot, -1 when not a head this round
	geomStamp []uint32
	geomRound uint32
	geomD     []float64
	geomP     []float64

	// breakdown tallies consumption by radio activity.
	breakdown metrics.EnergyBreakdown

	// Accumulators.
	res      *metrics.Result
	round    metrics.RoundStats
	latency  stats.Accumulator
	access   stats.Accumulator
	hops     stats.Accumulator
	roundLat stats.Accumulator
}

// fusedBuf accumulates a head's serviced packets awaiting the
// end-of-round burst (HoldAndBurst protocols).
type fusedBuf struct {
	bits int
	pkts []packet.Packet
}

// NewEngine builds an engine. The protocol must already be bound to the
// same network.
func NewEngine(w *network.Network, proto cluster.Protocol, model energy.Model, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if proto == nil {
		return nil, fmt.Errorf("sim: nil protocol")
	}
	e := &Engine{
		cfg:            cfg,
		net:            w,
		proto:          proto,
		model:          model,
		calc:           model.Calc(),
		link:           rng.NewNamed(cfg.Seed, "sim/link"),
		isHead:         make([]bool, w.N()),
		queues:         make([]*packet.Queue, w.N()),
		servicePending: make([]bool, w.N()),
		fused:          make([]fusedBuf, w.N()),
	}
	// The serial lane writes straight into the engine's accumulators so
	// observation order — and therefore every Welford intermediate —
	// matches the historical single-heap loop exactly.
	e.main.e = e
	e.main.link = e.link
	e.main.round = &e.round
	e.main.breakdown = &e.breakdown
	e.main.latency = &e.latency
	e.main.access = &e.access
	e.main.hopsAcc = &e.hops
	e.main.roundLat = &e.roundLat
	traffic := rng.NewNamed(cfg.Seed, "sim/traffic")
	e.nodeGen = make([]*rng.Stream, w.N())
	for i := range e.nodeGen {
		e.nodeGen[i] = traffic.Split(uint64(i))
	}
	if cfg.ShadowSigma > 0 {
		e.shadow = make([]float64, w.N()*(w.N()+1))
		for i := range e.shadow {
			e.shadow[i] = math.NaN()
		}
		e.shadowSeed = rng.NewNamed(cfg.Seed, "sim/shadow")
	}
	if cfg.MobilitySpeedMax > 0 {
		m, err := mobility.NewRandomWaypoint(w.Box, w.N(),
			cfg.MobilitySpeedMin, cfg.MobilitySpeedMax, cfg.MobilityPause,
			rng.NewNamed(cfg.Seed, "sim/mobility"))
		if err != nil {
			return nil, err
		}
		e.mover = m
	}
	return e, nil
}

// shadowFactor returns the link's persistent log-normal quality factor,
// drawing it on first use from a stream keyed by the (from, target)
// pair so the value is independent of lookup order. target may be BSID
// (−1); the dense index maps it to column 0.
func (e *Engine) shadowFactor(from, target int) float64 {
	i := from*(e.net.N()+1) + target + 1
	if f := e.shadow[i]; !math.IsNaN(f) {
		return f
	}
	z := e.shadowSeed.Split(uint64(i)).NormFloat64()
	sigma := e.cfg.ShadowSigma
	f := math.Exp(sigma*z - sigma*sigma/2) // mean-1 log-normal
	e.shadow[i] = f
	return f
}

// drawControl bills a control-plane battery draw (head advertisements,
// member receptions). Control traffic happens at the CH-selection
// barrier, outside any lane's event loop, so it writes the engine's
// breakdown directly.
func (e *Engine) drawControl(id int, amount energy.Joules) {
	d := e.net.Nodes[id].Battery.Draw(amount)
	e.breakdown.Control += d
	if e.auditor != nil {
		e.auditEnergy(CauseControl, id, d, 0, false)
	}
}

func (e *Engine) alive(id int) bool {
	return e.net.Nodes[id].Alive(e.cfg.DeathLine)
}

func (e *Engine) dist(from, to int) float64 {
	if to == network.BSID {
		return e.net.DistToBS(from)
	}
	return e.net.Nodes[from].Pos.Dist(e.net.Nodes[to].Pos)
}

// Run executes up to rounds rounds and returns the measurements. It is
// a thin loop over the stepper API (Start/Step/Result in step.go).
// Cancelling ctx stops the run at the next round boundary and returns
// the partial result accumulated so far alongside ctx's error, so
// callers can report progress made before the interruption.
func (e *Engine) Run(ctx context.Context, rounds int) (*metrics.Result, error) {
	if err := e.Start(rounds); err != nil {
		return nil, err
	}
	for {
		snap, err := e.Step(ctx)
		if err != nil {
			return e.Result(), err
		}
		if snap.Done {
			return e.Result(), nil
		}
	}
}

// moveNodes advances every node one round of random-waypoint motion.
// Positions mutate in place on the shared network, so the next round's
// head selection and routing see the drifted topology. The scratch
// buffer persists across rounds — mobility runs for thousands of rounds
// in lifespan mode, so a per-round allocation here is measurable.
func (e *Engine) moveNodes() {
	if cap(e.posBuf) < e.net.N() {
		e.posBuf = make([]geom.Vec3, e.net.N())
	}
	pos := e.posBuf[:e.net.N()]
	for i, n := range e.net.Nodes {
		pos[i] = n.Pos
	}
	e.mover.Advance(pos, e.cfg.RoundDuration)
	for i, n := range e.net.Nodes {
		n.Pos = pos[i]
	}
	if g, ok := e.proto.(cluster.GeometryInvalidator); ok {
		g.InvalidateGeometry()
	}
}

// runRound executes one full round: head selection, event loop, drain,
// end-of-round delivery. Returns the round's cluster-head ids.
func (e *Engine) runRound(r int) []int {
	roundStart := float64(r) * e.cfg.RoundDuration
	roundEnd := roundStart + e.cfg.RoundDuration
	e.now = roundStart
	e.curRound = r
	energyBefore := e.net.TotalConsumed()
	e.round = metrics.RoundStats{Round: r}
	e.roundLat = stats.Accumulator{}

	heads := e.proto.StartRound(r)
	e.round.Heads = len(heads)
	if e.auditor != nil {
		e.auditor.AuditBeginRound(r, heads)
	}
	e.setupHeads(heads)
	if !e.cfg.DisableControlTraffic {
		e.chargeControl(heads)
	}

	if e.parallelEligible() {
		e.runLanesParallel(heads, roundStart, roundEnd)
	} else {
		e.runSerial(heads, roundStart, roundEnd)
	}

	e.proto.EndRound(r)

	e.round.Energy = e.net.TotalConsumed() - energyBefore
	e.round.AliveAtEnd = e.net.AliveCount(e.cfg.DeathLine)
	e.round.MeanLatency = e.roundLat.Mean()
	e.res.Generated += e.round.Generated
	e.res.Delivered += e.round.Delivered
	for i, d := range e.round.Dropped {
		e.res.Dropped[i] += d
	}
	e.res.TotalEnergy += e.round.Energy
	if e.auditor != nil {
		e.auditor.AuditEndRound(r, e.round.Energy, e.res.TotalEnergy)
	}
	return heads
}

// runSerial executes the round on the single serial lane: every node on
// one event heap, the shared link stream drawn in event order — the
// historical schedule, byte for byte.
func (e *Engine) runSerial(heads []int, roundStart, roundEnd float64) {
	l := &e.main
	l.par = false
	l.hold = e.proto.RelayMode() == cluster.HoldAndBurst
	l.now = roundStart
	l.inFlight = 0
	l.bsPending = false
	l.nextPkt = e.nextPkt
	l.events.Reset()
	l.nodes = l.nodes[:0]
	for id := range e.net.Nodes {
		if e.alive(id) {
			l.nodes = append(l.nodes, int32(id))
		}
	}
	l.buildGen(roundStart, roundEnd)
	l.drain(roundEnd)
	l.endOfRound(heads)
	e.nextPkt = l.nextPkt
}

// setupHeads resets per-round head state, recycling last round's queues
// through the pool instead of allocating fresh ones.
func (e *Engine) setupHeads(heads []int) {
	for i := range e.isHead {
		e.isHead[i] = false
		e.servicePending[i] = false
		if q := e.queues[i]; q != nil {
			q.Reset()
			e.queuePool = append(e.queuePool, q)
			e.queues[i] = nil
		}
		e.fused[i].bits = 0
		e.fused[i].pkts = e.fused[i].pkts[:0]
	}
	for _, h := range heads {
		e.isHead[h] = true
		if n := len(e.queuePool); n > 0 {
			e.queues[h] = e.queuePool[n-1]
			e.queuePool = e.queuePool[:n-1]
		} else {
			e.queues[h] = packet.NewQueue(e.cfg.QueueCapacity)
		}
	}
	if e.bsQueue == nil {
		e.bsQueue = packet.NewQueue(e.cfg.BSQueueCapacity)
	} else {
		e.bsQueue.Reset()
	}
	e.armGeom(heads)
}

// armGeom points the link-geometry cache at this round's head set and
// invalidates every cell by bumping the round stamp.
func (e *Engine) armGeom(heads []int) {
	if e.geomSlot == nil {
		e.geomSlot = make([]int32, len(e.net.Nodes))
		for i := range e.geomSlot {
			e.geomSlot[i] = -1
		}
	}
	for _, h := range e.geomHeads {
		e.geomSlot[h] = -1
	}
	e.geomHeads = append(e.geomHeads[:0], heads...)
	for j, h := range heads {
		e.geomSlot[h] = int32(j + 1)
	}
	e.geomRound++
	need := len(e.net.Nodes) * (len(heads) + 1)
	if cap(e.geomStamp) < need {
		e.geomStamp = make([]uint32, need)
		e.geomD = make([]float64, need)
		e.geomP = make([]float64, need)
	}
	e.geomStamp = e.geomStamp[:need]
	e.geomD = e.geomD[:need]
	e.geomP = e.geomP[:need]
}

// chargeControl bills the per-round control traffic: every head
// broadcasts an advertisement over the coverage radius; every other
// alive node receives one.
func (e *Engine) chargeControl(heads []int) {
	if len(heads) == 0 {
		return
	}
	side := e.net.Box.Size().X
	dc := geom.CoverageRadius(side, len(heads))
	for _, h := range heads {
		e.drawControl(h, e.model.Tx(e.cfg.HelloBits, dc))
	}
	rx := e.model.Rx(e.cfg.HelloBits)
	for id := range e.net.Nodes {
		if !e.isHead[id] && e.alive(id) {
			e.drawControl(id, rx)
		}
	}
}

// compressedBits applies the Table 2 fusion ratio, keeping at least one
// bit so packets never become free to transmit.
func compressedBits(bits int, ratio float64) int {
	out := int(math.Ceil(float64(bits) * ratio))
	if out < 1 {
		out = 1
	}
	return out
}
