package sim

import (
	"context"
	"fmt"
	"math"

	"qlec/internal/cluster"
	"qlec/internal/energy"
	"qlec/internal/geom"
	"qlec/internal/metrics"
	"qlec/internal/mobility"
	"qlec/internal/network"
	"qlec/internal/packet"
	"qlec/internal/rng"
	"qlec/internal/stats"
)

// Engine runs one protocol over one network for a number of rounds.
type Engine struct {
	cfg   Config
	net   *network.Network
	proto cluster.Protocol
	model energy.Model

	nodeGen []*rng.Stream // per-node traffic timing streams
	link    *rng.Stream   // link success draws

	events eventHeap
	seq    uint64
	now    float64

	// Per-round head state, indexed by node id. servicePending[h]
	// reports that an evService event for head h is sitting in the heap;
	// the fusion pipeline is re-armed only when it is clear, so an
	// arrival landing at exactly the pending completion time cannot
	// start a second concurrent service chain.
	isHead         []bool
	queues         []*packet.Queue
	servicePending []bool
	fused          []fusedBuf

	// queuePool recycles head queues across rounds; without it every
	// round allocates K fresh queues plus their ring storage.
	queuePool []*packet.Queue

	// Base-station receive pipeline for in-round packets (direct-to-BS
	// traffic, FCM terminal hops). Finite, per Config.BSQueueCapacity.
	// bsPending mirrors servicePending for the BS pipeline.
	bsQueue   *packet.Queue
	bsPending bool

	// mover advances node positions between rounds when mobility is
	// configured.
	mover *mobility.RandomWaypoint

	// shadow caches per-link log-normal quality factors in a dense
	// slice indexed from*(N+1)+(to+1) (NaN = not drawn yet; lazily
	// filled so the draw stream is only consumed for links actually
	// used). shadowSeed derives the factors deterministically from the
	// (from, target) pair so runs stay reproducible regardless of
	// lookup order.
	shadow     []float64
	shadowSeed *rng.Stream

	nextPkt packet.ID

	// inFlight counts transmissions currently on the air, for the
	// contention model.
	inFlight int

	// tracer, when installed, observes every packet transition;
	// curRound stamps trace events. observer, when installed, receives
	// one RoundSnapshot per completed round (see step.go). auditor,
	// when installed, receives every classified battery draw plus round
	// boundaries (see audit.go).
	tracer   Tracer
	observer Observer
	auditor  Auditor
	curRound int

	// Stepper state (see step.go): the planned round budget, the next
	// round to execute, and whether the run has ended.
	targetRounds int
	nextRound    int
	finished     bool

	// posBuf is the reusable position scratch buffer for moveNodes.
	posBuf []geom.Vec3

	// breakdown tallies consumption by radio activity.
	breakdown metrics.EnergyBreakdown

	// Accumulators.
	res      *metrics.Result
	round    metrics.RoundStats
	latency  stats.Accumulator
	access   stats.Accumulator
	hops     stats.Accumulator
	roundLat stats.Accumulator
}

// fusedBuf accumulates a head's serviced packets awaiting the
// end-of-round burst (HoldAndBurst protocols).
type fusedBuf struct {
	bits int
	pkts []packet.Packet
}

// NewEngine builds an engine. The protocol must already be bound to the
// same network.
func NewEngine(w *network.Network, proto cluster.Protocol, model energy.Model, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if proto == nil {
		return nil, fmt.Errorf("sim: nil protocol")
	}
	e := &Engine{
		cfg:            cfg,
		net:            w,
		proto:          proto,
		model:          model,
		link:           rng.NewNamed(cfg.Seed, "sim/link"),
		isHead:         make([]bool, w.N()),
		queues:         make([]*packet.Queue, w.N()),
		servicePending: make([]bool, w.N()),
		fused:          make([]fusedBuf, w.N()),
	}
	traffic := rng.NewNamed(cfg.Seed, "sim/traffic")
	e.nodeGen = make([]*rng.Stream, w.N())
	for i := range e.nodeGen {
		e.nodeGen[i] = traffic.Split(uint64(i))
	}
	if cfg.ShadowSigma > 0 {
		e.shadow = make([]float64, w.N()*(w.N()+1))
		for i := range e.shadow {
			e.shadow[i] = math.NaN()
		}
		e.shadowSeed = rng.NewNamed(cfg.Seed, "sim/shadow")
	}
	if cfg.MobilitySpeedMax > 0 {
		m, err := mobility.NewRandomWaypoint(w.Box, w.N(),
			cfg.MobilitySpeedMin, cfg.MobilitySpeedMax, cfg.MobilityPause,
			rng.NewNamed(cfg.Seed, "sim/mobility"))
		if err != nil {
			return nil, err
		}
		e.mover = m
	}
	return e, nil
}

// linkP returns the link success probability from node `from` to
// `target` over distance d, including the persistent per-link shadowing
// factor when enabled.
func (e *Engine) linkP(from, target int, d float64) float64 {
	x := d / e.cfg.LinkRef
	p := e.cfg.LinkPMax * math.Exp(-x*x)
	if e.shadow != nil {
		p *= e.shadowFactor(from, target)
		if p > 0.999 {
			p = 0.999
		}
	}
	if e.cfg.ContentionGamma > 0 && e.inFlight > 1 {
		// The resolving transmission itself is one of inFlight; only the
		// others interfere.
		p *= math.Exp(-e.cfg.ContentionGamma * float64(e.inFlight-1))
	}
	return p
}

// shadowFactor returns the link's persistent log-normal quality factor,
// drawing it on first use from a stream keyed by the (from, target)
// pair so the value is independent of lookup order. target may be BSID
// (−1); the dense index maps it to column 0.
func (e *Engine) shadowFactor(from, target int) float64 {
	i := from*(e.net.N()+1) + target + 1
	if f := e.shadow[i]; !math.IsNaN(f) {
		return f
	}
	z := e.shadowSeed.Split(uint64(i)).NormFloat64()
	sigma := e.cfg.ShadowSigma
	f := math.Exp(sigma*z - sigma*sigma/2) // mean-1 log-normal
	e.shadow[i] = f
	return f
}

// Classified battery draws: every energy expenditure goes through one
// of these so Result.Energy's categories always sum to TotalEnergy and
// the audit ledger sees every joule. The ledger records the amount the
// battery actually drew (clamped at empty), not the amount requested.
// pkt/hasPkt attribute the draw to a packet where one exists; aggregate
// draws (control broadcasts, burst transmissions) pass hasPkt=false.
func (e *Engine) drawTx(id int, amount energy.Joules, pkt packet.ID, hasPkt bool) {
	d := e.net.Nodes[id].Battery.Draw(amount)
	e.breakdown.Tx += d
	if e.auditor != nil {
		e.auditEnergy(CauseTx, id, d, pkt, hasPkt)
	}
}

func (e *Engine) drawRx(id int, amount energy.Joules, pkt packet.ID, hasPkt bool) {
	d := e.net.Nodes[id].Battery.Draw(amount)
	e.breakdown.Rx += d
	if e.auditor != nil {
		e.auditEnergy(CauseRx, id, d, pkt, hasPkt)
	}
}

func (e *Engine) drawFusion(id int, amount energy.Joules, pkt packet.ID, hasPkt bool) {
	d := e.net.Nodes[id].Battery.Draw(amount)
	e.breakdown.Fusion += d
	if e.auditor != nil {
		e.auditEnergy(CauseFusion, id, d, pkt, hasPkt)
	}
}

func (e *Engine) drawControl(id int, amount energy.Joules) {
	d := e.net.Nodes[id].Battery.Draw(amount)
	e.breakdown.Control += d
	if e.auditor != nil {
		e.auditEnergy(CauseControl, id, d, 0, false)
	}
}

func (e *Engine) alive(id int) bool {
	return e.net.Nodes[id].Alive(e.cfg.DeathLine)
}

func (e *Engine) dist(from, to int) float64 {
	if to == network.BSID {
		return e.net.DistToBS(from)
	}
	return e.net.Nodes[from].Pos.Dist(e.net.Nodes[to].Pos)
}

func (e *Engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	e.events.Push(ev)
}

// Run executes up to rounds rounds and returns the measurements. It is
// a thin loop over the stepper API (Start/Step/Result in step.go).
// Cancelling ctx stops the run at the next round boundary and returns
// the partial result accumulated so far alongside ctx's error, so
// callers can report progress made before the interruption.
func (e *Engine) Run(ctx context.Context, rounds int) (*metrics.Result, error) {
	if err := e.Start(rounds); err != nil {
		return nil, err
	}
	for {
		snap, err := e.Step(ctx)
		if err != nil {
			return e.Result(), err
		}
		if snap.Done {
			return e.Result(), nil
		}
	}
}

// moveNodes advances every node one round of random-waypoint motion.
// Positions mutate in place on the shared network, so the next round's
// head selection and routing see the drifted topology. The scratch
// buffer persists across rounds — mobility runs for thousands of rounds
// in lifespan mode, so a per-round allocation here is measurable.
func (e *Engine) moveNodes() {
	if cap(e.posBuf) < e.net.N() {
		e.posBuf = make([]geom.Vec3, e.net.N())
	}
	pos := e.posBuf[:e.net.N()]
	for i, n := range e.net.Nodes {
		pos[i] = n.Pos
	}
	e.mover.Advance(pos, e.cfg.RoundDuration)
	for i, n := range e.net.Nodes {
		n.Pos = pos[i]
	}
}

// runRound executes one full round: head selection, event loop, drain,
// end-of-round delivery. Returns the round's cluster-head ids.
func (e *Engine) runRound(r int) []int {
	roundStart := float64(r) * e.cfg.RoundDuration
	roundEnd := roundStart + e.cfg.RoundDuration
	e.now = roundStart
	e.curRound = r
	energyBefore := e.net.TotalConsumed()
	e.round = metrics.RoundStats{Round: r}
	e.roundLat = stats.Accumulator{}

	heads := e.proto.StartRound(r)
	e.round.Heads = len(heads)
	if e.auditor != nil {
		e.auditor.AuditBeginRound(r, heads)
	}
	e.setupHeads(heads)
	if !e.cfg.DisableControlTraffic {
		e.chargeControl(heads)
	}

	// Schedule each alive node's first packet of the round.
	e.events.Reset()
	for id := range e.net.Nodes {
		if !e.alive(id) {
			continue
		}
		t := roundStart + e.nodeGen[id].ExpFloat64()*e.cfg.MeanInterArrival
		if t < roundEnd {
			e.push(event{t: t, kind: evGenerate, node: id})
		}
	}

	// Event loop: generation stops at roundEnd; in-flight transmissions
	// and queue service run to completion (the queues drain in bounded
	// time once generation ceases).
	for {
		ev, ok := e.events.Pop()
		if !ok {
			break
		}
		if ev.kind == evGenerate && ev.t >= roundEnd {
			continue
		}
		e.now = ev.t
		switch ev.kind {
		case evGenerate:
			e.handleGenerate(ev, roundEnd)
		case evArrive:
			e.handleArrive(ev)
		case evRetry:
			e.handleRetry(ev)
		case evService:
			e.handleService(ev)
		}
	}
	if e.now < roundEnd {
		e.now = roundEnd
	}

	e.endOfRound(heads)
	e.proto.EndRound(r)

	e.round.Energy = e.net.TotalConsumed() - energyBefore
	e.round.AliveAtEnd = e.net.AliveCount(e.cfg.DeathLine)
	e.round.MeanLatency = e.roundLat.Mean()
	e.res.Generated += e.round.Generated
	e.res.Delivered += e.round.Delivered
	for i, d := range e.round.Dropped {
		e.res.Dropped[i] += d
	}
	e.res.TotalEnergy += e.round.Energy
	if e.auditor != nil {
		e.auditor.AuditEndRound(r, e.round.Energy, e.res.TotalEnergy)
	}
	return heads
}

// setupHeads resets per-round head state, recycling last round's queues
// through the pool instead of allocating fresh ones.
func (e *Engine) setupHeads(heads []int) {
	for i := range e.isHead {
		e.isHead[i] = false
		e.servicePending[i] = false
		if q := e.queues[i]; q != nil {
			q.Reset()
			e.queuePool = append(e.queuePool, q)
			e.queues[i] = nil
		}
		e.fused[i].bits = 0
		e.fused[i].pkts = e.fused[i].pkts[:0]
	}
	for _, h := range heads {
		e.isHead[h] = true
		if n := len(e.queuePool); n > 0 {
			e.queues[h] = e.queuePool[n-1]
			e.queuePool = e.queuePool[:n-1]
		} else {
			e.queues[h] = packet.NewQueue(e.cfg.QueueCapacity)
		}
	}
	if e.bsQueue == nil {
		e.bsQueue = packet.NewQueue(e.cfg.BSQueueCapacity)
	} else {
		e.bsQueue.Reset()
	}
	e.bsPending = false
}

// chargeControl bills the per-round control traffic: every head
// broadcasts an advertisement over the coverage radius; every other
// alive node receives one.
func (e *Engine) chargeControl(heads []int) {
	if len(heads) == 0 {
		return
	}
	side := e.net.Box.Size().X
	dc := geom.CoverageRadius(side, len(heads))
	for _, h := range heads {
		e.drawControl(h, e.model.Tx(e.cfg.HelloBits, dc))
	}
	rx := e.model.Rx(e.cfg.HelloBits)
	for id := range e.net.Nodes {
		if !e.isHead[id] && e.alive(id) {
			e.drawControl(id, rx)
		}
	}
}

// handleGenerate creates a packet at the node and launches it.
func (e *Engine) handleGenerate(ev event, roundEnd float64) {
	id := ev.node
	// Schedule the node's next generation regardless of this packet's
	// fate, to keep the Poisson process running.
	next := e.now + e.nodeGen[id].ExpFloat64()*e.cfg.MeanInterArrival
	if next < roundEnd {
		e.push(event{t: next, kind: evGenerate, node: id})
	}
	if !e.alive(id) {
		return
	}
	pkt := packet.Packet{ID: e.nextPkt, Source: id, Bits: e.cfg.Bits, Born: e.now}
	e.nextPkt++
	e.round.Generated++
	e.trace(TraceEvent{Kind: TraceGenerate, Packet: pkt.ID, Node: id})

	if e.isHead[id] {
		// A head's own sensing data goes straight into its queue —
		// no radio hop.
		if e.queues[id].Push(pkt) {
			e.scheduleService(id)
		} else {
			e.drop(metrics.DropQueue, pkt, id)
		}
		return
	}
	e.transmit(pkt, id, 0)
}

// transmit starts one radio attempt of pkt from node `from` toward the
// protocol's chosen target, paying the transmit energy now and resolving
// the outcome after the serialization delay.
func (e *Engine) transmit(pkt packet.Packet, from, attempt int) {
	target := e.proto.NextHop(from)
	d := e.dist(from, target)
	e.drawTx(from, e.model.Tx(pkt.Bits, d), pkt.ID, true)
	e.inFlight++
	e.trace(TraceEvent{Kind: TraceSend, Packet: pkt.ID, Node: from, Target: target, Attempt: attempt})
	e.push(event{
		t: e.now + e.cfg.TxDelay(pkt.Bits), kind: evArrive,
		node: from, target: target, attempt: attempt, pkt: pkt,
	})
}

// handleArrive resolves a transmission attempt at its target.
func (e *Engine) handleArrive(ev event) {
	from, target := ev.node, ev.target
	d := e.dist(from, target)
	linkOK := e.link.Float64() < e.linkP(from, target, d)
	if e.inFlight > 0 {
		e.inFlight--
	}

	success := false
	reason := metrics.DropLink
	if linkOK {
		switch {
		case target == network.BSID:
			// The BS is mains-powered but its receive pipeline is
			// finite: acceptance goes through a bounded queue, and
			// delivery completes at BS service time (the "burden of the
			// base station" the paper's −l penalty exists to limit).
			pkt := ev.pkt
			pkt.Hops++
			if e.bsQueue.Push(pkt) {
				success = true
				e.scheduleBSService()
			} else {
				reason = metrics.DropQueue
			}
		case e.alive(target) && e.queues[target] != nil:
			// Receiving costs energy whether or not the queue has room.
			e.drawRx(target, e.model.Rx(ev.pkt.Bits), ev.pkt.ID, true)
			pkt := ev.pkt
			pkt.Hops++
			if e.queues[target].Push(pkt) {
				success = true
				e.scheduleService(target)
			} else {
				reason = metrics.DropQueue
			}
		default:
			// Dead target (or a node that is no longer a head): the
			// transmission goes unanswered.
			reason = metrics.DropDead
		}
	}
	e.proto.OnOutcome(from, target, success)
	if success {
		e.trace(TraceEvent{Kind: TraceAccept, Packet: ev.pkt.ID, Node: from, Target: target, Attempt: ev.attempt})
		// First radio hop accepted: record access latency (the routing-
		// controlled part of delay; see metrics.Result.Access).
		if ev.pkt.Hops == 0 {
			e.access.Observe(e.now - ev.pkt.Born)
		}
		return
	}
	e.trace(TraceEvent{Kind: TraceReject, Packet: ev.pkt.ID, Node: from, Target: target, Attempt: ev.attempt, Reason: reason.String()})
	if ev.attempt < e.cfg.MaxRetries && e.alive(from) {
		e.push(event{
			t: e.now + e.cfg.RetryBackoff, kind: evRetry,
			node: from, attempt: ev.attempt + 1, pkt: ev.pkt,
		})
		return
	}
	e.drop(reason, ev.pkt, from)
}

// handleRetry re-launches a failed packet; the protocol may pick a
// different target this time (QLEC's reroute).
func (e *Engine) handleRetry(ev event) {
	if !e.alive(ev.node) {
		e.drop(metrics.DropDead, ev.pkt, ev.node)
		return
	}
	e.transmit(ev.pkt, ev.node, ev.attempt)
}

// scheduleService starts the head's fusion pipeline unless an evService
// event is already pending. The explicit pending flag (not a busy-until
// timestamp) makes an arrival at exactly the pending completion time a
// no-op; a `busyUntil > now` guard passed on that tie and started a
// second concurrent service chain (fixed ServiceTime/TxDelay/
// RetryBackoff deltas make exact ties reachable).
func (e *Engine) scheduleService(head int) {
	if e.servicePending[head] || e.queues[head].Len() == 0 {
		return // chain already running, or nothing to serve
	}
	e.servicePending[head] = true
	e.push(event{t: e.now + e.cfg.ServiceTime, kind: evService, node: head})
}

// scheduleBSService starts the base station's receive pipeline if idle;
// same pending-flag discipline as scheduleService.
func (e *Engine) scheduleBSService() {
	if e.bsPending || e.bsQueue.Len() == 0 {
		return
	}
	e.bsPending = true
	e.push(event{t: e.now + e.cfg.BSServiceTime, kind: evService, node: network.BSID})
}

// handleService fuses the packet at the head's queue front, or completes
// BS-side processing when node is the base station.
func (e *Engine) handleService(ev event) {
	if ev.node == network.BSID {
		e.bsPending = false
		if pkt, ok := e.bsQueue.Pop(); ok {
			e.deliver(pkt)
		}
		if e.bsQueue.Len() > 0 {
			e.bsPending = true
			e.push(event{t: e.now + e.cfg.BSServiceTime, kind: evService, node: network.BSID})
		}
		return
	}
	head := ev.node
	e.servicePending[head] = false
	q := e.queues[head]
	if q == nil {
		return
	}
	pkt, ok := q.Pop()
	if ok {
		if e.alive(head) {
			e.drawFusion(head, e.model.Aggregate(pkt.Bits), pkt.ID, true)
			e.trace(TraceEvent{Kind: TraceService, Packet: pkt.ID, Node: head})
			e.afterService(head, pkt)
		} else {
			e.drop(metrics.DropDead, pkt, head)
		}
	}
	if q.Len() > 0 {
		e.servicePending[head] = true
		e.push(event{t: e.now + e.cfg.ServiceTime, kind: evService, node: head})
	}
}

// afterService routes a fused packet according to the protocol's relay
// mode: buffer it for the end-of-round burst, or forward it now through
// the head hierarchy (the FCM baseline).
func (e *Engine) afterService(head int, pkt packet.Packet) {
	if e.proto.RelayMode() == cluster.HoldAndBurst {
		e.fused[head].bits += pkt.Bits
		e.fused[head].pkts = append(e.fused[head].pkts, pkt)
		return
	}
	// ForwardPerPacket: compress at the first head only, then relay.
	bits := pkt.Bits
	if pkt.Hops <= 1 {
		bits = compressedBits(bits, e.cfg.Compression)
	}
	fwd := pkt
	fwd.Bits = bits
	e.transmit(fwd, head, 0)
}

// compressedBits applies the Table 2 fusion ratio, keeping at least one
// bit so packets never become free to transmit.
func compressedBits(bits int, ratio float64) int {
	out := int(math.Ceil(float64(bits) * ratio))
	if out < 1 {
		out = 1
	}
	return out
}

// drop abandons a packet, recording the reason in metrics and the
// trace.
func (e *Engine) drop(reason metrics.DropReason, pkt packet.Packet, node int) {
	e.round.Dropped[reason]++
	e.trace(TraceEvent{Kind: TraceDrop, Packet: pkt.ID, Node: node, Reason: reason.String()})
}

// deliver records a packet's arrival at the base station.
func (e *Engine) deliver(pkt packet.Packet) {
	e.trace(TraceEvent{Kind: TraceDeliver, Packet: pkt.ID, Node: pkt.Source})
	e.round.Delivered++
	lat := e.now - pkt.Born
	e.latency.Observe(lat)
	e.roundLat.Observe(lat)
	e.hops.Observe(float64(pkt.Hops))
}

// endOfRound flushes remaining queue contents and performs the
// HoldAndBurst delivery toward the BS.
func (e *Engine) endOfRound(heads []int) {
	// Packets the BS accepted but had not finished processing complete
	// now (they were received; processing spills past the boundary).
	for {
		pkt, ok := e.bsQueue.Pop()
		if !ok {
			break
		}
		e.deliver(pkt)
	}
	hold := e.proto.RelayMode() == cluster.HoldAndBurst
	for _, h := range heads {
		q := e.queues[h]
		if q == nil {
			continue
		}
		// Remaining queued packets get fused in the final data-fusion
		// pass; a dead head strands its queue.
		for {
			pkt, ok := q.Pop()
			if !ok {
				break
			}
			if !e.alive(h) {
				e.drop(metrics.DropDead, pkt, h)
				continue
			}
			e.drawFusion(h, e.model.Aggregate(pkt.Bits), pkt.ID, true)
			if hold {
				e.fused[h].bits += pkt.Bits
				e.fused[h].pkts = append(e.fused[h].pkts, pkt)
			} else {
				e.forwardChainInstant(h, pkt)
			}
		}
		if hold {
			e.burst(h)
		}
	}
}

// burst sends a head's aggregate to the BS with retries (Algorithm 1
// lines 13-14: "transmit processed data directly to BS").
func (e *Engine) burst(head int) {
	buf := &e.fused[head]
	if len(buf.pkts) == 0 {
		return
	}
	aggBits := compressedBits(buf.bits, e.cfg.Compression)
	d := e.net.DistToBS(head)
	delivered := false
	for attempt := 0; attempt <= e.cfg.BatchRetries; attempt++ {
		if !e.alive(head) {
			break
		}
		e.drawTx(head, e.model.Tx(aggBits, d), 0, false)
		ok := e.link.Float64() < e.linkP(head, network.BSID, d)
		e.proto.OnOutcome(head, network.BSID, ok)
		if ok {
			delivered = true
			break
		}
	}
	arrival := e.now + e.cfg.TxDelay(aggBits)
	for _, pkt := range buf.pkts {
		if delivered {
			pkt.Hops++
			saved := e.now
			e.now = arrival
			e.deliver(pkt)
			e.now = saved
		} else {
			e.drop(metrics.DropBatch, pkt, head)
		}
	}
	buf.bits = 0
	buf.pkts = buf.pkts[:0]
}

// forwardChainInstant pushes a leftover fused packet through the
// protocol's relay chain at round end, paying per-hop energy and taking
// per-hop loss draws, without queueing (generation has stopped; queues
// are drained).
func (e *Engine) forwardChainInstant(head int, pkt packet.Packet) {
	bits := pkt.Bits
	if pkt.Hops <= 1 {
		bits = compressedBits(bits, e.cfg.Compression)
	}
	holder := head
	for hop := 0; hop < 32; hop++ {
		if !e.alive(holder) {
			e.drop(metrics.DropDead, pkt, holder)
			return
		}
		target := e.proto.NextHop(holder)
		d := e.dist(holder, target)
		ok := false
		for attempt := 0; attempt <= e.cfg.MaxRetries && !ok; attempt++ {
			e.drawTx(holder, e.model.Tx(bits, d), pkt.ID, true)
			ok = e.link.Float64() < e.linkP(holder, target, d)
			e.proto.OnOutcome(holder, target, ok)
		}
		if !ok {
			e.drop(metrics.DropLink, pkt, holder)
			return
		}
		pkt.Hops++
		if target == network.BSID {
			e.deliver(pkt)
			return
		}
		e.drawRx(target, e.model.Rx(bits), pkt.ID, true)
		holder = target
	}
	// Routing loop guard: a protocol that cycles loses the packet.
	e.drop(metrics.DropLink, pkt, holder)
}
