package sim

import (
	"testing"

	"qlec/internal/cluster"
	"qlec/internal/energy"
	"qlec/internal/network"
)

// fixedProto is a zero-allocation StaticRouter: fixed heads, hop map
// computed once. It isolates the round kernel's own allocation behavior
// from per-round protocol work (real selectors re-cluster every round).
type fixedProto struct {
	heads []int
	hop   []int
}

func (p *fixedProto) Name() string                        { return "fixed" }
func (p *fixedProto) StartRound(round int) []int          { return p.heads }
func (p *fixedProto) NextHop(node int) int                { return p.hop[node] }
func (p *fixedProto) StaticHops() []int                   { return p.hop }
func (p *fixedProto) OnOutcome(node, target int, ok bool) {}
func (p *fixedProto) EndRound(round int)                  {}
func (p *fixedProto) RelayMode() cluster.RelayMode        { return cluster.HoldAndBurst }

func newFixedProto(w *network.Network, heads []int) *fixedProto {
	p := &fixedProto{heads: heads, hop: make([]int, w.N())}
	a := cluster.AssignNearest(w, heads)
	for id := range p.hop {
		p.hop[id] = a.Head[id]
	}
	for _, h := range heads {
		p.hop[h] = network.BSID
	}
	return p
}

// TestSnapshotHeadsLazyCopy pins the stepper's Heads policy: without an
// observer the snapshot reuses one buffer (zero allocations per Step for
// it); with an observer each snapshot gets a private copy it may keep.
func TestSnapshotHeadsLazyCopy(t *testing.T) {
	w := paperNet(t, 50)
	proto := newFixedProto(w, []int{10, 30, 50})
	e, err := NewEngine(w, proto, energy.DefaultModel(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	heads := []int{10, 30, 50}
	e.snapshotHeads(heads) // size the buffer
	if allocs := testing.AllocsPerRun(100, func() { e.snapshotHeads(heads) }); allocs != 0 {
		t.Fatalf("unobserved snapshotHeads allocates %.1f objects per call, want 0", allocs)
	}
	s1 := e.snapshotHeads(heads)
	s2 := e.snapshotHeads(heads)
	if &s1[0] != &s2[0] {
		t.Fatal("unobserved snapshots must share the reused buffer")
	}

	e.SetObserver(func(RoundSnapshot) {})
	o1 := e.snapshotHeads(heads)
	o2 := e.snapshotHeads(heads)
	if &o1[0] == &o2[0] {
		t.Fatal("observed snapshots must be private copies")
	}
	o1[0] = -1
	if s1[0] == -1 {
		t.Fatal("observed snapshot aliases the reused buffer")
	}
}

// TestRoundKernelAllocs puts a ceiling on the batched round kernel's
// steady-state allocation rate: after the first round has sized every
// reusable buffer (event slab, generation schedule, lane node list,
// queue pool), later rounds must stay nearly allocation-free. The
// ceiling leaves headroom only for amortized growth of the per-round
// result slice and incidental runtime noise.
func TestRoundKernelAllocs(t *testing.T) {
	w := paperNet(t, 51)
	proto := newFixedProto(w, []int{10, 30, 50, 70, 90})
	e, err := NewEngine(w, proto, energy.DefaultModel(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(1000); err != nil {
		t.Fatal(err)
	}
	round := 0
	for ; round < 3; round++ { // warm the buffers
		e.runRound(round)
	}
	allocs := testing.AllocsPerRun(20, func() {
		e.runRound(round)
		round++
	})
	if allocs > 8 {
		t.Fatalf("steady-state round allocates %.1f objects, want <= 8", allocs)
	}
}
