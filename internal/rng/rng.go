// Package rng provides deterministic, splittable pseudo-random number
// streams for the QLEC simulator.
//
// Reproducibility is a first-class requirement: every stochastic component
// of the simulation (node placement, DEEC threshold draws, Poisson packet
// generation, link loss, dataset synthesis) draws from its own named
// stream, derived from a master seed. Two runs with the same seed and
// configuration are bit-identical regardless of the order in which
// components consume randomness.
//
// The generator is xoshiro256** (Blackman & Vigna, 2018) seeded through
// SplitMix64, the combination recommended by the xoshiro authors. Both are
// implemented here directly so the package has no dependency on math/rand
// internals and the sequence is stable across Go releases.
package rng

import (
	"math"
	"math/bits"
)

// SplitMix64 is a tiny 64-bit PRNG used to derive seeds. It is also the
// recommended seeder for xoshiro generators because it diffuses low-entropy
// seeds (such as small integers) into well-distributed state.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a deterministic random stream based on xoshiro256**.
// It is NOT safe for concurrent use; give each goroutine its own Stream
// (see Split).
type Stream struct {
	s0, s1, s2, s3 uint64
	// spare Gaussian value from the Marsaglia polar method.
	hasGauss bool
	gauss    float64
}

// New returns a Stream seeded from seed via SplitMix64.
func New(seed uint64) *Stream {
	sm := NewSplitMix64(seed)
	st := &Stream{s0: sm.Next(), s1: sm.Next(), s2: sm.Next(), s3: sm.Next()}
	// xoshiro must not start from the all-zero state; SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway.
	if st.s0|st.s1|st.s2|st.s3 == 0 {
		st.s0 = 0x9e3779b97f4a7c15
	}
	return st
}

// NewNamed derives a stream from a master seed and a component name, so
// that independent simulator components get decorrelated streams that do
// not depend on initialization order.
func NewNamed(seed uint64, name string) *Stream {
	h := fnv64a(name)
	// Mix the name hash into the seed through SplitMix64 twice to avoid
	// linear cancellation between seed and hash.
	sm := NewSplitMix64(seed ^ bits.RotateLeft64(h, 31))
	sm.Next()
	return New(sm.Next() ^ h)
}

// Split derives a child stream keyed by index. Children of distinct
// indices, and the parent after the split, are statistically independent.
// Split does not consume randomness from the parent, so splitting is
// order-insensitive.
func (s *Stream) Split(index uint64) *Stream {
	sm := NewSplitMix64(s.s0 ^ bits.RotateLeft64(s.s2, 17) ^ (index+1)*0x9e3779b97f4a7c15)
	sm.Next()
	return New(sm.Next())
}

// SplitN returns the first n child streams Split(0) … Split(n−1) as one
// contiguous value slice — the allocation-friendly shape for per-node
// sub-streams (one backing array instead of n pointer-chased heap
// objects). Like Split, it does not consume randomness from the parent.
func (s *Stream) SplitN(n int) []Stream {
	out := make([]Stream, n)
	for i := range out {
		out[i] = *s.Split(uint64(i))
	}
	return out
}

func fnv64a(name string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	return h
}

// Uint64 returns the next value of the xoshiro256** sequence.
func (s *Stream) Uint64() uint64 {
	result := bits.RotateLeft64(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = bits.RotateLeft64(s.s3, 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// Uses Lemire's nearly-divisionless bounded rejection method.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn bound must be positive")
	}
	bound := uint64(n)
	x := s.Uint64()
	hi, lo := bits.Mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = s.Uint64()
			hi, lo = bits.Mul64(x, bound)
		}
	}
	return int(hi)
}

// Range returns a uniform value in [lo, hi). It panics if hi < lo.
func (s *Stream) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Range bounds inverted")
	}
	return lo + (hi-lo)*s.Float64()
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1) using
// the Marsaglia polar method, caching the spare deviate.
func (s *Stream) NormFloat64() float64 {
	if s.hasGauss {
		s.hasGauss = false
		return s.gauss
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		s.gauss = v * f
		s.hasGauss = true
		return u * f
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1) by
// inversion. Scale by the desired mean for other rates.
func (s *Stream) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// LogNormal returns a log-normal variate with the given parameters of the
// underlying normal distribution.
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.NormFloat64())
}

// Poisson returns a Poisson variate with the given mean, using Knuth's
// multiplication method for small means and the PTRS transformed-rejection
// method cut-over for large means (approximated here by normal sampling,
// adequate for mean > 30 in simulation workloads).
func (s *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation with continuity correction.
	v := math.Round(mean + math.Sqrt(mean)*s.NormFloat64())
	if v < 0 {
		return 0
	}
	return int(v)
}

// Perm returns a uniformly random permutation of [0, n) via Fisher–Yates.
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided
// swap function (mirrors math/rand.Shuffle).
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
