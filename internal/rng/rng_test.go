package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSeedsDecorrelate(t *testing.T) {
	a := New(1)
	b := New(2)
	equal := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			equal++
		}
	}
	if equal > 0 {
		t.Fatalf("adjacent seeds produced %d identical draws out of 1000", equal)
	}
}

func TestNamedStreamsIndependentOfOrder(t *testing.T) {
	// Creating named streams in any order must give the same sequences.
	x1 := NewNamed(7, "placement")
	y1 := NewNamed(7, "traffic")
	y2 := NewNamed(7, "traffic")
	x2 := NewNamed(7, "placement")
	for i := 0; i < 100; i++ {
		if x1.Uint64() != x2.Uint64() {
			t.Fatal("placement stream depends on creation order")
		}
		if y1.Uint64() != y2.Uint64() {
			t.Fatal("traffic stream depends on creation order")
		}
	}
}

func TestNamedStreamsDiffer(t *testing.T) {
	a := NewNamed(7, "a")
	b := NewNamed(7, "b")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("differently named streams collided %d times", same)
	}
}

func TestSplitIsOrderInsensitive(t *testing.T) {
	parent1 := New(99)
	c5 := parent1.Split(5)
	c9 := parent1.Split(9)

	parent2 := New(99)
	d9 := parent2.Split(9)
	d5 := parent2.Split(5)

	for i := 0; i < 100; i++ {
		if c5.Uint64() != d5.Uint64() || c9.Uint64() != d9.Uint64() {
			t.Fatal("Split result depends on split order")
		}
	}
}

func TestSplitDoesNotPerturbParent(t *testing.T) {
	a := New(3)
	b := New(3)
	_ = a.Split(0)
	_ = a.Split(1)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split consumed randomness from parent")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(6)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(7)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("Intn(10) never produced %d in 10000 draws", v)
		}
	}
}

func TestIntnOne(t *testing.T) {
	s := New(8)
	for i := 0; i < 100; i++ {
		if v := s.Intn(1); v != 0 {
			t.Fatalf("Intn(1) = %d, want 0", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(9)
	const n, buckets = 600000, 6
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[s.Intn(buckets)]++
	}
	expected := float64(n) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 5 degrees of freedom; 99.9th percentile ~ 20.5.
	if chi2 > 20.5 {
		t.Fatalf("Intn chi-square = %v (counts %v), suggests bias", chi2, counts)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(10)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 12, 80} {
		s := NewNamed(12, "poisson")
		const n = 100000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := float64(s.Poisson(mean))
			sum += v
			sumSq += v * v
		}
		m := sum / n
		variance := sumSq/n - m*m
		if math.Abs(m-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", mean, m)
		}
		if math.Abs(variance-mean) > 0.1*mean+0.1 {
			t.Fatalf("Poisson(%v) variance = %v, want ~mean", mean, variance)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	s := New(13)
	if v := s.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d", v)
	}
	if v := s.Poisson(-2); v != 0 {
		t.Fatalf("Poisson(-2) = %d", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(14)
	for trial := 0; trial < 50; trial++ {
		n := 1 + s.Intn(40)
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	s := New(15)
	data := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range data {
		sum += v
	}
	s.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
	got := 0
	for _, v := range data {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element multiset: %v", data)
	}
}

func TestRangeWithin(t *testing.T) {
	s := New(16)
	for i := 0; i < 10000; i++ {
		v := s.Range(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Range(-3,7) out of bounds: %v", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(17)
	for i := 0; i < 10000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

// Property: Intn(n) is always in [0, n) for arbitrary positive n.
func TestIntnPropertyQuick(t *testing.T) {
	s := New(18)
	f := func(n uint16, _ uint8) bool {
		bound := int(n%1000) + 1
		v := s.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: named streams are reproducible for arbitrary names.
func TestNamedReproducibleQuick(t *testing.T) {
	f := func(seed uint64, name string) bool {
		a := NewNamed(seed, name)
		b := NewNamed(seed, name)
		for i := 0; i < 8; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the public-domain splitmix64.c.
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
		0xf88bb8a8724c81ec, 0x1b39896a51a8749b,
	}
	sm := NewSplitMix64(0)
	for i, w := range want {
		if got := sm.Next(); got != w {
			t.Fatalf("SplitMix64 draw %d = %#x, want %#x", i, got, w)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Float64()
	}
	_ = sink
}

func BenchmarkPoissonSmallMean(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += s.Poisson(4)
	}
	_ = sink
}
