// Package analysis quantifies *why* the protocols differ: cluster-size
// balance, member→head distance structure, and head-placement quality.
// EXPERIMENTS.md uses these diagnostics to explain the Figure 3 shapes —
// e.g. k-means' geometric balance is what keeps its delivery rate close
// to QLEC's under overload, while QLEC's energy-weighted (position-blind)
// head choice is what trades per-round energy for lifespan.
package analysis

import (
	"fmt"
	"math"

	"qlec/internal/cluster"
	"qlec/internal/network"
	"qlec/internal/stats"
)

// ClusterReport summarizes one round's clustering.
type ClusterReport struct {
	// Heads is the cluster count.
	Heads int
	// Sizes summarizes cluster sizes (members + head).
	Sizes stats.Summary
	// SizeCV is the coefficient of variation of cluster sizes: 0 means
	// perfectly balanced load under uniform traffic.
	SizeCV float64
	// MaxLoadShare is the largest cluster's share of all nodes — the
	// fraction of traffic hitting the busiest head under uniform
	// generation.
	MaxLoadShare float64
	// MeanSqDistToHead is the empirical E[d²_toCH] (Lemma 1's quantity).
	MeanSqDistToHead float64
	// MeanHeadResidual is the average residual energy of head nodes in
	// Joules — high for energy-aware selectors.
	MeanHeadResidual float64
	// MeanHeadDistToBS is the average head→BS distance.
	MeanHeadDistToBS float64
	// Unassigned counts nodes with no reachable head.
	Unassigned int
}

// AnalyzeClustering builds a report for one head set over a network
// using nearest-head assignment (protocols with custom assignments can
// pass their own).
func AnalyzeClustering(w *network.Network, heads []int) (*ClusterReport, error) {
	if err := cluster.ValidateHeads(w, heads, -1); err != nil {
		return nil, err
	}
	a := cluster.AssignNearest(w, heads)
	return AnalyzeAssignment(w, heads, a)
}

// AnalyzeAssignment builds a report for an explicit assignment.
func AnalyzeAssignment(w *network.Network, heads []int, a cluster.Assignment) (*ClusterReport, error) {
	if len(a.Head) != w.N() {
		return nil, fmt.Errorf("analysis: assignment covers %d of %d nodes", len(a.Head), w.N())
	}
	r := &ClusterReport{Heads: len(heads)}
	if len(heads) == 0 {
		r.Unassigned = w.N()
		return r, nil
	}
	sizes := a.Sizes()
	var sizeVals []float64
	total := 0
	maxSize := 0
	for _, h := range heads {
		s := sizes[h]
		sizeVals = append(sizeVals, float64(s))
		total += s
		if s > maxSize {
			maxSize = s
		}
	}
	r.Unassigned = w.N() - total
	r.Sizes = stats.Summarize(sizeVals)
	if r.Sizes.Mean > 0 {
		r.SizeCV = r.Sizes.StdDev / r.Sizes.Mean
	}
	if w.N() > 0 {
		r.MaxLoadShare = float64(maxSize) / float64(w.N())
	}
	r.MeanSqDistToHead = cluster.MeanSqDistToHead(w, a)

	var resid, dist float64
	for _, h := range heads {
		resid += float64(w.Nodes[h].Battery.Residual())
		dist += w.DistToBS(h)
	}
	r.MeanHeadResidual = resid / float64(len(heads))
	r.MeanHeadDistToBS = dist / float64(len(heads))
	return r, nil
}

// BalanceIndex returns Jain's fairness index of cluster sizes:
// (Σx)² / (n·Σx²), 1 for perfect balance, →1/n for total concentration.
func BalanceIndex(sizes []int) (float64, error) {
	if len(sizes) == 0 {
		return 0, fmt.Errorf("analysis: no cluster sizes")
	}
	var sum, sumSq float64
	for _, s := range sizes {
		if s < 0 {
			return 0, fmt.Errorf("analysis: negative cluster size %d", s)
		}
		f := float64(s)
		sum += f
		sumSq += f * f
	}
	if sumSq == 0 {
		return 0, fmt.Errorf("analysis: all clusters empty")
	}
	return sum * sum / (float64(len(sizes)) * sumSq), nil
}

// RotationReport measures how evenly head duty rotated over a run.
type RotationReport struct {
	// Rounds observed.
	Rounds int
	// DistinctHeads counts nodes that served at least once.
	DistinctHeads int
	// ServiceCounts summarizes per-node head-duty counts over nodes
	// that served.
	ServiceCounts stats.Summary
	// DutyGini is the Gini coefficient of head-duty counts over ALL
	// nodes: 0 = everyone served equally, →1 = a few nodes did all the
	// work (LEACH/k-means pathologies).
	DutyGini float64
}

// AnalyzeRotation folds per-round head sets into a rotation report for
// a network of n nodes.
func AnalyzeRotation(n int, rounds [][]int) (*RotationReport, error) {
	if n <= 0 {
		return nil, fmt.Errorf("analysis: node count must be positive")
	}
	counts := make([]float64, n)
	for _, heads := range rounds {
		for _, h := range heads {
			if h < 0 || h >= n {
				return nil, fmt.Errorf("analysis: head id %d out of range", h)
			}
			counts[h]++
		}
	}
	r := &RotationReport{Rounds: len(rounds)}
	var served []float64
	for _, c := range counts {
		if c > 0 {
			r.DistinctHeads++
			served = append(served, c)
		}
	}
	r.ServiceCounts = stats.Summarize(served)
	g, err := stats.GiniCoefficient(counts)
	if err != nil {
		return nil, err
	}
	r.DutyGini = g
	return r, nil
}

// ExpectedOverflowShare estimates, from cluster sizes and an M/D/1-style
// capacity argument, the share of traffic offered beyond head service
// capacity: Σ max(0, load_i − cap) / Σ load_i, where load_i is cluster
// size × rate and cap the per-head service rate. It is the first-order
// predictor of queue drops under overload and explains why balanced
// clusterings (k-means) hold PDR longer than unbalanced ones.
func ExpectedOverflowShare(sizes []int, perNodeRate, headServiceRate float64) (float64, error) {
	if perNodeRate <= 0 || headServiceRate <= 0 {
		return 0, fmt.Errorf("analysis: rates must be positive")
	}
	if len(sizes) == 0 {
		return 0, fmt.Errorf("analysis: no cluster sizes")
	}
	var offered, excess float64
	for _, s := range sizes {
		load := float64(s) * perNodeRate
		offered += load
		if over := load - headServiceRate; over > 0 {
			excess += over
		}
	}
	if offered == 0 {
		return 0, nil
	}
	return math.Min(1, excess/offered), nil
}
