package analysis

import (
	"math"
	"testing"

	"qlec/internal/cluster"
	"qlec/internal/network"
	"qlec/internal/rng"
)

func testNet(t *testing.T, n int, seed uint64) *network.Network {
	t.Helper()
	w, err := network.Deploy(network.Deployment{N: n, Side: 200, InitialEnergy: 5}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestAnalyzeClusteringBasics(t *testing.T) {
	w := testNet(t, 100, 1)
	heads := []int{10, 30, 50, 70, 90}
	r, err := AnalyzeClustering(w, heads)
	if err != nil {
		t.Fatal(err)
	}
	if r.Heads != 5 {
		t.Fatalf("heads = %d", r.Heads)
	}
	if r.Unassigned != 0 {
		t.Fatalf("unassigned = %d", r.Unassigned)
	}
	// Sizes sum to N.
	if got := r.Sizes.Mean * 5; math.Abs(got-100) > 1e-9 {
		t.Fatalf("sizes sum to %v", got)
	}
	if r.MaxLoadShare <= 0 || r.MaxLoadShare > 1 {
		t.Fatalf("MaxLoadShare = %v", r.MaxLoadShare)
	}
	if r.MeanSqDistToHead <= 0 {
		t.Fatal("zero mean squared distance for spread heads")
	}
	if r.MeanHeadResidual != 5 {
		t.Fatalf("head residual = %v", r.MeanHeadResidual)
	}
	if r.MeanHeadDistToBS <= 0 {
		t.Fatal("zero head→BS distance")
	}
}

func TestAnalyzeClusteringNoHeads(t *testing.T) {
	w := testNet(t, 10, 2)
	r, err := AnalyzeClustering(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Unassigned != 10 || r.Heads != 0 {
		t.Fatalf("report = %+v", r)
	}
}

func TestAnalyzeClusteringRejectsBadHeads(t *testing.T) {
	w := testNet(t, 10, 3)
	if _, err := AnalyzeClustering(w, []int{55}); err == nil {
		t.Fatal("out-of-range head accepted")
	}
	if _, err := AnalyzeClustering(w, []int{1, 1}); err == nil {
		t.Fatal("duplicate head accepted")
	}
}

func TestAnalyzeAssignmentSizeMismatch(t *testing.T) {
	w := testNet(t, 10, 4)
	if _, err := AnalyzeAssignment(w, []int{1}, cluster.Assignment{Head: []int{1}}); err == nil {
		t.Fatal("short assignment accepted")
	}
}

func TestBalanceIndex(t *testing.T) {
	perfect, err := BalanceIndex([]int{10, 10, 10, 10})
	if err != nil || math.Abs(perfect-1) > 1e-12 {
		t.Fatalf("balanced index = %v, %v", perfect, err)
	}
	// One cluster holds everything: index = 1/n.
	skew, err := BalanceIndex([]int{40, 0, 0, 0})
	if err != nil || math.Abs(skew-0.25) > 1e-12 {
		t.Fatalf("skewed index = %v, %v", skew, err)
	}
	if _, err := BalanceIndex(nil); err == nil {
		t.Fatal("empty sizes accepted")
	}
	if _, err := BalanceIndex([]int{-1}); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := BalanceIndex([]int{0, 0}); err == nil {
		t.Fatal("all-empty accepted")
	}
}

func TestBalanceOrdersByEvenness(t *testing.T) {
	even, _ := BalanceIndex([]int{20, 20, 21, 19})
	uneven, _ := BalanceIndex([]int{50, 10, 10, 10})
	if even <= uneven {
		t.Fatalf("balance index failed to order: even %v vs uneven %v", even, uneven)
	}
}

func TestAnalyzeRotation(t *testing.T) {
	rounds := [][]int{{0, 1}, {2, 3}, {4, 5}, {0, 6}}
	r, err := AnalyzeRotation(10, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rounds != 4 || r.DistinctHeads != 7 {
		t.Fatalf("report = %+v", r)
	}
	// Node 0 served twice, six others once; three never → Gini > 0.
	if r.DutyGini <= 0 || r.DutyGini >= 1 {
		t.Fatalf("DutyGini = %v", r.DutyGini)
	}
	if r.ServiceCounts.Max != 2 {
		t.Fatalf("max service count = %v", r.ServiceCounts.Max)
	}
}

func TestAnalyzeRotationPerfectVsConcentrated(t *testing.T) {
	// Perfect rotation: each of 10 nodes serves once.
	perfect, _ := AnalyzeRotation(10, [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}})
	// Concentrated: node 0 serves every round.
	conc, _ := AnalyzeRotation(10, [][]int{{0}, {0}, {0}, {0}, {0}})
	if perfect.DutyGini >= conc.DutyGini {
		t.Fatalf("rotation Gini failed to order: %v vs %v", perfect.DutyGini, conc.DutyGini)
	}
	if perfect.DutyGini != 0 {
		t.Fatalf("perfect rotation Gini = %v", perfect.DutyGini)
	}
}

func TestAnalyzeRotationErrors(t *testing.T) {
	if _, err := AnalyzeRotation(0, nil); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := AnalyzeRotation(5, [][]int{{7}}); err == nil {
		t.Fatal("out-of-range head accepted")
	}
}

func TestExpectedOverflowShare(t *testing.T) {
	// Balanced: 4 clusters of 20 nodes at 0.25 pkt/s = 5 pkt/s per head,
	// capacity 10 → no overflow.
	share, err := ExpectedOverflowShare([]int{20, 20, 20, 20}, 0.25, 10)
	if err != nil || share != 0 {
		t.Fatalf("balanced share = %v, %v", share, err)
	}
	// Skewed: one cluster of 60 at 0.25 = 15 pkt/s vs capacity 10 →
	// 5/20 of total offered (80·0.25=20) overflows.
	share, err = ExpectedOverflowShare([]int{60, 10, 5, 5}, 0.25, 10)
	if err != nil || math.Abs(share-0.25) > 1e-12 {
		t.Fatalf("skewed share = %v, %v", share, err)
	}
	if _, err := ExpectedOverflowShare(nil, 1, 1); err == nil {
		t.Fatal("empty sizes accepted")
	}
	if _, err := ExpectedOverflowShare([]int{1}, 0, 1); err == nil {
		t.Fatal("zero rate accepted")
	}
}

// The mechanism behind Figure 3(a): k-means' geometric clustering is
// better balanced than DEEC's energy lottery, so its predicted overflow
// under load is lower. This pins the explanation used in EXPERIMENTS.md.
func TestKMeansBalancesBetterThanRandomHeads(t *testing.T) {
	w := testNet(t, 200, 5)
	// Random head set (a DEEC-like draw).
	random := []int{3, 17, 59, 101, 151}
	randReport, err := AnalyzeClustering(w, random)
	if err != nil {
		t.Fatal(err)
	}
	// Geometrically spread heads: nearest nodes to a 5-point lattice.
	var lattice []int
	for _, c := range [][3]float64{{50, 50, 50}, {150, 50, 100}, {50, 150, 100}, {150, 150, 50}, {100, 100, 150}} {
		best, bestD := -1, math.Inf(1)
		for _, n := range w.Nodes {
			d := (n.Pos.X-c[0])*(n.Pos.X-c[0]) + (n.Pos.Y-c[1])*(n.Pos.Y-c[1]) + (n.Pos.Z-c[2])*(n.Pos.Z-c[2])
			if d < bestD {
				best, bestD = n.ID, d
			}
		}
		lattice = append(lattice, best)
	}
	latReport, err := AnalyzeClustering(w, lattice)
	if err != nil {
		t.Fatal(err)
	}
	if latReport.SizeCV >= randReport.SizeCV {
		t.Fatalf("lattice heads CV %v not below random heads CV %v",
			latReport.SizeCV, randReport.SizeCV)
	}
}
