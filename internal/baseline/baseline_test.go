package baseline

import (
	"context"
	"testing"

	"qlec/internal/cluster"
	"qlec/internal/energy"
	"qlec/internal/network"
	"qlec/internal/rng"
	"qlec/internal/sim"
)

func paperNet(t *testing.T, seed uint64) *network.Network {
	t.Helper()
	w, err := network.Deploy(network.Deployment{N: 100, Side: 200, InitialEnergy: 5}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestKMeansValidation(t *testing.T) {
	w := paperNet(t, 1)
	if _, err := NewKMeans(w, 0, 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewKMeans(w, 101, 0, 1); err == nil {
		t.Fatal("k>N accepted")
	}
	if _, err := NewKMeans(w, 5, -1, 1); err == nil {
		t.Fatal("negative death line accepted")
	}
}

func TestKMeansStartRound(t *testing.T) {
	w := paperNet(t, 2)
	p, err := NewKMeans(w, 5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	heads := p.StartRound(0)
	if len(heads) != 5 {
		t.Fatalf("%d heads", len(heads))
	}
	if err := cluster.ValidateHeads(w, heads, 0); err != nil {
		t.Fatal(err)
	}
	isHead := map[int]bool{}
	for _, h := range heads {
		isHead[h] = true
	}
	for id := 0; id < w.N(); id++ {
		hop := p.NextHop(id)
		if isHead[id] {
			if hop != network.BSID {
				t.Fatalf("head %d hops to %d", id, hop)
			}
		} else if !isHead[hop] {
			t.Fatalf("member %d routed to non-head %d", id, hop)
		}
	}
	if p.RelayMode() != cluster.HoldAndBurst {
		t.Fatal("k-means relay mode wrong")
	}
}

func TestKMeansReclustersWhenNodesDie(t *testing.T) {
	w := paperNet(t, 3)
	p, _ := NewKMeans(w, 5, 0, 1)
	first := p.StartRound(0)
	// Kill the first round's heads.
	for _, h := range first {
		w.Nodes[h].Battery.Draw(5)
	}
	second := p.StartRound(1)
	for _, h := range second {
		for _, dead := range first {
			if h == dead {
				t.Fatalf("dead node %d selected as head again", h)
			}
		}
	}
}

func TestKMeansAllDead(t *testing.T) {
	w := paperNet(t, 4)
	for _, n := range w.Nodes {
		n.Battery.Draw(5)
	}
	p, _ := NewKMeans(w, 5, 0, 1)
	if heads := p.StartRound(0); len(heads) != 0 {
		t.Fatalf("heads from a dead network: %v", heads)
	}
}

func TestFCMValidation(t *testing.T) {
	w := paperNet(t, 5)
	if _, err := NewFCM(w, 0, 3, 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewFCM(w, 5, 0, 0, 1); err == nil {
		t.Fatal("levels=0 accepted")
	}
	if _, err := NewFCM(w, 5, 3, -1, 1); err == nil {
		t.Fatal("negative death line accepted")
	}
}

func TestFCMHierarchyMakesProgress(t *testing.T) {
	// Every head's relay chain must reach the BS without cycles, and
	// each relay hop moves to a strictly lower tier.
	w := paperNet(t, 6)
	p, err := NewFCM(w, 6, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	heads := p.StartRound(0)
	if len(heads) == 0 {
		t.Fatal("no heads")
	}
	isHead := map[int]bool{}
	for _, h := range heads {
		isHead[h] = true
	}
	for _, h := range heads {
		seen := map[int]bool{h: true}
		cur := h
		for hop := 0; hop < 10; hop++ {
			next := p.NextHop(cur)
			if next == network.BSID {
				cur = network.BSID
				break
			}
			if !isHead[next] {
				t.Fatalf("relay %d -> non-head %d", cur, next)
			}
			if seen[next] {
				t.Fatalf("relay cycle at %d", next)
			}
			// Strict progress toward the BS.
			if w.DistToBS(next) >= w.DistToBS(cur) {
				t.Fatalf("relay hop %d->%d moves away from BS", cur, next)
			}
			seen[next] = true
			cur = next
		}
		if cur != network.BSID {
			t.Fatalf("head %d's chain never reached the BS", h)
		}
	}
	if p.RelayMode() != cluster.ForwardPerPacket {
		t.Fatal("FCM relay mode wrong")
	}
}

func TestFCMFavorsEnergyInHeadChoice(t *testing.T) {
	// Drain 80 of 100 nodes; heads should mostly come from the fresh 20.
	w := paperNet(t, 7)
	for i := 0; i < 80; i++ {
		w.Nodes[i].Battery.Draw(4.5)
	}
	p, _ := NewFCM(w, 5, 3, 0, 1)
	fresh := 0
	heads := p.StartRound(0)
	for _, h := range heads {
		if h >= 80 {
			fresh++
		}
	}
	if fresh*2 < len(heads) {
		t.Fatalf("only %d of %d heads fresh; FCM head choice ignores energy", fresh, len(heads))
	}
}

func TestFCMMembersRouteToTheirHead(t *testing.T) {
	w := paperNet(t, 8)
	p, _ := NewFCM(w, 5, 3, 0, 1)
	heads := p.StartRound(0)
	isHead := map[int]bool{}
	for _, h := range heads {
		isHead[h] = true
	}
	for id := 0; id < w.N(); id++ {
		if isHead[id] {
			continue
		}
		if hop := p.NextHop(id); !isHead[hop] {
			t.Fatalf("member %d routed to %d (not a head)", id, hop)
		}
	}
}

func TestLEACHValidation(t *testing.T) {
	w := paperNet(t, 9)
	if _, err := NewLEACH(w, 0, 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewLEACH(w, 100, 0, 1); err == nil {
		t.Fatal("k=N accepted")
	}
}

func TestLEACHRoutesToNearest(t *testing.T) {
	w := paperNet(t, 10)
	p, err := NewLEACH(w, 5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var heads []int
	for r := 0; r < 5 && len(heads) == 0; r++ {
		heads = p.StartRound(r)
	}
	if len(heads) == 0 {
		t.Fatal("LEACH never selected heads in 5 rounds")
	}
	isHead := map[int]bool{}
	for _, h := range heads {
		isHead[h] = true
	}
	for id := 0; id < w.N(); id++ {
		hop := p.NextHop(id)
		if isHead[id] {
			if hop != network.BSID {
				t.Fatalf("head %d hops to %d", id, hop)
			}
			continue
		}
		if hop == network.BSID {
			continue // legal when no head was selected
		}
		d := w.Nodes[id].Pos.Dist(w.Nodes[hop].Pos)
		for _, h := range heads {
			if w.Nodes[id].Pos.Dist(w.Nodes[h].Pos) < d-1e-9 {
				t.Fatalf("member %d not at nearest head", id)
			}
		}
	}
}

// All three baselines must run cleanly on the engine and deliver traffic.
func TestBaselinesRunOnEngine(t *testing.T) {
	build := func(name string, w *network.Network) cluster.Protocol {
		switch name {
		case "kmeans":
			p, _ := NewKMeans(w, 5, 0, 1)
			return p
		case "fcm":
			p, _ := NewFCM(w, 5, 3, 0, 1)
			return p
		default:
			p, _ := NewLEACH(w, 5, 0, 1)
			return p
		}
	}
	for _, name := range []string{"kmeans", "fcm", "leach"} {
		w := paperNet(t, 11)
		proto := build(name, w)
		e, err := sim.NewEngine(w, proto, energy.DefaultModel(), sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(context.Background(), 10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.PDR() < 0.5 {
			t.Fatalf("%s: PDR %v under moderate load", name, res.PDR())
		}
		if res.TotalEnergy <= 0 {
			t.Fatalf("%s: no energy consumed", name)
		}
	}
}

func TestDirectProtocol(t *testing.T) {
	p := NewDirect()
	if p.Name() != "direct-to-BS" {
		t.Fatal(p.Name())
	}
	if heads := p.StartRound(0); heads != nil {
		t.Fatalf("direct protocol selected heads: %v", heads)
	}
	if hop := p.NextHop(17); hop != network.BSID {
		t.Fatalf("NextHop = %d", hop)
	}
	if p.RelayMode() != cluster.HoldAndBurst {
		t.Fatal("relay mode")
	}
}

// The paper's founding premise (§1): clustering turns global into local
// communication and saves energy. The saving comes from the d⁴
// multi-path law on long hauls, so it shows on fields whose node→BS
// distances sit well past the d₀ ≈ 88 m crossover; a 400 m cube (mean
// distance ≈ 192 m) makes direct-to-BS several times more expensive
// than clustering. (At the paper's M=200 the central BS keeps most
// distances near d₀ and the gap nearly vanishes — an honest limit of
// the premise, noted in EXPERIMENTS.md.)
func TestClusteringSavesEnergyOverDirect(t *testing.T) {
	bigNet := func() *network.Network {
		w, err := network.Deploy(network.Deployment{N: 100, Side: 400, InitialEnergy: 5}, rng.New(13))
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	energyOf := func(proto cluster.Protocol, w *network.Network) float64 {
		cfg := sim.DefaultConfig()
		cfg.MeanInterArrival = 6
		e, _ := sim.NewEngine(w, proto, energy.DefaultModel(), cfg)
		res, err := e.Run(context.Background(), 5)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.TotalEnergy)
	}
	wDirect := bigNet()
	direct := energyOf(NewDirect(), wDirect)

	wKM := bigNet()
	km, _ := NewKMeans(wKM, 5, 0, 1)
	clustered := energyOf(km, wKM)

	if direct < 2*clustered {
		t.Fatalf("direct-to-BS energy %v not ≫ clustered %v; clustering premise broken",
			direct, clustered)
	}
}

// FCM's multi-hop relaying must show up as a higher mean hop count than
// the single-hop-plus-burst protocols.
func TestFCMMultiHopVsKMeans(t *testing.T) {
	hops := func(makeProto func(w *network.Network) cluster.Protocol) float64 {
		w := paperNet(t, 12)
		e, _ := sim.NewEngine(w, makeProto(w), energy.DefaultModel(), sim.DefaultConfig())
		res, err := e.Run(context.Background(), 10)
		if err != nil {
			t.Fatal(err)
		}
		return res.Hops.Mean
	}
	fcmHops := hops(func(w *network.Network) cluster.Protocol {
		p, _ := NewFCM(w, 5, 3, 0, 1)
		return p
	})
	kmHops := hops(func(w *network.Network) cluster.Protocol {
		p, _ := NewKMeans(w, 5, 0, 1)
		return p
	})
	if fcmHops <= kmHops {
		t.Fatalf("FCM mean hops %v not above k-means %v", fcmHops, kmHops)
	}
}
