package baseline

import (
	"qlec/internal/cluster"
	"qlec/internal/protocol"
)

// Registry descriptors for the comparison baselines. Constructions
// mirror what experiment.BuildProtocol hard-wired pre-registry; the
// golden tests pin their exact results, so the factories must not drift.
func init() {
	protocol.Register(protocol.Descriptor{
		ID:          "FCM",
		Paper:       "Yao, Li, Song — WCNC 2018 (the paper's [14])",
		Summary:     "fuzzy c-means hierarchy: membership-weighted head choice, tiered multi-hop relaying",
		Order:       20,
		Figure3Rank: 2,
		Factory: func(b protocol.BuildContext) (cluster.Protocol, error) {
			return NewFCM(b.Net, b.K, b.FCMLevels, b.DeathLine, b.Seed)
		},
	})
	protocol.Register(protocol.Descriptor{
		ID:          "k-means",
		Aliases:     []string{"kmeans"},
		Paper:       "classic k-means clustering (the paper's §5 baseline)",
		Summary:     "position-only clustering, centroid-nearest heads, no energy awareness",
		Order:       30,
		Figure3Rank: 3,
		Factory: func(b protocol.BuildContext) (cluster.Protocol, error) {
			return NewKMeans(b.Net, b.K, b.DeathLine, b.Seed)
		},
	})
	protocol.Register(protocol.Descriptor{
		ID:      "LEACH",
		Paper:   "Heinzelman, Chandrakasan, Balakrishnan — HICSS 2000",
		Summary: "energy-blind head-rotation lottery with nearest-head assignment",
		Order:   40,
		Factory: func(b protocol.BuildContext) (cluster.Protocol, error) {
			k := b.K
			// LEACH's head fraction p = k/N must stay below 1.
			if k >= b.Net.N() {
				k = b.Net.N() - 1
			}
			return NewLEACH(b.Net, k, b.DeathLine, b.Seed)
		},
	})
	protocol.Register(protocol.Descriptor{
		ID:      "direct-to-BS",
		Aliases: []string{"direct"},
		Paper:   "no-clustering strawman (QLEC §1 premise)",
		Summary: "every node transmits straight to the base station",
		Order:   90,
		Factory: func(b protocol.BuildContext) (cluster.Protocol, error) {
			return NewDirect(), nil
		},
	})
}
