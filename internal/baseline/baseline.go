// Package baseline adapts the comparison algorithms of the paper's
// evaluation — classic k-means clustering, the FCM-based hierarchical
// scheme of [14], and classic LEACH — to the cluster.Protocol interface
// so they run on the identical simulation engine as QLEC.
package baseline

import (
	"fmt"
	"math"

	"qlec/internal/cluster"
	"qlec/internal/energy"
	"qlec/internal/fcm"
	"qlec/internal/geom"
	"qlec/internal/kmeans"
	"qlec/internal/leach"
	"qlec/internal/network"
	"qlec/internal/rng"
)

// KMeans is the "classic k-means clustering" baseline (§5): clusters are
// position-only; the head of each cluster is the node nearest the
// centroid; members always forward to their cluster's head; no energy
// awareness and no learning.
type KMeans struct {
	k         int
	deathLine energy.Joules
	net       *network.Network
	rnd       *rng.Stream

	isHead []bool
	hop    []int // per-node forwarding target for the round

	// Per-round scratch, reused so steady-state selection performs no
	// allocation beyond the sorted head copy.
	scratch kmeans.Scratch
	alive   []int
	pts     []geom.Vec3
	headOf  []int
	bestD   []float64
	heads   []int
}

// growInts returns dst resized to n, reallocating only on growth.
func growInts(dst []int, n int) []int {
	if cap(dst) < n {
		return make([]int, n)
	}
	return dst[:n]
}

func growFloats(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}

// NewKMeans builds the baseline.
func NewKMeans(w *network.Network, k int, deathLine energy.Joules, seed uint64) (*KMeans, error) {
	if k <= 0 || k > w.N() {
		return nil, fmt.Errorf("baseline: k-means k=%d outside [1,%d]", k, w.N())
	}
	if deathLine < 0 {
		return nil, fmt.Errorf("baseline: negative death line")
	}
	return &KMeans{
		k: k, deathLine: deathLine, net: w,
		rnd:    rng.NewNamed(seed, "baseline/kmeans"),
		isHead: make([]bool, w.N()),
		hop:    make([]int, w.N()),
	}, nil
}

// Name implements cluster.Protocol.
func (p *KMeans) Name() string { return "k-means" }

// StartRound implements cluster.Protocol: recluster the alive nodes and
// pick the node nearest each centroid as head.
func (p *KMeans) StartRound(round int) []int {
	aliveIDs := p.net.AliveIDsInto(p.deathLine, p.alive)
	p.alive = aliveIDs
	for i := range p.isHead {
		p.isHead[i] = false
		p.hop[i] = network.BSID
	}
	if len(aliveIDs) == 0 {
		return nil
	}
	k := p.k
	if k > len(aliveIDs) {
		k = len(aliveIDs)
	}
	pts := p.pts[:0]
	for _, id := range aliveIDs {
		pts = append(pts, p.net.Nodes[id].Pos)
	}
	p.pts = pts
	res, err := kmeans.ClusterScratch(pts, kmeans.Config{K: k}, p.rnd, &p.scratch)
	if err != nil {
		// Unreachable given the k clamp above; fail safe to direct-BS.
		return nil
	}
	// Head of cluster c: the member nearest the centroid.
	headOf := growInts(p.headOf, k)
	bestD := growFloats(p.bestD, k)
	p.headOf, p.bestD = headOf, bestD
	for c := range headOf {
		headOf[c] = -1
		bestD[c] = math.Inf(1)
	}
	for i, id := range aliveIDs {
		c := res.Assign[i]
		if d := pts[i].DistSq(res.Centroids[c]); d < bestD[c] {
			bestD[c] = d
			headOf[c] = id
		}
	}
	heads := p.heads[:0]
	for _, h := range headOf {
		if h >= 0 {
			heads = append(heads, h)
		}
	}
	p.heads = heads
	for i, id := range aliveIDs {
		h := headOf[res.Assign[i]]
		if h >= 0 {
			p.hop[id] = h
		}
	}
	for _, h := range heads {
		p.isHead[h] = true
		p.hop[h] = network.BSID
	}
	return cluster.SortedCopy(heads)
}

// NextHop implements cluster.Protocol: the fixed cluster assignment; no
// rerouting ever.
func (p *KMeans) NextHop(node int) int { return p.hop[node] }

// StaticHops implements cluster.StaticRouter: the assignment is fixed
// for the round and k-means never learns, so independent clusters may
// run on parallel simulation lanes.
func (p *KMeans) StaticHops() []int { return p.hop }

// OnOutcome implements cluster.Protocol: k-means does not learn.
func (p *KMeans) OnOutcome(node, target int, success bool) {}

// EndRound implements cluster.Protocol.
func (p *KMeans) EndRound(round int) {}

// RelayMode implements cluster.Protocol.
func (p *KMeans) RelayMode() cluster.RelayMode { return cluster.HoldAndBurst }

// FCM is the FCM-based baseline of [14]: fuzzy c-means clustering, heads
// chosen to maximize residual energy weighted by membership, a
// distance-to-BS hierarchy, and per-packet multi-hop relaying of fused
// data through lower tiers toward the BS.
type FCM struct {
	k         int
	levels    int
	deathLine energy.Joules
	net       *network.Network
	rnd       *rng.Stream

	isHead []bool
	hop    []int

	// Per-round scratch, reused across StartRound calls.
	scratch   fcm.Scratch
	alive     []int
	pts       []geom.Vec3
	headOf    []int
	bestScore []float64
	heads     []int
	assign    []int
	dists     []float64
	tiers     []int
}

// NewFCM builds the baseline. levels is the hierarchy depth (the WCNC'18
// scheme's distance rings); 3 matches their evaluation scale.
func NewFCM(w *network.Network, k, levels int, deathLine energy.Joules, seed uint64) (*FCM, error) {
	if k <= 0 || k > w.N() {
		return nil, fmt.Errorf("baseline: FCM k=%d outside [1,%d]", k, w.N())
	}
	if levels < 1 {
		return nil, fmt.Errorf("baseline: FCM levels must be >= 1, got %d", levels)
	}
	if deathLine < 0 {
		return nil, fmt.Errorf("baseline: negative death line")
	}
	return &FCM{
		k: k, levels: levels, deathLine: deathLine, net: w,
		rnd:    rng.NewNamed(seed, "baseline/fcm"),
		isHead: make([]bool, w.N()),
		hop:    make([]int, w.N()),
	}, nil
}

// Name implements cluster.Protocol.
func (p *FCM) Name() string { return "FCM" }

// StartRound implements cluster.Protocol.
func (p *FCM) StartRound(round int) []int {
	aliveIDs := p.net.AliveIDsInto(p.deathLine, p.alive)
	p.alive = aliveIDs
	for i := range p.isHead {
		p.isHead[i] = false
		p.hop[i] = network.BSID
	}
	if len(aliveIDs) == 0 {
		return nil
	}
	k := p.k
	if k > len(aliveIDs) {
		k = len(aliveIDs)
	}
	pts := p.pts[:0]
	for _, id := range aliveIDs {
		pts = append(pts, p.net.Nodes[id].Pos)
	}
	p.pts = pts
	res, err := fcm.ClusterScratch(pts, fcm.Config{K: k}, p.rnd, &p.scratch)
	if err != nil {
		return nil
	}
	// Head of cluster c: maximize membership-weighted residual energy
	// (the WCNC'18 "maximizing residual energy" head choice).
	headOf := growInts(p.headOf, k)
	bestScore := growFloats(p.bestScore, k)
	p.headOf, p.bestScore = headOf, bestScore
	for c := range headOf {
		headOf[c] = -1
		bestScore[c] = -1
	}
	for i, id := range aliveIDs {
		resid := float64(p.net.Nodes[id].Battery.Residual())
		for c := 0; c < k; c++ {
			score := res.U[i][c] * resid
			if score > bestScore[c] {
				bestScore[c] = score
				headOf[c] = id
			}
		}
	}
	// Deduplicate: one node may top several clusters; merge those
	// clusters onto the single head. k is a handful, so a linear scan
	// beats a per-round map.
	heads := p.heads[:0]
	for _, h := range headOf {
		if h < 0 {
			continue
		}
		dup := false
		for _, x := range heads {
			if x == h {
				dup = true
				break
			}
		}
		if !dup {
			heads = append(heads, h)
		}
	}
	p.heads = heads
	// Members follow their hard assignment's head.
	assign := res.HardAssignInto(p.assign)
	p.assign = assign
	for i, id := range aliveIDs {
		h := headOf[assign[i]]
		if h >= 0 {
			p.hop[id] = h
		}
	}
	// Hierarchy: tier heads by distance to BS; each head relays to the
	// nearest head in a strictly lower tier; tier-0 heads go to the BS.
	dists := growFloats(p.dists, len(heads))
	p.dists = dists
	for i, h := range heads {
		dists[i] = p.net.DistToBS(h)
	}
	tiers, err := fcm.TiersInto(dists, p.levels, p.tiers)
	if err != nil {
		tiers = growInts(p.tiers, len(heads))
		for i := range tiers {
			tiers[i] = 0
		}
	}
	p.tiers = tiers
	for i, h := range heads {
		p.isHead[h] = true
		p.hop[h] = network.BSID
		if tiers[i] == 0 {
			continue
		}
		best, bestD := network.BSID, math.Inf(1)
		for j, other := range heads {
			if tiers[j] >= tiers[i] {
				continue
			}
			if d := p.net.Nodes[h].Pos.Dist(p.net.Nodes[other].Pos); d < bestD {
				best, bestD = other, d
			}
		}
		p.hop[h] = best
	}
	return cluster.SortedCopy(heads)
}

// NextHop implements cluster.Protocol.
func (p *FCM) NextHop(node int) int { return p.hop[node] }

// OnOutcome implements cluster.Protocol: FCM does not learn.
func (p *FCM) OnOutcome(node, target int, success bool) {}

// EndRound implements cluster.Protocol.
func (p *FCM) EndRound(round int) {}

// RelayMode implements cluster.Protocol: the multi-hop hierarchy.
func (p *FCM) RelayMode() cluster.RelayMode { return cluster.ForwardPerPacket }

// LEACH is the classic LEACH baseline: the energy-blind rotation lottery
// with nearest-head assignment.
type LEACH struct {
	deathLine energy.Joules
	net       *network.Network
	sel       *leach.Selector

	isHead  []bool
	nearest cluster.Assignment
	hop     []int
}

// NewLEACH builds the baseline with head fraction p = k/N.
func NewLEACH(w *network.Network, k int, deathLine energy.Joules, seed uint64) (*LEACH, error) {
	if k <= 0 || k >= w.N() {
		return nil, fmt.Errorf("baseline: LEACH k=%d outside [1,%d)", k, w.N())
	}
	sel, err := leach.NewSelector(w, leach.Config{
		P:         float64(k) / float64(w.N()),
		DeathLine: deathLine,
	}, rng.NewNamed(seed, "baseline/leach"))
	if err != nil {
		return nil, err
	}
	return &LEACH{
		deathLine: deathLine, net: w, sel: sel,
		isHead: make([]bool, w.N()),
		hop:    make([]int, w.N()),
	}, nil
}

// Name implements cluster.Protocol.
func (p *LEACH) Name() string { return "LEACH" }

// StartRound implements cluster.Protocol.
func (p *LEACH) StartRound(round int) []int {
	heads := p.sel.Select(round)
	for i := range p.isHead {
		p.isHead[i] = false
	}
	for _, h := range heads {
		p.isHead[h] = true
	}
	p.nearest = cluster.AssignNearest(p.net, heads)
	for id := range p.hop {
		if p.isHead[id] {
			p.hop[id] = network.BSID
		} else {
			p.hop[id] = p.nearest.Head[id]
		}
	}
	return heads
}

// NextHop implements cluster.Protocol.
func (p *LEACH) NextHop(node int) int { return p.hop[node] }

// StaticHops implements cluster.StaticRouter: nearest-head assignment
// is fixed for the round and LEACH never learns.
func (p *LEACH) StaticHops() []int { return p.hop }

// OnOutcome implements cluster.Protocol: LEACH does not learn.
func (p *LEACH) OnOutcome(node, target int, success bool) {}

// EndRound implements cluster.Protocol.
func (p *LEACH) EndRound(round int) {}

// RelayMode implements cluster.Protocol.
func (p *LEACH) RelayMode() cluster.RelayMode { return cluster.HoldAndBurst }

// Direct is the no-clustering strawman: every node transmits straight to
// the base station. It quantifies the paper's founding premise — "a
// clustering technique transforms the global communication into the
// local communication for saving energy" (§1) — as the gap between
// Direct and any clustered protocol.
type Direct struct{}

// NewDirect builds the baseline.
func NewDirect() *Direct { return &Direct{} }

// Name implements cluster.Protocol.
func (p *Direct) Name() string { return "direct-to-BS" }

// StartRound implements cluster.Protocol: no heads, ever.
func (p *Direct) StartRound(round int) []int { return nil }

// NextHop implements cluster.Protocol.
func (p *Direct) NextHop(node int) int { return network.BSID }

// OnOutcome implements cluster.Protocol.
func (p *Direct) OnOutcome(node, target int, success bool) {}

// EndRound implements cluster.Protocol.
func (p *Direct) EndRound(round int) {}

// RelayMode implements cluster.Protocol.
func (p *Direct) RelayMode() cluster.RelayMode { return cluster.HoldAndBurst }
