// Package dataset supplies the "large-scale dataset" substrate for the
// paper's §5.3 experiment.
//
// The paper uses the WRI Global Power Plant Database (China subset: 2896
// plants), mapping plant capacity to node energy and assigning random
// heights to lift the 2-D plant map into 3-D. That file is not shipped
// here (it is an external download), so this package provides two paths:
//
//  1. Synthesize: a deterministic generator reproducing the two
//     properties of the real data that exercise QLEC — spatial clumping
//     (plants concentrate around population/industrial centers, unlike
//     the uniform cube of §5.1) and a heavy-tailed capacity→energy
//     distribution (log-normal body with a few giant plants). Cluster
//     centers, weights and spreads are fixed constants loosely following
//     the geography of Chinese industrial regions, scaled into simulator
//     coordinates.
//  2. LoadWRICSV: a loader for the genuine database CSV (schema:
//     country,name,capacity_mw,latitude,longitude,...) so the real file
//     can be dropped in without code changes.
//
// Either path yields the same Dataset type consumed by the experiment
// harness.
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"qlec/internal/energy"
	"qlec/internal/geom"
	"qlec/internal/rng"
)

// Dataset is a set of node positions with per-node initial energies,
// bounded by Box, plus a suggested base-station position.
type Dataset struct {
	Positions []geom.Vec3
	Energies  []energy.Joules
	Box       geom.AABB
	BS        geom.Vec3
}

// Validate checks structural consistency.
func (d *Dataset) Validate() error {
	if len(d.Positions) == 0 {
		return fmt.Errorf("dataset: empty")
	}
	if len(d.Positions) != len(d.Energies) {
		return fmt.Errorf("dataset: %d positions but %d energies", len(d.Positions), len(d.Energies))
	}
	if err := d.Box.Validate(); err != nil {
		return err
	}
	for i, e := range d.Energies {
		if e <= 0 {
			return fmt.Errorf("dataset: node %d has non-positive energy %v", i, e)
		}
		if !d.Positions[i].IsFinite() {
			return fmt.Errorf("dataset: node %d has non-finite position", i)
		}
	}
	return nil
}

// SynthConfig parameterizes the synthetic generator.
type SynthConfig struct {
	// N is the node count; the paper's China subset has 2896.
	N int
	// Side is the simulator-space side length of the square footprint,
	// in meters. The default maps the ~5000 km China extent onto 1000 m
	// of simulator space (radio constants are per meter, so what matters
	// is the *relative* geometry, not geographic scale).
	Side float64
	// MaxHeight bounds the random heights ("we randomly assign a height
	// value to each node to convert the 2-dimensional network ... into a
	// 3-dimensional one", §5.3).
	MaxHeight float64
	// MeanEnergy sets the average node energy in Joules; per-node values
	// follow a log-normal around it (σ=0.9), mimicking the capacity
	// spread of real plants (a few GW giants, many small units).
	MeanEnergy energy.Joules
	// Seed drives the deterministic generator.
	Seed uint64
}

// DefaultSynthConfig mirrors the paper's §5.3 setup.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{
		N:          2896,
		Side:       1000,
		MaxHeight:  100,
		MeanEnergy: 5,
		Seed:       2019, // publication year; any fixed value works
	}
}

// Validate checks generator parameters.
func (c SynthConfig) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("dataset: N must be positive, got %d", c.N)
	}
	if !(c.Side > 0) {
		return fmt.Errorf("dataset: Side must be positive, got %v", c.Side)
	}
	if !(c.MaxHeight > 0) {
		return fmt.Errorf("dataset: MaxHeight must be positive, got %v", c.MaxHeight)
	}
	if c.MeanEnergy <= 0 {
		return fmt.Errorf("dataset: MeanEnergy must be positive, got %v", c.MeanEnergy)
	}
	return nil
}

// hub is one synthetic population/industrial center in unit-square
// coordinates with a relative weight and Gaussian spread.
type hub struct {
	x, y   float64
	weight float64
	spread float64
}

// hubs loosely follows the east-heavy geography of Chinese industry:
// dense coastal corridors, a few inland centers, sparse west.
var hubs = []hub{
	{0.82, 0.55, 0.18, 0.05}, // Yangtze delta
	{0.78, 0.35, 0.14, 0.05}, // Pearl river delta
	{0.75, 0.72, 0.13, 0.06}, // Bohai rim
	{0.60, 0.52, 0.10, 0.07}, // central plains
	{0.55, 0.38, 0.08, 0.06}, // middle Yangtze
	{0.45, 0.60, 0.07, 0.08}, // Loess plateau energy base
	{0.30, 0.45, 0.05, 0.09}, // Sichuan basin
	{0.20, 0.70, 0.03, 0.10}, // northwest
	{0.15, 0.30, 0.02, 0.10}, // southwest
}

// background is the probability mass spread uniformly over the square.
const background = 0.20

// Synthesize generates a deterministic synthetic dataset.
func Synthesize(c SynthConfig) (*Dataset, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	r := rng.NewNamed(c.Seed, "dataset/synth")
	box := geom.AABB{
		Min: geom.Vec3{},
		Max: geom.Vec3{X: c.Side, Y: c.Side, Z: c.MaxHeight},
	}
	// Normalize hub weights to 1-background.
	totalW := 0.0
	for _, h := range hubs {
		totalW += h.weight
	}
	d := &Dataset{Box: box}
	d.Positions = make([]geom.Vec3, c.N)
	d.Energies = make([]energy.Joules, c.N)
	// Log-normal with median exp(mu); choose mu so the mean matches
	// MeanEnergy: mean = exp(mu + σ²/2) ⇒ mu = ln(mean) − σ²/2.
	const sigma = 0.9
	mu := math.Log(float64(c.MeanEnergy)) - sigma*sigma/2

	for i := 0; i < c.N; i++ {
		var x, y float64
		if r.Float64() < background {
			x, y = r.Float64(), r.Float64()
		} else {
			// Pick a hub proportionally to weight.
			pick := r.Float64() * totalW
			var h hub
			for _, cand := range hubs {
				if pick < cand.weight {
					h = cand
					break
				}
				pick -= cand.weight
			}
			if h.weight == 0 { // float edge: fall back to heaviest hub
				h = hubs[0]
			}
			for {
				x = h.x + h.spread*r.NormFloat64()
				y = h.y + h.spread*r.NormFloat64()
				if x >= 0 && x < 1 && y >= 0 && y < 1 {
					break
				}
			}
		}
		d.Positions[i] = geom.Vec3{
			X: x * c.Side,
			Y: y * c.Side,
			Z: r.Float64() * c.MaxHeight,
		}
		e := energy.Joules(r.LogNormal(mu, sigma))
		// Clamp the extreme tail so no single node dwarfs the network by
		// orders of magnitude (the real DB similarly truncates at the
		// largest plant).
		if e > 50*c.MeanEnergy {
			e = 50 * c.MeanEnergy
		}
		if e < c.MeanEnergy/100 {
			e = c.MeanEnergy / 100
		}
		d.Energies[i] = e
	}
	// BS at the weighted center of mass of the hubs: the paper's sink
	// serves the whole country-scale network.
	var bx, by float64
	for _, h := range hubs {
		bx += h.x * h.weight
		by += h.y * h.weight
	}
	d.BS = geom.Vec3{X: bx / totalW * c.Side, Y: by / totalW * c.Side, Z: c.MaxHeight / 2}
	return d, nil
}

// LoadWRICSV reads a Global Power Plant Database CSV (v1.x schema) and
// converts rows for the given country code into a Dataset. Capacity in MW
// maps linearly onto energy so that the mean is meanEnergy; latitude and
// longitude map into a Side×Side square; heights are assigned uniformly
// in [0, maxHeight) from the provided stream, as the paper does.
func LoadWRICSV(src io.Reader, country string, side, maxHeight float64, meanEnergy energy.Joules, r *rng.Stream) (*Dataset, error) {
	rd := csv.NewReader(src)
	rd.FieldsPerRecord = -1
	header, err := rd.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading WRI header: %w", err)
	}
	col := map[string]int{}
	for i, name := range header {
		col[strings.TrimSpace(strings.ToLower(name))] = i
	}
	for _, need := range []string{"country", "capacity_mw", "latitude", "longitude"} {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("dataset: WRI CSV missing column %q", need)
		}
	}
	var lats, lons, caps []float64
	for {
		rec, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading WRI row: %w", err)
		}
		if !strings.EqualFold(strings.TrimSpace(rec[col["country"]]), country) {
			continue
		}
		capMW, err1 := strconv.ParseFloat(strings.TrimSpace(rec[col["capacity_mw"]]), 64)
		lat, err2 := strconv.ParseFloat(strings.TrimSpace(rec[col["latitude"]]), 64)
		lon, err3 := strconv.ParseFloat(strings.TrimSpace(rec[col["longitude"]]), 64)
		if err1 != nil || err2 != nil || err3 != nil || capMW <= 0 {
			continue // the real file has gaps; skip unusable rows
		}
		lats, lons, caps = append(lats, lat), append(lons, lon), append(caps, capMW)
	}
	if len(caps) == 0 {
		return nil, fmt.Errorf("dataset: no usable rows for country %q", country)
	}
	latLo, latHi := minMax(lats)
	lonLo, lonHi := minMax(lons)
	if latHi == latLo {
		latHi = latLo + 1
	}
	if lonHi == lonLo {
		lonHi = lonLo + 1
	}
	meanCap := 0.0
	for _, c := range caps {
		meanCap += c
	}
	meanCap /= float64(len(caps))

	d := &Dataset{
		Box: geom.AABB{Min: geom.Vec3{}, Max: geom.Vec3{X: side, Y: side, Z: maxHeight}},
	}
	for i := range caps {
		d.Positions = append(d.Positions, geom.Vec3{
			X: (lons[i] - lonLo) / (lonHi - lonLo) * side,
			Y: (lats[i] - latLo) / (latHi - latLo) * side,
			Z: r.Float64() * maxHeight,
		})
		d.Energies = append(d.Energies, energy.Joules(caps[i]/meanCap)*meanEnergy)
	}
	d.BS = geom.Vec3{X: side / 2, Y: side / 2, Z: maxHeight / 2}
	return d, nil
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return
}

// LoadCSV reads the x,y,z,energy_j interchange format produced by
// WriteCSV back into a Dataset (round-trip with cmd/qlecdata, and the
// format cmd/qlecsim accepts for custom topologies). The bounding box is
// grown to fit the nodes with a 1-unit pad; the base station defaults to
// the box center.
func LoadCSV(src io.Reader) (*Dataset, error) {
	rd := csv.NewReader(src)
	rd.FieldsPerRecord = 4
	header, err := rd.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if strings.TrimSpace(strings.ToLower(header[0])) != "x" {
		return nil, fmt.Errorf("dataset: unexpected CSV header %v (want x,y,z,energy_j)", header)
	}
	d := &Dataset{}
	lo := geom.Vec3{X: math.Inf(1), Y: math.Inf(1), Z: math.Inf(1)}
	hi := geom.Vec3{X: math.Inf(-1), Y: math.Inf(-1), Z: math.Inf(-1)}
	for row := 2; ; row++ {
		rec, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV row %d: %w", row, err)
		}
		vals := make([]float64, 4)
		for i, f := range rec {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV row %d field %d: %w", row, i+1, err)
			}
			vals[i] = v
		}
		p := geom.Vec3{X: vals[0], Y: vals[1], Z: vals[2]}
		if !p.IsFinite() {
			return nil, fmt.Errorf("dataset: CSV row %d has non-finite position", row)
		}
		if vals[3] <= 0 {
			return nil, fmt.Errorf("dataset: CSV row %d has non-positive energy %v", row, vals[3])
		}
		d.Positions = append(d.Positions, p)
		d.Energies = append(d.Energies, energy.Joules(vals[3]))
		lo = geom.Vec3{X: math.Min(lo.X, p.X), Y: math.Min(lo.Y, p.Y), Z: math.Min(lo.Z, p.Z)}
		hi = geom.Vec3{X: math.Max(hi.X, p.X), Y: math.Max(hi.Y, p.Y), Z: math.Max(hi.Z, p.Z)}
	}
	if len(d.Positions) == 0 {
		return nil, fmt.Errorf("dataset: CSV contains no rows")
	}
	const pad = 1.0
	d.Box = geom.AABB{
		Min: lo.Sub(geom.Vec3{X: pad, Y: pad, Z: pad}),
		Max: hi.Add(geom.Vec3{X: pad, Y: pad, Z: pad}),
	}
	d.BS = d.Box.Center()
	return d, d.Validate()
}

// WriteCSV emits the dataset as x,y,z,energy rows (with header), the
// interchange format used by cmd/qlecdata.
func (d *Dataset) WriteCSV(w io.Writer) error {
	if err := d.Validate(); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("x,y,z,energy_j\n")
	for i, p := range d.Positions {
		fmt.Fprintf(&b, "%g,%g,%g,%g\n", p.X, p.Y, p.Z, float64(d.Energies[i]))
	}
	_, err := io.WriteString(w, b.String())
	return err
}
