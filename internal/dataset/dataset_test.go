package dataset

import (
	"math"
	"strings"
	"testing"

	"qlec/internal/geom"
	"qlec/internal/rng"
	"qlec/internal/stats"
)

func TestSynthesizeDefaults(t *testing.T) {
	d, err := Synthesize(DefaultSynthConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Positions) != 2896 {
		t.Fatalf("N = %d, paper's China subset has 2896", len(d.Positions))
	}
	for i, p := range d.Positions {
		if !d.Box.Contains(p) && p != d.Box.Clamp(p) {
			t.Fatalf("node %d outside box: %v", i, p)
		}
	}
	if !d.Box.Contains(d.BS) {
		t.Fatalf("BS outside box: %v", d.BS)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, _ := Synthesize(DefaultSynthConfig())
	b, _ := Synthesize(DefaultSynthConfig())
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] || a.Energies[i] != b.Energies[i] {
			t.Fatalf("node %d differs across identical configs", i)
		}
	}
	c := DefaultSynthConfig()
	c.Seed = 777
	alt, _ := Synthesize(c)
	if alt.Positions[0] == a.Positions[0] && alt.Positions[1] == a.Positions[1] {
		t.Fatal("different seeds produced identical placements")
	}
}

func TestSynthesizeValidation(t *testing.T) {
	for _, mut := range []func(*SynthConfig){
		func(c *SynthConfig) { c.N = 0 },
		func(c *SynthConfig) { c.Side = 0 },
		func(c *SynthConfig) { c.MaxHeight = -1 },
		func(c *SynthConfig) { c.MeanEnergy = 0 },
	} {
		c := DefaultSynthConfig()
		mut(&c)
		if _, err := Synthesize(c); err == nil {
			t.Fatalf("invalid config %+v accepted", c)
		}
	}
}

func TestSynthesizeEnergyDistribution(t *testing.T) {
	d, _ := Synthesize(DefaultSynthConfig())
	vals := make([]float64, len(d.Energies))
	for i, e := range d.Energies {
		vals[i] = float64(e)
	}
	s := stats.Summarize(vals)
	// Mean near the configured 5 J (log-normal mu chosen for that mean).
	if math.Abs(s.Mean-5)/5 > 0.15 {
		t.Fatalf("mean energy = %v, want ~5", s.Mean)
	}
	// Heavy tail: the max should be several times the median.
	if s.Max < 4*stats.Median(vals) {
		t.Fatalf("energy distribution not heavy-tailed: max %v median %v", s.Max, stats.Median(vals))
	}
	for _, v := range vals {
		if v <= 0 {
			t.Fatal("non-positive synthesized energy")
		}
	}
}

func TestSynthesizeSpatialClumping(t *testing.T) {
	// The synthetic field must be clumped (unlike a uniform cube):
	// node density CV over XY bins should far exceed a uniform draw's.
	d, _ := Synthesize(DefaultSynthConfig())
	countsCV := func(pts []geom.Vec3, side float64) float64 {
		const bins = 8
		counts := make([]float64, bins*bins)
		for _, p := range pts {
			cx := int(float64(bins) * p.X / side)
			cy := int(float64(bins) * p.Y / side)
			if cx >= bins {
				cx = bins - 1
			}
			if cy >= bins {
				cy = bins - 1
			}
			counts[cy*bins+cx]++
		}
		return stats.CoefficientOfVariation(counts)
	}
	synthCV := countsCV(d.Positions, 1000)

	r := rng.New(1)
	uniform := geom.Cube(1000).SampleUniformN(r, len(d.Positions))
	uniformCV := countsCV(uniform, 1000)

	if synthCV < 2*uniformCV {
		t.Fatalf("synthetic field not clumped: CV %v vs uniform %v", synthCV, uniformCV)
	}
}

const wriSample = `country,country_long,name,capacity_mw,latitude,longitude,primary_fuel
CHN,China,Plant A,1000,31.2,121.5,Coal
CHN,China,Plant B,500,23.1,113.3,Gas
USA,United States,Plant C,800,40.7,-74.0,Coal
CHN,China,Bad Row,,31.0,120.0,Coal
CHN,China,Plant D,250,39.9,116.4,Hydro
`

func TestLoadWRICSV(t *testing.T) {
	r := rng.New(2)
	d, err := LoadWRICSV(strings.NewReader(wriSample), "CHN", 1000, 100, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4 CHN rows, one with missing capacity → 3 nodes.
	if len(d.Positions) != 3 {
		t.Fatalf("loaded %d nodes, want 3", len(d.Positions))
	}
	// Mean energy maps to 5 J.
	var total float64
	for _, e := range d.Energies {
		total += float64(e)
	}
	if math.Abs(total/3-5) > 1e-9 {
		t.Fatalf("mean loaded energy = %v", total/3)
	}
	// Capacity ordering preserved: Plant A (1000 MW) > Plant B (500).
	if d.Energies[0] <= d.Energies[1] {
		t.Fatalf("energy ordering lost: %v vs %v", d.Energies[0], d.Energies[1])
	}
	// Heights within [0, 100).
	for _, p := range d.Positions {
		if p.Z < 0 || p.Z >= 100 {
			t.Fatalf("height out of range: %v", p.Z)
		}
	}
}

func TestLoadWRICSVErrors(t *testing.T) {
	r := rng.New(3)
	if _, err := LoadWRICSV(strings.NewReader("a,b\n1,2\n"), "CHN", 1000, 100, 5, r); err == nil {
		t.Fatal("missing columns accepted")
	}
	if _, err := LoadWRICSV(strings.NewReader(wriSample), "FRA", 1000, 100, 5, r); err == nil {
		t.Fatal("country with no rows accepted")
	}
	if _, err := LoadWRICSV(strings.NewReader(""), "CHN", 1000, 100, 5, r); err == nil {
		t.Fatal("empty file accepted")
	}
}

func TestDatasetWriteCSV(t *testing.T) {
	c := DefaultSynthConfig()
	c.N = 4
	d, _ := Synthesize(c)
	var sb strings.Builder
	if err := d.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 || lines[0] != "x,y,z,energy_j" {
		t.Fatalf("csv = %q", sb.String())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	c := DefaultSynthConfig()
	c.N = 25
	orig, _ := Synthesize(c)
	var sb strings.Builder
	if err := orig.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Positions) != 25 {
		t.Fatalf("round trip lost nodes: %d", len(back.Positions))
	}
	for i := range back.Positions {
		if back.Positions[i].Dist(orig.Positions[i]) > 1e-9 {
			t.Fatalf("position %d drifted: %v vs %v", i, back.Positions[i], orig.Positions[i])
		}
		if math.Abs(float64(back.Energies[i]-orig.Energies[i])) > 1e-9 {
			t.Fatalf("energy %d drifted", i)
		}
		if !back.Box.Contains(back.Positions[i]) {
			t.Fatalf("node %d outside inferred box", i)
		}
	}
	if !back.Box.Contains(back.BS) {
		t.Fatal("BS outside inferred box")
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"wrong header":    "a,b,c,d\n1,2,3,4\n",
		"no rows":         "x,y,z,energy_j\n",
		"bad field":       "x,y,z,energy_j\n1,2,zz,4\n",
		"zero energy":     "x,y,z,energy_j\n1,2,3,0\n",
		"negative energy": "x,y,z,energy_j\n1,2,3,-1\n",
		"short row":       "x,y,z,energy_j\n1,2,3\n",
	}
	for name, csv := range cases {
		if _, err := LoadCSV(strings.NewReader(csv)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestDatasetValidateErrors(t *testing.T) {
	d := &Dataset{}
	if err := d.Validate(); err == nil {
		t.Fatal("empty dataset validated")
	}
	good, _ := Synthesize(SynthConfig{N: 2, Side: 10, MaxHeight: 5, MeanEnergy: 1, Seed: 1})
	good.Energies[1] = 0
	if err := good.Validate(); err == nil {
		t.Fatal("zero energy validated")
	}
}
