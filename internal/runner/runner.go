// Package runner is the orchestration substrate for every sweep in the
// harness: one bounded parallel map with deterministic result ordering,
// context cancellation, complete error reporting and optional progress
// updates.
//
// Design rules (tested in runner_test.go):
//
//   - Results land at the index of their job, so a parallel run returns
//     byte-identical output to a serial run of the same (deterministic)
//     job function, regardless of scheduling.
//   - Cancellation stops the dispatch of new jobs immediately; jobs
//     already running get the cancelled context and are expected to
//     return promptly. The returned error matches errors.Is(err,
//     ctx.Err()).
//   - Every failed job is reported (errors.Join in job order), not just
//     the first failure.
//   - No goroutine outlives the call: Map returns only after every
//     worker has exited.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Progress receives completion updates: done jobs out of total. It is
// called from worker goroutines (serialized, monotone done counts);
// implementations must be cheap and must not block.
type Progress func(done, total int)

// Options tunes a Map call. The zero value is ready to use.
type Options struct {
	// Workers bounds concurrency: 0 means one worker per CPU
	// (runtime.GOMAXPROCS), 1 runs the jobs serially in a single
	// goroutine — the reference schedule determinism tests compare
	// against.
	Workers int
	// Progress, when non-nil, is invoked after every completed job.
	Progress Progress
}

// Map runs fn(ctx, i) for i in [0, n) on a bounded worker pool and
// returns the results in index order. On failure the error joins every
// job error in index order; on cancellation it also includes ctx.Err()
// and no further jobs are started (slots for unstarted jobs keep the
// zero value of T).
func Map[T any](ctx context.Context, n int, opt Options, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative job count %d", n)
	}
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	errs := make([]error, n)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // guards done for Progress
		done int
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// A cancellation between dispatch and pickup: skip the
				// job rather than start doomed work.
				if ctx.Err() != nil {
					continue
				}
				out[i], errs[i] = fn(ctx, i)
				if opt.Progress != nil {
					// Held across the call so updates arrive serialized
					// with strictly increasing done counts.
					mu.Lock()
					done++
					opt.Progress(done, n)
					mu.Unlock()
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	joined := make([]error, 0, 1)
	cancelled := ctx.Err() != nil
	if cancelled {
		joined = append(joined, ctx.Err())
	}
	for _, err := range errs {
		if err == nil {
			continue
		}
		// Jobs that merely relayed the cancellation add nothing beyond
		// the ctx.Err() already recorded.
		if cancelled && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			continue
		}
		joined = append(joined, err)
	}
	if len(joined) > 0 {
		return out, errors.Join(joined...)
	}
	return out, nil
}
