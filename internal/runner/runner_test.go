package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderingAndValues(t *testing.T) {
	// Jobs finish in scrambled wall-clock order; results must still land
	// at their own index.
	out, err := Map(context.Background(), 50, Options{Workers: 8},
		func(_ context.Context, i int) (int, error) {
			if i%7 == 0 {
				time.Sleep(time.Millisecond)
			}
			return i * i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 50 {
		t.Fatalf("%d results", len(out))
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapSerialWorkerMatchesParallel(t *testing.T) {
	fn := func(_ context.Context, i int) (int, error) { return 3*i + 1, nil }
	serial, err := Map(context.Background(), 40, Options{Workers: 1}, fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(context.Background(), 40, Options{Workers: 16}, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("index %d: serial %d vs parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestMapReportsEveryError(t *testing.T) {
	wantFail := map[int]bool{3: true, 11: true, 17: true}
	_, err := Map(context.Background(), 20, Options{Workers: 4},
		func(_ context.Context, i int) (int, error) {
			if wantFail[i] {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
	if err == nil {
		t.Fatal("no error reported")
	}
	for i := range wantFail {
		if want := fmt.Sprintf("job %d failed", i); !strings.Contains(err.Error(), want) {
			t.Fatalf("joined error %q missing %q", err, want)
		}
	}
}

func TestMapCancellationPromptAndComplete(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	begun := make(chan struct{}, 64)
	// Jobs block until cancellation; Map must return promptly once the
	// context dies, without launching the remaining jobs.
	doneCh := make(chan error, 1)
	var out []int
	go func() {
		var err error
		out, err = Map(ctx, 1000, Options{Workers: 4},
			func(ctx context.Context, i int) (int, error) {
				started.Add(1)
				begun <- struct{}{}
				<-ctx.Done()
				return 0, ctx.Err()
			})
		doneCh <- err
	}()
	// Wait for the pool to fill, then cancel.
	for i := 0; i < 4; i++ {
		<-begun
	}
	cancel()
	select {
	case err := <-doneCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v does not wrap context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Map did not return promptly after cancellation")
	}
	if n := started.Load(); n > 8 {
		t.Fatalf("%d jobs started after cancellation of a 4-worker pool", n)
	}
	if len(out) != 1000 {
		t.Fatalf("result slice truncated to %d", len(out))
	}
}

func TestMapCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err := Map(ctx, 10, Options{},
		func(context.Context, int) (int, error) { ran = true; return 0, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Fatal("job ran under a dead context")
	}
}

func TestMapNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for trial := 0; trial < 5; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		_, _ = Map(ctx, 100, Options{Workers: 8},
			func(ctx context.Context, i int) (int, error) {
				if i == 10 {
					cancel()
				}
				return i, ctx.Err()
			})
		cancel()
	}
	// Allow the scheduler to retire exiting goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestMapProgress(t *testing.T) {
	var calls int32
	last := int32(-1)
	_, err := Map(context.Background(), 25, Options{Workers: 5,
		Progress: func(done, total int) {
			atomic.AddInt32(&calls, 1)
			if total != 25 {
				t.Errorf("total = %d", total)
			}
			// done counts are serialized and strictly increasing.
			if prev := atomic.SwapInt32(&last, int32(done)); int32(done) <= prev {
				t.Errorf("done went %d -> %d", prev, done)
			}
		}},
		func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 25 {
		t.Fatalf("progress called %d times", calls)
	}
	if last != 25 {
		t.Fatalf("final done = %d", last)
	}
}

func TestMapEdgeCases(t *testing.T) {
	out, err := Map(context.Background(), 0, Options{},
		func(context.Context, int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: %v, %d results", err, len(out))
	}
	if _, err := Map(context.Background(), -1, Options{},
		func(context.Context, int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative n accepted")
	}
	// One job, default workers.
	one, err := Map(context.Background(), 1, Options{},
		func(context.Context, int) (string, error) { return "ok", nil })
	if err != nil || one[0] != "ok" {
		t.Fatalf("single job: %v %v", one, err)
	}
}
