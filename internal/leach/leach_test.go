package leach

import (
	"testing"

	"qlec/internal/network"
	"qlec/internal/rng"
)

func testNet(t *testing.T, n int, seed uint64) *network.Network {
	t.Helper()
	w, err := network.Deploy(network.Deployment{N: n, Side: 200, InitialEnergy: 5}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{P: 0.05}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, c := range []Config{{P: 0}, {P: 1}, {P: -0.1}, {P: 0.05, DeathLine: -1}} {
		if err := c.Validate(); err == nil {
			t.Fatalf("invalid config %+v accepted", c)
		}
	}
}

func TestSelectAverageCountNearPN(t *testing.T) {
	w := testNet(t, 100, 1)
	s, err := NewSelector(w, Config{P: 0.05}, rng.NewNamed(1, "leach"))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	const rounds = 400
	for r := 0; r < rounds; r++ {
		total += len(s.Select(r))
	}
	mean := float64(total) / rounds
	// LEACH guarantees E[#heads] = pN = 5 per round.
	if mean < 3.5 || mean > 6.5 {
		t.Fatalf("mean head count %v, want ~5", mean)
	}
}

func TestEveryNodeServesOncePerEpoch(t *testing.T) {
	// LEACH's defining property: within one epoch of 1/p rounds, every
	// alive node serves exactly once.
	w := testNet(t, 50, 2)
	s, _ := NewSelector(w, Config{P: 0.1}, rng.NewNamed(2, "leach"))
	served := map[int]int{}
	for r := 0; r < 10; r++ { // epoch = 10 rounds
		for _, h := range s.Select(r) {
			served[h]++
		}
	}
	if len(served) != 50 {
		t.Fatalf("%d nodes served in one epoch, want all 50", len(served))
	}
	for id, c := range served {
		if c != 1 {
			t.Fatalf("node %d served %d times within one epoch", id, c)
		}
	}
}

func TestEnergyBlind(t *testing.T) {
	// LEACH must ignore residual energy: drained (but alive) nodes serve
	// as often as fresh ones.
	w := testNet(t, 100, 3)
	for i := 0; i < 50; i++ {
		w.Nodes[i].Battery.Draw(4.5)
	}
	s, _ := NewSelector(w, Config{P: 0.1}, rng.NewNamed(3, "leach"))
	drained, fresh := 0, 0
	for r := 0; r < 60; r++ {
		for _, h := range s.Select(r) {
			if h < 50 {
				drained++
			} else {
				fresh++
			}
		}
	}
	ratio := float64(drained) / float64(fresh)
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("drained/fresh service ratio %v, want ~1 (LEACH is energy-blind)", ratio)
	}
}

func TestDeadNodesExcluded(t *testing.T) {
	w := testNet(t, 20, 4)
	for i := 0; i < 10; i++ {
		w.Nodes[i].Battery.Draw(5)
	}
	s, _ := NewSelector(w, Config{P: 0.2}, rng.NewNamed(4, "leach"))
	for r := 0; r < 20; r++ {
		for _, h := range s.Select(r) {
			if h < 10 {
				t.Fatalf("dead node %d selected at round %d", h, r)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	w1 := testNet(t, 60, 5)
	w2 := testNet(t, 60, 5)
	s1, _ := NewSelector(w1, Config{P: 0.1}, rng.NewNamed(5, "leach"))
	s2, _ := NewSelector(w2, Config{P: 0.1}, rng.NewNamed(5, "leach"))
	for r := 0; r < 20; r++ {
		a, b := s1.Select(r), s2.Select(r)
		if len(a) != len(b) {
			t.Fatalf("round %d: counts differ", r)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round %d: %v vs %v", r, a, b)
			}
		}
	}
}
