// Package leach implements the classic LEACH head-rotation lottery
// (Heinzelman et al., HICSS 2000) — the common ancestor of DEEC that the
// related-work section positions QLEC against, kept here as an extra
// baseline for ablation benchmarks.
//
// LEACH selects heads with a residual-energy-blind threshold:
//
//	T(n) = p / (1 − p·(r mod ⌊1/p⌋))   if n ∈ G, else 0
//
// where G is the set of nodes that have not served in the current epoch
// of ⌊1/p⌋ rounds. Its two known weaknesses — ignoring residual energy
// and producing unevenly distributed heads — are exactly the properties
// DEEC and QLEC fix, so the gap between leach and deec quantifies the
// paper's first improvement in isolation.
package leach

import (
	"fmt"
	"math"

	"qlec/internal/cluster"
	"qlec/internal/energy"
	"qlec/internal/network"
	"qlec/internal/rng"
)

// Config parameterizes the lottery.
type Config struct {
	// P is the desired head fraction per round (k/N).
	P float64
	// DeathLine excludes depleted nodes.
	DeathLine energy.Joules
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if !(c.P > 0 && c.P < 1) {
		return fmt.Errorf("leach: P must be in (0,1), got %v", c.P)
	}
	if c.DeathLine < 0 {
		return fmt.Errorf("leach: DeathLine must be non-negative, got %v", c.DeathLine)
	}
	return nil
}

// Selector runs the LEACH lottery over one network.
type Selector struct {
	cfg   Config
	net   *network.Network
	rnd   *rng.Stream
	epoch int
}

// NewSelector builds a selector.
func NewSelector(w *network.Network, cfg Config, r *rng.Stream) (*Selector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	epoch := int(math.Floor(1 / cfg.P))
	if epoch < 1 {
		epoch = 1
	}
	return &Selector{cfg: cfg, net: w, rnd: r, epoch: epoch}, nil
}

// Select runs one round of the lottery, returning head ids ascending and
// stamping LastCHRound on winners.
func (s *Selector) Select(round int) []int {
	var heads []int
	slot := round % s.epoch
	den := 1 - s.cfg.P*float64(slot)
	var t float64
	if den <= 0 {
		t = 1
	} else {
		t = s.cfg.P / den
	}
	for _, n := range s.net.Nodes {
		if !n.Alive(s.cfg.DeathLine) {
			continue
		}
		// G: not a head so far in the current epoch block, which began
		// at round−slot.
		if n.LastCHRound >= round-slot {
			continue
		}
		if s.rnd.Float64() < t {
			heads = append(heads, n.ID)
		}
	}
	heads = cluster.SortedCopy(heads)
	for _, h := range heads {
		s.net.Nodes[h].LastCHRound = round
	}
	return heads
}
