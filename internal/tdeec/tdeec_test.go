package tdeec

import (
	"math"
	"reflect"
	"testing"

	"qlec/internal/cluster"
	"qlec/internal/network"
	"qlec/internal/rng"
)

func threeTierNet(t *testing.T, seed uint64) *network.Network {
	t.Helper()
	w, err := network.Deploy(network.Deployment{
		N: 100, Side: 200, InitialEnergy: 5,
		AdvancedFraction: 0.2, AdvancedFactor: 1,
		SuperFraction: 0.1, SuperFactor: 2,
	}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// Tier weights must mirror the provisioned initial energies: w_i =
// E0_i/Ē0, so the three tiers map to exactly three weight levels whose
// population-weighted mean is 1.
func TestTierWeightsMatchProvisioning(t *testing.T) {
	w := threeTierNet(t, 11)
	p, err := New(w, Config{K: 5, TotalRounds: 100, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	weights := p.Weights()
	meanInit := float64(w.InitialTotalEnergy()) / float64(w.N())
	var sum float64
	levels := map[float64]int{}
	for i, n := range w.Nodes {
		want := float64(n.Battery.Initial()) / meanInit
		if math.Abs(weights[i]-want) > 1e-12 {
			t.Fatalf("node %d weight %v, want %v", i, weights[i], want)
		}
		sum += weights[i]
		levels[weights[i]]++
	}
	if math.Abs(sum/float64(w.N())-1) > 1e-9 {
		t.Fatalf("mean weight %v, want 1", sum/float64(w.N()))
	}
	if len(levels) != 3 {
		t.Fatalf("expected 3 weight levels, got %d", len(levels))
	}
}

// The election must field exactly K heads while at least K nodes are
// alive — the lottery plus the E-DEECP richest-first fallback.
func TestHeadCountPinnedAtK(t *testing.T) {
	w := threeTierNet(t, 12)
	const k = 6
	p, err := New(w, Config{K: k, TotalRounds: 200, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 50; round++ {
		heads := p.StartRound(round)
		if len(heads) != k {
			t.Fatalf("round %d: %d heads, want %d", round, len(heads), k)
		}
		p.EndRound(round)
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	run := func() [][]int {
		w := threeTierNet(t, 13)
		p, err := New(w, Config{K: 5, TotalRounds: 100, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		var rounds [][]int
		for r := 0; r < 20; r++ {
			rounds = append(rounds, append([]int(nil), p.StartRound(r)...))
			p.EndRound(r)
		}
		return rounds
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different head sequences")
	}
}

func TestConformance(t *testing.T) {
	w := threeTierNet(t, 14)
	// Drain some nodes so aliveness filtering is exercised.
	for i := 0; i < 25; i++ {
		w.Nodes[i].Battery.Draw(w.Nodes[i].Battery.Initial())
	}
	p, err := New(w, Config{K: 5, TotalRounds: 100, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	report := cluster.CheckConformance(w, p, 40, 0)
	if !report.Ok() {
		for _, v := range report.Violations {
			t.Error(v)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	w := threeTierNet(t, 15)
	bad := []Config{
		{K: 0, TotalRounds: 10},
		{K: 5, TotalRounds: 0},
		{K: 5, TotalRounds: 10, DeathLine: -1},
		{K: 5, TotalRounds: 10, ThresholdFrac: 1},
		{K: 101, TotalRounds: 10},
	}
	for i, cfg := range bad {
		if _, err := New(w, cfg); err == nil {
			t.Errorf("case %d: New accepted %+v", i, cfg)
		}
	}
}

// StaticHops must agree with NextHop for every node, every round: it is
// the frozen map the simulator's parallel cluster lanes route by.
func TestStaticHopsMatchesNextHop(t *testing.T) {
	w := threeTierNet(t, 31)
	p, err := New(w, Config{K: 5, TotalRounds: 100, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	var _ cluster.StaticRouter = p
	for round := 0; round < 5; round++ {
		p.StartRound(round)
		hops := p.StaticHops()
		if len(hops) != w.N() {
			t.Fatalf("round %d: StaticHops len %d, want %d", round, len(hops), w.N())
		}
		for id := range hops {
			if hops[id] != p.NextHop(id) {
				t.Fatalf("round %d node %d: StaticHops %d != NextHop %d",
					round, id, hops[id], p.NextHop(id))
			}
		}
		p.EndRound(round)
	}
}
