package tdeec

import (
	"qlec/internal/cluster"
	"qlec/internal/protocol"
)

func init() {
	protocol.Register(protocol.Descriptor{
		ID:      "T-DEEC",
		Aliases: []string{"tdeec"},
		Paper:   "Saini & Sharma 2010; heterogeneous-DEEC survey arXiv 1408.4112",
		Summary: "threshold-gated DEEC with normal/advanced/super initial-energy tier weighting",
		Order:   100,
		DefaultParams: map[string]float64{
			"thresholdFrac": DefaultThreshold,
		},
		Factory: func(b protocol.BuildContext) (cluster.Protocol, error) {
			return New(b.Net, Config{
				K:             b.K,
				TotalRounds:   b.TotalRounds,
				DeathLine:     b.DeathLine,
				ThresholdFrac: b.Param("thresholdFrac", DefaultThreshold),
				Seed:          b.Seed,
			})
		},
	})
}
