// Package tdeec implements T-DEEC, a threshold-based heterogeneous DEEC
// variant (Saini & Sharma 2010; surveyed against E-DEEC/DDEEC in arXiv
// 1408.4112): nodes provisioned in initial-energy tiers — normal,
// advanced, super — elect heads with a probability weighted by their
// tier's share of the network's initial energy, and a residual-energy
// threshold gates candidacy so nearly-average nodes do not burn head
// duty late in life.
//
// Per round r, for node b_i with initial energy E0_i:
//
//	w_i  = E0_i / Ē0                      (tier weight; Ē0 = mean initial)
//	p_i  = p_opt · w_i · E_i(r) / Ē(r)    (heterogeneous DEEC probability)
//	T(b_i) as in LEACH/DEEC (Eq. 3), gated by E_i(r) ≥ θ·Ē(r)
//
// where Ē(r) is DEEC's a-priori average-energy estimate (Eq. 2) and θ is
// the residual threshold fraction (default 0.7). Head deficits are
// topped up richest-first, the E-DEECP fallback: when the lottery
// under-elects, the highest-residual nodes serve.
//
// The protocol is homogeneous-safe: with a single tier every w_i = 1 and
// it degrades to threshold-gated DEEC.
package tdeec

import (
	"fmt"
	"math"
	"slices"

	"qlec/internal/cluster"
	"qlec/internal/energy"
	"qlec/internal/network"
	"qlec/internal/rng"
)

// Config parameterizes a T-DEEC instance.
type Config struct {
	// K is the target cluster count per round.
	K int
	// TotalRounds is R, the planned lifespan driving the Eq. (2)
	// average-energy estimate.
	TotalRounds int
	// DeathLine excludes depleted nodes.
	DeathLine energy.Joules
	// ThresholdFrac is θ: a node is head-eligible only while its
	// residual energy is at least θ·Ē(r). Zero means DefaultThreshold.
	ThresholdFrac float64
	// Seed drives the election lottery.
	Seed uint64
}

// DefaultThreshold is the θ used when Config.ThresholdFrac is zero.
const DefaultThreshold = 0.7

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.K <= 0 {
		return fmt.Errorf("tdeec: K must be positive, got %d", c.K)
	}
	if c.TotalRounds <= 0 {
		return fmt.Errorf("tdeec: TotalRounds must be positive, got %d", c.TotalRounds)
	}
	if c.DeathLine < 0 {
		return fmt.Errorf("tdeec: DeathLine must be non-negative, got %v", c.DeathLine)
	}
	if c.ThresholdFrac < 0 || c.ThresholdFrac >= 1 {
		return fmt.Errorf("tdeec: ThresholdFrac %v outside [0,1)", c.ThresholdFrac)
	}
	return nil
}

// Protocol is T-DEEC bound to one network.
type Protocol struct {
	cfg Config
	net *network.Network
	rnd *rng.Stream
	// weights holds w_i = E0_i/Ē0 per node, fixed at construction (tiers
	// are a provisioning property, not a runtime one).
	weights []float64

	heads   []int
	isHead  []bool
	nearest cluster.Assignment
	// hop is the frozen member→target map for the round (StaticRouter).
	hop []int
}

// New builds a T-DEEC protocol over the network.
func New(w *network.Network, cfg Config) (*Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.K > w.N() {
		return nil, fmt.Errorf("tdeec: K=%d exceeds N=%d", cfg.K, w.N())
	}
	if cfg.ThresholdFrac == 0 {
		cfg.ThresholdFrac = DefaultThreshold
	}
	meanInit := float64(w.InitialTotalEnergy()) / float64(w.N())
	weights := make([]float64, w.N())
	for i, n := range w.Nodes {
		weights[i] = float64(n.Battery.Initial()) / meanInit
	}
	return &Protocol{
		cfg:     cfg,
		net:     w,
		rnd:     rng.NewNamed(cfg.Seed, "tdeec/select"),
		weights: weights,
		isHead:  make([]bool, w.N()),
	}, nil
}

// Weights exposes the per-node tier weights w_i (tests and telemetry).
func (p *Protocol) Weights() []float64 {
	return append([]float64(nil), p.weights...)
}

// Name implements cluster.Protocol.
func (p *Protocol) Name() string { return "T-DEEC" }

const pMin = 1e-4

// probability returns the tier-weighted p_i, clamped into [pMin, 0.999].
func (p *Protocol) probability(n *network.Node, round int) float64 {
	mean := float64(p.net.EstimatedMeanEnergy(round, p.cfg.TotalRounds))
	popt := float64(p.cfg.K) / float64(p.net.N())
	pi := popt * p.weights[n.ID]
	if mean > 0 {
		pi *= float64(n.Battery.Residual()) / mean
	}
	if pi < pMin {
		pi = pMin
	}
	if pi > 0.999 {
		pi = 0.999
	}
	return pi
}

// threshold evaluates the LEACH/DEEC rotation threshold (Eq. 3).
func threshold(pi float64, round int) float64 {
	epoch := int(math.Floor(1 / pi))
	if epoch < 1 {
		epoch = 1
	}
	den := 1 - pi*float64(round%epoch)
	if den <= 0 {
		return 1
	}
	return pi / den
}

// StartRound implements cluster.Protocol: the tiered election.
func (p *Protocol) StartRound(round int) []int {
	heads := p.heads[:0]
	mean := float64(p.net.EstimatedMeanEnergy(round, p.cfg.TotalRounds))
	gate := energy.Joules(p.cfg.ThresholdFrac * mean)
	type candidate struct {
		id       int
		residual energy.Joules
	}
	var reserve []candidate
	for _, n := range p.net.Nodes {
		if !n.Alive(p.cfg.DeathLine) {
			continue
		}
		reserve = append(reserve, candidate{n.ID, n.Battery.Residual()})
		// θ-gate: below θ·Ē(r) a node sits the lottery out (it can still
		// be drafted by the top-up fallback when the round under-elects).
		if n.Battery.Residual() < gate {
			continue
		}
		pi := p.probability(n, round)
		epoch := int(math.Floor(1 / pi))
		if epoch < 1 {
			epoch = 1
		}
		if n.LastCHRound >= 0 && round-n.LastCHRound < epoch {
			continue
		}
		if p.rnd.Float64() < threshold(pi, round) {
			heads = append(heads, n.ID)
		}
	}
	// Pin the count at K: trim richest-first when over; top up from the
	// alive pool richest-first when under (the E-DEECP fallback). The
	// shuffles make equal-residual ties uniform yet seed-reproducible.
	byResidualDesc := func(a, b candidate) int {
		switch {
		case a.residual > b.residual:
			return -1
		case a.residual < b.residual:
			return 1
		}
		return 0
	}
	if len(heads) > p.cfg.K {
		p.rnd.Shuffle(len(heads), func(i, j int) { heads[i], heads[j] = heads[j], heads[i] })
		slices.SortStableFunc(heads, func(a, b int) int {
			return byResidualDesc(
				candidate{a, p.net.Nodes[a].Battery.Residual()},
				candidate{b, p.net.Nodes[b].Battery.Residual()})
		})
		heads = heads[:p.cfg.K]
	}
	if len(heads) < p.cfg.K {
		inHeads := make(map[int]bool, len(heads))
		for _, h := range heads {
			inHeads[h] = true
		}
		p.rnd.Shuffle(len(reserve), func(i, j int) { reserve[i], reserve[j] = reserve[j], reserve[i] })
		slices.SortStableFunc(reserve, byResidualDesc)
		for _, c := range reserve {
			if len(heads) >= p.cfg.K {
				break
			}
			if !inHeads[c.id] {
				heads = append(heads, c.id)
				inHeads[c.id] = true
			}
		}
	}
	heads = cluster.SortedCopy(heads)
	for i := range p.isHead {
		p.isHead[i] = false
	}
	for _, h := range heads {
		p.isHead[h] = true
		p.net.Nodes[h].LastCHRound = round
	}
	p.heads = heads
	p.nearest = cluster.AssignNearest(p.net, heads)
	if p.hop == nil {
		p.hop = make([]int, p.net.N())
	}
	for id := range p.hop {
		if p.isHead[id] {
			p.hop[id] = network.BSID
		} else {
			p.hop[id] = p.nearest.Head[id]
		}
	}
	return heads
}

// StaticHops implements cluster.StaticRouter: the routing is frozen at
// StartRound (heads to the BS, members to their nearest head), so the
// simulator may run clusters on parallel lanes.
func (p *Protocol) StaticHops() []int { return p.hop }

// NextHop implements cluster.Protocol: heads burst to the BS, members
// use nearest-head assignment.
func (p *Protocol) NextHop(node int) int {
	if p.isHead[node] {
		return network.BSID
	}
	return p.nearest.Head[node]
}

// OnOutcome implements cluster.Protocol: T-DEEC does not learn.
func (p *Protocol) OnOutcome(node, target int, success bool) {}

// EndRound implements cluster.Protocol.
func (p *Protocol) EndRound(round int) {}

// RelayMode implements cluster.Protocol.
func (p *Protocol) RelayMode() cluster.RelayMode { return cluster.HoldAndBurst }
