// Package kmeans implements the classic k-means clustering baseline of
// the paper's evaluation (§5: "classic k-means clustering"), using
// Lloyd's algorithm with k-means++ seeding in 3-D, plus a brute-force
// optimal solver for tiny instances used to measure clustering quality
// against the NP-Complete EECP optimum (Definition 2 / Theorem 2).
//
// As a routing protocol, k-means clusters node *positions* only — "k-means
// clusters nodes based on the distance between them" (§5.2) — so the head
// of each cluster is the node nearest the centroid and members always
// forward to their cluster's head, with no energy awareness and no
// rerouting on failure. Those two omissions are precisely what the
// paper's figures penalize.
package kmeans

import (
	"fmt"
	"math"

	"qlec/internal/geom"
	"qlec/internal/rng"
)

// Result holds a clustering of points.
type Result struct {
	// Centroids are the final cluster centers.
	Centroids []geom.Vec3
	// Assign maps each input point to its centroid index.
	Assign []int
	// Cost is the sum of squared point→centroid distances (the k-means
	// objective; Definition 2's "average distance to the nearest center"
	// scales it by 1/n).
	Cost float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// Config parameterizes Cluster.
type Config struct {
	// K is the cluster count.
	K int
	// MaxIterations caps Lloyd's loop; convergence usually happens far
	// earlier. Zero means the default of 100.
	MaxIterations int
	// Tolerance stops iteration when no centroid moves more than this
	// distance. Zero means 1e-9.
	Tolerance float64
}

func (c Config) withDefaults() Config {
	if c.MaxIterations == 0 {
		c.MaxIterations = 100
	}
	if c.Tolerance == 0 {
		c.Tolerance = 1e-9
	}
	return c
}

// Validate checks the configuration against the point count.
func (c Config) Validate(n int) error {
	if c.K <= 0 {
		return fmt.Errorf("kmeans: K must be positive, got %d", c.K)
	}
	if c.K > n {
		return fmt.Errorf("kmeans: K=%d exceeds point count %d", c.K, n)
	}
	if c.MaxIterations < 0 || c.Tolerance < 0 {
		return fmt.Errorf("kmeans: negative iteration cap or tolerance")
	}
	return nil
}

// Scratch holds the reusable working storage of ClusterScratch: the
// assignment and centroid slices plus the update-step and seeding
// buffers that used to be reallocated every call (and, worse, every
// Lloyd iteration). The zero value is ready; buffers grow on demand and
// persist across calls.
type Scratch struct {
	assign    []int
	centroids []geom.Vec3
	sums      []geom.Vec3
	counts    []int
	d2        []float64
}

// Cluster runs k-means++ seeding followed by Lloyd's algorithm.
// The stream drives seeding; results are deterministic per stream state.
func Cluster(points []geom.Vec3, cfg Config, r *rng.Stream) (*Result, error) {
	var s Scratch
	return ClusterScratch(points, cfg, r, &s)
}

// ClusterScratch is Cluster with caller-owned working storage. The
// returned Result's Assign and Centroids alias the scratch and stay
// valid only until the next call with the same Scratch.
func ClusterScratch(points []geom.Vec3, cfg Config, r *rng.Stream, s *Scratch) (*Result, error) {
	if err := cfg.Validate(len(points)); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	centroids := seedPlusPlus(points, cfg.K, r, s)
	if cap(s.assign) < len(points) {
		s.assign = make([]int, len(points))
	}
	assign := s.assign[:len(points)]
	res := &Result{Centroids: centroids, Assign: assign}

	if cap(s.sums) < cfg.K {
		s.sums = make([]geom.Vec3, cfg.K)
		s.counts = make([]int, cfg.K)
	}
	sums, counts := s.sums[:cfg.K], s.counts[:cfg.K]
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		res.Iterations = iter + 1
		// Assignment step.
		changed := assignNearest(points, centroids, assign)
		// Update step.
		for c := range sums {
			sums[c] = geom.Vec3{}
			counts[c] = 0
		}
		for i, a := range assign {
			sums[a] = sums[a].Add(points[i])
			counts[a]++
		}
		maxMove := 0.0
		for c := range centroids {
			if counts[c] == 0 {
				// Empty cluster: respawn on the point farthest from its
				// centroid, the standard repair.
				centroids[c] = points[farthestPoint(points, centroids, assign)]
				maxMove = math.Inf(1)
				continue
			}
			next := sums[c].Scale(1 / float64(counts[c]))
			if m := next.Dist(centroids[c]); m > maxMove {
				maxMove = m
			}
			centroids[c] = next
		}
		if !changed && maxMove <= cfg.Tolerance {
			break
		}
	}
	assignNearest(points, centroids, assign)
	res.Cost = cost(points, centroids, assign)
	return res, nil
}

// seedPlusPlus picks K initial centroids with D² weighting
// (Arthur & Vassilvitskii, 2007), reusing the scratch's centroid and
// distance buffers.
func seedPlusPlus(points []geom.Vec3, k int, r *rng.Stream, s *Scratch) []geom.Vec3 {
	if cap(s.centroids) < k {
		s.centroids = make([]geom.Vec3, 0, k)
	}
	centroids := s.centroids[:0]
	centroids = append(centroids, points[r.Intn(len(points))])
	if cap(s.d2) < len(points) {
		s.d2 = make([]float64, len(points))
	}
	d2 := s.d2[:len(points)]
	for len(centroids) < k {
		total := 0.0
		last := centroids[len(centroids)-1]
		for i, p := range points {
			d := p.DistSq(last)
			if len(centroids) == 1 || d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
		if total == 0 {
			// All points coincide with centroids; duplicate arbitrarily.
			centroids = append(centroids, points[r.Intn(len(points))])
			continue
		}
		pick := r.Float64() * total
		idx := len(points) - 1
		for i, w := range d2 {
			pick -= w
			if pick <= 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, points[idx])
	}
	return centroids
}

// assignNearest fills assign with each point's nearest centroid index,
// reporting whether any assignment changed.
func assignNearest(points []geom.Vec3, centroids []geom.Vec3, assign []int) bool {
	changed := false
	for i, p := range points {
		best, bestD := 0, math.Inf(1)
		for c, ct := range centroids {
			if d := p.DistSq(ct); d < bestD {
				best, bestD = c, d
			}
		}
		if assign[i] != best {
			assign[i] = best
			changed = true
		}
	}
	return changed
}

func farthestPoint(points []geom.Vec3, centroids []geom.Vec3, assign []int) int {
	worst, worstD := 0, -1.0
	for i, p := range points {
		if d := p.DistSq(centroids[assign[i]]); d > worstD {
			worst, worstD = i, d
		}
	}
	return worst
}

func cost(points []geom.Vec3, centroids []geom.Vec3, assign []int) float64 {
	total := 0.0
	for i, p := range points {
		total += p.DistSq(centroids[assign[i]])
	}
	return total
}

// NearestIndex returns the index in candidates of the point closest to
// target (used to pick the head node nearest a centroid). It panics on an
// empty candidate set.
func NearestIndex(candidates []geom.Vec3, target geom.Vec3) int {
	if len(candidates) == 0 {
		panic("kmeans: NearestIndex over empty candidates")
	}
	best, bestD := 0, math.Inf(1)
	for i, p := range candidates {
		if d := p.DistSq(target); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// OptimalCost exhaustively solves the k-clustering problem for tiny
// inputs by enumerating all assignments of n points to k labeled
// clusters and returns the minimum k-means cost. Exponential (k^n): the
// EECP is NP-Complete (Theorem 2), so only n ≤ ~12 is feasible; used to
// measure how close the heuristics get to the true optimum.
func OptimalCost(points []geom.Vec3, k int) (float64, error) {
	n := len(points)
	if k <= 0 || k > n {
		return 0, fmt.Errorf("kmeans: invalid k=%d for %d points", k, n)
	}
	if n > 14 {
		return 0, fmt.Errorf("kmeans: OptimalCost is exponential; %d points exceeds the cap of 14", n)
	}
	assign := make([]int, n)
	best := math.Inf(1)
	var recurse func(i, used int)
	recurse = func(i, used int) {
		if i == n {
			if used < k {
				return
			}
			// Centroid of each cluster minimizes squared cost.
			sums := make([]geom.Vec3, k)
			counts := make([]int, k)
			for j, a := range assign {
				sums[a] = sums[a].Add(points[j])
				counts[a]++
			}
			total := 0.0
			for j, a := range assign {
				c := sums[a].Scale(1 / float64(counts[a]))
				total += points[j].DistSq(c)
			}
			if total < best {
				best = total
			}
			return
		}
		// Canonical labeling: point i may use clusters [0, used] only,
		// killing label permutations.
		lim := used
		if lim >= k {
			lim = k - 1
		}
		for c := 0; c <= lim; c++ {
			assign[i] = c
			nextUsed := used
			if c == used {
				nextUsed++
			}
			recurse(i+1, nextUsed)
		}
	}
	recurse(0, 0)
	return best, nil
}
