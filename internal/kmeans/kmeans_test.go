package kmeans

import (
	"math"
	"testing"

	"qlec/internal/geom"
	"qlec/internal/rng"
)

// threeBlobs returns points drawn around three well-separated centers.
func threeBlobs(seed uint64, per int) ([]geom.Vec3, []geom.Vec3) {
	r := rng.New(seed)
	centers := []geom.Vec3{{X: 20, Y: 20, Z: 20}, {X: 160, Y: 40, Z: 100}, {X: 80, Y: 170, Z: 60}}
	var pts []geom.Vec3
	for _, c := range centers {
		for i := 0; i < per; i++ {
			pts = append(pts, c.Add(geom.Vec3{
				X: 5 * r.NormFloat64(),
				Y: 5 * r.NormFloat64(),
				Z: 5 * r.NormFloat64(),
			}))
		}
	}
	return pts, centers
}

func TestClusterRecoversBlobs(t *testing.T) {
	pts, centers := threeBlobs(1, 60)
	res, err := Cluster(pts, Config{K: 3}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Every true center must have a centroid within a few units.
	for _, c := range centers {
		best := math.Inf(1)
		for _, ct := range res.Centroids {
			if d := ct.Dist(c); d < best {
				best = d
			}
		}
		if best > 5 {
			t.Fatalf("no centroid near blob center %v (closest %v away)", c, best)
		}
	}
	// Assignments are consistent with nearest centroid.
	for i, p := range pts {
		a := res.Assign[i]
		for c := range res.Centroids {
			if p.DistSq(res.Centroids[c]) < p.DistSq(res.Centroids[a])-1e-9 {
				t.Fatalf("point %d not assigned to nearest centroid", i)
			}
		}
	}
}

func TestClusterDeterministicPerStream(t *testing.T) {
	pts, _ := threeBlobs(3, 40)
	a, _ := Cluster(pts, Config{K: 3}, rng.New(7))
	b, _ := Cluster(pts, Config{K: 3}, rng.New(7))
	if a.Cost != b.Cost {
		t.Fatalf("costs differ across equal streams: %v vs %v", a.Cost, b.Cost)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("assignments differ across equal streams")
		}
	}
}

func TestClusterValidation(t *testing.T) {
	pts, _ := threeBlobs(4, 5)
	if _, err := Cluster(pts, Config{K: 0}, rng.New(1)); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := Cluster(pts, Config{K: len(pts) + 1}, rng.New(1)); err == nil {
		t.Fatal("K>n accepted")
	}
	if _, err := Cluster(pts, Config{K: 2, MaxIterations: -1}, rng.New(1)); err == nil {
		t.Fatal("negative iterations accepted")
	}
}

func TestClusterKEqualsN(t *testing.T) {
	pts := []geom.Vec3{{X: 1}, {X: 5}, {X: 9}}
	res, err := Cluster(pts, Config{K: 3}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 1e-9 {
		t.Fatalf("K=n cost = %v, want 0", res.Cost)
	}
}

func TestClusterDuplicatePoints(t *testing.T) {
	pts := make([]geom.Vec3, 10)
	for i := range pts {
		pts[i] = geom.Vec3{X: 3, Y: 3, Z: 3}
	}
	res, err := Cluster(pts, Config{K: 3}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 {
		t.Fatalf("identical points cost = %v", res.Cost)
	}
}

func TestCostDecreasesWithK(t *testing.T) {
	pts, _ := threeBlobs(7, 50)
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 3, 6} {
		res, err := Cluster(pts, Config{K: k}, rng.New(8))
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost > prev+1e-6 {
			t.Fatalf("cost rose from %v to %v at k=%d", prev, res.Cost, k)
		}
		prev = res.Cost
	}
}

func TestNearestIndex(t *testing.T) {
	pts := []geom.Vec3{{X: 0}, {X: 10}, {X: 20}}
	if got := NearestIndex(pts, geom.Vec3{X: 12}); got != 1 {
		t.Fatalf("NearestIndex = %d", got)
	}
}

func TestNearestIndexPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty candidates did not panic")
		}
	}()
	NearestIndex(nil, geom.Vec3{})
}

func TestOptimalCostTinyExact(t *testing.T) {
	// Two obvious pairs on a line: optimal 2-clustering splits them.
	pts := []geom.Vec3{{X: 0}, {X: 1}, {X: 10}, {X: 11}}
	opt, err := OptimalCost(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Each pair contributes 2·(0.5)² = 0.5.
	if math.Abs(opt-1.0) > 1e-9 {
		t.Fatalf("optimal cost = %v, want 1.0", opt)
	}
}

func TestOptimalCostBounds(t *testing.T) {
	if _, err := OptimalCost(make([]geom.Vec3, 20), 2); err == nil {
		t.Fatal("oversized instance accepted")
	}
	if _, err := OptimalCost(make([]geom.Vec3, 5), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := OptimalCost(make([]geom.Vec3, 3), 4); err == nil {
		t.Fatal("k>n accepted")
	}
}

// The headline approximation check: Lloyd's heuristic must land within a
// small factor of the NP-hard optimum on instances small enough to solve
// exactly.
func TestLloydNearOptimalOnTinyInstances(t *testing.T) {
	r := rng.New(9)
	box := geom.Cube(100)
	for trial := 0; trial < 10; trial++ {
		pts := box.SampleUniformN(r, 10)
		opt, err := OptimalCost(pts, 3)
		if err != nil {
			t.Fatal(err)
		}
		// Best of a few restarts, as standard.
		best := math.Inf(1)
		for restart := 0; restart < 5; restart++ {
			res, err := Cluster(pts, Config{K: 3}, r.Split(uint64(trial*10+restart)))
			if err != nil {
				t.Fatal(err)
			}
			best = math.Min(best, res.Cost)
		}
		if best > opt*1.25+1e-9 {
			t.Fatalf("trial %d: Lloyd cost %v vs optimal %v (ratio %v)",
				trial, best, opt, best/opt)
		}
	}
}

func BenchmarkCluster100(b *testing.B) {
	r := rng.New(10)
	pts := geom.Cube(200).SampleUniformN(r, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(pts, Config{K: 5}, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCluster2896(b *testing.B) {
	r := rng.New(11)
	pts := geom.Cube(1000).SampleUniformN(r, 2896)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(pts, Config{K: 272}, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func TestClusterScratchAllocs(t *testing.T) {
	r := rng.New(17)
	pts := geom.Cube(200).SampleUniformN(r, 100)
	var s Scratch
	if _, err := ClusterScratch(pts, Config{K: 5}, r, &s); err != nil {
		t.Fatal(err) // warm the scratch
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := ClusterScratch(pts, Config{K: 5}, r, &s); err != nil {
			t.Fatal(err)
		}
	})
	// Steady state allocates only the Result header.
	if allocs > 1 {
		t.Fatalf("ClusterScratch allocates %.1f objects per call, want <= 1", allocs)
	}
}
