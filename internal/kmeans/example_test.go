package kmeans_test

import (
	"fmt"
	"log"

	"qlec/internal/geom"
	"qlec/internal/kmeans"
	"qlec/internal/rng"
)

// Example clusters two obvious groups and reads back the assignment.
func Example() {
	points := []geom.Vec3{
		{X: 0}, {X: 1}, {X: 2}, // group A
		{X: 100}, {X: 101}, {X: 102}, // group B
	}
	res, err := kmeans.Cluster(points, kmeans.Config{K: 2}, rng.New(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("same cluster A:", res.Assign[0] == res.Assign[1] && res.Assign[1] == res.Assign[2])
	fmt.Println("same cluster B:", res.Assign[3] == res.Assign[4] && res.Assign[4] == res.Assign[5])
	fmt.Println("separated:", res.Assign[0] != res.Assign[3])
	// Output:
	// same cluster A: true
	// same cluster B: true
	// separated: true
}

// ExampleOptimalCost solves a tiny instance of the NP-hard clustering
// problem exactly (Theorem 2 makes exhaustive search the only route to
// certainty).
func ExampleOptimalCost() {
	points := []geom.Vec3{{X: 0}, {X: 1}, {X: 10}, {X: 11}}
	opt, err := kmeans.OptimalCost(points, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal 2-means cost: %.2f\n", opt)
	// Output:
	// optimal 2-means cost: 1.00
}
