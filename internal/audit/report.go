package audit

import (
	"slices"

	"qlec/internal/energy"
	"qlec/internal/sim"
)

// NodeEnergy is one node's row in the per-node/per-cause energy table.
type NodeEnergy struct {
	Node     int           `json:"node"`
	Tx       energy.Joules `json:"txJ"`
	Rx       energy.Joules `json:"rxJ"`
	Fusion   energy.Joules `json:"fusionJ"`
	Control  energy.Joules `json:"controlJ"`
	Total    energy.Joules `json:"totalJ"`
	Initial  energy.Joules `json:"initialJ"`
	Residual energy.Joules `json:"residualJ"`
}

// Report is the artifact's summary: where the joules went, whether the
// books balanced, and what the detectors saw.
type Report struct {
	Rounds int `json:"rounds"`
	// Entries/Decisions count everything observed; the Kept variants
	// are what survived the rings into the artifact.
	Entries       int `json:"entries"`
	EntriesKept   int `json:"entriesKept"`
	Decisions     int `json:"decisions"`
	DecisionsKept int `json:"decisionsKept"`

	TotalJ   energy.Joules `json:"totalJ"`
	TxJ      energy.Joules `json:"txJ"`
	RxJ      energy.Joules `json:"rxJ"`
	FusionJ  energy.Joules `json:"fusionJ"`
	ControlJ energy.Joules `json:"controlJ"`

	Nodes []NodeEnergy `json:"nodes,omitempty"`

	ViolationCount uint64            `json:"violationCount"`
	Violations     []Violation       `json:"violations,omitempty"`
	AnomalyCounts  map[string]uint64 `json:"anomalyCounts,omitempty"`
	Anomalies      []Anomaly         `json:"anomalies,omitempty"`
}

// Report summarizes the recorder's accumulated state. Call after the
// run; the per-node table reads current battery residuals.
func (r *Recorder) Report() Report {
	rep := Report{
		Rounds:         r.rounds,
		Entries:        r.entries.total,
		EntriesKept:    len(r.entries.buf),
		Decisions:      r.decisions.total,
		DecisionsKept:  len(r.decisions.buf),
		TxJ:            r.byCause[sim.CauseTx],
		RxJ:            r.byCause[sim.CauseRx],
		FusionJ:        r.byCause[sim.CauseFusion],
		ControlJ:       r.byCause[sim.CauseControl],
		ViolationCount: r.violationCount,
		Violations:     slices.Clone(r.violations),
		Anomalies:      slices.Clone(r.anomalies),
	}
	for _, j := range r.byCause {
		rep.TotalJ += j
	}
	if len(r.anomalyCounts) > 0 {
		rep.AnomalyCounts = make(map[string]uint64, len(r.anomalyCounts))
		for k, v := range r.anomalyCounts {
			rep.AnomalyCounts[k] = v
		}
	}
	if r.net != nil {
		rep.Nodes = make([]NodeEnergy, r.net.N())
		for i, n := range r.net.Nodes {
			c := r.nodeCause[i]
			rep.Nodes[i] = NodeEnergy{
				Node: i,
				Tx:   c[sim.CauseTx], Rx: c[sim.CauseRx],
				Fusion: c[sim.CauseFusion], Control: c[sim.CauseControl],
				Total:   r.spent[i],
				Initial: n.Battery.Initial(), Residual: n.Battery.Residual(),
			}
		}
	}
	return rep
}

// TopSpenders returns the n highest-consumption nodes, ties broken by
// lower node id. n ≤ 0 or beyond the table returns every node.
func (rep Report) TopSpenders(n int) []NodeEnergy {
	out := slices.Clone(rep.Nodes)
	slices.SortStableFunc(out, func(a, b NodeEnergy) int {
		switch {
		case a.Total > b.Total:
			return -1
		case a.Total < b.Total:
			return 1
		default:
			return a.Node - b.Node
		}
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}
