package audit_test

// End-to-end flight-recorder tests against real simulations, plus the
// acceptance-criteria invariant checks: conservation must hold over a
// full 20-round paper-scale run, and the checker must demonstrably
// fire when energy leaks outside the ledger.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"qlec/internal/audit"
	"qlec/internal/energy"
	"qlec/internal/experiment"
	"qlec/internal/metrics"
	"qlec/internal/obs"
	"qlec/internal/sim"
)

// runAudited runs one QLEC simulation with the recorder installed.
func runAudited(t *testing.T, rec *audit.Recorder, mut func(*experiment.Config)) *metrics.Result {
	t.Helper()
	c := experiment.PaperConfig()
	c.N = 40
	c.Rounds = 8
	c.Seeds = []uint64{1}
	if mut != nil {
		mut(&c)
	}
	c.Audit = rec
	res, err := c.RunOne(context.Background(), experiment.QLEC, 4, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestConservationGoldenRun is the acceptance criterion: over a full
// 20-round paper-configuration run, every per-round conservation check
// passes, and the final ledger reconciles with the engine's own
// accounting — per category and in total.
func TestConservationGoldenRun(t *testing.T) {
	rec := audit.New(audit.Options{MaxEntries: 1 << 20})
	c := experiment.PaperConfig()
	c.Seeds = []uint64{1}
	c.Audit = rec
	res, err := c.RunOne(context.Background(), experiment.QLEC, 4, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 20 {
		t.Fatalf("ran %d rounds, want the paper's 20", res.Rounds)
	}
	if rec.Violations() != 0 {
		t.Fatalf("conservation violations on a clean run: %v", rec.Err())
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	rep := rec.Report()
	if rep.Rounds != 20 || rep.Entries == 0 || rep.Decisions == 0 {
		t.Fatalf("report rounds=%d entries=%d decisions=%d, want 20/+/+", rep.Rounds, rep.Entries, rep.Decisions)
	}
	if !energy.ApproxEqual(rep.TotalJ, res.TotalEnergy) {
		t.Fatalf("ledger total %v, engine total %v", rep.TotalJ, res.TotalEnergy)
	}
	ledger := [metrics.NumEnergyCategories]energy.Joules{rep.TxJ, rep.RxJ, rep.FusionJ, rep.ControlJ}
	for i, want := range res.Energy.Categories() {
		if !energy.ApproxEqual(ledger[i], want) {
			t.Errorf("%s: ledger %v, breakdown %v", metrics.EnergyCategoryNames[i], ledger[i], want)
		}
	}
	// Per-node closure: every row's categories sum to its total, and
	// initial − total == residual.
	for _, row := range rep.Nodes {
		if !energy.ApproxEqual(row.Tx+row.Rx+row.Fusion+row.Control, row.Total) {
			t.Fatalf("node %d: causes sum %v, total %v", row.Node, row.Tx+row.Rx+row.Fusion+row.Control, row.Total)
		}
		if !energy.ApproxEqual(row.Initial-row.Total, row.Residual) {
			t.Fatalf("node %d: initial %v − spent %v ≠ residual %v", row.Node, row.Initial, row.Total, row.Residual)
		}
	}
	// Q-decision explainability rode along: some decision carries a
	// joined reward from its subsequent ACK outcome.
	rewarded := 0
	for _, d := range rec.Decisions() {
		if d.HasReward {
			rewarded++
			if d.Chosen != d.Greedy && !d.Explored {
				t.Fatalf("decision %+v chose non-greedy without exploring", d)
			}
		}
	}
	if rewarded == 0 {
		t.Fatal("no decision record was joined with its outcome reward")
	}
}

// TestCheckerFiresOnInjectedLeak drains a battery behind the ledger's
// back mid-run; the next round's sweep must flag the leak, count it on
// the metrics registry, and surface a structured error.
func TestCheckerFiresOnInjectedLeak(t *testing.T) {
	reg := obs.NewRegistry()
	rec := audit.New(audit.Options{Metrics: reg})
	leakDone := false
	runAudited(t, rec, func(c *experiment.Config) {
		c.Observer = func(snap sim.RoundSnapshot) {
			if snap.Round == 2 && !leakDone {
				leakDone = true
				// Draw directly from a battery on the recorder's bound
				// network, bypassing the engine's classified draw helpers
				// — a joule the ledger never sees.
				rec.Network().Nodes[0].Battery.Draw(1)
			}
		}
	})
	if !leakDone {
		t.Fatal("leak hook never fired")
	}
	if rec.Violations() == 0 {
		t.Fatal("injected leak went undetected")
	}
	err := rec.Err()
	if err == nil {
		t.Fatal("Err() nil despite violations")
	}
	verr, ok := err.(*audit.ViolationError)
	if !ok {
		t.Fatalf("Err() = %T, want *audit.ViolationError", err)
	}
	if verr.Count == 0 || len(verr.First) == 0 {
		t.Fatalf("violation error carries no detail: %+v", verr)
	}
	if verr.First[0].Kind != "node-conservation" || verr.First[0].Node != 0 {
		t.Fatalf("first violation %+v, want node-conservation at node 0", verr.First[0])
	}
	if !strings.Contains(verr.Error(), "violation") {
		t.Fatalf("error %q does not mention violations", verr.Error())
	}

	var expo bytes.Buffer
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expo.String(), "qlec_audit_violations_total") {
		t.Fatalf("exposition missing qlec_audit_violations_total:\n%s", expo.String())
	}
}

// TestRingBoundsAndSpill: the in-memory ring keeps the newest
// MaxEntries entries while the spill stream receives everything.
func TestRingBoundsAndSpill(t *testing.T) {
	var spill bytes.Buffer
	rec := audit.New(audit.Options{MaxEntries: 100, Spill: &spill})
	runAudited(t, rec, nil)
	if rec.Entries() <= 100 {
		t.Fatalf("run produced only %d entries; test needs ring overflow", rec.Entries())
	}
	kept := rec.Ledger()
	if len(kept) != 100 {
		t.Fatalf("ring kept %d entries, want 100", len(kept))
	}

	var all []sim.EnergyEntry
	sc := bufio.NewScanner(&spill)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var e sim.EnergyEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("spill line does not parse: %v", err)
		}
		all = append(all, e)
	}
	if len(all) != rec.Entries() {
		t.Fatalf("spill has %d entries, recorder observed %d", len(all), rec.Entries())
	}
	// The ring holds exactly the spill's tail, in order.
	tail := all[len(all)-100:]
	if d := audit.DiffLedgers(tail, kept); d != nil {
		t.Fatalf("ring/spill tail disagree: %v", d)
	}
	rep := rec.Report()
	if rep.EntriesKept != 100 || rep.Entries != len(all) {
		t.Fatalf("report kept=%d total=%d, want 100/%d", rep.EntriesKept, rep.Entries, len(all))
	}
}

// TestTopSpenders orders by total consumption, ties to lower id.
func TestTopSpenders(t *testing.T) {
	rep := audit.Report{Nodes: []audit.NodeEnergy{
		{Node: 0, Total: 1}, {Node: 1, Total: 5}, {Node: 2, Total: 5}, {Node: 3, Total: 2},
	}}
	top := rep.TopSpenders(3)
	if len(top) != 3 || top[0].Node != 1 || top[1].Node != 2 || top[2].Node != 3 {
		t.Fatalf("top spenders %+v, want nodes 1,2,3", top)
	}
	if all := rep.TopSpenders(0); len(all) != 4 {
		t.Fatalf("TopSpenders(0) returned %d rows, want all 4", len(all))
	}
}
