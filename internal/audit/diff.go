package audit

import (
	"fmt"
	"math"

	"qlec/internal/sim"
)

// Divergence describes the first point at which two audit streams
// disagree. Stream is "ledger" or "decisions"; Index is the position
// in that stream; Field names the first differing field; A/B render
// the two records ("<absent>" when one stream ended early).
type Divergence struct {
	Stream string `json:"stream"`
	Index  int    `json:"index"`
	Field  string `json:"field"`
	A      string `json:"a"`
	B      string `json:"b"`
}

func (d *Divergence) String() string {
	return fmt.Sprintf("first divergence in %s[%d] (%s):\n  A: %s\n  B: %s",
		d.Stream, d.Index, d.Field, d.A, d.B)
}

// Compare finds the first divergence between two artifacts from
// identically-seeded runs: the ledger streams are compared entry by
// entry, then the decision streams. Returns nil when the runs agree.
func Compare(a, b *Artifact) *Divergence {
	if d := DiffLedgers(a.Ledger, b.Ledger); d != nil {
		return d
	}
	return DiffDecisions(a.Decisions, b.Decisions)
}

// DiffLedgers returns the first entry-level divergence between two
// ledgers, or nil if they are identical.
func DiffLedgers(a, b []sim.EnergyEntry) *Divergence {
	for i := range min(len(a), len(b)) {
		if field := entryDiff(a[i], b[i]); field != "" {
			return &Divergence{
				Stream: "ledger", Index: i, Field: field,
				A: fmt.Sprintf("%+v", a[i]), B: fmt.Sprintf("%+v", b[i]),
			}
		}
	}
	return lengthDiff("ledger", len(a), len(b), func(i int, fromA bool) string {
		if fromA {
			return fmt.Sprintf("%+v", a[i])
		}
		return fmt.Sprintf("%+v", b[i])
	})
}

// DiffDecisions is DiffLedgers over decision records.
func DiffDecisions(a, b []DecisionRecord) *Divergence {
	for i := range min(len(a), len(b)) {
		if field := decisionDiff(a[i], b[i]); field != "" {
			return &Divergence{
				Stream: "decisions", Index: i, Field: field,
				A: fmt.Sprintf("%+v", a[i]), B: fmt.Sprintf("%+v", b[i]),
			}
		}
	}
	return lengthDiff("decisions", len(a), len(b), func(i int, fromA bool) string {
		if fromA {
			return fmt.Sprintf("%+v", a[i])
		}
		return fmt.Sprintf("%+v", b[i])
	})
}

func lengthDiff(stream string, la, lb int, render func(i int, fromA bool) string) *Divergence {
	if la == lb {
		return nil
	}
	d := &Divergence{Stream: stream, Index: min(la, lb), Field: "length", A: "<absent>", B: "<absent>"}
	if la > lb {
		d.A = render(lb, true)
	} else {
		d.B = render(la, false)
	}
	return d
}

// entryDiff names the first differing field, or "" when equal. Joules
// are compared exactly: same-seed runs are bit-reproducible, so any
// difference at all is a real divergence.
func entryDiff(a, b sim.EnergyEntry) string {
	switch {
	case a.Round != b.Round:
		return "round"
	case a.Time != b.Time:
		return "t"
	case a.Node != b.Node:
		return "node"
	case a.Cause != b.Cause:
		return "cause"
	case a.Joules != b.Joules:
		return "j"
	case a.HasPacket != b.HasPacket:
		return "hasPkt"
	case a.HasPacket && a.Packet != b.Packet:
		return "pkt"
	}
	return ""
}

func decisionDiff(a, b DecisionRecord) string {
	switch {
	case a.Round != b.Round:
		return "round"
	case a.Node != b.Node:
		return "node"
	case !intsEqual(a.Candidates, b.Candidates):
		return "candidates"
	case !floatsEqual(a.QValues, b.QValues):
		return "qValues"
	case a.Greedy != b.Greedy:
		return "greedy"
	case a.Chosen != b.Chosen:
		return "chosen"
	case a.Explored != b.Explored:
		return "explored"
	case !rollsEqual(a.EpsRoll, b.EpsRoll):
		return "epsRoll"
	case a.VBefore != b.VBefore:
		return "vBefore"
	case a.VAfter != b.VAfter:
		return "vAfter"
	case a.HasReward != b.HasReward:
		return "hasReward"
	case a.HasReward && (a.Success != b.Success || a.Reward != b.Reward || a.LinkP != b.LinkP):
		return "reward"
	}
	return ""
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			return false
		}
	}
	return true
}

func rollsEqual(a, b *float64) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}
