package audit

import (
	"fmt"
	"math"

	"qlec/internal/packet"
	"qlec/internal/qlearn"
)

// DecisionRecord is one qlearn.Decision stamped with the simulation
// round, plus the realized reward joined from the next ACK outcome for
// the chosen link (HasReward reports whether that outcome arrived
// before the record aged out or another decision superseded it).
type DecisionRecord struct {
	Round      int       `json:"round"`
	Node       int       `json:"node"`
	Candidates []int     `json:"candidates"`
	QValues    []float64 `json:"qValues"`
	Greedy     int       `json:"greedy"`
	Chosen     int       `json:"chosen"`
	Explored   bool      `json:"explored,omitempty"`
	// EpsRoll is the uniform draw compared against ε; NaN (serialized
	// as null via the pointer) when exploration was disabled.
	EpsRoll   *float64 `json:"epsRoll,omitempty"`
	VBefore   float64  `json:"vBefore"`
	VAfter    float64  `json:"vAfter"`
	Success   bool     `json:"success,omitempty"`
	Reward    float64  `json:"reward,omitempty"`
	LinkP     float64  `json:"linkP,omitempty"`
	HasReward bool     `json:"hasReward,omitempty"`
}

// RecordDecision consumes one qlearn.Decision (install via
// ObserveLearner). Q-values are screened for divergence and NaN.
func (r *Recorder) RecordDecision(d qlearn.Decision) {
	rec := DecisionRecord{
		Round: r.curRound, Node: d.Node,
		Candidates: d.Candidates, QValues: d.QValues,
		Greedy: d.Greedy, Chosen: d.Chosen, Explored: d.Explored,
		VBefore: d.VBefore, VAfter: d.VAfter,
	}
	if !math.IsNaN(d.EpsRoll) {
		roll := d.EpsRoll
		rec.EpsRoll = &roll
	}
	for i, q := range d.QValues {
		if math.IsNaN(q) || math.IsInf(q, 0) || math.Abs(q) > r.opt.QAbsThreshold {
			r.anomaly(Anomaly{
				Type: AnomalyQDivergence, Round: r.curRound, Node: d.Node,
				Detail: fmt.Sprintf("Q(%d→%d) = %g beyond |Q| ≤ %g", d.Node, d.Candidates[i], q, r.opt.QAbsThreshold),
			})
			break // one anomaly per decision is enough
		}
	}
	r.decisions.push(rec)
	if r.lastDecision != nil && d.Node >= 0 && d.Node < len(r.lastDecision) {
		r.lastDecision[d.Node] = r.decisions.total - 1
	}
}

// RecordOutcome joins an ACK outcome's realized reward back onto the
// node's most recent decision when that decision chose the observed
// link and has not already been rewarded (a decision launches at most
// one first transmission; retries re-Decide).
func (r *Recorder) RecordOutcome(o qlearn.Outcome) {
	if r.lastDecision == nil || o.From < 0 || o.From >= len(r.lastDecision) {
		return
	}
	rec, ok := r.decisions.get(r.lastDecision[o.From])
	if !ok || rec.Chosen != o.To || rec.HasReward {
		return
	}
	rec.Success = o.Success
	rec.Reward = o.Reward
	rec.LinkP = o.LinkP
	rec.HasReward = true
}

// Anomaly types detected over the combined ledger/decision stream.
const (
	// AnomalyRoutingLoop: one packet transmitted ≥ LoopTxThreshold
	// times within a single round.
	AnomalyRoutingLoop = "routing-loop"
	// AnomalyCHStarvation: fewer heads than the K target for
	// StarvationRounds consecutive rounds.
	AnomalyCHStarvation = "ch-starvation"
	// AnomalyQDivergence: a probed Q-value went NaN/Inf or beyond
	// QAbsThreshold in magnitude.
	AnomalyQDivergence = "q-divergence"
	// AnomalyDeadNodeTx: a transmit draw by a node whose ledger-implied
	// residual was already at or below the death line.
	AnomalyDeadNodeTx = "dead-node-tx"
)

// Anomaly is one detector firing.
type Anomaly struct {
	Type      string    `json:"type"`
	Round     int       `json:"round"`
	Node      int       `json:"node,omitempty"`
	Packet    packet.ID `json:"pkt,omitempty"`
	HasPacket bool      `json:"hasPkt,omitempty"`
	Detail    string    `json:"detail"`
}

func (r *Recorder) anomaly(a Anomaly) {
	r.anomalyCounts[a.Type]++
	if len(r.anomalies) < maxAnomaliesKept {
		r.anomalies = append(r.anomalies, a)
	}
	if r.anomaliesMetric != nil {
		r.anomaliesMetric.With(a.Type).Inc()
	}
}

// AnomalyCount returns the total detections of one anomaly type.
func (r *Recorder) AnomalyCount(kind string) uint64 { return r.anomalyCounts[kind] }
