package audit

import (
	"encoding/json"
	"fmt"
	"io"

	"qlec/internal/obs"
	"qlec/internal/sim"
)

// ArtifactVersion is the schema version WriteArtifact stamps and
// ReadArtifact requires.
const ArtifactVersion = 1

// Artifact is the self-contained audit file: the summary report plus
// the retained ledger and decision records, stamped with the build
// that produced it. It is what `qlecsim -audit` writes, what qlecd
// serves at /v1/jobs/{id}/audit, and what cmd/qlecaudit consumes.
type Artifact struct {
	Version   int               `json:"version"`
	Build     obs.BuildInfo     `json:"build"`
	Report    Report            `json:"report"`
	Ledger    []sim.EnergyEntry `json:"ledger"`
	Decisions []DecisionRecord  `json:"decisions"`
}

// Artifact snapshots the recorder. Call after the run completes.
func (r *Recorder) Artifact() *Artifact {
	return &Artifact{
		Version:   ArtifactVersion,
		Build:     obs.Version(),
		Report:    r.Report(),
		Ledger:    r.Ledger(),
		Decisions: r.Decisions(),
	}
}

// WriteArtifact writes the artifact as indented JSON.
func WriteArtifact(w io.Writer, a *Artifact) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(a); err != nil {
		return fmt.Errorf("audit: write artifact: %w", err)
	}
	return nil
}

// ReadArtifact parses an artifact, rejecting unknown schema versions.
func ReadArtifact(r io.Reader) (*Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("audit: parse artifact: %w", err)
	}
	if a.Version != ArtifactVersion {
		return nil, fmt.Errorf("audit: artifact version %d, this build reads %d", a.Version, ArtifactVersion)
	}
	return &a, nil
}

// ExplainNode returns the decision records for one node, optionally
// restricted to one round (round < 0 means all rounds).
func (a *Artifact) ExplainNode(node, round int) []DecisionRecord {
	var out []DecisionRecord
	for _, d := range a.Decisions {
		if d.Node == node && (round < 0 || d.Round == round) {
			out = append(out, d)
		}
	}
	return out
}
