// Package audit is the flight recorder behind the QLEC reproduction's
// "why did this run do that" tooling (DESIGN.md §11). It consumes the
// engine's per-draw energy ledger (sim.Auditor) and the learner's
// decision/outcome stream (qlearn observers) into a bounded in-memory
// record, checks energy-conservation invariants every round, watches
// the stream for known pathologies (routing loops, cluster-head
// starvation, Q-value divergence, dead-node transmissions), and
// renders everything as a single JSON artifact that cmd/qlecaudit can
// report on, explain, and diff.
//
// A Recorder is single-use and single-goroutine, like the engine it
// observes: bind it, run the simulation, then snapshot with Artifact.
// Memory is bounded by the entry/decision rings; the full ledger can
// additionally be streamed to a spill writer as JSONL.
package audit

import (
	"encoding/json"
	"fmt"
	"io"

	"qlec/internal/energy"
	"qlec/internal/network"
	"qlec/internal/obs"
	"qlec/internal/packet"
	"qlec/internal/qlearn"
	"qlec/internal/sim"
)

// Bounds and thresholds applied when the corresponding Options field
// is zero.
const (
	// DefaultMaxEntries bounds the in-memory ledger ring (~64k entries
	// ≈ a 20-round, 100-node run with default traffic).
	DefaultMaxEntries = 1 << 16
	// DefaultMaxDecisions bounds the decision-record ring.
	DefaultMaxDecisions = 1 << 14
	// DefaultLoopTxThreshold: a packet transmitted this many times in
	// one round is routing in circles (the engine's own chain guard
	// gives up at 32 hops; retries can only quadruple that).
	DefaultLoopTxThreshold = 128
	// DefaultStarvationRounds: consecutive rounds with fewer elected
	// heads than the K target before CH starvation is flagged.
	DefaultStarvationRounds = 3
	// DefaultQAbsThreshold: |Q| beyond this is divergence (well-formed
	// QLEC values live in roughly [−(g+l)/(1−γ), 0], a few thousand).
	DefaultQAbsThreshold = 1e6

	// maxViolationsKept / maxAnomaliesKept cap the detail lists in the
	// report; totals keep counting past the cap.
	maxViolationsKept = 64
	maxAnomaliesKept  = 64
)

// Options configures a Recorder. The zero value is a sensible default:
// bounded rings, no spill, no metrics, default thresholds.
type Options struct {
	// MaxEntries / MaxDecisions cap the in-memory rings; older records
	// are overwritten first (the report still counts everything seen).
	MaxEntries   int
	MaxDecisions int
	// Spill, when non-nil, receives every ledger entry as one JSON
	// object per line, before ring eviction. Write errors latch (first
	// error wins) and surface via Err.
	Spill io.Writer
	// Metrics, when non-nil, receives the qlec_audit_violations_total
	// and qlec_audit_anomalies_total counters.
	Metrics *obs.Registry

	// Anomaly thresholds; zero means the package default.
	LoopTxThreshold  int
	StarvationRounds int
	QAbsThreshold    float64
}

// Violation is one failed conservation check.
type Violation struct {
	// Kind is "node-conservation" (initial − Σledger ≠ residual) or
	// "total-energy" (Σcategories ≠ Result.TotalEnergy).
	Kind  string        `json:"kind"`
	Round int           `json:"round"`
	Node  int           `json:"node,omitempty"`
	Want  energy.Joules `json:"wantJ"`
	Got   energy.Joules `json:"gotJ"`
}

func (v Violation) String() string {
	if v.Kind == "node-conservation" {
		return fmt.Sprintf("round %d node %d: ledger implies residual %.9g J, battery holds %.9g J",
			v.Round, v.Node, v.Want, v.Got)
	}
	return fmt.Sprintf("round %d: ledger categories sum to %.9g J, engine reports %.9g J",
		v.Round, v.Want, v.Got)
}

// ViolationError is the structured error surfaced when any
// conservation check failed.
type ViolationError struct {
	Count uint64
	First []Violation // up to maxViolationsKept
}

func (e *ViolationError) Error() string {
	msg := fmt.Sprintf("audit: %d energy-conservation violation(s)", e.Count)
	if len(e.First) > 0 {
		msg += ": " + e.First[0].String()
	}
	return msg
}

// Recorder implements sim.Auditor plus the qlearn observers. Not safe
// for concurrent use; all methods must be called from the simulation
// goroutine, and Artifact/Report/Err only after the run.
type Recorder struct {
	opt Options

	net        *network.Network
	deathLine  energy.Joules
	headTarget int

	baseline  []energy.Joules // per-node residual at Bind time
	spent     []energy.Joules // per-node Σledger since Bind
	byCause   [sim.NumEnergyCauses]energy.Joules
	nodeCause [][sim.NumEnergyCauses]energy.Joules // per-node, per-cause Σledger

	entries   ring[sim.EnergyEntry]
	decisions ring[DecisionRecord]
	// lastDecision maps node id → absolute decision index of the
	// node's most recent Decide, for joining the next outcome's reward
	// back onto it; −1 = none.
	lastDecision []int

	rounds   int
	curRound int

	// Per-round routing-loop state: transmissions per packet id.
	pktTx map[packet.ID]int
	// CH-starvation streak length.
	starveRun int

	violations     []Violation
	violationCount uint64
	anomalies      []Anomaly
	anomalyCounts  map[string]uint64

	spillEnc *json.Encoder
	spillErr error

	violationsMetric *obs.Counter
	anomaliesMetric  *obs.CounterVec
}

// New builds a Recorder. Call Bind before installing it on an engine.
func New(opt Options) *Recorder {
	if opt.MaxEntries <= 0 {
		opt.MaxEntries = DefaultMaxEntries
	}
	if opt.MaxDecisions <= 0 {
		opt.MaxDecisions = DefaultMaxDecisions
	}
	if opt.LoopTxThreshold <= 0 {
		opt.LoopTxThreshold = DefaultLoopTxThreshold
	}
	if opt.StarvationRounds <= 0 {
		opt.StarvationRounds = DefaultStarvationRounds
	}
	if opt.QAbsThreshold <= 0 {
		opt.QAbsThreshold = DefaultQAbsThreshold
	}
	r := &Recorder{
		opt:           opt,
		entries:       newRing[sim.EnergyEntry](opt.MaxEntries),
		decisions:     newRing[DecisionRecord](opt.MaxDecisions),
		pktTx:         make(map[packet.ID]int),
		anomalyCounts: make(map[string]uint64),
		curRound:      -1,
	}
	if opt.Spill != nil {
		r.spillEnc = json.NewEncoder(opt.Spill)
	}
	if opt.Metrics != nil {
		r.violationsMetric = opt.Metrics.Counter("qlec_audit_violations_total",
			"Energy-conservation invariant violations detected by the audit recorder.")
		r.anomaliesMetric = opt.Metrics.CounterVec("qlec_audit_anomalies_total",
			"Stream anomalies detected by the audit recorder.", "type")
	}
	return r
}

// Bind attaches the recorder to the network an engine will run over,
// snapshotting per-node residuals as the conservation baseline.
// deathLine and headTarget feed the dead-node-transmission and
// CH-starvation detectors (headTarget ≤ 0 disables starvation checks).
// Recorders are single-use: binding twice is an error.
func (r *Recorder) Bind(w *network.Network, deathLine energy.Joules, headTarget int) error {
	if r.net != nil {
		return fmt.Errorf("audit: recorder already bound; recorders are single-use")
	}
	if w == nil {
		return fmt.Errorf("audit: nil network")
	}
	r.net = w
	r.deathLine = deathLine
	r.headTarget = headTarget
	r.baseline = make([]energy.Joules, w.N())
	r.spent = make([]energy.Joules, w.N())
	r.nodeCause = make([][sim.NumEnergyCauses]energy.Joules, w.N())
	r.lastDecision = make([]int, w.N())
	for i, n := range w.Nodes {
		r.baseline[i] = n.Battery.Residual()
		r.lastDecision[i] = -1
	}
	return nil
}

// Network returns the network the recorder is bound to (nil before
// Bind).
func (r *Recorder) Network() *network.Network { return r.net }

// ObserveLearner wires the recorder into a learner's decision and
// outcome streams. Call alongside Bind, before the run.
func (r *Recorder) ObserveLearner(l *qlearn.Learner) {
	l.SetDecisionObserver(r.RecordDecision)
	l.SetOutcomeObserver(r.RecordOutcome)
}

// AuditBeginRound implements sim.Auditor.
func (r *Recorder) AuditBeginRound(round int, heads []int) {
	r.curRound = round
	r.rounds++
	clear(r.pktTx)
	if r.headTarget > 0 {
		if len(heads) < r.headTarget {
			r.starveRun++
			if r.starveRun == r.opt.StarvationRounds {
				r.anomaly(Anomaly{
					Type: AnomalyCHStarvation, Round: round,
					Detail: fmt.Sprintf("%d heads elected (target %d) for %d consecutive rounds",
						len(heads), r.headTarget, r.starveRun),
				})
			}
		} else {
			r.starveRun = 0
		}
	}
}

// AuditEnergy implements sim.Auditor: one ledger entry per draw.
func (r *Recorder) AuditEnergy(e sim.EnergyEntry) {
	if r.spillEnc != nil && r.spillErr == nil {
		if err := r.spillEnc.Encode(e); err != nil {
			r.spillErr = fmt.Errorf("audit: spill write: %w", err)
		}
	}
	if e.Cause == sim.CauseTx && r.net != nil &&
		r.baseline[e.Node]-r.spent[e.Node] <= r.deathLine {
		r.anomaly(Anomaly{
			Type: AnomalyDeadNodeTx, Round: e.Round, Node: e.Node,
			Packet: e.Packet, HasPacket: e.HasPacket,
			Detail: fmt.Sprintf("transmission by node %d already at/below the death line", e.Node),
		})
	}
	if r.net != nil {
		r.spent[e.Node] += e.Joules
		r.nodeCause[e.Node][e.Cause] += e.Joules
	}
	r.byCause[e.Cause] += e.Joules
	if e.Cause == sim.CauseTx && e.HasPacket {
		r.pktTx[e.Packet]++
		if r.pktTx[e.Packet] == r.opt.LoopTxThreshold {
			r.anomaly(Anomaly{
				Type: AnomalyRoutingLoop, Round: e.Round, Node: e.Node,
				Packet: e.Packet, HasPacket: true,
				Detail: fmt.Sprintf("packet %d transmitted %d times this round", e.Packet, r.pktTx[e.Packet]),
			})
		}
	}
	r.entries.push(e)
}

// AuditEndRound implements sim.Auditor: the per-round invariant sweep.
// Per node, the baseline minus the node's ledger sum must equal its
// battery residual (double-entry closure); across categories, the
// ledger must sum to the engine's own cumulative TotalEnergy.
func (r *Recorder) AuditEndRound(round int, _, totalEnergy energy.Joules) {
	if r.net != nil {
		for i, n := range r.net.Nodes {
			implied := r.baseline[i] - r.spent[i]
			if got := n.Battery.Residual(); !energy.ApproxEqual(implied, got) {
				r.violate(Violation{Kind: "node-conservation", Round: round, Node: i, Want: implied, Got: got})
			}
		}
	}
	var sum energy.Joules
	for _, j := range r.byCause {
		sum += j
	}
	if !energy.ApproxEqual(sum, totalEnergy) {
		r.violate(Violation{Kind: "total-energy", Round: round, Want: sum, Got: totalEnergy})
	}
}

func (r *Recorder) violate(v Violation) {
	r.violationCount++
	if len(r.violations) < maxViolationsKept {
		r.violations = append(r.violations, v)
	}
	if r.violationsMetric != nil {
		r.violationsMetric.Inc()
	}
}

// Err returns the structured conservation error, or nil when every
// invariant held. Spill write failures are reported here too.
func (r *Recorder) Err() error {
	if r.violationCount > 0 {
		return &ViolationError{Count: r.violationCount, First: r.violations}
	}
	return r.spillErr
}

// Violations returns how many conservation checks failed.
func (r *Recorder) Violations() uint64 { return r.violationCount }

// Entries returns the total number of ledger entries observed,
// including any evicted from the ring.
func (r *Recorder) Entries() int { return r.entries.total }

// Ledger returns the retained ledger entries in emission order.
func (r *Recorder) Ledger() []sim.EnergyEntry { return r.entries.items() }

// Decisions returns the retained decision records in emission order.
func (r *Recorder) Decisions() []DecisionRecord { return r.decisions.items() }

// ring is a fixed-capacity overwrite-oldest buffer.
type ring[T any] struct {
	buf   []T
	cap   int
	total int // pushes ever; buf[total%cap] is the next overwrite slot
}

func newRing[T any](capacity int) ring[T] {
	return ring[T]{buf: make([]T, 0, min(capacity, 1024)), cap: capacity}
}

func (r *ring[T]) push(v T) {
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, v)
	} else {
		r.buf[r.total%r.cap] = v
	}
	r.total++
}

// items returns the retained values oldest-first.
func (r *ring[T]) items() []T {
	if r.total <= len(r.buf) {
		return append([]T(nil), r.buf...)
	}
	out := make([]T, 0, len(r.buf))
	start := r.total % r.cap
	out = append(out, r.buf[start:]...)
	return append(out, r.buf[:start]...)
}

// get returns the value at absolute push index i, if still retained.
func (r *ring[T]) get(i int) (*T, bool) {
	if i < 0 || i >= r.total || i < r.total-len(r.buf) {
		return nil, false
	}
	return &r.buf[i%r.cap], true
}
