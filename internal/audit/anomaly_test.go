package audit_test

// Detector unit tests over synthetic streams, plus artifact and diff
// coverage (including the acceptance criterion that two
// identically-seeded runs diff clean).

import (
	"bytes"
	"context"
	"math"
	"testing"

	"qlec/internal/audit"
	"qlec/internal/energy"
	"qlec/internal/experiment"
	"qlec/internal/network"
	"qlec/internal/qlearn"
	"qlec/internal/rng"
	"qlec/internal/sim"
)

func boundRecorder(t *testing.T, opt audit.Options, n int, initialJ energy.Joules) *audit.Recorder {
	t.Helper()
	w, err := network.Deploy(network.Deployment{N: n, Side: 100, InitialEnergy: initialJ}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	rec := audit.New(opt)
	if err := rec.Bind(w, 0.5, 3); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestBindIsSingleUse(t *testing.T) {
	rec := boundRecorder(t, audit.Options{}, 4, 5)
	if err := rec.Bind(rec.Network(), 0, 1); err == nil {
		t.Fatal("second Bind accepted")
	}
}

func TestRoutingLoopDetector(t *testing.T) {
	rec := boundRecorder(t, audit.Options{LoopTxThreshold: 3}, 4, 5)
	rec.AuditBeginRound(0, []int{0, 1, 2})
	for i := 0; i < 5; i++ {
		rec.AuditEnergy(sim.EnergyEntry{Round: 0, Node: i % 2, Cause: sim.CauseTx, Joules: 0.001, Packet: 7, HasPacket: true})
	}
	if got := rec.AnomalyCount(audit.AnomalyRoutingLoop); got != 1 {
		t.Fatalf("routing-loop count %d, want 1 (fires once at threshold)", got)
	}
	// A fresh round resets per-packet counts.
	rec.AuditBeginRound(1, []int{0, 1, 2})
	rec.AuditEnergy(sim.EnergyEntry{Round: 1, Node: 0, Cause: sim.CauseTx, Joules: 0.001, Packet: 7, HasPacket: true})
	if got := rec.AnomalyCount(audit.AnomalyRoutingLoop); got != 1 {
		t.Fatalf("count %d after round reset, want still 1", got)
	}
	// Burst transmissions without a packet id never trip the detector.
	for i := 0; i < 5; i++ {
		rec.AuditEnergy(sim.EnergyEntry{Round: 1, Node: 0, Cause: sim.CauseTx, Joules: 0.001})
	}
	if got := rec.AnomalyCount(audit.AnomalyRoutingLoop); got != 1 {
		t.Fatalf("packet-less draws tripped the loop detector (count %d)", got)
	}
}

func TestCHStarvationDetector(t *testing.T) {
	rec := boundRecorder(t, audit.Options{StarvationRounds: 2}, 6, 5)
	rec.AuditBeginRound(0, []int{0})    // 1 < target 3: streak 1
	rec.AuditBeginRound(1, []int{0, 1}) // streak 2 → fire
	rec.AuditBeginRound(2, []int{0})    // streak 3: no re-fire
	if got := rec.AnomalyCount(audit.AnomalyCHStarvation); got != 1 {
		t.Fatalf("starvation count %d, want 1", got)
	}
	rec.AuditBeginRound(3, []int{0, 1, 2}) // target met: streak resets
	rec.AuditBeginRound(4, []int{0})
	rec.AuditBeginRound(5, []int{1})
	if got := rec.AnomalyCount(audit.AnomalyCHStarvation); got != 2 {
		t.Fatalf("starvation count %d after second streak, want 2", got)
	}
}

func TestQDivergenceDetector(t *testing.T) {
	rec := boundRecorder(t, audit.Options{QAbsThreshold: 100}, 4, 5)
	rec.RecordDecision(qlearn.Decision{Node: 1, Candidates: []int{-1, 2}, QValues: []float64{-3, -5}, Chosen: 2, Greedy: 2})
	if got := rec.AnomalyCount(audit.AnomalyQDivergence); got != 0 {
		t.Fatalf("healthy Q-values flagged (%d)", got)
	}
	rec.RecordDecision(qlearn.Decision{Node: 1, Candidates: []int{-1, 2}, QValues: []float64{math.NaN(), -5}, Chosen: 2, Greedy: 2})
	rec.RecordDecision(qlearn.Decision{Node: 2, Candidates: []int{-1, 3}, QValues: []float64{-3, -101}, Chosen: 3, Greedy: 3})
	if got := rec.AnomalyCount(audit.AnomalyQDivergence); got != 2 {
		t.Fatalf("divergence count %d, want 2 (one NaN, one blow-up)", got)
	}
}

func TestDeadNodeTxDetector(t *testing.T) {
	rec := boundRecorder(t, audit.Options{}, 4, 2)
	rec.AuditBeginRound(0, []int{0, 1, 2})
	// Drain node 3 to the 0.5 J death line through the ledger itself.
	rec.AuditEnergy(sim.EnergyEntry{Round: 0, Node: 3, Cause: sim.CauseTx, Joules: 1.5, Packet: 1, HasPacket: true})
	if got := rec.AnomalyCount(audit.AnomalyDeadNodeTx); got != 0 {
		t.Fatalf("draw down to the line flagged (%d)", got)
	}
	// Any further transmission is by a dead node.
	rec.AuditEnergy(sim.EnergyEntry{Round: 0, Node: 3, Cause: sim.CauseTx, Joules: 0.1, Packet: 2, HasPacket: true})
	if got := rec.AnomalyCount(audit.AnomalyDeadNodeTx); got != 1 {
		t.Fatalf("dead-node tx count %d, want 1", got)
	}
	// Receives by a dead node are legal radio physics, not a tx bug.
	rec.AuditEnergy(sim.EnergyEntry{Round: 0, Node: 3, Cause: sim.CauseRx, Joules: 0.01, Packet: 3, HasPacket: true})
	if got := rec.AnomalyCount(audit.AnomalyDeadNodeTx); got != 1 {
		t.Fatalf("rx tripped the dead-node detector (count %d)", got)
	}
}

// TestRewardJoin: an outcome for the chosen link lands on the latest
// decision; outcomes for other links or already-rewarded decisions do
// not.
func TestRewardJoin(t *testing.T) {
	rec := boundRecorder(t, audit.Options{}, 6, 5)
	rec.AuditBeginRound(0, []int{2, 3})
	rec.RecordDecision(qlearn.Decision{Node: 1, Candidates: []int{-1, 2, 3}, QValues: []float64{-9, -3, -4}, Greedy: 2, Chosen: 2})
	rec.RecordOutcome(qlearn.Outcome{From: 1, To: 3, Success: true, Reward: -1}) // wrong link: ignored
	rec.RecordOutcome(qlearn.Outcome{From: 1, To: 2, Success: false, Reward: -2, LinkP: 0.7})
	rec.RecordOutcome(qlearn.Outcome{From: 1, To: 2, Success: true, Reward: -3}) // already rewarded
	ds := rec.Decisions()
	if len(ds) != 1 {
		t.Fatalf("%d decisions, want 1", len(ds))
	}
	d := ds[0]
	if !d.HasReward || d.Success || d.Reward != -2 || d.LinkP != 0.7 || d.Round != 0 {
		t.Fatalf("joined record %+v, want first matching outcome (reward −2, failure, round 0)", d)
	}
}

// TestArtifactRoundTripAndExplain: write → read preserves the streams,
// unknown versions are rejected, and ExplainNode filters correctly.
func TestArtifactRoundTripAndExplain(t *testing.T) {
	rec := audit.New(audit.Options{})
	c := experiment.PaperConfig()
	c.N = 30
	c.Rounds = 4
	c.Seeds = []uint64{1}
	c.Audit = rec
	if _, err := c.RunOne(context.Background(), experiment.QLEC, 4, 1, false); err != nil {
		t.Fatal(err)
	}
	art := rec.Artifact()
	if art.Version != audit.ArtifactVersion || len(art.Ledger) == 0 || len(art.Decisions) == 0 {
		t.Fatalf("artifact version=%d ledger=%d decisions=%d", art.Version, len(art.Ledger), len(art.Decisions))
	}

	var buf bytes.Buffer
	if err := audit.WriteArtifact(&buf, art); err != nil {
		t.Fatal(err)
	}
	back, err := audit.ReadArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d := audit.Compare(art, back); d != nil {
		t.Fatalf("round trip diverged: %v", d)
	}
	if back.Report.TotalJ != art.Report.TotalJ || back.Report.Rounds != art.Report.Rounds {
		t.Fatalf("report changed in round trip: %+v vs %+v", back.Report, art.Report)
	}

	node := art.Decisions[0].Node
	round := art.Decisions[0].Round
	all := back.ExplainNode(node, -1)
	one := back.ExplainNode(node, round)
	if len(all) == 0 || len(one) == 0 || len(one) > len(all) {
		t.Fatalf("ExplainNode: %d for node, %d for node+round", len(all), len(one))
	}
	for _, d := range one {
		if d.Node != node || d.Round != round {
			t.Fatalf("filtered record %+v escaped node=%d round=%d", d, node, round)
		}
	}

	bad := bytes.Replace(buf.Bytes(), []byte(`"version": 1`), []byte(`"version": 99`), 1)
	if !bytes.Equal(bad, buf.Bytes()) {
		if _, err := audit.ReadArtifact(bytes.NewReader(bad)); err == nil {
			t.Fatal("version 99 artifact accepted")
		}
	} else {
		t.Fatal("version field not found in serialized artifact")
	}
}

// TestDiffIdenticalSeeds is the acceptance criterion: two runs from the
// same seed must produce byte-identical ledgers and decision streams;
// a different seed must diverge, and Compare must locate the first
// difference.
func TestDiffIdenticalSeeds(t *testing.T) {
	run := func(seed uint64) *audit.Artifact {
		rec := audit.New(audit.Options{})
		c := experiment.PaperConfig()
		c.N = 30
		c.Rounds = 5
		c.Seeds = []uint64{seed}
		c.Audit = rec
		if _, err := c.RunOne(context.Background(), experiment.QLEC, 4, seed, false); err != nil {
			t.Fatal(err)
		}
		return rec.Artifact()
	}
	a, b := run(1), run(1)
	if d := audit.Compare(a, b); d != nil {
		t.Fatalf("identically-seeded runs diverged: %v", d)
	}
	other := run(2)
	if d := audit.Compare(a, other); d == nil {
		t.Fatal("different seeds produced identical audit streams")
	}

	// Synthetic single-field mutations pinpoint the field.
	mut := *a
	mut.Ledger = append([]sim.EnergyEntry(nil), a.Ledger...)
	mut.Ledger[3].Joules *= 1.0000001
	d := audit.Compare(a, &mut)
	if d == nil || d.Stream != "ledger" || d.Index != 3 || d.Field != "j" {
		t.Fatalf("divergence %+v, want ledger[3].j", d)
	}
	trunc := *a
	trunc.Ledger = a.Ledger[:len(a.Ledger)-1]
	d = audit.Compare(a, &trunc)
	if d == nil || d.Field != "length" || d.Index != len(a.Ledger)-1 {
		t.Fatalf("truncation divergence %+v", d)
	}
}
