package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"qlec/internal/obs"
	"qlec/internal/prof"
	"qlec/internal/protocol"
)

// Options configures a Server. The zero value works: in-memory store,
// two workers, default queue bound, the production Execute run
// function.
type Options struct {
	// DataDir enables the disk-backed store; empty keeps everything in
	// memory (tests, throwaway servers).
	DataDir string
	// Workers sizes the pool; default 2.
	Workers int
	// QueueLimit bounds queued jobs; submissions beyond it get 503.
	// Default 256.
	QueueLimit int
	// MaxRetries is how many times a transiently-failed job re-enters
	// the queue before failing terminally. Default 1.
	MaxRetries int
	// SimWorkers, when positive, overrides each job's Config.Workers so
	// a W-worker pool doesn't fan every sweep out across every CPU.
	// Zero honours the submitted configuration.
	SimWorkers int
	// Run executes jobs; default Execute. Tests substitute stubs.
	Run RunFunc
	// Logger receives structured operational logs; default discards.
	Logger *slog.Logger
	// Metrics is the registry the server instruments and serves at
	// /metrics; nil creates a private one.
	Metrics *obs.Registry
	// Pprof mounts net/http/pprof under /debug/pprof/ when true.
	Pprof bool
	// TraceHistory bounds retained per-job trace recorders (FIFO
	// eviction); default 64.
	TraceHistory int
	// AuditHistory bounds retained per-job audit artifacts; default 64.
	AuditHistory int
	// ProfileHistory bounds retained profile artifacts (FIFO eviction);
	// default 32.
	ProfileHistory int
	// RuntimeSampleInterval is the cadence of the continuous runtime
	// sampler behind qlecd_runtime_* and GET /v1/runtime. Zero disables
	// sampling (and its — already tiny — overhead) entirely.
	RuntimeSampleInterval time.Duration
	// AutoProfileMinGap rate-limits anomaly-triggered profile captures:
	// at most one capture pair per trigger reason per gap. Zero keeps the
	// 5-minute default; negative disables auto-capture.
	AutoProfileMinGap time.Duration
	// Fleet configures peer-to-peer work stealing and the shared result
	// cache (DESIGN.md §14). The zero value runs standalone.
	Fleet FleetOptions
}

// Server is the qlecd core: job table, queue, worker pool, cache,
// store, and the HTTP handler over them. Create with New, serve
// Handler(), stop with Drain (graceful) or Close (hard).
type Server struct {
	opt   Options
	store *Store // nil without DataDir
	cache *resultCache
	queue *jobQueue

	mu          sync.Mutex
	jobs        map[string]*Job
	hubs        map[string]*eventHub
	cancels     map[string]context.CancelFunc
	inflight    map[string]string // request hash → queued/running job ID
	nextID      int
	batches     map[string]*Batch
	batchHubs   map[string]*eventHub
	nextBatchID int

	fleet *fleetRuntime

	start    time.Time
	simsRun  atomic.Int64
	draining atomic.Bool

	log    *slog.Logger
	reg    *obs.Registry
	om     *serverMetrics
	httpm  *obs.HTTPMetrics
	traces *traceTable
	audits *auditTable

	sampler  *prof.Sampler
	profiles *prof.Store
	autoProf *prof.AutoCapturer // nil-safe; nil when auto-capture is disabled

	hardCtx    context.Context
	hardCancel context.CancelFunc
	wg         sync.WaitGroup
}

// New builds and starts a server: opens the store, reloads persisted
// jobs (interrupted ones re-enter the queue), indexes persisted
// results, and launches the worker pool.
func New(opt Options) (*Server, error) {
	if opt.Workers <= 0 {
		opt.Workers = 2
	}
	if opt.QueueLimit <= 0 {
		opt.QueueLimit = 256
	}
	if opt.MaxRetries < 0 {
		opt.MaxRetries = 0
	} else if opt.MaxRetries == 0 {
		opt.MaxRetries = 1
	}
	if opt.Run == nil {
		opt.Run = Execute
	}
	if opt.Logger == nil {
		opt.Logger = obs.NopLogger()
	}
	if opt.Metrics == nil {
		opt.Metrics = obs.NewRegistry()
	}
	s := &Server{
		opt:         opt,
		queue:       newJobQueue(),
		jobs:        make(map[string]*Job),
		hubs:        make(map[string]*eventHub),
		cancels:     make(map[string]context.CancelFunc),
		inflight:    make(map[string]string),
		nextID:      1,
		batches:     make(map[string]*Batch),
		batchHubs:   make(map[string]*eventHub),
		nextBatchID: 1,
		start:       time.Now(),
		log:         opt.Logger,
		reg:         opt.Metrics,
		traces:      newTraceTable(opt.TraceHistory),
		audits:      newAuditTable(opt.AuditHistory),
	}
	s.hardCtx, s.hardCancel = context.WithCancel(context.Background())
	profMax := opt.ProfileHistory
	if profMax <= 0 {
		profMax = 32
	}
	s.profiles = prof.NewStore(profMax, s.reg)
	s.sampler = prof.NewSampler(s.reg, prof.SamplerOptions{Interval: opt.RuntimeSampleInterval})
	if opt.AutoProfileMinGap >= 0 {
		s.autoProf = prof.NewAutoCapturer(s.hardCtx, s.profiles, s.reg, opt.AutoProfileMinGap)
	}
	if opt.DataDir != "" {
		store, err := OpenStore(opt.DataDir)
		if err != nil {
			return nil, err
		}
		s.store = store
	}
	cache, err := newResultCache(s.store)
	if err != nil {
		return nil, err
	}
	s.cache = cache
	s.om = newServerMetrics(s.reg, s)
	s.httpm = obs.NewHTTPMetrics(s.reg)
	fr, err := newFleetRuntime(s, opt.Fleet)
	if err != nil {
		return nil, err
	}
	s.fleet = fr
	newFleetCollectors(s.reg, s)
	if err := s.reload(); err != nil {
		return nil, err
	}
	s.resumeBatches()
	for i := 0; i < opt.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.workerLoop()
		}()
	}
	s.fleet.start()
	s.sampler.Start()
	return s, nil
}

// reload restores the job table from the store. Jobs the previous
// process left queued re-enter the queue; jobs it left running were
// interrupted mid-flight (crash, hard kill), so they re-enter the queue
// too — re-execution is safe because simulations are deterministic and
// results are content-addressed.
func (s *Server) reload() error {
	if s.store == nil {
		return nil
	}
	jobs, warns := s.store.LoadJobs()
	for _, w := range warns {
		s.log.Warn("reload", "err", w)
	}
	if warns != nil && jobs == nil {
		return fmt.Errorf("service: reload failed: %w", warns[0])
	}
	for _, j := range jobs { // sorted by ID = submission order
		if n, err := strconv.Atoi(j.ID[1:]); err == nil && n >= s.nextID {
			s.nextID = n + 1
		}
		if j.State == StateRunning {
			s.log.Info("reload: requeueing job interrupted at shutdown", "job", j.ID)
			j.State = StateQueued
			j.CancelRequested = false
			if err := s.store.SaveJob(j); err != nil {
				s.log.Error("reload: persist job", "job", j.ID, "err", err)
			}
		}
		s.jobs[j.ID] = j
		if j.State == StateQueued {
			s.hubs[j.ID] = newEventHub()
			if prev, dup := s.inflight[j.Hash]; dup {
				// Two queued jobs with one identity (crash between the
				// duplicate check and persistence): keep the older one
				// queued, the younger will coalesce via the cache when
				// the older finishes.
				s.log.Warn("reload: queued jobs share a hash", "older", prev, "younger", j.ID, "hash", j.Hash)
			} else {
				s.inflight[j.Hash] = j.ID
			}
			s.queue.push(j.ID)
		}
	}
	return nil
}

// Handler returns the HTTP API, wrapped in the obs middleware
// (request IDs, request logs, HTTP metrics).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/audit", s.handleAudit)
	mux.HandleFunc("GET /v1/protocols", s.handleProtocols)
	mux.HandleFunc("GET /v1/results/{hash}", s.handleResult)
	mux.HandleFunc("POST /v1/batches", s.handleBatchSubmit)
	mux.HandleFunc("GET /v1/batches", s.handleBatchList)
	mux.HandleFunc("GET /v1/batches/{id}", s.handleBatchGet)
	mux.HandleFunc("GET /v1/batches/{id}/events", s.handleBatchEvents)
	mux.HandleFunc("GET /v1/batches/{id}/trace", s.handleBatchTrace)
	mux.HandleFunc("GET /v1/fleet", s.handleFleetStatus)
	mux.HandleFunc("POST /v1/fleet/join", s.handleFleetJoin)
	mux.HandleFunc("POST /v1/fleet/steal", s.handleFleetSteal)
	mux.HandleFunc("POST /v1/fleet/complete", s.handleFleetComplete)
	mux.HandleFunc("POST /v1/fleet/renew", s.handleFleetRenew)
	mux.HandleFunc("GET /v1/fleet/cache/{hash}", s.handleFleetCacheGet)
	mux.HandleFunc("PUT /v1/fleet/cache/{hash}", s.handleFleetCachePut)
	mux.HandleFunc("GET /v1/fleet/trace/{trace}", s.handleFleetTrace)
	mux.HandleFunc("POST /v1/profiles", s.handleProfileCapture)
	mux.HandleFunc("GET /v1/profiles", s.handleProfileList)
	mux.HandleFunc("GET /v1/profiles/{id}", s.handleProfileGet)
	mux.HandleFunc("GET /v1/runtime", s.handleRuntime)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("GET /metrics", s.reg)
	mux.HandleFunc("GET /metrics/federate", s.handleFederate)
	mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("GET /version", s.handleVersion)
	if s.opt.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return obs.Middleware(s.log, s.httpm, mux)
}

// httpError is the JSON error payload.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, httpError{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit implements POST /v1/jobs: validate, content-address,
// dedupe (done → cache hit, in-flight → coalesce), enqueue.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20))
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	req = req.Normalize()
	if err := req.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	hash, err := req.Hash()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	rid := obs.RequestIDFromContext(r.Context())
	// Join the submitter's distributed trace (traceparent extracted by
	// the middleware) or root a fresh one; either way the job's spans —
	// here and on every peer that touches its cells — share one trace ID.
	sc := obs.SpanFromContext(r.Context())
	if !sc.Valid() {
		sc = obs.NewSpanContext()
	}

	if _, ok := s.cache.peek(hash); ok {
		// Identical experiment already simulated: answer without
		// queueing. The job record exists so the client workflow
		// (submit → poll → fetch) is uniform either way.
		s.cache.hits.Add(1)
		s.mu.Lock()
		j := s.newJobLocked(req, hash)
		j.RequestID = rid
		j.TraceID = sc.TraceID
		j.State = StateDone
		j.CacheHit = true
		j.StartedAt = j.CreatedAt
		j.FinishedAt = j.CreatedAt
		s.persistLocked(j)
		view := j.clone()
		s.mu.Unlock()
		s.fleet.spans.Instant(sc, "submit "+j.ID, "submit",
			map[string]any{"job": j.ID, "cacheHit": true})
		writeJSON(w, http.StatusOK, view)
		return
	}

	s.mu.Lock()
	if id, ok := s.inflight[hash]; ok {
		// Same experiment already queued or running: coalesce onto it.
		// This still counts as a cache hit — the submission triggers no
		// new simulation.
		s.cache.hits.Add(1)
		view := s.jobs[id].clone()
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, view)
		return
	}
	s.cache.misses.Add(1)
	if s.queue.depth() >= s.opt.QueueLimit {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "queue full (%d jobs)", s.opt.QueueLimit)
		return
	}
	j := s.newJobLocked(req, hash)
	j.RequestID = rid
	j.TraceID = sc.TraceID
	j.State = StateQueued
	s.hubs[j.ID] = newEventHub()
	s.inflight[hash] = j.ID
	s.persistLocked(j)
	view := j.clone()
	s.mu.Unlock()
	s.fleet.spans.Instant(sc, "submit "+j.ID, "submit", map[string]any{"job": j.ID})
	s.queue.push(j.ID)
	s.log.Info("job queued", "job", j.ID, "kind", string(req.Kind), "hash", hash, "requestId", rid)
	writeJSON(w, http.StatusCreated, view)
}

// newJobLocked allocates the next job record; caller holds s.mu.
func (s *Server) newJobLocked(req Request, hash string) *Job {
	j := &Job{
		ID:        fmt.Sprintf("j%08d", s.nextID),
		Hash:      hash,
		Request:   req,
		CreatedAt: time.Now().UTC(),
	}
	s.nextID++
	s.jobs[j.ID] = j
	return j
}

// persistLocked writes the job record through to the store (when one is
// configured); caller holds s.mu, which also serializes the file write
// per job.
func (s *Server) persistLocked(j *Job) {
	if s.store == nil {
		return
	}
	if err := s.store.SaveJob(j); err != nil {
		s.log.Error("persist job", "job", j.ID, "err", err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.clone())
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var view *Job
	if ok {
		view = j.clone()
	}
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleCancel implements DELETE /v1/jobs/{id}. Cancelling a queued job
// is immediate; a running job stops at its next round boundary (the
// engine's cancellation unit). Cancelling a terminal job is a no-op —
// DELETE is idempotent.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		writeErr(w, http.StatusNotFound, "no job %q", id)
		return
	}
	switch j.State {
	case StateQueued:
		j.State = StateCancelled
		j.CancelRequested = true
		j.Error = "cancelled while queued"
		j.FinishedAt = time.Now().UTC()
		delete(s.inflight, j.Hash)
		s.persistLocked(j)
		if hub := s.hubs[id]; hub != nil {
			hub.publish(Event{Type: EventState, State: StateCancelled, Error: j.Error})
			hub.close()
		}
		s.log.Info("job cancelled while queued", "job", id, "requestId", j.RequestID)
	case StateRunning:
		j.CancelRequested = true
		if cancel := s.cancels[id]; cancel != nil {
			cancel()
		}
		s.persistLocked(j)
		s.log.Info("job cancel requested while running", "job", id, "requestId", j.RequestID)
	}
	view := j.clone()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// handleEvents implements GET /v1/jobs/{id}/events: an SSE stream of
// the job's progress. The full history replays first (or from
// Last-Event-ID on reconnect), then live events until the job reaches a
// terminal state — the final event is always that state transition.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	hub := s.hubs[id]
	j, known := s.jobs[id]
	var terminal Event
	if known {
		terminal = Event{Seq: 1, Type: EventState, State: j.State, Error: j.Error}
	}
	s.mu.Unlock()
	if !known {
		writeErr(w, http.StatusNotFound, "no job %q", id)
		return
	}
	s.serveSSE(w, r, hub, terminal)
}

// serveSSE streams a hub over Server-Sent Events: history replays first
// (or from Last-Event-ID on reconnect), then live events until the hub
// closes. A nil hub means the record was terminal before any stream
// existed (cache hit, reloaded history): the one fallback event the
// client needs is emitted instead. Shared by job and batch streams.
func (s *Server) serveSSE(w http.ResponseWriter, r *http.Request, hub *eventHub, terminal Event) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	s.om.sseSubs.Inc()
	defer s.om.sseSubs.Dec()
	afterSeq := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			afterSeq = n
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(e Event) bool {
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	if hub == nil {
		writeEvent(terminal)
		return
	}

	replay, live, unsub := hub.subscribe(afterSeq)
	defer unsub()
	for _, e := range replay {
		if !writeEvent(e) {
			return
		}
	}
	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		select {
		case e, ok := <-live:
			if !ok {
				return // job finished (or server shut down); stream complete
			}
			if !writeEvent(e) {
				return
			}
		case <-keepalive.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.hardCtx.Done():
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	env, ok := s.cache.peek(hash)
	if !ok {
		writeErr(w, http.StatusNotFound, "no result %q", hash)
		return
	}
	writeJSON(w, http.StatusOK, env)
}

// handleProtocols implements GET /v1/protocols: the registered protocol
// roster — canonical ids, aliases, paper references and default
// parameters — so clients enumerate and validate against the daemon's
// actual registry instead of a hardcoded list.
func (s *Server) handleProtocols(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, protocol.Infos())
}

// handleHealthz is pure liveness: 200 as long as the process serves
// HTTP, draining or not. Use /readyz for load-balancing and fleet
// routing decisions.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleReadyz is drain-aware readiness: 503 from the moment a graceful
// shutdown begins, so peers stop routing new work here while in-flight
// jobs finish. The fleet prober keys off this endpoint.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	body := map[string]any{"status": "ready"}
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		body["status"] = "draining"
	}
	writeJSON(w, status, body)
}

// handleTrace implements GET /v1/jobs/{id}/trace: the job's span
// recording as Chrome trace_event JSON (load in chrome://tracing or
// Perfetto). The view is fleet-merged: the local recorder's spans plus
// every span any peer recorded under the job's trace ID, one lane per
// daemon. Traces exist for executed jobs only (not cache hits) and age
// out FIFO after Options.TraceHistory jobs.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, known := s.jobs[id]
	var traceID string
	if known {
		traceID = j.TraceID
	}
	s.mu.Unlock()
	if !known {
		writeErr(w, http.StatusNotFound, "no job %q", id)
		return
	}
	rec := s.traces.get(id)
	var spans []obs.SpanRecord
	if rec != nil {
		spans = rec.Export(traceID, s.fleet.self)
	}
	if traceID != "" {
		spans = append(spans, s.collectFleetSpans(traceID)...)
	}
	if len(spans) == 0 {
		writeErr(w, http.StatusNotFound, "no trace for job %q (not executed yet, or aged out)", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteChromeTrace(w, spans)
}

// handleBatchTrace implements GET /v1/batches/{id}/trace: the merged
// fleet-wide Chrome trace of a batch — fan-out, pooling, steals and
// every cell execution wherever it ran.
func (s *Server) handleBatchTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	b, known := s.batches[id]
	var traceID string
	if known {
		traceID = b.TraceID
	}
	s.mu.Unlock()
	if !known {
		writeErr(w, http.StatusNotFound, "no batch %q", id)
		return
	}
	var spans []obs.SpanRecord
	if traceID != "" {
		spans = s.collectFleetSpans(traceID)
	}
	if len(spans) == 0 {
		writeErr(w, http.StatusNotFound, "no trace for batch %q (pre-trace record, or spans aged out)", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteChromeTrace(w, spans)
}

// collectFleetSpans gathers every span recorded under one trace ID:
// this daemon's fleet span store plus each ready peer's, so the caller
// can stitch a multi-daemon timeline. Peer failures degrade to a
// partial trace, never an error.
func (s *Server) collectFleetSpans(traceID string) []obs.SpanRecord {
	spans := s.fleet.spans.Spans(traceID)
	if !s.fleet.enabled {
		return spans
	}
	for _, peer := range s.fleet.members.ReadyOthers() {
		ctx, cancel := context.WithTimeout(s.hardCtx, 2*time.Second)
		ps, err := s.fleet.peers.TraceSpans(ctx, peer, traceID)
		cancel()
		if err != nil {
			s.log.Warn("trace: collect peer spans", "peer", peer, "trace", traceID, "err", err)
			continue
		}
		spans = append(spans, ps...)
	}
	return spans
}

// handleAudit implements GET /v1/jobs/{id}/audit: the flight-recorder
// artifact of an executed KindOne job (energy ledger, decision records,
// conservation report — cmd/qlecaudit consumes it). Like traces,
// artifacts exist for executed jobs only (not cache hits or sweeps) and
// age out FIFO after maxAudits jobs.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, known := s.jobs[id]
	s.mu.Unlock()
	if !known {
		writeErr(w, http.StatusNotFound, "no job %q", id)
		return
	}
	art := s.audits.get(id)
	if art == nil {
		writeErr(w, http.StatusNotFound, "no audit for job %q (not an executed single run, or aged out)", id)
		return
	}
	writeJSON(w, http.StatusOK, art)
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, obs.Version())
}

// Metrics snapshots the operational counters (served at /metrics.json;
// /metrics is the Prometheus exposition).
func (s *Server) Metrics() Metrics {
	hits, misses := s.cache.stats()
	m := Metrics{
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Workers:        s.opt.Workers,
		QueueDepth:     s.queue.depth(),
		Jobs:           make(map[JobState]int),
		CacheHits:      hits,
		CacheMisses:    misses,
		SimulationsRun: s.simsRun.Load(),
		Draining:       s.draining.Load(),
	}
	if total := hits + misses; total > 0 {
		m.CacheHitRate = float64(hits) / float64(total)
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		m.Jobs[j.State]++
	}
	if len(s.batches) > 0 {
		m.Batches = make(map[JobState]int)
		for _, b := range s.batches {
			m.Batches[b.State]++
		}
	}
	s.mu.Unlock()
	if fr := s.fleet; fr != nil && fr.enabled {
		pending, leased, expired := fr.table.Stats()
		ready, total := 0, 0
		for _, p := range fr.members.Peers() {
			total++
			if p.Ready {
				ready++
			}
		}
		m.Fleet = &FleetSnapshot{
			Self:          fr.self,
			PeersReady:    ready,
			PeersTotal:    total,
			CellsPending:  pending,
			CellsLeased:   leased,
			LeaseExpiries: expired,
			CellsExecuted: int64(fr.fm.CellsExecuted.With("local").Value() + fr.fm.CellsExecuted.With("stolen").Value()),
			CellsStolen:   int64(fr.fm.CellsStolenIn.Value()),
			ProxyHits:     int64(fr.fm.ProxyHitsFetched.Value()),
		}
	}
	return m
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// Drain gracefully shuts the pool down: new submissions get 503,
// workers finish their in-flight jobs (queued jobs stay queued — they
// persist and resume on the next start), then every event stream
// closes. If ctx expires first, the remaining jobs are hard-cancelled
// and Drain returns ctx's error after they unwind.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true) // /readyz flips to 503; steal grants stop
	s.queue.close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.hardCancel() // cancel in-flight jobs; workers exit promptly
		<-done
	}
	// Cell executors stop only after every consumer (workers, batch
	// goroutines) has drained — they are what completes the futures
	// those consumers wait on.
	s.fleet.stopWork()
	s.sampler.Stop()
	s.autoProf.Wait()
	s.closeHubs()
	return err
}

// Close hard-stops the server: in-flight jobs are cancelled (and will
// re-run on the next start — their interrupted state persists as
// queued), workers exit, streams close.
func (s *Server) Close() {
	s.draining.Store(true)
	s.queue.close()
	s.hardCancel()
	s.wg.Wait()
	s.fleet.stopWork()
	s.sampler.Stop()
	s.autoProf.Wait()
	s.closeHubs()
}

func (s *Server) closeHubs() {
	s.mu.Lock()
	hubs := make([]*eventHub, 0, len(s.hubs)+len(s.batchHubs))
	for _, h := range s.hubs {
		hubs = append(hubs, h)
	}
	for _, h := range s.batchHubs {
		hubs = append(hubs, h)
	}
	s.mu.Unlock()
	for _, h := range hubs {
		h.close()
	}
}
