package service

import "sync"

// jobQueue is the FIFO dispatch queue between the HTTP front end and
// the worker pool. It holds job IDs only — the job table is the source
// of truth, so a job cancelled while queued is simply skipped when its
// ID surfaces. close wakes every blocked worker and makes pop return
// false; IDs still queued at close time are deliberately left behind
// (they persist as queued and re-enter the queue on restart).
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ids    []string
	closed bool
}

func newJobQueue() *jobQueue {
	q := &jobQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends an ID. Pushing to a closed queue is a no-op.
func (q *jobQueue) push(id string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.ids = append(q.ids, id)
	q.cond.Signal()
}

// pop blocks until an ID is available or the queue closes; ok is false
// only on close.
func (q *jobQueue) pop() (id string, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.ids) == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return "", false
	}
	id = q.ids[0]
	q.ids = q.ids[1:]
	return id, true
}

// depth returns the number of queued IDs.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.ids)
}

// close wakes all poppers; subsequent pops return false.
func (q *jobQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
