package service_test

// End-to-end tests of the protocol-registry surface of the API:
// GET /v1/protocols enumeration, submit-time rejection of unknown
// protocol ids with a nearest-match suggestion, and alias
// canonicalization sharing one cache entry with the canonical spelling.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"qlec/internal/experiment"
	"qlec/internal/service"
	"qlec/internal/service/client"
)

func TestProtocolsEndpoint(t *testing.T) {
	_, cl := newTestServer(t, service.Options{Workers: 1})
	infos, err := cl.Protocols(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) < 9 {
		t.Fatalf("registry served %d protocols, want >= 9", len(infos))
	}
	byID := map[string]int{}
	for i, info := range infos {
		byID[info.ID] = i
	}
	for _, want := range []string{"QLEC", "FCM", "k-means", "LEACH", "T-DEEC", "Q-LEACH"} {
		if _, ok := byID[want]; !ok {
			t.Errorf("roster missing %q", want)
		}
	}
	if i, ok := byID["T-DEEC"]; ok {
		if got := infos[i].DefaultParams["thresholdFrac"]; got != 0.7 {
			t.Errorf("T-DEEC default thresholdFrac = %v, want 0.7", got)
		}
	}
	if i, ok := byID["k-means"]; ok {
		found := false
		for _, a := range infos[i].Aliases {
			if a == "kmeans" {
				found = true
			}
		}
		if !found {
			t.Errorf("k-means aliases %v missing %q", infos[i].Aliases, "kmeans")
		}
	}
}

// An unknown protocol id must be rejected at submit time with a 400
// naming the nearest valid id, before anything is queued.
func TestSubmitUnknownProtocolSuggestsNearest(t *testing.T) {
	_, cl := newTestServer(t, service.Options{Workers: 1})
	req := oneRequest(tinyCfg())
	req.Protocols = []experiment.ProtocolID{"QLEK"}
	_, err := cl.Submit(context.Background(), req)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("submit returned %v, want an API error", err)
	}
	if apiErr.Status != 400 {
		t.Fatalf("status = %d, want 400", apiErr.Status)
	}
	if !strings.Contains(apiErr.Message, `"QLEC"`) {
		t.Errorf("error %q does not suggest the nearest id QLEC", apiErr.Message)
	}
	if !strings.Contains(apiErr.Message, "/v1/protocols") {
		t.Errorf("error %q does not point at the roster endpoint", apiErr.Message)
	}
}

// An alias submission canonicalizes before hashing, so "kmeans" and
// "k-means" are one experiment: the second submission is a cache hit
// and no second simulation runs.
func TestSubmitAliasSharesCacheWithCanonicalID(t *testing.T) {
	_, cl := newTestServer(t, service.Options{Workers: 1})
	ctx := context.Background()

	req := oneRequest(tinyCfg())
	req.Protocols = []experiment.ProtocolID{"kmeans"}
	j1, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got := j1.Request.Protocols[0]; got != experiment.KMeans {
		t.Fatalf("stored job protocol = %q, want canonical %q", got, experiment.KMeans)
	}
	done, err := cl.Wait(ctx, j1.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != service.StateDone {
		t.Fatalf("job finished %s (error %q), want done", done.State, done.Error)
	}

	req.Protocols = []experiment.ProtocolID{experiment.KMeans}
	j2, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit {
		t.Fatal("canonical-id resubmission missed the cache")
	}
	if j2.Hash != j1.Hash {
		t.Fatalf("alias hash %s != canonical hash %s", j1.Hash, j2.Hash)
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.SimulationsRun != 1 {
		t.Fatalf("simulations run = %d, want 1", m.SimulationsRun)
	}
}
