package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"qlec/internal/obs"
	"qlec/internal/prof"
)

// maxBatchConfigs bounds one submission; thousands are the design
// point, unbounded is a memory hazard.
const maxBatchConfigs = 10_000

// BatchConfig is one config's progress record inside a batch.
type BatchConfig struct {
	Index int      `json:"index"`
	Kind  JobKind  `json:"kind"`
	Hash  string   `json:"hash"`
	State JobState `json:"state"`
	// CacheHit marks a config answered without scheduling any cells.
	CacheHit bool `json:"cacheHit,omitempty"`
	// Proxied marks a cache hit served by the hash's ring owner.
	Proxied bool   `json:"proxied,omitempty"`
	Error   string `json:"error,omitempty"`
	// Resources sums the config's cell bills wherever they executed;
	// nil for cache hits (a hit costs nothing new).
	Resources *prof.Usage `json:"resources,omitempty"`
}

// Batch is one POST /v1/batches submission: an ordered list of configs
// executed through the fleet's cell pool with one aggregate SSE stream.
// The record persists (requests included) and an interrupted batch
// resumes on the next start — completed configs answer from the cache,
// so resumption only re-runs what never finished.
type Batch struct {
	ID        string   `json:"id"`
	State     JobState `json:"state"`
	RequestID string   `json:"requestId,omitempty"`
	// TraceID is the distributed trace the batch's cells record under
	// wherever they execute (persisted so a resumed batch stays on its
	// original trace).
	TraceID string `json:"traceId,omitempty"`
	// Configs tracks per-config progress, in submission order.
	Configs     []BatchConfig `json:"configs"`
	ConfigsDone int           `json:"configsDone"`
	Failed      int           `json:"failed"`
	// CellsTotal/CellsDone roll up scheduling progress across every
	// config that needed execution (cache hits contribute zero cells).
	CellsTotal int       `json:"cellsTotal"`
	CellsDone  int       `json:"cellsDone"`
	CreatedAt  time.Time `json:"createdAt"`
	FinishedAt time.Time `json:"finishedAt"`
	// Resources rolls the per-config bills up: the batch's total
	// execution cost across the fleet (this process's resume epoch).
	Resources *prof.Usage `json:"resources,omitempty"`
	// Requests holds the normalized submissions; persisted for restart
	// resume, omitted from API views (fetch results by config hash).
	Requests []Request `json:"requests,omitempty"`
}

// view clones the batch for API responses: requests stay internal, and
// list views drop the per-config table too.
func (b *Batch) view(withConfigs bool) *Batch {
	c := *b
	c.Requests = nil
	if !withConfigs {
		c.Configs = nil
	} else {
		c.Configs = append([]BatchConfig(nil), b.Configs...)
	}
	return &c
}

// batchSubmission is the POST /v1/batches body.
type batchSubmission struct {
	Requests []Request `json:"requests"`
}

// handleBatchSubmit implements POST /v1/batches: validate and
// content-address every config up front (the whole batch is rejected on
// the first invalid one, with its index), then run the batch
// asynchronously through the cell pool.
func (s *Server) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var sub batchSubmission
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 256<<20))
	if err := dec.Decode(&sub); err != nil {
		writeErr(w, http.StatusBadRequest, "decode batch: %v", err)
		return
	}
	if len(sub.Requests) == 0 {
		writeErr(w, http.StatusBadRequest, "batch: empty request list")
		return
	}
	if len(sub.Requests) > maxBatchConfigs {
		writeErr(w, http.StatusBadRequest, "batch: %d configs exceeds the %d limit", len(sub.Requests), maxBatchConfigs)
		return
	}
	configs := make([]BatchConfig, len(sub.Requests))
	reqs := make([]Request, len(sub.Requests))
	for i, req := range sub.Requests {
		req = req.Normalize()
		if err := req.Validate(); err != nil {
			writeErr(w, http.StatusBadRequest, "batch config %d: %v", i, err)
			return
		}
		hash, err := req.Hash()
		if err != nil {
			writeErr(w, http.StatusBadRequest, "batch config %d: %v", i, err)
			return
		}
		reqs[i] = req
		configs[i] = BatchConfig{Index: i, Kind: req.Kind, Hash: hash, State: StateQueued}
	}
	rid := obs.RequestIDFromContext(r.Context())
	// Join the submitter's distributed trace, or root a fresh one: every
	// cell of the batch records its spans under this trace ID.
	sc := obs.SpanFromContext(r.Context())
	if !sc.Valid() {
		sc = obs.NewSpanContext()
	}

	s.mu.Lock()
	b := &Batch{
		ID:        fmt.Sprintf("b%08d", s.nextBatchID),
		State:     StateRunning,
		RequestID: rid,
		TraceID:   sc.TraceID,
		Configs:   configs,
		Requests:  reqs,
		CreatedAt: time.Now().UTC(),
	}
	s.nextBatchID++
	s.batches[b.ID] = b
	s.batchHubs[b.ID] = newEventHub()
	s.persistBatchLocked(b)
	view := b.view(true)
	s.mu.Unlock()

	s.wg.Add(1)
	go s.runBatch(b.ID)
	s.log.Info("batch queued", "batch", b.ID, "configs", len(reqs), "requestId", rid)
	writeJSON(w, http.StatusCreated, view)
}

func (s *Server) handleBatchList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]*Batch, 0, len(s.batches))
	for _, b := range s.batches {
		out = append(out, b.view(false))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleBatchGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	b, ok := s.batches[id]
	var view *Batch
	if ok {
		view = b.view(true)
	}
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no batch %q", id)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleBatchEvents implements GET /v1/batches/{id}/events: one SSE
// stream rolling the whole batch up — per-config terminal events
// (EventConfig), aggregate progress (EventBatch), and a final EventState.
func (s *Server) handleBatchEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	b, known := s.batches[id]
	hub := s.batchHubs[id]
	var terminal Event
	if known {
		terminal = Event{Seq: 1, Type: EventState, State: b.State}
	}
	s.mu.Unlock()
	if !known {
		writeErr(w, http.StatusNotFound, "no batch %q", id)
		return
	}
	s.serveSSE(w, r, hub, terminal)
}

// persistBatchLocked writes the batch record through to the store;
// caller holds s.mu.
func (s *Server) persistBatchLocked(b *Batch) {
	if s.store == nil {
		return
	}
	if err := s.store.SaveBatch(b); err != nil {
		s.log.Error("persist batch", "batch", b.ID, "err", err)
	}
}

// openBatches counts non-terminal batches (for fleet status).
func (s *Server) openBatches() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, b := range s.batches {
		if !b.State.Terminal() {
			n++
		}
	}
	return n
}

// batchEntry is one config still executing: its plan, the futures of
// its unresolved cells, and the outcome slots.
type batchEntry struct {
	idx      int
	plan     *cellPlan
	futures  map[int]*cellFuture
	outcomes []*ResultEnvelope
	usage    prof.Usage // summed cell bills as futures resolve
}

// runBatch drives one batch to completion: resolve or schedule every
// config's cells (so the whole batch is in the pool at once and peers
// can steal across config boundaries), then collect, assemble and
// publish per config in submission order. On shutdown the batch
// persists as running and resumes on the next start.
func (s *Server) runBatch(id string) {
	defer s.wg.Done()
	ctx := s.hardCtx

	s.mu.Lock()
	b := s.batches[id]
	hub := s.batchHubs[id]
	if b == nil || hub == nil || b.State.Terminal() {
		s.mu.Unlock()
		return
	}
	reqs := b.Requests
	// The batch's spans (fan-out, proxy fetches, replications, and every
	// cell wherever it runs) record under the trace minted at submission.
	var batchSC obs.SpanContext
	if b.TraceID != "" {
		batchSC = obs.SpanContext{TraceID: b.TraceID, SpanID: obs.NewSpanID()}
		ctx = obs.ContextWithSpan(ctx, batchSC)
	}
	trace := batchSC.TraceParent()
	// Recompute rollups from the config table: on resume the previous
	// process's cell counts are meaningless (its futures died with it).
	b.CellsTotal, b.CellsDone, b.ConfigsDone, b.Failed = 0, 0, 0, 0
	for _, c := range b.Configs {
		if c.State.Terminal() {
			b.ConfigsDone++
			if c.State == StateFailed {
				b.Failed++
			}
		}
	}
	s.mu.Unlock()

	lastPersist := time.Now()
	persist := func(force bool) {
		s.mu.Lock()
		if force || time.Since(lastPersist) > 500*time.Millisecond {
			s.persistBatchLocked(b)
			lastPersist = time.Now()
		}
		s.mu.Unlock()
	}
	progressEvent := func() Event {
		s.mu.Lock()
		p := &BatchProgress{
			ConfigsDone:  b.ConfigsDone,
			ConfigsTotal: len(b.Configs),
			CellsDone:    b.CellsDone,
			CellsTotal:   b.CellsTotal,
			Failed:       b.Failed,
		}
		s.mu.Unlock()
		return Event{Type: EventBatch, Batch: p}
	}
	finishConfig := func(i int, state JobState, cacheHit, proxied bool, errMsg string, usage *prof.Usage) {
		s.mu.Lock()
		c := &b.Configs[i]
		c.State = state
		c.CacheHit = cacheHit
		c.Proxied = proxied
		c.Error = errMsg
		if usage != nil && !usage.IsZero() {
			c.Resources = usage
			if b.Resources == nil {
				b.Resources = &prof.Usage{}
			}
			b.Resources.Add(*usage)
		}
		b.ConfigsDone++
		if state == StateFailed {
			b.Failed++
		}
		ev := *c
		s.mu.Unlock()
		hub.publish(Event{Type: EventConfig, Config: &ev})
		hub.publish(progressEvent())
		persist(false)
	}

	// Phase 1: resolve every config against the shared cache (local,
	// then ring owner), or decompose it and pool its cells.
	fanStart := time.Now()
	var entries []*batchEntry
	for i := range reqs {
		s.mu.Lock()
		done := b.Configs[i].State.Terminal()
		hash := b.Configs[i].Hash
		s.mu.Unlock()
		if done {
			continue // resumed batch: this config finished last time
		}
		if ctx.Err() != nil {
			break
		}
		env, hit := s.cache.peek(hash)
		proxied := false
		if !hit && s.fleet != nil {
			env, hit = s.fleet.proxyFetch(ctx, hash)
			proxied = hit
		}
		if hit && env != nil {
			finishConfig(i, StateDone, true, proxied, "", nil)
			continue
		}
		plan, err := planCells(reqs[i])
		if err != nil {
			finishConfig(i, StateFailed, false, false, err.Error(), nil)
			continue
		}
		e := &batchEntry{
			idx:      i,
			plan:     plan,
			futures:  make(map[int]*cellFuture),
			outcomes: make([]*ResultEnvelope, len(plan.cells)),
		}
		resolved := 0
		for ci, cellHash := range plan.hashes {
			if cenv, ok := s.cache.peek(cellHash); ok {
				e.outcomes[ci] = cenv
				resolved++
				continue
			}
			f, serr := s.fleet.schedule(plan.cells[ci], cellHash, trace)
			if serr != nil {
				err = serr
				break
			}
			e.futures[ci] = f
		}
		if err != nil {
			for _, f := range e.futures {
				s.fleet.release(f)
			}
			finishConfig(i, StateFailed, false, false, err.Error(), nil)
			continue
		}
		s.mu.Lock()
		b.CellsTotal += len(plan.cells)
		b.CellsDone += resolved
		s.mu.Unlock()
		entries = append(entries, e)
	}
	if batchSC.Valid() {
		scheduled := 0
		for _, e := range entries {
			scheduled += len(e.futures)
		}
		s.fleet.spans.Span(batchSC.Child(), "batch fan-out", "batch", fanStart, time.Now(),
			map[string]any{"batch": id, "configs": len(reqs), "pooled": scheduled})
	}
	hub.publish(progressEvent())

	// Phase 2: collect, assemble, publish — in submission order.
	interrupted := false
	for _, e := range entries {
		var cellErr error
		for ci := 0; ci < len(e.plan.cells) && !interrupted; ci++ {
			f := e.futures[ci]
			if f == nil {
				continue
			}
			select {
			case <-f.done:
			case <-ctx.Done():
				interrupted = true
				continue
			}
			delete(e.futures, ci)
			if f.usage != nil {
				e.usage.Add(*f.usage)
			}
			if f.err != nil && cellErr == nil {
				cellErr = fmt.Errorf("cell %s: %w", f.hash[:12], f.err)
			}
			e.outcomes[ci] = f.env
			s.mu.Lock()
			b.CellsDone++
			s.mu.Unlock()
			hub.publish(progressEvent())
		}
		if interrupted {
			for _, f := range e.futures {
				s.fleet.release(f)
			}
			continue
		}
		if cellErr != nil {
			finishConfig(e.idx, StateFailed, false, false, cellErr.Error(), &e.usage)
			continue
		}
		env, err := e.plan.assemble(e.outcomes)
		if err != nil {
			finishConfig(e.idx, StateFailed, false, false, err.Error(), &e.usage)
			continue
		}
		s.mu.Lock()
		hash := b.Configs[e.idx].Hash
		s.mu.Unlock()
		env.Hash = hash
		if perr := s.cache.put(hash, env, true); perr != nil {
			s.log.Error("batch: cache config result", "batch", id, "hash", hash, "err", perr)
		}
		if s.fleet != nil {
			s.fleet.replicateToOwner(ctx, hash, env)
		}
		finishConfig(e.idx, StateDone, false, false, "", &e.usage)
	}

	if interrupted || ctx.Err() != nil {
		// Shutdown mid-batch: stay running on disk, resume next start.
		persist(true)
		s.log.Info("batch interrupted by shutdown; persisted for resume", "batch", id)
		return
	}
	s.mu.Lock()
	b.State = StateDone
	b.FinishedAt = time.Now().UTC()
	configs, failed := b.ConfigsDone, b.Failed
	s.persistBatchLocked(b)
	s.mu.Unlock()
	hub.publish(progressEvent())
	hub.publish(Event{Type: EventState, State: StateDone})
	hub.close()
	s.log.Info("batch done", "batch", id, "configs", configs, "failed", failed)
}

// resumeBatches relaunches every non-terminal persisted batch. Called
// once from New, after the job table reload.
func (s *Server) resumeBatches() {
	if s.store == nil {
		return
	}
	batches, warns := s.store.LoadBatches()
	for _, w := range warns {
		s.log.Warn("reload batches", "err", w)
	}
	for _, b := range batches {
		if n := batchSeq(b.ID); n >= s.nextBatchID {
			s.nextBatchID = n + 1
		}
		s.batches[b.ID] = b
		if b.State.Terminal() {
			continue
		}
		s.batchHubs[b.ID] = newEventHub()
		s.log.Info("reload: resuming interrupted batch", "batch", b.ID, "configs", len(b.Configs))
		s.wg.Add(1)
		go s.runBatch(b.ID)
	}
}

// batchSeq parses the numeric tail of a batch ID; -1 when malformed.
func batchSeq(id string) int {
	if len(id) < 2 || id[0] != 'b' {
		return -1
	}
	n := 0
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}
