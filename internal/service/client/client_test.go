package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"qlec/internal/service"
)

// TestStatsCountRetries: two 500s before a success leave exactly three
// request attempts and two retries on the counters.
func TestStatsCountRetries(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, `{"error":"flaky"}`, http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(3), WithBackoff(time.Millisecond))
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health after recovery: %v", err)
	}
	st := c.Stats()
	if st.Requests != 3 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want 3 requests / 2 retries", st)
	}
	if st.StreamConnects != 0 || st.StreamReconnects != 0 {
		t.Fatalf("stream counters moved on plain requests: %+v", st)
	}
}

// TestStatsFinalFailure: exhausting the retry budget still counts every
// attempt.
func TestStatsFinalFailure(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(2), WithBackoff(time.Millisecond))
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("Health succeeded against a dead server")
	}
	if st := c.Stats(); st.Requests != 3 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want 3 requests / 2 retries", st)
	}
}

// TestStatsCountStreamReconnects: an SSE stream dropped mid-flight and
// resumed with Last-Event-ID counts one reconnect across two connects —
// and the resumed stream picks up after the last delivered event.
func TestStatsCountStreamReconnects(t *testing.T) {
	writeEvent := func(w http.ResponseWriter, e service.Event) {
		data, _ := json.Marshal(e)
		fmt.Fprintf(w, "id: %d\ndata: %s\n\n", e.Seq, data)
		w.(http.Flusher).Flush()
	}
	var conns atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		if conns.Add(1) == 1 {
			if r.Header.Get("Last-Event-ID") != "" {
				t.Error("first connection carried a Last-Event-ID")
			}
			// One progress event, then drop the connection without a
			// terminal state: the client must resume.
			writeEvent(w, service.Event{Seq: 1, Type: service.EventState, State: service.StateRunning})
			return
		}
		if got := r.Header.Get("Last-Event-ID"); got != "1" {
			t.Errorf("reconnect Last-Event-ID = %q, want \"1\"", got)
		}
		writeEvent(w, service.Event{Seq: 2, Type: service.EventState, State: service.StateDone})
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(3), WithBackoff(time.Millisecond))
	var seqs []int
	err := c.Events(context.Background(), "j1", func(e service.Event) bool {
		seqs = append(seqs, e.Seq)
		return true
	})
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("delivered seqs = %v, want [1 2]", seqs)
	}
	st := c.Stats()
	if st.StreamConnects != 2 || st.StreamReconnects != 1 {
		t.Fatalf("stats = %+v, want 2 connects / 1 reconnect", st)
	}
}
