// Package client is the typed Go client for the qlecd daemon
// (cmd/qlecd, internal/service): submit jobs and batches, poll state,
// stream SSE progress, download content-addressed results. All calls
// honour their context; transport-level failures and 5xx responses
// retry with full-jitter exponential backoff — safe even for POST
// /v1/jobs, because submissions are content-addressed and therefore
// idempotent.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"qlec/internal/metrics"
	"qlec/internal/obs"
	"qlec/internal/protocol"
	"qlec/internal/service"
)

// Client talks to one qlecd base URL.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
	log     *slog.Logger

	stats clientStats
}

// clientStats holds the client's telemetry counters (atomics: clients
// are used concurrently).
type clientStats struct {
	requests         atomic.Int64
	retries          atomic.Int64
	streamConnects   atomic.Int64
	streamReconnects atomic.Int64
}

// Stats is a point-in-time snapshot of a client's transport telemetry.
type Stats struct {
	// Requests counts HTTP attempts, first tries and retries alike
	// (SSE connections excluded — see StreamConnects).
	Requests int64 `json:"requests"`
	// Retries counts re-attempts after a retryable failure; a nonzero
	// rate against a healthy daemon means the transport or the daemon is
	// struggling.
	Retries int64 `json:"retries"`
	// StreamConnects counts SSE connections opened (including
	// reconnects).
	StreamConnects int64 `json:"streamConnects"`
	// StreamReconnects counts SSE connections that had to be resumed
	// with Last-Event-ID after a dropped stream.
	StreamReconnects int64 `json:"streamReconnects"`
}

// BaseURL reports the daemon base URL this client targets.
func (c *Client) BaseURL() string { return c.base }

// Stats snapshots the client's cumulative transport telemetry: how many
// requests it sent, how often it had to retry, and how often event
// streams dropped and resumed. Logged fields on WithLogger debug lines
// carry the same counters as they change.
func (c *Client) Stats() Stats {
	return Stats{
		Requests:         c.stats.requests.Load(),
		Retries:          c.stats.retries.Load(),
		StreamConnects:   c.stats.streamConnects.Load(),
		StreamReconnects: c.stats.streamReconnects.Load(),
	}
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (timeouts, proxies, test
// servers).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a failed call is retried (default 3).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base retry backoff (default 100ms). Each retry
// sleeps a uniformly random duration in [0, min(64·base, base·2^n)] —
// "full jitter", so a fleet of clients retrying against one recovering
// daemon spreads out instead of stampeding in lockstep.
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// WithLogger receives structured logs (retries, reconnects) tagged with
// the request IDs the daemon sees; default discards.
func WithLogger(l *slog.Logger) Option { return func(c *Client) { c.log = l } }

// New builds a client for a base URL like "http://localhost:8080".
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{Timeout: 30 * time.Second},
		retries: 3,
		backoff: 100 * time.Millisecond,
		log:     obs.NopLogger(),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx response from the daemon.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("qlecd: %d %s: %s", e.Status, http.StatusText(e.Status), e.Message)
}

// retryable reports whether the failure is worth another attempt:
// transport errors and 5xx. 4xx are the caller's bug and final.
func retryable(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status >= 500
	}
	// Transport-level failure (connection refused, reset, timeout).
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// do runs one JSON request with retry/backoff; out, when non-nil,
// receives the decoded 2xx body. One request ID covers every attempt of
// the logical call, so the daemon's logs show the retries as one
// operation.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	rid := requestID(ctx)
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			c.stats.retries.Add(1)
			c.log.Debug("retrying request",
				"method", method, "path", path, "attempt", attempt, "requestId", rid,
				"totalRetries", c.stats.retries.Load(), "err", lastErr)
			select {
			case <-time.After(c.jitterBackoff(attempt - 1)):
			case <-ctx.Done():
				return errors.Join(ctx.Err(), lastErr)
			}
		}
		c.stats.requests.Add(1)
		lastErr = c.once(ctx, method, path, rid, body, out)
		if lastErr == nil || !retryable(lastErr) {
			return lastErr
		}
	}
	return lastErr
}

// jitterBackoff is the full-jitter schedule (AWS-style): a uniform
// draw from [0, ceil] where ceil doubles per attempt from the base,
// capped at 64× base. Randomizing the whole interval — not just a
// fraction of it — is what decorrelates simultaneous retriers.
func (c *Client) jitterBackoff(attempt int) time.Duration {
	if c.backoff <= 0 {
		return 0
	}
	if attempt > 6 {
		attempt = 6 // 2^6 = 64, the cap
	}
	ceil := c.backoff << uint(attempt)
	if cap := 64 * c.backoff; ceil > cap {
		ceil = cap
	}
	return time.Duration(rand.Int64N(int64(ceil) + 1))
}

// requestID prefers an ID already on the context (a caller correlating
// several calls) over a fresh one.
func requestID(ctx context.Context) string {
	if id := obs.RequestIDFromContext(ctx); id != "" {
		return id
	}
	return obs.NewRequestID()
}

func (c *Client) once(ctx context.Context, method, path, rid string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	req.Header.Set(obs.RequestIDHeader, rid)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var apiErr struct {
			Error string `json:"error"`
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(msg, &apiErr) == nil && apiErr.Error != "" {
			return &APIError{Status: resp.StatusCode, Message: apiErr.Error}
		}
		return &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(msg))}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

// Submit posts a job. The returned Job may already be done (cache hit)
// or be an existing in-flight job (coalesced duplicate).
func (c *Client) Submit(ctx context.Context, req service.Request) (*service.Job, error) {
	var j service.Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Job fetches one job record.
func (c *Client) Job(ctx context.Context, id string) (*service.Job, error) {
	var j service.Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Jobs lists every job the daemon knows.
func (c *Client) Jobs(ctx context.Context) ([]*service.Job, error) {
	var js []*service.Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &js); err != nil {
		return nil, err
	}
	return js, nil
}

// Cancel requests cancellation; idempotent. A running job stops at its
// next round boundary — poll or stream events for the terminal state.
func (c *Client) Cancel(ctx context.Context, id string) (*service.Job, error) {
	var j service.Job
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Result downloads a content-addressed result envelope.
func (c *Client) Result(ctx context.Context, hash string) (*service.ResultEnvelope, error) {
	var env service.ResultEnvelope
	if err := c.do(ctx, http.MethodGet, "/v1/results/"+hash, nil, &env); err != nil {
		return nil, err
	}
	return &env, nil
}

// Protocols lists the daemon's registered protocol roster: canonical
// ids, aliases, paper references and default parameters.
func (c *Client) Protocols(ctx context.Context) ([]protocol.Info, error) {
	var infos []protocol.Info
	if err := c.do(ctx, http.MethodGet, "/v1/protocols", nil, &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// Metrics fetches the daemon's operational counters (the JSON snapshot;
// /metrics itself is the Prometheus exposition).
func (c *Client) Metrics(ctx context.Context) (*service.Metrics, error) {
	var m service.Metrics
	if err := c.do(ctx, http.MethodGet, "/metrics.json", nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Health probes /healthz (process liveness; stays 200 while draining).
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Ready probes /readyz (drain-aware readiness; 503 once a graceful
// shutdown begins).
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil)
}

// SubmitBatch posts a config list to /v1/batches: every config is
// validated and content-addressed up front, then executed through the
// daemon's cell pool (fleet-wide when peers are configured) with one
// aggregate event stream.
func (c *Client) SubmitBatch(ctx context.Context, reqs []service.Request) (*service.Batch, error) {
	in := struct {
		Requests []service.Request `json:"requests"`
	}{Requests: reqs}
	var b service.Batch
	if err := c.do(ctx, http.MethodPost, "/v1/batches", in, &b); err != nil {
		return nil, err
	}
	return &b, nil
}

// Batch fetches one batch record (with its per-config table).
func (c *Client) Batch(ctx context.Context, id string) (*service.Batch, error) {
	var b service.Batch
	if err := c.do(ctx, http.MethodGet, "/v1/batches/"+id, nil, &b); err != nil {
		return nil, err
	}
	return &b, nil
}

// Batches lists every batch the daemon knows (summaries, no per-config
// tables).
func (c *Client) Batches(ctx context.Context) ([]*service.Batch, error) {
	var bs []*service.Batch
	if err := c.do(ctx, http.MethodGet, "/v1/batches", nil, &bs); err != nil {
		return nil, err
	}
	return bs, nil
}

// Events streams a job's SSE progress, invoking fn per event until fn
// returns false, the stream ends (terminal state), or ctx is done.
// Dropped connections reconnect with Last-Event-ID, so no terminal
// event is lost, up to the client's retry budget per gap.
func (c *Client) Events(ctx context.Context, id string, fn func(service.Event) bool) error {
	return c.stream(ctx, "/v1/jobs/"+id+"/events", fn)
}

// BatchEvents streams a batch's aggregate SSE progress: per-config
// terminal events, rolled-up progress, and the final state event.
func (c *Client) BatchEvents(ctx context.Context, id string, fn func(service.Event) bool) error {
	return c.stream(ctx, "/v1/batches/"+id+"/events", fn)
}

// stream is the reconnecting SSE loop behind Events and BatchEvents.
// Reconnects use the same full-jitter schedule as request retries.
func (c *Client) stream(ctx context.Context, path string, fn func(service.Event) bool) error {
	rid := requestID(ctx)
	lastSeq := 0
	attempts := 0
	for {
		c.stats.streamConnects.Add(1)
		if attempts > 0 {
			c.stats.streamReconnects.Add(1)
		}
		terminal, err := c.streamOnce(ctx, path, rid, &lastSeq, fn)
		if terminal {
			return err
		}
		if err == nil {
			// Clean EOF without a terminal state: the server (or a proxy)
			// closed a live stream — resume it, don't report success.
			err = io.ErrUnexpectedEOF
		}
		if !retryable(err) || attempts >= c.retries {
			return err
		}
		c.log.Debug("reconnecting event stream",
			"path", path, "attempt", attempts+1, "lastSeq", lastSeq, "requestId", rid,
			"totalReconnects", c.stats.streamReconnects.Load()+1, "err", err)
		select {
		case <-time.After(c.jitterBackoff(attempts)):
		case <-ctx.Done():
			return ctx.Err()
		}
		attempts++
	}
}

// streamOnce consumes one SSE connection. terminal reports a clean end:
// fn stopped the stream, or the stream announced a terminal state and
// the server closed it. rid is shared across a stream's reconnects so
// the daemon's access logs show them as one logical subscription.
func (c *Client) streamOnce(ctx context.Context, path, rid string, lastSeq *int, fn func(service.Event) bool) (terminal bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set(obs.RequestIDHeader, rid)
	if *lastSeq > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(*lastSeq))
	}
	// SSE outlives any sane request timeout; use the transport without
	// the client-wide deadline.
	hc := *c.hc
	hc.Timeout = 0
	resp, err := hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return false, &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(msg))}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var data []byte
	sawTerminal := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && data != nil:
			var e service.Event
			if err := json.Unmarshal(data, &e); err != nil {
				return false, fmt.Errorf("client: decode event: %w", err)
			}
			data = nil
			if e.Seq > *lastSeq {
				*lastSeq = e.Seq
			}
			if e.Type == service.EventState && e.State.Terminal() {
				sawTerminal = true
			}
			if !fn(e) {
				return true, nil
			}
		}
	}
	if err := sc.Err(); err != nil && !sawTerminal {
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		return false, err
	}
	// A clean EOF after a terminal state is the normal end of stream; a
	// clean EOF without one is a dropped connection worth resuming.
	return sawTerminal, nil
}

// Wait polls until the job reaches a terminal state.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*service.Job, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.State.Terminal() {
			return j, nil
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return j, ctx.Err()
		}
	}
}

// RunOne drives a single-simulation (KindOne) job end to end: submit,
// stream progress through onEvent (nil ok), wait for the terminal
// state, download the result. The returned Job reports cache hits and
// attempt counts.
func (c *Client) RunOne(ctx context.Context, req service.Request, onEvent func(service.Event)) (*metrics.Result, *service.Job, error) {
	req.Kind = service.KindOne
	j, err := c.Submit(ctx, req)
	if err != nil {
		return nil, nil, err
	}
	if !j.State.Terminal() {
		err := c.Events(ctx, j.ID, func(e service.Event) bool {
			if onEvent != nil {
				onEvent(e)
			}
			return true
		})
		if err != nil && ctx.Err() != nil {
			return nil, j, err
		}
		// Stream errors beyond the retry budget degrade to polling.
		if j, err = c.Wait(ctx, j.ID, 0); err != nil {
			return nil, j, err
		}
	}
	switch j.State {
	case service.StateDone:
		env, err := c.Result(ctx, j.Hash)
		if err != nil {
			return nil, j, err
		}
		if env.One == nil {
			return nil, j, fmt.Errorf("client: result %s is not a single-run payload (kind %q)", j.Hash, env.Kind)
		}
		return env.One, j, nil
	case service.StateFailed:
		return nil, j, fmt.Errorf("client: job %s failed: %s", j.ID, j.Error)
	case service.StateCancelled:
		return nil, j, fmt.Errorf("client: job %s cancelled", j.ID)
	default:
		return nil, j, fmt.Errorf("client: job %s in unexpected state %q", j.ID, j.State)
	}
}
