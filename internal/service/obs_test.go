package service_test

// Observability end-to-end tests: Prometheus scrapes against a live
// server (including mid-job, asserting round-level sim gauges appear),
// exposition linting, Chrome-trace download, request-ID correlation,
// and the /version and /metrics.json endpoints.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qlec/internal/audit"
	"qlec/internal/metrics"
	"qlec/internal/obs"
	"qlec/internal/service"
	"qlec/internal/service/client"
	"qlec/internal/sim"
)

// newObsTestServer is newTestServer plus the raw base URL, which the
// scrape tests need for non-API endpoints.
func newObsTestServer(t *testing.T, opt service.Options) (*service.Server, *client.Client, string) {
	t.Helper()
	srv, err := service.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Close()
		ts.Close()
	})
	cl := client.New(ts.URL, client.WithRetries(0), client.WithBackoff(time.Millisecond))
	return srv, cl, ts.URL
}

func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsScrapeDuringRunningJob is the acceptance-criteria scrape:
// while a job is mid-flight, /metrics must expose both the operational
// series and live per-round simulation gauges, and the whole exposition
// must lint clean. The stub RunFunc publishes sim telemetry through the
// same context plumbing Execute uses, then parks until released, so the
// scrape observes a guaranteed-running job without sleeps.
func TestMetricsScrapeDuringRunningJob(t *testing.T) {
	running := make(chan struct{})
	release := make(chan struct{})
	run := func(ctx context.Context, req service.Request, publish func(service.Event)) (*service.ResultEnvelope, error) {
		reg := obs.MetricsFromContext(ctx)
		if reg == nil {
			t.Error("worker context carries no metrics registry")
			return &service.ResultEnvelope{Kind: req.Kind}, nil
		}
		collector := obs.NewSimCollector(reg, "QLEC", 80, 2)
		snap := sim.RoundSnapshot{
			Round: 7, Alive: 15, EnergySoFar: 12,
			Stats: metrics.RoundStats{Heads: 2, Generated: 40, Delivered: 38},
			MeanQ: 0.3, Epsilon: 0.1, HasQ: true,
		}
		collector.Observe(snap)
		obs.TraceFromContext(ctx).Instant("stub round", "sim", nil)
		close(running)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &service.ResultEnvelope{Kind: req.Kind}, nil
	}
	_, cl, base := newObsTestServer(t, service.Options{Workers: 1, Run: run})

	j, err := cl.Submit(context.Background(), oneRequest(tinyCfg()))
	if err != nil {
		t.Fatal(err)
	}
	<-running

	out := scrape(t, base)
	for _, want := range []string{
		"qlecd_workers_busy 1",
		`qlecd_jobs{state="running"} 1`,
		"qlecd_queue_depth 0",
		"qlecd_cache_misses_total 1",
		"# TYPE qlecd_job_queue_wait_seconds histogram",
		"# TYPE qlecd_http_requests_total counter",
		`qlec_sim_round{protocol="QLEC"} 7`,
		`qlec_sim_alive_nodes{protocol="QLEC"} 15`,
		`qlec_sim_residual_energy_joules{protocol="QLEC"} 68`,
		`qlec_sim_mean_q_value{protocol="QLEC"} 0.3`,
		`qlec_sim_epsilon{protocol="QLEC"} 0.1`,
		`qlec_sim_packets_delivered_total{protocol="QLEC"} 38`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("mid-job scrape missing %q", want)
		}
	}
	if err := obs.LintExposition(strings.NewReader(out)); err != nil {
		t.Errorf("mid-job exposition fails lint: %v", err)
	}

	close(release)
	if _, err := cl.Wait(context.Background(), j.ID, time.Millisecond); err != nil {
		t.Fatal(err)
	}

	out = scrape(t, base)
	for _, want := range []string{
		"qlecd_workers_busy 0",
		`qlecd_jobs_total{state="done"} 1`,
		"qlecd_simulations_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("post-job scrape missing %q", want)
		}
	}
}

// TestTraceEndpointRealJob runs a real simulation through Execute and
// downloads its Chrome trace: the job span and per-round spans must be
// present and the envelope must be the trace_event schema viewers load.
func TestTraceEndpointRealJob(t *testing.T) {
	_, cl, base := newObsTestServer(t, service.Options{Workers: 1})
	ctx := context.Background()
	j, err := cl.Submit(ctx, oneRequest(tinyCfg()))
	if err != nil {
		t.Fatal(err)
	}
	done, err := cl.Wait(ctx, j.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != service.StateDone {
		t.Fatalf("job %s, want done", done.State)
	}

	resp, err := http.Get(base + "/v1/jobs/" + j.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace = %d, want 200", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var sawJob, sawRound bool
	for _, e := range doc.TraceEvents {
		if e.Phase == "X" && strings.HasPrefix(e.Name, "job ") {
			sawJob = true
		}
		if e.Phase == "X" && strings.HasPrefix(e.Name, "round ") {
			sawRound = true
		}
	}
	if !sawJob || !sawRound {
		t.Errorf("trace has job span=%v round spans=%v, want both (%d events)",
			sawJob, sawRound, len(doc.TraceEvents))
	}

	// The same scrape must now carry the real run's sim gauges.
	out := scrape(t, base)
	if !strings.Contains(out, `qlec_sim_round{protocol="QLEC"} 1`) {
		t.Errorf("post-run scrape missing final round gauge:\n%s", out)
	}
	if err := obs.LintExposition(strings.NewReader(out)); err != nil {
		t.Errorf("exposition fails lint: %v", err)
	}

	// Unknown job and traceless (unexecuted) jobs 404.
	if resp, err := http.Get(base + "/v1/jobs/nope/trace"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("trace for unknown job = %d, want 404", resp.StatusCode)
		}
	}
}

// TestAuditEndpointRealJob runs a real simulation through Execute and
// fetches its flight-recorder artifact: the ledger and decision streams
// must be populated, conservation must hold, the SSE stream must have
// advertised the artifact before the terminal state event, and jobs
// without an executed single run must 404.
func TestAuditEndpointRealJob(t *testing.T) {
	_, cl, base := newObsTestServer(t, service.Options{Workers: 1})
	ctx := context.Background()
	j, err := cl.Submit(ctx, oneRequest(tinyCfg()))
	if err != nil {
		t.Fatal(err)
	}

	// Collect the whole stream; it ends at the terminal state event.
	var events []service.Event
	if err := cl.Events(ctx, j.ID, func(e service.Event) bool {
		events = append(events, e)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	auditIdx, stateIdx := -1, -1
	for i, e := range events {
		switch {
		case e.Type == service.EventAudit:
			auditIdx = i
		case e.Type == service.EventState && e.State.Terminal():
			stateIdx = i
		}
	}
	if auditIdx < 0 {
		t.Fatalf("stream advertised no audit event: %+v", events)
	}
	if stateIdx < auditIdx {
		t.Errorf("audit event at %d arrived after terminal state at %d", auditIdx, stateIdx)
	}
	sum := events[auditIdx].Audit
	if sum == nil || sum.Entries == 0 || sum.Decisions == 0 || sum.Violations != 0 {
		t.Fatalf("audit summary %+v, want populated streams and zero violations", sum)
	}

	resp, err := http.Get(base + "/v1/jobs/" + j.ID + "/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET audit = %d, want 200", resp.StatusCode)
	}
	art, err := audit.ReadArtifact(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	rep := art.Report
	if rep.Rounds == 0 || len(art.Ledger) == 0 || len(art.Decisions) == 0 {
		t.Fatalf("artifact rounds=%d ledger=%d decisions=%d, want all populated",
			rep.Rounds, len(art.Ledger), len(art.Decisions))
	}
	if rep.ViolationCount != 0 {
		t.Fatalf("conservation violations on a clean run: %+v", rep.Violations)
	}
	if rep.Entries != sum.Entries || rep.Decisions != sum.Decisions {
		t.Errorf("artifact entries/decisions %d/%d disagree with SSE summary %d/%d",
			rep.Entries, rep.Decisions, sum.Entries, sum.Decisions)
	}

	// The audit counters joined the operational exposition.
	out := scrape(t, base)
	if !strings.Contains(out, "qlec_audit_violations_total 0") {
		t.Errorf("scrape missing qlec_audit_violations_total:\n%s", out)
	}

	// A duplicate submission is a cache hit: job exists, never executed,
	// so it has no artifact.
	dup, err := cl.Submit(ctx, oneRequest(tinyCfg()))
	if err != nil {
		t.Fatal(err)
	}
	if !dup.CacheHit {
		t.Fatalf("duplicate submission was not a cache hit: %+v", dup)
	}
	if resp, err := http.Get(base + "/v1/jobs/" + dup.ID + "/audit"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("audit for cache-hit job = %d, want 404", resp.StatusCode)
		}
	}
	if resp, err := http.Get(base + "/v1/jobs/nope/audit"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("audit for unknown job = %d, want 404", resp.StatusCode)
		}
	}
}

// TestRequestIDCorrelation: a caller-chosen X-Request-ID must be echoed
// on the response and recorded on the job; a client-generated one must
// exist otherwise.
func TestRequestIDCorrelation(t *testing.T) {
	stub := func(ctx context.Context, req service.Request, publish func(service.Event)) (*service.ResultEnvelope, error) {
		return &service.ResultEnvelope{Kind: req.Kind}, nil
	}
	_, cl, base := newObsTestServer(t, service.Options{Workers: 1, Run: stub})

	body, err := json.Marshal(oneRequest(tinyCfg()))
	if err != nil {
		t.Fatal(err)
	}
	httpReq, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set(obs.RequestIDHeader, "corr-42")
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "corr-42" {
		t.Errorf("response %s = %q, want corr-42", obs.RequestIDHeader, got)
	}
	var j service.Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	if j.RequestID != "corr-42" {
		t.Errorf("job.RequestID = %q, want corr-42", j.RequestID)
	}

	// The typed client generates an ID when the caller supplies none; a
	// distinct config avoids coalescing onto the job above.
	cfg := tinyCfg()
	cfg.Rounds = 3
	j2, err := cl.Submit(context.Background(), oneRequest(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if j2.RequestID == "" {
		t.Error("client submission recorded no request ID")
	}
}

func TestVersionAndMetricsJSON(t *testing.T) {
	_, cl, base := newObsTestServer(t, service.Options{Workers: 1})

	resp, err := http.Get(base + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var bi obs.BuildInfo
	if err := json.NewDecoder(resp.Body).Decode(&bi); err != nil {
		t.Fatal(err)
	}
	if bi.GoVersion == "" {
		t.Error("/version goVersion empty")
	}

	// The legacy JSON snapshot lives on at /metrics.json, and the typed
	// client follows it.
	m, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Workers != 1 {
		t.Errorf("metrics.json workers = %d, want 1", m.Workers)
	}
}
