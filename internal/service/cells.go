package service

import (
	"fmt"

	"qlec/internal/experiment"
)

// cellPlan is a sweep request decomposed into independently executable,
// content-addressed cell requests plus the deterministic assembly step
// that folds their outcomes back into the sweep's result envelope. Both
// the single-daemon path and the fleet path run the same plan, which is
// what makes a distributed sweep byte-identical to a local one: the
// cells and the fold are shared code, only the executor differs.
type cellPlan struct {
	cells    []Request // normalized KindCell requests, in assembly order
	hashes   []string  // cells[i]'s content hash
	assemble func(outcomes []*ResultEnvelope) (*ResultEnvelope, error)
}

// planCells decomposes a normalized, validated request. KindOne and
// KindCell requests are their own single-cell plan (the "cell" is the
// request itself, so its envelope is the final envelope). Sweep kinds
// decompose via the experiment harness's cell builders.
func planCells(req Request) (*cellPlan, error) {
	switch req.Kind {
	case KindFig3:
		specs, err := req.Config.Fig3Cells(req.Protocols)
		if err != nil {
			return nil, err
		}
		lambdas, seeds := req.Config.Lambdas, req.Config.Seeds
		return specPlan(specs, func(cells []experiment.CellOutcome) (*ResultEnvelope, error) {
			out, err := experiment.AssembleFig3(req.Protocols, lambdas, seeds, cells)
			if err != nil {
				return nil, err
			}
			return &ResultEnvelope{Kind: KindFig3, Fig3: out}, nil
		})
	case KindKSweep:
		specs, err := req.Config.KSweepCells(req.Protocols[0], req.Ks, req.Lambda)
		if err != nil {
			return nil, err
		}
		seeds := req.Config.Seeds
		return specPlan(specs, func(cells []experiment.CellOutcome) (*ResultEnvelope, error) {
			out, err := experiment.AssembleKSweep(req.Ks, seeds, cells)
			if err != nil {
				return nil, err
			}
			return &ResultEnvelope{Kind: KindKSweep, KSweep: out}, nil
		})
	case KindNSweep:
		specs, err := req.Config.NSweepCells(req.Protocols[0], req.Ns, req.Lambda)
		if err != nil {
			return nil, err
		}
		seeds := req.Config.Seeds
		return specPlan(specs, func(cells []experiment.CellOutcome) (*ResultEnvelope, error) {
			out, err := experiment.AssembleNSweep(req.Ns, seeds, specs, cells)
			if err != nil {
				return nil, err
			}
			return &ResultEnvelope{Kind: KindNSweep, NSweep: out}, nil
		})
	case KindOne, KindCell:
		hash, err := req.Hash()
		if err != nil {
			return nil, err
		}
		return &cellPlan{
			cells:  []Request{req},
			hashes: []string{hash},
			assemble: func(outcomes []*ResultEnvelope) (*ResultEnvelope, error) {
				if len(outcomes) != 1 || outcomes[0] == nil {
					return nil, fmt.Errorf("service: single-cell assembly wants 1 outcome, got %d", len(outcomes))
				}
				return outcomes[0], nil
			},
		}, nil
	default:
		return nil, &badKindError{kind: req.Kind}
	}
}

// specPlan turns experiment cell specs into content-addressed KindCell
// requests and wraps the outcome fold with the envelope→CellOutcome
// unpacking every sweep kind shares.
func specPlan(specs []experiment.CellSpec, fold func([]experiment.CellOutcome) (*ResultEnvelope, error)) (*cellPlan, error) {
	p := &cellPlan{
		cells:  make([]Request, len(specs)),
		hashes: make([]string, len(specs)),
	}
	for i, s := range specs {
		cr := Request{
			Kind:      KindCell,
			Config:    s.Config,
			Protocols: []experiment.ProtocolID{s.Protocol},
			Lambda:    s.Lambda,
			Seed:      s.Seed,
		}.Normalize()
		hash, err := cr.Hash()
		if err != nil {
			return nil, err
		}
		p.cells[i] = cr
		p.hashes[i] = hash
	}
	p.assemble = func(outcomes []*ResultEnvelope) (*ResultEnvelope, error) {
		if len(outcomes) != len(specs) {
			return nil, fmt.Errorf("service: sweep assembly wants %d outcomes, got %d", len(specs), len(outcomes))
		}
		cells := make([]experiment.CellOutcome, len(outcomes))
		for i, env := range outcomes {
			if env == nil || env.Cell == nil {
				return nil, fmt.Errorf("service: cell %d outcome missing its payload", i)
			}
			cells[i] = *env.Cell
		}
		return fold(cells)
	}
	return p, nil
}
