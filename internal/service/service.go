// Package service is qlecd's simulation-as-a-service core: a job queue,
// a bounded worker pool over the experiment harness, a content-addressed
// result cache and an HTTP/JSON + SSE front end.
//
// The lifecycle (DESIGN.md §9):
//
//	queued → running → done | failed | cancelled
//	            ↘ queued (retry on transient failure)
//
// Identity is content-addressed: a submission is hashed over its
// canonical form (Request.Hash, built on experiment.Config.Hash), and
// identical submissions never simulate twice — an in-flight duplicate
// coalesces onto the existing job, and a finished duplicate is answered
// from the result cache. Results persist as JSON under the data
// directory and survive daemon restarts; jobs interrupted by a crash
// reload as queued and run again.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"qlec/internal/energy"
	"qlec/internal/experiment"
	"qlec/internal/metrics"
	"qlec/internal/prof"
	"qlec/internal/protocol"
	"qlec/internal/sim"
)

// JobKind selects which experiment entry point a job drives.
type JobKind string

const (
	// KindOne is a single simulation (experiment.Config.RunOne):
	// protocol, λ, seed, optional lifespan methodology. Per-round
	// progress streams over SSE via the sim.Observer hook.
	KindOne JobKind = "one"
	// KindFig3 is the full Figure 3 λ sweep for a protocol set.
	KindFig3 JobKind = "fig3"
	// KindKSweep is the cluster-count sensitivity sweep.
	KindKSweep JobKind = "ksweep"
	// KindNSweep is the constant-density scalability sweep.
	KindNSweep JobKind = "nsweep"
	// KindCell is one sweep cell — a single (protocol, λ, seed)
	// replication pair with its fully derived configuration. Cells are
	// the fleet's unit of work distribution (DESIGN.md §14): sweeps
	// decompose into cells, idle peers steal them, and the coordinator
	// reassembles the outcomes. Cells are ordinary content-addressed
	// requests, so identical cells dedupe across sweeps, batches and
	// peers through the same cache as whole jobs.
	KindCell JobKind = "cell"
)

// JobState is a node of the job lifecycle state machine.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state ends the lifecycle.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Request describes one simulation job: a full experiment configuration
// plus the sweep kind and its parameters. Unused parameters for a kind
// are ignored and excluded from the job's identity (see Normalize).
type Request struct {
	Kind      JobKind                 `json:"kind"`
	Config    experiment.Config       `json:"config"`
	Protocols []experiment.ProtocolID `json:"protocols"`
	// Lambda is the traffic level for one/ksweep/nsweep jobs.
	Lambda float64 `json:"lambda,omitempty"`
	// Seed drives one-shot jobs (KindOne).
	Seed uint64 `json:"seed,omitempty"`
	// Lifespan switches KindOne to the death-line methodology.
	Lifespan bool `json:"lifespan,omitempty"`
	// Ks lists the cluster counts of a KindKSweep job.
	Ks []int `json:"ks,omitempty"`
	// Ns lists the network sizes of a KindNSweep job.
	Ns []int `json:"ns,omitempty"`
}

// Normalize returns the request with kind-irrelevant parameters zeroed
// and kind-implied configuration filled in, so that two submissions
// that would run the identical simulation share a canonical form and
// therefore a cache entry:
//
//   - KindOne runs exactly (Lambda, Seed), so Config.Lambdas/Seeds are
//     forced to the single-point equivalents.
//   - KindKSweep/KindNSweep take traffic from Lambda, so Config.Lambdas
//     is forced to [Lambda].
//   - KindFig3 ignores Lambda/Seed/Lifespan/Ks/Ns entirely.
func (r Request) Normalize() Request {
	n := r
	switch r.Kind {
	case KindOne:
		n.Config.Lambdas = []float64{r.Lambda}
		n.Config.Seeds = []uint64{r.Seed}
		n.Ks, n.Ns = nil, nil
	case KindCell:
		// A cell's identity is (config, protocol, λ, seed) alone — the
		// enclosing sweep's λ/seed lists must not leak into the hash, or
		// the same cell submitted from two different sweeps would never
		// dedupe.
		n.Config.Lambdas = []float64{r.Lambda}
		n.Config.Seeds = []uint64{r.Seed}
		n.Lifespan = false
		n.Ks, n.Ns = nil, nil
	case KindFig3:
		n.Lambda, n.Seed, n.Lifespan = 0, 0, false
		n.Ks, n.Ns = nil, nil
	case KindKSweep:
		n.Config.Lambdas = []float64{r.Lambda}
		n.Seed, n.Lifespan = 0, false
		n.Ns = nil
	case KindNSweep:
		n.Config.Lambdas = []float64{r.Lambda}
		n.Seed, n.Lifespan = 0, false
		n.Ks = nil
	}
	// Protocol aliases ("kmeans", "deec", "qleach") canonicalize to
	// their registry id, so an alias submission shares its cache entry
	// with the canonical spelling. Exact ids pass through unchanged,
	// which keeps pre-registry request hashes stable.
	if len(r.Protocols) > 0 {
		n.Protocols = make([]experiment.ProtocolID, len(r.Protocols))
		for i, p := range r.Protocols {
			n.Protocols[i] = experiment.CanonicalProtocol(p)
		}
	}
	// Auxiliary knobs left at their zero value fall back to the paper
	// baseline — zero is invalid (or physically meaningless, for the
	// energy model) for all of them — so a minimal HTTP submission works,
	// and one that spells the defaults out shares its cache entry with
	// one that omits them.
	def := experiment.PaperConfig()
	if n.Config.Sim == (sim.Config{}) {
		n.Config.Sim = def.Sim
	}
	if n.Config.Model == (energy.Model{}) {
		n.Config.Model = def.Model
	}
	if n.Config.LifespanDeathLine == 0 {
		n.Config.LifespanDeathLine = def.LifespanDeathLine
	}
	if n.Config.LifespanMaxRounds == 0 {
		n.Config.LifespanMaxRounds = def.LifespanMaxRounds
	}
	if n.Config.FCMLevels == 0 {
		n.Config.FCMLevels = def.FCMLevels
	}
	// Hooks never cross the wire (json:"-") but guard against in-process
	// submitters leaking them into workers. The audit recorder is also a
	// hook: the worker installs its own per-job recorder (see runJob), and
	// a submitter's recorder must not leak across jobs — Bind is
	// single-use.
	n.Config.Tracer = nil
	n.Config.Observer = nil
	n.Config.Progress = nil
	n.Config.Audit = nil
	return n
}

// Validate checks the request against its kind. Call on the Normalize'd
// form — the server does.
func (r Request) Validate() error {
	switch r.Kind {
	case KindOne, KindCell, KindKSweep, KindNSweep:
		if len(r.Protocols) != 1 {
			return fmt.Errorf("service: kind %q takes exactly one protocol, got %d", r.Kind, len(r.Protocols))
		}
		if !(r.Lambda > 0) {
			return fmt.Errorf("service: kind %q requires a positive lambda, got %v", r.Kind, r.Lambda)
		}
	case KindFig3:
		if len(r.Protocols) == 0 {
			return fmt.Errorf("service: kind %q requires at least one protocol", r.Kind)
		}
	default:
		return fmt.Errorf("service: unknown job kind %q", r.Kind)
	}
	for _, p := range r.Protocols {
		if !experiment.KnownProtocol(p) {
			if near := protocol.Nearest(string(p)); near != "" {
				return fmt.Errorf("service: unknown protocol %q (did you mean %q? GET /v1/protocols lists the registry)", p, near)
			}
			return fmt.Errorf("service: unknown protocol %q", p)
		}
	}
	if r.Kind == KindKSweep && len(r.Ks) == 0 {
		return fmt.Errorf("service: ksweep requires a non-empty ks list")
	}
	if r.Kind == KindNSweep && len(r.Ns) == 0 {
		return fmt.Errorf("service: nsweep requires a non-empty ns list")
	}
	if err := r.Config.Validate(); err != nil {
		return err
	}
	return nil
}

// canonicalRequest freezes the hashed field order of a request; the
// config slot holds experiment.Config.CanonicalJSON.
type canonicalRequest struct {
	Kind      JobKind                 `json:"kind"`
	Config    json.RawMessage         `json:"config"`
	Protocols []experiment.ProtocolID `json:"protocols"`
	Lambda    float64                 `json:"lambda"`
	Seed      uint64                  `json:"seed"`
	Lifespan  bool                    `json:"lifespan"`
	Ks        []int                   `json:"ks"`
	Ns        []int                   `json:"ns"`
}

// Hash returns the content address of the request: the SHA-256 hex
// digest of its normalized canonical JSON. Identical experiments hash
// identically regardless of execution knobs (workers, hooks) or
// kind-irrelevant parameters.
func (r Request) Hash() (string, error) {
	n := r.Normalize()
	cfg, err := n.Config.CanonicalJSON()
	if err != nil {
		return "", err
	}
	cr := canonicalRequest{
		Kind:      n.Kind,
		Config:    cfg,
		Protocols: n.Protocols,
		Lambda:    n.Lambda,
		Seed:      n.Seed,
		Lifespan:  n.Lifespan,
		Ks:        n.Ks,
		Ns:        n.Ns,
	}
	if cr.Protocols == nil {
		cr.Protocols = []experiment.ProtocolID{}
	}
	if cr.Ks == nil {
		cr.Ks = []int{}
	}
	if cr.Ns == nil {
		cr.Ns = []int{}
	}
	b, err := json.Marshal(cr)
	if err != nil {
		return "", fmt.Errorf("service: canonicalize request: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Job is one submission's lifecycle record.
type Job struct {
	ID   string `json:"id"`
	Hash string `json:"hash"`
	// State is the current lifecycle node; see JobState.
	State   JobState `json:"state"`
	Request Request  `json:"request"`
	// Attempts counts execution starts (> 1 after transient retries).
	Attempts int `json:"attempts"`
	// Error holds the failure (or cancellation) reason in terminal
	// states.
	Error string `json:"error,omitempty"`
	// CacheHit marks a job satisfied from the result cache without
	// simulating.
	CacheHit bool `json:"cacheHit,omitempty"`
	// RequestID is the X-Request-ID of the submission that created this
	// record, correlating server logs with the client's. It is not part
	// of the job's identity (the content hash ignores it).
	RequestID string `json:"requestId,omitempty"`
	// TraceID is the distributed trace this job's spans record under —
	// extracted from the submission's traceparent header, or minted at
	// submission. Like RequestID it is not part of the job's identity.
	TraceID string `json:"traceId,omitempty"`
	// CancelRequested is set once DELETE has been observed; the job
	// reaches StateCancelled at the next round boundary.
	CancelRequested bool      `json:"cancelRequested,omitempty"`
	CreatedAt       time.Time `json:"createdAt"`
	StartedAt       time.Time `json:"startedAt"`
	FinishedAt      time.Time `json:"finishedAt"`
	// Resources is the job's accumulated execution bill (CPU, allocs,
	// heap growth, GC cycles) across every attempt — for distributed
	// sweeps, the sum of its cells' bills wherever they ran. Nil for
	// cache hits and jobs that never executed.
	Resources *prof.Usage `json:"resources,omitempty"`
}

// clone returns a shallow copy safe to serialize outside the server
// lock.
func (j *Job) clone() *Job {
	c := *j
	return &c
}

// ResultEnvelope carries one job result with its kind discriminator;
// exactly one payload field is set.
type ResultEnvelope struct {
	Kind JobKind `json:"kind"`
	Hash string  `json:"hash"`
	// One is the KindOne payload.
	One *metrics.Result `json:"one,omitempty"`
	// Fig3 is the KindFig3 payload.
	Fig3 []experiment.SweepResult `json:"fig3,omitempty"`
	// KSweep is the KindKSweep payload.
	KSweep []experiment.KSweepPoint `json:"ksweep,omitempty"`
	// NSweep is the KindNSweep payload.
	NSweep []experiment.NSweepPoint `json:"nsweep,omitempty"`
	// Cell is the KindCell payload: one replication pair's outcome.
	Cell *experiment.CellOutcome `json:"cell,omitempty"`
}

// EventType tags an SSE progress event.
type EventType string

const (
	// EventRound streams per-round progress of KindOne jobs.
	EventRound EventType = "round"
	// EventSweep streams cell-completion progress of sweep jobs.
	EventSweep EventType = "sweep"
	// EventState announces a lifecycle transition; the terminal one is
	// the stream's last event.
	EventState EventType = "state"
	// EventAudit announces that a flight-recorder artifact is ready at
	// GET /v1/jobs/{id}/audit, with its headline figures inline. Emitted
	// once per executed KindOne job, just before the terminal state event.
	EventAudit EventType = "audit"
	// EventConfig announces one config of a batch reaching a terminal
	// state (batch streams only).
	EventConfig EventType = "config"
	// EventBatch streams a batch's rolled-up progress (batch streams
	// only): configs and cells done out of their totals.
	EventBatch EventType = "batch"
)

// RoundProgress is the payload of an EventRound.
type RoundProgress struct {
	Round     int     `json:"round"`
	Alive     int     `json:"alive"`
	Generated int     `json:"generated"`
	Delivered int     `json:"delivered"`
	EnergyJ   float64 `json:"energyJ"`
	Done      bool    `json:"done"`
}

// SweepProgress is the payload of an EventSweep.
type SweepProgress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// AuditSummary is the payload of an EventAudit: the artifact's headline
// figures, so a streaming client knows whether fetching the full audit
// is worth it (violations or anomalies > 0) without a second request.
type AuditSummary struct {
	Entries    int    `json:"entries"`
	Decisions  int    `json:"decisions"`
	Violations uint64 `json:"violations"`
	Anomalies  uint64 `json:"anomalies"`
}

// BatchProgress is the payload of an EventBatch.
type BatchProgress struct {
	ConfigsDone  int `json:"configsDone"`
	ConfigsTotal int `json:"configsTotal"`
	CellsDone    int `json:"cellsDone"`
	CellsTotal   int `json:"cellsTotal"`
	Failed       int `json:"failed,omitempty"`
}

// Event is one entry of a job's (or batch's) progress stream.
type Event struct {
	// Seq numbers events from 1 within a job; SSE ids carry it so
	// clients resume streams with Last-Event-ID.
	Seq    int            `json:"seq"`
	Type   EventType      `json:"type"`
	Round  *RoundProgress `json:"round,omitempty"`
	Sweep  *SweepProgress `json:"sweep,omitempty"`
	Audit  *AuditSummary  `json:"audit,omitempty"`
	Config *BatchConfig   `json:"config,omitempty"`
	Batch  *BatchProgress `json:"batch,omitempty"`
	State  JobState       `json:"state,omitempty"`
	Error  string         `json:"error,omitempty"`
	// Resources rides the terminal state event of an executed job so
	// SSE consumers get the bill without a follow-up GET.
	Resources *prof.Usage `json:"resources,omitempty"`
}

// ErrTransient marks an error as retryable: a job failing with it goes
// back to the queue (bounded by Options.MaxRetries) instead of
// terminally failing. Wrap with fmt.Errorf("...: %w", ErrTransient), or
// implement interface{ Transient() bool }.
var ErrTransient = errors.New("transient failure")

// IsTransient classifies an execution error as worth retrying.
func IsTransient(err error) bool {
	if errors.Is(err, ErrTransient) {
		return true
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Metrics is the /metrics payload.
type Metrics struct {
	UptimeSeconds float64          `json:"uptimeSeconds"`
	Workers       int              `json:"workers"`
	QueueDepth    int              `json:"queueDepth"`
	Jobs          map[JobState]int `json:"jobs"`
	CacheHits     int64            `json:"cacheHits"`
	CacheMisses   int64            `json:"cacheMisses"`
	CacheHitRate  float64          `json:"cacheHitRate"`
	// SimulationsRun counts completed executions — the number that must
	// NOT grow when a duplicate submission hits the cache.
	SimulationsRun int64 `json:"simulationsRun"`
	Draining       bool  `json:"draining"`
	// Batches counts batch records by lifecycle state.
	Batches map[JobState]int `json:"batches,omitempty"`
	// Fleet summarizes the cell pool and peer roster (present when the
	// daemon runs in fleet mode).
	Fleet *FleetSnapshot `json:"fleet,omitempty"`
}

// FleetSnapshot is the fleet slice of /metrics.json.
type FleetSnapshot struct {
	Self          string `json:"self"`
	PeersReady    int    `json:"peersReady"`
	PeersTotal    int    `json:"peersTotal"`
	CellsPending  int    `json:"cellsPending"`
	CellsLeased   int    `json:"cellsLeased"`
	LeaseExpiries uint64 `json:"leaseExpiries"`
	CellsExecuted int64  `json:"cellsExecuted"`
	CellsStolen   int64  `json:"cellsStolen"`
	ProxyHits     int64  `json:"proxyHits"`
}
