package service

import (
	"sync"
	"sync/atomic"
)

// maxCachedEnvelopes bounds the in-memory layer of the result cache;
// entries beyond it stay reachable through the disk store, so eviction
// costs a file read, never a re-simulation.
const maxCachedEnvelopes = 256

// resultCache is the content-addressed result index: hash → envelope,
// an in-memory map write-through-backed by the disk store (when one is
// configured). hits/misses count submission-time lookups only — the
// numbers behind /metrics' cache hit rate — not /v1/results fetches.
type resultCache struct {
	mu    sync.Mutex
	mem   map[string]*ResultEnvelope
	known map[string]bool // hashes with a persisted result (superset of mem)
	store *Store          // nil = memory-only

	hits   atomic.Int64
	misses atomic.Int64
}

// newResultCache builds the cache over an optional store, indexing any
// results a previous process left behind.
func newResultCache(store *Store) (*resultCache, error) {
	c := &resultCache{
		mem:   make(map[string]*ResultEnvelope),
		known: make(map[string]bool),
		store: store,
	}
	if store != nil {
		hashes, err := store.ResultHashes()
		if err != nil {
			return nil, err
		}
		for _, h := range hashes {
			c.known[h] = true
		}
	}
	return c, nil
}

// peek fetches without touching the counters (the submission path
// counts hits/misses itself, once per submission; result downloads and
// internal checks don't count). A disk hit repopulates the memory
// layer.
func (c *resultCache) peek(hash string) (*ResultEnvelope, bool) {
	c.mu.Lock()
	if env, ok := c.mem[hash]; ok {
		c.mu.Unlock()
		return env, true
	}
	onDisk := c.known[hash] && c.store != nil
	c.mu.Unlock()
	if !onDisk {
		return nil, false
	}
	env, err := c.store.LoadResult(hash)
	if err != nil {
		return nil, false
	}
	c.put(hash, env, false)
	return env, true
}

// put records a result, optionally persisting it. The returned error is
// the persistence outcome; the in-memory record is installed either
// way, so a full disk degrades durability, not correctness.
func (c *resultCache) put(hash string, env *ResultEnvelope, persist bool) error {
	var err error
	if persist && c.store != nil {
		err = c.store.SaveResult(hash, env)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.mem) >= maxCachedEnvelopes {
		// Evict an arbitrary entry; the disk layer still has it (or the
		// re-simulation cost is bounded for memory-only servers).
		for k := range c.mem {
			delete(c.mem, k)
			break
		}
	}
	c.mem[hash] = env
	if err == nil && persist && c.store != nil {
		c.known[hash] = true
	}
	return err
}

// stats returns the submission-path counters.
func (c *resultCache) stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
