package service

import "sync"

// maxHubHistory bounds the per-job event replay buffer. A 3000-round
// lifespan run emits one round event per round; beyond the cap the
// oldest events age out and late subscribers see a gap (SSE progress is
// advisory — the authoritative record is the job and its result).
const maxHubHistory = 4096

// subChanBuf is each subscriber's channel depth; a subscriber that lags
// further behind loses its oldest buffered events, never the stream's
// liveness.
const subChanBuf = 128

// eventHub is one job's progress fan-out: it assigns sequence numbers,
// keeps a bounded replay history and broadcasts to any number of SSE
// subscribers without ever blocking the publishing worker.
type eventHub struct {
	mu      sync.Mutex
	history []Event
	nextSeq int
	subs    map[chan Event]struct{}
	closed  bool
}

func newEventHub() *eventHub {
	return &eventHub{nextSeq: 1, subs: make(map[chan Event]struct{})}
}

// publish stamps the event with the next sequence number, records it
// and fans it out. Slow subscribers lose their oldest pending event
// rather than stall the worker.
func (h *eventHub) publish(e Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	e.Seq = h.nextSeq
	h.nextSeq++
	h.history = append(h.history, e)
	if len(h.history) > maxHubHistory {
		h.history = h.history[len(h.history)-maxHubHistory:]
	}
	for ch := range h.subs {
		select {
		case ch <- e:
		default:
			select {
			case <-ch: // shed the oldest pending event
			default:
			}
			select {
			case ch <- e:
			default:
			}
		}
	}
}

// subscribe returns the replay of events with Seq > afterSeq plus a
// live channel. The channel closes when the hub closes (job reached a
// terminal state, or the server shut down); call cancel to unsubscribe
// earlier.
func (h *eventHub) subscribe(afterSeq int) (replay []Event, live <-chan Event, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, e := range h.history {
		if e.Seq > afterSeq {
			replay = append(replay, e)
		}
	}
	ch := make(chan Event, subChanBuf)
	if h.closed {
		close(ch)
		return replay, ch, func() {}
	}
	h.subs[ch] = struct{}{}
	cancel = func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
		}
	}
	return replay, ch, cancel
}

// close ends the stream: subscribers' channels close after any pending
// events drain, and further publishes are dropped.
func (h *eventHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}
