package service

import (
	"testing"

	"qlec/internal/experiment"
)

// TestPlanCellsFig3 checks the sweep decomposition: a fig3 request
// yields protocols × lambdas × seeds cells, each a valid, normalized,
// uniquely-hashed KindCell request.
func TestPlanCellsFig3(t *testing.T) {
	cfg := tinyConfig()
	cfg.Lambdas = []float64{2, 4}
	cfg.Seeds = []uint64{1, 2}
	req := Request{
		Kind:      KindFig3,
		Config:    cfg,
		Protocols: []experiment.ProtocolID{experiment.QLEC, experiment.LEACH},
	}.Normalize()
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	plan, err := planCells(req)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 2 * 2
	if len(plan.cells) != want || len(plan.hashes) != want {
		t.Fatalf("plan has %d cells / %d hashes, want %d", len(plan.cells), len(plan.hashes), want)
	}
	seen := make(map[string]bool, want)
	for i, c := range plan.cells {
		if c.Kind != KindCell {
			t.Fatalf("cell %d kind = %q, want %q", i, c.Kind, KindCell)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("cell %d invalid: %v", i, err)
		}
		if seen[plan.hashes[i]] {
			t.Fatalf("cell %d hash %s duplicated", i, plan.hashes[i][:12])
		}
		seen[plan.hashes[i]] = true
	}
}

// TestPlanCellsSharedAcrossSweeps: the same (protocol, λ, seed) cell
// reached from two different sweep submissions must hash identically —
// that is what lets the fleet cache dedupe work across sweeps and
// batches.
func TestPlanCellsSharedAcrossSweeps(t *testing.T) {
	wide := tinyConfig()
	wide.Lambdas = []float64{1, 2, 4}
	narrow := tinyConfig()
	narrow.Lambdas = []float64{4}
	protos := []experiment.ProtocolID{experiment.QLEC}

	widePlan, err := planCells(Request{Kind: KindFig3, Config: wide, Protocols: protos}.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	narrowPlan, err := planCells(Request{Kind: KindFig3, Config: narrow, Protocols: protos}.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	wideSet := make(map[string]bool, len(widePlan.hashes))
	for _, h := range widePlan.hashes {
		wideSet[h] = true
	}
	for i, h := range narrowPlan.hashes {
		if !wideSet[h] {
			t.Errorf("narrow sweep cell %d (hash %s) not shared with the wide sweep", i, h[:12])
		}
	}
}

// TestKindCellNormalization: a cell's identity is (config, protocol, λ,
// seed) alone; leftovers from an enclosing sweep must not leak into the
// hash.
func TestKindCellNormalization(t *testing.T) {
	clean := Request{
		Kind:      KindCell,
		Config:    tinyConfig(),
		Protocols: []experiment.ProtocolID{experiment.QLEC},
		Lambda:    4,
		Seed:      1,
	}
	h, err := clean.Hash()
	if err != nil {
		t.Fatal(err)
	}
	dirty := clean
	dirty.Config.Lambdas = []float64{1, 2, 4, 8}
	dirty.Config.Seeds = []uint64{7, 8, 9}
	dirty.Lifespan = true
	dirty.Ks = []int{2, 3}
	dirty.Ns = []int{16, 32}
	if hd, _ := dirty.Hash(); hd != h {
		t.Error("cell hash depends on enclosing-sweep leftovers")
	}
}

// TestPlanCellsSingle: KindOne and KindCell requests are their own
// one-cell plan whose assembly is the identity.
func TestPlanCellsSingle(t *testing.T) {
	req := Request{
		Kind:      KindOne,
		Config:    tinyConfig(),
		Protocols: []experiment.ProtocolID{experiment.QLEC},
		Lambda:    4,
		Seed:      1,
	}.Normalize()
	plan, err := planCells(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.cells) != 1 {
		t.Fatalf("single plan has %d cells, want 1", len(plan.cells))
	}
	hash, err := req.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if plan.hashes[0] != hash {
		t.Fatalf("single-cell hash %s != request hash %s", plan.hashes[0][:12], hash[:12])
	}
	env := &ResultEnvelope{Kind: KindOne}
	out, err := plan.assemble([]*ResultEnvelope{env})
	if err != nil {
		t.Fatal(err)
	}
	if out != env {
		t.Fatal("single-cell assembly is not the identity")
	}
}
