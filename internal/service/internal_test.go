package service

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"qlec/internal/experiment"
)

func tinyConfig() experiment.Config {
	cfg := experiment.PaperConfig()
	cfg.N = 16
	cfg.Side = 80
	cfg.K = 2
	cfg.Rounds = 2
	cfg.Seeds = []uint64{1}
	cfg.Lambdas = []float64{4}
	cfg.LifespanMaxRounds = 50
	cfg.Workers = 1
	return cfg
}

func TestRequestHashNormalization(t *testing.T) {
	base := Request{
		Kind:      KindOne,
		Config:    tinyConfig(),
		Protocols: []experiment.ProtocolID{experiment.QLEC},
		Lambda:    4,
		Seed:      1,
	}
	h, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}

	// KindOne ignores the config's own sweep lists — the (Lambda, Seed)
	// parameters define the run — so they must not split the cache.
	alt := base
	alt.Config.Lambdas = []float64{8, 4, 2, 1}
	alt.Config.Seeds = []uint64{9, 8, 7}
	if ha, _ := alt.Hash(); ha != h {
		t.Error("kind-one hash depends on ignored Config.Lambdas/Seeds")
	}

	// Execution knobs don't change identity.
	alt = base
	alt.Config.Workers = 13
	if ha, _ := alt.Hash(); ha != h {
		t.Error("hash depends on Config.Workers")
	}

	// Parameters that change the simulation do change identity.
	for name, mutate := range map[string]func(*Request){
		"Kind":     func(r *Request) { r.Kind = KindFig3 },
		"Protocol": func(r *Request) { r.Protocols = []experiment.ProtocolID{experiment.FCM} },
		"Lambda":   func(r *Request) { r.Lambda = 2 },
		"Seed":     func(r *Request) { r.Seed = 2 },
		"Lifespan": func(r *Request) { r.Lifespan = true },
		"Config.N": func(r *Request) { r.Config.N = 17 },
	} {
		mod := base
		mutate(&mod)
		if hm, _ := mod.Hash(); hm == h {
			t.Errorf("mutating %s does not change the hash", name)
		}
	}

	// Sweep parameter lists are order-sensitive (they shape the output).
	ka := base
	ka.Kind = KindKSweep
	ka.Ks = []int{2, 4}
	kb := ka
	kb.Ks = []int{4, 2}
	haks, _ := ka.Hash()
	hbks, _ := kb.Hash()
	if haks == hbks {
		t.Error("ksweep hash ignores Ks order")
	}
}

// TestNormalizeDefaultsMinimalSubmission pins the HTTP ergonomics the
// README documents: a submission carrying only the deployment basics
// validates (auxiliary knobs default to the paper baseline) and shares
// its cache entry with one that spells those defaults out.
func TestNormalizeDefaultsMinimalSubmission(t *testing.T) {
	minimal := Request{
		Kind:      KindOne,
		Protocols: []experiment.ProtocolID{experiment.QLEC},
		Lambda:    4,
		Seed:      1,
	}
	minimal.Config.N = 100
	minimal.Config.Side = 200
	minimal.Config.K = 5
	minimal.Config.Rounds = 20
	minimal.Config.InitialEnergy = 5
	minimal.Config.Lambdas = []float64{4}
	minimal.Config.Seeds = []uint64{1}

	if err := minimal.Normalize().Validate(); err != nil {
		t.Fatalf("minimal submission rejected: %v", err)
	}

	spelled := minimal
	spelled.Config = experiment.PaperConfig()
	hm, err := minimal.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hs, err := spelled.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hm != hs {
		t.Fatal("minimal and spelled-out-defaults submissions hash differently")
	}
}

func TestRequestValidate(t *testing.T) {
	ok := Request{
		Kind:      KindOne,
		Config:    tinyConfig(),
		Protocols: []experiment.ProtocolID{experiment.QLEC},
		Lambda:    4,
		Seed:      1,
	}.Normalize()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	bad := []Request{
		{Kind: "nope", Config: tinyConfig(), Protocols: []experiment.ProtocolID{experiment.QLEC}, Lambda: 4},
		{Kind: KindOne, Config: tinyConfig(), Protocols: nil, Lambda: 4},
		{Kind: KindOne, Config: tinyConfig(), Protocols: []experiment.ProtocolID{"bogus"}, Lambda: 4},
		{Kind: KindOne, Config: tinyConfig(), Protocols: []experiment.ProtocolID{experiment.QLEC}, Lambda: 0},
		{Kind: KindKSweep, Config: tinyConfig(), Protocols: []experiment.ProtocolID{experiment.QLEC}, Lambda: 4},
		{Kind: KindNSweep, Config: tinyConfig(), Protocols: []experiment.ProtocolID{experiment.QLEC}, Lambda: 4},
		{Kind: KindFig3, Config: func() experiment.Config { c := tinyConfig(); c.Rounds = 0; return c }(), Protocols: []experiment.ProtocolID{experiment.QLEC}},
	}
	for i, r := range bad {
		if err := r.Normalize().Validate(); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
}

func TestIsTransient(t *testing.T) {
	if !IsTransient(fmt.Errorf("wrapped: %w", ErrTransient)) {
		t.Error("wrapped ErrTransient not transient")
	}
	if IsTransient(errors.New("plain")) {
		t.Error("plain error transient")
	}
	if IsTransient(nil) {
		t.Error("nil transient")
	}
}

func TestJobQueueFIFOAndClose(t *testing.T) {
	q := newJobQueue()
	q.push("a")
	q.push("b")
	if q.depth() != 2 {
		t.Fatalf("depth = %d", q.depth())
	}
	if id, ok := q.pop(); !ok || id != "a" {
		t.Fatalf("pop = %q, %v", id, ok)
	}
	if id, ok := q.pop(); !ok || id != "b" {
		t.Fatalf("pop = %q, %v", id, ok)
	}
	// pop blocks until push or close.
	got := make(chan string, 1)
	go func() {
		id, ok := q.pop()
		if ok {
			got <- id
		} else {
			got <- "<closed>"
		}
	}()
	q.push("c")
	if id := <-got; id != "c" {
		t.Fatalf("blocked pop = %q", id)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := q.pop(); ok {
				t.Error("pop succeeded after close")
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	q.close()
	wg.Wait()
	q.push("dropped")
	if q.depth() != 0 {
		t.Fatal("push after close retained the id")
	}
}

func TestEventHubReplayAndClose(t *testing.T) {
	h := newEventHub()
	h.publish(Event{Type: EventRound})
	h.publish(Event{Type: EventRound})

	replay, live, cancel := h.subscribe(0)
	defer cancel()
	if len(replay) != 2 || replay[0].Seq != 1 || replay[1].Seq != 2 {
		t.Fatalf("replay = %+v", replay)
	}
	h.publish(Event{Type: EventState, State: StateDone})
	e := <-live
	if e.Seq != 3 || e.State != StateDone {
		t.Fatalf("live event = %+v", e)
	}
	h.close()
	if _, ok := <-live; ok {
		t.Fatal("live channel not closed")
	}

	// Subscribing after close replays history and returns a closed
	// channel.
	replay, live, cancel = h.subscribe(1)
	defer cancel()
	if len(replay) != 2 {
		t.Fatalf("post-close replay from seq>1 = %d events", len(replay))
	}
	if _, ok := <-live; ok {
		t.Fatal("post-close channel not closed")
	}
	h.publish(Event{Type: EventRound}) // dropped, no panic
}

func TestEventHubLaggingSubscriberDoesNotBlock(t *testing.T) {
	h := newEventHub()
	_, live, cancel := h.subscribe(0)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < subChanBuf*4; i++ {
			h.publish(Event{Type: EventRound, Round: &RoundProgress{Round: i}})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a lagging subscriber")
	}
	// The subscriber still sees the most recent events, just with a gap.
	n := 0
	for range live {
		n++
		if n == subChanBuf {
			break
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := &Job{ID: "j00000001", Hash: "00", State: StateQueued, CreatedAt: time.Now().UTC()}
	if err := st.SaveJob(j); err != nil {
		t.Fatal(err)
	}
	jobs, warns := st.LoadJobs()
	if len(warns) != 0 {
		t.Fatalf("warnings: %v", warns)
	}
	if len(jobs) != 1 || jobs[0].ID != j.ID || jobs[0].State != StateQueued {
		t.Fatalf("loaded %+v", jobs)
	}

	hash := "4f2d8a7e6c5b4a3928170605f4e3d2c1b0a998877665544332211aabbccddeeff"[:64]
	env := &ResultEnvelope{Kind: KindOne, Hash: hash}
	if err := st.SaveResult(hash, env); err != nil {
		t.Fatal(err)
	}
	back, err := st.LoadResult(hash)
	if err != nil || back.Kind != KindOne {
		t.Fatalf("load result: %+v, %v", back, err)
	}
	hashes, err := st.ResultHashes()
	if err != nil || len(hashes) != 1 || hashes[0] != hash {
		t.Fatalf("hashes = %v, %v", hashes, err)
	}
	if _, err := st.LoadResult("0000000000000000000000000000000000000000000000000000000000000000"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing result error = %v", err)
	}
}

func TestStoreRejectsUnsafeNames(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveResult("../../etc/passwd", &ResultEnvelope{}); err == nil {
		t.Fatal("path traversal accepted as result hash")
	}
	if _, err := st.LoadResult("../escape"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("traversal load error = %v", err)
	}
	if err := st.SaveJob(&Job{ID: "../evil"}); err == nil {
		t.Fatal("path traversal accepted as job id")
	}
}
