package service_test

// End-to-end tests of the qlecd core: a real Server behind an
// httptest.Server, driven through the typed client the way cmd/qlecsim
// -remote drives a real daemon. The cache/dedupe tests run the real
// simulation engine on a deliberately tiny network; the
// timing-sensitive lifecycle tests (retry, drain, queue pressure)
// substitute stub RunFuncs so they synchronize on channels instead of
// sleeps.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qlec/internal/experiment"
	"qlec/internal/service"
	"qlec/internal/service/client"
)

// tinyCfg is a fast-but-real experiment configuration: a full
// simulation takes a few milliseconds.
func tinyCfg() experiment.Config {
	cfg := experiment.PaperConfig()
	cfg.N = 16
	cfg.Side = 80
	cfg.K = 2
	cfg.Rounds = 2
	cfg.Seeds = []uint64{1}
	cfg.Lambdas = []float64{4}
	cfg.LifespanMaxRounds = 50
	cfg.Workers = 1
	return cfg
}

func oneRequest(cfg experiment.Config) service.Request {
	return service.Request{
		Kind:      service.KindOne,
		Config:    cfg,
		Protocols: []experiment.ProtocolID{experiment.QLEC},
		Lambda:    4,
		Seed:      1,
	}
}

// newTestServer starts a Server with the given options behind an
// httptest listener and returns a no-retry client against it.
func newTestServer(t *testing.T, opt service.Options) (*service.Server, *client.Client) {
	t.Helper()
	srv, err := service.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Close() // unblocks SSE handlers before the listener waits on them
		ts.Close()
	})
	cl := client.New(ts.URL, client.WithRetries(0), client.WithBackoff(time.Millisecond))
	return srv, cl
}

func collectEvents(t *testing.T, cl *client.Client, id string) []service.Event {
	t.Helper()
	var events []service.Event
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cl.Events(ctx, id, func(e service.Event) bool {
		events = append(events, e)
		return true
	}); err != nil {
		t.Fatalf("events %s: %v", id, err)
	}
	return events
}

// TestEndToEndCacheFlow is the headline contract: submit → stream →
// fetch, then an identical resubmission is answered from the
// content-addressed cache — the simulation ran exactly once.
func TestEndToEndCacheFlow(t *testing.T) {
	srv, cl := newTestServer(t, service.Options{Workers: 1})
	ctx := context.Background()
	req := oneRequest(tinyCfg())

	j1, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if j1.CacheHit {
		t.Fatal("first submission reported a cache hit")
	}
	done, err := cl.Wait(ctx, j1.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != service.StateDone {
		t.Fatalf("job finished %s (error %q), want done", done.State, done.Error)
	}
	if done.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", done.Attempts)
	}

	// The event stream (replayed in full after completion) must contain
	// at least one per-round progress event and end with the terminal
	// state transition.
	events := collectEvents(t, cl, j1.ID)
	rounds := 0
	for _, e := range events {
		if e.Type == service.EventRound {
			rounds++
		}
	}
	if rounds < 1 {
		t.Errorf("stream carried %d round events, want >= 1", rounds)
	}
	last := events[len(events)-1]
	if last.Type != service.EventState || last.State != service.StateDone {
		t.Errorf("last event = %+v, want terminal state done", last)
	}

	env, err := cl.Result(ctx, done.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if env.One == nil || env.One.Rounds != req.Config.Rounds {
		t.Fatalf("result envelope = %+v, want a %d-round single-run payload", env, req.Config.Rounds)
	}

	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.SimulationsRun != 1 || m.CacheMisses != 1 || m.CacheHits != 0 {
		t.Fatalf("after first run: sims=%d misses=%d hits=%d, want 1/1/0",
			m.SimulationsRun, m.CacheMisses, m.CacheHits)
	}

	// Identical resubmission: immediately done, same hash, new job id,
	// no second simulation.
	j2, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit || j2.State != service.StateDone {
		t.Fatalf("resubmission = %+v, want an instant cache-hit done job", j2)
	}
	if j2.Hash != j1.Hash {
		t.Fatalf("hash changed across identical submissions: %s vs %s", j1.Hash, j2.Hash)
	}
	if j2.ID == j1.ID {
		t.Fatal("resubmission reused the job id")
	}
	m, err = cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.SimulationsRun != 1 {
		t.Fatalf("resubmission re-simulated: simulationsRun = %d", m.SimulationsRun)
	}
	if m.CacheHits != 1 {
		t.Fatalf("cacheHits = %d, want 1", m.CacheHits)
	}

	// A cache-hit job never had a live stream; its events endpoint still
	// yields the terminal state so clients can treat every job alike.
	events = collectEvents(t, cl, j2.ID)
	if len(events) != 1 || events[0].State != service.StateDone {
		t.Fatalf("cache-hit job events = %+v, want exactly one done state", events)
	}

	// An equivalent-but-not-identical request (config sweep lists differ
	// but KindOne ignores them) also hits the cache, via normalization.
	eq := req
	eq.Config.Lambdas = []float64{8, 4}
	eq.Config.Seeds = []uint64{7}
	j3, err := cl.Submit(ctx, eq)
	if err != nil {
		t.Fatal(err)
	}
	if !j3.CacheHit {
		t.Fatal("normalized-equivalent submission missed the cache")
	}
	_ = srv
}

// TestCancelRunningJob cancels a long real simulation mid-run via
// DELETE and checks it stops at a round boundary.
func TestCancelRunningJob(t *testing.T) {
	_, cl := newTestServer(t, service.Options{Workers: 1})
	ctx := context.Background()

	cfg := experiment.PaperConfig() // N=100: slow enough to catch mid-run
	cfg.Rounds = 50000
	cfg.Seeds = []uint64{1}
	cfg.Lambdas = []float64{4}
	cfg.Workers = 1
	j, err := cl.Submit(ctx, oneRequest(cfg))
	if err != nil {
		t.Fatal(err)
	}

	// Stream until the first round event proves the engine is inside the
	// run, then cancel.
	firstRound := make(chan struct{})
	var once sync.Once
	var events []service.Event
	var evErr error
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		sctx, scancel := context.WithTimeout(ctx, 30*time.Second)
		defer scancel()
		evErr = cl.Events(sctx, j.ID, func(e service.Event) bool {
			events = append(events, e)
			if e.Type == service.EventRound {
				once.Do(func() { close(firstRound) })
			}
			return true
		})
	}()
	select {
	case <-firstRound:
	case <-time.After(20 * time.Second):
		t.Fatal("no round event within 20s")
	}
	if _, err := cl.Cancel(ctx, j.ID); err != nil {
		t.Fatal(err)
	}
	fin, err := cl.Wait(ctx, j.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != service.StateCancelled {
		t.Fatalf("state after DELETE = %s, want cancelled", fin.State)
	}
	if !fin.CancelRequested {
		t.Fatal("cancelRequested not recorded")
	}
	<-streamDone
	if evErr != nil {
		t.Fatalf("event stream: %v", evErr)
	}
	last := events[len(events)-1]
	if last.Type != service.EventState || last.State != service.StateCancelled {
		t.Fatalf("last event = %+v, want cancelled state", last)
	}
	// Cancellation lands at a round boundary, long before the configured
	// horizon.
	roundEvents := 0
	for _, e := range events {
		if e.Type == service.EventRound {
			roundEvents++
		}
	}
	if roundEvents >= cfg.Rounds {
		t.Fatalf("saw %d round events; cancellation did not interrupt the run", roundEvents)
	}
	// DELETE is idempotent on terminal jobs.
	again, err := cl.Cancel(ctx, j.ID)
	if err != nil || again.State != service.StateCancelled {
		t.Fatalf("second DELETE = %+v, %v", again, err)
	}
	// No partial result was cached.
	if _, err := cl.Result(ctx, j.Hash); err == nil {
		t.Fatal("cancelled job left a cached result")
	}
}

// TestCancelQueuedJob cancels a job before any worker picks it up.
func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	_, cl := newTestServer(t, service.Options{
		Workers: 1,
		Run: func(ctx context.Context, req service.Request, publish func(service.Event)) (*service.ResultEnvelope, error) {
			started <- struct{}{}
			select {
			case <-release:
				return &service.ResultEnvelope{Kind: req.Kind}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	defer close(release)
	ctx := context.Background()

	// Occupy the only worker, then queue a second distinct job.
	if _, err := cl.Submit(ctx, oneRequest(tinyCfg())); err != nil {
		t.Fatal(err)
	}
	<-started
	cfg2 := tinyCfg()
	cfg2.Rounds = 3
	j2, err := cl.Submit(ctx, oneRequest(cfg2))
	if err != nil {
		t.Fatal(err)
	}
	if j2.State != service.StateQueued {
		t.Fatalf("second job state = %s, want queued", j2.State)
	}
	got, err := cl.Cancel(ctx, j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != service.StateCancelled {
		t.Fatalf("cancelled queued job state = %s", got.State)
	}
	events := collectEvents(t, cl, j2.ID)
	if len(events) == 0 || events[len(events)-1].State != service.StateCancelled {
		t.Fatalf("queued-cancel events = %+v", events)
	}
	// The identity is free again: resubmitting must create a NEW job,
	// not coalesce onto the cancelled one.
	j3, err := cl.Submit(ctx, oneRequest(cfg2))
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID == j2.ID || j3.State.Terminal() {
		t.Fatalf("resubmission after cancel = %+v", j3)
	}
}

// TestTransientRetry: a job that fails once with ErrTransient re-enters
// the queue and succeeds on the second attempt.
func TestTransientRetry(t *testing.T) {
	var calls atomic.Int32
	_, cl := newTestServer(t, service.Options{
		Workers:    1,
		MaxRetries: 1,
		Run: func(ctx context.Context, req service.Request, publish func(service.Event)) (*service.ResultEnvelope, error) {
			if calls.Add(1) == 1 {
				return nil, fmt.Errorf("simulated blip: %w", service.ErrTransient)
			}
			return &service.ResultEnvelope{Kind: req.Kind}, nil
		},
	})
	ctx := context.Background()
	j, err := cl.Submit(ctx, oneRequest(tinyCfg()))
	if err != nil {
		t.Fatal(err)
	}
	fin, err := cl.Wait(ctx, j.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != service.StateDone {
		t.Fatalf("state = %s (error %q), want done after retry", fin.State, fin.Error)
	}
	if fin.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", fin.Attempts)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("run function called %d times, want 2", got)
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.SimulationsRun != 1 {
		t.Fatalf("simulationsRun = %d, want 1 (failed attempts don't count)", m.SimulationsRun)
	}
}

// TestRetryBudgetExhausted: with retries disabled, one transient
// failure is terminal.
func TestRetryBudgetExhausted(t *testing.T) {
	_, cl := newTestServer(t, service.Options{
		Workers:    1,
		MaxRetries: -1, // explicit zero retries
		Run: func(ctx context.Context, req service.Request, publish func(service.Event)) (*service.ResultEnvelope, error) {
			return nil, fmt.Errorf("always down: %w", service.ErrTransient)
		},
	})
	ctx := context.Background()
	j, err := cl.Submit(ctx, oneRequest(tinyCfg()))
	if err != nil {
		t.Fatal(err)
	}
	fin, err := cl.Wait(ctx, j.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != service.StateFailed || !strings.Contains(fin.Error, "always down") {
		t.Fatalf("job = %+v, want failed with the run error", fin)
	}
	if fin.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", fin.Attempts)
	}
}

// TestDrainWaitsForInFlight: Drain lets the running job finish, refuses
// new submissions, and flips /readyz to 503 while /healthz stays 200
// (liveness vs readiness).
func TestDrainWaitsForInFlight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	srv, cl := newTestServer(t, service.Options{
		Workers: 1,
		Run: func(ctx context.Context, req service.Request, publish func(service.Event)) (*service.ResultEnvelope, error) {
			close(started)
			select {
			case <-release:
				return &service.ResultEnvelope{Kind: req.Kind}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	ctx := context.Background()
	j, err := cl.Submit(ctx, oneRequest(tinyCfg()))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Drain(context.Background()) }()

	// Draining is observable: readiness 503, submissions refused — but
	// liveness stays green (the process is healthy, just finishing up).
	waitFor(t, func() bool {
		var apiErr *client.APIError
		err := cl.Ready(ctx)
		return errors.As(err, &apiErr) && apiErr.Status == http.StatusServiceUnavailable
	}, "readyz did not report draining")
	if err := cl.Health(ctx); err != nil {
		t.Fatalf("healthz during drain = %v, want 200 (pure liveness)", err)
	}
	_, err = cl.Submit(ctx, oneRequest(func() experiment.Config { c := tinyCfg(); c.Rounds = 7; return c }()))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain = %v, want 503", err)
	}

	close(release)
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	fin, err := cl.Job(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != service.StateDone {
		t.Fatalf("in-flight job after graceful drain = %s, want done", fin.State)
	}
}

// TestQueueLimit: submissions beyond the queue bound get 503 and do not
// create jobs.
func TestQueueLimit(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	_, cl := newTestServer(t, service.Options{
		Workers:    1,
		QueueLimit: 1,
		Run: func(ctx context.Context, req service.Request, publish func(service.Event)) (*service.ResultEnvelope, error) {
			started <- struct{}{}
			<-release
			return &service.ResultEnvelope{Kind: req.Kind}, nil
		},
	})
	defer close(release)
	ctx := context.Background()

	mkReq := func(rounds int) service.Request {
		c := tinyCfg()
		c.Rounds = rounds
		return oneRequest(c)
	}
	if _, err := cl.Submit(ctx, mkReq(2)); err != nil {
		t.Fatal(err)
	}
	<-started // worker busy; queue empty
	if _, err := cl.Submit(ctx, mkReq(3)); err != nil {
		t.Fatal(err) // fills the single queue slot
	}
	_, err := cl.Submit(ctx, mkReq(4))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("over-limit submission = %v, want 503", err)
	}
}

// TestHTTPValidationAndNotFound covers the 4xx surface.
func TestHTTPValidationAndNotFound(t *testing.T) {
	_, cl := newTestServer(t, service.Options{Workers: 1})
	ctx := context.Background()

	wantStatus := func(err error, status int, what string) {
		t.Helper()
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != status {
			t.Fatalf("%s: got %v, want HTTP %d", what, err, status)
		}
	}

	bad := oneRequest(tinyCfg())
	bad.Protocols = []experiment.ProtocolID{"warp-drive"}
	_, err := cl.Submit(ctx, bad)
	wantStatus(err, http.StatusBadRequest, "unknown protocol")

	bad = oneRequest(tinyCfg())
	bad.Kind = "interpretive-dance"
	_, err = cl.Submit(ctx, bad)
	wantStatus(err, http.StatusBadRequest, "unknown kind")

	bad = oneRequest(tinyCfg())
	bad.Config.K = 0
	_, err = cl.Submit(ctx, bad)
	wantStatus(err, http.StatusBadRequest, "invalid config")

	_, err = cl.Job(ctx, "j99999999")
	wantStatus(err, http.StatusNotFound, "unknown job")
	_, err = cl.Cancel(ctx, "j99999999")
	wantStatus(err, http.StatusNotFound, "cancel unknown job")
	_, err = cl.Result(ctx, strings.Repeat("ab", 32))
	wantStatus(err, http.StatusNotFound, "unknown result")
	err = cl.Events(ctx, "j99999999", func(service.Event) bool { return true })
	wantStatus(err, http.StatusNotFound, "events of unknown job")
}

// TestRestartServesCachedResults: results persist; a fresh process over
// the same data dir answers identical submissions from disk without
// simulating.
func TestRestartServesCachedResults(t *testing.T) {
	dir := t.TempDir()
	req := oneRequest(tinyCfg())
	ctx := context.Background()

	srv1, err := service.New(service.Options{DataDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	cl1 := client.New(ts1.URL, client.WithRetries(0))
	j1, err := cl1.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl1.Wait(ctx, j1.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	srv1.Close()
	ts1.Close()

	// Second process: any simulation here is a test failure.
	var calls atomic.Int32
	srv2, err := service.New(service.Options{
		DataDir: dir,
		Workers: 1,
		Run: func(ctx context.Context, req service.Request, publish func(service.Event)) (*service.ResultEnvelope, error) {
			calls.Add(1)
			return nil, errors.New("must not simulate")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() { srv2.Close(); ts2.Close() })
	cl2 := client.New(ts2.URL, client.WithRetries(0))

	// The job history survived the restart.
	jobs, err := cl2.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != j1.ID || jobs[0].State != service.StateDone {
		t.Fatalf("reloaded jobs = %+v", jobs)
	}

	j2, err := cl2.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit || j2.State != service.StateDone || j2.Hash != j1.Hash {
		t.Fatalf("post-restart resubmission = %+v, want a cache hit on %s", j2, j1.Hash)
	}
	if calls.Load() != 0 {
		t.Fatal("restart re-simulated a cached experiment")
	}
	env, err := cl2.Result(ctx, j1.Hash)
	if err != nil || env.One == nil {
		t.Fatalf("result after restart: %+v, %v", env, err)
	}
	m, err := cl2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheHits != 1 || m.SimulationsRun != 0 {
		t.Fatalf("post-restart metrics: hits=%d sims=%d, want 1/0", m.CacheHits, m.SimulationsRun)
	}
}

// TestRestartResumesInterruptedJob: a job interrupted by an expired
// drain persists as queued and runs to completion on the next start.
func TestRestartResumesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	started := make(chan struct{})
	srv1, err := service.New(service.Options{
		DataDir: dir,
		Workers: 1,
		Run: func(ctx context.Context, req service.Request, publish func(service.Event)) (*service.ResultEnvelope, error) {
			close(started)
			<-ctx.Done() // hold the job until shutdown interrupts it
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	cl1 := client.New(ts1.URL, client.WithRetries(0))
	j, err := cl1.Submit(ctx, oneRequest(tinyCfg()))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// A drain deadline in the past interrupts immediately — the shape of
	// an operator SIGTERM whose -drain-timeout expires.
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if err := srv1.Drain(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain = %v, want deadline exceeded", err)
	}
	ts1.Close()

	// The next process reloads the interrupted job as queued and
	// executes it (this time with the real engine).
	srv2, err := service.New(service.Options{DataDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() { srv2.Close(); ts2.Close() })
	cl2 := client.New(ts2.URL, client.WithRetries(0))

	fin, err := cl2.Wait(ctx, j.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != service.StateDone {
		t.Fatalf("resumed job = %s (error %q), want done", fin.State, fin.Error)
	}
	if fin.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (the interrupted attempt doesn't count)", fin.Attempts)
	}
	if _, err := cl2.Result(ctx, fin.Hash); err != nil {
		t.Fatalf("result after resume: %v", err)
	}
}

// TestInflightCoalescing: submitting an identity that is already
// running returns the existing job instead of queueing a duplicate.
func TestInflightCoalescing(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	_, cl := newTestServer(t, service.Options{
		Workers: 1,
		Run: func(ctx context.Context, req service.Request, publish func(service.Event)) (*service.ResultEnvelope, error) {
			close(started)
			<-release
			return &service.ResultEnvelope{Kind: req.Kind}, nil
		},
	})
	ctx := context.Background()
	req := oneRequest(tinyCfg())
	j1, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j2, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID != j1.ID {
		t.Fatalf("duplicate submission created job %s, want coalescing onto %s", j2.ID, j1.ID)
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheHits != 1 {
		t.Fatalf("coalesced submission not counted as a hit: %d", m.CacheHits)
	}
	close(release)
	if _, err := cl.Wait(ctx, j1.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond until true or a 10s deadline.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}
