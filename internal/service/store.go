package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrNotFound reports a missing job or result.
var ErrNotFound = errors.New("service: not found")

// Store is the daemon's crash-safe persistence layer: one JSON file per
// job under <dir>/jobs and one per result under <dir>/results, written
// atomically (temp file + rename) so a crash mid-write never corrupts a
// record. Everything reloads on restart — finished jobs keep their
// states, interrupted ones re-enter the queue (see Server start-up).
type Store struct {
	dir string
}

// OpenStore creates (if needed) and opens a data directory.
func OpenStore(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, "jobs"), filepath.Join(dir, "results"), filepath.Join(dir, "batches")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("service: open store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the root data directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) jobPath(id string) string {
	return filepath.Join(s.dir, "jobs", id+".json")
}

func (s *Store) resultPath(hash string) string {
	return filepath.Join(s.dir, "results", hash+".json")
}

// writeAtomic writes data next to path and renames it into place.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// SaveJob persists one job record.
func (s *Store) SaveJob(j *Job) error {
	if !validID(j.ID) {
		return fmt.Errorf("service: refusing to persist job with unsafe id %q", j.ID)
	}
	b, err := json.Marshal(j)
	if err != nil {
		return fmt.Errorf("service: marshal job %s: %w", j.ID, err)
	}
	if err := writeAtomic(s.jobPath(j.ID), b); err != nil {
		return fmt.Errorf("service: save job %s: %w", j.ID, err)
	}
	return nil
}

// LoadJobs reads every job record, sorted by ID (IDs are zero-padded
// sequence numbers, so this is submission order). Unreadable records
// are skipped, not fatal — one corrupt file must not brick the daemon.
func (s *Store) LoadJobs() ([]*Job, []error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		return nil, []error{fmt.Errorf("service: load jobs: %w", err)}
	}
	var jobs []*Job
	var warns []error
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".tmp") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(s.dir, "jobs", name))
		if err != nil {
			warns = append(warns, err)
			continue
		}
		var j Job
		if err := json.Unmarshal(b, &j); err != nil {
			warns = append(warns, fmt.Errorf("service: job record %s: %w", name, err))
			continue
		}
		jobs = append(jobs, &j)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	return jobs, warns
}

// SaveResult persists one result envelope under its content hash.
func (s *Store) SaveResult(hash string, env *ResultEnvelope) error {
	if !validHash(hash) {
		return fmt.Errorf("service: refusing to persist result with unsafe hash %q", hash)
	}
	b, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("service: marshal result %s: %w", hash, err)
	}
	if err := writeAtomic(s.resultPath(hash), b); err != nil {
		return fmt.Errorf("service: save result %s: %w", hash, err)
	}
	return nil
}

// LoadResult reads one result envelope; ErrNotFound if absent.
func (s *Store) LoadResult(hash string) (*ResultEnvelope, error) {
	if !validHash(hash) {
		return nil, ErrNotFound
	}
	b, err := os.ReadFile(s.resultPath(hash))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("service: load result %s: %w", hash, err)
	}
	var env ResultEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("service: result record %s: %w", hash, err)
	}
	return &env, nil
}

// ResultHashes lists every persisted result's content hash.
func (s *Store) ResultHashes() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "results"))
	if err != nil {
		return nil, fmt.Errorf("service: list results: %w", err)
	}
	var hashes []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		h := strings.TrimSuffix(name, ".json")
		if validHash(h) {
			hashes = append(hashes, h)
		}
	}
	return hashes, nil
}

// SaveBatch persists one batch record (requests included, so an
// interrupted batch can resume after a restart).
func (s *Store) SaveBatch(b *Batch) error {
	if !validBatchID(b.ID) {
		return fmt.Errorf("service: refusing to persist batch with unsafe id %q", b.ID)
	}
	data, err := json.Marshal(b)
	if err != nil {
		return fmt.Errorf("service: marshal batch %s: %w", b.ID, err)
	}
	if err := writeAtomic(filepath.Join(s.dir, "batches", b.ID+".json"), data); err != nil {
		return fmt.Errorf("service: save batch %s: %w", b.ID, err)
	}
	return nil
}

// LoadBatches reads every batch record, sorted by ID (submission
// order). Unreadable records are skipped, not fatal.
func (s *Store) LoadBatches() ([]*Batch, []error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "batches"))
	if err != nil {
		return nil, []error{fmt.Errorf("service: load batches: %w", err)}
	}
	var batches []*Batch
	var warns []error
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".tmp") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, "batches", name))
		if err != nil {
			warns = append(warns, err)
			continue
		}
		var b Batch
		if err := json.Unmarshal(data, &b); err != nil {
			warns = append(warns, fmt.Errorf("service: batch record %s: %w", name, err))
			continue
		}
		batches = append(batches, &b)
	}
	sort.Slice(batches, func(i, k int) bool { return batches[i].ID < batches[k].ID })
	return batches, warns
}

// validBatchID accepts the server's own "b"-prefixed decimal batch IDs.
func validBatchID(id string) bool {
	if len(id) < 2 || len(id) > 32 || id[0] != 'b' {
		return false
	}
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// validHash accepts exactly the SHA-256 hex digests Request.Hash emits;
// anything else (in particular anything with path separators) is
// rejected before it can touch the filesystem.
func validHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for _, c := range h {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// validID accepts the server's own "j"-prefixed decimal job IDs.
func validID(id string) bool {
	if len(id) < 2 || len(id) > 32 || id[0] != 'j' {
		return false
	}
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}
