package service_test

// Fleet end-to-end tests: several real Servers behind real listeners,
// talking to each other over HTTP exactly as separate qlecd processes
// would — membership probing, work stealing, lease expiry and the
// ring-owned shared cache all exercise the same code paths as a
// multi-host deployment, just in one process so the race detector sees
// everything.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qlec/internal/experiment"
	"qlec/internal/service"
	"qlec/internal/service/client"
)

// fleetNode is one in-process daemon with a real listener.
type fleetNode struct {
	srv  *service.Server
	cl   *client.Client
	ts   *httptest.Server
	url  string
	once sync.Once
}

// kill stops the node hard — the in-process stand-in for a crashed
// peer: its leases stop renewing and its listener refuses connections.
func (n *fleetNode) kill() {
	n.once.Do(func() {
		n.srv.Close()
		n.ts.Close()
	})
}

// fleet fetches the node's fleet metrics slice.
func (n *fleetNode) fleet(t *testing.T) *service.FleetSnapshot {
	t.Helper()
	m, err := n.cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Fleet == nil {
		t.Fatal("fleet metrics absent on a fleet-mode node")
	}
	return m.Fleet
}

// startFleetNode boots a daemon whose advertised fleet identity is its
// own listener URL. The listener is created first (its address goes
// into FleetOptions.Self), then the Server, then the handler is patched
// in and the listener started.
func startFleetNode(t *testing.T, opt service.Options, fleetOpt service.FleetOptions) *fleetNode {
	t.Helper()
	var h atomic.Value // http.Handler
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hh, _ := h.Load().(http.Handler); hh != nil {
			hh.ServeHTTP(w, r)
			return
		}
		http.Error(w, "booting", http.StatusServiceUnavailable)
	}))
	url := "http://" + ts.Listener.Addr().String()
	fleetOpt.Self = url
	if fleetOpt.ProbeInterval == 0 {
		fleetOpt.ProbeInterval = 25 * time.Millisecond
	}
	if fleetOpt.StealInterval == 0 {
		fleetOpt.StealInterval = 5 * time.Millisecond
	}
	opt.Fleet = fleetOpt
	srv, err := service.New(opt)
	if err != nil {
		ts.Close()
		t.Fatal(err)
	}
	h.Store(srv.Handler())
	ts.Start()
	n := &fleetNode{
		srv: srv,
		ts:  ts,
		url: url,
		cl:  client.New(url, client.WithRetries(0), client.WithBackoff(time.Millisecond)),
	}
	t.Cleanup(n.kill)
	return n
}

// waitForRoster blocks until every node sees the whole fleet ready.
func waitForRoster(t *testing.T, nodes ...*fleetNode) {
	t.Helper()
	waitFor(t, func() bool {
		for _, n := range nodes {
			if f := n.fleet(t); f.PeersReady < len(nodes) {
				return false
			}
		}
		return true
	}, "fleet roster never converged")
}

// fleetSweepCfg is a sweep sized so each cell takes long enough that
// idle peers reliably steal before the coordinator drains the pool.
func fleetSweepCfg() experiment.Config {
	cfg := experiment.PaperConfig()
	cfg.N = 24
	cfg.Side = 100
	cfg.K = 2
	cfg.Rounds = 60
	cfg.Seeds = []uint64{1, 2, 3}
	cfg.Lambdas = []float64{1, 2, 4, 8}
	cfg.Workers = 1
	return cfg
}

// runReference executes req on a plain standalone server and returns
// its result envelope as canonical JSON — the byte-identity baseline.
func runReference(t *testing.T, req service.Request) []byte {
	t.Helper()
	_, cl := newTestServer(t, service.Options{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	j, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	done, err := cl.Wait(ctx, j.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != service.StateDone {
		t.Fatalf("reference job %s (error %q), want done", done.State, done.Error)
	}
	env, err := cl.Result(ctx, done.Hash)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestFleetSweepDistributesAndMatchesLocal is the headline fleet
// contract: a 3-daemon fleet executes one sweep's cells on at least two
// peers, and the merged result is byte-identical to a single-daemon run
// of the same request.
func TestFleetSweepDistributesAndMatchesLocal(t *testing.T) {
	req := service.Request{
		Kind:      service.KindFig3,
		Config:    fleetSweepCfg(),
		Protocols: []experiment.ProtocolID{experiment.QLEC, experiment.LEACH},
	}
	want := runReference(t, req)

	n1 := startFleetNode(t, service.Options{Workers: 1}, service.FleetOptions{CellWorkers: 1})
	n2 := startFleetNode(t, service.Options{Workers: 1}, service.FleetOptions{Join: n1.url, CellWorkers: 1})
	n3 := startFleetNode(t, service.Options{Workers: 1}, service.FleetOptions{Join: n1.url, CellWorkers: 1})
	waitForRoster(t, n1, n2, n3)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	j, err := n1.cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	done, err := n1.cl.Wait(ctx, j.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != service.StateDone {
		t.Fatalf("fleet job %s (error %q), want done", done.State, done.Error)
	}

	env, err := n1.cl.Result(ctx, done.Hash)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("fleet sweep result differs from the single-daemon run\nfleet: %.200s\nlocal: %.200s", got, want)
	}

	executors := 0
	for _, n := range []*fleetNode{n1, n2, n3} {
		if n.fleet(t).CellsExecuted > 0 {
			executors++
		}
	}
	if executors < 2 {
		t.Errorf("cells executed on %d peers, want >= 2", executors)
	}
}

// TestFleetProxyCacheHits: a config computed on one daemon is a cache
// hit on another — answered through the ring owner with zero
// recomputation, whichever peer owns the hash.
func TestFleetProxyCacheHits(t *testing.T) {
	a := startFleetNode(t, service.Options{Workers: 1}, service.FleetOptions{})
	b := startFleetNode(t, service.Options{Workers: 1}, service.FleetOptions{Join: a.url})
	waitForRoster(t, a, b)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	// Ring positions depend on the nodes' ephemeral ports, so one config
	// can land on either owner. Submitting several distinct configs
	// guarantees both placements occur: every one must be a B-side cache
	// hit, and at least one must have been proxied from A.
	for i := 0; i < 20; i++ {
		cfg := tinyCfg()
		cfg.Rounds = 2 + i
		req := oneRequest(cfg)
		ja, err := a.cl.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		// Stream to the terminal event rather than polling state: the
		// owner replication happens before the stream closes, so B's
		// lookup below can never race it.
		if err := a.cl.Events(ctx, ja.ID, func(service.Event) bool { return true }); err != nil {
			t.Fatal(err)
		}

		jb, err := b.cl.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		fin, err := b.cl.Wait(ctx, jb.ID, 2*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != service.StateDone {
			t.Fatalf("config %d on B: %s (error %q), want done", i, fin.State, fin.Error)
		}
		if !fin.CacheHit {
			t.Fatalf("config %d on B recomputed instead of hitting the shared cache", i)
		}
		if b.fleet(t).ProxyHits >= 1 {
			break
		}
	}
	mb, err := b.cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if mb.SimulationsRun != 0 {
		t.Errorf("B ran %d simulations, want 0 (every config was computed on A)", mb.SimulationsRun)
	}
	if mb.Fleet.ProxyHits < 1 {
		t.Errorf("B proxied %d cache hits from the ring owner, want >= 1", mb.Fleet.ProxyHits)
	}
}

// TestFleetPeerKillRecovery: a peer steals cells and dies without
// completing them; their leases expire, the cells re-pool, surviving
// peers finish them, and the merged result still matches a
// single-daemon run bit for bit. No cell is lost.
func TestFleetPeerKillRecovery(t *testing.T) {
	cfg := fleetSweepCfg()
	req := service.Request{
		Kind:      service.KindFig3,
		Config:    cfg,
		Protocols: []experiment.ProtocolID{experiment.QLEC},
	}
	want := runReference(t, req)

	ttl := 400 * time.Millisecond
	n1 := startFleetNode(t, service.Options{Workers: 1},
		service.FleetOptions{CellWorkers: 1, LeaseTTL: ttl})
	// The victim hangs on every cell it steals, so killing it is the
	// only way its work ever finishes — via lease expiry.
	victim := startFleetNode(t, service.Options{
		Workers: 1,
		Run: func(ctx context.Context, req service.Request, publish func(service.Event)) (*service.ResultEnvelope, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}, service.FleetOptions{Join: n1.url, CellWorkers: 1, LeaseTTL: ttl})
	n3 := startFleetNode(t, service.Options{Workers: 1},
		service.FleetOptions{Join: n1.url, CellWorkers: 1, LeaseTTL: ttl})
	waitForRoster(t, n1, victim, n3)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	j, err := n1.cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the victim actually holds stolen work, then kill it.
	waitFor(t, func() bool { return victim.fleet(t).CellsStolen >= 1 },
		"victim never stole a cell")
	victim.kill()

	done, err := n1.cl.Wait(ctx, j.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != service.StateDone {
		t.Fatalf("job after peer kill: %s (error %q), want done", done.State, done.Error)
	}

	if exp := n1.fleet(t).LeaseExpiries; exp < 1 {
		t.Errorf("coordinator recorded %d lease expiries, want >= 1 (the dead peer's cells must re-pool)", exp)
	}
	env, err := n1.cl.Result(ctx, done.Hash)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("post-recovery result differs from the single-daemon run\nfleet: %.200s\nlocal: %.200s", got, want)
	}
	// No lost cells: the pool is empty once the job is done.
	f := n1.fleet(t)
	if f.CellsPending != 0 || f.CellsLeased != 0 {
		t.Errorf("pool not drained after completion: %d pending, %d leased", f.CellsPending, f.CellsLeased)
	}
}
