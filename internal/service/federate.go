package service

import (
	"bytes"
	"context"
	"net/http"
	"time"

	"qlec/internal/obs"
)

// federateScrapeTimeout bounds each peer's /metrics scrape during a
// federation request; a slow peer degrades to peer_up 0, it cannot
// stall the whole endpoint.
const federateScrapeTimeout = 3 * time.Second

// handleFederate implements GET /metrics/federate: one merged
// Prometheus exposition for the whole fleet. The daemon scrapes its
// ready peers' /metrics, merges them with its own registry per the
// federation rules (counters and histograms summed, gauges labeled by
// instance — DESIGN.md §15), appends a synthetic qlecd_federate_peer_up
// gauge recording which scrapes succeeded, and lints the result before
// serving it. Standalone daemons federate a fleet of one.
func (s *Server) handleFederate(w http.ResponseWriter, r *http.Request) {
	var self bytes.Buffer
	if err := s.reg.WritePrometheus(&self); err != nil {
		writeErr(w, http.StatusInternalServerError, "federate: render local metrics: %v", err)
		return
	}
	selfExp, err := obs.ParseExposition(&self)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "federate: parse local metrics: %v", err)
		return
	}
	instances := []obs.Instance{{Name: s.fleet.self, Exp: selfExp}}
	up := map[string]float64{s.fleet.self: 1}

	if s.fleet.enabled {
		for _, peer := range s.fleet.members.ReadyOthers() {
			ctx, cancel := context.WithTimeout(r.Context(), federateScrapeTimeout)
			body, err := s.fleet.peers.MetricsText(ctx, peer)
			cancel()
			if err != nil {
				s.log.Warn("federate: scrape peer", "peer", peer, "err", err)
				up[peer] = 0
				continue
			}
			exp, err := obs.ParseExposition(bytes.NewReader(body))
			if err != nil {
				s.log.Warn("federate: parse peer metrics", "peer", peer, "err", err)
				up[peer] = 0
				continue
			}
			instances = append(instances, obs.Instance{Name: peer, Exp: exp})
			up[peer] = 1
		}
	}

	// The peer-up series already carry their instance label, so the
	// merge's gauge pass-through keeps them as-is.
	peerUp := &obs.MetricFamily{
		Name: "qlecd_federate_peer_up",
		Help: "1 when the instance's /metrics scrape succeeded during this federation request.",
		Type: "gauge",
	}
	for peer, v := range up {
		peerUp.Samples = append(peerUp.Samples, obs.Sample{
			Name:   peerUp.Name,
			Labels: []obs.Label{{Name: obs.InstanceLabel, Value: peer}},
			Value:  v,
		})
	}
	instances = append(instances, obs.Instance{
		Name: s.fleet.self,
		Exp:  &obs.Exposition{Families: []*obs.MetricFamily{peerUp}},
	})

	merged, err := obs.MergeExpositions(instances)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "federate: merge: %v", err)
		return
	}
	var out bytes.Buffer
	if err := obs.WriteExposition(&out, merged); err != nil {
		writeErr(w, http.StatusInternalServerError, "federate: render: %v", err)
		return
	}
	// Lint backstop: never serve a merged exposition a real Prometheus
	// would reject (mismatched bucket bounds, duplicate series).
	if err := obs.LintExposition(bytes.NewReader(out.Bytes())); err != nil {
		writeErr(w, http.StatusInternalServerError, "federate: merged exposition fails lint: %v", err)
		return
	}
	w.Header().Set("Content-Type", obs.ExpositionContentType)
	_, _ = w.Write(out.Bytes())
}
