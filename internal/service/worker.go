package service

import (
	"context"
	"time"
)

// workerLoop is one pool worker: pop job IDs until the queue closes.
func (s *Server) workerLoop() {
	for {
		id, ok := s.queue.pop()
		if !ok {
			return
		}
		s.runJob(id)
	}
}

// runJob executes one queued job end to end: late cache check, state
// transition to running, execution under a per-job cancellable context,
// and terminal-state (or retry/interruption) bookkeeping.
func (s *Server) runJob(id string) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil || j.State != StateQueued {
		// Cancelled (or otherwise finished) while queued; the queue
		// entry is stale.
		s.mu.Unlock()
		return
	}
	hub := s.hubs[id]
	if hub == nil {
		hub = newEventHub()
		s.hubs[id] = hub
	}
	// Late dedupe: an identical job may have finished between this
	// job's submission and its dequeue (the submit-path check can race
	// with completion). Content addressing makes the recheck free.
	if env, ok := s.cache.peek(j.Hash); ok && env != nil {
		now := time.Now().UTC()
		j.State = StateDone
		j.CacheHit = true
		j.StartedAt, j.FinishedAt = now, now
		delete(s.inflight, j.Hash)
		s.persistLocked(j)
		s.mu.Unlock()
		hub.publish(Event{Type: EventState, State: StateDone})
		hub.close()
		return
	}
	j.State = StateRunning
	j.Attempts++
	j.StartedAt = time.Now().UTC()
	ctx, cancel := context.WithCancel(s.hardCtx)
	s.cancels[id] = cancel
	if j.CancelRequested {
		// DELETE raced the dequeue: start pre-cancelled so the engine
		// stops before its first round.
		cancel()
	}
	req := j.Request
	if s.opt.SimWorkers > 0 {
		req.Config.Workers = s.opt.SimWorkers
	}
	s.persistLocked(j)
	s.mu.Unlock()

	hub.publish(Event{Type: EventState, State: StateRunning})
	env, err := s.opt.Run(ctx, req, hub.publish)
	interrupted := ctx.Err() != nil
	cancel()

	s.mu.Lock()
	delete(s.cancels, id)
	now := time.Now().UTC()
	var requeue, closeHub bool
	switch {
	case err == nil:
		if env == nil {
			env = &ResultEnvelope{Kind: req.Kind}
		}
		env.Hash = j.Hash
		s.simsRun.Add(1)
		if perr := s.cache.put(j.Hash, env, true); perr != nil {
			s.opt.Logf("%v", perr)
		}
		j.State = StateDone
		j.Error = ""
		j.FinishedAt = now
		delete(s.inflight, j.Hash)
		closeHub = true
	case interrupted && j.CancelRequested:
		j.State = StateCancelled
		j.Error = "cancelled"
		j.FinishedAt = now
		delete(s.inflight, j.Hash)
		closeHub = true
	case interrupted:
		// Shutdown took the context, not a DELETE: the job is
		// interrupted, not over. It persists as queued and re-enters
		// the queue on the next start; the aborted attempt doesn't
		// count against the retry budget.
		j.State = StateQueued
		j.Attempts--
		s.opt.Logf("job %s interrupted by shutdown; persisted as queued", id)
	case IsTransient(err) && j.Attempts <= s.opt.MaxRetries:
		j.State = StateQueued
		j.Error = err.Error()
		requeue = true
		s.opt.Logf("job %s transient failure (attempt %d/%d): %v",
			id, j.Attempts, s.opt.MaxRetries+1, err)
	default:
		j.State = StateFailed
		j.Error = err.Error()
		j.FinishedAt = now
		delete(s.inflight, j.Hash)
		closeHub = true
		s.opt.Logf("job %s failed: %v", id, err)
	}
	s.persistLocked(j)
	state, errMsg := j.State, j.Error
	s.mu.Unlock()

	if requeue {
		hub.publish(Event{Type: EventState, State: StateQueued, Error: errMsg})
		s.queue.push(id)
		return
	}
	if closeHub {
		hub.publish(Event{Type: EventState, State: state, Error: errMsg})
		hub.close()
		if state == StateDone {
			s.opt.Logf("job %s done", id)
		}
	}
}
