package service

import (
	"context"
	"time"

	"qlec/internal/audit"
	"qlec/internal/obs"
	"qlec/internal/prof"
)

// workerLoop is one pool worker: pop job IDs until the queue closes.
func (s *Server) workerLoop() {
	for {
		id, ok := s.queue.pop()
		if !ok {
			return
		}
		s.runJob(id)
	}
}

// runJob executes one queued job end to end: late cache check, state
// transition to running, execution under a per-job cancellable context,
// and terminal-state (or retry/interruption) bookkeeping.
func (s *Server) runJob(id string) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil || j.State != StateQueued {
		// Cancelled (or otherwise finished) while queued; the queue
		// entry is stale.
		s.mu.Unlock()
		return
	}
	if s.fleet.enabled {
		// Fleet dedupe: the hash's ring owner may already hold this
		// result (computed by any peer). Fetching it installs it in the
		// local cache, so the late-dedupe check below answers the job
		// without recomputing. Network happens outside the server lock.
		hash, traceID := j.Hash, j.TraceID
		s.mu.Unlock()
		if _, ok := s.cache.peek(hash); !ok {
			fetchCtx := s.hardCtx
			if traceID != "" {
				fetchCtx = obs.ContextWithSpan(fetchCtx,
					obs.SpanContext{TraceID: traceID, SpanID: obs.NewSpanID()})
			}
			s.fleet.proxyFetch(fetchCtx, hash)
		}
		s.mu.Lock()
		j = s.jobs[id]
		if j == nil || j.State != StateQueued { // cancelled while unlocked
			s.mu.Unlock()
			return
		}
	}
	hub := s.hubs[id]
	if hub == nil {
		hub = newEventHub()
		s.hubs[id] = hub
	}
	// Late dedupe: an identical job may have finished between this
	// job's submission and its dequeue (the submit-path check can race
	// with completion). Content addressing makes the recheck free.
	if env, ok := s.cache.peek(j.Hash); ok && env != nil {
		now := time.Now().UTC()
		j.State = StateDone
		j.CacheHit = true
		j.StartedAt, j.FinishedAt = now, now
		delete(s.inflight, j.Hash)
		s.persistLocked(j)
		s.mu.Unlock()
		hub.publish(Event{Type: EventState, State: StateDone})
		hub.close()
		return
	}
	// jobSC anchors every span this job produces — locally and on any
	// peer that steals its cells — to the trace ID minted at submission.
	var jobSC obs.SpanContext
	if j.TraceID != "" {
		jobSC = obs.SpanContext{TraceID: j.TraceID, SpanID: obs.NewSpanID()}
	}
	if j.Attempts == 0 {
		// First execution attempt: the submit→dequeue gap is the queue
		// wait (retries would double-count their failed run time).
		s.om.queueWait.Observe(time.Since(j.CreatedAt).Seconds())
		s.fleet.spans.Span(jobSC, "queue wait", "queue", j.CreatedAt, time.Now(), nil)
	}
	j.State = StateRunning
	j.Attempts++
	j.StartedAt = time.Now().UTC()
	ctx, cancel := context.WithCancel(s.hardCtx)
	s.cancels[id] = cancel
	if j.CancelRequested {
		// DELETE raced the dequeue: start pre-cancelled so the engine
		// stops before its first round.
		cancel()
	}
	req := j.Request
	if s.opt.SimWorkers > 0 {
		req.Config.Workers = s.opt.SimWorkers
	}
	rid := j.RequestID
	attempt := j.Attempts
	s.persistLocked(j)
	s.mu.Unlock()

	log := s.log.With("job", id, "kind", string(req.Kind), "requestId", rid)
	rec := obs.NewTraceRecorder(0)
	s.traces.put(id, rec)
	ctx = obs.ContextWithRequestID(ctx, rid)
	ctx = obs.ContextWithMetrics(ctx, s.reg)
	ctx = obs.ContextWithTrace(ctx, rec)
	if jobSC.Valid() {
		ctx = obs.ContextWithSpan(ctx, jobSC)
	}
	var arec *audit.Recorder
	if req.Kind == KindOne {
		// Single simulations get a flight recorder (sweeps strip hooks per
		// cell). A fresh recorder per attempt: Bind is single-use.
		arec = audit.New(audit.Options{
			MaxEntries:   serviceAuditEntries,
			MaxDecisions: serviceAuditDecisions,
			Metrics:      s.reg,
		})
		ctx = contextWithAudit(ctx, arec)
	}

	log.Info("job started", "attempt", attempt)
	s.om.busyWorkers.Inc()
	hub.publish(Event{Type: EventState, State: StateRunning})
	runStart := time.Now()
	var env *ResultEnvelope
	var err error
	var usage prof.Usage
	if s.fleet.distributable(req.Kind) {
		// Fleet mode: sweeps decompose into content-addressed cells that
		// local executors and stealing peers drain in parallel; the
		// reassembled result is byte-identical to a local run. The usage
		// bill is the sum of the cells' bills wherever they executed —
		// NOT a process-wide bracket here, which would double-count the
		// local cell executors and charge this job for its neighbours.
		env, usage, err = s.fleet.runSweep(ctx, req, hub.publish)
	} else {
		// Direct runs get a process-wide bracket; this daemon burned the
		// cycles, so it also owns the cost-counter increment.
		bracket := prof.Begin()
		env, err = s.opt.Run(ctx, req, hub.publish)
		usage = bracket.EndWith(s.sampler)
		s.om.accountUsage(string(req.Kind), protocolLabel(req), usage)
	}
	elapsed := time.Since(runStart)
	s.om.busyWorkers.Dec()
	interrupted := ctx.Err() != nil
	cancel()

	var auditSum *AuditSummary
	if arec != nil && err == nil && !interrupted {
		// Rounds == 0 means the RunFunc never drove the recorder (stub
		// runners in tests): nothing worth serving.
		if art := arec.Artifact(); art.Report.Rounds > 0 {
			s.audits.put(id, art)
			var anomalies uint64
			for _, n := range art.Report.AnomalyCounts {
				anomalies += n
			}
			auditSum = &AuditSummary{
				Entries:    art.Report.Entries,
				Decisions:  art.Report.Decisions,
				Violations: art.Report.ViolationCount,
				Anomalies:  anomalies,
			}
			if art.Report.ViolationCount > 0 {
				log.Error("audit: energy conservation violated", "violations", art.Report.ViolationCount)
			}
		}
	}

	s.mu.Lock()
	delete(s.cancels, id)
	now := time.Now().UTC()
	if !usage.IsZero() {
		// Accumulate across attempts: a retried job's bill includes the
		// failed attempts that preceded success.
		if j.Resources == nil {
			j.Resources = &prof.Usage{}
		}
		j.Resources.Add(usage)
	}
	var requeue, closeHub bool
	switch {
	case err == nil:
		if env == nil {
			env = &ResultEnvelope{Kind: req.Kind}
		}
		env.Hash = j.Hash
		s.simsRun.Add(1)
		if perr := s.cache.put(j.Hash, env, true); perr != nil {
			log.Error("cache result", "err", perr)
		}
		j.State = StateDone
		j.Error = ""
		j.FinishedAt = now
		delete(s.inflight, j.Hash)
		closeHub = true
	case interrupted && j.CancelRequested:
		j.State = StateCancelled
		j.Error = "cancelled"
		j.FinishedAt = now
		delete(s.inflight, j.Hash)
		closeHub = true
	case interrupted:
		// Shutdown took the context, not a DELETE: the job is
		// interrupted, not over. It persists as queued and re-enters
		// the queue on the next start; the aborted attempt doesn't
		// count against the retry budget.
		j.State = StateQueued
		j.Attempts--
		log.Info("job interrupted by shutdown; persisted as queued")
	case IsTransient(err) && j.Attempts <= s.opt.MaxRetries:
		j.State = StateQueued
		j.Error = err.Error()
		requeue = true
		log.Warn("job transient failure",
			"attempt", j.Attempts, "maxAttempts", s.opt.MaxRetries+1, "err", err)
	default:
		j.State = StateFailed
		j.Error = err.Error()
		j.FinishedAt = now
		delete(s.inflight, j.Hash)
		closeHub = true
		log.Error("job failed", "err", err)
	}
	s.persistLocked(j)
	state, errMsg, hash := j.State, j.Error, j.Hash
	resources := j.Resources // immutable once set; safe to share
	s.mu.Unlock()

	if state == StateDone && env != nil {
		// Make the finished result proxy-visible fleet-wide (a no-op in
		// standalone mode or when this daemon owns the hash). Outside the
		// server lock: this is a network call. The job ctx is cancelled by
		// now, so the replication span rides on hardCtx.
		repCtx := s.hardCtx
		if jobSC.Valid() {
			repCtx = obs.ContextWithSpan(repCtx, jobSC)
		}
		s.fleet.replicateToOwner(repCtx, hash, env)
	}

	rec.Span("job "+id, "job", runStart, runStart.Add(elapsed),
		map[string]any{"kind": string(req.Kind), "state": string(state), "requestId": rid})
	if state.Terminal() {
		s.om.jobsTotal.With(string(state)).Inc()
		s.om.jobDuration.With(string(req.Kind), string(state)).Observe(elapsed.Seconds())
	}

	if requeue {
		hub.publish(Event{Type: EventState, State: StateQueued, Error: errMsg})
		s.queue.push(id)
		return
	}
	if closeHub {
		if auditSum != nil && state == StateDone {
			hub.publish(Event{Type: EventAudit, Audit: auditSum})
		}
		hub.publish(Event{Type: EventState, State: state, Error: errMsg, Resources: resources})
		hub.close()
		if state == StateDone {
			log.Info("job done", "durationMs", float64(elapsed.Microseconds())/1000)
		}
	}
}
