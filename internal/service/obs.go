package service

import (
	"sync"

	"qlec/internal/audit"
	"qlec/internal/obs"
	"qlec/internal/prof"
)

// serverMetrics holds qlecd's operational instruments. Scrape-time
// state (queue depth, job-table counts, cache counters) is exported via
// callback collectors reading the server's existing atomics, so the
// Prometheus view and the legacy /metrics.json snapshot can never
// disagree.
type serverMetrics struct {
	queueWait   *obs.Histogram    // seconds from submit to first execution start
	jobDuration *obs.HistogramVec // {kind, state} execution wall time
	jobsTotal   *obs.CounterVec   // {state} terminal transitions
	busyWorkers *obs.Gauge
	sseSubs     *obs.Gauge
	jobCPU      *obs.CounterVec // {kind, protocol} attributed CPU seconds
	jobAlloc    *obs.CounterVec // {kind, protocol} attributed alloc bytes
}

// queueWaitBuckets span instant dequeues to long backlogs; job-duration
// buckets reach the multi-minute sweeps qlecd exists to run.
var (
	queueWaitBuckets   = []float64{0.001, 0.01, 0.1, 1, 10, 60, 600}
	jobDurationBuckets = []float64{0.01, 0.1, 1, 10, 60, 600, 3600}
)

func newServerMetrics(r *obs.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{
		queueWait: r.Histogram("qlecd_job_queue_wait_seconds",
			"Seconds a job waited in the queue before its first execution attempt.",
			queueWaitBuckets),
		jobDuration: r.HistogramVec("qlecd_job_duration_seconds",
			"Job execution wall time in seconds, by kind and terminal state.",
			jobDurationBuckets, "kind", "state"),
		jobsTotal: r.CounterVec("qlecd_jobs_total",
			"Jobs reaching a terminal state.", "state"),
		busyWorkers: r.Gauge("qlecd_workers_busy",
			"Workers currently executing a job."),
		sseSubs: r.Gauge("qlecd_sse_subscribers",
			"Open SSE event streams."),
		// The job-cost counters increment where execution actually
		// happens: direct-run jobs on their worker's daemon under their
		// own kind, sweep cells on the executing daemon (local or thief)
		// under kind="cell". Distributed sweep jobs add nothing directly
		// — their cost IS their cells' — so the federated sum over all
		// label sets is the fleet's exact execution cost, with no double
		// counting and trivially equal to the per-peer sums.
		jobCPU: r.CounterVec("qlecd_job_cpu_seconds_total",
			"Process CPU seconds attributed to executed jobs and cells, by kind and protocol.",
			"kind", "protocol"),
		jobAlloc: r.CounterVec("qlecd_job_alloc_bytes_total",
			"Heap bytes allocated during executed jobs and cells, by kind and protocol.",
			"kind", "protocol"),
	}
	r.GaugeFunc("qlecd_queue_depth", "Jobs waiting in the dispatch queue.",
		func() float64 { return float64(s.queue.depth()) })
	r.GaugeFunc("qlecd_workers", "Configured worker pool size.",
		func() float64 { return float64(s.opt.Workers) })
	r.GaugeFunc("qlecd_draining", "1 while a graceful drain is in progress.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	r.CounterFunc("qlecd_cache_hits_total", "Result-cache hits (including in-flight coalescing).",
		func() float64 { h, _ := s.cache.stats(); return float64(h) })
	r.CounterFunc("qlecd_cache_misses_total", "Result-cache misses.",
		func() float64 { _, m := s.cache.stats(); return float64(m) })
	r.CounterFunc("qlecd_simulations_total", "Simulations actually executed (cache hits excluded).",
		func() float64 { return float64(s.simsRun.Load()) })
	r.GaugeFunc("qlecd_traces_held", "Per-job trace recorders currently retained (FIFO-capped by -trace-history).",
		func() float64 { return float64(s.traces.len()) })
	r.GaugeFunc("qlecd_audits_held", "Per-job audit artifacts currently retained (FIFO-capped by -audit-history).",
		func() float64 { return float64(s.audits.len()) })
	for _, st := range []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		st := st
		r.GaugeFunc("qlecd_jobs", "Jobs in the table, by lifecycle state.",
			func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				n := 0
				for _, j := range s.jobs {
					if j.State == st {
						n++
					}
				}
				return float64(n)
			}, "state", string(st))
	}
	return m
}

// accountUsage feeds one execution bill into the job-cost counters.
func (m *serverMetrics) accountUsage(kind, protocol string, u prof.Usage) {
	if u.CPUSeconds > 0 {
		m.jobCPU.With(kind, protocol).Add(u.CPUSeconds)
	}
	if u.AllocBytes > 0 {
		m.jobAlloc.With(kind, protocol).Add(float64(u.AllocBytes))
	}
}

// protocolLabel folds a request's protocol list into one bounded
// label value: the protocol for single-protocol runs, "multi" for
// comparison figures that run several.
func protocolLabel(req Request) string {
	switch len(req.Protocols) {
	case 0:
		return "default"
	case 1:
		return string(req.Protocols[0])
	default:
		return "multi"
	}
}

// newFleetCollectors exports the fleet pool and roster as callback
// collectors over the runtime's own state, mirroring serverMetrics'
// pattern (the event counters live in obs.FleetMetrics).
func newFleetCollectors(r *obs.Registry, s *Server) {
	r.GaugeFunc("qlecd_fleet_cells_pending", "Cells awaiting a lease in the local pool.",
		func() float64 { p, _, _ := s.fleet.table.Stats(); return float64(p) })
	r.GaugeFunc("qlecd_fleet_cells_leased", "Cells currently out on lease from the local pool.",
		func() float64 { _, l, _ := s.fleet.table.Stats(); return float64(l) })
	r.CounterFunc("qlecd_fleet_lease_expiries_total", "Leases that expired and returned their cell to the pool.",
		func() float64 { _, _, e := s.fleet.table.Stats(); return float64(e) })
	r.GaugeFunc("qlecd_fleet_peers_ready", "Fleet peers currently passing readiness probes (self included).",
		func() float64 {
			n := 0
			for _, p := range s.fleet.members.Peers() {
				if p.Ready {
					n++
				}
			}
			return float64(n)
		})
	r.GaugeFunc("qlecd_batches_open", "Batches not yet in a terminal state.",
		func() float64 { return float64(s.openBatches()) })
	r.GaugeFunc("qlecd_fleet_scale_recommendation",
		"Autoscale advisor recommendation: peers to add (positive) or remove (negative); 0 when satisfied or disabled.",
		func() float64 { return float64(s.fleet.advisor.Current().Delta) })
}

// defaultHistory is the default FIFO cap on retained per-job trace
// recorders and audit artifacts; Options.TraceHistory/AuditHistory
// raise or lower it per deployment.
const defaultHistory = 64

// traceTable is the bounded per-job trace store behind
// GET /v1/jobs/{id}/trace; older traces age out FIFO once their cap is
// reached.
type traceTable struct {
	mu    sync.Mutex
	byJob map[string]*obs.TraceRecorder
	order []string
	max   int
}

func newTraceTable(max int) *traceTable {
	if max <= 0 {
		max = defaultHistory
	}
	return &traceTable{byJob: make(map[string]*obs.TraceRecorder), max: max}
}

func (t *traceTable) put(id string, rec *obs.TraceRecorder) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.byJob[id]; !ok {
		t.order = append(t.order, id)
	}
	t.byJob[id] = rec
	for len(t.order) > t.max {
		delete(t.byJob, t.order[0])
		t.order = t.order[1:]
	}
}

func (t *traceTable) get(id string) *obs.TraceRecorder {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byJob[id]
}

func (t *traceTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byJob)
}

// serviceAuditEntries/serviceAuditDecisions size the per-job recorder
// rings below the package defaults: every retained artifact can be
// resident at once, so each is kept to a few megabytes. The summary
// report still reflects every entry — only the raw streams truncate.
const (
	serviceAuditEntries   = 1 << 14
	serviceAuditDecisions = 1 << 12
)

// auditTable is the bounded per-job artifact store behind
// GET /v1/jobs/{id}/audit; like traces, older artifacts age out FIFO.
type auditTable struct {
	mu    sync.Mutex
	byJob map[string]*audit.Artifact
	order []string
	max   int
}

func newAuditTable(max int) *auditTable {
	if max <= 0 {
		max = defaultHistory
	}
	return &auditTable{byJob: make(map[string]*audit.Artifact), max: max}
}

func (t *auditTable) put(id string, a *audit.Artifact) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.byJob[id]; !ok {
		t.order = append(t.order, id)
	}
	t.byJob[id] = a
	for len(t.order) > t.max {
		delete(t.byJob, t.order[0])
		t.order = t.order[1:]
	}
}

func (t *auditTable) get(id string) *audit.Artifact {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byJob[id]
}

func (t *auditTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byJob)
}
