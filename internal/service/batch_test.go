package service_test

// Batch API tests: POST /v1/batches end to end against the local cell
// pool (fleet mode off — the scheduler is the same code either way),
// covering cross-config dedupe, the aggregate SSE stream, validation,
// and crash-resume.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"qlec/internal/service"
	"qlec/internal/service/client"
)

func batchRequest(rounds int) service.Request {
	cfg := tinyCfg()
	cfg.Rounds = rounds
	return oneRequest(cfg)
}

// TestBatchDedupeAndEvents: a batch with duplicate configs executes
// each distinct config once, answers already-cached configs without
// scheduling anything, and rolls the whole run up on one SSE stream.
func TestBatchDedupeAndEvents(t *testing.T) {
	var runs atomic.Int64
	_, cl := newTestServer(t, service.Options{
		Workers: 2,
		Run: func(ctx context.Context, req service.Request, publish func(service.Event)) (*service.ResultEnvelope, error) {
			runs.Add(1)
			return &service.ResultEnvelope{Kind: req.Kind}, nil
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Pre-compute one config through the job API so the batch sees it as
	// a cache hit.
	cached := batchRequest(9)
	j, err := cl.Submit(ctx, cached)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, j.ID, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("pre-computation ran %d times, want 1", got)
	}

	// A, A, B, cached: four configs, two of them fresh work.
	b, err := cl.SubmitBatch(ctx, []service.Request{
		batchRequest(3), batchRequest(3), batchRequest(5), cached,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Configs) != 4 || b.State != service.StateRunning {
		t.Fatalf("submitted batch = %+v, want 4 running configs", b)
	}

	var events []service.Event
	if err := cl.BatchEvents(ctx, b.ID, func(e service.Event) bool {
		events = append(events, e)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	last := events[len(events)-1]
	if last.Type != service.EventState || last.State != service.StateDone {
		t.Fatalf("last batch event = %+v, want terminal done", last)
	}
	configEvents := 0
	for _, e := range events {
		if e.Type == service.EventConfig {
			configEvents++
			if e.Config.State != service.StateDone {
				t.Errorf("config %d finished %s (error %q), want done", e.Config.Index, e.Config.State, e.Config.Error)
			}
		}
	}
	if configEvents != 4 {
		t.Errorf("stream carried %d config events, want 4", configEvents)
	}

	fin, err := cl.Batch(ctx, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != service.StateDone || fin.ConfigsDone != 4 || fin.Failed != 0 {
		t.Fatalf("batch = %+v, want done 4/0", fin)
	}
	if !fin.Configs[3].CacheHit {
		t.Error("pre-computed config not marked as a cache hit")
	}
	// The duplicate pair shared one cell; the cached config scheduled
	// nothing. Total fresh executions: A once + B once.
	if got := runs.Load(); got != 3 {
		t.Errorf("simulations ran %d times, want 3 (dedupe failed)", got)
	}

	list, err := cl.Batches(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != b.ID {
		t.Fatalf("batch list = %+v, want exactly %s", list, b.ID)
	}
}

// TestBatchValidation: one invalid config rejects the whole batch with
// its index; an empty batch is rejected too.
func TestBatchValidation(t *testing.T) {
	_, cl := newTestServer(t, service.Options{Workers: 1})
	ctx := context.Background()

	bad := batchRequest(3)
	bad.Lambda = 0 // KindOne requires a positive lambda
	_, err := cl.SubmitBatch(ctx, []service.Request{batchRequest(2), bad})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("invalid batch = %v, want 400", err)
	}
	if !strings.Contains(apiErr.Message, "config 1") {
		t.Errorf("error %q does not name the offending config index", apiErr.Message)
	}

	_, err = cl.SubmitBatch(ctx, nil)
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("empty batch = %v, want 400", err)
	}
}

// TestBatchResume: a batch interrupted by shutdown persists as running
// and completes on the next start from the same data directory.
func TestBatchResume(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{}, 4)
	srv1, err := service.New(service.Options{
		DataDir: dir,
		Workers: 1,
		Run: func(ctx context.Context, req service.Request, publish func(service.Event)) (*service.ResultEnvelope, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-ctx.Done() // hold the cell until shutdown interrupts it
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	cl1 := client.New(ts1.URL, client.WithRetries(0))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	b, err := cl1.SubmitBatch(ctx, []service.Request{batchRequest(3), batchRequest(5)})
	if err != nil {
		t.Fatal(err)
	}
	<-started // an executor is holding a cell; the batch is mid-flight
	srv1.Close()
	ts1.Close()

	// Second process, same directory, working run function: the batch
	// must resume and finish.
	var runs atomic.Int64
	srv2, err := service.New(service.Options{
		DataDir: dir,
		Workers: 1,
		Run: func(ctx context.Context, req service.Request, publish func(service.Event)) (*service.ResultEnvelope, error) {
			runs.Add(1)
			return &service.ResultEnvelope{Kind: req.Kind}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		srv2.Close()
		ts2.Close()
	})
	cl2 := client.New(ts2.URL, client.WithRetries(0))

	waitFor(t, func() bool {
		fin, err := cl2.Batch(ctx, b.ID)
		return err == nil && fin.State == service.StateDone
	}, "interrupted batch never resumed to completion")
	fin, err := cl2.Batch(ctx, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.ConfigsDone != 2 || fin.Failed != 0 {
		t.Fatalf("resumed batch = %+v, want 2 configs done, 0 failed", fin)
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("resume ran %d simulations, want 2 (nothing finished pre-restart)", got)
	}
}
