package service

import (
	"testing"
	"time"

	"qlec/internal/fleet"
)

// TestScaleFlipAutoCapture: the advisor's recommendation flipping from
// "hold" to "add peers" snapshots cpu+heap profiles automatically,
// tagged with the trigger reason, and the min-gap rate limit swallows
// an immediate second flip.
func TestScaleFlipAutoCapture(t *testing.T) {
	s, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.autoProf.SetCPUDuration(150 * time.Millisecond)

	// prev > 0 or a non-positive delta is not a flip: no capture.
	s.fleet.noteScaleFlip(1, fleet.Advice{Delta: 2})
	s.fleet.noteScaleFlip(0, fleet.Advice{Delta: 0})
	s.autoProf.Wait()
	if n := s.profiles.Len(); n != 0 {
		t.Fatalf("%d profiles captured without a scale-up flip, want 0", n)
	}

	s.fleet.noteScaleFlip(0, fleet.Advice{Delta: 2, Reason: "queue-wait burn"})
	s.autoProf.Wait()
	arts := s.profiles.List()
	if len(arts) != 2 {
		t.Fatalf("flip captured %d profiles, want 2 (cpu+heap)", len(arts))
	}
	kinds := map[string]bool{}
	for _, a := range arts {
		if a.Reason != "scale-up" {
			t.Errorf("artifact %s reason = %q, want scale-up", a.ID, a.Reason)
		}
		if a.SizeBytes == 0 {
			t.Errorf("artifact %s (%s) is empty", a.ID, a.Kind)
		}
		kinds[a.Kind] = true
	}
	if !kinds["cpu"] || !kinds["heap"] {
		t.Errorf("captured kinds = %v, want cpu and heap", kinds)
	}

	// A second flip inside the min gap is deduped.
	s.fleet.noteScaleFlip(0, fleet.Advice{Delta: 3, Reason: "still burning"})
	s.autoProf.Wait()
	if n := s.profiles.Len(); n != 2 {
		t.Errorf("rate-limited flip grew the store to %d artifacts, want 2", n)
	}
}

// TestAutoCaptureDisabled: a negative min gap disables the auto
// capturer entirely; flips are recorded nowhere and nothing panics.
func TestAutoCaptureDisabled(t *testing.T) {
	s, err := New(Options{Workers: 1, AutoProfileMinGap: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.autoProf != nil {
		t.Fatal("auto capturer constructed despite a negative min gap")
	}
	s.fleet.noteScaleFlip(0, fleet.Advice{Delta: 2})
	if n := s.profiles.Len(); n != 0 {
		t.Errorf("%d profiles captured with auto-capture disabled, want 0", n)
	}
}
