package service

import (
	"context"
	"fmt"
	"time"

	"qlec/internal/audit"
	"qlec/internal/energy"
	"qlec/internal/experiment"
	"qlec/internal/obs"
	"qlec/internal/sim"
)

// RunFunc executes one normalized, validated request and returns its
// result envelope. publish streams progress events (Seq is assigned by
// the hub, not the producer). Implementations must honour ctx — the
// server cancels it on DELETE and on hard shutdown.
type RunFunc func(ctx context.Context, req Request, publish func(Event)) (*ResultEnvelope, error)

// auditCtxKey carries the per-job flight recorder from the worker to
// Execute. A context key (rather than a Request field) keeps the
// recorder out of the job's serialized, content-addressed form, the
// same way the obs registry and trace recorder travel.
type auditCtxKey struct{}

func contextWithAudit(ctx context.Context, rec *audit.Recorder) context.Context {
	return context.WithValue(ctx, auditCtxKey{}, rec)
}

func auditFromContext(ctx context.Context) *audit.Recorder {
	rec, _ := ctx.Value(auditCtxKey{}).(*audit.Recorder)
	return rec
}

// Execute is the production RunFunc: it dispatches a request to the
// experiment harness entry point its kind names, wiring per-round
// progress (KindOne, via the sim.Observer hook) or per-cell sweep
// progress (the runner.Progress hook) into the event stream.
//
// When the context carries an obs registry/trace recorder (the qlecd
// worker installs both), KindOne rounds additionally feed live
// simulation gauges and per-round trace spans, and sweeps emit per-cell
// progress gauges and instants. Sweep cells run with observers stripped
// (the harness's sweepOptions), so round-level gauges are a KindOne
// feature by design — sweeps report at cell granularity.
func Execute(ctx context.Context, req Request, publish func(Event)) (*ResultEnvelope, error) {
	reg := obs.MetricsFromContext(ctx)
	rec := obs.TraceFromContext(ctx)
	cfg := req.Config
	env := &ResultEnvelope{Kind: req.Kind}
	switch req.Kind {
	case KindOne:
		observer := func(snap sim.RoundSnapshot) {
			publish(Event{Type: EventRound, Round: &RoundProgress{
				Round:     snap.Round,
				Alive:     snap.Alive,
				Generated: snap.Stats.Generated,
				Delivered: snap.Stats.Delivered,
				EnergyJ:   float64(snap.EnergySoFar),
				Done:      snap.Done,
			}})
		}
		if reg != nil {
			collector := obs.NewSimCollector(reg, string(req.Protocols[0]),
				cfg.InitialEnergy*energy.Joules(cfg.N), cfg.K)
			base := observer
			prev := time.Now()
			observer = func(snap sim.RoundSnapshot) {
				now := time.Now()
				collector.Observe(snap)
				rec.Span(fmt.Sprintf("round %d", snap.Round), "sim", prev, now,
					map[string]any{"alive": snap.Alive, "delivered": snap.Stats.Delivered})
				prev = now
				base(snap)
			}
		}
		cfg.Observer = observer
		cfg.Audit = auditFromContext(ctx)
		res, err := cfg.RunOne(ctx, req.Protocols[0], req.Lambda, req.Seed, req.Lifespan)
		if err != nil {
			return nil, err
		}
		env.One = res
	case KindCell:
		// One sweep cell: the replication pair exactly as the in-process
		// sweep path runs it (hooks are stripped by Normalize, matching
		// the harness's sweepOptions), so a cell executed here — possibly
		// on a different daemon — feeds the same Assemble step with the
		// same bytes.
		spec := experiment.CellSpec{
			Protocol: req.Protocols[0],
			Lambda:   req.Lambda,
			Seed:     req.Seed,
			Config:   cfg,
		}
		cell, err := spec.Run(ctx)
		if err != nil {
			return nil, err
		}
		env.Cell = &cell
	case KindFig3:
		cfg.Progress = sweepProgress(publish, reg, rec)
		out, err := cfg.RunFig3(ctx, req.Protocols)
		if err != nil {
			return nil, err
		}
		env.Fig3 = out
	case KindKSweep:
		cfg.Progress = sweepProgress(publish, reg, rec)
		out, err := cfg.RunKSweep(ctx, req.Protocols[0], req.Ks, req.Lambda)
		if err != nil {
			return nil, err
		}
		env.KSweep = out
	case KindNSweep:
		cfg.Progress = sweepProgress(publish, reg, rec)
		out, err := cfg.RunNSweep(ctx, req.Protocols[0], req.Ns, req.Lambda)
		if err != nil {
			return nil, err
		}
		env.NSweep = out
	default:
		return nil, &badKindError{kind: req.Kind}
	}
	return env, nil
}

func sweepProgress(publish func(Event), reg *obs.Registry, rec *obs.TraceRecorder) func(done, total int) {
	var doneG, totalG *obs.Gauge
	if reg != nil {
		doneG = reg.Gauge("qlec_sweep_cells_done",
			"Sweep cells completed in the currently executing sweep job.")
		totalG = reg.Gauge("qlec_sweep_cells_total",
			"Sweep cells in the currently executing sweep job.")
	}
	return func(done, total int) {
		publish(Event{Type: EventSweep, Sweep: &SweepProgress{Done: done, Total: total}})
		if reg != nil {
			doneG.Set(float64(done))
			totalG.Set(float64(total))
		}
		rec.Instant(fmt.Sprintf("cell %d/%d", done, total), "sweep",
			map[string]any{"done": done, "total": total})
	}
}

type badKindError struct{ kind JobKind }

func (e *badKindError) Error() string { return "service: unknown job kind " + string(e.kind) }
