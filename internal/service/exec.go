package service

import (
	"context"

	"qlec/internal/sim"
)

// RunFunc executes one normalized, validated request and returns its
// result envelope. publish streams progress events (Seq is assigned by
// the hub, not the producer). Implementations must honour ctx — the
// server cancels it on DELETE and on hard shutdown.
type RunFunc func(ctx context.Context, req Request, publish func(Event)) (*ResultEnvelope, error)

// Execute is the production RunFunc: it dispatches a request to the
// experiment harness entry point its kind names, wiring per-round
// progress (KindOne, via the sim.Observer hook) or per-cell sweep
// progress (the runner.Progress hook) into the event stream.
func Execute(ctx context.Context, req Request, publish func(Event)) (*ResultEnvelope, error) {
	cfg := req.Config
	env := &ResultEnvelope{Kind: req.Kind}
	switch req.Kind {
	case KindOne:
		cfg.Observer = func(snap sim.RoundSnapshot) {
			publish(Event{Type: EventRound, Round: &RoundProgress{
				Round:     snap.Round,
				Alive:     snap.Alive,
				Generated: snap.Stats.Generated,
				Delivered: snap.Stats.Delivered,
				EnergyJ:   float64(snap.EnergySoFar),
				Done:      snap.Done,
			}})
		}
		res, err := cfg.RunOne(ctx, req.Protocols[0], req.Lambda, req.Seed, req.Lifespan)
		if err != nil {
			return nil, err
		}
		env.One = res
	case KindFig3:
		cfg.Progress = sweepProgress(publish)
		out, err := cfg.RunFig3(ctx, req.Protocols)
		if err != nil {
			return nil, err
		}
		env.Fig3 = out
	case KindKSweep:
		cfg.Progress = sweepProgress(publish)
		out, err := cfg.RunKSweep(ctx, req.Protocols[0], req.Ks, req.Lambda)
		if err != nil {
			return nil, err
		}
		env.KSweep = out
	case KindNSweep:
		cfg.Progress = sweepProgress(publish)
		out, err := cfg.RunNSweep(ctx, req.Protocols[0], req.Ns, req.Lambda)
		if err != nil {
			return nil, err
		}
		env.NSweep = out
	default:
		return nil, &badKindError{kind: req.Kind}
	}
	return env, nil
}

func sweepProgress(publish func(Event)) func(done, total int) {
	return func(done, total int) {
		publish(Event{Type: EventSweep, Sweep: &SweepProgress{Done: done, Total: total}})
	}
}

type badKindError struct{ kind JobKind }

func (e *badKindError) Error() string { return "service: unknown job kind " + string(e.kind) }
