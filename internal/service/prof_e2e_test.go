package service_test

// Profiling & resource-attribution end-to-end tests: per-job usage
// bills in the job record and terminal SSE event, the profile capture
// API (standalone and fleet-wide), the runtime-sampler endpoint, and
// the headline cost-federation contract — the federated job-cost
// counters equal the per-peer sums exactly, because cost is counted
// once, where execution happened.

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"qlec/internal/experiment"
	"qlec/internal/obs"
	"qlec/internal/prof"
	"qlec/internal/service"
)

// httpPostJSON posts a JSON body and decodes the JSON response.
func httpPostJSON(t *testing.T, url string, body, out any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("POST %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestJobResourceAttribution: an executed job's record and terminal SSE
// event both carry its resource bill; a cache-hit resubmission carries
// none (a hit costs nothing new).
func TestJobResourceAttribution(t *testing.T) {
	_, cl := newTestServer(t, service.Options{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	req := oneRequest(tinyCfg())
	j, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	events := collectEvents(t, cl, j.ID)
	var terminal *service.Event
	for i := range events {
		if events[i].Type == service.EventState && events[i].State.Terminal() {
			terminal = &events[i]
		}
	}
	if terminal == nil {
		t.Fatal("no terminal event on the stream")
	}
	if terminal.Resources == nil || terminal.Resources.AllocBytes == 0 {
		t.Fatalf("terminal event resources = %+v, want a non-empty bill", terminal.Resources)
	}

	done, err := cl.Job(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Resources == nil {
		t.Fatal("executed job carries no resource bill")
	}
	if done.Resources.AllocBytes == 0 || done.Resources.WallSeconds <= 0 {
		t.Errorf("job resources = %+v, want positive allocBytes and wallSeconds", done.Resources)
	}

	// Identical resubmission: cache hit, no new execution, no bill.
	j2, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := cl.Wait(ctx, j2.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatalf("resubmission was not a cache hit: %+v", hit)
	}
	if hit.Resources != nil {
		t.Errorf("cache-hit job carries a resource bill: %+v", hit.Resources)
	}

	// The direct-run bill also fed the cost counters under the job's
	// kind and protocol.
	exp, err := obs.ParseExposition(bytes.NewReader(httpGet(t, testServerURL(t, cl)+"/metrics")))
	if err != nil {
		t.Fatal(err)
	}
	f := exp.Family("qlecd_job_alloc_bytes_total")
	if f == nil {
		t.Fatal("qlecd_job_alloc_bytes_total absent after an executed job")
	}
	found := false
	for _, s := range f.Samples {
		if s.Label("kind") == "one" && s.Label("protocol") == string(experiment.QLEC) && s.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no positive alloc-bytes sample for {kind=one, protocol=qlec}: %+v", f.Samples)
	}
}

// testServerURL digs the base URL back out of the typed client (it is
// the only thing the helpers return that knows it).
func testServerURL(t *testing.T, cl interface{ BaseURL() string }) string {
	t.Helper()
	return cl.BaseURL()
}

// TestProfileCaptureAPI: capture, list, fetch; FIFO retention caps the
// store and the gauge reports it.
func TestProfileCaptureAPI(t *testing.T) {
	_, cl := newTestServer(t, service.Options{Workers: 1, ProfileHistory: 2})
	base := testServerURL(t, cl)

	var ids []string
	for i := 0; i < 3; i++ {
		var resp struct {
			Profiles []prof.Artifact `json:"profiles"`
		}
		httpPostJSON(t, base+"/v1/profiles", map[string]any{"kind": "goroutine"}, &resp)
		if len(resp.Profiles) != 1 {
			t.Fatalf("capture %d returned %d profiles, want 1", i, len(resp.Profiles))
		}
		a := resp.Profiles[0]
		if a.Kind != "goroutine" || a.Format != "text" || a.SizeBytes == 0 {
			t.Fatalf("capture %d artifact = %+v, want non-empty goroutine text", i, a)
		}
		ids = append(ids, a.ID)
	}

	var list []prof.Artifact
	if err := json.Unmarshal(httpGet(t, base+"/v1/profiles"), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("store holds %d artifacts, want 2 (FIFO cap)", len(list))
	}
	if list[0].ID != ids[2] || list[1].ID != ids[1] {
		t.Errorf("list = [%s %s], want newest first [%s %s]", list[0].ID, list[1].ID, ids[2], ids[1])
	}

	// The evicted artifact 404s; "latest" resolves to the newest; raw
	// bytes parse as a goroutine text profile.
	if resp, err := http.Get(base + "/v1/profiles/" + ids[0]); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("evicted artifact GET = %d, want 404", resp.StatusCode)
		}
	}
	raw := httpGet(t, base+"/v1/profiles/latest")
	tp, err := prof.ParseText(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("fetched profile does not parse: %v", err)
	}
	if tp.Kind != "goroutine" || len(tp.Entries) == 0 {
		t.Errorf("parsed profile kind=%q entries=%d, want goroutine with entries", tp.Kind, len(tp.Entries))
	}

	if !strings.Contains(string(httpGet(t, base+"/metrics")), "qlecd_profiles_held 2") {
		t.Error("qlecd_profiles_held gauge does not report 2 retained artifacts")
	}
}

// TestRuntimeEndpoint: /v1/runtime answers even with sampling disabled
// (one on-demand sample), and with sampling on the trend accumulates.
func TestRuntimeEndpoint(t *testing.T) {
	_, cl := newTestServer(t, service.Options{
		Workers:               1,
		RuntimeSampleInterval: 5 * time.Millisecond,
	})
	base := testServerURL(t, cl)
	waitFor(t, func() bool {
		var trend struct {
			IntervalSeconds float64              `json:"intervalSeconds"`
			Samples         []prof.RuntimeSample `json:"samples"`
		}
		if err := json.Unmarshal(httpGet(t, base+"/v1/runtime"), &trend); err != nil {
			t.Fatal(err)
		}
		return trend.IntervalSeconds > 0 && len(trend.Samples) >= 3 &&
			trend.Samples[0].HeapLiveBytes > 0 && trend.Samples[0].Goroutines > 0
	}, "runtime trend never accumulated samples")

	// The sampler also exports the qlecd_runtime_* gauge family.
	metrics := string(httpGet(t, base+"/metrics"))
	for _, name := range []string{
		"qlecd_runtime_heap_live_bytes",
		"qlecd_runtime_goroutines",
		"qlecd_runtime_sched_latency_seconds",
		"qlecd_runtime_gc_pause_seconds",
	} {
		if !strings.Contains(metrics, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}

// TestFleetCostFederation is the attribution headline: after a sweep
// runs across a 3-daemon fleet, the federated qlecd_job_*_total
// counters equal the per-peer sums — cost counted once, where the
// cells actually executed — and the coordinator's job record bills the
// whole sweep.
func TestFleetCostFederation(t *testing.T) {
	req := service.Request{
		Kind:      service.KindFig3,
		Config:    fleetSweepCfg(),
		Protocols: []experiment.ProtocolID{experiment.QLEC},
	}
	n1 := startFleetNode(t, service.Options{Workers: 1}, service.FleetOptions{CellWorkers: 1})
	n2 := startFleetNode(t, service.Options{Workers: 1}, service.FleetOptions{Join: n1.url, CellWorkers: 1})
	n3 := startFleetNode(t, service.Options{Workers: 1}, service.FleetOptions{Join: n1.url, CellWorkers: 1})
	nodes := []*fleetNode{n1, n2, n3}
	waitForRoster(t, n1, n2, n3)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	j, err := n1.cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	done, err := n1.cl.Wait(ctx, j.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != service.StateDone {
		t.Fatalf("fleet job %s (error %q), want done", done.State, done.Error)
	}
	if done.Resources == nil || done.Resources.AllocBytes == 0 {
		t.Fatalf("distributed sweep job resources = %+v, want the summed cell bills", done.Resources)
	}

	for _, name := range []string{"qlecd_job_alloc_bytes_total", "qlecd_job_cpu_seconds_total"} {
		perPeer := 0.0
		series := 0
		for _, n := range nodes {
			exp, err := obs.ParseExposition(bytes.NewReader(httpGet(t, n.url+"/metrics")))
			if err != nil {
				t.Fatal(err)
			}
			f := exp.Family(name)
			if f == nil {
				continue
			}
			for _, s := range f.Samples {
				if s.Label("kind") == "cell" && s.Label("protocol") != string(experiment.QLEC) {
					t.Errorf("%s cell sample under protocol %q, want %s", name, s.Label("protocol"), experiment.QLEC)
				}
				perPeer += s.Value
				series++
			}
		}
		fexp, err := obs.ParseExposition(bytes.NewReader(httpGet(t, n1.url+"/metrics/federate")))
		if err != nil {
			t.Fatal(err)
		}
		fed := 0.0
		if f := fexp.Family(name); f != nil {
			for _, s := range f.Samples {
				fed += s.Value
			}
		}
		if math.Abs(fed-perPeer) > 1e-9*math.Max(1, math.Abs(perPeer)) {
			t.Errorf("federated %s = %g, per-peer sum = %g, want equal", name, fed, perPeer)
		}
		if name == "qlecd_job_alloc_bytes_total" && (perPeer <= 0 || series == 0) {
			t.Errorf("per-peer %s sum = %g over %d series, want positive (cells executed somewhere)", name, perPeer, series)
		}
	}
}

// TestFleetProfileCapture: one capture request with fleet=true
// snapshots every ready daemon; the merged listing shows artifacts
// held on distinct instances.
func TestFleetProfileCapture(t *testing.T) {
	n1 := startFleetNode(t, service.Options{Workers: 1}, service.FleetOptions{})
	n2 := startFleetNode(t, service.Options{Workers: 1}, service.FleetOptions{Join: n1.url})
	waitForRoster(t, n1, n2)

	var resp struct {
		Profiles []prof.Artifact   `json:"profiles"`
		Errors   map[string]string `json:"errors"`
	}
	httpPostJSON(t, n1.url+"/v1/profiles",
		map[string]any{"kind": "goroutine", "fleet": true}, &resp)
	if len(resp.Errors) > 0 {
		t.Fatalf("fleet capture errors: %v", resp.Errors)
	}
	instances := map[string]bool{}
	for _, a := range resp.Profiles {
		if a.SizeBytes == 0 {
			t.Errorf("empty capture %s on %s", a.ID, a.Instance)
		}
		instances[a.Instance] = true
	}
	if len(instances) < 2 {
		t.Fatalf("fleet capture reached %d instances (%v), want >= 2", len(instances), instances)
	}

	var list []prof.Artifact
	if err := json.Unmarshal(httpGet(t, n1.url+"/v1/profiles?fleet=1"), &list); err != nil {
		t.Fatal(err)
	}
	listed := map[string]bool{}
	for _, a := range list {
		listed[a.Instance] = true
	}
	if len(listed) < 2 {
		t.Errorf("merged listing covers %d instances (%v), want >= 2", len(listed), listed)
	}
	// And the remote artifact is fetchable from the daemon that holds it.
	for _, a := range resp.Profiles {
		if a.Instance == n2.url {
			raw := httpGet(t, n2.url+"/v1/profiles/"+a.ID)
			if _, err := prof.ParseText(bytes.NewReader(raw)); err != nil {
				t.Errorf("peer-held artifact %s does not parse: %v", a.ID, err)
			}
		}
	}
}
