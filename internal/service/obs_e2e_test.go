package service_test

// Fleet observability end-to-end tests: cross-peer trace propagation,
// the federation endpoint and the autoscale advisor, all over real
// listeners under the race detector (same harness as fleet_e2e_test.go).

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"qlec/internal/experiment"
	"qlec/internal/fleet"
	"qlec/internal/obs"
	"qlec/internal/service"
	"qlec/internal/service/client"
)

// httpGet fetches a URL raw — for the endpoints the typed client does
// not wrap (fleet-internal trace exchange, federation, merged traces).
func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, bytes.TrimSpace(body))
	}
	return body
}

// TestFleetTraceAndFederation is the observability headline: one traced
// sweep across a 3-daemon fleet leaves spans of a single trace ID on at
// least two peers (visible raw per peer and merged into one multi-lane
// Chrome trace), and /metrics/federate serves a lint-clean merged
// exposition whose summed completion counter matches the per-peer sum.
func TestFleetTraceAndFederation(t *testing.T) {
	req := service.Request{
		Kind:      service.KindFig3,
		Config:    fleetSweepCfg(),
		Protocols: []experiment.ProtocolID{experiment.QLEC, experiment.LEACH},
	}
	n1 := startFleetNode(t, service.Options{Workers: 1}, service.FleetOptions{CellWorkers: 1})
	n2 := startFleetNode(t, service.Options{Workers: 1}, service.FleetOptions{Join: n1.url, CellWorkers: 1})
	n3 := startFleetNode(t, service.Options{Workers: 1}, service.FleetOptions{Join: n1.url, CellWorkers: 1})
	nodes := []*fleetNode{n1, n2, n3}
	waitForRoster(t, n1, n2, n3)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	j, err := n1.cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if j.TraceID == "" {
		t.Fatal("submitted job carries no trace ID")
	}
	done, err := n1.cl.Wait(ctx, j.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != service.StateDone {
		t.Fatalf("fleet job %s (error %q), want done", done.State, done.Error)
	}

	// Raw per-peer span exchange: one trace ID, spans held on >= 2 peers,
	// and somewhere in the fleet a cell ran as stolen work under it.
	peersWithSpans, sawStolen := 0, false
	for _, n := range nodes {
		var spans []obs.SpanRecord
		if err := json.Unmarshal(httpGet(t, n.url+"/v1/fleet/trace/"+j.TraceID), &spans); err != nil {
			t.Fatal(err)
		}
		if len(spans) > 0 {
			peersWithSpans++
		}
		for _, sp := range spans {
			if sp.TraceID != j.TraceID {
				t.Errorf("peer %s holds span %q under trace %s, want %s", n.url, sp.Name, sp.TraceID, j.TraceID)
			}
			if src, _ := sp.Args["source"].(string); src == "stolen" {
				sawStolen = true
			}
		}
	}
	if peersWithSpans < 2 {
		t.Errorf("trace %s has spans on %d peers, want >= 2", j.TraceID, peersWithSpans)
	}
	if !sawStolen {
		t.Error("no cell span ran as stolen work — the trace never crossed a steal")
	}

	// Merged Chrome view: the coordinator collects every peer's spans
	// into one document with a lane (pid + process_name) per daemon.
	var doc struct {
		TraceEvents []struct {
			Name  string          `json:"name"`
			Phase string          `json:"ph"`
			PID   int             `json:"pid"`
			Args  json.RawMessage `json:"args,omitempty"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(httpGet(t, n1.url+"/v1/jobs/"+j.ID+"/trace"), &doc); err != nil {
		t.Fatal(err)
	}
	lanes := map[int]bool{}
	for _, e := range doc.TraceEvents {
		if e.Phase == "M" && e.Name == "process_name" {
			lanes[e.PID] = true
		}
	}
	if len(lanes) < 2 {
		t.Errorf("merged trace has %d lanes, want >= 2 (one per contributing daemon)", len(lanes))
	}

	// Federation: lint-clean merged exposition; the summed completion
	// counter equals the per-peer sum; every peer is reported up.
	fed := httpGet(t, n1.url+"/metrics/federate")
	if err := obs.LintExposition(bytes.NewReader(fed)); err != nil {
		t.Fatalf("federated exposition fails lint: %v", err)
	}
	fexp, err := obs.ParseExposition(bytes.NewReader(fed))
	if err != nil {
		t.Fatal(err)
	}
	ff := fexp.Family("qlecd_fleet_cells_completed_total")
	if ff == nil || len(ff.Samples) != 1 {
		t.Fatalf("federated completion counter = %+v, want one summed series", ff)
	}
	perPeerSum := 0.0
	for _, n := range nodes {
		exp, err := obs.ParseExposition(bytes.NewReader(httpGet(t, n.url+"/metrics")))
		if err != nil {
			t.Fatal(err)
		}
		if f := exp.Family("qlecd_fleet_cells_completed_total"); f != nil {
			for _, s := range f.Samples {
				perPeerSum += s.Value
			}
		}
	}
	if got := ff.Samples[0].Value; got != perPeerSum || got <= 0 {
		t.Errorf("federated cells_completed = %g, per-peer sum = %g, want equal and positive", got, perPeerSum)
	}
	up := fexp.Family("qlecd_federate_peer_up")
	if up == nil || len(up.Samples) != len(nodes) {
		t.Fatalf("peer-up gauge = %+v, want %d instances", up, len(nodes))
	}
	for _, s := range up.Samples {
		if s.Value != 1 {
			t.Errorf("peer %s reported down in a healthy fleet", s.Label(obs.InstanceLabel))
		}
	}
}

// TestFleetAdvisorFlip drives queue wait past a tiny SLO and watches
// the published recommendation flip positive, then — once the queue
// drains and the hysteresis window passes — return to zero.
func TestFleetAdvisorFlip(t *testing.T) {
	n := startFleetNode(t, service.Options{
		Workers: 1,
		Run: func(ctx context.Context, req service.Request, publish func(service.Event)) (*service.ResultEnvelope, error) {
			select {
			case <-time.After(30 * time.Millisecond):
				return &service.ResultEnvelope{Kind: req.Kind}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}, service.FleetOptions{
		AdvisorInterval: 10 * time.Millisecond,
		Advisor: fleet.AdvisorConfig{
			SLO:        5 * time.Millisecond,
			FastWindow: 40 * time.Millisecond,
			SlowWindow: 80 * time.Millisecond,
			Hysteresis: 100 * time.Millisecond,
		},
	})

	advice := func() *fleet.Advice {
		var st fleet.Status
		if err := json.Unmarshal(httpGet(t, n.url+"/v1/fleet"), &st); err != nil {
			t.Fatal(err)
		}
		return st.Advice
	}
	if advice() == nil {
		t.Fatal("/v1/fleet carries no advice with an SLO configured")
	}

	// One worker, 30ms per job: everything behind the head waits far
	// over the 5ms SLO.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		cfg := tinyCfg()
		cfg.Rounds = 2 + i
		j, err := n.cl.Submit(ctx, oneRequest(cfg))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	waitFor(t, func() bool {
		a := advice()
		return a != nil && a.Delta > 0
	}, "advisor never recommended scaling up under sustained over-SLO queue wait")

	for _, id := range ids {
		if _, err := n.cl.Wait(ctx, id, 5*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	// Drained: burn rates fall to zero, and after the hysteresis hold
	// the recommendation must relax back to steady.
	waitFor(t, func() bool {
		a := advice()
		return a != nil && a.Delta == 0
	}, "recommendation never relaxed to zero after the queue drained")
	if a := advice(); a != nil && a.Delta != 0 {
		t.Fatalf("delta = %d after drain, want 0 (reason %q)", a.Delta, a.Reason)
	}
}

// TestFederateStandalone: a daemon with no fleet configured still
// serves /metrics/federate — a lint-clean fleet of one.
func TestFederateStandalone(t *testing.T) {
	srv, err := service.New(service.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Close()
		ts.Close()
	})
	cl := client.New(ts.URL, client.WithRetries(0))

	ctx := context.Background()
	j, err := cl.Submit(ctx, oneRequest(tinyCfg()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, j.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	fed := httpGet(t, ts.URL+"/metrics/federate")
	if err := obs.LintExposition(bytes.NewReader(fed)); err != nil {
		t.Fatalf("standalone federation fails lint: %v", err)
	}
	exp, err := obs.ParseExposition(bytes.NewReader(fed))
	if err != nil {
		t.Fatal(err)
	}
	up := exp.Family("qlecd_federate_peer_up")
	if up == nil || len(up.Samples) != 1 {
		t.Fatalf("standalone peer-up = %+v, want exactly one instance", up)
	}
	if g := exp.Family("qlecd_queue_depth"); g == nil || g.Samples[0].Label(obs.InstanceLabel) == "" {
		t.Error("merged gauges missing their instance label in the standalone case")
	}
}
