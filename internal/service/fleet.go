package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"qlec/internal/fleet"
	"qlec/internal/obs"
	"qlec/internal/prof"
)

// FleetOptions configures a daemon's membership in a qlecd fleet
// (DESIGN.md §14). The zero value runs standalone: the cell scheduler
// still powers batches and sweep decomposition locally, but no peer
// traffic happens.
type FleetOptions struct {
	// Self is this daemon's advertised base URL (http://host:port).
	// Setting it enables fleet mode; required when Peers or Join is set.
	Self string
	// Peers lists peer base URLs known at startup.
	Peers []string
	// Join is an existing peer to join through: the daemon announces
	// itself there and adopts the returned roster.
	Join string
	// CellWorkers sizes the cell-executor pool; default Workers.
	CellWorkers int
	// LeaseTTL is how long a granted cell may run between renewals
	// before it returns to the pool; default 15s.
	LeaseTTL time.Duration
	// StealInterval is the idle executor's poll cadence; default 200ms.
	StealInterval time.Duration
	// ProbeInterval is the peer health-probe cadence; default 1s.
	ProbeInterval time.Duration
	// PeerTimeout bounds each peer HTTP call; default 10s.
	PeerTimeout time.Duration
	// Advisor configures the autoscale advisor (zero SLO = disabled).
	Advisor fleet.AdvisorConfig
	// AdvisorInterval is the advisor's sampling cadence; default 1s.
	AdvisorInterval time.Duration
	// ScaleHook, when set, is a shell command run (via `sh -c`) whenever
	// the advisor's recommendation changes to a non-zero delta. The
	// recommendation is exported in QLECD_SCALE_DELTA / QLECD_SCALE_REASON
	// environment variables; booting or retiring peers stays the hook's
	// business.
	ScaleHook string
}

// fleetRuntime is the per-daemon fleet engine: the consistent-hash
// membership, the coordinator-side cell pool, the executor pool that
// drains it (and steals from peers when it runs dry), and the futures
// that let sweep jobs and batches wait for cells wherever they run.
type fleetRuntime struct {
	s       *Server
	self    string
	enabled bool
	members *fleet.Membership
	table   *fleet.Table
	peers   *fleet.Client

	ttl         time.Duration
	stealEvery  time.Duration
	cellWorkers int
	joinTarget  string

	mu      sync.Mutex
	futures map[string]*cellFuture

	fm       *obs.FleetMetrics
	stealIdx uint64 // round-robin cursor over ready peers; guarded by mu

	// spans holds the spans this daemon recorded into distributed
	// traces; peers collect them via GET /v1/fleet/trace/{traceID}.
	spans *obs.TraceStore

	advisor       *fleet.Advisor
	advisorEvery  time.Duration
	scaleHook     string
	lastHookDelta int // guarded by mu

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// cellFuture is one scheduled cell's pending result. done closes after
// env/err are set; refs counts the jobs/batches waiting, so abandoned
// cells (every waiter cancelled) can be withdrawn from the pool.
type cellFuture struct {
	hash string
	done chan struct{}
	env  *ResultEnvelope
	err  error
	// usage is the executing daemon's resource bill for the cell (nil
	// when it resolved from a cache); set before done closes.
	usage *prof.Usage
	refs  int // guarded by runtime mu
}

func newFleetRuntime(s *Server, opt FleetOptions) (*fleetRuntime, error) {
	if opt.Self == "" && (len(opt.Peers) > 0 || opt.Join != "") {
		return nil, errors.New("service: fleet peers configured without a self URL (set -self)")
	}
	if opt.CellWorkers <= 0 {
		opt.CellWorkers = s.opt.Workers
	}
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = 15 * time.Second
	}
	if opt.StealInterval <= 0 {
		opt.StealInterval = 200 * time.Millisecond
	}
	if opt.ProbeInterval <= 0 {
		opt.ProbeInterval = time.Second
	}
	self := opt.Self
	if self == "" {
		self = "local"
	}
	if opt.AdvisorInterval <= 0 {
		opt.AdvisorInterval = time.Second
	}
	r := &fleetRuntime{
		s:            s,
		self:         self,
		enabled:      opt.Self != "",
		table:        fleet.NewTable(),
		peers:        fleet.NewClient(opt.PeerTimeout),
		ttl:          opt.LeaseTTL,
		stealEvery:   opt.StealInterval,
		cellWorkers:  opt.CellWorkers,
		joinTarget:   opt.Join,
		futures:      make(map[string]*cellFuture),
		fm:           obs.NewFleetMetrics(s.reg),
		spans:        obs.NewTraceStore(self, 0, 0),
		advisor:      fleet.NewAdvisor(opt.Advisor),
		advisorEvery: opt.AdvisorInterval,
		scaleHook:    opt.ScaleHook,
		stop:         make(chan struct{}),
	}
	probe := fleet.ProbeFunc(nil)
	if r.enabled {
		probe = func(ctx context.Context, peer string) error {
			return r.peers.Ready(ctx, peer)
		}
	}
	r.members = fleet.NewMembership(self, probe, opt.ProbeInterval)
	for _, p := range opt.Peers {
		r.members.Add(p)
	}
	return r, nil
}

// start launches the executor pool, the lease-expiry sweeper and (in
// fleet mode) the membership prober and the join announcement.
func (r *fleetRuntime) start() {
	for i := 0; i < r.cellWorkers; i++ {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.executorLoop()
		}()
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.expiryLoop()
	}()
	if r.advisor.Enabled() {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.advisorLoop()
		}()
	}
	if r.enabled {
		r.members.Start()
		if r.joinTarget != "" {
			r.wg.Add(1)
			go func() {
				defer r.wg.Done()
				r.join()
			}()
		}
	}
}

// stopWork halts executors, the sweeper and the prober. The server
// calls it after its own workers and batch goroutines have drained —
// they are the executors' consumers, so this order can never strand a
// waiter.
func (r *fleetRuntime) stopWork() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.members.Stop()
	r.wg.Wait()
}

// join announces self through the configured join target, adopts its
// roster, and announces self to every adopted peer so the whole fleet
// converges on one membership without a central registry. Retries for a
// while — daemons in one fleet typically boot together.
func (r *fleetRuntime) join() {
	for attempt := 0; attempt < 30; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		st, err := r.peers.Join(ctx, r.joinTarget, r.self)
		cancel()
		if err == nil {
			r.members.Add(r.joinTarget)
			r.members.MarkReady(r.joinTarget, true, "")
			for _, p := range st.Peers {
				if p.ID == r.self || p.ID == r.joinTarget {
					continue
				}
				r.members.Add(p.ID)
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				if _, err := r.peers.Join(ctx, p.ID, r.self); err != nil {
					r.s.log.Warn("fleet: transitive join", "peer", p.ID, "err", err)
				}
				cancel()
			}
			r.s.log.Info("fleet: joined", "via", r.joinTarget, "peers", len(st.Peers))
			return
		}
		r.s.log.Warn("fleet: join attempt failed", "via", r.joinTarget, "err", err)
		select {
		case <-r.stop:
			return
		case <-r.s.hardCtx.Done():
			return
		case <-time.After(time.Second):
		}
	}
	r.s.log.Error("fleet: giving up joining", "via", r.joinTarget)
}

// schedule registers interest in a cell: an existing future gains a
// waiter, otherwise the cell enters the pool and a future is created.
// trace is the scheduling job's traceparent, carried with the cell so
// its executor joins the same distributed trace ("" for untraced work).
func (r *fleetRuntime) schedule(req Request, hash, trace string) (*cellFuture, error) {
	r.mu.Lock()
	if f := r.futures[hash]; f != nil {
		f.refs++
		r.mu.Unlock()
		return f, nil
	}
	f := &cellFuture{hash: hash, done: make(chan struct{}), refs: 1}
	r.futures[hash] = f
	r.mu.Unlock()
	spec, err := json.Marshal(req)
	if err != nil {
		r.mu.Lock()
		delete(r.futures, hash)
		r.mu.Unlock()
		return nil, fmt.Errorf("service: encode cell spec: %w", err)
	}
	if r.table.Offer(fleet.Cell{Hash: hash, Spec: spec, Trace: trace}) {
		if sc, ok := obs.ParseTraceParent(trace); ok {
			r.spans.Instant(sc, "cell pooled "+shortHash(hash), "pool", map[string]any{"hash": hash})
		}
	}
	return f, nil
}

// shortHash abbreviates a content hash for span names.
func shortHash(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}

// release drops one waiter from a future; when the last waiter leaves
// before completion, the cell is withdrawn from the pool (a leased cell
// stays out — its result is still worth caching).
func (r *fleetRuntime) release(f *cellFuture) {
	r.mu.Lock()
	f.refs--
	gone := f.refs <= 0 && r.futures[f.hash] == f
	if gone {
		delete(r.futures, f.hash)
	}
	r.mu.Unlock()
	if gone {
		r.table.Withdraw(f.hash)
	}
}

// complete resolves a cell wherever it ran: the result is cached
// (content-addressed, persisted), the pool entry removed, and every
// waiter woken. errMsg reports execution failure; duplicate and
// unsolicited completions are no-ops beyond the (idempotent) cache put.
func (r *fleetRuntime) complete(hash string, env *ResultEnvelope, errMsg string, usage *prof.Usage) {
	if r.table.Complete(hash) {
		// First completion of a live cell under this coordinator: the
		// federated sum of this counter is the fleet's exact total.
		r.fm.CellsCompleted.Inc()
	}
	if env != nil && errMsg == "" {
		env.Hash = hash
		if err := r.s.cache.put(hash, env, true); err != nil {
			r.s.log.Error("fleet: cache cell result", "hash", hash, "err", err)
		}
	}
	r.mu.Lock()
	f := r.futures[hash]
	delete(r.futures, hash)
	r.mu.Unlock()
	if f == nil {
		return
	}
	f.env = env
	f.usage = usage
	if errMsg != "" {
		f.err = errors.New(errMsg)
	}
	close(f.done)
}

// executorLoop is one cell executor: drain the local pool, then steal
// from ready peers, then idle briefly.
func (r *fleetRuntime) executorLoop() {
	for {
		select {
		case <-r.stop:
			return
		case <-r.s.hardCtx.Done():
			return
		default:
		}
		if r.runOneCell() {
			continue
		}
		select {
		case <-r.stop:
			return
		case <-r.s.hardCtx.Done():
			return
		case <-time.After(r.stealEvery):
		}
	}
}

// runOneCell executes at most one cell (local first, stolen second) and
// reports whether it found work.
func (r *fleetRuntime) runOneCell() bool {
	if leases := r.table.Acquire(r.self, 1, r.ttl, time.Now()); len(leases) > 0 {
		r.fm.CellsExecuted.With("local").Inc()
		r.fm.CellWait.Observe(leases[0].Waited.Seconds())
		r.executeLocal(leases[0])
		return true
	}
	if !r.enabled || r.s.draining.Load() {
		r.fm.StealStarvation.Inc()
		return false
	}
	peer := r.nextStealTarget()
	if peer == "" {
		r.fm.StealStarvation.Inc()
		return false
	}
	grants, err := r.peers.Steal(r.s.hardCtx, peer, r.self, 1)
	if err != nil || len(grants) == 0 {
		r.fm.StealStarvation.Inc()
		return false
	}
	for _, g := range grants {
		r.fm.CellsStolenIn.Inc()
		r.fm.CellsExecuted.With("stolen").Inc()
		r.executeStolen(peer, g)
	}
	return true
}

// nextStealTarget round-robins over the ready peers.
func (r *fleetRuntime) nextStealTarget() string {
	ready := r.members.ReadyOthers()
	if len(ready) == 0 {
		return ""
	}
	r.mu.Lock()
	i := r.stealIdx % uint64(len(ready))
	r.stealIdx++
	r.mu.Unlock()
	return ready[i]
}

// cellSpan derives an executor-side span context from the cell's
// carried traceparent (zero context when the cell is untraced).
func cellSpan(c fleet.Cell) obs.SpanContext {
	if sc, ok := obs.ParseTraceParent(c.Trace); ok {
		return sc.Child()
	}
	return obs.SpanContext{}
}

// executeLocal runs one locally leased cell end to end, renewing the
// lease while it runs.
func (r *fleetRuntime) executeLocal(l fleet.Lease) {
	stopRenew := r.keepRenewed(func(now time.Time) bool {
		return r.table.Renew([]string{l.ID}, r.ttl, now) > 0
	})
	defer stopRenew()
	hash := l.Cell.Hash
	sc := cellSpan(l.Cell)
	ctx := obs.ContextWithSpan(r.s.hardCtx, sc)
	start := time.Now()
	env, usage, err := r.resolveOrRun(ctx, l.Cell)
	state := "done"
	if err != nil {
		state = "failed"
	}
	r.spans.Span(sc, "cell "+shortHash(hash), "cell", start, time.Now(),
		map[string]any{"source": "local", "state": state})
	if err != nil {
		if r.s.hardCtx.Err() != nil {
			return // shutdown: leave the cell to expiry/restart, not failure
		}
		r.complete(hash, nil, err.Error(), usage)
		return
	}
	r.complete(hash, env, "", usage)
	r.replicateToOwner(ctx, hash, env)
}

// executeStolen runs one cell leased from a peer and reports the result
// back. The thief also adopts the result into its own cache and pushes
// it to the ring owner, so the fleet converges on one copy per owner
// regardless of where the cell ran.
func (r *fleetRuntime) executeStolen(peer string, l fleet.Lease) {
	sc := cellSpan(l.Cell)
	spanCtx := obs.ContextWithSpan(r.s.hardCtx, sc)
	stopRenew := r.keepRenewed(func(now time.Time) bool {
		ctx, cancel := context.WithTimeout(spanCtx, r.ttl/2)
		defer cancel()
		n, err := r.peers.Renew(ctx, peer, fleet.RenewRequest{Worker: r.self, LeaseIDs: []string{l.ID}})
		if err == nil && n > 0 {
			r.spans.Instant(sc, "lease renew", "lease", map[string]any{"coordinator": peer})
			return true
		}
		return false
	})
	defer stopRenew()
	hash := l.Cell.Hash
	start := time.Now()
	env, usage, err := r.resolveOrRun(spanCtx, l.Cell)
	state := "done"
	if err != nil {
		state = "failed"
	}
	r.spans.Span(sc, "cell "+shortHash(hash), "cell", start, time.Now(),
		map[string]any{"source": "stolen", "coordinator": peer, "state": state})
	if err != nil && r.s.hardCtx.Err() != nil {
		return // shutdown: the peer's lease expires and the cell re-pools
	}
	// The thief's bill travels back so the coordinator's job/batch
	// rollups reflect true cost no matter where the cell ran.
	creq := fleet.CompleteRequest{Worker: r.self, LeaseID: l.ID, Hash: hash, Usage: usage}
	if err != nil {
		creq.Error = err.Error()
	} else {
		raw, merr := json.Marshal(env)
		if merr != nil {
			creq.Error = fmt.Sprintf("encode result: %v", merr)
		} else {
			creq.Result = raw
		}
		// Adopt and replicate regardless of whether the report lands —
		// the result is correct and content-addressed either way.
		if cerr := r.s.cache.put(hash, env, true); cerr != nil {
			r.s.log.Error("fleet: cache stolen cell", "hash", hash, "err", cerr)
		}
		r.replicateToOwner(spanCtx, hash, env)
	}
	for attempt, backoff := 0, 250*time.Millisecond; ; attempt++ {
		if err := r.peers.Complete(spanCtx, peer, creq); err == nil {
			return
		} else if attempt >= 3 || r.s.hardCtx.Err() != nil {
			r.s.log.Warn("fleet: report stolen cell", "peer", peer, "hash", hash, "err", err)
			return // the peer's lease expires and the cell re-pools there
		}
		select {
		case <-time.After(backoff):
		case <-r.s.hardCtx.Done():
			return
		}
		backoff *= 2
	}
}

// resolveOrRun answers a cell from the local cache, the ring owner's
// cache, or by executing it. ctx carries the cell's span context so
// downstream peer calls (proxy fetch, replication) stay on-trace.
// The usage bill is non-nil only when the cell actually executed here
// (cache and proxy resolutions cost nothing new); execution is
// bracketed and accounted to the kind="cell" cost counters on this
// daemon — the one that burned the cycles.
func (r *fleetRuntime) resolveOrRun(ctx context.Context, c fleet.Cell) (*ResultEnvelope, *prof.Usage, error) {
	if env, ok := r.s.cache.peek(c.Hash); ok {
		return env, nil, nil
	}
	if env, ok := r.proxyFetch(ctx, c.Hash); ok {
		return env, nil, nil
	}
	var req Request
	if err := json.Unmarshal(c.Spec, &req); err != nil {
		return nil, nil, fmt.Errorf("decode cell spec: %w", err)
	}
	req = req.Normalize()
	if err := req.Validate(); err != nil {
		return nil, nil, err
	}
	if r.s.opt.SimWorkers > 0 {
		req.Config.Workers = r.s.opt.SimWorkers
	}
	bracket := prof.Begin()
	env, err := r.s.opt.Run(obs.ContextWithMetrics(ctx, r.s.reg), req, func(Event) {})
	usage := bracket.EndWith(r.s.sampler)
	r.s.om.accountUsage("cell", protocolLabel(req), usage)
	if err != nil {
		return nil, &usage, err
	}
	if env == nil {
		env = &ResultEnvelope{Kind: req.Kind}
	}
	env.Hash = c.Hash
	return env, &usage, nil
}

// keepRenewed renews a lease at ttl/3 cadence until the returned stop
// function runs; it stops early if a renewal reports the lease dead.
func (r *fleetRuntime) keepRenewed(renew func(now time.Time) bool) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(r.ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-r.s.hardCtx.Done():
				return
			case now := <-t.C:
				if !renew(now) {
					return
				}
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// expiryLoop re-pools cells whose holder went quiet — the "peer died
// mid-cell" recovery path.
func (r *fleetRuntime) expiryLoop() {
	t := time.NewTicker(maxDuration(r.ttl/4, 50*time.Millisecond))
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-r.s.hardCtx.Done():
			return
		case now := <-t.C:
			if cells := r.table.ExpireDue(now); len(cells) > 0 {
				r.s.log.Warn("fleet: leases expired, cells re-pooled", "cells", len(cells))
			}
		}
	}
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// advisorLoop samples the daemon's load on a fixed cadence and feeds
// the autoscale advisor; recommendation changes to a non-zero delta
// fire the scale hook.
func (r *fleetRuntime) advisorLoop() {
	t := time.NewTicker(r.advisorEvery)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-r.s.hardCtx.Done():
			return
		case now := <-t.C:
			r.observeAdvisor(now)
		}
	}
}

// observeAdvisor takes one load sample: over-SLO counts come from the
// job queue-wait and fleet cell-wait histograms (an observation is over
// the SLO when it fell in a bucket above the SLO bound — SLOs between
// bucket bounds are conservatively rounded down).
func (r *fleetRuntime) observeAdvisor(now time.Time) {
	sloSec := r.advisor.SLO().Seconds()
	qw := r.s.om.queueWait.Snapshot()
	cw := r.fm.CellWait.Snapshot()
	pending, _, _ := r.table.Stats()
	ready := 1 // self
	if r.enabled {
		ready += len(r.members.ReadyOthers())
	}
	sample := fleet.Sample{
		At:          now,
		WaitCount:   qw.Count + cw.Count,
		WaitOverSLO: (qw.Count - qw.CountAtMost(sloSec)) + (cw.Count - cw.CountAtMost(sloSec)),
		Starved:     uint64(r.fm.StealStarvation.Value()),
		Backlog:     r.s.queue.depth() + pending,
		ReadyPeers:  ready,
		Workers:     r.s.opt.Workers + r.cellWorkers,
		BusyWorkers: int(r.s.om.busyWorkers.Value()),
	}
	prev := r.advisor.Current().Delta
	adv := r.advisor.Observe(sample)
	if adv.Delta != prev {
		r.s.log.Info("fleet: scale recommendation changed",
			"delta", adv.Delta, "reason", adv.Reason,
			"fastBurn", adv.FastBurn, "slowBurn", adv.SlowBurn)
		r.fireScaleHook(adv)
		r.noteScaleFlip(prev, adv)
	}
}

// noteScaleFlip auto-captures a CPU+heap profile pair the moment the
// advisor flips from "fine/shrink" to "add peers" — the point where
// the queue-wait SLO burn crossed both thresholds and the daemon is
// provably saturated, i.e. exactly when a profile of the saturation
// is worth keeping. The AutoCapturer dedupes and rate-limits, so a
// flapping advisor cannot flood the store.
func (r *fleetRuntime) noteScaleFlip(prev int, adv fleet.Advice) {
	if adv.Delta <= 0 || prev > 0 {
		return
	}
	if r.s.autoProf.Trigger("scale-up") {
		r.s.log.Info("fleet: auto-capturing cpu+heap profiles on scale-up flip",
			"delta", adv.Delta, "reason", adv.Reason)
	}
}

// fireScaleHook runs the configured -scale-hook command asynchronously
// with the recommendation in its environment. Only non-zero deltas
// fire: returning to zero means "stop scaling", which needs no action.
func (r *fleetRuntime) fireScaleHook(adv fleet.Advice) {
	r.mu.Lock()
	fire := r.scaleHook != "" && adv.Delta != 0 && adv.Delta != r.lastHookDelta
	r.lastHookDelta = adv.Delta
	r.mu.Unlock()
	if !fire {
		return
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		ctx, cancel := context.WithTimeout(r.s.hardCtx, 30*time.Second)
		defer cancel()
		cmd := exec.CommandContext(ctx, "/bin/sh", "-c", r.scaleHook)
		cmd.Env = append(os.Environ(),
			"QLECD_SCALE_DELTA="+strconv.Itoa(adv.Delta),
			"QLECD_SCALE_REASON="+adv.Reason,
			"QLECD_SELF="+r.self,
		)
		out, err := cmd.CombinedOutput()
		if err != nil {
			r.s.log.Warn("fleet: scale hook failed", "err", err, "output", string(out))
			return
		}
		r.s.log.Info("fleet: scale hook ran", "delta", adv.Delta)
	}()
}

// proxyFetch asks the hash's ring owner for a cached result; a hit is
// adopted into the local memory cache. Misses (including "we are the
// owner" and standalone mode) report false.
func (r *fleetRuntime) proxyFetch(ctx context.Context, hash string) (*ResultEnvelope, bool) {
	if !r.enabled {
		return nil, false
	}
	owner := r.members.Owner(hash)
	if owner == "" || owner == r.self {
		return nil, false
	}
	callCtx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	start := time.Now()
	raw, err := r.peers.CacheGet(callCtx, owner, hash)
	if err != nil {
		if !errors.Is(err, fleet.ErrNotFound) {
			r.s.log.Warn("fleet: proxy cache lookup", "owner", owner, "hash", hash, "err", err)
		}
		return nil, false
	}
	if sc := obs.SpanFromContext(ctx); sc.Valid() {
		r.spans.Span(sc.Child(), "owner cache get "+shortHash(hash), "cache", start, time.Now(),
			map[string]any{"owner": owner})
	}
	var env ResultEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		r.s.log.Warn("fleet: proxy cache decode", "owner", owner, "hash", hash, "err", err)
		return nil, false
	}
	env.Hash = hash
	r.fm.ProxyHitsFetched.Inc()
	// Memory-only adoption: the owner holds the durable copy.
	_ = r.s.cache.put(hash, &env, false)
	return &env, true
}

// replicateToOwner pushes a result envelope to its ring owner so every
// future lookup fleet-wide resolves in one proxy hop. Best-effort: the
// local (persisted) copy is authoritative for this daemon either way.
func (r *fleetRuntime) replicateToOwner(ctx context.Context, hash string, env *ResultEnvelope) {
	if !r.enabled || env == nil {
		return
	}
	owner := r.members.Owner(hash)
	if owner == "" || owner == r.self {
		return
	}
	raw, err := json.Marshal(env)
	if err != nil {
		return
	}
	callCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := r.peers.CachePut(callCtx, owner, hash, raw); err != nil {
		r.s.log.Warn("fleet: replicate result to owner", "owner", owner, "hash", hash, "err", err)
		return
	}
	if sc := obs.SpanFromContext(ctx); sc.Valid() {
		r.spans.Span(sc.Child(), "owner cache put "+shortHash(hash), "cache", start, time.Now(),
			map[string]any{"owner": owner})
	}
	r.fm.CacheReplications.Inc()
}

// runSweep executes a sweep request through the cell pool: decompose,
// resolve-or-schedule every cell, wait in assembly order while
// publishing per-cell progress, then fold. The plan and the fold are
// the same code the in-process path runs, so the result is
// byte-identical to a single-daemon execution no matter where the
// cells ran. The returned usage sums the cells' execution bills
// wherever they ran (cache hits contribute zero).
func (r *fleetRuntime) runSweep(ctx context.Context, req Request, publish func(Event)) (*ResultEnvelope, prof.Usage, error) {
	var usage prof.Usage
	plan, err := planCells(req)
	if err != nil {
		return nil, usage, err
	}
	total := len(plan.cells)
	outcomes := make([]*ResultEnvelope, total)
	futures := make(map[int]*cellFuture)
	released := false
	releaseAll := func() {
		if released {
			return
		}
		released = true
		for _, f := range futures {
			r.release(f)
		}
	}
	defer releaseAll()

	done := 0
	progress := func() {
		publish(Event{Type: EventSweep, Sweep: &SweepProgress{Done: done, Total: total}})
	}
	// Cells inherit the sweep's trace: every executor (local or thief)
	// parses this traceparent and records its spans under one trace ID.
	sweepSC := obs.SpanFromContext(ctx)
	trace := sweepSC.TraceParent()
	fanStart := time.Now()
	for i, hash := range plan.hashes {
		if env, ok := r.s.cache.peek(hash); ok {
			outcomes[i] = env
			done++
			continue
		}
		f, err := r.schedule(plan.cells[i], hash, trace)
		if err != nil {
			return nil, usage, err
		}
		futures[i] = f
	}
	if sweepSC.Valid() {
		r.spans.Span(sweepSC.Child(), "sweep fan-out", "sweep", fanStart, time.Now(),
			map[string]any{"cells": total, "pooled": len(futures)})
	}
	progress()
	for i := 0; i < total; i++ {
		f := futures[i]
		if f == nil {
			continue // cache hit
		}
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, usage, ctx.Err()
		}
		if f.usage != nil {
			usage.Add(*f.usage)
		}
		if f.err != nil {
			return nil, usage, fmt.Errorf("service: cell %s: %w", f.hash[:12], f.err)
		}
		outcomes[i] = f.env
		done++
		progress()
	}
	releaseAll()
	env, err := plan.assemble(outcomes)
	return env, usage, err
}

// distributable reports whether a request should route through the cell
// pool instead of the monolithic RunFunc. Sweeps distribute when fleet
// mode is on; KindOne keeps the direct path (round streaming, audit
// recorder and trace hooks are single-run features).
func (r *fleetRuntime) distributable(kind JobKind) bool {
	if !r.enabled {
		return false
	}
	switch kind {
	case KindFig3, KindKSweep, KindNSweep:
		return true
	}
	return false
}

// --- HTTP handlers (mounted by Server.Handler under /v1/fleet) ---

func (s *Server) fleetStatus() fleet.Status {
	pending, leased, expired := s.fleet.table.Stats()
	st := fleet.Status{
		Self:         s.fleet.self,
		Peers:        s.fleet.members.Peers(),
		CellsPending: pending,
		CellsLeased:  leased,
		LeaseExpiry:  expired,
		OpenBatches:  s.openBatches(),
	}
	if s.fleet.advisor.Enabled() {
		adv := s.fleet.advisor.Current()
		st.Advice = &adv
	}
	return st
}

func (s *Server) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.fleetStatus())
}

func (s *Server) handleFleetJoin(w http.ResponseWriter, r *http.Request) {
	var req fleet.JoinRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decode join: %v", err)
		return
	}
	if req.Peer == "" {
		writeErr(w, http.StatusBadRequest, "join: empty peer URL")
		return
	}
	if s.fleet.members.Add(req.Peer) {
		s.log.Info("fleet: peer joined", "peer", req.Peer)
	}
	// It reached us, so it is reachable; the prober keeps this honest.
	s.fleet.members.MarkReady(req.Peer, true, "")
	writeJSON(w, http.StatusOK, s.fleetStatus())
}

func (s *Server) handleFleetSteal(w http.ResponseWriter, r *http.Request) {
	var req fleet.StealRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decode steal: %v", err)
		return
	}
	if req.Worker == "" {
		writeErr(w, http.StatusBadRequest, "steal: empty worker")
		return
	}
	if req.Max <= 0 {
		req.Max = 1
	} else if req.Max > 32 {
		req.Max = 32
	}
	var leases []fleet.Lease
	if !s.draining.Load() { // a draining daemon grants nothing new
		leases = s.fleet.table.Acquire(req.Worker, req.Max, s.fleet.ttl, time.Now())
	}
	for _, l := range leases {
		s.fleet.fm.CellWait.Observe(l.Waited.Seconds())
		if sc, ok := obs.ParseTraceParent(l.Cell.Trace); ok {
			s.fleet.spans.Instant(sc.Child(), "steal grant "+shortHash(l.Cell.Hash), "steal",
				map[string]any{"thief": req.Worker, "waitedMs": float64(l.Waited.Microseconds()) / 1000})
		}
	}
	if n := len(leases); n > 0 {
		s.fleet.fm.CellsStolenOut.Add(float64(n))
	}
	writeJSON(w, http.StatusOK, fleet.StealResponse{Leases: leases})
}

func (s *Server) handleFleetComplete(w http.ResponseWriter, r *http.Request) {
	var req fleet.CompleteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decode complete: %v", err)
		return
	}
	if !validHash(req.Hash) {
		writeErr(w, http.StatusBadRequest, "complete: bad hash %q", req.Hash)
		return
	}
	if req.Error != "" {
		s.fleet.complete(req.Hash, nil, req.Error, req.Usage)
	} else {
		var env ResultEnvelope
		if err := json.Unmarshal(req.Result, &env); err != nil {
			writeErr(w, http.StatusBadRequest, "complete: decode result: %v", err)
			return
		}
		s.fleet.complete(req.Hash, &env, "", req.Usage)
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleFleetRenew(w http.ResponseWriter, r *http.Request) {
	var req fleet.RenewRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decode renew: %v", err)
		return
	}
	n := s.fleet.table.Renew(req.LeaseIDs, s.fleet.ttl, time.Now())
	writeJSON(w, http.StatusOK, fleet.RenewResponse{Renewed: n})
}

func (s *Server) handleFleetCacheGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !validHash(hash) {
		writeErr(w, http.StatusBadRequest, "bad hash %q", hash)
		return
	}
	env, ok := s.cache.peek(hash)
	if !ok {
		writeErr(w, http.StatusNotFound, "no result %q", hash)
		return
	}
	s.fleet.fm.ProxyHitsServed.Inc()
	// The requester's traceparent (extracted by the middleware) puts
	// this owner-side serve on the same trace.
	if sc := obs.SpanFromContext(r.Context()); sc.Valid() {
		s.fleet.spans.Instant(sc.Child(), "owner cache serve "+shortHash(hash), "cache", nil)
	}
	writeJSON(w, http.StatusOK, env)
}

func (s *Server) handleFleetCachePut(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !validHash(hash) {
		writeErr(w, http.StatusBadRequest, "bad hash %q", hash)
		return
	}
	var env ResultEnvelope
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&env); err != nil {
		writeErr(w, http.StatusBadRequest, "decode envelope: %v", err)
		return
	}
	env.Hash = hash
	// The owner is the hash's durability authority: persist.
	if err := s.cache.put(hash, &env, true); err != nil {
		s.log.Error("fleet: persist replicated result", "hash", hash, "err", err)
	}
	if sc := obs.SpanFromContext(r.Context()); sc.Valid() {
		s.fleet.spans.Instant(sc.Child(), "owner cache adopt "+shortHash(hash), "cache", nil)
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleFleetTrace serves the spans this daemon recorded for one trace
// ID — the peer-side half of the merged trace view.
func (s *Server) handleFleetTrace(w http.ResponseWriter, r *http.Request) {
	traceID := r.PathValue("trace")
	spans := s.fleet.spans.Spans(traceID)
	if spans == nil {
		spans = []obs.SpanRecord{}
	}
	writeJSON(w, http.StatusOK, spans)
}
