package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"time"

	"qlec/internal/fleet"
	"qlec/internal/prof"
)

// profileCaptureBody is the POST /v1/profiles request: which profile to
// capture and, for cpu, how long to sample. fleet=true fans the capture
// out to every ready peer as well, so one request snapshots the whole
// fleet under load.
type profileCaptureBody struct {
	Kind    string  `json:"kind"`
	Seconds float64 `json:"seconds,omitempty"`
	Fleet   bool    `json:"fleet,omitempty"`
}

// profileCaptureResponse reports the artifacts captured (local first,
// then one per responding peer) plus per-peer errors — a partial fleet
// capture is a result, not a failure.
type profileCaptureResponse struct {
	Profiles []prof.Artifact   `json:"profiles"`
	Errors   map[string]string `json:"errors,omitempty"`
}

// handleProfileCapture implements POST /v1/profiles: capture a profile
// now, store it in the FIFO artifact table, and return its metadata.
func (s *Server) handleProfileCapture(w http.ResponseWriter, r *http.Request) {
	var body profileCaptureBody
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&body); err != nil && err != io.EOF {
		writeErr(w, http.StatusBadRequest, "decode capture request: %v", err)
		return
	}
	if body.Kind == "" {
		body.Kind = "cpu"
	}
	if !prof.ValidKind(body.Kind) {
		writeErr(w, http.StatusBadRequest, "unknown profile kind %q (want cpu, heap, goroutine, block or mutex)", body.Kind)
		return
	}
	dur := time.Duration(body.Seconds * float64(time.Second))
	art, err := prof.Capture(r.Context(), body.Kind, dur)
	if err != nil {
		writeErr(w, http.StatusConflict, "capture %s profile: %v", body.Kind, err)
		return
	}
	art.Instance = s.fleet.self
	art = s.profiles.Add(art)
	resp := profileCaptureResponse{Profiles: []prof.Artifact{artifactMeta(art)}}

	if body.Fleet && s.fleet.enabled {
		req := fleet.ProfileCaptureRequest{Kind: body.Kind, Seconds: body.Seconds}
		for _, peer := range s.fleet.members.ReadyOthers() {
			ctx, cancel := context.WithTimeout(s.hardCtx, peerCaptureTimeout(dur))
			pa, err := s.fleet.peers.CaptureProfile(ctx, peer, req)
			cancel()
			if err != nil {
				if resp.Errors == nil {
					resp.Errors = make(map[string]string)
				}
				resp.Errors[peer] = err.Error()
				continue
			}
			if pa.Instance == "" {
				pa.Instance = peer
			}
			resp.Profiles = append(resp.Profiles, *pa)
		}
	}
	writeJSON(w, http.StatusCreated, resp)
}

// peerCaptureTimeout pads the capture duration with network headroom.
func peerCaptureTimeout(d time.Duration) time.Duration {
	if d <= 0 {
		d = 2 * time.Second
	}
	return d + 10*time.Second
}

// handleProfileList implements GET /v1/profiles: artifact metadata,
// newest first. ?fleet=1 merges every ready peer's listing, each entry
// tagged with the daemon that holds it.
func (s *Server) handleProfileList(w http.ResponseWriter, r *http.Request) {
	arts := s.profiles.List()
	for i := range arts {
		if arts[i].Instance == "" {
			arts[i].Instance = s.fleet.self
		}
	}
	if r.URL.Query().Get("fleet") != "" && s.fleet.enabled {
		for _, peer := range s.fleet.members.ReadyOthers() {
			ctx, cancel := context.WithTimeout(s.hardCtx, 3*time.Second)
			pas, err := s.fleet.peers.Profiles(ctx, peer)
			cancel()
			if err != nil {
				s.log.Warn("profiles: list peer", "peer", peer, "err", err)
				continue
			}
			for _, pa := range pas {
				if pa.Instance == "" {
					pa.Instance = peer
				}
				arts = append(arts, pa)
			}
		}
		sort.Slice(arts, func(i, k int) bool { return arts[i].CreatedAt.After(arts[k].CreatedAt) })
	}
	writeJSON(w, http.StatusOK, arts)
}

// handleProfileGet implements GET /v1/profiles/{id}: the raw profile
// bytes (Content-Type by format, metadata in X-Profile-* headers), or
// the JSON metadata alone with ?meta=1. The reserved id "latest"
// resolves to the newest artifact.
func (s *Server) handleProfileGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == "latest" {
		id = ""
	}
	art := s.profiles.Get(id)
	if art == nil {
		writeErr(w, http.StatusNotFound, "no profile %q (never captured, or aged out)", r.PathValue("id"))
		return
	}
	if r.URL.Query().Get("meta") != "" {
		writeJSON(w, http.StatusOK, artifactMeta(art))
		return
	}
	ct := "text/plain; charset=utf-8"
	if art.Format == "pprof" {
		ct = "application/octet-stream"
	}
	w.Header().Set("Content-Type", ct)
	w.Header().Set("X-Profile-ID", art.ID)
	w.Header().Set("X-Profile-Kind", art.Kind)
	w.Header().Set("X-Profile-Format", art.Format)
	if art.Reason != "" {
		w.Header().Set("X-Profile-Reason", art.Reason)
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(art.Data)
}

// artifactMeta strips the payload for JSON responses.
func artifactMeta(a *prof.Artifact) prof.Artifact {
	m := *a
	m.Data = nil
	return m
}

// runtimeTrend is the GET /v1/runtime response: the sampler's retained
// window, oldest first.
type runtimeTrend struct {
	IntervalSeconds float64              `json:"intervalSeconds"`
	Samples         []prof.RuntimeSample `json:"samples"`
}

// handleRuntime implements GET /v1/runtime: the continuous runtime
// sampler's ring (heap, GC, scheduler latency trends). With sampling
// disabled it still answers — with one on-demand sample — so clients
// need no special case.
func (s *Server) handleRuntime(w http.ResponseWriter, r *http.Request) {
	trend := runtimeTrend{
		IntervalSeconds: s.sampler.Interval().Seconds(),
		Samples:         s.sampler.Trend(),
	}
	if len(trend.Samples) == 0 {
		trend.Samples = []prof.RuntimeSample{s.sampler.SampleNow()}
	}
	writeJSON(w, http.StatusOK, trend)
}
