package core

import (
	"qlec/internal/cluster"
	"qlec/internal/protocol"
)

// The registry descriptors for QLEC and its ablation ladder. All five
// share one factory shape: a core.Config with the matching ablation
// switches, identical to what experiment.BuildProtocol hard-wired before
// the registry existed — the construction must stay byte-for-byte
// compatible (golden tests pin exact results).
func init() {
	variant := func(mutate func(*Config)) protocol.Factory {
		return func(b protocol.BuildContext) (cluster.Protocol, error) {
			qc := DefaultConfig(b.TotalRounds)
			qc.K = b.K
			qc.Bits = b.Bits
			qc.DeathLine = b.DeathLine
			qc.Seed = b.Seed
			if mutate != nil {
				mutate(&qc)
			}
			return New(b.Net, b.Model, qc)
		}
	}
	protocol.Register(protocol.Descriptor{
		ID:          "QLEC",
		Paper:       "Li, Huang, Gao, Wu, Chen — ICPP 2019",
		Summary:     "improved-DEEC head selection + Q-learning packet routing (the paper's protocol)",
		Order:       10,
		Figure3Rank: 1,
		Factory:     variant(nil),
	})
	protocol.Register(protocol.Descriptor{
		ID:       "DEEC-nearest",
		Aliases:  []string{"qlec-noq"},
		Paper:    "Li et al. ICPP 2019 (ablation)",
		Summary:  "QLEC minus Q-learning: improved DEEC with nearest-head routing",
		Order:    50,
		Ablation: true,
		Factory:  variant(func(qc *Config) { qc.DisableQLearning = true }),
	})
	protocol.Register(protocol.Descriptor{
		ID:       "QLEC-nofloor",
		Paper:    "Li et al. ICPP 2019 (ablation)",
		Summary:  "QLEC minus the Eq. (4) energy floor",
		Order:    60,
		Ablation: true,
		Factory:  variant(func(qc *Config) { qc.DisableEnergyFloor = true }),
	})
	protocol.Register(protocol.Descriptor{
		ID:       "QLEC-norr",
		Paper:    "Li et al. ICPP 2019 (ablation)",
		Summary:  "QLEC minus the Algorithm 3 redundancy reduction",
		Order:    70,
		Ablation: true,
		Factory:  variant(func(qc *Config) { qc.DisableRedundancyReduction = true }),
	})
	protocol.Register(protocol.Descriptor{
		ID:      "DEEC-plain",
		Aliases: []string{"deec"},
		Paper:   "Qing, Zhu, Wang — Computer Communications 2006",
		Summary: "classic DEEC: lottery-only head selection, nearest-head routing",
		Order:   80,
		Factory: variant(func(qc *Config) { qc.PlainDEEC = true }),
	})
}
