package core

import (
	"context"
	"testing"

	"qlec/internal/cluster"
	"qlec/internal/energy"
	"qlec/internal/network"
	"qlec/internal/rng"
	"qlec/internal/sim"
)

func paperNet(t *testing.T, seed uint64) *network.Network {
	t.Helper()
	w, err := network.Deploy(network.Deployment{N: 100, Side: 200, InitialEnergy: 5}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func newQLEC(t *testing.T, w *network.Network, cfg Config) *QLEC {
	t.Helper()
	q, err := New(w, energy.DefaultModel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestNewValidation(t *testing.T) {
	w := paperNet(t, 1)
	if _, err := New(w, energy.DefaultModel(), Config{TotalRounds: -1, Bits: 4000}); err == nil {
		t.Fatal("negative rounds accepted")
	}
	if _, err := New(w, energy.DefaultModel(), Config{TotalRounds: 20, Bits: 0}); err == nil {
		t.Fatal("zero bits accepted")
	}
	if _, err := New(w, energy.DefaultModel(), Config{TotalRounds: 20, Bits: 4000, K: 1000}); err == nil {
		t.Fatal("K > N accepted")
	}
}

func TestAutoRFromEnergyModel(t *testing.T) {
	// The paper's reference [7] route: R = E_total / E_round. For the
	// paper deployment (500 J total, ≈0.054 J/round at k=11), R lands in
	// the thousands — far beyond the paper's R=20, which only schedules
	// the first 20 rounds of the network's life.
	w := paperNet(t, 13)
	k := AutoK(w, energy.DefaultModel())
	r := AutoR(w, energy.DefaultModel(), 4000, k)
	if r < 2000 || r > 50000 {
		t.Fatalf("AutoR = %d, want thousands for the paper deployment", r)
	}
	// TotalRounds=0 wires it through New.
	q, err := New(w, energy.DefaultModel(), Config{Bits: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if q.cfg.TotalRounds != r {
		t.Fatalf("New auto-R = %d, AutoR = %d", q.cfg.TotalRounds, r)
	}
}

func TestAutoKMatchesTheorem1(t *testing.T) {
	w := paperNet(t, 2)
	k := AutoK(w, energy.DefaultModel())
	// BS at cube center: Theorem 1 gives ≈ 11 (see energy tests and
	// DESIGN.md §6.2).
	if k < 10 || k > 13 {
		t.Fatalf("AutoK = %d, want ~11 for the paper deployment", k)
	}
}

func TestDefaultConfigAutoK(t *testing.T) {
	w := paperNet(t, 3)
	q := newQLEC(t, w, DefaultConfig(20))
	if q.K() != AutoK(w, energy.DefaultModel()) {
		t.Fatalf("K = %d, want auto", q.K())
	}
}

func TestStartRoundSelectsKHeads(t *testing.T) {
	w := paperNet(t, 4)
	cfg := DefaultConfig(20)
	cfg.K = 5
	q := newQLEC(t, w, cfg)
	for r := 0; r < 20; r++ {
		heads := q.StartRound(r)
		if len(heads) != 5 {
			t.Fatalf("round %d: %d heads", r, len(heads))
		}
		if err := cluster.ValidateHeads(w, heads, 0); err != nil {
			t.Fatal(err)
		}
		q.EndRound(r)
	}
}

func TestNextHopMembersAvoidBS(t *testing.T) {
	w := paperNet(t, 5)
	cfg := DefaultConfig(20)
	cfg.K = 5
	q := newQLEC(t, w, cfg)
	heads := q.StartRound(0)
	isHead := map[int]bool{}
	for _, h := range heads {
		isHead[h] = true
	}
	for id := 0; id < w.N(); id++ {
		hop := q.NextHop(id)
		if isHead[id] {
			if hop != network.BSID {
				t.Fatalf("head %d hops to %d, want BS", id, hop)
			}
			continue
		}
		if hop == network.BSID {
			t.Fatalf("member %d routed directly to BS with %d heads up", id, len(heads))
		}
		if !isHead[hop] {
			t.Fatalf("member %d routed to non-head %d", id, hop)
		}
	}
}

func TestQLECRunsOnEngine(t *testing.T) {
	w := paperNet(t, 6)
	cfg := DefaultConfig(20)
	cfg.K = 5
	q := newQLEC(t, w, cfg)
	e, err := sim.NewEngine(w, q, energy.DefaultModel(), sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Protocol != "QLEC" {
		t.Fatalf("protocol name %q", res.Protocol)
	}
	if res.PDR() < 0.95 {
		t.Fatalf("QLEC PDR under default (moderate) load = %v, paper reports ≈1", res.PDR())
	}
	if q.Learner().Updates() == 0 {
		t.Fatal("Q-learning never updated")
	}
}

func TestQLECDeterministic(t *testing.T) {
	run := func() (float64, float64) {
		w := paperNet(t, 7)
		cfg := DefaultConfig(10)
		cfg.K = 5
		q := newQLEC(t, w, cfg)
		e, _ := sim.NewEngine(w, q, energy.DefaultModel(), sim.DefaultConfig())
		res, err := e.Run(context.Background(), 10)
		if err != nil {
			t.Fatal(err)
		}
		return res.PDR(), float64(res.TotalEnergy)
	}
	p1, e1 := run()
	p2, e2 := run()
	if p1 != p2 || e1 != e2 {
		t.Fatalf("identical QLEC runs differ: (%v,%v) vs (%v,%v)", p1, e1, p2, e2)
	}
}

func TestAblationNamesDiffer(t *testing.T) {
	w := paperNet(t, 8)
	cfg := DefaultConfig(20)
	cfg.K = 5
	cfg.DisableQLearning = true
	q := newQLEC(t, w, cfg)
	if q.Name() != "DEEC-nearest" {
		t.Fatalf("ablation name %q", q.Name())
	}
	cfg2 := DefaultConfig(20)
	cfg2.K = 5
	cfg2.PlainDEEC = true
	q2 := newQLEC(t, paperNet(t, 8), cfg2)
	if q2.Name() != "DEEC-plain" {
		t.Fatalf("plain name %q", q2.Name())
	}
}

func TestPlainDEECHeadCountVaries(t *testing.T) {
	// Classic DEEC has no top-up/trim: the lottery's head count varies
	// round to round, unlike improved DEEC's pinned K.
	w := paperNet(t, 12)
	cfg := DefaultConfig(20)
	cfg.K = 5
	cfg.PlainDEEC = true
	q := newQLEC(t, w, cfg)
	counts := map[int]bool{}
	for r := 0; r < 20; r++ {
		counts[len(q.StartRound(r))] = true
		q.EndRound(r)
	}
	if len(counts) < 2 {
		t.Fatalf("plain DEEC head count constant: %v", counts)
	}
}

func TestAblationNearestRoutesToNearestHead(t *testing.T) {
	w := paperNet(t, 9)
	cfg := DefaultConfig(20)
	cfg.K = 5
	cfg.DisableQLearning = true
	q := newQLEC(t, w, cfg)
	heads := q.StartRound(0)
	for id := 0; id < w.N(); id++ {
		hop := q.NextHop(id)
		if q.isHead[id] {
			continue
		}
		d := w.Nodes[id].Pos.Dist(w.Nodes[hop].Pos)
		for _, h := range heads {
			if w.Nodes[id].Pos.Dist(w.Nodes[h].Pos) < d-1e-9 {
				t.Fatalf("member %d not routed to nearest head", id)
			}
		}
	}
	// Outcome feedback must be a no-op (no learner updates).
	before := q.Learner().Updates()
	q.OnOutcome(0, heads[0], true)
	q.EndRound(0)
	if q.Learner().Updates() != before {
		t.Fatal("ablation still updates the learner")
	}
}

// Under congestion, QLEC's reroute must beat the nearest-head ablation
// on delivery — the paper's central claim isolated to its mechanism.
// Rerouting needs alternative heads at comparable distance to pay off
// (the α₂ distance penalty otherwise dominates the congestion signal),
// so the head count sits near the deployment's true k_opt ≈ 11, not the
// paper's k=5; EXPERIMENTS.md discusses the sensitivity.
func TestQLearningBeatsNearestUnderCongestion(t *testing.T) {
	run := func(disableQL bool) float64 {
		w := paperNet(t, 10)
		cfg := DefaultConfig(10)
		cfg.K = 8
		cfg.DisableQLearning = disableQL
		q := newQLEC(t, w, cfg)
		// Overload: offered exceeds total head service capacity, so
		// *balance* decides delivery — QLEC's strength.
		scfg := sim.DefaultConfig()
		scfg.MeanInterArrival = 1.5
		scfg.QueueCapacity = 12
		e, _ := sim.NewEngine(w, q, energy.DefaultModel(), scfg)
		res, err := e.Run(context.Background(), 10)
		if err != nil {
			t.Fatal(err)
		}
		return res.PDR()
	}
	ql := run(false)
	nearest := run(true)
	if ql <= nearest {
		t.Fatalf("Q-learning PDR %v not above nearest-head PDR %v under congestion", ql, nearest)
	}
}

// Under persistent per-link shadowing at light load, link learning is
// the only advantage in play: QLEC's ACK-driven estimator routes around
// permanently bad links, while the nearest-head ablation keeps hammering
// them. This isolates the paper's claim that baselines "lose some
// packets when the network is relatively idle" (Fig. 3a).
func TestLinkLearningPaysUnderShadowing(t *testing.T) {
	run := func(disableQL bool) float64 {
		w := paperNet(t, 11)
		cfg := DefaultConfig(10)
		cfg.K = 8
		cfg.DisableQLearning = disableQL
		q := newQLEC(t, w, cfg)
		scfg := sim.DefaultConfig()
		scfg.MeanInterArrival = 4 // light-moderate load: queues not the issue
		scfg.ShadowSigma = 1.0    // strong persistent link heterogeneity
		scfg.MaxRetries = 2
		e, _ := sim.NewEngine(w, q, energy.DefaultModel(), scfg)
		res, err := e.Run(context.Background(), 10)
		if err != nil {
			t.Fatal(err)
		}
		return res.PDR()
	}
	learning := run(false)
	static := run(true)
	if learning <= static {
		t.Fatalf("link learning PDR %v not above static assignment %v under shadowing",
			learning, static)
	}
}

func BenchmarkQLECRound(b *testing.B) {
	w, _ := network.Deploy(network.Deployment{N: 100, Side: 200, InitialEnergy: 5}, rng.New(1))
	cfg := DefaultConfig(1 << 30)
	cfg.K = 5
	q, _ := New(w, energy.DefaultModel(), cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.StartRound(i)
		for id := 0; id < 100; id++ {
			q.NextHop(id)
		}
		q.EndRound(i)
	}
}
