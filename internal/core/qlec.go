// Package core implements QLEC itself — the paper's two-phase algorithm
// (Algorithm 1) — as a cluster.Protocol runnable on the simulation
// engine:
//
//   - Cluster Head Selection Phase: the improved DEEC selector
//     (internal/deec) picks k heads per round (Algorithms 2–3), with k
//     defaulting to Theorem 1's k_opt.
//   - Data Transmission Phase: members pick a head per packet with
//     Q-learning (internal/qlearn, Algorithm 4); heads hold fused data
//     and burst it to the BS at round end, then refresh their V values
//     (Algorithm 1 line 15).
//
// Ablation switches expose the paper's design choices individually: the
// Eq. (4) energy floor, the Algorithm 3 redundancy reduction, and the
// Q-learning router itself (off → members use nearest-head assignment,
// i.e. "improved DEEC without learning").
package core

import (
	"fmt"
	"math"

	"qlec/internal/cluster"
	"qlec/internal/deec"
	"qlec/internal/energy"
	"qlec/internal/network"
	"qlec/internal/qlearn"
	"qlec/internal/rng"
)

// Config parameterizes a QLEC instance.
type Config struct {
	// K is the cluster count per round; 0 derives k_opt from Theorem 1
	// using the deployment's measured mean node→BS distance.
	K int
	// TotalRounds is the planned lifespan R used by Eq. (2) and Eq. (4).
	TotalRounds int
	// DeathLine excludes depleted nodes from head duty.
	DeathLine energy.Joules
	// Bits is the packet size L used inside Q-learning rewards (Eq. 18).
	Bits int
	// QParams are the Q-learning constants; zero value means
	// qlearn.DefaultParams.
	QParams qlearn.Params
	// Seed drives the DEEC lottery.
	Seed uint64

	// DisableEnergyFloor switches off the Eq. (4) improvement (ablation).
	DisableEnergyFloor bool
	// DisableRedundancyReduction switches off Algorithm 3 (ablation).
	DisableRedundancyReduction bool
	// DisableQLearning replaces Algorithm 4 with nearest-head routing
	// (ablation: improved DEEC alone).
	DisableQLearning bool
	// PlainDEEC runs the classic DEEC protocol (Qing et al. 2006) as a
	// baseline: lottery-only head selection (no floor, no redundancy
	// reduction, no top-up — the per-round head count is random) with
	// nearest-head routing. It overrides the other switches.
	PlainDEEC bool
}

// DefaultConfig returns the paper's §5.1 QLEC setup for the given
// planned round count.
func DefaultConfig(totalRounds int) Config {
	return Config{
		TotalRounds: totalRounds,
		Bits:        4000,
		QParams:     qlearn.DefaultParams(),
		Seed:        1,
	}
}

// AutoK computes Theorem 1's k_opt for a deployed network, rounded to at
// least 1.
func AutoK(w *network.Network, model energy.Model) int {
	side := w.Box.Size().X
	d := w.MeanDistToBS()
	if d <= 0 {
		return 1
	}
	k := int(math.Round(model.OptimalClusterCount(w.N(), side, d)))
	if k < 1 {
		k = 1
	}
	if k > w.N() {
		k = w.N()
	}
	return k
}

// QLEC is the paper's protocol bound to one network.
type QLEC struct {
	cfg     Config
	net     *network.Network
	sel     *deec.Selector
	learner *qlearn.Learner

	heads  []int
	isHead []bool
	// nearest holds the nearest-head assignment when Q-learning is
	// disabled (ablation mode).
	nearest cluster.Assignment
}

// AutoR estimates the planned lifespan R for Eq. (2)'s energy schedule
// from the energy model, per the paper's reference [7]: total network
// energy over the expected per-round dissipation at cluster count k.
func AutoR(w *network.Network, model energy.Model, bits, k int) int {
	side := w.Box.Size().X
	d := w.MeanDistToBS()
	if d <= 0 || k <= 0 {
		return 1
	}
	return model.EstimatedLifespanRounds(w.InitialTotalEnergy(), bits, w.N(), k, side, d)
}

// New builds a QLEC protocol over the network. TotalRounds = 0 derives
// R from the energy model via AutoR; K = 0 derives k_opt via AutoK.
func New(w *network.Network, model energy.Model, cfg Config) (*QLEC, error) {
	if cfg.TotalRounds < 0 {
		return nil, fmt.Errorf("core: TotalRounds must be non-negative, got %d", cfg.TotalRounds)
	}
	if cfg.Bits <= 0 {
		return nil, fmt.Errorf("core: Bits must be positive, got %d", cfg.Bits)
	}
	if cfg.K == 0 {
		cfg.K = AutoK(w, model)
	}
	if cfg.TotalRounds == 0 {
		cfg.TotalRounds = AutoR(w, model, cfg.Bits, cfg.K)
	}
	if cfg.K < 0 || cfg.K > w.N() {
		return nil, fmt.Errorf("core: K=%d outside [1,%d]", cfg.K, w.N())
	}
	if cfg.QParams == (qlearn.Params{}) {
		cfg.QParams = qlearn.DefaultParams()
	}
	dcfg := deec.Config{
		K:                cfg.K,
		TotalRounds:      cfg.TotalRounds,
		DeathLine:        cfg.DeathLine,
		EnergyFloor:      !cfg.DisableEnergyFloor,
		ReduceRedundancy: !cfg.DisableRedundancyReduction,
		TopUp:            true,
	}
	if cfg.PlainDEEC {
		dcfg = deec.PlainConfig(cfg.K, cfg.TotalRounds, cfg.DeathLine)
		cfg.DisableQLearning = true
	}
	sel, err := deec.NewSelector(w, dcfg, rng.NewNamed(cfg.Seed, "qlec/deec"))
	if err != nil {
		return nil, err
	}
	learner, err := qlearn.NewLearner(w, model, cfg.Bits, cfg.QParams)
	if err != nil {
		return nil, err
	}
	return &QLEC{
		cfg:     cfg,
		net:     w,
		sel:     sel,
		learner: learner,
		isHead:  make([]bool, w.N()),
	}, nil
}

// Name implements cluster.Protocol.
func (q *QLEC) Name() string {
	switch {
	case q.cfg.PlainDEEC:
		return "DEEC-plain"
	case q.cfg.DisableQLearning:
		return "DEEC-nearest"
	default:
		return "QLEC"
	}
}

// K returns the configured cluster count.
func (q *QLEC) K() int { return q.cfg.K }

// Learner exposes the Q-learning state for convergence benchmarks
// (the X of O(kX)).
func (q *QLEC) Learner() *qlearn.Learner { return q.learner }

// StartRound implements cluster.Protocol: the Cluster Head Selection
// Phase.
func (q *QLEC) StartRound(round int) []int {
	q.heads = q.sel.Select(round)
	for i := range q.isHead {
		q.isHead[i] = false
	}
	for _, h := range q.heads {
		q.isHead[h] = true
	}
	if q.cfg.DisableQLearning {
		q.nearest = cluster.AssignNearest(q.net, q.heads)
	} else {
		// Arm the learner's per-round geometry cache for this head set.
		// StartRound runs after any inter-round movement, so positions
		// are frozen for the epoch's lifetime.
		q.learner.BeginEpoch(q.heads)
	}
	return q.heads
}

// NextHop implements cluster.Protocol: Algorithm 4 for members; heads
// burst straight to the BS.
func (q *QLEC) NextHop(node int) int {
	if q.isHead[node] {
		return network.BSID
	}
	if q.cfg.DisableQLearning {
		return q.nearest.Head[node]
	}
	return q.learner.Decide(node, q.heads)
}

// InvalidateGeometry implements cluster.GeometryInvalidator: the engine
// moved nodes, so the learner's memoized link costs are stale.
func (q *QLEC) InvalidateGeometry() {
	if !q.cfg.DisableQLearning {
		q.learner.InvalidateGeometry()
	}
}

// OnOutcome implements cluster.Protocol: ACK feedback into the link
// estimator.
func (q *QLEC) OnOutcome(node, target int, success bool) {
	if q.cfg.DisableQLearning {
		return
	}
	q.learner.Observe(node, target, success)
}

// EndRound implements cluster.Protocol: heads refresh their V values
// (Algorithm 1 line 15).
func (q *QLEC) EndRound(round int) {
	if q.cfg.DisableQLearning {
		return
	}
	for _, h := range q.heads {
		q.learner.UpdateHeadValue(h)
	}
}

// RelayMode implements cluster.Protocol.
func (q *QLEC) RelayMode() cluster.RelayMode { return cluster.HoldAndBurst }

// QLearningStats implements sim.QLearningStats: the mean V value and
// effective exploration rate, for per-round telemetry. ok is false in
// the DEEC ablation modes, where no Q-table exists to report.
func (q *QLEC) QLearningStats() (meanQ, epsilon float64, ok bool) {
	if q.cfg.DisableQLearning {
		return 0, 0, false
	}
	return q.learner.MeanV(), q.cfg.QParams.Epsilon, true
}
