// Package fcm implements the FCM-based baseline of the paper's
// evaluation: Fuzzy C-Means clustering (Bezdek, m=2) plus the
// hierarchical multi-hop routing scheme of Wang, Qin & Liu, "An
// energy-efficient clustering routing algorithm for WSN-assisted IoT"
// (WCNC 2018), the paper's reference [14].
//
// The scheme: FCM partitions nodes into k fuzzy clusters; each cluster's
// head is chosen to maximize residual energy among the nodes with high
// membership (the WCNC'18 scheme "employs the concept of maximizing
// residual energy when choosing cluster heads", §2); the network is
// divided into hierarchies by distance to the base station, and heads
// forward fused packets hop by hop through heads in lower hierarchies
// toward the BS — the multi-hop behaviour the QLEC paper blames for
// FCM's packet loss under congestion ("it takes multi-hops to transmit a
// packet to the BS under this model", §5.2).
package fcm

import (
	"fmt"
	"math"

	"qlec/internal/geom"
	"qlec/internal/rng"
)

// Config parameterizes fuzzy c-means.
type Config struct {
	// K is the cluster count.
	K int
	// M is the fuzzifier exponent, > 1. The standard choice (and our
	// default when zero) is 2.
	M float64
	// MaxIterations caps the update loop; zero means 150.
	MaxIterations int
	// Tolerance stops iteration when the largest membership change falls
	// below it; zero means 1e-6.
	Tolerance float64
}

func (c Config) withDefaults() Config {
	if c.M == 0 {
		c.M = 2
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 150
	}
	if c.Tolerance == 0 {
		c.Tolerance = 1e-6
	}
	return c
}

// Validate checks the configuration against the point count.
func (c Config) Validate(n int) error {
	c = c.withDefaults()
	if c.K <= 0 {
		return fmt.Errorf("fcm: K must be positive, got %d", c.K)
	}
	if c.K > n {
		return fmt.Errorf("fcm: K=%d exceeds point count %d", c.K, n)
	}
	if !(c.M > 1) {
		return fmt.Errorf("fcm: fuzzifier M must exceed 1, got %v", c.M)
	}
	if c.MaxIterations < 0 || c.Tolerance < 0 {
		return fmt.Errorf("fcm: negative iteration cap or tolerance")
	}
	return nil
}

// Result is a fuzzy clustering.
type Result struct {
	// Centers are the cluster prototypes.
	Centers []geom.Vec3
	// U is the membership matrix: U[i][c] ∈ [0,1] is point i's degree of
	// membership in cluster c; rows sum to 1.
	U [][]float64
	// Iterations performed.
	Iterations int
	// Objective is the final FCM objective Σᵢ Σ_c u_ic^m ‖xᵢ−v_c‖².
	Objective float64
}

// HardAssign returns each point's highest-membership cluster.
func (r *Result) HardAssign() []int {
	out := make([]int, len(r.U))
	for i, row := range r.U {
		best, bestU := 0, -1.0
		for c, u := range row {
			if u > bestU {
				best, bestU = c, u
			}
		}
		out[i] = best
	}
	return out
}

// Cluster runs fuzzy c-means. The stream seeds the initial membership
// matrix; results are deterministic per stream state.
func Cluster(points []geom.Vec3, cfg Config, r *rng.Stream) (*Result, error) {
	if err := cfg.Validate(len(points)); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := len(points)
	k := cfg.K

	// Random row-stochastic initial memberships.
	u := make([][]float64, n)
	for i := range u {
		u[i] = make([]float64, k)
		total := 0.0
		for c := range u[i] {
			v := r.Float64() + 1e-9
			u[i][c] = v
			total += v
		}
		for c := range u[i] {
			u[i][c] /= total
		}
	}
	centers := make([]geom.Vec3, k)
	res := &Result{U: u, Centers: centers}

	exp := 2 / (cfg.M - 1)
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		res.Iterations = iter + 1
		// Update centers: v_c = Σ u^m x / Σ u^m.
		for c := 0; c < k; c++ {
			var num geom.Vec3
			den := 0.0
			for i, p := range points {
				w := math.Pow(u[i][c], cfg.M)
				num = num.Add(p.Scale(w))
				den += w
			}
			if den > 0 {
				centers[c] = num.Scale(1 / den)
			}
		}
		// Update memberships: u_ic = 1 / Σ_j (d_ic/d_ij)^(2/(m−1)).
		maxDelta := 0.0
		for i, p := range points {
			// Handle coincidence with a center: crisp membership.
			coincident := -1
			d := make([]float64, k)
			for c := range centers {
				d[c] = p.Dist(centers[c])
				if d[c] == 0 {
					coincident = c
				}
			}
			for c := 0; c < k; c++ {
				var next float64
				if coincident >= 0 {
					if c == coincident {
						next = 1
					}
				} else {
					sum := 0.0
					for j := 0; j < k; j++ {
						sum += math.Pow(d[c]/d[j], exp)
					}
					next = 1 / sum
				}
				if delta := math.Abs(next - u[i][c]); delta > maxDelta {
					maxDelta = delta
				}
				u[i][c] = next
			}
		}
		if maxDelta < cfg.Tolerance {
			break
		}
	}
	// Final objective.
	obj := 0.0
	for i, p := range points {
		for c := range centers {
			obj += math.Pow(u[i][c], cfg.M) * p.DistSq(centers[c])
		}
	}
	res.Objective = obj
	return res, nil
}

// Tiers partitions head candidates into hierarchy levels by distance to
// the base station, per the WCNC'18 scheme ("divides the WSN into
// different hierarchies based on the distance to the BS"). Level 0 is
// the innermost ring (closest to the BS). levels must be >= 1.
func Tiers(dists []float64, levels int) ([]int, error) {
	if levels < 1 {
		return nil, fmt.Errorf("fcm: levels must be >= 1, got %d", levels)
	}
	if len(dists) == 0 {
		return nil, fmt.Errorf("fcm: no distances given")
	}
	maxD := 0.0
	for _, d := range dists {
		if d < 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("fcm: invalid distance %v", d)
		}
		if d > maxD {
			maxD = d
		}
	}
	out := make([]int, len(dists))
	if maxD == 0 {
		return out, nil
	}
	for i, d := range dists {
		lvl := int(float64(levels) * d / maxD)
		if lvl >= levels {
			lvl = levels - 1
		}
		out[i] = lvl
	}
	return out, nil
}
