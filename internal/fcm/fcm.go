// Package fcm implements the FCM-based baseline of the paper's
// evaluation: Fuzzy C-Means clustering (Bezdek, m=2) plus the
// hierarchical multi-hop routing scheme of Wang, Qin & Liu, "An
// energy-efficient clustering routing algorithm for WSN-assisted IoT"
// (WCNC 2018), the paper's reference [14].
//
// The scheme: FCM partitions nodes into k fuzzy clusters; each cluster's
// head is chosen to maximize residual energy among the nodes with high
// membership (the WCNC'18 scheme "employs the concept of maximizing
// residual energy when choosing cluster heads", §2); the network is
// divided into hierarchies by distance to the base station, and heads
// forward fused packets hop by hop through heads in lower hierarchies
// toward the BS — the multi-hop behaviour the QLEC paper blames for
// FCM's packet loss under congestion ("it takes multi-hops to transmit a
// packet to the BS under this model", §5.2).
package fcm

import (
	"fmt"
	"math"

	"qlec/internal/geom"
	"qlec/internal/rng"
)

// Config parameterizes fuzzy c-means.
type Config struct {
	// K is the cluster count.
	K int
	// M is the fuzzifier exponent, > 1. The standard choice (and our
	// default when zero) is 2.
	M float64
	// MaxIterations caps the update loop; zero means 150.
	MaxIterations int
	// Tolerance stops iteration when the largest membership change falls
	// below it; zero means 1e-6.
	Tolerance float64
}

func (c Config) withDefaults() Config {
	if c.M == 0 {
		c.M = 2
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 150
	}
	if c.Tolerance == 0 {
		c.Tolerance = 1e-6
	}
	return c
}

// Validate checks the configuration against the point count.
func (c Config) Validate(n int) error {
	c = c.withDefaults()
	if c.K <= 0 {
		return fmt.Errorf("fcm: K must be positive, got %d", c.K)
	}
	if c.K > n {
		return fmt.Errorf("fcm: K=%d exceeds point count %d", c.K, n)
	}
	if !(c.M > 1) {
		return fmt.Errorf("fcm: fuzzifier M must exceed 1, got %v", c.M)
	}
	if c.MaxIterations < 0 || c.Tolerance < 0 {
		return fmt.Errorf("fcm: negative iteration cap or tolerance")
	}
	return nil
}

// Result is a fuzzy clustering.
type Result struct {
	// Centers are the cluster prototypes.
	Centers []geom.Vec3
	// U is the membership matrix: U[i][c] ∈ [0,1] is point i's degree of
	// membership in cluster c; rows sum to 1.
	U [][]float64
	// Iterations performed.
	Iterations int
	// Objective is the final FCM objective Σᵢ Σ_c u_ic^m ‖xᵢ−v_c‖².
	Objective float64
}

// HardAssign returns each point's highest-membership cluster.
func (r *Result) HardAssign() []int {
	return r.HardAssignInto(make([]int, len(r.U)))
}

// HardAssignInto writes each point's highest-membership cluster into
// dst, growing it if needed, and returns the filled slice. Callers on
// the per-round hot path pass a reused buffer to avoid the allocation.
func (r *Result) HardAssignInto(dst []int) []int {
	dst = growInts(dst, len(r.U))
	for i, row := range r.U {
		best, bestU := 0, -1.0
		for c, u := range row {
			if u > bestU {
				best, bestU = c, u
			}
		}
		dst[i] = best
	}
	return dst
}

// Scratch holds the reusable working storage of ClusterScratch: the
// membership matrix backing, the prototype slice, and the per-point
// distance buffers of the membership update. The zero value is ready;
// buffers grow on demand and persist across calls, so steady-state
// clustering performs no per-call allocation beyond the Result header.
type Scratch struct {
	uBack   []float64 // flat n×k backing for the membership rows
	u       [][]float64
	centers []geom.Vec3
	d       []float64 // point→center distances
	inv     []float64 // inverse squared distances (m=2 fast path)
}

// Cluster runs fuzzy c-means. The stream seeds the initial membership
// matrix; results are deterministic per stream state.
func Cluster(points []geom.Vec3, cfg Config, r *rng.Stream) (*Result, error) {
	var s Scratch
	return ClusterScratch(points, cfg, r, &s)
}

// ClusterScratch is Cluster with caller-owned working storage. The
// returned Result's U and Centers alias the scratch and stay valid only
// until the next call with the same Scratch; callers who need the
// clustering to outlive the scratch must copy.
func ClusterScratch(points []geom.Vec3, cfg Config, r *rng.Stream, s *Scratch) (*Result, error) {
	if err := cfg.Validate(len(points)); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := len(points)
	k := cfg.K

	// Random row-stochastic initial memberships, in one flat backing
	// array: row i is uBack[i*k : (i+1)*k], so the whole matrix is two
	// allocations instead of n+1 and iterates cache-linearly.
	if cap(s.uBack) < n*k {
		s.uBack = make([]float64, n*k)
	}
	s.uBack = s.uBack[:n*k]
	if cap(s.u) < n {
		s.u = make([][]float64, n)
	}
	s.u = s.u[:n]
	u := s.u
	for i := range u {
		u[i] = s.uBack[i*k : (i+1)*k : (i+1)*k]
		total := 0.0
		for c := range u[i] {
			v := r.Float64() + 1e-9
			u[i][c] = v
			total += v
		}
		for c := range u[i] {
			u[i][c] /= total
		}
	}
	if cap(s.centers) < k {
		s.centers = make([]geom.Vec3, k)
	}
	s.centers = s.centers[:k]
	if cap(s.d) < k {
		s.d = make([]float64, k)
		s.inv = make([]float64, k)
	}
	s.d, s.inv = s.d[:k], s.inv[:k]
	centers := s.centers
	for c := range centers {
		centers[c] = geom.Vec3{}
	}
	res := &Result{U: u, Centers: centers}

	// The standard fuzzifier m=2 turns both update steps into plain
	// multiplications: u^m = u·u and (d_c/d_j)^(2/(m−1)) = (d_c/d_j)².
	// That removes every math.Pow call from the hot loop, and the
	// membership update collapses from O(k²) ratio terms per point to
	// O(k) precomputed inverse squared distances.
	fast := cfg.M == 2
	exp := 2 / (cfg.M - 1)
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		res.Iterations = iter + 1
		updateCenters(points, u, centers, cfg.M, fast, r)
		maxDelta := updateMemberships(points, u, centers, s.d, s.inv, exp, fast)
		if maxDelta < cfg.Tolerance {
			break
		}
	}
	// Final objective.
	obj := 0.0
	for i, p := range points {
		for c := range centers {
			w := u[i][c] * u[i][c]
			if !fast {
				w = math.Pow(u[i][c], cfg.M)
			}
			obj += w * p.DistSq(centers[c])
		}
	}
	res.Objective = obj
	return res, nil
}

// updateCenters recomputes each prototype v_c = Σ u^m x / Σ u^m. A
// center whose membership mass underflows to den == 0 (possible once
// crisp memberships appear) is re-seeded on a point drawn uniformly
// from the stream — leaving it at its stale (or zero-value) position
// would freeze a dead prototype in place forever.
func updateCenters(points []geom.Vec3, u [][]float64, centers []geom.Vec3, m float64, fast bool, r *rng.Stream) {
	for c := range centers {
		var num geom.Vec3
		den := 0.0
		if fast {
			for i, p := range points {
				uv := u[i][c]
				w := uv * uv
				num = num.Add(p.Scale(w))
				den += w
			}
		} else {
			for i, p := range points {
				w := math.Pow(u[i][c], m)
				num = num.Add(p.Scale(w))
				den += w
			}
		}
		if den > 0 {
			centers[c] = num.Scale(1 / den)
		} else {
			centers[c] = points[r.Intn(len(points))]
		}
	}
}

// updateMemberships recomputes u_ic = 1 / Σ_j (d_ic/d_ij)^(2/(m−1)) and
// returns the largest membership change. A point coincident with one or
// more centers gets crisp membership split uniformly across all
// coincident centers (several prototypes can collapse onto the same
// position; giving the whole mass to one of them is order-dependent and
// starves the others' mass to zero).
func updateMemberships(points []geom.Vec3, u [][]float64, centers []geom.Vec3, d, inv []float64, exp float64, fast bool) float64 {
	k := len(centers)
	maxDelta := 0.0
	for i, p := range points {
		row := u[i]
		coincident := 0
		for c := range centers {
			dc := p.Dist(centers[c])
			d[c] = dc
			if dc == 0 {
				coincident++
			}
		}
		if coincident > 0 {
			share := 1 / float64(coincident)
			for c := 0; c < k; c++ {
				next := 0.0
				if d[c] == 0 {
					next = share
				}
				if delta := math.Abs(next - row[c]); delta > maxDelta {
					maxDelta = delta
				}
				row[c] = next
			}
			continue
		}
		if fast {
			// m=2: u_ic = (1/d_ic²) / Σ_j (1/d_ij²).
			total := 0.0
			for c := 0; c < k; c++ {
				v := 1 / (d[c] * d[c])
				inv[c] = v
				total += v
			}
			for c := 0; c < k; c++ {
				next := inv[c] / total
				if delta := math.Abs(next - row[c]); delta > maxDelta {
					maxDelta = delta
				}
				row[c] = next
			}
			continue
		}
		for c := 0; c < k; c++ {
			sum := 0.0
			dc := d[c]
			for j := 0; j < k; j++ {
				sum += math.Pow(dc/d[j], exp)
			}
			next := 1 / sum
			if delta := math.Abs(next - row[c]); delta > maxDelta {
				maxDelta = delta
			}
			row[c] = next
		}
	}
	return maxDelta
}

func growInts(dst []int, n int) []int {
	if cap(dst) < n {
		return make([]int, n)
	}
	return dst[:n]
}

// Tiers partitions head candidates into hierarchy levels by distance to
// the base station, per the WCNC'18 scheme ("divides the WSN into
// different hierarchies based on the distance to the BS"). Level 0 is
// the innermost ring (closest to the BS). levels must be >= 1.
func Tiers(dists []float64, levels int) ([]int, error) {
	return TiersInto(dists, levels, make([]int, len(dists)))
}

// TiersInto is Tiers writing into a caller-owned buffer (grown if
// needed); the per-round protocol adapters reuse one across rounds.
func TiersInto(dists []float64, levels int, dst []int) ([]int, error) {
	if levels < 1 {
		return nil, fmt.Errorf("fcm: levels must be >= 1, got %d", levels)
	}
	if len(dists) == 0 {
		return nil, fmt.Errorf("fcm: no distances given")
	}
	maxD := 0.0
	for _, d := range dists {
		if d < 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("fcm: invalid distance %v", d)
		}
		if d > maxD {
			maxD = d
		}
	}
	dst = growInts(dst, len(dists))
	if maxD == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst, nil
	}
	for i, d := range dists {
		lvl := int(float64(levels) * d / maxD)
		if lvl >= levels {
			lvl = levels - 1
		}
		dst[i] = lvl
	}
	return dst, nil
}
