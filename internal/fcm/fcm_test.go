package fcm

import (
	"math"
	"testing"

	"qlec/internal/geom"
	"qlec/internal/rng"
)

func blobs(seed uint64, per int) ([]geom.Vec3, []geom.Vec3) {
	r := rng.New(seed)
	centers := []geom.Vec3{{X: 30, Y: 30, Z: 30}, {X: 170, Y: 150, Z: 60}}
	var pts []geom.Vec3
	for _, c := range centers {
		for i := 0; i < per; i++ {
			pts = append(pts, c.Add(geom.Vec3{
				X: 6 * r.NormFloat64(), Y: 6 * r.NormFloat64(), Z: 6 * r.NormFloat64(),
			}))
		}
	}
	return pts, centers
}

func TestClusterFindsBlobCenters(t *testing.T) {
	pts, centers := blobs(1, 80)
	res, err := Cluster(pts, Config{K: 2}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range centers {
		best := math.Inf(1)
		for _, v := range res.Centers {
			if d := v.Dist(c); d < best {
				best = d
			}
		}
		if best > 5 {
			t.Fatalf("no FCM center near %v (closest %v)", c, best)
		}
	}
}

func TestMembershipRowsSumToOne(t *testing.T) {
	pts, _ := blobs(3, 40)
	res, err := Cluster(pts, Config{K: 3}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range res.U {
		sum := 0.0
		for _, u := range row {
			if u < -1e-12 || u > 1+1e-12 {
				t.Fatalf("membership out of [0,1]: %v", u)
			}
			sum += u
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestHardAssignSeparatesBlobs(t *testing.T) {
	pts, _ := blobs(5, 50)
	res, err := Cluster(pts, Config{K: 2}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	assign := res.HardAssign()
	// All of blob 1 in one cluster, all of blob 2 in the other.
	first := assign[0]
	for i := 1; i < 50; i++ {
		if assign[i] != first {
			t.Fatalf("blob 1 split: point %d", i)
		}
	}
	for i := 50; i < 100; i++ {
		if assign[i] == first {
			t.Fatalf("blob 2 merged into blob 1: point %d", i)
		}
	}
}

func TestClusterDeterministic(t *testing.T) {
	pts, _ := blobs(7, 30)
	a, _ := Cluster(pts, Config{K: 2}, rng.New(8))
	b, _ := Cluster(pts, Config{K: 2}, rng.New(8))
	if a.Objective != b.Objective || a.Iterations != b.Iterations {
		t.Fatal("FCM not deterministic per stream")
	}
}

func TestClusterValidation(t *testing.T) {
	pts, _ := blobs(9, 5)
	if _, err := Cluster(pts, Config{K: 0}, rng.New(1)); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := Cluster(pts, Config{K: 100}, rng.New(1)); err == nil {
		t.Fatal("K>n accepted")
	}
	if _, err := Cluster(pts, Config{K: 2, M: 0.5}, rng.New(1)); err == nil {
		t.Fatal("M<=1 accepted")
	}
	if _, err := Cluster(pts, Config{K: 2, MaxIterations: -1}, rng.New(1)); err == nil {
		t.Fatal("negative iterations accepted")
	}
}

func TestClusterPointOnCenter(t *testing.T) {
	// A point exactly on a prototype must get crisp membership without
	// dividing by zero.
	pts := []geom.Vec3{{X: 0}, {X: 0}, {X: 0}, {X: 100}, {X: 100}, {X: 100}}
	res, err := Cluster(pts, Config{K: 2}, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range res.U {
		for _, u := range row {
			if math.IsNaN(u) {
				t.Fatalf("NaN membership at point %d", i)
			}
		}
	}
	assign := res.HardAssign()
	if assign[0] == assign[3] {
		t.Fatal("coincident clusters not separated")
	}
}

func TestObjectiveDecreasesWithK(t *testing.T) {
	pts, _ := blobs(11, 60)
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4} {
		res, err := Cluster(pts, Config{K: k}, rng.New(12))
		if err != nil {
			t.Fatal(err)
		}
		if res.Objective > prev+1e-6 {
			t.Fatalf("objective rose from %v to %v at k=%d", prev, res.Objective, k)
		}
		prev = res.Objective
	}
}

func TestTiers(t *testing.T) {
	dists := []float64{0, 10, 45, 50, 90, 100}
	tiers, err := Tiers(dists, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 1, 2, 2}
	for i := range want {
		if tiers[i] != want[i] {
			t.Fatalf("tiers = %v, want %v", tiers, want)
		}
	}
}

func TestTiersMonotone(t *testing.T) {
	dists := []float64{5, 80, 20, 60, 99}
	tiers, err := Tiers(dists, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dists {
		for j := range dists {
			if dists[i] < dists[j] && tiers[i] > tiers[j] {
				t.Fatalf("tier ordering violates distance ordering: %v -> %v", dists, tiers)
			}
		}
	}
}

func TestTiersErrors(t *testing.T) {
	if _, err := Tiers(nil, 3); err == nil {
		t.Fatal("empty dists accepted")
	}
	if _, err := Tiers([]float64{1}, 0); err == nil {
		t.Fatal("zero levels accepted")
	}
	if _, err := Tiers([]float64{-1}, 3); err == nil {
		t.Fatal("negative distance accepted")
	}
	if _, err := Tiers([]float64{math.NaN()}, 3); err == nil {
		t.Fatal("NaN distance accepted")
	}
}

func TestTiersAllZeroDistance(t *testing.T) {
	tiers, err := Tiers([]float64{0, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tiers[0] != 0 || tiers[1] != 0 {
		t.Fatalf("tiers = %v", tiers)
	}
}

func BenchmarkCluster100K5(b *testing.B) {
	r := rng.New(13)
	pts := geom.Cube(200).SampleUniformN(r, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(pts, Config{K: 5}, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCoincidentCentersSplitMembership(t *testing.T) {
	// Two prototypes collapsed onto the same position, with a point
	// sitting exactly on them: the crisp membership must split uniformly
	// across the coincident pair (giving the whole mass to whichever
	// center came first starves the other to zero and is order-dependent).
	points := []geom.Vec3{{X: 0}, {X: 10}}
	centers := []geom.Vec3{{X: 0}, {X: 0}, {X: 10}}
	u := [][]float64{{1, 0, 0}, {0, 0, 1}}
	d := make([]float64, 3)
	inv := make([]float64, 3)
	updateMemberships(points, u, centers, d, inv, 2, true)
	if u[0][0] != 0.5 || u[0][1] != 0.5 || u[0][2] != 0 {
		t.Fatalf("coincident membership row = %v, want [0.5 0.5 0]", u[0])
	}
	if u[1][0] != 0 || u[1][1] != 0 || u[1][2] != 1 {
		t.Fatalf("point on single center got row %v, want [0 0 1]", u[1])
	}
}

func TestCoincidentCentersEndToEnd(t *testing.T) {
	// Seeded regression for the full pipeline: with more clusters than
	// distinct positions, prototypes must collapse onto shared positions
	// and every membership row has to stay a clean distribution — no NaN,
	// no row starved to zero mass.
	points := []geom.Vec3{
		{X: 0}, {X: 0}, {X: 0}, {X: 0},
		{X: 50}, {X: 50}, {X: 50}, {X: 50},
	}
	res, err := Cluster(points, Config{K: 4}, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range res.U {
		sum := 0.0
		for _, u := range row {
			if math.IsNaN(u) || u < 0 || u > 1 {
				t.Fatalf("point %d has invalid membership %v", i, row)
			}
			sum += u
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("point %d membership row sums to %v: %v", i, sum, row)
		}
	}
}

func TestDeadCenterReseededFromStream(t *testing.T) {
	// A prototype whose membership mass underflows to zero must be
	// re-seeded on a point drawn from the stream — deterministically, so
	// two runs from the same stream state agree — rather than freezing at
	// its stale position.
	points := []geom.Vec3{{X: 1}, {X: 2}, {X: 3}, {X: 4}}
	u := [][]float64{{1, 0}, {1, 0}, {1, 0}, {1, 0}} // center 1 has no mass
	run := func() geom.Vec3 {
		centers := []geom.Vec3{{}, {X: -99}}
		updateCenters(points, u, centers, 2, true, rng.New(5))
		return centers[1]
	}
	got := run()
	want := points[rng.New(5).Intn(len(points))]
	if got != want {
		t.Fatalf("dead center re-seeded at %v, want stream-determined %v", got, want)
	}
	if again := run(); again != got {
		t.Fatalf("re-seed not deterministic: %v then %v", got, again)
	}
}

func TestClusterScratchAllocs(t *testing.T) {
	r := rng.New(13)
	pts := geom.Cube(200).SampleUniformN(r, 100)
	var s Scratch
	if _, err := ClusterScratch(pts, Config{K: 5}, r, &s); err != nil {
		t.Fatal(err) // warm the scratch
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := ClusterScratch(pts, Config{K: 5}, r, &s); err != nil {
			t.Fatal(err)
		}
	})
	// Steady state allocates only the Result header.
	if allocs > 1 {
		t.Fatalf("ClusterScratch allocates %.1f objects per call, want <= 1", allocs)
	}
}
