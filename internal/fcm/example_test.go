package fcm_test

import (
	"fmt"
	"log"

	"qlec/internal/fcm"
	"qlec/internal/geom"
	"qlec/internal/rng"
)

// Example runs fuzzy c-means on two groups and shows that memberships
// are soft (rows sum to one) while the hard assignment separates the
// groups.
func Example() {
	points := []geom.Vec3{
		{X: 0}, {X: 2}, {X: 4},
		{X: 100}, {X: 102}, {X: 104},
	}
	res, err := fcm.Cluster(points, fcm.Config{K: 2}, rng.New(1))
	if err != nil {
		log.Fatal(err)
	}
	sum := res.U[0][0] + res.U[0][1]
	fmt.Printf("membership row sums to %.3f\n", sum)
	assign := res.HardAssign()
	fmt.Println("groups separated:", assign[0] != assign[3])
	// Output:
	// membership row sums to 1.000
	// groups separated: true
}

// ExampleTiers shows the WCNC'18 hierarchy assignment by distance to
// the base station.
func ExampleTiers() {
	dists := []float64{10, 40, 95}
	tiers, err := fcm.Tiers(dists, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tiers:", tiers)
	// Output:
	// tiers: [0 1 2]
}
