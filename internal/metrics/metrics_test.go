package metrics

import (
	"strings"
	"testing"
)

func validResult() *Result {
	return &Result{
		Protocol:  "QLEC",
		Rounds:    2,
		Generated: 10,
		Delivered: 8,
		Dropped:   [numDropReasons]int{DropLink: 1, DropQueue: 1},
		PerRound: []RoundStats{
			{Round: 0, Generated: 6, Delivered: 5, Energy: 1},
			{Round: 1, Generated: 4, Delivered: 3, Energy: 2},
		},
		TotalEnergy: 3,
		FirstDead:   -1,
	}
}

func TestPDR(t *testing.T) {
	r := validResult()
	if got := r.PDR(); got != 0.8 {
		t.Fatalf("PDR = %v", got)
	}
	empty := &Result{}
	if got := empty.PDR(); got != 1 {
		t.Fatalf("PDR of no traffic = %v, want 1 (nothing lost)", got)
	}
}

func TestDroppedTotal(t *testing.T) {
	r := validResult()
	if got := r.DroppedTotal(); got != 2 {
		t.Fatalf("DroppedTotal = %d", got)
	}
	rs := RoundStats{Dropped: [numDropReasons]int{DropBatch: 3, DropDead: 1}}
	if got := rs.DroppedTotal(); got != 4 {
		t.Fatalf("round DroppedTotal = %d", got)
	}
}

func TestSurvived(t *testing.T) {
	r := validResult()
	if !r.Survived() {
		t.Fatal("lifespan 0 should mean survived")
	}
	r.Lifespan = 2
	if r.Survived() {
		t.Fatal("nonzero lifespan should mean died")
	}
}

func TestValidateAcceptsConsistent(t *testing.T) {
	if err := validResult().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesInconsistencies(t *testing.T) {
	for name, mut := range map[string]func(*Result){
		"negative counters":    func(r *Result) { r.Generated = -1 },
		"over-delivery":        func(r *Result) { r.Delivered = 100 },
		"negative energy":      func(r *Result) { r.TotalEnergy = -1 },
		"round count mismatch": func(r *Result) { r.Rounds = 5 },
		"per-round gen sum":    func(r *Result) { r.PerRound[0].Generated = 99 },
		"per-round energy sum": func(r *Result) { r.PerRound[1].Energy = 50 },
	} {
		r := validResult()
		mut(r)
		if err := r.Validate(); err == nil {
			t.Fatalf("%s not caught", name)
		}
	}
}

func TestWriteRoundsCSV(t *testing.T) {
	var sb strings.Builder
	if err := validResult().WriteRoundsCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "round,heads,generated") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,0,6,5,") {
		t.Fatalf("row 1 = %q", lines[1])
	}
}

func TestWriteRoundsCSVRejectsInvalid(t *testing.T) {
	r := validResult()
	r.Rounds = 7 // inconsistent
	var sb strings.Builder
	if err := r.WriteRoundsCSV(&sb); err == nil {
		t.Fatal("invalid result serialized")
	}
}

func TestDropReasonStrings(t *testing.T) {
	for reason, want := range map[DropReason]string{
		DropLink:  "link",
		DropQueue: "queue",
		DropBatch: "batch",
		DropDead:  "dead",
	} {
		if reason.String() != want {
			t.Fatalf("%d.String() = %q", reason, reason.String())
		}
	}
	if !strings.Contains(DropReason(99).String(), "99") {
		t.Fatal("unknown reason string unhelpful")
	}
}
