// Package metrics defines the measurement types shared by the simulation
// engine and the experiment harness: per-round statistics and whole-run
// results covering every quantity the paper reports — packet delivery
// rate (Fig. 3a), total energy consumption (Fig. 3b), network lifespan
// (Fig. 3c), transmission latency (§1/§5 claims), and per-node energy
// consumption rates (Fig. 4).
package metrics

import (
	"fmt"
	"io"
	"strings"

	"qlec/internal/energy"
	"qlec/internal/stats"
)

// DropReason classifies why a packet failed to reach the base station.
type DropReason int

const (
	// DropLink: the radio link failed on every allowed attempt.
	DropLink DropReason = iota
	// DropQueue: the target head's queue was full on every allowed
	// attempt ("limited storage caches of cluster heads", §4.2).
	DropQueue
	// DropBatch: the end-of-round aggregated burst toward the BS
	// ultimately failed, losing the fused packets.
	DropBatch
	// DropDead: the holder or target died with the packet in flight.
	DropDead
	numDropReasons
)

// String implements fmt.Stringer.
func (d DropReason) String() string {
	switch d {
	case DropLink:
		return "link"
	case DropQueue:
		return "queue"
	case DropBatch:
		return "batch"
	case DropDead:
		return "dead"
	default:
		return fmt.Sprintf("DropReason(%d)", int(d))
	}
}

// RoundStats aggregates one round of simulation.
type RoundStats struct {
	Round     int
	Heads     int
	Generated int
	Delivered int
	Dropped   [numDropReasons]int
	// Energy consumed network-wide during this round.
	Energy energy.Joules
	// AliveAtEnd counts nodes above the death line at round end.
	AliveAtEnd int
	// MeanLatency is the mean end-to-end latency (seconds) of packets
	// delivered this round, 0 if none.
	MeanLatency float64
}

// DroppedTotal sums drops across reasons for the round.
func (r RoundStats) DroppedTotal() int {
	total := 0
	for _, d := range r.Dropped {
		total += d
	}
	return total
}

// EnergyBreakdown splits consumption by radio activity — the
// diagnostic behind EXPERIMENTS.md's Figure 3(b) analysis (e.g. QLEC's
// extra Joules over k-means are transmit energy from energy-selected,
// position-blind heads).
type EnergyBreakdown struct {
	// Tx is data-plane transmit energy (members, relays, bursts).
	Tx energy.Joules
	// Rx is data-plane receive energy at heads, relays and nowhere else
	// (the BS is mains-powered).
	Rx energy.Joules
	// Fusion is the E_DA aggregation cost at heads.
	Fusion energy.Joules
	// Control is the per-round HELLO/advertisement overhead.
	Control energy.Joules
}

// Total sums the categories.
func (b EnergyBreakdown) Total() energy.Joules {
	return b.Tx + b.Rx + b.Fusion + b.Control
}

// NumEnergyCategories is the number of EnergyBreakdown categories.
const NumEnergyCategories = 4

// EnergyCategoryNames names the categories in Categories() order —
// the same lowercase names the audit ledger uses for its causes.
var EnergyCategoryNames = [NumEnergyCategories]string{"tx", "rx", "fusion", "control"}

// Categories returns the breakdown as an array ordered per
// EnergyCategoryNames, for callers that iterate categories (the audit
// report cross-checks ledger per-cause sums against these fields).
func (b EnergyBreakdown) Categories() [NumEnergyCategories]energy.Joules {
	return [NumEnergyCategories]energy.Joules{b.Tx, b.Rx, b.Fusion, b.Control}
}

// Result is a whole-run measurement.
type Result struct {
	Protocol string
	// Rounds actually executed (may be fewer than requested when
	// StopOnDeath ends the run early).
	Rounds   int
	PerRound []RoundStats

	Generated int
	Delivered int
	Dropped   [numDropReasons]int

	// TotalEnergy consumed across the run.
	TotalEnergy energy.Joules
	// Energy splits TotalEnergy by radio activity.
	Energy EnergyBreakdown
	// Lifespan is the 1-based round at whose end the first node fell to
	// the death line, or 0 if every node survived the run.
	Lifespan int
	// FirstDead is the node id that died first, or -1.
	FirstDead int

	// Latency aggregates end-to-end delivery latency in seconds. For
	// hold-and-burst protocols this is dominated by the round length
	// (fused data leaves at round end per Algorithm 1), so cross-
	// protocol latency comparisons should use Access instead.
	Latency stats.Summary
	// Access aggregates the time from a packet's generation to its
	// acceptance at the first cluster head (ACK received), including
	// retries — the latency component the routing algorithm actually
	// controls.
	Access stats.Summary
	// Hops aggregates radio hops per delivered packet.
	Hops stats.Summary
	// ConsumptionRates holds consumed/initial per node at run end
	// (Figure 4's per-node statistic).
	ConsumptionRates []float64
}

// WriteRoundsCSV emits the per-round time series as CSV — the raw data
// behind any per-round plot (alive-count curves, cumulative energy,
// delivery over time).
func (r *Result) WriteRoundsCSV(w io.Writer) error {
	if err := r.Validate(); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("round,heads,generated,delivered,dropped_link,dropped_queue,dropped_batch,dropped_dead,energy_j,alive,mean_latency_s\n")
	for _, rs := range r.PerRound {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d,%d,%d,%g,%d,%g\n",
			rs.Round, rs.Heads, rs.Generated, rs.Delivered,
			rs.Dropped[DropLink], rs.Dropped[DropQueue], rs.Dropped[DropBatch], rs.Dropped[DropDead],
			float64(rs.Energy), rs.AliveAtEnd, rs.MeanLatency)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// PDR returns delivered/generated, the paper's packet delivery rate.
// It returns 1 for a run with no traffic (nothing was lost).
func (r *Result) PDR() float64 {
	if r.Generated == 0 {
		return 1
	}
	return float64(r.Delivered) / float64(r.Generated)
}

// DroppedTotal sums drops across reasons.
func (r *Result) DroppedTotal() int {
	total := 0
	for _, d := range r.Dropped {
		total += d
	}
	return total
}

// Survived reports whether no node hit the death line during the run.
func (r *Result) Survived() bool { return r.Lifespan == 0 }

// Validate cross-checks internal consistency; the engine's tests call it
// on every run.
func (r *Result) Validate() error {
	if r.Generated < 0 || r.Delivered < 0 {
		return fmt.Errorf("metrics: negative counters")
	}
	if r.Delivered+r.DroppedTotal() > r.Generated {
		return fmt.Errorf("metrics: delivered %d + dropped %d exceeds generated %d",
			r.Delivered, r.DroppedTotal(), r.Generated)
	}
	if r.TotalEnergy < 0 {
		return fmt.Errorf("metrics: negative energy %v", r.TotalEnergy)
	}
	if len(r.PerRound) != r.Rounds {
		return fmt.Errorf("metrics: %d per-round entries for %d rounds", len(r.PerRound), r.Rounds)
	}
	var gen, del int
	var en energy.Joules
	for _, rs := range r.PerRound {
		gen += rs.Generated
		del += rs.Delivered
		en += rs.Energy
	}
	if gen != r.Generated || del != r.Delivered {
		return fmt.Errorf("metrics: per-round sums (gen %d, del %d) disagree with totals (%d, %d)",
			gen, del, r.Generated, r.Delivered)
	}
	diff := float64(en - r.TotalEnergy)
	if diff < 0 {
		diff = -diff
	}
	if diff > 1e-9*float64(r.TotalEnergy)+1e-12 {
		return fmt.Errorf("metrics: per-round energy %v disagrees with total %v", en, r.TotalEnergy)
	}
	return nil
}
