package network

import (
	"math"
	"testing"

	"qlec/internal/energy"
	"qlec/internal/rng"
)

// Three-tier provisioning: the deployed initial-energy totals must match
// the configured tier fractions exactly (T-DEEC's accounting identity:
// E_total = N·E0·(1 + m·a + m0·b) with disjoint tiers).
func TestDeployThreeTierEnergyAccounting(t *testing.T) {
	const (
		n     = 100
		e0    = 5.0
		mAdv  = 0.2 // advanced fraction, factor a = 1 → 10 J each
		aAdv  = 1.0
		mSup  = 0.1 // super fraction, factor b = 2 → 15 J each
		bSup  = 2.0
		wantJ = n * e0 * (1 + mAdv*aAdv + mSup*bSup)
	)
	w, err := Deploy(Deployment{
		N: n, Side: 200, InitialEnergy: e0,
		AdvancedFraction: mAdv, AdvancedFactor: aAdv,
		SuperFraction: mSup, SuperFactor: bSup,
	}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(w.InitialTotalEnergy()); math.Abs(got-wantJ) > 1e-9 {
		t.Fatalf("total initial energy %v J, want %v J", got, wantJ)
	}
	counts := map[energy.Joules]int{}
	for _, node := range w.Nodes {
		counts[node.Battery.Initial()]++
	}
	if len(counts) != 3 {
		t.Fatalf("expected 3 energy tiers, got %d: %v", len(counts), counts)
	}
	if counts[e0] != 70 || counts[e0*(1+aAdv)] != 20 || counts[e0*(1+bSup)] != 10 {
		t.Fatalf("tier counts normal/advanced/super = %d/%d/%d, want 70/20/10",
			counts[e0], counts[e0*(1+aAdv)], counts[e0*(1+bSup)])
	}
}

// Adding a zero super tier must not move the RNG: deployments that
// predate the third tier reproduce byte-identically.
func TestDeploySuperTierZeroPreservesStreams(t *testing.T) {
	base := Deployment{
		N: 50, Side: 100, InitialEnergy: 5,
		AdvancedFraction: 0.2, AdvancedFactor: 1,
	}
	w1, err := Deploy(base, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	withZeroSuper := base
	withZeroSuper.SuperFraction = 0
	withZeroSuper.SuperFactor = 0
	w2, err := Deploy(withZeroSuper, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range w1.Nodes {
		if w1.Nodes[i].Pos != w2.Nodes[i].Pos {
			t.Fatalf("node %d position moved: %v vs %v", i, w1.Nodes[i].Pos, w2.Nodes[i].Pos)
		}
		if w1.Nodes[i].Battery.Initial() != w2.Nodes[i].Battery.Initial() {
			t.Fatalf("node %d energy moved", i)
		}
	}
}

func TestDeployTierValidation(t *testing.T) {
	bad := []Deployment{
		{N: 10, Side: 100, InitialEnergy: 5, SuperFraction: -0.1},
		{N: 10, Side: 100, InitialEnergy: 5, SuperFraction: 1.5, SuperFactor: 1},
		{N: 10, Side: 100, InitialEnergy: 5, SuperFraction: 0.2}, // factor missing
		{N: 10, Side: 100, InitialEnergy: 5,
			AdvancedFraction: 0.7, AdvancedFactor: 1,
			SuperFraction: 0.7, SuperFactor: 1}, // fractions sum > 1
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, d)
		}
	}
}
