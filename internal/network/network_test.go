package network

import (
	"math"
	"testing"
	"testing/quick"

	"qlec/internal/energy"
	"qlec/internal/geom"
	"qlec/internal/rng"
)

func paperDeployment() Deployment {
	return Deployment{N: 100, Side: 200, InitialEnergy: 5}
}

func TestDeployPaperSettings(t *testing.T) {
	w, err := Deploy(paperDeployment(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != 100 {
		t.Fatalf("N = %d", w.N())
	}
	if w.BS != (geom.Vec3{X: 100, Y: 100, Z: 100}) {
		t.Fatalf("BS = %v, want cube center", w.BS)
	}
	if w.InitialTotalEnergy() != 500 {
		t.Fatalf("initial total = %v, want 500 J", w.InitialTotalEnergy())
	}
	for _, n := range w.Nodes {
		if !w.Box.Contains(n.Pos) {
			t.Fatalf("node %d outside cube: %v", n.ID, n.Pos)
		}
		if n.LastCHRound != -1 {
			t.Fatalf("node %d LastCHRound = %d, want -1", n.ID, n.LastCHRound)
		}
	}
}

func TestDeployDeterministic(t *testing.T) {
	a, _ := Deploy(paperDeployment(), rng.New(7))
	b, _ := Deploy(paperDeployment(), rng.New(7))
	for i := range a.Nodes {
		if a.Nodes[i].Pos != b.Nodes[i].Pos {
			t.Fatalf("node %d placement differs across equal seeds", i)
		}
	}
}

func TestDeployValidation(t *testing.T) {
	cases := []Deployment{
		{N: 0, Side: 200, InitialEnergy: 5},
		{N: 10, Side: 0, InitialEnergy: 5},
		{N: 10, Side: 200, InitialEnergy: 0},
		{N: -5, Side: 200, InitialEnergy: 5},
		{N: 10, Side: math.Inf(1), InitialEnergy: 5},
	}
	for i, d := range cases {
		if _, err := Deploy(d, rng.New(1)); err == nil {
			t.Fatalf("case %d: invalid deployment %+v accepted", i, d)
		}
	}
}

func TestDeployCustomBS(t *testing.T) {
	bs := geom.Vec3{X: 0, Y: 0, Z: 0}
	d := paperDeployment()
	d.BS = &bs
	w, err := Deploy(d, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if w.BS != bs {
		t.Fatalf("BS = %v, want origin", w.BS)
	}
}

func TestFromPositions(t *testing.T) {
	pos := []geom.Vec3{{X: 1, Y: 1, Z: 1}, {X: 2, Y: 2, Z: 2}}
	en := []energy.Joules{3, 7}
	w, err := FromPositions(pos, en, geom.Cube(10), geom.Vec3{X: 5, Y: 5, Z: 5})
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != 2 || w.InitialTotalEnergy() != 10 {
		t.Fatalf("N=%d total=%v", w.N(), w.InitialTotalEnergy())
	}
	if w.Nodes[1].Battery.Initial() != 7 {
		t.Fatal("per-node energy not honored")
	}
}

func TestFromPositionsValidation(t *testing.T) {
	box := geom.Cube(10)
	bs := box.Center()
	if _, err := FromPositions(nil, nil, box, bs); err == nil {
		t.Fatal("empty positions accepted")
	}
	if _, err := FromPositions([]geom.Vec3{{}}, []energy.Joules{1, 2}, box, bs); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FromPositions([]geom.Vec3{{X: math.NaN()}}, []energy.Joules{1}, box, bs); err == nil {
		t.Fatal("NaN position accepted")
	}
	if _, err := FromPositions([]geom.Vec3{{}}, []energy.Joules{0}, box, bs); err == nil {
		t.Fatal("zero energy accepted")
	}
}

func TestEnergyAccounting(t *testing.T) {
	w, _ := Deploy(Deployment{N: 4, Side: 10, InitialEnergy: 2}, rng.New(2))
	w.Nodes[0].Battery.Draw(1)
	w.Nodes[1].Battery.Draw(0.5)
	if got := w.TotalConsumed(); math.Abs(float64(got)-1.5) > 1e-12 {
		t.Fatalf("TotalConsumed = %v", got)
	}
	if got := w.TotalResidual(); math.Abs(float64(got)-6.5) > 1e-12 {
		t.Fatalf("TotalResidual = %v", got)
	}
	if got := w.MeanResidual(); math.Abs(float64(got)-6.5/4) > 1e-12 {
		t.Fatalf("MeanResidual = %v", got)
	}
}

func TestEstimatedMeanEnergyEq2(t *testing.T) {
	w, _ := Deploy(Deployment{N: 100, Side: 200, InitialEnergy: 5}, rng.New(3))
	// Eq. (2): Ē(r) = (1/N)·E_initial·(1−r/R); E_initial = 500 J here.
	if got := w.EstimatedMeanEnergy(0, 20); math.Abs(float64(got)-5) > 1e-12 {
		t.Fatalf("Ē(0) = %v, want 5", got)
	}
	if got := w.EstimatedMeanEnergy(10, 20); math.Abs(float64(got)-2.5) > 1e-12 {
		t.Fatalf("Ē(10) = %v, want 2.5", got)
	}
	if got := w.EstimatedMeanEnergy(20, 20); got != 0 {
		t.Fatalf("Ē(R) = %v, want 0", got)
	}
	// Past R the estimate clamps at zero rather than going negative.
	if got := w.EstimatedMeanEnergy(25, 20); got != 0 {
		t.Fatalf("Ē(R+5) = %v, want 0", got)
	}
}

func TestEstimatedMeanEnergyPanicsOnBadR(t *testing.T) {
	w, _ := Deploy(Deployment{N: 2, Side: 10, InitialEnergy: 1}, rng.New(4))
	defer func() {
		if recover() == nil {
			t.Fatal("EstimatedMeanEnergy(r, 0) did not panic")
		}
	}()
	w.EstimatedMeanEnergy(1, 0)
}

func TestAliveDeadTracking(t *testing.T) {
	w, _ := Deploy(Deployment{N: 3, Side: 10, InitialEnergy: 1}, rng.New(5))
	if _, dead := w.FirstDead(0); dead {
		t.Fatal("fresh network reported dead node")
	}
	if got := w.AliveCount(0); got != 3 {
		t.Fatalf("AliveCount = %d", got)
	}
	w.Nodes[1].Battery.Draw(1) // node 1 to zero
	id, dead := w.FirstDead(0)
	if !dead || id != 1 {
		t.Fatalf("FirstDead = (%d, %v)", id, dead)
	}
	if got := w.AliveIDs(0); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("AliveIDs = %v", got)
	}
	// A higher death line kills nodes that still hold charge.
	if got := w.AliveCount(2); got != 0 {
		t.Fatalf("AliveCount(line=2) = %d", got)
	}
}

func TestDistToBS(t *testing.T) {
	pos := []geom.Vec3{{X: 0, Y: 0, Z: 0}}
	w, _ := FromPositions(pos, []energy.Joules{1}, geom.Cube(10), geom.Vec3{X: 3, Y: 4, Z: 0})
	if got := w.DistToBS(0); got != 5 {
		t.Fatalf("DistToBS = %v", got)
	}
}

func TestMeanDistToBSMatchesQuadrature(t *testing.T) {
	w, _ := Deploy(Deployment{N: 20000, Side: 200, InitialEnergy: 5}, rng.New(6))
	got := w.MeanDistToBS()
	want := geom.ExpectedMeanDistCubeToCenter(200)
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("mean dist to BS = %v, closed form %v", got, want)
	}
}

func TestConsumptionRates(t *testing.T) {
	w, _ := Deploy(Deployment{N: 2, Side: 10, InitialEnergy: 4}, rng.New(7))
	w.Nodes[0].Battery.Draw(1)
	rates := w.ConsumptionRates()
	if math.Abs(rates[0]-0.25) > 1e-12 || rates[1] != 0 {
		t.Fatalf("ConsumptionRates = %v", rates)
	}
}

func TestDeployHeterogeneous(t *testing.T) {
	// DEEC's two-tier setting: 20% advanced nodes with (1+3)·E0.
	d := Deployment{N: 100, Side: 200, InitialEnergy: 5, AdvancedFraction: 0.2, AdvancedFactor: 3}
	w, err := Deploy(d, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	advanced, normal := 0, 0
	for _, n := range w.Nodes {
		switch n.Battery.Initial() {
		case 5:
			normal++
		case 20:
			advanced++
		default:
			t.Fatalf("unexpected initial energy %v", n.Battery.Initial())
		}
	}
	if advanced != 20 || normal != 80 {
		t.Fatalf("advanced=%d normal=%d, want 20/80", advanced, normal)
	}
	// Total: 80·5 + 20·20 = 800 J.
	if w.InitialTotalEnergy() != 800 {
		t.Fatalf("total = %v", w.InitialTotalEnergy())
	}
}

func TestDeployHeterogeneousDeterministicSubset(t *testing.T) {
	d := Deployment{N: 50, Side: 100, InitialEnergy: 2, AdvancedFraction: 0.3, AdvancedFactor: 1}
	a, _ := Deploy(d, rng.New(22))
	b, _ := Deploy(d, rng.New(22))
	for i := range a.Nodes {
		if a.Nodes[i].Battery.Initial() != b.Nodes[i].Battery.Initial() {
			t.Fatal("advanced subset differs across equal seeds")
		}
	}
}

func TestDeployHeterogeneousValidation(t *testing.T) {
	base := Deployment{N: 10, Side: 100, InitialEnergy: 2}
	bad := base
	bad.AdvancedFraction = 1.5
	if _, err := Deploy(bad, rng.New(1)); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	bad = base
	bad.AdvancedFraction = -0.1
	if _, err := Deploy(bad, rng.New(1)); err == nil {
		t.Fatal("negative fraction accepted")
	}
	bad = base
	bad.AdvancedFraction = 0.5
	bad.AdvancedFactor = 0
	if _, err := Deploy(bad, rng.New(1)); err == nil {
		t.Fatal("zero factor with advanced nodes accepted")
	}
}

// Property: total energy is conserved — consumed + residual == initial —
// under arbitrary draw sequences.
func TestNetworkEnergyConservationQuick(t *testing.T) {
	w, _ := Deploy(Deployment{N: 8, Side: 10, InitialEnergy: 3}, rng.New(8))
	f := func(node uint8, amount uint16) bool {
		w.Nodes[int(node)%8].Battery.Draw(energy.Joules(float64(amount) / 1e5))
		total := float64(w.TotalConsumed() + w.TotalResidual())
		return math.Abs(total-float64(w.InitialTotalEnergy())) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
