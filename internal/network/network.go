// Package network models the wireless sensor network of the QLEC paper:
// N battery-operated nodes in an M×M×M cube plus a mains-powered base
// station (sink). It owns node placement, energy state queries, and the
// alive/dead bookkeeping against the energy death line (§5.1).
package network

import (
	"fmt"
	"math"

	"qlec/internal/energy"
	"qlec/internal/geom"
	"qlec/internal/rng"
)

// BSID is the pseudo-identifier of the base station in routing tables.
// Node identifiers are their non-negative slice indices; the BS is not a
// node (it is mains-powered and never clustered), so it gets a sentinel.
const BSID = -1

// Node is one sensor.
type Node struct {
	ID      int
	Pos     geom.Vec3
	Battery *energy.Battery

	// LastCHRound is the most recent round in which the node served as a
	// cluster head, or -1 if never. DEEC's rotating-epoch eligibility
	// check (Alg. 2 line 4) reads this.
	LastCHRound int
}

// Alive reports whether the node's residual energy is above the death
// line.
func (n *Node) Alive(deathLine energy.Joules) bool {
	return !n.Battery.Depleted(deathLine)
}

// Network is the deployed sensor field.
type Network struct {
	Nodes []*Node
	BS    geom.Vec3
	Box   geom.AABB

	initialTotal energy.Joules
}

// Deployment describes how to build a Network.
type Deployment struct {
	// N is the node count. Required.
	N int
	// Side is the cube edge length M in meters. Required.
	Side float64
	// InitialEnergy per normal node in Joules. Required.
	InitialEnergy energy.Joules
	// BS optionally overrides the base-station position; nil means the
	// cube center (the paper's Fig. 1).
	BS *geom.Vec3
	// AdvancedFraction is the share of nodes provisioned as "advanced"
	// nodes carrying extra energy — the two-tier heterogeneous setting
	// DEEC was designed for (Qing et al. 2006 use m·N advanced nodes
	// with (1+a)·E0). Zero means a homogeneous network (§5.1's setup).
	AdvancedFraction float64
	// AdvancedFactor is the extra-energy multiplier a: advanced nodes
	// start with (1+a)·InitialEnergy. Ignored when AdvancedFraction is
	// zero.
	AdvancedFactor float64
	// SuperFraction is the share of nodes provisioned as "super" nodes —
	// the third tier of T-DEEC's heterogeneous setting (arXiv 1408.4112:
	// m₀·N super nodes with (1+b)·E0 on top of the advanced tier). The
	// advanced and super tiers are disjoint; their fractions must sum to
	// at most 1.
	SuperFraction float64
	// SuperFactor is the super tier's extra-energy multiplier b: super
	// nodes start with (1+b)·InitialEnergy. Ignored when SuperFraction
	// is zero.
	SuperFactor float64
}

// Validate checks the deployment parameters.
func (d Deployment) Validate() error {
	if d.N <= 0 {
		return fmt.Errorf("network: node count must be positive, got %d", d.N)
	}
	if !(d.Side > 0) || math.IsInf(d.Side, 0) {
		return fmt.Errorf("network: cube side must be positive and finite, got %v", d.Side)
	}
	if d.InitialEnergy <= 0 {
		return fmt.Errorf("network: initial energy must be positive, got %v", d.InitialEnergy)
	}
	if d.AdvancedFraction < 0 || d.AdvancedFraction > 1 {
		return fmt.Errorf("network: advanced fraction %v outside [0,1]", d.AdvancedFraction)
	}
	if d.AdvancedFraction > 0 && d.AdvancedFactor <= 0 {
		return fmt.Errorf("network: advanced factor must be positive with advanced nodes, got %v", d.AdvancedFactor)
	}
	if d.SuperFraction < 0 || d.SuperFraction > 1 {
		return fmt.Errorf("network: super fraction %v outside [0,1]", d.SuperFraction)
	}
	if d.SuperFraction > 0 && d.SuperFactor <= 0 {
		return fmt.Errorf("network: super factor must be positive with super nodes, got %v", d.SuperFactor)
	}
	if d.AdvancedFraction+d.SuperFraction > 1 {
		return fmt.Errorf("network: advanced+super fractions %v exceed 1",
			d.AdvancedFraction+d.SuperFraction)
	}
	return nil
}

// Deploy places N nodes uniformly at random in the cube, drawing
// positions (and the advanced-node subset, when configured) from r.
func Deploy(d Deployment, r *rng.Stream) (*Network, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	box := geom.Cube(d.Side)
	advanced := make([]bool, d.N)
	super := make([]bool, d.N)
	if d.AdvancedFraction > 0 || d.SuperFraction > 0 {
		// One permutation assigns both tiers: the advanced tier takes the
		// prefix (exactly as the two-tier code always did, so existing
		// seeds reproduce byte-identically) and the super tier the next
		// segment, keeping the tiers disjoint.
		countAdv := int(math.Round(d.AdvancedFraction * float64(d.N)))
		countSuper := int(math.Round(d.SuperFraction * float64(d.N)))
		if countAdv+countSuper > d.N {
			countSuper = d.N - countAdv
		}
		perm := r.Perm(d.N)
		for _, idx := range perm[:countAdv] {
			advanced[idx] = true
		}
		for _, idx := range perm[countAdv : countAdv+countSuper] {
			super[idx] = true
		}
	}
	nodes := make([]*Node, d.N)
	for i := range nodes {
		e := d.InitialEnergy
		switch {
		case super[i]:
			e = energy.Joules(float64(e) * (1 + d.SuperFactor))
		case advanced[i]:
			e = energy.Joules(float64(e) * (1 + d.AdvancedFactor))
		}
		nodes[i] = &Node{
			ID:          i,
			Pos:         box.SampleUniform(r),
			Battery:     energy.NewBattery(e),
			LastCHRound: -1,
		}
	}
	bs := box.Center()
	if d.BS != nil {
		bs = *d.BS
	}
	return newNetwork(nodes, bs, box), nil
}

// FromPositions builds a network from explicit node positions and
// per-node initial energies (the large-scale dataset path, §5.3).
// energies must have the same length as positions.
func FromPositions(positions []geom.Vec3, energies []energy.Joules, box geom.AABB, bs geom.Vec3) (*Network, error) {
	if len(positions) == 0 {
		return nil, fmt.Errorf("network: no positions given")
	}
	if len(positions) != len(energies) {
		return nil, fmt.Errorf("network: %d positions but %d energies", len(positions), len(energies))
	}
	if err := box.Validate(); err != nil {
		return nil, err
	}
	nodes := make([]*Node, len(positions))
	for i, p := range positions {
		if !p.IsFinite() {
			return nil, fmt.Errorf("network: position %d not finite: %v", i, p)
		}
		if energies[i] <= 0 {
			return nil, fmt.Errorf("network: energy %d not positive: %v", i, energies[i])
		}
		nodes[i] = &Node{
			ID:          i,
			Pos:         p,
			Battery:     energy.NewBattery(energies[i]),
			LastCHRound: -1,
		}
	}
	return newNetwork(nodes, bs, box), nil
}

func newNetwork(nodes []*Node, bs geom.Vec3, box geom.AABB) *Network {
	var total energy.Joules
	for _, n := range nodes {
		total += n.Battery.Initial()
	}
	return &Network{Nodes: nodes, BS: bs, Box: box, initialTotal: total}
}

// N returns the node count.
func (w *Network) N() int { return len(w.Nodes) }

// InitialTotalEnergy returns E_initial of Eq. (2): the summed initial
// charge of every node.
func (w *Network) InitialTotalEnergy() energy.Joules { return w.initialTotal }

// TotalResidual returns the current summed residual energy.
func (w *Network) TotalResidual() energy.Joules {
	var total energy.Joules
	for _, n := range w.Nodes {
		total += n.Battery.Residual()
	}
	return total
}

// TotalConsumed returns the summed energy drawn so far — the quantity on
// the y-axis of Figure 3(b).
func (w *Network) TotalConsumed() energy.Joules {
	var total energy.Joules
	for _, n := range w.Nodes {
		total += n.Battery.Consumed()
	}
	return total
}

// MeanResidual returns the average residual energy across all nodes
// (alive or dead).
func (w *Network) MeanResidual() energy.Joules {
	if len(w.Nodes) == 0 {
		return 0
	}
	return w.TotalResidual() / energy.Joules(len(w.Nodes))
}

// EstimatedMeanEnergy evaluates the paper's Eq. (2): the a-priori
// estimate of the per-node average energy at round r of a planned
// R-round run,
//
//	Ē(r) = (1/N)·E_initial·(1 − r/R).
//
// DEEC uses this estimate instead of gossiping true residual energies.
func (w *Network) EstimatedMeanEnergy(round, totalRounds int) energy.Joules {
	if totalRounds <= 0 {
		panic("network: totalRounds must be positive")
	}
	frac := 1 - float64(round)/float64(totalRounds)
	if frac < 0 {
		frac = 0
	}
	return w.initialTotal / energy.Joules(len(w.Nodes)) * energy.Joules(frac)
}

// AliveIDs returns the ids of nodes above the death line, ascending.
func (w *Network) AliveIDs(deathLine energy.Joules) []int {
	ids := make([]int, 0, len(w.Nodes))
	for _, n := range w.Nodes {
		if n.Alive(deathLine) {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// AliveIDsInto is AliveIDs appending into a caller-owned buffer
// (truncated first) — the allocation-free form for per-round hot paths.
func (w *Network) AliveIDsInto(deathLine energy.Joules, dst []int) []int {
	dst = dst[:0]
	for _, n := range w.Nodes {
		if n.Alive(deathLine) {
			dst = append(dst, n.ID)
		}
	}
	return dst
}

// AliveCount returns how many nodes are above the death line.
func (w *Network) AliveCount(deathLine energy.Joules) int {
	c := 0
	for _, n := range w.Nodes {
		if n.Alive(deathLine) {
			c++
		}
	}
	return c
}

// FirstDead reports whether any node has fallen to or below the death
// line — the paper's network-death criterion — and returns the id of one
// such node (the lowest id) when true.
func (w *Network) FirstDead(deathLine energy.Joules) (id int, dead bool) {
	for _, n := range w.Nodes {
		if !n.Alive(deathLine) {
			return n.ID, true
		}
	}
	return 0, false
}

// DistToBS returns the distance from node id to the base station.
func (w *Network) DistToBS(id int) float64 {
	return w.Nodes[id].Pos.Dist(w.BS)
}

// MeanDistToBS returns the mean node→BS distance, the d_toBS estimate of
// §3.2 ("approximated by the average distance between the nodes and BS").
func (w *Network) MeanDistToBS() float64 {
	pts := make([]geom.Vec3, len(w.Nodes))
	for i, n := range w.Nodes {
		pts[i] = n.Pos
	}
	return geom.MeanDistToPoint(pts, w.BS)
}

// Positions returns a snapshot of all node positions, indexed by id.
func (w *Network) Positions() []geom.Vec3 {
	pts := make([]geom.Vec3, len(w.Nodes))
	for i, n := range w.Nodes {
		pts[i] = n.Pos
	}
	return pts
}

// ConsumptionRates returns consumed/initial per node, indexed by id —
// the per-node statistic mapped in Figure 4.
func (w *Network) ConsumptionRates() []float64 {
	rates := make([]float64, len(w.Nodes))
	for i, n := range w.Nodes {
		rates[i] = n.Battery.ConsumptionRate()
	}
	return rates
}
