package qlearn

import (
	"math"
	"testing"

	"qlec/internal/energy"
	"qlec/internal/network"
	"qlec/internal/rng"
)

// TestDecisionObserverCapture: a Decide under observation must report
// the exact candidate set (BS first, probe order), Q-values matching
// QValue recomputation, the greedy argmax, and the V refresh.
func TestDecisionObserverCapture(t *testing.T) {
	w := testNet(t, 12, 3)
	l := newTestLearner(t, w)
	heads := []int{2, 5, 7}

	var got []Decision
	l.SetDecisionObserver(func(d Decision) { got = append(got, d) })
	chosen := l.Decide(0, heads)
	if len(got) != 1 {
		t.Fatalf("observer fired %d times, want 1", len(got))
	}
	d := got[0]
	if d.Node != 0 || d.Chosen != chosen || d.Greedy != chosen || d.Explored {
		t.Fatalf("decision %+v inconsistent with Decide() = %d", d, chosen)
	}
	wantCands := []int{network.BSID, 2, 5, 7}
	if len(d.Candidates) != len(wantCands) || len(d.QValues) != len(wantCands) {
		t.Fatalf("candidates %v / %d q-values, want %v", d.Candidates, len(d.QValues), wantCands)
	}
	bestQ := math.Inf(-1)
	for i, c := range d.Candidates {
		if c != wantCands[i] {
			t.Fatalf("candidate[%d] = %d, want %d", i, c, wantCands[i])
		}
		if d.QValues[i] > bestQ {
			bestQ = d.QValues[i]
		}
	}
	if d.VAfter != bestQ || l.V(0) != bestQ {
		t.Fatalf("VAfter = %v, max Q = %v, V(0) = %v; all must agree", d.VAfter, bestQ, l.V(0))
	}
	if !math.IsNaN(d.EpsRoll) {
		t.Fatalf("EpsRoll = %v without exploration, want NaN", d.EpsRoll)
	}

	// Detaching stops capture.
	l.SetDecisionObserver(nil)
	l.Decide(0, heads)
	if len(got) != 1 {
		t.Fatal("observer fired after detach")
	}
}

// TestDecisionObserverPreservesDecisions: installing the observer must
// not perturb decisions, V updates, or the exploration RNG stream —
// observed and unobserved learners given identical histories must make
// byte-identical choices.
func TestDecisionObserverPreservesDecisions(t *testing.T) {
	run := func(observe bool) ([]int, []float64) {
		w := testNet(t, 20, 11)
		p := DefaultParams()
		p.Epsilon = 0.3
		l, err := NewLearner(w, energy.DefaultModel(), 4000, p)
		if err != nil {
			t.Fatal(err)
		}
		l.SetExploration(rng.NewNamed(99, "explore"))
		if observe {
			l.SetDecisionObserver(func(Decision) {})
			l.SetOutcomeObserver(func(Outcome) {})
		}
		heads := []int{1, 2, 3}
		var picks []int
		var vs []float64
		for i := 0; i < 200; i++ {
			from := 4 + i%10
			to := l.Decide(from, heads)
			l.Observe(from, to, i%3 != 0)
			picks = append(picks, to)
			vs = append(vs, l.V(from))
		}
		return picks, vs
	}
	basePicks, baseVs := run(false)
	obsPicks, obsVs := run(true)
	for i := range basePicks {
		if basePicks[i] != obsPicks[i] || baseVs[i] != obsVs[i] {
			t.Fatalf("step %d: observed (%d, %v) != unobserved (%d, %v)",
				i, obsPicks[i], obsVs[i], basePicks[i], baseVs[i])
		}
	}
}

// TestDecisionObserverEpsRoll: under exploration every decision carries
// the consumed roll, and explored decisions are flagged.
func TestDecisionObserverEpsRoll(t *testing.T) {
	w := testNet(t, 20, 5)
	p := DefaultParams()
	p.Epsilon = 0.5
	l, err := NewLearner(w, energy.DefaultModel(), 4000, p)
	if err != nil {
		t.Fatal(err)
	}
	l.SetExploration(rng.NewNamed(5, "explore"))
	heads := []int{1, 2, 3, 4}
	explored, greedy := 0, 0
	l.SetDecisionObserver(func(d Decision) {
		if math.IsNaN(d.EpsRoll) {
			t.Error("exploration enabled but EpsRoll is NaN")
		}
		if d.Explored != (d.EpsRoll < p.Epsilon) {
			t.Errorf("Explored = %v with roll %v vs ε %v", d.Explored, d.EpsRoll, p.Epsilon)
		}
		if d.Explored {
			explored++
		} else if d.Chosen != d.Greedy {
			t.Errorf("greedy decision chose %d, argmax %d", d.Chosen, d.Greedy)
		} else {
			greedy++
		}
	})
	for i := 0; i < 200; i++ {
		l.Decide(10, heads)
	}
	if explored == 0 || greedy == 0 {
		t.Fatalf("explored %d / greedy %d decisions, want both > 0", explored, greedy)
	}
}

// TestOutcomeObserverReward: the outcome must carry the post-update
// link estimate and the realized reward for the observed (from, to)
// pair, matching the Eq. (17)/(20) forms.
func TestOutcomeObserverReward(t *testing.T) {
	w := testNet(t, 12, 9)
	l := newTestLearner(t, w)
	var outs []Outcome
	l.SetOutcomeObserver(func(o Outcome) { outs = append(outs, o) })

	l.Observe(3, 7, true)
	l.Observe(3, 7, false)
	if len(outs) != 2 {
		t.Fatalf("observer fired %d times, want 2", len(outs))
	}
	if !outs[0].Success || outs[1].Success {
		t.Fatalf("success flags %v/%v, want true/false", outs[0].Success, outs[1].Success)
	}
	for i, o := range outs {
		if o.From != 3 || o.To != 7 {
			t.Fatalf("outcome %d endpoints (%d,%d), want (3,7)", i, o.From, o.To)
		}
		if o.LinkP != l.LinkP(3, 7) && i == 1 {
			t.Fatalf("final LinkP %v, estimator says %v", o.LinkP, l.LinkP(3, 7))
		}
	}
	if wantS := l.rewardSuccess(3, 7); outs[0].Reward != wantS {
		t.Fatalf("success reward %v, want Eq.(17) %v", outs[0].Reward, wantS)
	}
	if wantF := l.rewardFailure(3, 7); outs[1].Reward != wantF {
		t.Fatalf("failure reward %v, want Eq.(20) %v", outs[1].Reward, wantF)
	}
}
