// Package qlearn implements the Q-learning machinery of QLEC's Data
// Transmission Phase (§3.3, §4.2, Algorithm 4).
//
// The paper's construction is model-based value iteration driven by
// learned link statistics rather than sample-based Q-learning: on every
// Send-Data call the node recomputes Q*(b_i, a_j) for EVERY action
// (each cluster head plus the base station) from
//
//	Q*(b_i, a_j) = R_t + γ·(P·V*(h_j) + (1−P)·V*(b_i))        (Eq. 15)
//	R_t          = P·R_success + (1−P)·R_fail                  (Eq. 16)
//
// where P is the node's running estimate of the link success probability
// to h_j ("estimated by the ratio between the successfully transmitted
// packets and all the packets sent recently", via ACKs), and the rewards
// are Eq. (17) on success, Eq. (19) for the base station (an extra −l
// penalty), and Eq. (20) on failure. The node then sets
// V*(b_i) = max_a Q*(b_i, a) and forwards to the argmax head.
//
// What is *learned* over time is the link-probability table and the V
// values (cluster heads update theirs after every round per Algorithm 1
// line 15); convergence of V is the "X updates" in the paper's O(kX)
// running-time claim, and this package counts updates and exposes a
// convergence test so that claim can be benchmarked directly.
//
// Unit note (DESIGN.md §6.4): Eq. (17)–(20) mix raw Joule quantities
// with the dimensionless weights of Table 2 (α₁=0.05, α₂=1.05...).
// Those weights only produce a meaningful trade-off if the energy terms
// are normalized, so x(·) here is residual energy as a fraction of
// initial energy (x ∈ [0,1], base station pinned at 1) and y(·) is the
// Eq. (18) transmission cost normalized by the cost of the longest
// possible hop in the deployment box.
package qlearn

import (
	"fmt"
	"math"

	"qlec/internal/energy"
	"qlec/internal/network"
	"qlec/internal/rng"
)

// Params collects the reward weights and learning constants of Table 2.
type Params struct {
	// Gamma is the discount rate γ ∈ [0,1] (Table 2: 0.95).
	Gamma float64
	// G is the flat punishment −g applied to every transmission attempt.
	G float64
	// Alpha1 weights the residual energies x(b_i)+x(h_j) on success
	// (Table 2: 0.05).
	Alpha1 float64
	// Alpha2 weights the transmission cost y(b_i,h_j) on success
	// (Table 2: 1.05).
	Alpha2 float64
	// Beta1 weights x(b_i) on failure (Table 2: 0.05).
	Beta1 float64
	// Beta2 weights y(b_i,h_j) on failure (Table 2: 1.05).
	Beta2 float64
	// L is the penalty for bypassing clustering and talking directly to
	// the base station ("set to be an arbitrarily large number", §4.2).
	L float64
	// LinkAlpha is the EWMA smoothing factor for the per-link success
	// estimator.
	LinkAlpha float64
	// InitialLinkP is the optimistic prior success probability for a
	// link with no history yet; optimism makes nodes try every head.
	InitialLinkP float64
	// Epsilon enables ε-greedy exploration, an extension beyond the
	// paper's purely greedy Algorithm 4: with probability Epsilon a
	// Decide call picks a uniformly random head instead of the argmax.
	// Exploration requires a stream via Learner.SetExploration; with the
	// paper's optimistic link priors it is rarely needed (untried
	// actions already look good), but it protects against premature
	// convergence when priors are pessimistic. Zero (the default)
	// reproduces the paper exactly.
	Epsilon float64
}

// DefaultParams returns Table 2's weights with sensible values for the
// constants the paper leaves unspecified (g, l, link estimator).
//
// The choice of g matters more than the paper lets on: with α₁=0.05 the
// success reward's energy bonus can reach α₁·(x(b_i)+x(h_j)) ≤ 0.1, and
// if g is below that, per-step rewards go positive, V values turn
// positive, and the (1−p)·V(self) term of Eq. (15) makes a *failing*
// action self-reinforcing — the node never reroutes. QELAR (the paper's
// cited ancestor) keeps per-step rewards negative for exactly this
// reason, so the default g = 0.3 dominates the maximum energy bonus.
func DefaultParams() Params {
	return Params{
		Gamma:        0.95,
		G:            0.3,
		Alpha1:       0.05,
		Alpha2:       1.05,
		Beta1:        0.05,
		Beta2:        1.05,
		L:            100,
		LinkAlpha:    0.25,
		InitialLinkP: 0.95,
	}
}

// Validate checks parameter ranges.
func (p Params) Validate() error {
	if !(p.Gamma >= 0 && p.Gamma <= 1) {
		return fmt.Errorf("qlearn: gamma %v outside [0,1]", p.Gamma)
	}
	if !(p.LinkAlpha > 0 && p.LinkAlpha <= 1) {
		return fmt.Errorf("qlearn: link alpha %v outside (0,1]", p.LinkAlpha)
	}
	if !(p.InitialLinkP >= 0 && p.InitialLinkP <= 1) {
		return fmt.Errorf("qlearn: initial link probability %v outside [0,1]", p.InitialLinkP)
	}
	if p.L < 0 || p.G < 0 {
		return fmt.Errorf("qlearn: penalties must be non-negative (g=%v, l=%v)", p.G, p.L)
	}
	for _, w := range []float64{p.Alpha1, p.Alpha2, p.Beta1, p.Beta2} {
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("qlearn: reward weights must be non-negative, got %v", w)
		}
	}
	if p.Epsilon < 0 || p.Epsilon >= 1 || math.IsNaN(p.Epsilon) {
		return fmt.Errorf("qlearn: epsilon %v outside [0,1)", p.Epsilon)
	}
	return nil
}

// Learner holds the Q-learning state for an entire network: V values per
// node and link-probability estimators per directed link. One Learner
// serves all nodes (the paper's nodes each keep their own table; pooling
// them in one struct is an implementation convenience — no information
// crosses nodes that the paper doesn't allow, since Q computation for
// b_i reads only V(b_i), V(h_j) — which heads broadcast — and b_i's own
// link estimates).
type Learner struct {
	params Params
	net    *network.Network
	model  energy.Calc // radio model with the crossover distance precomputed
	bits   int

	v   []float64 // V*(b_i), indexed by node id
	vBS float64   // V*(h_BS), terminal, stays 0
	// links holds the flattened per-link EWMA success estimates, indexed
	// from*stride + (to+1) with stride = N+1 (column 0 is the base
	// station, BSID = −1). NaN marks a link with no observations yet —
	// LinkP then reports the optimistic prior. Decide probes every head
	// per packet, so this dense O(1) lookup replaces a map probe on the
	// hottest path in the simulator; the O(N²) memory (8 bytes per
	// directed link, ~67 MB at the §5.3 scale of 2896 nodes) is the
	// accepted trade-off (DESIGN.md §8).
	links  []float64
	stride int

	// yNorm is the Eq. (18) cost of the longest possible in-box hop,
	// used to normalize y(·) into [0,1].
	yNorm float64

	// Per-epoch geometry cache for Decide. y(from, to) is a pure
	// function of node positions, which only change between rounds, yet
	// the un-cached path recomputed it (a sqrt and the amplifier power
	// law) for every action of every packet's Decide call. BeginEpoch
	// arms the cache for one head set; each node's row of y values —
	// [BS, heads[0], heads[1], ...] — fills lazily on its first Decide
	// of the epoch and is reused for the rest. Cached and fresh values
	// are bit-identical (same pure computation), so results are
	// unchanged.
	yEpoch   uint64
	yHeads   []int
	yStamp   []uint64
	yRows    []float64
	yScratch []float64

	// yPair memoizes y(from, to) per link across epochs: positions only
	// change under mobility, which the engine reports via
	// InvalidateGeometry (cluster.GeometryInvalidator), so in a static
	// network each link's cost is computed exactly once for the run.
	// Dense (N+1)-stride layout with to==BSID at column 0; NaN marks an
	// uncomputed cell. Allocated on first BeginEpoch.
	yPair []float64

	updates   uint64
	lastDelta float64
	maxDelta  *deltaWindow

	// explore drives ε-greedy action selection when params.Epsilon > 0.
	explore *rng.Stream

	// decObs/outObs, when installed, observe Decide calls and ACK
	// outcomes for the audit flight recorder (see observe.go).
	decObs DecisionObserver
	outObs OutcomeObserver
}

// NewLearner builds a Learner for the network. bits is the packet size L
// used in the Eq. (18) cost inside rewards.
func NewLearner(w *network.Network, model energy.Model, bits int, params Params) (*Learner, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if bits <= 0 {
		return nil, fmt.Errorf("qlearn: bits must be positive, got %d", bits)
	}
	// Normalize y by the cost of a *typical* long hop — half the largest
	// box dimension — not the worst-case diagonal. With a diagonal
	// normalizer the d⁴ multi-path law makes every realistic hop's y
	// vanish, the α₂ distance penalty stops differentiating heads, and
	// all members converge on whichever head has the best V (the one
	// nearest the BS), ballooning transmit energy. Half-extent keeps
	// in-cluster hops at y ≈ 0.1–0.5 and far hops at y ≫ 1, so distance
	// dominates and residual energy/link quality break ties — the
	// trade-off the Table 2 weights (α₁=0.05, α₂=1.05) encode.
	size := w.Box.Size()
	ref := math.Max(size.X, math.Max(size.Y, size.Z)) / 2
	l := &Learner{
		params:   params,
		net:      w,
		model:    model.Calc(),
		bits:     bits,
		v:        make([]float64, w.N()),
		links:    make([]float64, w.N()*(w.N()+1)),
		stride:   w.N() + 1,
		yNorm:    float64(model.TxAmplifier(bits, ref)),
		maxDelta: newDeltaWindow(64),
	}
	for i := range l.links {
		l.links[i] = math.NaN()
	}
	if l.yNorm <= 0 {
		return nil, fmt.Errorf("qlearn: degenerate deployment box (size %v)", size)
	}
	return l, nil
}

// x returns the normalized residual energy of a node, or 1 for the
// mains-powered base station.
func (l *Learner) x(id int) float64 {
	if id == network.BSID {
		return 1
	}
	b := l.net.Nodes[id].Battery
	return float64(b.Residual()) / float64(b.Initial())
}

// y returns the normalized Eq. (18) transmission cost from node to
// target.
func (l *Learner) y(from, to int) float64 {
	var d float64
	if to == network.BSID {
		d = l.net.DistToBS(from)
	} else {
		d = l.net.Nodes[from].Pos.Dist(l.net.Nodes[to].Pos)
	}
	return float64(l.model.TxAmplifier(l.bits, d)) / l.yNorm
}

// LinkP returns the node's current estimate of the link success
// probability to target.
func (l *Learner) LinkP(from, to int) float64 {
	if p := l.links[from*l.stride+to+1]; !math.IsNaN(p) {
		return p
	}
	return l.params.InitialLinkP
}

// rewardSuccess evaluates Eq. (17), or Eq. (19) when target is the BS.
func (l *Learner) rewardSuccess(from, to int) float64 {
	r := -l.params.G + l.params.Alpha1*(l.x(from)+l.x(to)) - l.params.Alpha2*l.y(from, to)
	if to == network.BSID {
		r -= l.params.L
	}
	return r
}

// rewardFailure evaluates Eq. (20).
func (l *Learner) rewardFailure(from, to int) float64 {
	return -l.params.G + l.params.Beta1*l.x(from) - l.params.Beta2*l.y(from, to)
}

// q evaluates Eq. (15)+(16) for one state-action pair.
func (l *Learner) q(from, to int) float64 {
	return l.qHoisted(from, to, l.x(from), l.v[from], l.y(from, to))
}

// qHoisted is q with the from-side invariants — x(from) and V*(from),
// identical for every action probed by one Decide call — and the
// geometry cost y supplied by the caller (Decide reads it from the
// per-epoch cache). The arithmetic is term-for-term the same expression
// as the pre-flattening rewardSuccess/rewardFailure/q composition, so
// results stay byte-identical (the determinism-preservation rule of
// DESIGN.md §8); the transmission cost y is evaluated once instead of
// once per reward term.
func (l *Learner) qHoisted(from, to int, xFrom, vFrom, y float64) float64 {
	p := l.LinkP(from, to)
	rs := -l.params.G + l.params.Alpha1*(xFrom+l.x(to)) - l.params.Alpha2*y
	if to == network.BSID {
		rs -= l.params.L
	}
	rf := -l.params.G + l.params.Beta1*xFrom - l.params.Beta2*y
	rt := p*rs + (1-p)*rf
	var vTo float64
	if to == network.BSID {
		vTo = l.vBS
	} else {
		vTo = l.v[to]
	}
	return rt + l.params.Gamma*(p*vTo+(1-p)*vFrom)
}

// BeginEpoch arms the geometry cache for one action set — typically a
// round's elected heads. Until the next BeginEpoch, Decide(from, heads)
// calls whose heads match the epoch's set read y(from, ·) from a cached
// per-node row instead of recomputing it per packet. Callers whose node
// positions can change (a mobility model) must call BeginEpoch again
// afterwards — QLEC does so every round from StartRound, which runs
// after any movement. Passing nil disarms the cache.
func (l *Learner) BeginEpoch(heads []int) {
	l.yEpoch++
	l.yHeads = append(l.yHeads[:0], heads...)
	if heads == nil {
		l.yHeads = nil
		return
	}
	n := len(l.v)
	if len(l.yStamp) != n {
		l.yStamp = make([]uint64, n)
	}
	need := n * (len(heads) + 1)
	if cap(l.yRows) < need {
		l.yRows = make([]float64, need)
	}
	l.yRows = l.yRows[:need]
	if l.yPair == nil {
		l.yPair = make([]float64, n*(n+1))
		l.invalidatePairs()
	}
}

// InvalidateGeometry implements cluster.GeometryInvalidator for the
// learner: node positions changed, so every memoized link cost is
// stale. Per-epoch rows need no touch — the next BeginEpoch (which
// always follows a mobility step before any Decide) re-stamps them.
func (l *Learner) InvalidateGeometry() {
	l.invalidatePairs()
}

func (l *Learner) invalidatePairs() {
	for i := range l.yPair {
		l.yPair[i] = math.NaN()
	}
}

// yMemo returns y(from, to) through the cross-epoch link memo.
func (l *Learner) yMemo(from, to int) float64 {
	cell := from*(len(l.v)+1) + to + 1
	v := l.yPair[cell]
	if v != v { // NaN: not yet computed for the current geometry
		v = l.y(from, to)
		l.yPair[cell] = v
	}
	return v
}

// yFor returns the y(from, ·) row for the action set [BS, heads...],
// served from the epoch cache when armed for exactly this head set and
// computed into a per-call scratch otherwise.
func (l *Learner) yFor(from int, heads []int) []float64 {
	w := len(heads) + 1
	if l.yHeads != nil && slicesEqual(l.yHeads, heads) {
		row := l.yRows[from*w : (from+1)*w]
		if l.yStamp[from] != l.yEpoch {
			l.fillY(row, from, heads)
			l.yStamp[from] = l.yEpoch
		}
		return row
	}
	if cap(l.yScratch) < w {
		l.yScratch = make([]float64, w)
	}
	row := l.yScratch[:w]
	l.fillY(row, from, heads)
	return row
}

// fillY computes row = [y(from, BS), y(from, heads[0]), ...], reading
// each link through the cross-epoch memo when it is allocated.
func (l *Learner) fillY(row []float64, from int, heads []int) {
	if l.yPair != nil {
		row[0] = l.yMemo(from, network.BSID)
		for j, h := range heads {
			row[j+1] = l.yMemo(from, h)
		}
		return
	}
	row[0] = l.y(from, network.BSID)
	for j, h := range heads {
		row[j+1] = l.y(from, h)
	}
}

func slicesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// QValue evaluates Eq. (15)+(16) for one state-action pair without
// mutating any state — introspection for tests, debugging and
// visualization. target may be network.BSID.
func (l *Learner) QValue(from, target int) float64 {
	return l.q(from, target)
}

// SetExploration installs the stream driving ε-greedy exploration.
// Required when Params.Epsilon > 0; a nil stream disables exploration.
func (l *Learner) SetExploration(s *rng.Stream) { l.explore = s }

// Decide implements Algorithm 4 for node from: it computes Q over the
// action set (every head plus the base station), refreshes V*(from) to
// the max, and returns the argmax target (a head id or network.BSID).
// Ties break toward the lower id, BS last, for determinism. With
// Epsilon > 0 and an exploration stream installed, it instead returns a
// head sampled uniformly from the heads other than from itself with
// probability ε (V is still refreshed from the greedy max, as in
// standard ε-greedy value iteration). Excluding from keeps the
// realized exploration rate at ε for heads too — sampling the full
// list and falling back to greedy when the draw landed on from would
// silently depress it.
func (l *Learner) Decide(from int, heads []int) int {
	// Invariants of the from side — its normalized residual energy and
	// current V — are identical for every probed action; hoist them out
	// of the per-head loop. The decision-observer captures below consume
	// no randomness and change no arithmetic, so observed and unobserved
	// runs stay byte-identical.
	xFrom := l.x(from)
	vFrom := l.v[from]
	var rec *Decision
	if l.decObs != nil {
		rec = &Decision{Node: from, VBefore: vFrom, EpsRoll: math.NaN()}
	}
	ys := l.yFor(from, heads)
	best := network.BSID
	bestQ := l.qHoisted(from, network.BSID, xFrom, vFrom, ys[0])
	if rec != nil {
		rec.Candidates = append(rec.Candidates, network.BSID)
		rec.QValues = append(rec.QValues, bestQ)
	}
	for j, h := range heads {
		if h == from {
			continue
		}
		q := l.qHoisted(from, h, xFrom, vFrom, ys[j+1])
		if rec != nil {
			rec.Candidates = append(rec.Candidates, h)
			rec.QValues = append(rec.QValues, q)
		}
		if q > bestQ || (q == bestQ && better(h, best)) {
			bestQ = q
			best = h
		}
	}
	l.setV(from, bestQ)
	chosen := best
	explored := false
	if l.params.Epsilon > 0 && l.explore != nil && len(heads) > 0 {
		roll := l.explore.Float64()
		if rec != nil {
			rec.EpsRoll = roll
		}
		if roll < l.params.Epsilon {
			candidates := len(heads)
			for _, h := range heads {
				if h == from {
					candidates--
				}
			}
			if candidates > 0 {
				j := l.explore.Intn(candidates)
				for _, h := range heads {
					if h == from {
						continue
					}
					if j == 0 {
						chosen = h
						explored = true
						break
					}
					j--
				}
			}
		}
	}
	if rec != nil {
		rec.Greedy = best
		rec.Chosen = chosen
		rec.Explored = explored
		rec.VAfter = bestQ
		l.decObs(*rec)
	}
	return chosen
}

// better orders candidate targets for tie-breaking: any head beats the
// BS; between heads the lower id wins.
func better(candidate, incumbent int) bool {
	if incumbent == network.BSID {
		return true
	}
	return candidate < incumbent
}

// Observe folds a transmission outcome into the link estimator —
// the ACK-driven learning step of §4.2. The inlined update is the same
// arithmetic as stats.EWMA: first contact seeds the estimate with the
// prior so one failure does not zero it, then folds the outcome.
func (l *Learner) Observe(from, to int, success bool) {
	i := from*l.stride + to + 1
	p := l.links[i]
	if math.IsNaN(p) {
		p = l.params.InitialLinkP
	}
	x := 0.0
	if success {
		x = 1
	}
	l.links[i] = p + l.params.LinkAlpha*(x-p)
	if l.outObs != nil {
		r := l.rewardFailure(from, to)
		if success {
			r = l.rewardSuccess(from, to)
		}
		l.outObs(Outcome{From: from, To: to, Success: success, LinkP: l.links[i], Reward: r})
	}
}

// UpdateHeadValue implements Algorithm 1 line 15: after the end-of-round
// burst, a cluster head refreshes its own V from its single action
// (transmit to the BS):
//
//	V*(h_j) = Q*(h_j, a_BS) = R_t + γ(P·V*(h_BS) + (1−P)·V*(h_j))
//
// The head→BS hop carries no −l penalty (delivering fused data to the BS
// is the head's job; the penalty exists to stop *members* bypassing
// clustering).
func (l *Learner) UpdateHeadValue(head int) {
	p := l.LinkP(head, network.BSID)
	// Eq. (17)-form reward toward the BS without the member penalty.
	rs := -l.params.G + l.params.Alpha1*(l.x(head)+1) - l.params.Alpha2*l.y(head, network.BSID)
	rf := l.rewardFailure(head, network.BSID)
	rt := p*rs + (1-p)*rf
	q := rt + l.params.Gamma*(p*l.vBS+(1-p)*l.v[head])
	l.setV(head, q)
}

func (l *Learner) setV(id int, v float64) {
	delta := math.Abs(v - l.v[id])
	l.v[id] = v
	l.updates++
	l.lastDelta = delta
	l.maxDelta.push(delta)
}

// V returns the current V*(id) (or the BS terminal value for
// network.BSID).
func (l *Learner) V(id int) float64 {
	if id == network.BSID {
		return l.vBS
	}
	return l.v[id]
}

// Updates returns the number of V updates so far — the "X" in the
// paper's O(kX) running time (Lemma 3).
func (l *Learner) Updates() uint64 { return l.updates }

// MeanV returns the mean V*(b_i) across all nodes — a one-number
// summary of Q-table state for telemetry (obs round gauges).
func (l *Learner) MeanV() float64 {
	if len(l.v) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range l.v {
		sum += v
	}
	return sum / float64(len(l.v))
}

// Converged reports whether the largest V change over the last window of
// updates has fallen below eps. It is false until the window fills.
func (l *Learner) Converged(eps float64) bool {
	return l.maxDelta.full() && l.maxDelta.max() < eps
}

// deltaWindow is a fixed-size ring of recent |ΔV| values.
type deltaWindow struct {
	buf  []float64
	n    int
	next int
}

func newDeltaWindow(size int) *deltaWindow {
	return &deltaWindow{buf: make([]float64, size)}
}

func (w *deltaWindow) push(v float64) {
	w.buf[w.next] = v
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
}

func (w *deltaWindow) full() bool { return w.n == len(w.buf) }

func (w *deltaWindow) max() float64 {
	m := 0.0
	for i := 0; i < w.n; i++ {
		if w.buf[i] > m {
			m = w.buf[i]
		}
	}
	return m
}
