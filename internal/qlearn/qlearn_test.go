package qlearn

import (
	"math"
	"testing"

	"qlec/internal/energy"
	"qlec/internal/geom"
	"qlec/internal/network"
	"qlec/internal/rng"
)

func testNet(t *testing.T, n int, seed uint64) *network.Network {
	t.Helper()
	w, err := network.Deploy(network.Deployment{N: n, Side: 200, InitialEnergy: 5}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func newTestLearner(t *testing.T, w *network.Network) *Learner {
	t.Helper()
	l, err := NewLearner(w, energy.DefaultModel(), 4000, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*Params){
		func(p *Params) { p.Gamma = -0.1 },
		func(p *Params) { p.Gamma = 1.5 },
		func(p *Params) { p.LinkAlpha = 0 },
		func(p *Params) { p.InitialLinkP = 1.2 },
		func(p *Params) { p.L = -1 },
		func(p *Params) { p.G = -1 },
		func(p *Params) { p.Alpha2 = -1 },
		func(p *Params) { p.Beta1 = math.NaN() },
	} {
		p := DefaultParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("invalid params %+v accepted", p)
		}
	}
}

func TestNewLearnerValidation(t *testing.T) {
	w := testNet(t, 10, 1)
	if _, err := NewLearner(w, energy.DefaultModel(), 0, DefaultParams()); err == nil {
		t.Fatal("zero bits accepted")
	}
	bad := DefaultParams()
	bad.Gamma = 2
	if _, err := NewLearner(w, energy.DefaultModel(), 4000, bad); err == nil {
		t.Fatal("bad params accepted")
	}
	if _, err := NewLearner(w, energy.Model{}, 4000, DefaultParams()); err == nil {
		t.Fatal("zero model accepted")
	}
}

func TestDecideAvoidsDirectBS(t *testing.T) {
	// With any head available, the −l penalty must keep members off the
	// direct-to-BS action.
	w := testNet(t, 50, 2)
	l := newTestLearner(t, w)
	heads := []int{4, 17, 33}
	for id := 0; id < 50; id++ {
		isHead := false
		for _, h := range heads {
			if h == id {
				isHead = true
			}
		}
		if isHead {
			continue
		}
		if got := l.Decide(id, heads); got == network.BSID {
			t.Fatalf("node %d chose direct BS despite available heads", id)
		}
	}
}

func TestDecideFallsBackToBSWithoutHeads(t *testing.T) {
	w := testNet(t, 10, 3)
	l := newTestLearner(t, w)
	if got := l.Decide(0, nil); got != network.BSID {
		t.Fatalf("Decide with no heads = %d, want BSID", got)
	}
	// A head list containing only the node itself is also empty in effect.
	if got := l.Decide(0, []int{0}); got != network.BSID {
		t.Fatalf("Decide with self-only head list = %d, want BSID", got)
	}
}

func TestDecidePrefersCloserHeadInitially(t *testing.T) {
	// Fresh learner, equal energies, equal link priors: the only
	// differentiator in Eq. (17) is y(b_i,h_j), so the nearer head wins.
	pos := []geom.Vec3{
		{X: 0, Y: 0, Z: 0},    // member
		{X: 10, Y: 0, Z: 0},   // near head
		{X: 150, Y: 0, Z: 0},  // far head
		{X: 80, Y: 80, Z: 80}, // filler
	}
	en := []energy.Joules{5, 5, 5, 5}
	w, err := network.FromPositions(pos, en, geom.Cube(200), geom.Vec3{X: 100, Y: 100, Z: 100})
	if err != nil {
		t.Fatal(err)
	}
	l := newTestLearner(t, w)
	if got := l.Decide(0, []int{1, 2}); got != 1 {
		t.Fatalf("Decide = %d, want nearer head 1", got)
	}
}

func TestDecidePrefersHigherEnergyHead(t *testing.T) {
	// Two heads equidistant from the member; one has drained most of its
	// battery. Eq. (17)'s α₁·x(h_j) term must steer toward the fresher
	// head.
	pos := []geom.Vec3{
		{X: 100, Y: 100, Z: 0}, // member
		{X: 60, Y: 100, Z: 0},  // head A
		{X: 140, Y: 100, Z: 0}, // head B (drained)
	}
	en := []energy.Joules{5, 5, 5}
	w, err := network.FromPositions(pos, en, geom.Cube(200), geom.Vec3{X: 100, Y: 100, Z: 100})
	if err != nil {
		t.Fatal(err)
	}
	w.Nodes[2].Battery.Draw(4.9)
	l := newTestLearner(t, w)
	if got := l.Decide(0, []int{1, 2}); got != 1 {
		t.Fatalf("Decide = %d, want high-energy head 1", got)
	}
}

func TestObserveLearnsLinkQuality(t *testing.T) {
	w := testNet(t, 10, 4)
	l := newTestLearner(t, w)
	p0 := l.LinkP(0, 1)
	for i := 0; i < 20; i++ {
		l.Observe(0, 1, false)
	}
	pBad := l.LinkP(0, 1)
	if pBad >= p0 {
		t.Fatalf("link estimate did not drop after failures: %v -> %v", p0, pBad)
	}
	if pBad > 0.05 {
		t.Fatalf("link estimate after 20 failures = %v, want near 0", pBad)
	}
	for i := 0; i < 40; i++ {
		l.Observe(0, 1, true)
	}
	if p := l.LinkP(0, 1); p < 0.9 {
		t.Fatalf("link estimate after recovery = %v, want near 1", p)
	}
}

func TestFailuresRerouteTraffic(t *testing.T) {
	// The core QLEC behaviour: a member whose chosen head stops ACKing
	// must switch heads. This is the mechanism behind Figure 3(a)'s
	// PDR gap.
	pos := []geom.Vec3{
		{X: 100, Y: 100, Z: 0}, // member
		{X: 90, Y: 100, Z: 0},  // head A, closest
		{X: 120, Y: 100, Z: 0}, // head B
	}
	en := []energy.Joules{5, 5, 5}
	w, err := network.FromPositions(pos, en, geom.Cube(200), geom.Vec3{X: 100, Y: 100, Z: 100})
	if err != nil {
		t.Fatal(err)
	}
	l := newTestLearner(t, w)
	heads := []int{1, 2}
	if first := l.Decide(0, heads); first != 1 {
		t.Fatalf("initial choice = %d, want nearest head 1", first)
	}
	// Head 1 stops accepting (congested queue → no ACKs).
	for i := 0; i < 12; i++ {
		choice := l.Decide(0, heads)
		if choice != 1 {
			break
		}
		l.Observe(0, 1, false)
	}
	if final := l.Decide(0, heads); final != 2 {
		t.Fatalf("after persistent failures choice = %d, want reroute to head 2", final)
	}
}

func TestUpdateHeadValuePropagatesToMembers(t *testing.T) {
	// A head whose V collapses (e.g. it keeps failing toward the BS)
	// becomes less attractive to members through the γ·P·V(h_j) term.
	pos := []geom.Vec3{
		{X: 100, Y: 100, Z: 0}, // member
		{X: 90, Y: 100, Z: 0},  // head A nearer
		{X: 112, Y: 100, Z: 0}, // head B slightly farther
	}
	en := []energy.Joules{5, 5, 5}
	w, err := network.FromPositions(pos, en, geom.Cube(200), geom.Vec3{X: 100, Y: 100, Z: 100})
	if err != nil {
		t.Fatal(err)
	}
	l := newTestLearner(t, w)
	heads := []int{1, 2}
	if first := l.Decide(0, heads); first != 1 {
		t.Fatalf("initial choice = %d", first)
	}
	// Head 1's link to the BS keeps failing; its V value sinks across
	// many round-end updates.
	for i := 0; i < 300; i++ {
		l.Observe(1, network.BSID, false)
		l.UpdateHeadValue(1)
	}
	if l.V(1) >= l.V(2) {
		t.Fatalf("failing head V=%v not below healthy head V=%v", l.V(1), l.V(2))
	}
	if got := l.Decide(0, heads); got != 2 {
		t.Fatalf("member still picks collapsed head: %d", got)
	}
}

func TestVConvergesUnderStationaryConditions(t *testing.T) {
	w := testNet(t, 30, 5)
	l := newTestLearner(t, w)
	heads := []int{1, 2, 3, 4, 5}
	if l.Converged(1e-6) {
		t.Fatal("fresh learner reports convergence")
	}
	for iter := 0; iter < 3000; iter++ {
		for id := 6; id < 30; id++ {
			to := l.Decide(id, heads)
			l.Observe(id, to, true)
		}
		for _, h := range heads {
			l.Observe(h, network.BSID, true)
			l.UpdateHeadValue(h)
		}
		if l.Converged(1e-9) {
			break
		}
	}
	if !l.Converged(1e-9) {
		t.Fatal("V values failed to converge under stationary conditions")
	}
	if l.Updates() == 0 {
		t.Fatal("update counter not advancing")
	}
}

func TestVValuesStayFinite(t *testing.T) {
	// With γ<1 and bounded rewards, V must stay bounded no matter the
	// outcome sequence.
	w := testNet(t, 20, 6)
	l := newTestLearner(t, w)
	heads := []int{0, 1, 2}
	r := rng.New(99)
	for iter := 0; iter < 5000; iter++ {
		id := 3 + r.Intn(17)
		to := l.Decide(id, heads)
		l.Observe(id, to, r.Float64() < 0.5)
		if iter%7 == 0 {
			l.UpdateHeadValue(heads[r.Intn(3)])
		}
	}
	for id := 0; id < 20; id++ {
		v := l.V(id)
		if math.IsNaN(v) || math.Abs(v) > 1e6 {
			t.Fatalf("V(%d) = %v diverged", id, v)
		}
	}
	if l.V(network.BSID) != 0 {
		t.Fatalf("BS terminal value = %v, want 0", l.V(network.BSID))
	}
}

func TestDecideDeterministicTieBreak(t *testing.T) {
	// Symmetric heads: the lower id must win deterministically.
	pos := []geom.Vec3{
		{X: 100, Y: 100, Z: 100}, // member at center
		{X: 50, Y: 100, Z: 100},  // head A
		{X: 150, Y: 100, Z: 100}, // head B, mirror image
	}
	en := []energy.Joules{5, 5, 5}
	w, err := network.FromPositions(pos, en, geom.Cube(200), geom.Vec3{X: 100, Y: 100, Z: 0})
	if err != nil {
		t.Fatal(err)
	}
	l := newTestLearner(t, w)
	for i := 0; i < 5; i++ {
		if got := l.Decide(0, []int{2, 1}); got != 1 {
			t.Fatalf("tie-break chose %d, want 1", got)
		}
	}
}

// Default rewards must be strictly negative per step so V values stay
// non-positive; otherwise the (1−p)·V(self) loop of Eq. (15) makes a
// failing action self-reinforcing (see DefaultParams doc and DESIGN.md
// §6.6).
func TestDefaultRewardsKeepVNonPositive(t *testing.T) {
	w := testNet(t, 30, 8)
	l := newTestLearner(t, w)
	heads := []int{0, 1, 2, 3}
	for iter := 0; iter < 2000; iter++ {
		for id := 4; id < 30; id++ {
			to := l.Decide(id, heads)
			l.Observe(id, to, true) // all-success is the most optimistic case
		}
		for _, h := range heads {
			l.Observe(h, network.BSID, true)
			l.UpdateHeadValue(h)
		}
	}
	for id := 0; id < 30; id++ {
		if l.V(id) > 1e-9 {
			t.Fatalf("V(%d) = %v went positive under all-success traffic", id, l.V(id))
		}
	}
}

// The strongest fidelity check in the package: hand-evaluate
// Eq. (15)–(20) for a fully pinned two-node configuration and require
// QValue to match to machine precision.
func TestQValueMatchesHandComputedEquations(t *testing.T) {
	// Geometry: member at origin, head at (60,0,0), box 200³ with BS at
	// center. yNorm reference distance = 100 m (half max extent).
	pos := []geom.Vec3{
		{X: 0, Y: 0, Z: 0},  // member, id 0
		{X: 60, Y: 0, Z: 0}, // head, id 1
	}
	en := []energy.Joules{5, 5}
	w, err := network.FromPositions(pos, en, geom.Cube(200), geom.Vec3{X: 100, Y: 100, Z: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Drain the member to 40 % so x-values differ.
	w.Nodes[0].Battery.Draw(3)

	p := DefaultParams()
	model := energy.DefaultModel()
	const bits = 4000
	l, err := NewLearner(w, model, bits, p)
	if err != nil {
		t.Fatal(err)
	}
	// Give the head a known V value by seeding its link history and
	// updating once; then freeze and hand-compute the member's Q.
	l.Observe(1, network.BSID, true)
	l.UpdateHeadValue(1)
	vHead := l.V(1)
	vMember := l.V(0) // still 0: member never decided yet

	// Hand evaluation.
	x0 := 2.0 / 5.0 // residual/initial of member
	x1 := 1.0       // head untouched
	d := 60.0
	yNorm := float64(model.TxAmplifier(bits, 100))
	y := float64(model.TxAmplifier(bits, d)) / yNorm
	pLink := p.InitialLinkP                    // no member→head history yet
	rs := -p.G + p.Alpha1*(x0+x1) - p.Alpha2*y // Eq. (17)
	rf := -p.G + p.Beta1*x0 - p.Beta2*y        // Eq. (20)
	rt := pLink*rs + (1-pLink)*rf              // Eq. (16)
	want := rt + p.Gamma*(pLink*vHead+(1-pLink)*vMember)

	if got := l.QValue(0, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("QValue(0,1) = %.15f, hand-computed Eq.(15) = %.15f", got, want)
	}

	// The BS action carries Eq. (19)'s −l penalty: recompute with
	// x(BS)=1, the member→BS distance, and V(BS)=0.
	dBS := pos[0].Dist(geom.Vec3{X: 100, Y: 100, Z: 100})
	yBS := float64(model.TxAmplifier(bits, dBS)) / yNorm
	rsBS := -p.G + p.Alpha1*(x0+1) - p.Alpha2*yBS - p.L
	rfBS := -p.G + p.Beta1*x0 - p.Beta2*yBS
	rtBS := pLink*rsBS + (1-pLink)*rfBS
	wantBS := rtBS + p.Gamma*(pLink*0+(1-pLink)*vMember)
	if got := l.QValue(0, network.BSID); math.Abs(got-wantBS) > 1e-12 {
		t.Fatalf("QValue(0,BS) = %.15f, hand-computed Eq.(19) = %.15f", got, wantBS)
	}
}

func TestEpsilonGreedyExploration(t *testing.T) {
	w := testNet(t, 20, 20)
	p := DefaultParams()
	p.Epsilon = 0.5
	l, err := NewLearner(w, energy.DefaultModel(), 4000, p)
	if err != nil {
		t.Fatal(err)
	}
	heads := []int{1, 2, 3, 4}
	// Without an exploration stream, ε is inert (pure greedy).
	first := l.Decide(10, heads)
	for i := 0; i < 20; i++ {
		if l.Decide(10, heads) != first {
			t.Fatal("epsilon without stream changed decisions")
		}
	}
	// With a stream, ~ε of decisions deviate from the greedy pick.
	l.SetExploration(rng.NewNamed(20, "explore"))
	deviations := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		if l.Decide(10, heads) != first {
			deviations++
		}
	}
	// ε=0.5 picks uniformly among 4 heads, so ~0.5·(3/4) = 37.5 % differ.
	frac := float64(deviations) / trials
	if frac < 0.2 || frac > 0.55 {
		t.Fatalf("exploration fraction %v, want ~0.375", frac)
	}
}

func TestEpsilonValidation(t *testing.T) {
	p := DefaultParams()
	p.Epsilon = 1
	if err := p.Validate(); err == nil {
		t.Fatal("epsilon=1 accepted")
	}
	p.Epsilon = -0.1
	if err := p.Validate(); err == nil {
		t.Fatal("negative epsilon accepted")
	}
	p.Epsilon = math.NaN()
	if err := p.Validate(); err == nil {
		t.Fatal("NaN epsilon accepted")
	}
}

func TestUpdatesCountsX(t *testing.T) {
	w := testNet(t, 10, 7)
	l := newTestLearner(t, w)
	before := l.Updates()
	l.Decide(0, []int{1})
	l.UpdateHeadValue(1)
	if l.Updates() != before+2 {
		t.Fatalf("Updates = %d, want %d", l.Updates(), before+2)
	}
}

func BenchmarkDecide(b *testing.B) {
	w, _ := network.Deploy(network.Deployment{N: 100, Side: 200, InitialEnergy: 5}, rng.New(1))
	l, _ := NewLearner(w, energy.DefaultModel(), 4000, DefaultParams())
	heads := []int{1, 2, 3, 4, 5}
	// Seed some link history so the estimator path (not just the
	// optimistic prior) is exercised.
	for from := 10; from < 90; from++ {
		for _, h := range heads {
			l.Observe(from, h, true)
			l.Observe(from, h, (from+h)%3 != 0)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Decide(10+(i%80), heads)
	}
}

func TestEpsilonGreedyExcludesSelf(t *testing.T) {
	// A head forwarding its own sensing data calls Decide with itself in
	// the head list. Exploration must sample from the OTHER heads only:
	// drawing over the full list and falling back to greedy when the draw
	// landed on the caller silently depressed the realized exploration
	// rate from ε to ε·(k−1)/k.
	w := testNet(t, 20, 21)
	p := DefaultParams()
	p.Epsilon = 0.6
	l, err := NewLearner(w, energy.DefaultModel(), 4000, p)
	if err != nil {
		t.Fatal(err)
	}
	l.SetExploration(rng.NewNamed(21, "explore-self"))
	const from = 2
	heads := []int{1, 2, 3, 4} // from is a head itself
	greedy := func() int {
		q := DefaultParams()
		g, err := NewLearner(w, energy.DefaultModel(), 4000, q)
		if err != nil {
			t.Fatal(err)
		}
		return g.Decide(from, heads)
	}()

	const trials = 2000
	picked := map[int]int{}
	for i := 0; i < trials; i++ {
		got := l.Decide(from, heads)
		if got == from {
			t.Fatal("exploration returned the deciding node itself")
		}
		picked[got]++
	}
	for _, h := range []int{1, 3, 4} {
		if picked[h] == 0 {
			t.Fatalf("head %d never picked across %d trials; exploration not uniform over others", h, trials)
		}
	}
	// Exploration picks uniformly among the 3 other heads; with the
	// greedy choice being one of them, deviations from greedy occur at
	// ε·(2/3) = 0.4. The pre-fix fallback behaviour gave ε·(2/4) = 0.3 —
	// far outside the tolerance below at this sample size.
	deviations := trials - picked[greedy]
	frac := float64(deviations) / trials
	if frac < 0.36 || frac > 0.44 {
		t.Fatalf("deviation fraction %v, want ~0.40 (pre-fix bug gives ~0.30)", frac)
	}
}
